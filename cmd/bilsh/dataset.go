package main

import (
	"archive/tar"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bilsh/internal/dataset"
	"bilsh/internal/durable"
	"bilsh/internal/vec"
)

// cmdDataset groups the real-dataset plumbing: fetching the TexMex
// benchmark archives, converting between the *vecs formats, and
// inspecting files. docs/datasets.md is the end-to-end runbook.
func cmdDataset(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("dataset: want a subcommand: fetch, convert or info")
	}
	switch args[0] {
	case "fetch":
		return cmdDatasetFetch(args[1:])
	case "convert":
		return cmdDatasetConvert(args[1:])
	case "info":
		return cmdDatasetInfo(args[1:])
	default:
		return fmt.Errorf("dataset: unknown subcommand %q (want fetch, convert or info)", args[0])
	}
}

// texmexCorpora maps the short dataset names to their archives on the
// TexMex corpus server (the source of SIFT1M/GIST1M and their small
// learning subsets).
var texmexCorpora = map[string]string{
	"siftsmall": "http://ftp.irisa.fr/local/texmex/corpus/siftsmall.tar.gz",
	"sift":      "http://ftp.irisa.fr/local/texmex/corpus/sift.tar.gz",
	"gist":      "http://ftp.irisa.fr/local/texmex/corpus/gist.tar.gz",
}

// cmdDatasetFetch downloads a TexMex archive and unpacks its *vecs
// members into a directory. siftsmall (~5 MiB) is the right size for the
// docs/datasets.md quickstart; sift and gist are the paper-scale sets.
func cmdDatasetFetch(args []string) error {
	fs := newFlagSet("dataset fetch")
	name := fs.String("name", "siftsmall", "dataset: siftsmall, sift or gist")
	dir := fs.String("dir", "data", "directory to unpack into")
	url := fs.String("url", "", "override the archive URL (e.g. a mirror)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src := *url
	if src == "" {
		var ok bool
		if src, ok = texmexCorpora[*name]; !ok {
			return fmt.Errorf("dataset fetch: unknown dataset %q (want siftsmall, sift or gist, or pass -url)", *name)
		}
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	start := time.Now()
	resp, err := http.Get(src)
	if err != nil {
		return fmt.Errorf("dataset fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dataset fetch: %s returned %s", src, resp.Status)
	}
	n, files, err := untarVecs(resp.Body, *dir)
	if err != nil {
		return err
	}
	fmt.Printf("fetched %s: %d files (%.1f MiB) into %s in %v\n",
		src, files, float64(n)/(1<<20), *dir, time.Since(start).Round(time.Millisecond))
	return nil
}

// untarVecs extracts the *vecs members of a gzipped tar stream into dir,
// flattening paths (the TexMex archives nest under a top-level folder).
// Only regular files with a *vecs extension are written, each under its
// base name, so a hostile archive cannot escape dir.
func untarVecs(r io.Reader, dir string) (bytes int64, files int, err error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return 0, 0, fmt.Errorf("dataset fetch: not a gzip archive: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return bytes, files, fmt.Errorf("dataset fetch: reading archive: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		base := filepath.Base(hdr.Name)
		switch filepath.Ext(base) {
		case ".fvecs", ".bvecs", ".ivecs":
		default:
			continue
		}
		dst := filepath.Join(dir, base)
		err = durable.AtomicWrite(dst, func(f *os.File) error {
			_, cerr := io.Copy(f, tr)
			return cerr
		})
		if err != nil {
			return bytes, files, fmt.Errorf("dataset fetch: writing %s: %w", dst, err)
		}
		bytes += hdr.Size
		files++
		fmt.Printf("  %s (%.1f MiB)\n", dst, float64(hdr.Size)/(1<<20))
	}
	if files == 0 {
		return 0, 0, fmt.Errorf("dataset fetch: archive contained no *vecs files")
	}
	return bytes, files, nil
}

// cmdDatasetConvert rewrites between the *vecs formats: bvecs (byte
// components, e.g. SIFT1B) to fvecs, or fvecs to fvecs with -n to cut a
// subset. The output write is atomic.
func cmdDatasetConvert(args []string) error {
	fs := newFlagSet("dataset convert")
	in := fs.String("in", "", ".fvecs or .bvecs input file (required)")
	out := fs.String("out", "", ".fvecs output file (required)")
	maxN := fs.Int("n", 0, "cap on vectors converted (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("dataset convert: -in and -out are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var m *vec.Matrix
	switch filepath.Ext(*in) {
	case ".bvecs":
		m, err = dataset.ReadBvecs(f, *maxN)
	case ".fvecs":
		m, err = dataset.ReadFvecs(f, *maxN)
	default:
		return fmt.Errorf("dataset convert: %s: want a .fvecs or .bvecs input", *in)
	}
	if err != nil {
		return err
	}
	if !strings.HasSuffix(*out, ".fvecs") {
		return fmt.Errorf("dataset convert: output %s must be .fvecs", *out)
	}
	if err := dataset.SaveFvecsFile(*out, m); err != nil {
		return err
	}
	fmt.Printf("converted %d vectors (dim %d) from %s to %s\n", m.N, m.D, *in, *out)
	return nil
}

// cmdDatasetInfo prints a *vecs file's shape without loading it fully.
func cmdDatasetInfo(args []string) error {
	fs := newFlagSet("dataset info")
	in := fs.String("in", "", "*vecs file to describe (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("dataset info: -in is required")
	}
	st, err := os.Stat(*in)
	if err != nil {
		return err
	}
	switch ext := filepath.Ext(*in); ext {
	case ".fvecs":
		n, dim, err := dataset.ScanFvecs(*in, func(int, []float32) error { return nil })
		if err != nil {
			return err
		}
		fmt.Printf("%s: fvecs, %d vectors, dim %d, %.1f KiB\n", *in, n, dim, float64(st.Size())/1024)
	case ".bvecs", ".ivecs":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		if ext == ".bvecs" {
			m, err := dataset.ReadBvecs(f, 0)
			if err != nil {
				return err
			}
			fmt.Printf("%s: bvecs, %d vectors, dim %d, %.1f KiB\n", *in, m.N, m.D, float64(st.Size())/1024)
		} else {
			rows, err := dataset.ReadIvecs(f, 0)
			if err != nil {
				return err
			}
			dim := 0
			if len(rows) > 0 {
				dim = len(rows[0])
			}
			fmt.Printf("%s: ivecs, %d rows, first row length %d, %.1f KiB\n", *in, len(rows), dim, float64(st.Size())/1024)
		}
	default:
		return fmt.Errorf("dataset info: %s: want a .fvecs, .bvecs or .ivecs file", *in)
	}
	return nil
}
