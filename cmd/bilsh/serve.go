package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/durable"
	"bilsh/internal/metrics"
	"bilsh/internal/server"
)

// cmdServe exposes a persisted index over the HTTP JSON API.
//
// With -data-dir the server runs durably: every insert/delete is
// write-ahead logged to <dir>/wal.log before it is acknowledged, POST
// /save (and /compact) writes an atomic checkpoint, and startup replays
// the log so acked writes survive crashes (see docs/durability.md). The
// -index file only seeds the directory on first boot; after that the
// checkpoint is authoritative.
func cmdServe(args []string) error { return runServe("serve", args, false) }

// cmdShardServe is cmdServe plus the cluster wiring: a shard id for the
// router to verify, an id map translating shard-local row ids to
// cluster-global ids, checkpoint/idmap export for replica bring-up, and
// -replica-of to bootstrap this node from a running primary.
func cmdShardServe(args []string) error { return runServe("shard-serve", args, true) }

func runServe(name string, args []string, shard bool) error {
	fs := newFlagSet(name)
	indexPath := fs.String("index", "", "index file from 'bilsh build' (required unless -data-dir already holds a checkpoint)")
	dataDir := fs.String("data-dir", "", "durable data directory (WAL + checkpoints); implies -mutable")
	fsyncMode := fs.String("fsync", "always", "WAL durability: always (fsync before ack), interval, never")
	fsyncEvery := fs.Duration("fsync-interval", 100*time.Millisecond, "background WAL sync cadence for -fsync=interval")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	mutable := fs.Bool("mutable", false, "enable insert/delete/compact endpoints")
	memtable := fs.Int("memtable", 0, "memtable seal threshold in rows (0 = default 1024)")
	autoCompact := fs.Int("auto-compact", 0, "start a background compaction (a checkpoint under -data-dir) at this many frozen segments (0 disables)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	useMmap := fs.Bool("mmap", false, "serve durable checkpoints off a read-only mapping (paged bilsh.Disk/3 payloads; docs/outofcore.md)")
	rowsBudget := fs.Int64("rows-budget", 0, "resident-set budget in bytes for the mapped exact-row section (0 = kernel-managed)")
	residencyEvery := fs.Duration("residency-interval", 10*time.Second, "cadence for sampling/enforcing the mapped residency policy")
	quantize := fs.String("quantize", "", "override the row store scanned at query time: none or sq8 (default: as built/checkpointed)")
	rerank := fs.Int("rerank", 0, "exact re-rank shortlist factor for sq8 (top k*factor; 0 = keep current)")
	metricsOn := fs.Bool("metrics", true, "expose GET /metrics (Prometheus text; ?format=json for JSON)")
	pprofOn := fs.Bool("pprof", false, "expose the runtime profiler under /debug/pprof/")
	statsEvery := fs.Duration("stats-interval", 0, "log a one-line stats summary at this interval (0 disables)")
	adaptive := fs.Bool("adaptive", false, "re-tune the default query plan online from live traffic (docs/adaptive.md)")
	adaptiveRecall := fs.Float64("adaptive-recall", 0.9, "recall SLO the adaptive default plan targets, in (0,1)")
	adaptiveEvery := fs.Duration("adaptive-interval", 10*time.Second, "re-tune cadence for -adaptive")
	var (
		shardID   *int
		idmapPath *string
		replicaOf *string
	)
	if shard {
		shardID = fs.Int("shard-id", -1, "this server's shard id (the router verifies it against its address list)")
		idmapPath = fs.String("idmap", "", "local↔global id map file, e.g. shard0.ids from 'bilsh shard-split' (default <data-dir>/idmap.txt)")
		replicaOf = fs.String("replica-of", "", "primary base URL; bootstrap -data-dir from its checkpoint and serve read-only")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	replica := shard && *replicaOf != ""
	if *indexPath == "" && *dataDir == "" {
		return fmt.Errorf("%s: -index is required", name)
	}
	if replica && *dataDir == "" {
		return fmt.Errorf("%s: -replica-of needs -data-dir to hold the fetched checkpoint", name)
	}
	fsync, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if shard && *idmapPath == "" && *dataDir != "" {
		*idmapPath = filepath.Join(*dataDir, "idmap.txt")
	}
	if replica {
		fetched, err := bootstrapReplica(*replicaOf, *dataDir, *idmapPath)
		if err != nil {
			return fmt.Errorf("%s: replica bootstrap from %s: %v", name, *replicaOf, err)
		}
		if fetched {
			fmt.Printf("replica: fetched checkpoint and id map from %s\n", *replicaOf)
		} else {
			fmt.Printf("replica: %s already has a checkpoint, serving it (delete the directory to re-sync)\n", *dataDir)
		}
	}

	policy := core.ResidencyPolicy{PinCodes: true, RowsBudget: *rowsBudget}

	// The server needs the concrete *core.Index for mutation; load either
	// layout and unwrap.
	var (
		ix       *core.Index
		isDisk   bool
		diskV3   bool
		enforcer interface {
			EnforceResidency() core.ResidencyStats
			Mapped() bool
		}
	)
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			if !(os.IsNotExist(err) && *dataDir != "") {
				return err
			}
			// First boot may legitimately have only the data dir; the
			// checkpoint inside it is the index.
		} else {
			var head [16]byte
			if _, err := f.Read(head[:]); err == nil && string(head[:11]) == "bilsh.Disk/" {
				f.Close()
				// Paged (v3) files address their rows in place, so they can
				// re-serialize — checkpoints and /save work; legacy v1/v2
				// cannot.
				diskV3 = head[11] == '3'
				di, err := core.OpenDiskWith(*indexPath, core.DiskOpenOptions{Residency: policy})
				if err != nil {
					return err
				}
				defer di.Close()
				ix, isDisk = di.Index, true
				enforcer = di
				if di.Mapped() {
					fmt.Printf("index %s: serving off mmap (rows budget %s)\n", *indexPath, fmtBudget(*rowsBudget))
				}
			} else {
				if _, err := f.Seek(0, 0); err != nil {
					f.Close()
					return err
				}
				ix, err = core.ReadIndex(f)
				f.Close()
				if err != nil {
					return err
				}
			}
		}
	}

	api := (*server.Server)(nil)
	var d *core.DurableIndex
	switch {
	case *dataDir != "":
		if isDisk && !diskV3 {
			return fmt.Errorf("serve: -data-dir needs a self-serializable index; %s is the legacy disk-backed layout (rebuild it to get the paged v3 layout)", *indexPath)
		}
		d, err = core.OpenDurable(*dataDir, core.DurableOptions{
			Base:                   ix, // nil is fine once a checkpoint exists
			Fsync:                  fsync,
			FsyncInterval:          *fsyncEvery,
			MemtableThreshold:      *memtable,
			AutoCheckpointSegments: *autoCompact,
			Mmap:                   *useMmap,
			Residency:              policy,
		})
		if err != nil {
			return err
		}
		defer d.Close()
		ix = d.Index
		if *useMmap {
			enforcer = d
			if d.Mapped() {
				fmt.Printf("checkpoint: serving off mmap (rows budget %s)\n", fmtBudget(*rowsBudget))
			} else {
				fmt.Printf("checkpoint: mmap requested; maps at the next checkpoint (legacy payload or fresh seed)\n")
			}
		}
		*mutable = !replica // replicas serve reads only
		rec := d.Recovery
		src := "seed"
		if rec.FromCheckpoint {
			src = "checkpoint"
		}
		fmt.Printf("data dir %s: gen %d from %s, replayed %d WAL records", *dataDir, rec.Gen, src, rec.Replayed)
		if rec.TruncatedBytes > 0 {
			fmt.Printf(", truncated %d torn tail bytes", rec.TruncatedBytes)
		}
		if rec.DiscardedWAL {
			fmt.Printf(", discarded stale WAL")
		}
		fmt.Printf(" (fsync=%v)\n", fsync)
		api = server.New(ix, *mutable)
		if *mutable {
			api.SetMutator(d)
		}
		api.EnableSave(func() error { _, err := d.Checkpoint(); return err })
		if shard {
			api.EnableCheckpointFetch(*dataDir)
			api.SetGeneration(d.Gen)
		}
	default:
		ix.ConfigureDynamic(*memtable, *autoCompact)
		api = server.New(ix, *mutable)
		switch {
		case *mutable && diskV3:
			// A paged index re-saves in its own layout; the atomic rename
			// leaves the currently mapped inode untouched.
			out := *indexPath
			api.EnableSave(func() error { return ix.SaveDisk(out) })
		case *mutable && !isDisk:
			// Best-effort persistence for the non-durable server: /save
			// rewrites the index file atomically. It refuses (409) while
			// overlay state is pending — compact first — because WriteTo
			// only serializes the base plane.
			out := *indexPath
			api.EnableSave(func() error {
				return durable.AtomicWrite(out, func(f *os.File) error {
					_, err := ix.WriteTo(f)
					return err
				})
			})
		}
	}
	if *quantize != "" {
		// Re-quantizing after load lets a float32 index (or checkpoint)
		// serve from SQ8 codes — or strip them — without a rebuild.
		kind, err := core.ParseQuantizeKind(*quantize)
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		if err := ix.SetQuantize(kind, *rerank); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		fmt.Printf("row store: %s (rerank factor %d)\n", kind, ix.Options().RerankFactor)
	}
	if shard {
		api.SetShardID(*shardID)
		if *idmapPath != "" {
			m, err := server.OpenIDMap(*idmapPath)
			if err != nil {
				return fmt.Errorf("%s: %v", name, err)
			}
			defer m.Close()
			api.SetIDMap(m)
			if n := m.Len(); n > 0 {
				fmt.Printf("id map %s: %d rows mapped, max global id %d\n", *idmapPath, n, m.MaxGlobal())
			}
		}
	}
	api.EnableMetrics(*metricsOn)
	api.EnablePprof(*pprofOn)
	api.SetDrainTimeout(*shutdownTimeout)
	if *statsEvery > 0 {
		logger := metrics.NewLogger(metrics.Default(), *statsEvery, log.Printf)
		logger.Start()
		defer logger.Stop()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if enforcer != nil && *residencyEvery > 0 {
		// Background residency loop: refresh the gauges every tick and
		// evict exact-row pages past the budget. Harmless when nothing is
		// mapped (a durable index maps at its first paged checkpoint).
		go func() {
			tick := time.NewTicker(*residencyEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					enforcer.EnforceResidency()
				}
			}
		}()
	}
	if *adaptive {
		api.StartAdaptive(ctx, server.AdaptiveConfig{
			TargetRecall: *adaptiveRecall,
			Interval:     *adaptiveEvery,
			Log:          log.Default(),
		})
		fmt.Printf("adaptive: re-tuning default plan every %v toward recall %.2f\n", *adaptiveEvery, *adaptiveRecall)
	}
	// Bind before announcing so the printed address is the real one (:0
	// resolves to the kernel-assigned port — the crash harness depends on
	// this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("serving %d vectors (dim %d, %d groups) on http://%s (mutable=%v metrics=%v pprof=%v)\n",
		ix.Len(), ix.Dim(), ix.NumGroups(), ln.Addr(), *mutable, *metricsOn, *pprofOn)
	err = api.Serve(ctx, ln)
	if ctx.Err() != nil {
		fmt.Println("shutdown: in-flight requests drained")
	}
	return err
}

// fmtBudget renders a byte budget for log lines (0 = unlimited).
func fmtBudget(b int64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d bytes", b)
}

// bootstrapReplica seeds an empty replica data directory from a running
// primary: trigger a checkpoint there (POST /save), then fetch
// /checkpoint — the raw checkpoint file, header included — and /idmap
// into the local directory. A directory that already holds a checkpoint
// is left alone (fetched=false): the replica resumes from its own state,
// and re-syncing is an explicit operator action (delete the directory).
func bootstrapReplica(primary, dataDir, idmapPath string) (fetched bool, err error) {
	primary = strings.TrimRight(primary, "/")
	ckpt := filepath.Join(dataDir, durable.CheckpointFileName)
	if _, err := os.Stat(ckpt); err == nil {
		return false, nil
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return false, err
	}
	hc := &http.Client{Timeout: 2 * time.Minute}

	// 1. A fresh checkpoint on the primary, so the fetch reflects every
	// acknowledged write (the WAL itself is not shipped).
	resp, err := hc.Post(primary+"/save", "application/json", strings.NewReader("{}"))
	if err != nil {
		return false, err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return false, fmt.Errorf("POST /save: %d: %s (is the primary running with -data-dir?)",
			resp.StatusCode, strings.TrimSpace(string(body)))
	}

	// 2. The checkpoint bytes, dropped in place atomically.
	if err := fetchToFile(hc, primary+"/checkpoint", ckpt, false); err != nil {
		return false, fmt.Errorf("GET /checkpoint: %v", err)
	}

	// 3. The id map, when the primary has one (403 = it does not; the
	// replica then serves local ids, matching its primary).
	if idmapPath != "" {
		if err := fetchToFile(hc, primary+"/idmap", idmapPath, true); err != nil {
			os.Remove(ckpt) // stay consistent: retry bootstraps both or neither
			return false, fmt.Errorf("GET /idmap: %v", err)
		}
	}
	return true, nil
}

// fetchToFile streams url into path atomically. With optional=true a 403
// (feature not configured on the server) is success without a file.
func fetchToFile(hc *http.Client, url, path string, optional bool) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if optional && resp.StatusCode == http.StatusForbidden {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return durable.AtomicWrite(path, func(f *os.File) error {
		_, err := io.Copy(f, resp.Body)
		return err
	})
}
