package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/metrics"
	"bilsh/internal/server"
)

// cmdServe exposes a persisted index over the HTTP JSON API.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	indexPath := fs.String("index", "", "index file from 'bilsh build' (required)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	mutable := fs.Bool("mutable", false, "enable insert/delete/compact endpoints")
	memtable := fs.Int("memtable", 0, "memtable seal threshold in rows (0 = default 1024)")
	autoCompact := fs.Int("auto-compact", 0, "start a background compaction at this many frozen segments (0 disables)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	metricsOn := fs.Bool("metrics", true, "expose GET /metrics (Prometheus text; ?format=json for JSON)")
	pprofOn := fs.Bool("pprof", false, "expose the runtime profiler under /debug/pprof/")
	statsEvery := fs.Duration("stats-interval", 0, "log a one-line stats summary at this interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("serve: -index is required")
	}

	// The server needs the concrete *core.Index for mutation; load either
	// layout and unwrap.
	var ix *core.Index
	f, err := os.Open(*indexPath)
	if err != nil {
		return err
	}
	var head [16]byte
	if _, err := f.Read(head[:]); err == nil && string(head[:12]) == "bilsh.Disk/1" {
		f.Close()
		di, err := core.OpenDisk(*indexPath)
		if err != nil {
			return err
		}
		defer di.Close()
		ix = di.Index
	} else {
		if _, err := f.Seek(0, 0); err != nil {
			f.Close()
			return err
		}
		ix, err = core.ReadIndex(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	ix.ConfigureDynamic(*memtable, *autoCompact)

	api := server.New(ix, *mutable)
	api.EnableMetrics(*metricsOn)
	api.EnablePprof(*pprofOn)
	api.SetDrainTimeout(*shutdownTimeout)
	if *statsEvery > 0 {
		logger := metrics.NewLogger(metrics.Default(), *statsEvery, log.Printf)
		logger.Start()
		defer logger.Stop()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving %d vectors (dim %d, %d groups) on http://%s (mutable=%v metrics=%v pprof=%v)\n",
		ix.N(), ix.Dim(), ix.NumGroups(), *addr, *mutable, *metricsOn, *pprofOn)
	err = api.ListenAndServe(ctx, *addr)
	if ctx.Err() != nil {
		fmt.Println("shutdown: in-flight requests drained")
	}
	return err
}
