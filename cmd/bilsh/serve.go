package main

import (
	"fmt"
	"net/http"
	"os"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/server"
)

// cmdServe exposes a persisted index over the HTTP JSON API.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	indexPath := fs.String("index", "", "index file from 'bilsh build' (required)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	mutable := fs.Bool("mutable", false, "enable insert/delete/compact endpoints")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("serve: -index is required")
	}

	// The server needs the concrete *core.Index for mutation; load either
	// layout and unwrap.
	var ix *core.Index
	f, err := os.Open(*indexPath)
	if err != nil {
		return err
	}
	var head [16]byte
	if _, err := f.Read(head[:]); err == nil && string(head[:12]) == "bilsh.Disk/1" {
		f.Close()
		di, err := core.OpenDisk(*indexPath)
		if err != nil {
			return err
		}
		defer di.Close()
		ix = di.Index
	} else {
		if _, err := f.Seek(0, 0); err != nil {
			f.Close()
			return err
		}
		ix, err = core.ReadIndex(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(ix, *mutable).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("serving %d vectors (dim %d, %d groups) on http://%s (mutable=%v)\n",
		ix.N(), ix.Dim(), ix.NumGroups(), *addr, *mutable)
	return srv.ListenAndServe()
}
