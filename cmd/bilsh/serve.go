package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/durable"
	"bilsh/internal/metrics"
	"bilsh/internal/server"
)

// cmdServe exposes a persisted index over the HTTP JSON API.
//
// With -data-dir the server runs durably: every insert/delete is
// write-ahead logged to <dir>/wal.log before it is acknowledged, POST
// /save (and /compact) writes an atomic checkpoint, and startup replays
// the log so acked writes survive crashes (see docs/durability.md). The
// -index file only seeds the directory on first boot; after that the
// checkpoint is authoritative.
func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	indexPath := fs.String("index", "", "index file from 'bilsh build' (required unless -data-dir already holds a checkpoint)")
	dataDir := fs.String("data-dir", "", "durable data directory (WAL + checkpoints); implies -mutable")
	fsyncMode := fs.String("fsync", "always", "WAL durability: always (fsync before ack), interval, never")
	fsyncEvery := fs.Duration("fsync-interval", 100*time.Millisecond, "background WAL sync cadence for -fsync=interval")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	mutable := fs.Bool("mutable", false, "enable insert/delete/compact endpoints")
	memtable := fs.Int("memtable", 0, "memtable seal threshold in rows (0 = default 1024)")
	autoCompact := fs.Int("auto-compact", 0, "start a background compaction (a checkpoint under -data-dir) at this many frozen segments (0 disables)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	metricsOn := fs.Bool("metrics", true, "expose GET /metrics (Prometheus text; ?format=json for JSON)")
	pprofOn := fs.Bool("pprof", false, "expose the runtime profiler under /debug/pprof/")
	statsEvery := fs.Duration("stats-interval", 0, "log a one-line stats summary at this interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" && *dataDir == "" {
		return fmt.Errorf("serve: -index is required")
	}
	fsync, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}

	// The server needs the concrete *core.Index for mutation; load either
	// layout and unwrap.
	var (
		ix     *core.Index
		isDisk bool
	)
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			if !(os.IsNotExist(err) && *dataDir != "") {
				return err
			}
			// First boot may legitimately have only the data dir; the
			// checkpoint inside it is the index.
		} else {
			var head [16]byte
			if _, err := f.Read(head[:]); err == nil && string(head[:12]) == "bilsh.Disk/1" {
				f.Close()
				di, err := core.OpenDisk(*indexPath)
				if err != nil {
					return err
				}
				defer di.Close()
				ix, isDisk = di.Index, true
			} else {
				if _, err := f.Seek(0, 0); err != nil {
					f.Close()
					return err
				}
				ix, err = core.ReadIndex(f)
				f.Close()
				if err != nil {
					return err
				}
			}
		}
	}

	api := (*server.Server)(nil)
	var d *core.DurableIndex
	switch {
	case *dataDir != "":
		if isDisk {
			return fmt.Errorf("serve: -data-dir needs a self-contained index; %s is the disk-backed layout (checkpoints serialize the full index)", *indexPath)
		}
		d, err = core.OpenDurable(*dataDir, core.DurableOptions{
			Base:                   ix, // nil is fine once a checkpoint exists
			Fsync:                  fsync,
			FsyncInterval:          *fsyncEvery,
			MemtableThreshold:      *memtable,
			AutoCheckpointSegments: *autoCompact,
		})
		if err != nil {
			return err
		}
		defer d.Close()
		ix = d.Index
		*mutable = true
		rec := d.Recovery
		src := "seed"
		if rec.FromCheckpoint {
			src = "checkpoint"
		}
		fmt.Printf("data dir %s: gen %d from %s, replayed %d WAL records", *dataDir, rec.Gen, src, rec.Replayed)
		if rec.TruncatedBytes > 0 {
			fmt.Printf(", truncated %d torn tail bytes", rec.TruncatedBytes)
		}
		if rec.DiscardedWAL {
			fmt.Printf(", discarded stale WAL")
		}
		fmt.Printf(" (fsync=%v)\n", fsync)
		api = server.New(ix, *mutable)
		api.SetMutator(d)
		api.EnableSave(func() error { _, err := d.Checkpoint(); return err })
	default:
		ix.ConfigureDynamic(*memtable, *autoCompact)
		api = server.New(ix, *mutable)
		if *mutable && !isDisk {
			// Best-effort persistence for the non-durable server: /save
			// rewrites the index file atomically. It refuses (409) while
			// overlay state is pending — compact first — because WriteTo
			// only serializes the base plane.
			out := *indexPath
			api.EnableSave(func() error {
				return durable.AtomicWrite(out, func(f *os.File) error {
					_, err := ix.WriteTo(f)
					return err
				})
			})
		}
	}
	api.EnableMetrics(*metricsOn)
	api.EnablePprof(*pprofOn)
	api.SetDrainTimeout(*shutdownTimeout)
	if *statsEvery > 0 {
		logger := metrics.NewLogger(metrics.Default(), *statsEvery, log.Printf)
		logger.Start()
		defer logger.Stop()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Bind before announcing so the printed address is the real one (:0
	// resolves to the kernel-assigned port — the crash harness depends on
	// this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("serving %d vectors (dim %d, %d groups) on http://%s (mutable=%v metrics=%v pprof=%v)\n",
		ix.Len(), ix.Dim(), ix.NumGroups(), ln.Addr(), *mutable, *metricsOn, *pprofOn)
	err = api.Serve(ctx, ln)
	if ctx.Err() != nil {
		fmt.Println("shutdown: in-flight requests drained")
	}
	return err
}
