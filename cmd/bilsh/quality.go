package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"bilsh/internal/quality"
)

// cmdQuality runs the deterministic quality-regression matrix (see
// internal/quality and docs/testing.md) and checks every cell against the
// committed golden thresholds. `make quality` is a thin wrapper around
// this command; CI fails when any cell misses its threshold or a Bi-level
// cell falls below its standard-LSH baseline.
func cmdQuality(args []string) error {
	fs := newFlagSet("quality")
	preset := fs.String("preset", "full", "configuration preset: full, small, planted (truth known by construction, no oracle cache) or fvecs (real dataset files + Hamming cells; see docs/datasets.md)")
	out := fs.String("out", "", "write the JSON report to this file")
	cache := fs.String("cache", "", "exact-oracle cache directory (default: a bilsh-quality dir under the OS temp dir)")
	quantize := fs.String("quantize", "", "row store the cells scan: none (default) or sq8 (quantized scan + exact re-rank, checked against the same golden thresholds)")
	targetRecall := fs.Float64("target-recall", 0, "run every cell through TargetRecall-driven query plans at this SLO in (0,1) instead of the fixed budget (same golden thresholds apply)")
	update := fs.String("update-golden", "", "regenerate the golden threshold table from this run and write it to the given path instead of checking")
	quiet := fs.Bool("q", false, "suppress the per-cell table, print only the verdict")
	base := fs.String("base", "", "fvecs preset: override the base-vector .fvecs path")
	queries := fs.String("queries", "", "fvecs preset: override the query .fvecs path")
	truth := fs.String("truth", "", "fvecs preset: override the ground-truth .ivecs path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg quality.Config
	switch *preset {
	case "full":
		cfg = quality.Full()
	case "small":
		cfg = quality.Small()
	case "planted":
		cfg = quality.Planted()
	case "fvecs":
		cfg = quality.Fvecs()
		if *base != "" {
			cfg.FvecsBase = *base
		}
		if *queries != "" {
			cfg.FvecsQueries = *queries
		}
		if *truth != "" {
			cfg.FvecsTruth = *truth
		}
	default:
		return fmt.Errorf("unknown preset %q (want full, small, planted or fvecs)", *preset)
	}
	cfg.CacheDir = *cache
	cfg.Quantize = *quantize
	cfg.TargetRecall = *targetRecall

	rep, err := quality.Run(cfg)
	if err != nil {
		return err
	}

	if *update != "" {
		raw, err := quality.JSON(quality.NewGolden(rep))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*update, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("quality: wrote regenerated %s golden thresholds to %s (%d cells)\n",
			cfg.Preset, *update, len(rep.Cells))
		return nil
	}

	golden, err := quality.LoadGolden(cfg.Preset)
	if err != nil {
		return err
	}
	if err := golden.Check(rep); err != nil {
		return err
	}

	if !*quiet {
		printQualityTable(rep)
	}
	if *out != "" {
		raw, err := quality.JSON(rep)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if !rep.Pass {
		return fmt.Errorf("quality gate failed (see table above)")
	}
	fmt.Printf("quality gate passed: %d cells within thresholds, ordering holds\n", len(rep.Cells))
	return nil
}

// printQualityTable renders the per-cell results plus any ordering
// violations.
func printQualityTable(rep *quality.Report) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cell\trecall@K\t(min)\terror\t(min)\tselectivity\t(max)\tcandidates\tverdict")
	for _, c := range rep.Cells {
		verdict := "ok"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.3f\t%.4f\t%.3f\t%.4f\t%.4f\t%.1f\t%s\n",
			c.Key, c.Recall, c.Threshold.MinRecall, c.ErrorRatio, c.Threshold.MinErrorRatio,
			c.Selectivity, c.Threshold.MaxSelectivity, c.Candidates, verdict)
	}
	w.Flush()
	for _, v := range rep.OrderingViolations {
		fmt.Printf("ordering violation: %s\n", v)
	}
}
