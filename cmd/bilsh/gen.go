package main

import (
	"fmt"

	"bilsh/internal/dataset"
	"bilsh/internal/xrand"
)

// cmdGen generates a synthetic clustered-manifold dataset in fvecs format,
// optionally splitting off a disjoint query file (the paper's protocol).
func cmdGen(args []string) error {
	fs := newFlagSet("gen")
	n := fs.Int("n", 10000, "number of data vectors")
	d := fs.Int("d", 64, "vector dimension")
	clusters := fs.Int("clusters", 32, "latent cluster count")
	intrinsic := fs.Int("intrinsic", 8, "intrinsic dimension of each cluster")
	aspect := fs.Float64("aspect", 6, "cluster aspect ratio (>=1)")
	out := fs.String("out", "data.fvecs", "output fvecs path")
	queries := fs.String("queries", "", "optional query fvecs path")
	nq := fs.Int("nq", 0, "number of query vectors (with -queries)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	total := *n + *nq
	spec := dataset.DefaultClusteredSpec(total, *d)
	spec.Clusters = *clusters
	spec.IntrinsicDim = *intrinsic
	spec.Aspect = *aspect
	rng := xrand.New(*seed)
	data, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		return err
	}
	if *queries != "" && *nq > 0 {
		train, qs := dataset.Split(data, *nq, rng.Split(2))
		if err := dataset.SaveFvecsFile(*out, train); err != nil {
			return err
		}
		if err := dataset.SaveFvecsFile(*queries, qs); err != nil {
			return err
		}
		fmt.Printf("wrote %d train vectors to %s and %d queries to %s (dim %d)\n",
			train.N, *out, qs.N, *queries, *d)
		return nil
	}
	if err := dataset.SaveFvecsFile(*out, data); err != nil {
		return err
	}
	fmt.Printf("wrote %d vectors to %s (dim %d)\n", data.N, *out, *d)
	return nil
}
