package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/durable"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// parseMethodFlags is shared by the build and search commands.
type methodFlags struct {
	bilevel  *bool
	lattice  *string
	probe    *string
	groups   *int
	m, l     *int
	w        *float64
	seed     *int64
	quantize *string
	rerank   *int
	metric   *string
	bits     *int
}

func (mf methodFlags) options() (core.Options, error) {
	opts := core.Options{
		Partitioner: core.PartitionNone,
		AutoTuneW:   true,
		Groups:      *mf.groups,
		Params:      lshfunc.Params{M: *mf.m, L: *mf.l, W: *mf.w},
	}
	if mf.metric != nil {
		metric, err := core.ParseMetricKind(*mf.metric)
		if err != nil {
			return opts, err
		}
		opts.Metric = metric
		if mf.bits != nil {
			opts.Bits = *mf.bits
		}
	}
	if mf.quantize != nil {
		q, err := core.ParseQuantizeKind(*mf.quantize)
		if err != nil {
			return opts, err
		}
		opts.Quantize = q
	}
	if mf.rerank != nil {
		opts.RerankFactor = *mf.rerank
	}
	if *mf.bilevel {
		opts.Partitioner = core.PartitionRPTree
	}
	switch strings.ToUpper(*mf.lattice) {
	case "ZM":
		opts.Lattice = core.LatticeZM
	case "E8":
		opts.Lattice = core.LatticeE8
	case "DN":
		opts.Lattice = core.LatticeDn
	default:
		return opts, fmt.Errorf("unknown lattice %q (want ZM, Dn or E8)", *mf.lattice)
	}
	switch strings.ToLower(*mf.probe) {
	case "single":
		opts.ProbeMode = core.ProbeSingle
	case "multi":
		opts.ProbeMode = core.ProbeMulti
	case "hierarchy":
		opts.ProbeMode = core.ProbeHierarchy
	default:
		return opts, fmt.Errorf("unknown probe mode %q (want single, multi or hierarchy)", *mf.probe)
	}
	return opts, nil
}

// cmdBuild constructs an index from an fvecs file and persists it.
func cmdBuild(args []string) error {
	fs := newFlagSet("build")
	dataPath := fs.String("data", "", "fvecs file with the vectors to index (required)")
	out := fs.String("out", "index.bilsh", "output index path")
	disk := fs.Bool("disk", false, "write the disk-backed (out-of-core) layout")
	stream := fs.Bool("stream", false, "streaming build: never materialize the dataset (implies -disk)")
	sample := fs.Int("sample", 4096, "streaming build: reservoir sample size")
	maxN := fs.Int("maxn", 0, "cap on vectors read (0 = all; ignored with -stream)")
	mf := methodFlags{
		bilevel: fs.Bool("bilevel", true, "use the bi-level scheme"),
		lattice: fs.String("lattice", "ZM", "lattice: ZM, Dn or E8"),
		probe:   fs.String("probe", "single", "probe mode: single, multi, hierarchy"),
		groups:  fs.Int("groups", 16, "level-1 partitions"),
		m:       fs.Int("m", 8, "hash code length M"),
		l:       fs.Int("l", 10, "hash tables L"),
		w:       fs.Float64("w", 1.0, "bucket width multiplier"),
		seed:    fs.Int64("seed", 1, "random seed"),
		quantize: fs.String("quantize", "none",
			"row store the short-list scan reads: none or sq8 (int8 codes + exact re-rank)"),
		rerank: fs.Int("rerank", 0,
			"exact re-rank shortlist factor for -quantize sq8 (top k*factor; 0 = default 4)"),
		metric: fs.String("metric", "euclidean",
			"distance metric: euclidean (l2) or hamming (hyperplane-sign sketches + bit-sampling LSH)"),
		bits: fs.Int("bits", 0, "hamming: sketch width in bits (0 = default 256)"),
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" {
		return fmt.Errorf("build: -data is required")
	}
	opts, err := mf.options()
	if err != nil {
		return err
	}
	if opts.Metric == core.MetricHamming && (*disk || *stream) {
		return fmt.Errorf("build: -metric hamming indexes are in-memory only (no -disk/-stream); use the self-contained layout")
	}
	if *stream {
		start := time.Now()
		n, err := core.BuildDisk(*dataPath, *out, opts,
			core.OutOfCoreConfig{SampleSize: *sample}, xrand.New(*mf.seed))
		if err != nil {
			return err
		}
		fmt.Printf("stream-indexed %d vectors in %v; wrote disk-backed %s\n",
			n, time.Since(start).Round(time.Millisecond), *out)
		return nil
	}
	data, err := dataset.LoadFvecsFile(*dataPath, *maxN)
	if err != nil {
		return fmt.Errorf("loading data: %w", err)
	}
	start := time.Now()
	ix, err := core.Build(data, opts, xrand.New(*mf.seed))
	if err != nil {
		return err
	}
	buildDur := time.Since(start)

	var n int64
	err = durable.AtomicWrite(*out, func(f *os.File) error {
		var werr error
		if *disk {
			n, werr = ix.WriteDiskTo(f)
		} else {
			n, werr = ix.WriteTo(f)
		}
		return werr
	})
	if err != nil {
		return err
	}
	kind := "self-contained"
	if *disk {
		kind = "disk-backed"
	}
	fmt.Printf("indexed %d vectors (dim %d) in %v; wrote %s %s (%.1f MiB)\n",
		ix.N(), ix.Dim(), buildDur.Round(time.Millisecond), kind, *out, float64(n)/(1<<20))
	return nil
}

// cmdQuery loads a persisted index and answers queries from an fvecs file.
func cmdQuery(args []string) error {
	fs := newFlagSet("query")
	indexPath := fs.String("index", "", "index file from 'bilsh build' (required)")
	queryPath := fs.String("queries", "", "fvecs file with query vectors (required)")
	k := fs.Int("k", 10, "neighbors per query")
	maxQ := fs.Int("maxq", 1000, "cap on queries evaluated")
	workers := fs.Int("workers", 0, "parallel query workers (0 = GOMAXPROCS)")
	truthCheck := fs.Bool("truth", false, "also compute exact ground truth and report recall")
	verbose := fs.Bool("v", false, "print each query's neighbors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" || *queryPath == "" {
		return fmt.Errorf("query: -index and -queries are required")
	}
	ix, closeIx, err := openAnyIndex(*indexPath)
	if err != nil {
		return fmt.Errorf("loading index: %w", err)
	}
	defer closeIx()
	queries, err := dataset.LoadFvecsFile(*queryPath, *maxQ)
	if err != nil {
		return fmt.Errorf("loading queries: %w", err)
	}
	if queries.D != ix.Dim() {
		return fmt.Errorf("dimension mismatch: index %d vs queries %d", ix.Dim(), queries.D)
	}
	start := time.Now()
	results, stats := ix.QueryBatchParallel(queries, *k, *workers)
	dur := time.Since(start)

	var sel float64
	for qi := range results {
		sel += knn.Selectivity(stats[qi].Candidates, ix.N())
		if *verbose {
			fmt.Printf("query %d: %v\n", qi, results[qi].IDs)
		}
	}
	if o := ix.Options(); o.Metric == core.MetricHamming {
		fmt.Printf("index: %d vectors, %d groups, metric hamming (%d-bit sketches), probe %v\n",
			ix.N(), ix.NumGroups(), o.Bits, o.ProbeMode)
	} else {
		fmt.Printf("index: %d vectors, %d groups, lattice %v, probe %v\n",
			ix.N(), ix.NumGroups(), o.Lattice, o.ProbeMode)
	}
	fmt.Printf("%d queries in %v (%.1f q/s), mean selectivity %.4f\n",
		queries.N, dur.Round(time.Millisecond),
		float64(queries.N)/dur.Seconds(), sel/float64(queries.N))
	if *truthCheck {
		// Ground truth needs the raw vectors, which the index carries.
		var recall float64
		for qi := 0; qi < queries.N; qi++ {
			exact := ix.ExactKNN(queries.Row(qi), *k)
			recall += knn.Recall(exact.IDs, results[qi].IDs)
		}
		fmt.Printf("recall vs exact: %.4f\n", recall/float64(queries.N))
	}
	return nil
}

// cmdGroundTruth computes exact k-NN id lists for a query file and writes
// them in ivecs format (the TexMex ground-truth convention).
func cmdGroundTruth(args []string) error {
	fs := newFlagSet("groundtruth")
	dataPath := fs.String("data", "", "fvecs file with the indexed vectors (required)")
	queryPath := fs.String("queries", "", "fvecs file with query vectors (required)")
	out := fs.String("out", "groundtruth.ivecs", "output ivecs path")
	k := fs.Int("k", 100, "neighbors per query")
	maxN := fs.Int("maxn", 0, "cap on data vectors (0 = all)")
	maxQ := fs.Int("maxq", 0, "cap on queries (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *queryPath == "" {
		return fmt.Errorf("groundtruth: -data and -queries are required")
	}
	data, err := dataset.LoadFvecsFile(*dataPath, *maxN)
	if err != nil {
		return fmt.Errorf("loading data: %w", err)
	}
	queries, err := dataset.LoadFvecsFile(*queryPath, *maxQ)
	if err != nil {
		return fmt.Errorf("loading queries: %w", err)
	}
	start := time.Now()
	truth := knn.ExactAll(data, queries, *k)
	rows := make([][]int32, len(truth))
	for i, t := range truth {
		rows[i] = make([]int32, len(t.IDs))
		for j, id := range t.IDs {
			rows[i][j] = int32(id)
		}
	}
	err = durable.AtomicWrite(*out, func(f *os.File) error {
		return dataset.WriteIvecs(f, rows)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote exact %d-NN of %d queries over %d vectors to %s in %v\n",
		*k, queries.N, data.N, *out, time.Since(start).Round(time.Millisecond))
	return nil
}

// openAnyIndex loads either index layout, sniffing the disk-backed magic.
func openAnyIndex(path string) (indexReader, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var head [16]byte
	if _, err := f.Read(head[:]); err == nil && string(head[:11]) == "bilsh.Disk/" {
		f.Close()
		di, err := core.OpenDisk(path)
		if err != nil {
			return nil, nil, err
		}
		return di, func() { di.Close() }, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	ix, err := core.ReadIndex(f)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	return ix, func() {}, nil
}

// indexReader is the read-side API shared by both index layouts.
type indexReader interface {
	N() int
	Dim() int
	NumGroups() int
	Options() core.Options
	QueryBatchParallel(queries *vec.Matrix, k, workers int) ([]knn.Result, []core.QueryStats)
	ExactKNN(q []float32, k int) knn.Result
	Describe() core.Description
}

// cmdInfo describes a persisted index.
func cmdInfo(args []string) error {
	fs := newFlagSet("info")
	indexPath := fs.String("index", "", "index file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("info: -index is required")
	}
	ix, closeIx, err := openAnyIndex(*indexPath)
	if err != nil {
		return err
	}
	defer closeIx()
	return ix.Describe().WriteReport(os.Stdout)
}
