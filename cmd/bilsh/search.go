package main

import (
	"fmt"
	"strings"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// cmdSearch builds an index over an fvecs file, answers queries from a
// second file, and reports quality against exact ground truth.
func cmdSearch(args []string) error {
	fs := newFlagSet("search")
	dataPath := fs.String("data", "", "fvecs file with the indexed vectors (required)")
	queryPath := fs.String("queries", "", "fvecs file with query vectors (required)")
	k := fs.Int("k", 10, "neighbors per query")
	bilevel := fs.Bool("bilevel", true, "use the bi-level scheme (false = standard LSH)")
	latName := fs.String("lattice", "ZM", "lattice: ZM or E8")
	probeName := fs.String("probe", "single", "probe mode: single, multi, hierarchy")
	groups := fs.Int("groups", 16, "level-1 partitions")
	m := fs.Int("m", 8, "hash code length M")
	l := fs.Int("l", 10, "hash tables L")
	w := fs.Float64("w", 1.0, "bucket width multiplier over the tuned base")
	maxN := fs.Int("maxn", 0, "cap on vectors read (0 = all)")
	maxQ := fs.Int("maxq", 1000, "cap on queries evaluated")
	seed := fs.Int64("seed", 1, "random seed")
	metricName := fs.String("metric", "euclidean", "distance metric: euclidean (l2) or hamming (sketch + bit-sampling LSH; truth is the exact Hamming scan)")
	bits := fs.Int("bits", 0, "hamming: sketch width in bits (0 = default 256)")
	verbose := fs.Bool("v", false, "print each query's neighbors")
	recall := fs.Float64("recall", 0, "per-query recall SLO in (0,1): resolve the table budget from the collision model (0 = probe all L tables)")
	stableProbes := fs.Int("stable-probes", 0, "stop probing after this many consecutive probes without shortlist growth (0 = off)")
	maxCands := fs.Int("max-candidates", 0, "stop probing once the shortlist reaches this size (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *queryPath == "" {
		return fmt.Errorf("search: -data and -queries are required")
	}

	data, err := dataset.LoadFvecsFile(*dataPath, *maxN)
	if err != nil {
		return fmt.Errorf("loading data: %w", err)
	}
	queries, err := dataset.LoadFvecsFile(*queryPath, *maxQ)
	if err != nil {
		return fmt.Errorf("loading queries: %w", err)
	}
	if queries.D != data.D {
		return fmt.Errorf("dimension mismatch: data %d vs queries %d", data.D, queries.D)
	}

	metric, err := core.ParseMetricKind(*metricName)
	if err != nil {
		return err
	}
	opts := core.Options{
		Metric:      metric,
		Bits:        *bits,
		Partitioner: core.PartitionNone,
		AutoTuneW:   true,
		Groups:      *groups,
		Params:      lshfunc.Params{M: *m, L: *l, W: *w},
	}
	if *bilevel {
		opts.Partitioner = core.PartitionRPTree
	}
	switch strings.ToUpper(*latName) {
	case "ZM":
		opts.Lattice = core.LatticeZM
	case "E8":
		opts.Lattice = core.LatticeE8
	default:
		return fmt.Errorf("unknown lattice %q", *latName)
	}
	switch strings.ToLower(*probeName) {
	case "single":
		opts.ProbeMode = core.ProbeSingle
	case "multi":
		opts.ProbeMode = core.ProbeMulti
	case "hierarchy":
		opts.ProbeMode = core.ProbeHierarchy
	default:
		return fmt.Errorf("unknown probe mode %q", *probeName)
	}

	start := time.Now()
	ix, err := core.Build(data, opts, xrand.New(*seed))
	if err != nil {
		return err
	}
	buildDur := time.Since(start)

	plan := core.Plan{TargetRecall: *recall, StableProbes: *stableProbes, MaxCandidates: *maxCands}
	planned := !plan.IsDefault()
	start = time.Now()
	var results []knn.Result
	var stats []core.QueryStats
	var planStats []core.PlanStats
	if planned {
		plan.K = *k
		results, planStats = ix.QueryBatchPlan(queries, plan)
		stats = make([]core.QueryStats, len(planStats))
		for i := range planStats {
			stats[i] = planStats[i].QueryStats
		}
	} else {
		results, stats = ix.QueryBatch(queries, *k)
	}
	queryDur := time.Since(start)

	// Ground truth in the index's own metric: brute-force Euclidean over
	// the raw rows, or the exact Hamming scan over the index's sketches.
	var truth []knn.Result
	if metric == core.MetricHamming {
		truth = make([]knn.Result, queries.N)
		for qi := range truth {
			truth[qi] = ix.ExactKNN(queries.Row(qi), *k)
		}
	} else {
		truth = knn.ExactAll(data, queries, *k)
	}
	var gotRecall, errRatio, sel float64
	for qi := range results {
		gotRecall += knn.Recall(truth[qi].IDs, results[qi].IDs)
		errRatio += knn.ErrorRatio(truth[qi].Dists, results[qi].Dists)
		sel += knn.Selectivity(stats[qi].Scanned, data.N)
		if *verbose {
			fmt.Printf("query %d: %v\n", qi, results[qi].IDs)
		}
	}
	nq := float64(queries.N)
	fmt.Printf("indexed %d vectors (dim %d) in %v; %d queries in %v (%.1f q/s)\n",
		data.N, data.D, buildDur.Round(time.Millisecond), queries.N,
		queryDur.Round(time.Millisecond), nq/queryDur.Seconds())
	fmt.Printf("method: bilevel=%v lattice=%v probe=%v groups=%d M=%d L=%d Wx=%g\n",
		*bilevel, opts.Lattice, opts.ProbeMode, ix.NumGroups(), *m, *l, *w)
	if planned {
		var tables, early float64
		for i := range planStats {
			tables += float64(planStats[i].TablesProbed)
			if planStats[i].TerminatedEarly {
				early++
			}
		}
		fmt.Printf("plan: target-recall=%g stable-probes=%d max-candidates=%d  mean-tables-probed=%.2f/%d  early-terminated=%.1f%%\n",
			*recall, *stableProbes, *maxCands, tables/nq, *l, 100*early/nq)
	}
	fmt.Printf("recall=%.4f  error-ratio=%.4f  selectivity=%.4f\n",
		gotRecall/nq, errRatio/nq, sel/nq)
	return nil
}
