package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"bilsh/internal/experiments"
	"bilsh/internal/metrics"
)

// figureRunner adapts each harness to a common signature.
type figureRunner func(*experiments.Workload) (experiments.FigureResult, error)

var figureRunners = map[string]figureRunner{
	"fig5":  experiments.Figure5,
	"fig6":  experiments.Figure6,
	"fig7":  experiments.Figure7,
	"fig8":  experiments.Figure8,
	"fig9":  experiments.Figure9,
	"fig10": experiments.Figure10,
	"fig11": experiments.Figure11,
	"fig12": experiments.Figure12,
	"fig13a": func(w *experiments.Workload) (experiments.FigureResult, error) {
		return experiments.Figure13a(w, nil)
	},
	"fig13b": func(w *experiments.Workload) (experiments.FigureResult, error) {
		return experiments.Figure13b(w, nil)
	},
	"fig13c":         experiments.Figure13c,
	"rp-rule":        experiments.RPRuleComparison,
	"tuner-ablation": experiments.TunerAblation,
	"lattice-cmp":    experiments.LatticeComparison,
	"group-routing":  experiments.GroupRouting,
	"probe-budget": func(w *experiments.Workload) (experiments.FigureResult, error) {
		return experiments.ProbeBudget(w, nil)
	},
}

// figureOrder fixes the "all" execution order.
var figureOrder = []string{
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13a", "fig13b", "fig13c",
	"rp-rule", "tuner-ablation", "lattice-cmp", "group-routing", "probe-budget",
	"aspect-variance",
}

// cmdExp runs one or all experiment harnesses and prints their tables.
func cmdExp(args []string) error {
	fs := newFlagSet("exp")
	fig := fs.String("fig", "all", "figure id ("+strings.Join(figureOrder, ", ")+") or all")
	scale := fs.String("scale", "default", "workload scale: tiny or default")
	n := fs.Int("n", 0, "override: indexed items")
	q := fs.Int("queries", 0, "override: query count")
	d := fs.Int("d", 0, "override: dimension")
	k := fs.Int("k", 0, "override: neighborhood size")
	reps := fs.Int("reps", 0, "override: projection repetitions")
	seed := fs.Int64("seed", 0, "override: seed")
	profile := fs.String("workload", "labelme", "workload profile: labelme or tinyimages")
	csvDir := fs.String("csv", "", "also write each figure's series to <dir>/<fig>.csv")
	metricsOut := fs.Bool("metrics", false, "print the accumulated process metrics (Prometheus text) after the run")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof/ and /metrics on this address while experiments run (e.g. localhost:6060)")
	statsEvery := fs.Duration("stats-interval", 0, "log a one-line stats summary at this interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	if *pprofAddr != "" {
		go func() {
			// A debug-only listener: pprof for profiling the harnesses, the
			// metrics registry for watching stage counters move mid-run.
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				metrics.Default().WritePrometheus(w)
			})
			srv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := srv.ListenAndServe(); err != nil {
				fmt.Fprintf(os.Stderr, "exp: pprof listener: %v\n", err)
			}
		}()
	}
	if *statsEvery > 0 {
		logger := metrics.NewLogger(metrics.Default(), *statsEvery, log.Printf)
		logger.Start()
		defer logger.Stop()
	}
	if *metricsOut {
		defer func() {
			fmt.Println("--- metrics ---")
			if err := metrics.Default().WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "exp: writing metrics: %v\n", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *scale == "tiny" {
		cfg = experiments.Tiny()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *q > 0 {
		cfg.Queries = *q
	}
	if *d > 0 {
		cfg.D = *d
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Profile = *profile

	fmt.Printf("workload: profile=%s n=%d queries=%d d=%d k=%d m=%d groups=%d reps=%d seed=%d\n",
		cfg.Profile, cfg.N, cfg.Queries, cfg.D, cfg.K, cfg.M, cfg.Groups, cfg.Reps, cfg.Seed)
	start := time.Now()
	w, err := experiments.NewWorkload(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("workload + exact ground truth ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	ids := []string{*fig}
	if *fig == "all" {
		ids = figureOrder
	}
	for _, id := range ids {
		start := time.Now()
		if id == "aspect-variance" {
			res, err := experiments.AspectVariance(cfg, nil)
			if err != nil {
				return fmt.Errorf("aspect-variance: %w", err)
			}
			if err := res.WriteTable(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("(%s done in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
			continue
		}
		if id == "fig4" {
			res, err := experiments.Figure4(w)
			if err != nil {
				return fmt.Errorf("fig4: %w", err)
			}
			if err := res.WriteTable(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeCSVFile(*csvDir+"/fig4.csv", res.WriteCSV); err != nil {
					return err
				}
			}
		} else {
			runner, ok := figureRunners[id]
			if !ok {
				return fmt.Errorf("unknown figure %q (want one of %s)", id, strings.Join(figureOrder, ", "))
			}
			res, err := runner(w)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if err := res.WriteTable(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeCSVFile(*csvDir+"/"+id+".csv", res.WriteCSV); err != nil {
					return err
				}
			}
		}
		fmt.Printf("(%s done in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeCSVFile writes one figure's CSV through the given serializer.
func writeCSVFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
