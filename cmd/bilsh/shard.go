package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/durable"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/metrics"
	"bilsh/internal/router"
	"bilsh/internal/server"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// The sharding commands (docs/sharding.md):
//
//	shard-split  cut a built index into per-shard datasets + a shard map
//	shard-serve  serve one shard (serve.go; cmdShardServe)
//	router       scatter-gather front end over running shards
//	shard-bench  in-process cluster benchmark -> BENCH_shard.json

// cmdShardSplit cuts a built index into S shard datasets along its
// level-1 leaves (LPT-balanced), writing per shard an fvecs file and an
// id map ("local global" lines), plus the shard map the router loads. A
// PartitionNone index has no leaves; its rows are dealt round-robin and
// the map is the full-scatter map.
func cmdShardSplit(args []string) error {
	fs := newFlagSet("shard-split")
	indexPath := fs.String("index", "", "index file from 'bilsh build' (required)")
	outDir := fs.String("out", "shards", "output directory")
	shards := fs.Int("shards", 2, "number of shards")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("shard-split: -index is required")
	}
	if *shards < 1 {
		return fmt.Errorf("shard-split: -shards must be >= 1, got %d", *shards)
	}
	f, err := os.Open(*indexPath)
	if err != nil {
		return err
	}
	ix, err := core.ReadIndex(f)
	f.Close()
	if err != nil {
		return err
	}
	d := ix.Describe()
	if d.PendingInserts > 0 || d.PendingDeletes > 0 {
		return fmt.Errorf("shard-split: index has %d pending inserts and %d pending deletes; compact and save it first",
			d.PendingInserts, d.PendingDeletes)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	// Global ids per shard. With a level-1 tree, leaves are the unit of
	// placement (a query's probe set is a set of leaves, so co-locating a
	// leaf keeps its fan-out contribution to one shard); without one,
	// round-robin spreads rows evenly and every query scatters.
	perShard := make([][]int, *shards)
	var m *router.ShardMap
	if tree := ix.Tree(); tree != nil {
		sizes := make([]int, d.Groups)
		for g := 0; g < d.Groups; g++ {
			sizes[g] = len(ix.GroupMembers(g))
		}
		leafToShard := router.AssignLeaves(sizes, *shards)
		m, err = router.NewShardMap(tree, leafToShard, *shards)
		if err != nil {
			return err
		}
		for g := 0; g < d.Groups; g++ {
			s := leafToShard[g]
			perShard[s] = append(perShard[s], ix.GroupMembers(g)...)
		}
	} else {
		m, err = router.ScatterMap(*shards)
		if err != nil {
			return err
		}
		for id := 0; id < ix.Len(); id++ {
			perShard[id%*shards] = append(perShard[id%*shards], id)
		}
	}

	mapPath := filepath.Join(*outDir, "shardmap.bin")
	if err := router.SaveShardMap(mapPath, m); err != nil {
		return err
	}
	for s := 0; s < *shards; s++ {
		gids := perShard[s]
		sort.Ints(gids)
		mat := vec.NewMatrix(len(gids), d.Dim)
		for local, gid := range gids {
			copy(mat.Row(local), ix.Vector(gid))
		}
		fv := filepath.Join(*outDir, fmt.Sprintf("shard%d.fvecs", s))
		if err := dataset.SaveFvecsFile(fv, mat); err != nil {
			return err
		}
		idPath := filepath.Join(*outDir, fmt.Sprintf("shard%d.ids", s))
		err := durable.AtomicWrite(idPath, func(f *os.File) error {
			for local, gid := range gids {
				if _, err := fmt.Fprintf(f, "%d %d\n", local, gid); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("shard %d: %6d vectors -> %s, %s\n", s, len(gids), fv, idPath)
	}
	kind := "leaf-aware"
	if !m.LeafAware() {
		kind = "scatter"
	}
	fmt.Printf("shard map (%s, %d leaves) -> %s\n", kind, m.NumLeaves(), mapPath)
	fmt.Printf("next: build each shard with 'bilsh build -data %s/shard<i>.fvecs -bilevel=false' and start 'bilsh shard-serve'\n", *outDir)
	return nil
}

// parseShardAddrs parses the router's -shards flag: shard sets separated
// by ';', replica addresses within a set by ',', the first address being
// the primary. "http://a:1,http://a:2;http://b:1" is two shards, the
// first with one replica.
func parseShardAddrs(s string) ([]router.ShardSet, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no shard addresses given")
	}
	var sets []router.ShardSet
	for i, part := range strings.Split(s, ";") {
		var addrs []string
		for _, a := range strings.Split(part, ",") {
			a = strings.TrimRight(strings.TrimSpace(a), "/")
			if a == "" {
				continue
			}
			if !strings.Contains(a, "://") {
				a = "http://" + a
			}
			addrs = append(addrs, a)
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("shard %d has no addresses", i)
		}
		sets = append(sets, router.ShardSet{Addrs: addrs})
	}
	return sets, nil
}

// cmdRouter runs the scatter-gather front end over running shard
// servers.
func cmdRouter(args []string) error {
	fs := newFlagSet("router")
	mapPath := fs.String("map", "", "shard map from 'bilsh shard-split' (empty = full scatter over all shards)")
	shardsFlag := fs.String("shards", "", "shard addresses: ';' between shards, ',' between a shard's replicas, primary first (required)")
	addr := fs.String("addr", "127.0.0.1:8090", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	spill := fs.Int("spill", 1, "level-1 leaves probed per query (1 = home leaf only; more trades fan-out for recall)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-attempt shard request timeout")
	hedge := fs.Duration("hedge", 0, "launch a hedged attempt on the next replica after this much silence (0 disables)")
	retries := fs.Int("retries", 1, "extra read attempts on other replicas after a failure")
	healthEvery := fs.Duration("health-interval", 2*time.Second, "background shard health-probe cadence")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	adaptive := fs.Bool("adaptive", false, "re-tune the forwarded default query plan online from shard replies (docs/adaptive.md)")
	adaptiveRecall := fs.Float64("adaptive-recall", 0.9, "recall SLO the adaptive forwarded plan targets, in (0,1)")
	adaptiveEvery := fs.Duration("adaptive-interval", 10*time.Second, "re-tune cadence for -adaptive")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sets, err := parseShardAddrs(*shardsFlag)
	if err != nil {
		return fmt.Errorf("router: -shards: %v", err)
	}
	var m *router.ShardMap
	if *mapPath != "" {
		if m, err = router.LoadShardMap(*mapPath); err != nil {
			return err
		}
	} else {
		if m, err = router.ScatterMap(len(sets)); err != nil {
			return err
		}
	}
	rt, err := router.New(router.Options{
		Map:            m,
		Shards:         sets,
		Spill:          *spill,
		Timeout:        *timeout,
		HedgeDelay:     *hedge,
		Retries:        *retries,
		HealthInterval: *healthEvery,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)
	defer rt.Stop()
	if *adaptive {
		rt.StartAdaptive(ctx, router.AdaptiveConfig{
			TargetRecall: *adaptiveRecall,
			Interval:     *adaptiveEvery,
			Log:          log.Default(),
		})
		fmt.Printf("adaptive: re-tuning forwarded plan every %v toward recall %.2f\n", *adaptiveEvery, *adaptiveRecall)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	kind := "scatter"
	if m.LeafAware() {
		kind = fmt.Sprintf("leaf-aware (%d leaves, spill %d)", m.NumLeaves(), *spill)
	}
	fmt.Printf("routing %d shards, %s, on http://%s (hedge=%v timeout=%v)\n",
		m.NumShards(), kind, ln.Addr(), *hedge, *timeout)
	srv := &http.Server{Handler: rt.Handler()}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	err = srv.Serve(ln)
	if err == http.ErrServerClosed {
		fmt.Println("shutdown: in-flight requests drained")
		err = nil
	}
	return err
}

// shardBenchSide is one side of the BENCH_shard.json comparison.
type shardBenchSide struct {
	QPS        float64 `json:"qps"`
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
	Recall     float64 `json:"recall"`
	MeanFanout float64 `json:"mean_fanout,omitempty"`
}

// cmdShardBench benchmarks an in-process cluster against a single node:
// it builds one bi-level index, splits it along its leaves into S shard
// servers on loopback ports, fronts them with a router, and measures
// q/s, latency percentiles and recall over the same queries for both
// deployments, plus the router's mean shard fan-out (the leaf-aware
// routing win: fan-out < S means most shards never saw the query).
func cmdShardBench(args []string) error {
	fs := newFlagSet("shard-bench")
	n := fs.Int("n", 8000, "dataset size")
	d := fs.Int("d", 32, "dimensionality")
	nq := fs.Int("queries", 200, "query count")
	k := fs.Int("k", 10, "neighbors per query")
	shards := fs.Int("shards", 4, "shard count")
	spill := fs.Int("spill", 2, "router leaf probe budget")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "BENCH_shard.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := xrand.New(*seed)
	data, _, err := dataset.Clustered(dataset.DefaultClusteredSpec(*n+*nq, *d), rng)
	if err != nil {
		return err
	}
	train, queries := dataset.Split(data, *nq, rng)
	truth := knn.ExactAll(train, queries, *k)

	opts := core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      4 * *shards, // a few leaves per shard so LPT can balance
		AutoTuneW:   true,
		Params:      lshfunc.Params{M: 8, L: 10, W: 1},
	}
	mono, err := core.Build(train, opts, xrand.New(*seed+1))
	if err != nil {
		return err
	}

	// Split along leaves, exactly as shard-split does on disk.
	md := mono.Describe()
	sizes := make([]int, md.Groups)
	for g := range sizes {
		sizes[g] = len(mono.GroupMembers(g))
	}
	leafToShard := router.AssignLeaves(sizes, *shards)
	smap, err := router.NewShardMap(mono.Tree(), leafToShard, *shards)
	if err != nil {
		return err
	}
	perShard := make([][]int, *shards)
	for g := 0; g < md.Groups; g++ {
		s := leafToShard[g]
		perShard[s] = append(perShard[s], mono.GroupMembers(g)...)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	shardOpts := opts
	shardOpts.Partitioner = core.PartitionNone
	sets := make([]router.ShardSet, *shards)
	for s := 0; s < *shards; s++ {
		gids := perShard[s]
		sort.Ints(gids)
		six, err := core.Build(train.Subset(gids), shardOpts, xrand.New(*seed+2+int64(s)))
		if err != nil {
			return err
		}
		locals := make([]int, len(gids))
		for i := range locals {
			locals[i] = i
		}
		im, err := server.NewIDMap(locals, gids)
		if err != nil {
			return err
		}
		api := server.New(six, false)
		api.SetShardID(s)
		api.SetIDMap(im)
		api.SetRegistry(metrics.NewRegistry())
		addr, err := serveInProcess(ctx, api)
		if err != nil {
			return err
		}
		sets[s] = router.ShardSet{Addrs: []string{addr}}
		fmt.Printf("shard %d: %d vectors on %s\n", s, len(gids), addr)
	}
	single := server.New(mono, false)
	single.SetRegistry(metrics.NewRegistry())
	singleAddr, err := serveInProcess(ctx, single)
	if err != nil {
		return err
	}

	rt, err := router.New(router.Options{
		Map: smap, Shards: sets, Spill: *spill, Registry: metrics.NewRegistry(),
	})
	if err != nil {
		return err
	}
	routerAddr, err := serveHandlerInProcess(ctx, rt.Handler())
	if err != nil {
		return err
	}
	fmt.Printf("router on %s (spill %d), single node on %s\n", routerAddr, *spill, singleAddr)

	singleSide, err := benchQueries(singleAddr, queries, *k, 0, truth)
	if err != nil {
		return err
	}
	routerSide, err := benchQueries(routerAddr, queries, *k, *spill, truth)
	if err != nil {
		return err
	}

	report := map[string]interface{}{
		"bench": "shard",
		"config": map[string]interface{}{
			"n": *n, "d": *d, "queries": *nq, "k": *k,
			"shards": *shards, "spill": *spill, "seed": *seed,
			"m": opts.Params.M, "l": opts.Params.L, "leaves": md.Groups,
		},
		"single": singleSide,
		"router": routerSide,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\n%-8s %10s %10s %10s %8s %8s\n", "side", "q/s", "p50 ms", "p99 ms", "recall", "fanout")
	fmt.Printf("%-8s %10.0f %10.3f %10.3f %8.3f %8s\n", "single",
		singleSide.QPS, singleSide.P50Millis, singleSide.P99Millis, singleSide.Recall, "-")
	fmt.Printf("%-8s %10.0f %10.3f %10.3f %8.3f %8.2f\n", "router",
		routerSide.QPS, routerSide.P50Millis, routerSide.P99Millis, routerSide.Recall, routerSide.MeanFanout)
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// serveInProcess starts api on a loopback ephemeral port, returning its
// base URL; the server dies with ctx.
func serveInProcess(ctx context.Context, api *server.Server) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go api.Serve(ctx, ln)
	return "http://" + ln.Addr().String(), nil
}

func serveHandlerInProcess(ctx context.Context, h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	go func() { <-ctx.Done(); srv.Close() }()
	return "http://" + ln.Addr().String(), nil
}

// benchQueries runs the query set once over HTTP (sequentially — both
// sides pay the same per-request overhead) and aggregates throughput,
// latency percentiles, recall against truth, and mean fan-out when the
// responses carry one.
func benchQueries(base string, queries *vec.Matrix, k, spill int, truth []knn.Result) (*shardBenchSide, error) {
	hc := &http.Client{Timeout: 30 * time.Second}
	durs := make([]float64, 0, queries.N)
	var recallSum, fanoutSum float64
	fanouts := 0
	wall := time.Now()
	for i := 0; i < queries.N; i++ {
		req := map[string]interface{}{"vector": queries.Row(i), "k": k}
		if spill > 0 {
			req["spill"] = spill
		}
		blob, _ := json.Marshal(req)
		t0 := time.Now()
		resp, err := hc.Post(base+"/query", "application/json", strings.NewReader(string(blob)))
		if err != nil {
			return nil, err
		}
		var body struct {
			Neighbors []struct {
				ID int `json:"id"`
			} `json:"neighbors"`
			ShardsContacted int `json:"shards_contacted"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		durs = append(durs, time.Since(t0).Seconds()*1000)
		got := make([]int, len(body.Neighbors))
		for j, nb := range body.Neighbors {
			got[j] = nb.ID
		}
		recallSum += knn.Recall(truth[i].IDs, got)
		if body.ShardsContacted > 0 {
			fanoutSum += float64(body.ShardsContacted)
			fanouts++
		}
	}
	elapsed := time.Since(wall).Seconds()
	sort.Float64s(durs)
	side := &shardBenchSide{
		QPS:       float64(queries.N) / elapsed,
		P50Millis: percentile(durs, 0.50),
		P99Millis: percentile(durs, 0.99),
		Recall:    recallSum / float64(queries.N),
	}
	if fanouts > 0 {
		side.MeanFanout = fanoutSum / float64(fanouts)
	}
	return side, nil
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
