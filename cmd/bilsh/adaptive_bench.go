package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// cmdAdaptiveBench benchmarks the adaptive query engine against the
// fixed-budget baseline on one in-process index: the same queries run
// once under the default plan (probe everything, the legacy behavior)
// and once under an adaptive plan (TargetRecall SLO + shortlist-plateau
// early termination, the budgets `serve -adaptive` converges to), and
// the report shows what the tail pays for the fixed budget. Easy
// queries — the majority on clustered data — saturate their shortlist
// after a few tables, so the plateau rule sends them home early and p99
// drops while measured recall stays put. BENCH_adaptive.json is the CI
// artifact backing that claim (docs/adaptive.md).
func cmdAdaptiveBench(args []string) error {
	fs := newFlagSet("adaptive-bench")
	n := fs.Int("n", 40000, "dataset size")
	d := fs.Int("d", 32, "dimensionality")
	nq := fs.Int("queries", 400, "query count")
	k := fs.Int("k", 10, "neighbors per query")
	m := fs.Int("m", 8, "hash code length M")
	l := fs.Int("l", 16, "hash tables L")
	probes := fs.Int("probes", 24, "multiprobe budget per table")
	groups := fs.Int("groups", 16, "level-1 partitions")
	target := fs.Float64("recall", 0.95, "TargetRecall SLO of the adaptive plan, in (0,1)")
	stable := fs.Int("stable-probes", 48, "adaptive plan's plateau window: stop after this many probes without shortlist growth")
	headroom := fs.Float64("headroom", 1, "adaptive plan's collision-mass cap as a multiple of the measured mean candidate count (the online tuner's rule; 0 = no cap)")
	rerank := fs.Int("rerank", 12, "adaptive plan's exact re-rank multiplier (0 = index default)")
	quantize := fs.String("quantize", "sq8", "row store: sq8 (quantized scan + exact re-rank) or none")
	reps := fs.Int("reps", 3, "timed repetitions per side (after one warmup)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "BENCH_adaptive.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	qkind, err := core.ParseQuantizeKind(*quantize)
	if err != nil {
		return err
	}

	rng := xrand.New(*seed)
	// A deliberately heterogeneous workload: wide ScaleSpread and strong
	// PowerLaw put compact and diffuse clusters of very different sizes in
	// one dataset, so per-query difficulty varies by an order of magnitude
	// — the regime the paper's per-cell tuning (and this engine's per-query
	// adaptation) exists for. A uniform-difficulty workload has no tail for
	// an adaptive plan to win back.
	spec := dataset.DefaultClusteredSpec(*n+*nq, *d)
	spec.ScaleSpread = 10
	spec.PowerLaw = 1.0
	data, _, err := dataset.Clustered(spec, rng)
	if err != nil {
		return err
	}
	train, queries := dataset.Split(data, *nq, rng)
	truth := knn.ExactAll(train, queries, *k)

	opts := core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      *groups,
		ProbeMode:   core.ProbeMulti,
		Probes:      *probes,
		AutoTuneW:   true,
		TuneK:       *k,
		Quantize:    qkind,
		Params:      lshfunc.Params{M: *m, L: *l, W: 1},
	}
	ix, err := core.Build(train, opts, xrand.New(*seed+1))
	if err != nil {
		return err
	}
	fmt.Printf("adaptive-bench: %d vectors, dim %d, %d queries, k=%d, M=%d L=%d probes=%d store=%s\n",
		train.N, *d, queries.N, *k, *m, *l, *probes, *quantize)

	// The fixed side is today's behavior: every query spends the full
	// budget. Its measured mean candidate count then feeds the adaptive
	// side's collision-mass cap the same way the online tuner derives it
	// from the live candidates histogram (internal/tuner.Online).
	fixedPlan := core.Plan{K: *k}
	fixed := benchPlanSide(ix, queries, truth, fixedPlan, *reps)
	adaptivePlan := core.Plan{
		K:            *k,
		TargetRecall: *target,
		StableProbes: *stable,
		RerankFactor: *rerank,
	}
	if *headroom > 0 {
		adaptivePlan.MaxCandidates = int(*headroom*fixed.MeanCandidates) + 1
	}
	adaptive := benchPlanSide(ix, queries, truth, adaptivePlan, *reps)

	// The acceptance claim: the adaptive plan beats the fixed budget at
	// the tail without giving up measured recall.
	pass := adaptive.P99Millis < fixed.P99Millis && adaptive.Recall+1e-9 >= fixed.Recall

	report := map[string]interface{}{
		"config": map[string]interface{}{
			"n": *n, "d": *d, "queries": *nq, "k": *k,
			"m": *m, "l": *l, "probes": *probes, "groups": *groups,
			"quantize":      *quantize,
			"target_recall": *target, "stable_probes": *stable,
			"headroom": *headroom, "max_candidates": adaptivePlan.MaxCandidates,
			"rerank": *rerank, "reps": *reps, "seed": *seed,
		},
		"fixed":    fixed,
		"adaptive": adaptive,
		"pass":     pass,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("\n%-9s %10s %10s %10s %8s %8s %8s %9s %7s\n",
		"side", "q/s", "p50 ms", "p99 ms", "recall", "tables", "cands", "p99cands", "early")
	for _, row := range []struct {
		name string
		s    *adaptiveBenchSide
	}{{"fixed", fixed}, {"adaptive", adaptive}} {
		fmt.Printf("%-9s %10.0f %10.3f %10.3f %8.3f %8.2f %8.0f %9.0f %6.1f%%\n",
			row.name, row.s.QPS, row.s.P50Millis, row.s.P99Millis, row.s.Recall,
			row.s.MeanTables, row.s.MeanCandidates, row.s.P99Candidates, 100*row.s.EarlyFrac)
	}
	fmt.Printf("wrote %s\n", *out)
	if !pass {
		return fmt.Errorf("adaptive-bench: adaptive plan did not beat the fixed budget (p99 %.3f vs %.3f ms, recall %.4f vs %.4f)",
			adaptive.P99Millis, fixed.P99Millis, adaptive.Recall, fixed.Recall)
	}
	fmt.Printf("p99 %.3f -> %.3f ms (%.0f%% lower) at recall %.4f vs %.4f\n",
		fixed.P99Millis, adaptive.P99Millis, 100*(1-adaptive.P99Millis/fixed.P99Millis),
		fixed.Recall, adaptive.Recall)
	return nil
}

// adaptiveBenchSide is one side of the BENCH_adaptive.json comparison.
type adaptiveBenchSide struct {
	QPS            float64 `json:"qps"`
	P50Millis      float64 `json:"p50_ms"`
	P99Millis      float64 `json:"p99_ms"`
	Recall         float64 `json:"recall"`
	MeanTables     float64 `json:"mean_tables_probed"`
	MeanCandidates float64 `json:"mean_candidates"`
	P99Candidates  float64 `json:"p99_candidates"`
	EarlyFrac      float64 `json:"early_terminated_frac"`
}

// benchPlanSide times every query individually under one plan: one
// warmup pass, then reps timed passes. Each query's latency is its
// minimum across the timed passes — the repeatable cost of the work the
// plan actually does, with scheduler noise stripped — and the
// percentiles are over those per-query minima. Results are
// deterministic across passes, so quality numbers come from the first
// timed pass only.
func benchPlanSide(ix *core.Index, queries *vec.Matrix, truth []knn.Result, p core.Plan, reps int) *adaptiveBenchSide {
	side := &adaptiveBenchSide{}
	lat := make([]float64, queries.N)
	cands := make([]float64, 0, queries.N)
	var total time.Duration
	var timedQueries int
	for rep := 0; rep <= reps; rep++ {
		timed := rep > 0
		for qi := 0; qi < queries.N; qi++ {
			start := time.Now()
			res, ps := ix.QueryPlan(queries.Row(qi), p)
			el := time.Since(start)
			if !timed {
				continue
			}
			ms := el.Seconds() * 1000
			total += el
			timedQueries++
			if rep == 1 {
				lat[qi] = ms
				cands = append(cands, float64(ps.Candidates))
				side.Recall += knn.Recall(truth[qi].IDs, res.IDs)
				side.MeanTables += float64(ps.TablesProbed)
				side.MeanCandidates += float64(ps.Candidates)
				if ps.TerminatedEarly {
					side.EarlyFrac++
				}
			} else if ms < lat[qi] {
				lat[qi] = ms
			}
		}
	}
	nq := float64(queries.N)
	side.Recall /= nq
	side.MeanTables /= nq
	side.MeanCandidates /= nq
	side.EarlyFrac /= nq
	sort.Float64s(lat)
	sort.Float64s(cands)
	side.P50Millis = percentile(lat, 0.5)
	side.P99Millis = percentile(lat, 0.99)
	side.P99Candidates = percentile(cands, 0.99)
	side.QPS = float64(timedQueries) / total.Seconds()
	return side
}
