package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// cmdOutOfCoreBench measures what serving an index much larger than RAM
// actually costs. It streams a dataset through the out-of-core builder
// into one paged (v3) index file, then queries that same file four ways:
// fully heap-resident (the baseline every in-memory benchmark reports),
// mapped with no residency cap, and mapped with the exact-row resident
// set capped at 1/4 and 1/16 of the index size. Results must be
// byte-identical across all four — the capped runs pay page faults, not
// recall — so the report reduces to one honest number per cap: the q/s
// factor versus the heap baseline. BENCH_outofcore.json is the CI
// artifact backing docs/outofcore.md.
func cmdOutOfCoreBench(args []string) error {
	fs := newFlagSet("outofcore-bench")
	n := fs.Int("n", 60000, "dataset size")
	d := fs.Int("d", 64, "dimensionality")
	nq := fs.Int("queries", 300, "query count")
	k := fs.Int("k", 10, "neighbors per query")
	m := fs.Int("m", 8, "hash code length M")
	l := fs.Int("l", 8, "hash tables L")
	groups := fs.Int("groups", 8, "level-1 partitions")
	quantize := fs.String("quantize", "sq8", "row store: sq8 (codes pinned, exact rows demand-paged) or none")
	reps := fs.Int("reps", 2, "timed repetitions per side (after one warmup)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "BENCH_outofcore.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	qkind, err := core.ParseQuantizeKind(*quantize)
	if err != nil {
		return err
	}

	rng := xrand.New(*seed)
	spec := dataset.DefaultClusteredSpec(*n+*nq, *d)
	data, _, err := dataset.Clustered(spec, rng)
	if err != nil {
		return err
	}
	train, queries := dataset.Split(data, *nq, rng)
	truth := knn.ExactAll(train, queries, *k)

	// Build out-of-core: the full matrix is streamed to fvecs and back
	// through BuildDisk, so this command exercises the same three-pass
	// path a dataset too large for RAM would take.
	tmp, err := os.MkdirTemp("", "bilsh-oocbench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dataPath := filepath.Join(tmp, "train.fvecs")
	df, err := os.Create(dataPath)
	if err != nil {
		return err
	}
	if err := dataset.WriteFvecs(df, train); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	opts := core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      *groups,
		ProbeMode:   core.ProbeMulti,
		Probes:      16,
		AutoTuneW:   true,
		TuneK:       *k,
		Quantize:    qkind,
		Params:      lshfunc.Params{M: *m, L: *l, W: 1},
	}
	idxPath := filepath.Join(tmp, "ix.v3")
	if _, err := core.BuildDisk(dataPath, idxPath, opts, core.OutOfCoreConfig{TempDir: tmp}, xrand.New(*seed+1)); err != nil {
		return err
	}
	st, err := os.Stat(idxPath)
	if err != nil {
		return err
	}
	indexBytes := st.Size()
	fmt.Printf("outofcore-bench: %d vectors, dim %d, %d queries, k=%d, store=%s, index file %d MiB\n",
		train.N, *d, queries.N, *k, *quantize, indexBytes>>20)

	type side struct {
		Name          string  `json:"name"`
		BudgetBytes   int64   `json:"budget_bytes"`
		ResidentBytes int64   `json:"resident_bytes"`
		QPS           float64 `json:"qps"`
		Recall        float64 `json:"recall"`
		SpeedFactor   float64 `json:"speed_factor_vs_heap"`
		Identical     bool    `json:"results_identical_to_heap"`
	}

	runSide := func(name string, o core.DiskOpenOptions, baseline [][]int) (*side, [][]int, error) {
		di, err := core.OpenDiskWith(idxPath, o)
		if err != nil {
			return nil, nil, err
		}
		defer di.Close()
		if !o.ForceHeap && !di.Mapped() {
			fmt.Printf("  %s: mmap unavailable on this host, serving from heap\n", name)
		}
		s := &side{Name: name, BudgetBytes: o.Residency.RowsBudget, Identical: true}
		results := make([][]int, queries.N)
		run := func(record bool) float64 {
			start := time.Now()
			for qi := 0; qi < queries.N; qi++ {
				r, _ := di.Query(queries.Row(qi), *k)
				if record {
					results[qi] = r.IDs
				}
				// Enforcement interleaves with traffic the way the serve
				// ticker does, so the cap binds mid-run, not just between
				// runs.
				if o.Residency.RowsBudget > 0 && qi%64 == 63 {
					di.EnforceResidency()
				}
			}
			return time.Since(start).Seconds()
		}
		run(true) // warmup + result capture
		var total float64
		for rep := 0; rep < *reps; rep++ {
			di.EnforceResidency()
			total += run(false)
		}
		s.QPS = float64(queries.N**reps) / total
		s.ResidentBytes = di.Residency().RowsResident
		var recall float64
		for qi, r := range results {
			recall += knn.Recall(truth[qi].IDs, r)
		}
		s.Recall = recall / float64(len(results))
		if baseline != nil {
			s.Identical = reflect.DeepEqual(results, baseline)
		}
		return s, results, nil
	}

	heap, heapResults, err := runSide("heap", core.DiskOpenOptions{ForceHeap: true}, nil)
	if err != nil {
		return err
	}
	policy := func(budget int64) core.DiskOpenOptions {
		return core.DiskOpenOptions{Residency: core.ResidencyPolicy{PinCodes: true, RowsBudget: budget}}
	}
	sides := []*side{heap}
	for _, cap := range []struct {
		name   string
		budget int64
	}{
		{"mapped-uncapped", 0},
		{"mapped-1/4", indexBytes / 4},
		{"mapped-1/16", indexBytes / 16},
	} {
		s, _, err := runSide(cap.name, policy(cap.budget), heapResults)
		if err != nil {
			return err
		}
		sides = append(sides, s)
	}
	for _, s := range sides {
		s.SpeedFactor = s.QPS / heap.QPS
	}

	// Acceptance: the 1/4-capped mapped index serves an index ≥4× its
	// resident budget with results identical to (so recall equal to) the
	// heap baseline.
	pass := true
	for _, s := range sides[1:] {
		if !s.Identical {
			pass = false
		}
		if s.BudgetBytes > 0 && indexBytes < 4*s.BudgetBytes {
			pass = false
		}
	}

	report := map[string]interface{}{
		"config": map[string]interface{}{
			"n": *n, "d": *d, "queries": *nq, "k": *k,
			"m": *m, "l": *l, "groups": *groups,
			"quantize": *quantize, "reps": *reps, "seed": *seed,
		},
		"index_bytes": indexBytes,
		"sides":       sides,
		"pass":        pass,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("\n%-16s %12s %12s %10s %8s %8s %10s\n",
		"side", "budget", "resident", "q/s", "recall", "factor", "identical")
	for _, s := range sides {
		fmt.Printf("%-16s %12s %12d %10.0f %8.3f %8.2f %10v\n",
			s.Name, fmtBudget(s.BudgetBytes), s.ResidentBytes, s.QPS, s.Recall, s.SpeedFactor, s.Identical)
	}
	fmt.Printf("index %d bytes; pass=%v\nwrote %s\n", indexBytes, pass, *out)
	if !pass {
		return fmt.Errorf("outofcore-bench: acceptance failed (results diverged or index < 4x budget)")
	}
	return nil
}
