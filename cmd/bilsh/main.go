// Command bilsh is the command-line front end of the Bi-level LSH
// reproduction: dataset generation, index construction and querying, and
// the figure-by-figure experiment harness of the paper's evaluation.
//
// Usage:
//
//	bilsh gen    -n 10000 -d 64 -out data.fvecs [-queries q.fvecs -nq 1000]
//	bilsh search -data data.fvecs -queries q.fvecs -k 10 [-bilevel] [-lattice E8]
//	bilsh exp    -fig fig5|fig6|...|fig13c|fig4|rp-rule|tuner-ablation|all
//	             [-scale tiny|default] [-n N -queries Q -d D -k K -reps R]
//	bilsh bench  -- alias for "exp -fig all"
//	bilsh quality [-preset full|small] [-out BENCH_quality.json]
//
// Every command is deterministic under -seed.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "dataset":
		err = cmdDataset(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "groundtruth":
		err = cmdGroundTruth(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "shard-split":
		err = cmdShardSplit(os.Args[2:])
	case "shard-serve":
		err = cmdShardServe(os.Args[2:])
	case "router":
		err = cmdRouter(os.Args[2:])
	case "shard-bench":
		err = cmdShardBench(os.Args[2:])
	case "adaptive-bench":
		err = cmdAdaptiveBench(os.Args[2:])
	case "outofcore-bench":
		err = cmdOutOfCoreBench(os.Args[2:])
	case "exp":
		err = cmdExp(os.Args[2:])
	case "quality":
		err = cmdQuality(os.Args[2:])
	case "bench":
		err = cmdExp(append([]string{"-fig", "all"}, os.Args[2:]...))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "bilsh: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bilsh:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `bilsh - Bi-level LSH for k-nearest neighbor computation (ICDE 2012 reproduction)

commands:
  gen          generate a synthetic clustered-manifold dataset (fvecs)
  dataset      fetch TexMex benchmark sets, convert between *vecs formats, inspect files
  build        build an index over an fvecs file and persist it
  query        load a persisted index and answer queries (parallel)
  search       one-shot build + query + quality report
  groundtruth  compute exact k-NN id lists (ivecs)
  info         describe a persisted index
  serve        expose an index over an HTTP JSON API (-data-dir for WAL-backed durability)
  shard-split  cut a built index into per-shard datasets and a shard map (docs/sharding.md)
  shard-serve  serve one shard of a cluster (serve + shard id, id map, replica bring-up)
  router       scatter-gather front end over running shards (leaf-aware routing, hedging)
  shard-bench  in-process cluster vs single-node benchmark -> BENCH_shard.json
  adaptive-bench  adaptive plan vs fixed-budget benchmark -> BENCH_adaptive.json
  outofcore-bench  mapped vs heap q/s at capped resident set -> BENCH_outofcore.json
  exp          run a paper experiment and print its table (-fig fig4..fig13c, all)
  bench        run every experiment (alias for exp -fig all)
  quality      run the deterministic quality-regression matrix against golden thresholds

run "bilsh <command> -h" for the command's flags
`)
}

// newFlagSet builds a flag set that prints its own usage on error.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}
