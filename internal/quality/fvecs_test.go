package quality

import (
	"bytes"
	"strings"
	"testing"
)

// fvecsTestConfig points the preset at the fixture relative to this
// package (the preset's committed paths are repo-root-relative for the
// CLI and Makefile).
func fvecsTestConfig() Config {
	cfg := Fvecs()
	cfg.FvecsBase = "testdata/sift-micro/base.fvecs"
	cfg.FvecsQueries = "testdata/sift-micro/query.fvecs"
	cfg.FvecsTruth = "testdata/sift-micro/truth.ivecs"
	return cfg
}

// TestGateFvecs runs the file-backed preset — including the Hamming
// golden cells — against the committed thresholds.
func TestGateFvecs(t *testing.T) {
	if testing.Short() {
		t.Skip("quality matrix skipped in -short mode")
	}
	cfg := fvecsTestConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := LoadGolden(cfg.Preset)
	if err != nil {
		t.Fatal(err)
	}
	if !g.SkipOrdering {
		t.Fatal("fvecs golden table must skip the ordering assertion (fixture too small)")
	}
	if err := g.Check(rep); err != nil {
		t.Fatal(err)
	}
	var hamming int
	for _, c := range rep.Cells {
		if strings.Contains(c.Key, "/hamming/") {
			hamming++
			if c.Lattice != "hamming" {
				t.Errorf("cell %s reports lattice %q, want the metric name", c.Key, c.Lattice)
			}
		}
		if !c.Pass {
			t.Errorf("cell %s: recall %.4f (min %.3f) error %.4f (min %.3f) selectivity %.4f (max %.4f)",
				c.Key, c.Recall, c.Threshold.MinRecall, c.ErrorRatio, c.Threshold.MinErrorRatio,
				c.Selectivity, c.Threshold.MaxSelectivity)
		}
	}
	if hamming != 4 {
		t.Fatalf("matrix has %d Hamming cells, want 4 (single/multi x standard/bilevel)", hamming)
	}
	if !rep.Pass {
		t.Fatal("fvecs quality gate failed")
	}
}

// TestFvecsDeterministic pins the acceptance property: two runs over the
// same files produce byte-identical reports.
func TestFvecsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("quality matrix skipped in -short mode")
	}
	cfg := fvecsTestConfig()
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := JSON(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := JSON(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two fvecs runs produced different report bytes")
	}
}

// TestFvecsValidation covers the mode's configuration constraints.
func TestFvecsValidation(t *testing.T) {
	bad := fvecsTestConfig()
	bad.Inserts = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted a dynamic edit workload in fvecs mode")
	}
	bad = fvecsTestConfig()
	bad.FvecsTruth = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted a missing truth path")
	}
	bad = fvecsTestConfig()
	bad.Bits = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero sketch bits")
	}
	// Shape drift between fixture and preset must be caught at load.
	drift := fvecsTestConfig()
	drift.N = 99
	if _, err := Run(drift); err == nil || !strings.Contains(err.Error(), "fixture drift") {
		t.Fatalf("fixture shape drift not caught: %v", err)
	}
}
