package quality

import (
	"math"
	"testing"

	"bilsh/internal/core"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Metamorphic properties of the pipeline: relations that must hold between
// runs on transformed inputs, without reference to absolute quality
// numbers. They catch bugs golden thresholds cannot — a probe generator
// that silently ignores its budget, a hash family that leaks coordinate-
// axis structure — because the relation is exact (monotonicity) or holds
// by isometry (rigid motions preserve every pairwise distance).

// metamorphicWorkload is the shared small build/query workload.
func metamorphicWorkload(t *testing.T) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	train, qs, _, err := Generators["manifold"](800, 80, 0, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	return train, qs
}

// recallOf answers qs and returns mean recall@k against truth.
func recallOf(ix *core.Index, qs *vec.Matrix, truth []knn.Result, k int) float64 {
	results, _ := ix.QueryBatch(qs, k)
	var sum float64
	for qi := range results {
		sum += knn.Recall(truth[qi].IDs, results[qi].IDs)
	}
	return sum / float64(qs.N)
}

// randomRotation builds a seeded orthogonal d×d matrix by Gram–Schmidt
// over Gaussian rows (Haar-distributed up to sign).
func randomRotation(d int, rng *xrand.RNG) [][]float64 {
	q := make([][]float64, d)
	for i := range q {
		row := make([]float64, d)
		for {
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			for _, prev := range q[:i] {
				var dot float64
				for j := range row {
					dot += row[j] * prev[j]
				}
				for j := range row {
					row[j] -= dot * prev[j]
				}
			}
			var norm float64
			for j := range row {
				norm += row[j] * row[j]
			}
			if norm > 1e-12 {
				norm = math.Sqrt(norm)
				for j := range row {
					row[j] /= norm
				}
				break
			}
		}
		q[i] = row
	}
	return q
}

// applyRigid returns rot·x + shift for every row of m.
func applyRigid(m *vec.Matrix, rot [][]float64, shift []float64) *vec.Matrix {
	out := vec.NewMatrix(m.N, m.D)
	for i := 0; i < m.N; i++ {
		src, dst := m.Row(i), out.Row(i)
		for r := range rot {
			var acc float64
			for c, v := range rot[r] {
				acc += v * float64(src[c])
			}
			dst[r] = float32(acc + shift[r])
		}
	}
	return out
}

// TestRecallRotationInvariant: a rigid motion (orthogonal rotation plus
// translation) of data and queries preserves every pairwise distance, so
// ground-truth ids are unchanged and recall must agree within a small
// slack (the random projections see different coordinates, so the match
// is statistical, not exact).
func TestRecallRotationInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic suite skipped in -short mode")
	}
	train, qs := metamorphicWorkload(t)
	const k = 10
	truth := knn.ExactAll(train, qs, k)

	trng := xrand.New(77)
	rot := randomRotation(train.D, trng)
	shift := make([]float64, train.D)
	for i := range shift {
		shift[i] = trng.Uniform(-5, 5)
	}
	rtrain := applyRigid(train, rot, shift)
	rqs := applyRigid(qs, rot, shift)

	// Distances are preserved, so the rotated ground truth has the same
	// ids; sanity-check on one query before trusting it.
	rtruth := knn.Exact(rtrain, rqs.Row(0), k)
	for i, id := range truth[0].IDs {
		if rtruth.IDs[i] != id {
			t.Fatalf("rigid motion changed ground truth: query 0 rank %d: %d vs %d", i, id, rtruth.IDs[i])
		}
	}

	for _, bi := range []bool{false, true} {
		opts := core.Options{
			Lattice: core.LatticeE8, ProbeMode: core.ProbeMulti, Probes: 12,
			AutoTuneW: true, TuneK: k,
			Params: lshfunc.Params{M: 8, L: 6, W: 1.0},
		}
		name := "standard"
		if bi {
			opts.Partitioner = core.PartitionRPTree
			opts.Groups = 8
			name = "bilevel"
		}
		ix, err := core.Build(train, opts, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		rix, err := core.Build(rtrain, opts, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		orig := recallOf(ix, qs, truth, k)
		rotated := recallOf(rix, rqs, truth, k)
		const slack = 0.08
		if math.Abs(orig-rotated) > slack {
			t.Errorf("%s: recall not rotation-invariant: %.4f original vs %.4f rotated (slack %.2f)",
				name, orig, rotated, slack)
		}
		if orig < 0.3 {
			t.Errorf("%s: workload too easy to be meaningful: recall %.4f", name, orig)
		}
	}
}

// TestRecallMonotoneInProbes: the multiprobe sequence is a prefix walk, so
// with an identical build (same seed; Probes is query-time only) a larger
// budget T probes a superset of buckets. Candidate sets are supersets and
// every true neighbor found at small T is still reported at large T:
// per-query candidates and recall are exactly non-decreasing, no slack.
func TestRecallMonotoneInProbes(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic suite skipped in -short mode")
	}
	train, qs := metamorphicWorkload(t)
	const k = 10
	truth := knn.ExactAll(train, qs, k)

	budgets := []int{1, 4, 16, 64}
	prevRecall := make([]float64, qs.N)
	prevCands := make([]int, qs.N)
	for bi, T := range budgets {
		opts := core.Options{
			Lattice: core.LatticeZM, ProbeMode: core.ProbeMulti, Probes: T,
			AutoTuneW: true, TuneK: k,
			Params: lshfunc.Params{M: 8, L: 4, W: 1.0},
		}
		ix, err := core.Build(train, opts, xrand.New(11))
		if err != nil {
			t.Fatal(err)
		}
		results, stats := ix.QueryBatch(qs, k)
		for qi := range results {
			r := knn.Recall(truth[qi].IDs, results[qi].IDs)
			if bi > 0 {
				if stats[qi].Candidates < prevCands[qi] {
					t.Fatalf("query %d: candidates dropped from %d (T=%d) to %d (T=%d)",
						qi, prevCands[qi], budgets[bi-1], stats[qi].Candidates, T)
				}
				if r < prevRecall[qi] {
					t.Fatalf("query %d: recall dropped from %.4f (T=%d) to %.4f (T=%d)",
						qi, prevRecall[qi], budgets[bi-1], r, T)
				}
			}
			prevRecall[qi], prevCands[qi] = r, stats[qi].Candidates
		}
	}
}

// TestRecallMonotoneInTables: with AutoTuneW off and a shared seed, table
// t's hash function is drawn from Split(t) independent of L, so an
// L2-table build contains an L1-table build as a prefix. Candidate sets
// are supersets; recall is exactly non-decreasing in L.
func TestRecallMonotoneInTables(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic suite skipped in -short mode")
	}
	train, qs := metamorphicWorkload(t)
	const k = 10
	truth := knn.ExactAll(train, qs, k)

	tables := []int{1, 2, 4, 8}
	prevRecall := make([]float64, qs.N)
	prevCands := make([]int, qs.N)
	for li, L := range tables {
		opts := core.Options{
			Lattice: core.LatticeE8, ProbeMode: core.ProbeSingle,
			Params: lshfunc.Params{M: 8, L: L, W: 3.0},
		}
		ix, err := core.Build(train, opts, xrand.New(19))
		if err != nil {
			t.Fatal(err)
		}
		results, stats := ix.QueryBatch(qs, k)
		for qi := range results {
			r := knn.Recall(truth[qi].IDs, results[qi].IDs)
			if li > 0 {
				if stats[qi].Candidates < prevCands[qi] {
					t.Fatalf("query %d: candidates dropped from %d (L=%d) to %d (L=%d)",
						qi, prevCands[qi], tables[li-1], stats[qi].Candidates, L)
				}
				if r < prevRecall[qi] {
					t.Fatalf("query %d: recall dropped from %.4f (L=%d) to %.4f (L=%d)",
						qi, prevRecall[qi], tables[li-1], r, L)
				}
			}
			prevRecall[qi], prevCands[qi] = r, stats[qi].Candidates
		}
	}
}
