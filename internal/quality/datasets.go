package quality

import (
	"fmt"
	"math"

	"bilsh/internal/dataset"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// A Generator produces one named synthetic workload: the indexed training
// rows, a disjoint query set, and the rows the dynamic-overlay cells
// insert. The same (name, sizes, seed) always yields the same bytes; the
// oracle cache and the golden thresholds both rely on that.
type Generator func(n, queries, inserts, d int, seed int64) (train, qs, ins *vec.Matrix, err error)

// Generators is the registry of workload generators the matrix can run
// over. Each stresses a different structural regime:
//
//   - "manifold": the documented GIST substitution — anisotropic low-dim
//     clusters embedded in high dimension with strong per-cluster scale
//     heterogeneity, the regime Bi-level LSH's per-group tuning targets;
//   - "mixture": isotropic Gaussian mixture with log-uniform per-cluster
//     radii — no manifold structure, but enough scale heterogeneity that a
//     single global bucket width stays suboptimal;
//   - "noisy": the manifold workload with a uniform background-noise
//     fraction mixed in — cluster structure plus unstructured outliers.
var Generators = map[string]Generator{
	"manifold": genManifold,
	"mixture":  genMixture,
	"noisy":    genNoisy,
}

// genManifold is dataset.Clustered at the package defaults (intrinsic
// dimension 8, 6:1 aspect, ScaleSpread 4), split into train/query/insert.
func genManifold(n, queries, inserts, d int, seed int64) (*vec.Matrix, *vec.Matrix, *vec.Matrix, error) {
	rng := xrand.New(seed)
	spec := dataset.DefaultClusteredSpec(n+queries+inserts, d)
	all, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		return nil, nil, nil, err
	}
	return split3(all, n, queries, inserts, rng.Split(2))
}

// genMixture draws an isotropic Gaussian mixture with heterogeneous
// cluster radii: centers ~ N(0, spread²·I), points ~ center + σ_c·N(0,I)
// with σ_c log-uniform in [σ/4, 4σ].
func genMixture(n, queries, inserts, d int, seed int64) (*vec.Matrix, *vec.Matrix, *vec.Matrix, error) {
	const (
		clusters = 24
		spread   = 5.0
		sigma    = 0.8
	)
	rng := xrand.New(seed)
	total := n + queries + inserts
	m := vec.NewMatrix(total, d)
	crng := rng.Split(1)
	centers := make([][]float32, clusters)
	sigmas := make([]float64, clusters)
	for c := range centers {
		g := crng.Split(int64(c))
		centers[c] = g.GaussianVec(d)
		vec.Scale(centers[c], spread)
		sigmas[c] = sigma * math.Exp(g.Uniform(math.Log(0.25), math.Log(4)))
	}
	prng := rng.Split(2)
	for i := 0; i < total; i++ {
		c := i % clusters
		row := m.Row(i)
		copy(row, centers[c])
		for j := range row {
			row[j] += float32(prng.NormFloat64() * sigmas[c])
		}
	}
	return split3(m, n, queries, inserts, rng.Split(3))
}

// genNoisy is the manifold workload with 15% of the rows replaced by
// uniform background noise spanning the cluster support.
func genNoisy(n, queries, inserts, d int, seed int64) (*vec.Matrix, *vec.Matrix, *vec.Matrix, error) {
	rng := xrand.New(seed)
	total := n + queries + inserts
	noise := total * 15 / 100
	spec := dataset.DefaultClusteredSpec(total-noise, d)
	clustered, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		return nil, nil, nil, err
	}
	m := vec.NewMatrix(total, d)
	copy(m.Data, clustered.Data)
	// Uniform noise over the box spanning the clustered support.
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range clustered.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	nrng := rng.Split(2)
	for i := clustered.N; i < total; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = lo + float32(nrng.Float64())*(hi-lo)
		}
	}
	return split3(m, n, queries, inserts, rng.Split(3))
}

// split3 partitions all's rows into train/query/insert sets by a seeded
// permutation (the paper's protocol: disjoint queries from the same
// collection; the dynamic inserts likewise come from the collection).
func split3(all *vec.Matrix, n, queries, inserts int, rng *xrand.RNG) (*vec.Matrix, *vec.Matrix, *vec.Matrix, error) {
	if all.N != n+queries+inserts {
		return nil, nil, nil, fmt.Errorf("quality: generator produced %d rows, want %d", all.N, n+queries+inserts)
	}
	perm := rng.Perm(all.N)
	train := all.Subset(perm[:n])
	qs := all.Subset(perm[n : n+queries])
	ins := all.Subset(perm[n+queries:])
	return train, qs, ins, nil
}
