// Package quality is the deterministic quality-regression harness: the
// enforced test surface for the paper's central claim (Section VI) that
// Bi-level LSH delivers higher recall and lower distance error at equal
// candidate cost than standard LSH.
//
// The harness has four parts:
//
//   - seeded synthetic dataset generators (Gaussian mixtures, low-dim
//     manifolds embedded in high dimension, clustered data with uniform
//     background noise) driven by internal/xrand, so every run replays
//     bit-identically from a Config seed (datasets.go);
//   - an exact k-NN oracle — the parallel brute force of internal/knn —
//     cached to a golden file keyed by seed and shape, so repeated runs
//     skip the O(n·q·d) ground-truth scan (oracle.go); the planted preset
//     sidesteps the oracle entirely with queries whose exact neighbors
//     are known by construction (planted.go);
//   - a matrix runner sweeping the real index configurations — Z^M vs E8
//     lattice × single/multi/hierarchy probing × standard vs Bi-level
//     partitioning × static vs dynamic-overlay (post-insert/delete, both
//     before and after Compact) — measuring recall@K, mean distance-error
//     ratio and candidate-set cost per cell (matrix.go);
//   - committed golden thresholds with explicit slack that every cell must
//     meet, plus the paper's Fig. 7 ordering assertion: each Bi-level cell
//     must reach at least its standard-LSH baseline's recall at a matched
//     candidate budget (golden.go, golden/*.json).
//
// Budget matching: standard LSH and Bi-level LSH are not compared at equal
// bucket width — a width that gives Bi-level a sane candidate set makes
// standard LSH scan most of the dataset (compare the selectivity columns
// of Figs. 5–10). Instead each (partitioner, probe mode) pair runs at a
// calibrated width scale chosen so the two methods spend a comparable
// candidate budget, which is exactly the regime the paper's "higher recall
// at the same selectivity" claim is about. The calibrated widths are part
// of the preset and therefore of the committed golden state.
//
// Entry points: `make quality` (the CI gate — runs the Full preset through
// cmd/bilsh and writes BENCH_quality.json) and the package tests (the
// Small preset, skipped under -short). See docs/testing.md.
package quality

import (
	"fmt"

	"bilsh/internal/core"
)

// ProbeWidths is one width-scale calibration: the Params.W multiplier
// applied on top of the auto-tuned per-group width, per probe mode.
type ProbeWidths struct {
	Single    float64 `json:"single"`
	Multi     float64 `json:"multi"`
	Hierarchy float64 `json:"hierarchy"`
}

// Widths carries the budget-matching calibration of one preset: standard
// LSH runs at narrower buckets than Bi-level so both spend a comparable
// candidate budget (see the package comment).
type Widths struct {
	Standard ProbeWidths `json:"standard"`
	BiLevel  ProbeWidths `json:"bilevel"`
}

// Config sizes one quality run. Everything that influences a measured
// number is in here (plus the committed calibration), so a Config plus the
// code state fully determines the report bytes.
type Config struct {
	// Preset names the configuration ("full", "small"); it selects the
	// golden threshold table and labels the report.
	Preset string `json:"preset"`
	// Datasets are the generator names the matrix runs over (see
	// Generators in datasets.go).
	Datasets []string `json:"datasets"`
	// N, Queries, D, K: indexed items, query count, dimension, recall@K.
	N       int `json:"n"`
	Queries int `json:"queries"`
	D       int `json:"d"`
	K       int `json:"k"`
	// M, L, Probes, Groups are the index hyperparameters shared by every
	// cell: code length, table count, multiprobe budget, level-1 groups.
	M      int `json:"m"`
	L      int `json:"l"`
	Probes int `json:"probes"`
	Groups int `json:"groups"`
	// Inserts and Deletes size the dynamic-overlay workload: Inserts new
	// rows are added, then DeleteBase base rows and DeleteInserted of the
	// new rows are tombstoned, before querying (and, for the compacted
	// cells, before Compact).
	Inserts        int `json:"inserts"`
	DeleteBase     int `json:"delete_base"`
	DeleteInserted int `json:"delete_inserted"`
	// MemtableThreshold is kept small so the overlay cells exercise frozen
	// segments, not just the active memtable.
	MemtableThreshold int `json:"memtable_threshold"`
	// Quantize selects the row store every cell scans ("" or "none" for
	// float32, "sq8" for the quantized store with exact re-rank). The same
	// golden thresholds apply either way: quantization must fit inside the
	// existing slack, which is exactly the claim the re-rank design makes.
	Quantize string `json:"quantize,omitempty"`
	// TargetRecall, when in (0,1), runs every cell through TargetRecall-
	// driven query plans (core.Plan{TargetRecall: ...}) instead of the
	// legacy fixed-budget path. The same golden thresholds apply: the
	// adaptive plan must not push any cell below its committed floor, which
	// is exactly the claim docs/adaptive.md makes about the SLO resolver.
	TargetRecall float64 `json:"target_recall,omitempty"`
	// Planted switches the workload and truth path to the planted-query
	// mode (see planted.go): ground truth is known by construction, no
	// oracle scan runs and no cache directory is touched. Requires
	// Datasets == ["planted"] and an empty dynamic edit workload.
	Planted bool `json:"planted,omitempty"`
	// Fvecs switches the workload to real dataset files (see fvecs.go):
	// base and query vectors from .fvecs files, exact Euclidean ground
	// truth from a precomputed .ivecs file (the TexMex convention), plus
	// Hamming-metric cells checked against the index's own exact Hamming
	// scan. Requires Datasets == ["fvecs"] and an empty dynamic edit
	// workload (the committed truth would go stale). N and Queries are
	// filled from the files at run time.
	Fvecs bool `json:"fvecs,omitempty"`
	// Bits sizes the Hamming cells' sketches in fvecs mode.
	Bits int `json:"bits,omitempty"`
	// FvecsBase, FvecsQueries and FvecsTruth locate the dataset files for
	// fvecs mode. Like CacheDir they are not part of the report: the file
	// contents, not their paths, determine the measured numbers.
	FvecsBase    string `json:"-"`
	FvecsQueries string `json:"-"`
	FvecsTruth   string `json:"-"`
	// Seed drives everything: data, projections, the dynamic workload.
	Seed int64 `json:"seed"`
	// Widths is the budget-matching calibration (committed with the
	// preset; changing it invalidates the golden thresholds).
	Widths Widths `json:"widths"`
	// CacheDir is where oracle golden files live ("" = os.TempDir()).
	// Not part of the report (it does not influence measured numbers).
	CacheDir string `json:"-"`
}

// Full returns the CI-gate preset run by `make quality`.
func Full() Config {
	return Config{
		Preset:   "full",
		Datasets: []string{"manifold", "mixture"},
		N:        4000, Queries: 300, D: 32, K: 10,
		M: 8, L: 8, Probes: 16, Groups: 8,
		Inserts: 300, DeleteBase: 250, DeleteInserted: 50,
		MemtableThreshold: 64,
		Seed:              7,
		Widths:            calibratedWidths,
	}
}

// Small returns the preset the package tests run (kept quick so plain
// `go test ./...` stays fast; -short skips even this).
func Small() Config {
	return Config{
		Preset:   "small",
		Datasets: []string{"manifold"},
		N:        1200, Queries: 120, D: 24, K: 10,
		M: 8, L: 6, Probes: 12, Groups: 8,
		Inserts: 120, DeleteBase: 90, DeleteInserted: 20,
		MemtableThreshold: 32,
		Seed:              7,
		Widths:            calibratedWidths,
	}
}

// calibratedWidths is the shared budget-matching calibration: standard LSH
// at these scales spends roughly the candidate budget Bi-level spends at
// its scales (within ~2× per cell; see the committed selectivity
// thresholds for the realized budgets).
var calibratedWidths = Widths{
	Standard: ProbeWidths{Single: 0.35, Multi: 0.2, Hierarchy: 0.07},
	BiLevel:  ProbeWidths{Single: 1.0, Multi: 0.8, Hierarchy: 1.0},
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Preset == "":
		return fmt.Errorf("quality: empty preset name")
	case len(c.Datasets) == 0:
		return fmt.Errorf("quality: no datasets configured")
	case c.N <= 0 || c.Queries <= 0 || c.D <= 0 || c.K <= 0:
		return fmt.Errorf("quality: N=%d Queries=%d D=%d K=%d must be positive", c.N, c.Queries, c.D, c.K)
	case c.M <= 0 || c.L <= 0 || c.Probes <= 0 || c.Groups <= 0:
		return fmt.Errorf("quality: M=%d L=%d Probes=%d Groups=%d must be positive", c.M, c.L, c.Probes, c.Groups)
	case c.Inserts < 0 || c.DeleteBase < 0 || c.DeleteInserted < 0:
		return fmt.Errorf("quality: negative dynamic workload sizes")
	case c.DeleteBase >= c.N:
		return fmt.Errorf("quality: DeleteBase=%d must be < N=%d", c.DeleteBase, c.N)
	case c.DeleteInserted > c.Inserts:
		return fmt.Errorf("quality: DeleteInserted=%d must be <= Inserts=%d", c.DeleteInserted, c.Inserts)
	case c.TargetRecall < 0 || c.TargetRecall >= 1:
		return fmt.Errorf("quality: TargetRecall=%g outside [0, 1)", c.TargetRecall)
	}
	if _, err := core.ParseQuantizeKind(c.Quantize); err != nil {
		return err
	}
	if c.Fvecs {
		switch {
		case len(c.Datasets) != 1 || c.Datasets[0] != "fvecs":
			return fmt.Errorf("quality: fvecs mode requires Datasets=[fvecs], have %v", c.Datasets)
		case c.Inserts != 0 || c.DeleteBase != 0 || c.DeleteInserted != 0:
			return fmt.Errorf("quality: fvecs mode has no dynamic edit workload (the committed truth would go stale)")
		case c.FvecsBase == "" || c.FvecsQueries == "" || c.FvecsTruth == "":
			return fmt.Errorf("quality: fvecs mode needs base, query and truth file paths")
		case c.Bits <= 0:
			return fmt.Errorf("quality: fvecs mode needs Bits > 0 for the Hamming cells")
		case c.Planted:
			return fmt.Errorf("quality: fvecs and planted modes are mutually exclusive")
		}
		return nil
	}
	if c.Planted {
		switch {
		case len(c.Datasets) != 1 || c.Datasets[0] != "planted":
			return fmt.Errorf("quality: planted mode requires Datasets=[planted], have %v", c.Datasets)
		case c.Inserts != 0 || c.DeleteBase != 0 || c.DeleteInserted != 0:
			return fmt.Errorf("quality: planted mode has no dynamic edit workload (the constructed truth would go stale)")
		case c.N <= c.Queries*c.K:
			return fmt.Errorf("quality: planted mode needs N > Queries*K (N=%d, Queries*K=%d)", c.N, c.Queries*c.K)
		}
		return nil
	}
	for _, name := range c.Datasets {
		if _, ok := Generators[name]; !ok {
			return fmt.Errorf("quality: unknown dataset generator %q", name)
		}
	}
	return nil
}
