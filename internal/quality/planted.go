package quality

import (
	"fmt"
	"sort"

	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Planted-query evaluation mode: ground truth by construction instead of
// by brute-force scan. The workload is built so that each query's exact
// k nearest neighbors are knowable from the geometry alone —
//
//   - background rows (realistic clustered data) are scaled uniformly
//     into the unit ball, so no background row is farther than 1 from
//     the origin;
//   - each query sits on a shell of radius 3, with pairwise query
//     separation of at least 1 enforced by seeded rejection sampling;
//   - the query's k planted neighbors sit at strictly increasing radii
//     up to 0.3 around it.
//
// Every planted neighbor is therefore closer to its query (<= 0.3) than
// any background row (>= 2), any other query's planted rows (>= 0.7) or
// any other query (>= 1) can be, with margins thousands of ulps wide —
// the truth needs no O(n*q*d) oracle scan and no cache directory. This
// is the fast ground-truth path for recall checks over indexes too large
// to brute-force, and an independent cross-check on the oracle itself
// (TestPlantedTruthMatchesOracle asserts the two agree bit-for-bit).
const (
	plantedShell     = 3.0 // query distance from the origin
	plantedSep       = 1.0 // minimum distance between two queries
	plantedMaxRadius = 0.3 // largest planted-neighbor radius
)

// Planted returns the `bilsh quality -preset planted` configuration. The
// matrix is the same lattice x probe x partition sweep as the oracle
// presets; only the workload and the truth path differ. The preset has
// no dynamic edit workload: inserts or deletes would change the true
// neighbor sets, which are fixed by construction.
func Planted() Config {
	return Config{
		Preset:   "planted",
		Datasets: []string{"planted"},
		N:        3000, Queries: 150, D: 24, K: 10,
		M: 8, L: 6, Probes: 12, Groups: 8,
		MemtableThreshold: 32,
		Seed:              7,
		Widths:            calibratedWidths,
		Planted:           true,
	}
}

// plantedWorkload resolves a planted config into the shared measurement
// input. All three lifecycle stages carry the same constructed truth:
// with an empty edit workload the overlay and compacted indexes hold
// exactly the static rows under the same dense ids.
func plantedWorkload(cfg Config) (workload, error) {
	train, qs, truth, err := plantData(cfg.N, cfg.Queries, cfg.D, cfg.K, cfg.Seed)
	if err != nil {
		return workload{}, err
	}
	return workload{
		train: train, qs: qs, ins: vec.NewMatrix(0, cfg.D),
		staticTruth:  truth,
		overlayTruth: truth,
		compactTruth: truth,
		liveN:        cfg.N,
	}, nil
}

// plantData builds the planted workload: n indexed rows of which the
// last queries*k are the planted neighbors, the query matrix, and the
// constructed exact truth (ids sorted by the realized float32 distance,
// so it matches knn.Exact on the same rows bit-for-bit).
func plantData(n, queries, d, k int, seed int64) (*vec.Matrix, *vec.Matrix, []knn.Result, error) {
	planted := queries * k
	nb := n - planted
	if nb <= 0 {
		return nil, nil, nil, fmt.Errorf("quality: planted needs N > Queries*K (have N=%d, Queries*K=%d)", n, planted)
	}

	rng := xrand.New(seed)

	// Background: the manifold workload, scaled uniformly into the unit
	// ball. Uniform scaling preserves the cluster geometry the width
	// auto-tuner has to cope with; the bound is what makes the
	// construction's distance guarantee unconditional.
	spec := dataset.DefaultClusteredSpec(nb, d)
	bg, _, err := dataset.Clustered(spec, rng.Split(1))
	if err != nil {
		return nil, nil, nil, err
	}
	var maxNorm float64
	for i := 0; i < bg.N; i++ {
		if nrm := vec.Norm(bg.Row(i)); nrm > maxNorm {
			maxNorm = nrm
		}
	}
	if maxNorm > 0 {
		// Scale slightly inside the ball so float32 rounding of the
		// largest row cannot poke back over the bound.
		vec.Scale(bg.Data, 0.999/maxNorm)
	}

	// Queries: shell of radius plantedShell, pairwise separation at
	// least plantedSep via rejection against the already-placed queries.
	// Random unit directions in d >= 8 are nearly orthogonal, so on a
	// radius-3 shell a violation of a distance-1 separation is rare and
	// the seeded retry loop terminates almost immediately.
	qrng := rng.Split(2)
	qs := vec.NewMatrix(queries, d)
	for j := 0; j < queries; j++ {
		const maxTries = 10000
		tries := 0
		for ; tries < maxTries; tries++ {
			q := qs.Row(j)
			copy(q, qrng.UnitVec(d))
			vec.Scale(q, plantedShell)
			ok := true
			for p := 0; p < j; p++ {
				if vec.SqDist(q, qs.Row(p)) < plantedSep*plantedSep {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		if tries == maxTries {
			return nil, nil, nil, fmt.Errorf("quality: planted could not separate %d queries on the shell (d=%d too small?)", queries, d)
		}
	}

	// Planted neighbors: strictly increasing radii around each query, in
	// random directions. Distinct radii (spacing plantedMaxRadius/k)
	// keep the true neighbor order unambiguous under float32 rounding.
	train := vec.NewMatrix(n, d)
	copy(train.Data, bg.Data)
	prng := rng.Split(3)
	truth := make([]knn.Result, queries)
	for j := 0; j < queries; j++ {
		q := qs.Row(j)
		for i := 0; i < k; i++ {
			radius := plantedMaxRadius * float64(i+1) / float64(k)
			dir := prng.UnitVec(d)
			row := train.Row(nb + j*k + i)
			for t := 0; t < d; t++ {
				row[t] = q[t] + float32(radius*float64(dir[t]))
			}
		}
		// Truth ids sorted by the realized float32 distance — the same
		// vec.SqDist the oracle scan uses — so constructed truth and
		// brute force are interchangeable.
		r := knn.Result{IDs: make([]int, k), Dists: make([]float64, k)}
		for i := 0; i < k; i++ {
			id := nb + j*k + i
			r.IDs[i] = id
			r.Dists[i] = vec.SqDist(train.Row(id), q)
		}
		sort.Sort(byDist{&r})
		truth[j] = r
	}
	return train, qs, truth, nil
}

// byDist sorts a knn.Result in place by ascending distance (ties by id,
// matching the brute-force heap's ordering; the construction's distinct
// radii make ties unreachable anyway).
type byDist struct{ r *knn.Result }

func (s byDist) Len() int { return len(s.r.IDs) }
func (s byDist) Less(i, j int) bool {
	if s.r.Dists[i] != s.r.Dists[j] {
		return s.r.Dists[i] < s.r.Dists[j]
	}
	return s.r.IDs[i] < s.r.IDs[j]
}
func (s byDist) Swap(i, j int) {
	s.r.IDs[i], s.r.IDs[j] = s.r.IDs[j], s.r.IDs[i]
	s.r.Dists[i], s.r.Dists[j] = s.r.Dists[j], s.r.Dists[i]
}
