package quality

import (
	"fmt"
	"os"
	"slices"
	"strings"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Real-dataset evaluation mode: vectors, queries and exact Euclidean
// ground truth come from files in the TexMex formats (.fvecs/.ivecs)
// instead of a seeded generator. The same protocol drives a committed
// few-KiB fixture in CI (`make dataset`, golden/fvecs.json) and real
// SIFT/GIST subsets fetched with `bilsh dataset fetch` — docs/datasets.md
// is the runbook.
//
// The matrix differs from the synthetic presets in two ways:
//
//   - static cells only: the truth file is computed once for the exact
//     row set, so there is no dynamic edit workload;
//   - a Hamming wing: the same files also drive Metric=Hamming indexes
//     (hyperplane-sign sketches over the float rows), whose ground truth
//     is the index's own exact Hamming scan — the committed golden cells
//     for the binary metric family.

// Fvecs returns the `bilsh quality -preset fvecs` configuration, sized
// for the committed fixture under internal/quality/testdata/sift-micro.
// The loader verifies the files match the configured shape, so golden
// thresholds and fixture can only drift together.
func Fvecs() Config {
	return Config{
		Preset:   "fvecs",
		Datasets: []string{"fvecs"},
		N:        512, Queries: 40, D: 16, K: 10,
		M: 8, L: 8, Probes: 16, Groups: 4,
		MemtableThreshold: 32,
		Seed:              7,
		Widths:            calibratedWidths,
		Fvecs:             true,
		Bits:              128,
		FvecsBase:         "internal/quality/testdata/sift-micro/base.fvecs",
		FvecsQueries:      "internal/quality/testdata/sift-micro/query.fvecs",
		FvecsTruth:        "internal/quality/testdata/sift-micro/truth.ivecs",
	}
}

// fvecsWorkload loads the three dataset files and rebuilds the truth
// distances from the base rows (ivecs carries ids only).
func fvecsWorkload(cfg Config) (train, qs *vec.Matrix, truth []knn.Result, err error) {
	train, err = dataset.LoadFvecsFile(cfg.FvecsBase, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("quality: base vectors: %w", err)
	}
	qs, err = dataset.LoadFvecsFile(cfg.FvecsQueries, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("quality: query vectors: %w", err)
	}
	tf, err := os.Open(cfg.FvecsTruth)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("quality: ground truth: %w", err)
	}
	rows, err := dataset.ReadIvecs(tf, 0)
	tf.Close()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("quality: ground truth: %w", err)
	}
	if train.N != cfg.N || train.D != cfg.D {
		return nil, nil, nil, fmt.Errorf("quality: base file is %dx%d, preset expects %dx%d (fixture drift? regenerate truth and golden together)", train.N, train.D, cfg.N, cfg.D)
	}
	if qs.N != cfg.Queries || qs.D != cfg.D {
		return nil, nil, nil, fmt.Errorf("quality: query file is %dx%d, preset expects %dx%d", qs.N, qs.D, cfg.Queries, cfg.D)
	}
	if len(rows) != qs.N {
		return nil, nil, nil, fmt.Errorf("quality: truth file has %d rows for %d queries", len(rows), qs.N)
	}
	truth = make([]knn.Result, qs.N)
	for qi, row := range rows {
		if len(row) < cfg.K {
			return nil, nil, nil, fmt.Errorf("quality: truth row %d has %d ids, need k=%d", qi, len(row), cfg.K)
		}
		r := knn.Result{IDs: make([]int, cfg.K), Dists: make([]float64, cfg.K)}
		for i := 0; i < cfg.K; i++ {
			id := int(row[i])
			if id < 0 || id >= train.N {
				return nil, nil, nil, fmt.Errorf("quality: truth row %d references id %d outside the base set", qi, id)
			}
			r.IDs[i] = id
			r.Dists[i] = vec.SqDist(train.Row(id), qs.Row(qi))
		}
		truth[qi] = r
	}
	return train, qs, truth, nil
}

// runFvecs evaluates the file-backed matrix: the Euclidean wing (lattice
// x probe x partition, static, against the ivecs truth) and the Hamming
// wing (probe x partition against each index's exact Hamming scan).
func runFvecs(cfg Config) (*Report, error) {
	train, qs, truth, err := fvecsWorkload(cfg)
	if err != nil {
		return nil, err
	}
	quantize, err := core.ParseQuantizeKind(cfg.Quantize)
	if err != nil {
		return nil, err
	}
	rep := &Report{Config: cfg}
	buildSeed := mixSeed(cfg.Seed, "fvecs")

	for _, lat := range allLattices {
		for _, probe := range allProbes {
			for _, bi := range []bool{false, true} {
				opts := core.Options{
					Lattice:           lat,
					ProbeMode:         probe,
					Probes:            cfg.Probes,
					AutoTuneW:         true,
					TuneK:             cfg.K,
					MemtableThreshold: cfg.MemtableThreshold,
					Quantize:          quantize,
					Params:            lshfunc.Params{M: cfg.M, L: cfg.L, W: cfg.Widths.width(bi, probe)},
				}
				if bi {
					opts.Partitioner = core.PartitionRPTree
					opts.Groups = cfg.Groups
				}
				ix, err := core.Build(train, opts, xrand.New(buildSeed))
				if err != nil {
					return nil, fmt.Errorf("quality: fvecs %v/%v build: %w", lat, probe, err)
				}
				cell := Cell{Dataset: "fvecs", Lattice: lat, Probe: probe, BiLevel: bi, Dynamics: DynStatic}
				rep.Cells = append(rep.Cells, measureCell(cell, ix, qs, truth, cfg, train.N))
			}
		}
	}

	// Hamming wing: bit-sampling over hyperplane-sign sketches, checked
	// against the exact Hamming scan under the same sketcher (each index
	// draws its own planes, so the truth is computed per index).
	for _, probe := range []core.ProbeMode{core.ProbeSingle, core.ProbeMulti} {
		for _, bi := range []bool{false, true} {
			opts := core.Options{
				Metric:            core.MetricHamming,
				Bits:              cfg.Bits,
				ProbeMode:         probe,
				Probes:            cfg.Probes,
				MemtableThreshold: cfg.MemtableThreshold,
				Params:            lshfunc.Params{M: 2 * cfg.M, L: cfg.L},
			}
			partition := "standard"
			if bi {
				opts.Partitioner = core.PartitionRPTree
				opts.Groups = cfg.Groups
				partition = "bilevel"
			}
			ix, err := core.Build(train, opts, xrand.New(buildSeed))
			if err != nil {
				return nil, fmt.Errorf("quality: fvecs hamming/%v/%s build: %w", probe, partition, err)
			}
			hTruth := make([]knn.Result, qs.N)
			for qi := range hTruth {
				hTruth[qi] = ix.ExactKNN(qs.Row(qi), cfg.K)
			}
			cell := Cell{Dataset: "fvecs", Probe: probe, BiLevel: bi, Dynamics: DynStatic}
			res := measureCell(cell, ix, qs, hTruth, cfg, train.N)
			// Cell.Key renders Lattice, which Hamming indexes do not have;
			// rewrite the metric position so the golden key is honest.
			res.Lattice = "hamming"
			res.Key = strings.Join([]string{"fvecs", "hamming", probe.String(), partition, DynStatic}, "/")
			rep.Cells = append(rep.Cells, res)
		}
	}

	slices.SortFunc(rep.Cells, func(a, b CellResult) int { return strings.Compare(a.Key, b.Key) })
	return rep, nil
}
