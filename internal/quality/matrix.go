package quality

import (
	"fmt"
	"hash/fnv"
	"slices"
	"strings"

	"bilsh/internal/core"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Dynamics names the index lifecycle stage a cell measures.
const (
	// DynStatic queries the freshly built index (the paper's protocol).
	DynStatic = "static"
	// DynOverlay queries after inserts and deletes, before Compact — the
	// memtable/frozen-segment overlay path.
	DynOverlay = "overlay"
	// DynCompacted queries after Compact folded the overlay in.
	DynCompacted = "compacted"
)

var allDynamics = []string{DynStatic, DynOverlay, DynCompacted}
var allLattices = []core.LatticeKind{core.LatticeZM, core.LatticeE8}
var allProbes = []core.ProbeMode{core.ProbeSingle, core.ProbeMulti, core.ProbeHierarchy}

// Cell is one matrix position.
type Cell struct {
	Dataset  string
	Lattice  core.LatticeKind
	Probe    core.ProbeMode
	BiLevel  bool
	Dynamics string
}

// Partition returns the level-1 label ("standard" or "bilevel").
func (c Cell) Partition() string {
	if c.BiLevel {
		return "bilevel"
	}
	return "standard"
}

// Key is the stable identifier the golden threshold table is keyed by.
func (c Cell) Key() string {
	return strings.Join([]string{c.Dataset, c.Lattice.String(), c.Probe.String(), c.Partition(), c.Dynamics}, "/")
}

// Cells enumerates the full matrix for a config, in deterministic order.
func Cells(cfg Config) []Cell {
	var out []Cell
	for _, ds := range cfg.Datasets {
		for _, lat := range allLattices {
			for _, probe := range allProbes {
				for _, bi := range []bool{false, true} {
					for _, dyn := range allDynamics {
						out = append(out, Cell{Dataset: ds, Lattice: lat, Probe: probe, BiLevel: bi, Dynamics: dyn})
					}
				}
			}
		}
	}
	return out
}

// Measure is one cell's quality numbers: mean recall@K (Eq. 3), mean
// distance-error ratio (Eq. 4, 1.0 = exact), mean selectivity (Eq. 5) and
// the mean distinct candidate count behind it (the candidate-set cost).
type Measure struct {
	Recall      float64 `json:"recall"`
	ErrorRatio  float64 `json:"error_ratio"`
	Selectivity float64 `json:"selectivity"`
	Candidates  float64 `json:"candidates"`
}

// CellResult is one evaluated matrix cell, with its golden threshold and
// verdict attached by Check.
type CellResult struct {
	Key       string `json:"key"`
	Dataset   string `json:"dataset"`
	Lattice   string `json:"lattice"`
	Probe     string `json:"probe"`
	Partition string `json:"partition"`
	Dynamics  string `json:"dynamics"`
	Measure
	Threshold *Threshold `json:"threshold,omitempty"`
	Pass      bool       `json:"pass"`
}

// Report is one full quality run. Its JSON form is what `make quality`
// writes to BENCH_quality.json; it contains nothing non-deterministic
// (no timings, no timestamps, no map iteration), so two runs of the same
// tree produce byte-identical files.
type Report struct {
	Config Config `json:"config"`
	// Cells are sorted by Key.
	Cells []CellResult `json:"cells"`
	// OrderingViolations lists (dataset, lattice, probe, dynamics) tuples
	// where the Bi-level cell failed to reach its standard-LSH baseline's
	// recall within the golden ordering slack (the Fig. 7 assertion).
	OrderingViolations []string `json:"ordering_violations"`
	// Pass is the aggregate verdict: every cell met its threshold and no
	// ordering violation occurred.
	Pass bool `json:"pass"`
}

// Run evaluates the whole matrix. The returned report has no thresholds
// or verdicts attached yet; pass it to Check.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Fvecs {
		return runFvecs(cfg)
	}
	rep := &Report{Config: cfg}
	for _, ds := range cfg.Datasets {
		results, err := runDataset(cfg, ds)
		if err != nil {
			return nil, fmt.Errorf("quality: dataset %s: %w", ds, err)
		}
		rep.Cells = append(rep.Cells, results...)
	}
	slices.SortFunc(rep.Cells, func(a, b CellResult) int { return strings.Compare(a.Key, b.Key) })
	return rep, nil
}

// workload is one dataset's fully resolved measurement input: the
// matrices, the dynamic edit sets, and the ground truth per lifecycle
// stage. The oracle path (runDataset) fills it from a generator plus the
// cached brute-force oracle; the planted path (plantedWorkload) fills it
// by construction, with no oracle involved.
type workload struct {
	train, qs, ins                          *vec.Matrix
	delBase, delIns                         []int
	staticTruth, overlayTruth, compactTruth []knn.Result
	// liveN is the live item count after the edits — the selectivity
	// denominator |S| of Eq. 5 for the overlay and compacted stages.
	liveN int
}

// runDataset evaluates every configuration cell over one workload. Each
// (lattice, probe, partition) index is built once and measured at all
// three lifecycle stages: static, after the seeded insert/delete workload
// (overlay), and after Compact.
func runDataset(cfg Config, ds string) ([]CellResult, error) {
	if cfg.Planted {
		w, err := plantedWorkload(cfg)
		if err != nil {
			return nil, err
		}
		return runCells(cfg, ds, w)
	}
	train, qs, ins, err := Generators[ds](cfg.N, cfg.Queries, cfg.Inserts, cfg.D, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// The seeded dynamic workload, shared by every cell: ids are assigned
	// sequentially by Insert, so the delete sets are knowable up front.
	wrng := xrand.New(cfg.Seed).Split(1000)
	delBase := wrng.Sample(cfg.N, cfg.DeleteBase)
	delIns := wrng.Sample(cfg.Inserts, cfg.DeleteInserted)
	deleted := make([]bool, cfg.N+cfg.Inserts)
	for _, id := range delBase {
		deleted[id] = true
	}
	for _, j := range delIns {
		deleted[cfg.N+j] = true
	}

	// Ground truth per lifecycle stage (cached golden files). The overlay
	// and compacted stages share one live set; only the id space differs
	// (Compact remaps survivors densely in id order).
	staticTruth, _, err := groundTruth(cfg.CacheDir, train, qs, nil, cfg.K)
	if err != nil {
		return nil, err
	}
	liveIDs := make([]int32, 0, cfg.N+cfg.Inserts-cfg.DeleteBase-cfg.DeleteInserted)
	remap := make([]int, cfg.N+cfg.Inserts)
	for id := range deleted {
		if deleted[id] {
			remap[id] = -1
			continue
		}
		remap[id] = len(liveIDs)
		liveIDs = append(liveIDs, int32(id))
	}
	liveRows := vec.NewMatrix(len(liveIDs), cfg.D)
	for i, id := range liveIDs {
		if int(id) < cfg.N {
			copy(liveRows.Row(i), train.Row(int(id)))
		} else {
			copy(liveRows.Row(i), ins.Row(int(id)-cfg.N))
		}
	}
	overlayTruth, _, err := groundTruth(cfg.CacheDir, liveRows, qs, liveIDs, cfg.K)
	if err != nil {
		return nil, err
	}
	compactTruth := make([]knn.Result, len(overlayTruth))
	for qi, r := range overlayTruth {
		cr := knn.Result{IDs: make([]int, len(r.IDs)), Dists: r.Dists}
		for i, id := range r.IDs {
			cr.IDs[i] = remap[id]
		}
		compactTruth[qi] = cr
	}

	return runCells(cfg, ds, workload{
		train: train, qs: qs, ins: ins,
		delBase: delBase, delIns: delIns,
		staticTruth: staticTruth, overlayTruth: overlayTruth, compactTruth: compactTruth,
		liveN: liveRows.N,
	})
}

// runCells sweeps the configuration matrix over one resolved workload.
func runCells(cfg Config, ds string, w workload) ([]CellResult, error) {
	quantize, err := core.ParseQuantizeKind(cfg.Quantize)
	if err != nil {
		return nil, err
	}
	buildSeed := mixSeed(cfg.Seed, ds)
	var out []CellResult
	for _, lat := range allLattices {
		for _, probe := range allProbes {
			for _, bi := range []bool{false, true} {
				opts := core.Options{
					Lattice:           lat,
					ProbeMode:         probe,
					Probes:            cfg.Probes,
					AutoTuneW:         true,
					TuneK:             cfg.K,
					MemtableThreshold: cfg.MemtableThreshold,
					Quantize:          quantize,
					Params:            lshfunc.Params{M: cfg.M, L: cfg.L, W: cfg.Widths.width(bi, probe)},
				}
				if bi {
					opts.Partitioner = core.PartitionRPTree
					opts.Groups = cfg.Groups
				}
				ix, err := core.Build(w.train, opts, xrand.New(buildSeed))
				if err != nil {
					return nil, fmt.Errorf("%v/%v/%s build: %w", lat, probe, Cell{BiLevel: bi}.Partition(), err)
				}

				cell := Cell{Dataset: ds, Lattice: lat, Probe: probe, BiLevel: bi}
				cell.Dynamics = DynStatic
				out = append(out, measureCell(cell, ix, w.qs, w.staticTruth, cfg, cfg.N))

				// Apply the shared dynamic workload, measure the overlay,
				// compact, measure again.
				for i := 0; i < w.ins.N; i++ {
					if _, err := ix.Insert(w.ins.Row(i)); err != nil {
						return nil, fmt.Errorf("%s insert %d: %w", cell.Key(), i, err)
					}
				}
				for _, id := range w.delBase {
					ix.Delete(id)
				}
				for _, j := range w.delIns {
					ix.Delete(cfg.N + j)
				}
				cell.Dynamics = DynOverlay
				out = append(out, measureCell(cell, ix, w.qs, w.overlayTruth, cfg, w.liveN))

				if _, err := ix.Compact(); err != nil {
					return nil, fmt.Errorf("%s compact: %w", cell.Key(), err)
				}
				cell.Dynamics = DynCompacted
				out = append(out, measureCell(cell, ix, w.qs, w.compactTruth, cfg, w.liveN))
			}
		}
	}
	return out, nil
}

// width picks the calibrated width scale for a (partitioner, probe) pair.
func (w Widths) width(biLevel bool, probe core.ProbeMode) float64 {
	pw := w.Standard
	if biLevel {
		pw = w.BiLevel
	}
	switch probe {
	case core.ProbeMulti:
		return pw.Multi
	case core.ProbeHierarchy:
		return pw.Hierarchy
	default:
		return pw.Single
	}
}

// measureCell answers the query set and aggregates the quality metrics
// against the stage's ground truth. n is the live item count (the
// selectivity denominator |S| of Eq. 5). With cfg.TargetRecall set the
// queries run through the adaptive plan path (QueryBatchPlan) instead of
// the legacy fixed-budget one; the same thresholds apply either way.
func measureCell(cell Cell, ix *core.Index, qs *vec.Matrix, truth []knn.Result, cfg Config, n int) CellResult {
	k := cfg.K
	var results []knn.Result
	var stats []core.QueryStats
	if cfg.TargetRecall > 0 {
		res, ps := ix.QueryBatchPlan(qs, core.Plan{K: k, TargetRecall: cfg.TargetRecall})
		results = res
		stats = make([]core.QueryStats, len(ps))
		for i := range ps {
			stats[i] = ps[i].QueryStats
		}
	} else {
		results, stats = ix.QueryBatch(qs, k)
	}
	ms := make([]knn.QueryMeasure, qs.N)
	var cands float64
	for qi := range ms {
		ms[qi] = knn.Measure(truth[qi], results[qi], stats[qi].Candidates, n)
		cands += float64(stats[qi].Candidates)
	}
	agg := knn.AggregateQueries(ms)
	return CellResult{
		Key:       cell.Key(),
		Dataset:   cell.Dataset,
		Lattice:   cell.Lattice.String(),
		Probe:     cell.Probe.String(),
		Partition: cell.Partition(),
		Dynamics:  cell.Dynamics,
		Measure: Measure{
			Recall:      agg.Recall.Mean,
			ErrorRatio:  agg.ErrorRatio.Mean,
			Selectivity: agg.Selectivity.Mean,
			Candidates:  cands / float64(qs.N),
		},
	}
}

// mixSeed derives a deterministic per-dataset build seed.
func mixSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, name)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
