package quality

import (
	"os"
	"reflect"
	"testing"

	"bilsh/internal/core"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// TestPlantedTruthMatchesOracle is the load-bearing check behind the
// planted mode: the constructed ground truth must equal the brute-force
// oracle's answer bit-for-bit (same ids, same squared distances). If the
// construction's distance guarantee ever broke — background leaking into
// a query's neighborhood, two queries drifting too close — this is where
// it surfaces.
func TestPlantedTruthMatchesOracle(t *testing.T) {
	const n, queries, d, k = 800, 40, 16, 8
	train, qs, truth, err := plantData(n, queries, d, k, 11)
	if err != nil {
		t.Fatal(err)
	}
	if train.N != n || train.D != d || qs.N != queries || qs.D != d || len(truth) != queries {
		t.Fatalf("wrong shapes: train %dx%d queries %dx%d truth %d", train.N, train.D, qs.N, qs.D, len(truth))
	}
	exact := knn.ExactAll(train, qs, k)
	for qi := range truth {
		if !reflect.DeepEqual(truth[qi].IDs, exact[qi].IDs) {
			t.Fatalf("query %d: constructed ids %v != oracle ids %v", qi, truth[qi].IDs, exact[qi].IDs)
		}
		if !reflect.DeepEqual(truth[qi].Dists, exact[qi].Dists) {
			t.Fatalf("query %d: constructed dists diverge from oracle", qi)
		}
	}

	// Every true neighbor is a planted row (id >= background count) and
	// strictly nearer than the construction's background floor.
	nb := n - queries*k
	for qi, r := range truth {
		for i, id := range r.IDs {
			if id < nb {
				t.Fatalf("query %d: background row %d in the true neighbor set", qi, id)
			}
			if r.Dists[i] > plantedMaxRadius*plantedMaxRadius*1.01 {
				t.Fatalf("query %d: planted neighbor at distance^2 %.4f, beyond the construction radius", qi, r.Dists[i])
			}
		}
	}
}

// TestPlantedDeterministic pins seed behavior: same seed, same bytes;
// different seed, different bytes.
func TestPlantedDeterministic(t *testing.T) {
	t1, q1, tr1, err := plantData(500, 20, 12, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	t2, q2, tr2, err := plantData(500, 20, 12, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Data, t2.Data) || !reflect.DeepEqual(q1.Data, q2.Data) || !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("same seed produced a different planted workload")
	}
	t3, _, _, err := plantData(500, 20, 12, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(t1.Data, t3.Data) {
		t.Fatal("different seeds produced identical planted data")
	}
}

// TestPlantedOracleCellParity asserts golden-threshold parity between the
// two truth paths on one shared cell: the same index measured against the
// constructed truth and against the cached-oracle truth must yield the
// same Measure, and therefore the same derived golden Threshold. This is
// what licenses checking planted runs against -update-golden tables and
// vice versa.
func TestPlantedOracleCellParity(t *testing.T) {
	cfg := Planted()
	cfg.N, cfg.Queries, cfg.D, cfg.K = 900, 30, 16, 8
	cfg.CacheDir = t.TempDir()
	train, qs, constructed, err := plantData(cfg.N, cfg.Queries, cfg.D, cfg.K, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle, cached, err := groundTruth(cfg.CacheDir, train, qs, nil, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("oracle reported a cache hit in a fresh directory")
	}

	cell := Cell{Dataset: "planted", Lattice: core.LatticeZM, Probe: core.ProbeMulti, BiLevel: true, Dynamics: DynStatic}
	opts := core.Options{
		Partitioner: core.PartitionRPTree,
		Groups:      cfg.Groups,
		ProbeMode:   cell.Probe,
		Probes:      cfg.Probes,
		AutoTuneW:   true,
		TuneK:       cfg.K,
		Params:      lshfunc.Params{M: cfg.M, L: cfg.L, W: cfg.Widths.width(true, cell.Probe)},
	}
	ix, err := core.Build(train, opts, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	viaConstruction := measureCell(cell, ix, qs, constructed, cfg, cfg.N)
	viaOracle := measureCell(cell, ix, qs, oracle, cfg, cfg.N)
	if viaConstruction.Measure != viaOracle.Measure {
		t.Fatalf("measures diverge across truth paths:\n constructed %+v\n oracle      %+v",
			viaConstruction.Measure, viaOracle.Measure)
	}
	repA := &Report{Config: cfg, Cells: []CellResult{viaConstruction}}
	repB := &Report{Config: cfg, Cells: []CellResult{viaOracle}}
	if !reflect.DeepEqual(NewGolden(repA).Cells, NewGolden(repB).Cells) {
		t.Fatal("derived golden thresholds diverge across truth paths")
	}
}

// TestGatePlanted runs the planted preset against its committed golden
// table — the oracle-free twin of TestGateSmall. Nothing here may touch
// an oracle cache: CacheDir points at a directory that must stay empty.
func TestGatePlanted(t *testing.T) {
	if testing.Short() {
		t.Skip("quality matrix skipped in -short mode")
	}
	cfg := Planted()
	cacheDir := t.TempDir()
	cfg.CacheDir = cacheDir
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ents, err := os.ReadDir(cacheDir); err != nil || len(ents) != 0 {
		t.Fatalf("planted run touched the oracle cache: %d entries (err %v)", len(ents), err)
	}
	g, err := LoadGolden(cfg.Preset)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Check(rep); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if !c.Pass {
			t.Errorf("cell %s: recall %.4f (min %.3f) error %.4f (min %.3f) selectivity %.4f (max %.4f)",
				c.Key, c.Recall, c.Threshold.MinRecall, c.ErrorRatio, c.Threshold.MinErrorRatio,
				c.Selectivity, c.Threshold.MaxSelectivity)
		}
	}
	for _, v := range rep.OrderingViolations {
		t.Errorf("ordering violation: %s", v)
	}
	if !rep.Pass {
		t.Fatal("planted quality gate failed")
	}
}

// TestPlantedValidate covers the planted-specific Validate arms.
func TestPlantedValidate(t *testing.T) {
	if err := Planted().Validate(); err != nil {
		t.Fatalf("Planted preset invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Datasets = []string{"manifold"} },
		func(c *Config) { c.Datasets = []string{"planted", "manifold"} },
		func(c *Config) { c.Inserts = 10 },
		func(c *Config) { c.DeleteBase = 1 },
		func(c *Config) { c.N = c.Queries * c.K },
	}
	for i, mutate := range bad {
		c := Planted()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid planted config passed validation", i)
		}
	}
}
