package quality

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"bilsh/internal/durable"
	"bilsh/internal/knn"
	"bilsh/internal/vec"
)

// The exact k-NN oracle. Ground truth is the expensive part of a quality
// run (O(n·q·d) per dataset), so it is computed once by the parallel brute
// force of internal/knn and cached to a golden file. The cache key is a
// fingerprint of the actual vector bytes plus k — not just the seed — so a
// change to a generator, to the splitter, or to the float pipeline
// invalidates stale files automatically instead of silently validating
// against the wrong truth.

// oracleMagic versions the golden file format.
const oracleMagic = "BLSHORC1"

// oracleKey fingerprints one ground-truth computation: the dataset bytes,
// the query bytes and k. ids labels the id space (the static oracle uses
// dense row ids; dynamic oracles pass the live-id list so a different
// delete set cannot alias).
func oracleKey(data, queries *vec.Matrix, ids []int32, k int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(k))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(data.N)<<32|uint64(uint32(data.D)))
	h.Write(buf[:])
	for _, v := range data.Data {
		binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
		h.Write(buf[:4])
	}
	for _, v := range queries.Data {
		binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
		h.Write(buf[:4])
	}
	for _, id := range ids {
		binary.LittleEndian.PutUint32(buf[:4], uint32(id))
		h.Write(buf[:4])
	}
	return h.Sum64()
}

// groundTruth returns exact k-NN results for every query over data,
// reading the cached golden file when one matches the key and writing one
// after computing otherwise. ids, when non-nil, maps data's row indices to
// external ids (the dynamic-overlay id space); truth is returned in that
// id space. cached reports whether the answer came from disk.
func groundTruth(cacheDir string, data, queries *vec.Matrix, ids []int32, k int) (truth []knn.Result, cached bool, err error) {
	if cacheDir == "" {
		cacheDir = filepath.Join(os.TempDir(), "bilsh-quality")
	}
	key := oracleKey(data, queries, ids, k)
	path := filepath.Join(cacheDir, fmt.Sprintf("oracle-%016x.golden", key))

	if truth, err := readOracle(path, key, queries.N, k); err == nil {
		return truth, true, nil
	}
	// Cache miss (absent, stale or corrupt): recompute and rewrite.
	truth = knn.ExactAll(data, queries, k)
	if ids != nil {
		for qi := range truth {
			for i, id := range truth[qi].IDs {
				truth[qi].IDs[i] = int(ids[id])
			}
		}
	}
	if err := writeOracle(path, key, truth, k); err != nil {
		return nil, false, fmt.Errorf("quality: caching oracle: %w", err)
	}
	return truth, false, nil
}

// readOracle loads a golden file, validating magic, key and shape.
func readOracle(path string, key uint64, nq, k int) ([]knn.Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(oracleMagic)+24 || string(raw[:len(oracleMagic)]) != oracleMagic {
		return nil, fmt.Errorf("quality: %s: bad oracle header", path)
	}
	off := len(oracleMagic)
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(raw[off:]); off += 8; return v }
	if u64() != key {
		return nil, fmt.Errorf("quality: %s: oracle key mismatch", path)
	}
	if int(u64()) != nq || int(u64()) != k {
		return nil, fmt.Errorf("quality: %s: oracle shape mismatch", path)
	}
	truth := make([]knn.Result, nq)
	for qi := range truth {
		if off+4 > len(raw) {
			return nil, fmt.Errorf("quality: %s: truncated oracle", path)
		}
		cnt := int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		if cnt < 0 || cnt > k || off+12*cnt > len(raw) {
			return nil, fmt.Errorf("quality: %s: truncated oracle", path)
		}
		r := knn.Result{IDs: make([]int, cnt), Dists: make([]float64, cnt)}
		for i := 0; i < cnt; i++ {
			r.IDs[i] = int(int32(binary.LittleEndian.Uint32(raw[off:])))
			off += 4
		}
		for i := 0; i < cnt; i++ {
			r.Dists[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
			off += 8
		}
		truth[qi] = r
	}
	if off != len(raw) {
		return nil, fmt.Errorf("quality: %s: trailing oracle bytes", path)
	}
	return truth, nil
}

// writeOracle persists a golden file atomically (write temp + rename) so a
// crashed run never leaves a torn cache entry.
func writeOracle(path string, key uint64, truth []knn.Result, k int) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	buf := make([]byte, 0, len(oracleMagic)+24+len(truth)*(4+12*k))
	buf = append(buf, oracleMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, key)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(truth)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	for _, r := range truth {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.IDs)))
		for _, id := range r.IDs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(id)))
		}
		for _, d := range r.Dists {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
		}
	}
	// durable.WriteFileAtomic adds the fsync the old temp+rename here was
	// missing: without it a power cut after the rename could surface a
	// correctly named but empty or partial cache entry.
	return durable.WriteFileAtomic(path, buf)
}
