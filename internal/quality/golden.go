package quality

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// The committed golden state. A threshold is a floor (recall, error
// ratio) or ceiling (selectivity) a cell must meet; the committed values
// are a measured run minus explicit slack, so a legitimate small drift
// (a different CPU's FMA contraction, a deliberate re-calibration) fits,
// while a real regression — a broken decoder, a probe sequence that stops
// covering neighbors, an overlay merge that drops rows — does not.
// docs/testing.md describes when and how to regenerate them.

// Threshold bounds one cell.
type Threshold struct {
	// MinRecall is the recall@K floor (measured − recall slack).
	MinRecall float64 `json:"min_recall"`
	// MinErrorRatio is the distance-ratio floor (1.0 = exact results;
	// lower means farther neighbors reported).
	MinErrorRatio float64 `json:"min_error_ratio"`
	// MaxSelectivity is the candidate-cost ceiling (measured × cost
	// slack) — it catches "recall fixed by scanning everything".
	MaxSelectivity float64 `json:"max_selectivity"`
}

// Golden is one preset's committed threshold table.
type Golden struct {
	// Preset must match the Config the table was generated from.
	Preset string `json:"preset"`
	// OrderingSlack is the Fig. 7 assertion's tolerance: a Bi-level cell
	// may trail its standard baseline's recall by at most this much.
	OrderingSlack float64 `json:"ordering_slack"`
	// SkipOrdering disables the Fig. 7 assertion for this preset. The
	// planted preset sets it: its workload is scale-trivial by
	// construction (tight clusters a narrow standard-LSH bucket isolates
	// with a handful of candidates), so the budget-matched comparison
	// the ordering claim is about does not exist there — only the
	// per-cell recall/error/selectivity floors bind. The fvecs preset
	// sets it too: its committed fixture is deliberately tiny (a few KiB
	// of CI ballast), far below the scale where the ordering claim is
	// meaningful.
	SkipOrdering bool `json:"skip_ordering,omitempty"`
	// Cells maps Cell.Key() to its threshold.
	Cells map[string]Threshold `json:"cells"`
}

// Slack separations between a measured run and the thresholds generated
// from it. Recall and error ratio get absolute slack; selectivity is
// multiplicative (its scale varies per cell by an order of magnitude).
const (
	recallSlack     = 0.06
	errorSlack      = 0.04
	selectivityMult = 1.35
)

//go:embed golden/*.json
var goldenFS embed.FS

// LoadGolden returns the committed threshold table for a preset.
func LoadGolden(preset string) (*Golden, error) {
	raw, err := goldenFS.ReadFile("golden/" + preset + ".json")
	if err != nil {
		return nil, fmt.Errorf("quality: no committed golden thresholds for preset %q: %w", preset, err)
	}
	var g Golden
	if err := json.Unmarshal(raw, &g); err != nil {
		return nil, fmt.Errorf("quality: golden/%s.json: %w", preset, err)
	}
	if g.Preset != preset {
		return nil, fmt.Errorf("quality: golden/%s.json declares preset %q", preset, g.Preset)
	}
	return &g, nil
}

// NewGolden derives a threshold table from a measured report by applying
// the committed slack — the generation side of the golden workflow
// (`bilsh quality -update-golden`).
func NewGolden(rep *Report) *Golden {
	g := &Golden{
		Preset:        rep.Config.Preset,
		OrderingSlack: 0.03,
		SkipOrdering:  rep.Config.Planted || rep.Config.Fvecs,
		Cells:         make(map[string]Threshold, len(rep.Cells)),
	}
	for _, c := range rep.Cells {
		g.Cells[c.Key] = Threshold{
			MinRecall:      floorTo(c.Recall-recallSlack, 3),
			MinErrorRatio:  floorTo(c.ErrorRatio-errorSlack, 3),
			MaxSelectivity: ceilTo(c.Selectivity*selectivityMult, 4),
		}
	}
	return g
}

// Check evaluates a report against a golden table: per-cell thresholds
// plus the Fig. 7 ordering assertion. It fills each cell's Threshold and
// Pass fields and the report's aggregate verdict, and returns an error
// only for structural problems (preset mismatch, matrix/golden drift) —
// threshold failures are reported through the verdict fields so callers
// can render the full table before failing.
func (g *Golden) Check(rep *Report) error {
	if g.Preset != rep.Config.Preset {
		return fmt.Errorf("quality: checking %q report against %q golden table", rep.Config.Preset, g.Preset)
	}
	rep.Pass = true
	seen := make(map[string]bool, len(rep.Cells))
	for i := range rep.Cells {
		c := &rep.Cells[i]
		seen[c.Key] = true
		th, ok := g.Cells[c.Key]
		if !ok {
			// A matrix cell with no committed threshold means the matrix
			// grew without regenerating the golden table.
			return fmt.Errorf("quality: no golden threshold for cell %s (regenerate with -update-golden)", c.Key)
		}
		c.Threshold = &th
		c.Pass = c.Recall >= th.MinRecall &&
			c.ErrorRatio >= th.MinErrorRatio &&
			c.Selectivity <= th.MaxSelectivity
		if !c.Pass {
			rep.Pass = false
		}
	}
	for key := range g.Cells {
		if !seen[key] {
			return fmt.Errorf("quality: golden threshold for %s has no matrix cell (regenerate with -update-golden)", key)
		}
	}

	// Fig. 7 ordering: at the calibrated (budget-matched) operating
	// points, every Bi-level cell must reach its standard baseline's
	// recall within the ordering slack.
	rep.OrderingViolations = []string{}
	if g.SkipOrdering {
		return nil
	}
	byKey := make(map[string]*CellResult, len(rep.Cells))
	for i := range rep.Cells {
		byKey[rep.Cells[i].Key] = &rep.Cells[i]
	}
	for _, c := range rep.Cells {
		if c.Partition != "bilevel" {
			continue
		}
		baseKey := fmt.Sprintf("%s/%s/%s/standard/%s", c.Dataset, c.Lattice, c.Probe, c.Dynamics)
		base, ok := byKey[baseKey]
		if !ok {
			return fmt.Errorf("quality: bilevel cell %s has no standard baseline cell", c.Key)
		}
		if c.Recall+g.OrderingSlack < base.Recall {
			rep.OrderingViolations = append(rep.OrderingViolations,
				fmt.Sprintf("%s recall %.4f < standard baseline %.4f - slack %.2f", c.Key, c.Recall, base.Recall, g.OrderingSlack))
			rep.Pass = false
		}
	}
	sort.Strings(rep.OrderingViolations)
	return nil
}

// JSON renders a value (a Report or a Golden) as stable, indented JSON
// with a trailing newline. Struct field order and Go's deterministic
// float formatting make the bytes reproducible run to run.
func JSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// floorTo rounds x down at the given decimal place (thresholds should
// never round up past the measurement they were derived from).
func floorTo(x float64, places int) float64 {
	p := math.Pow(10, float64(places))
	return math.Floor(x*p) / p
}

// ceilTo rounds x up at the given decimal place.
func ceilTo(x float64, places int) float64 {
	p := math.Pow(10, float64(places))
	return math.Ceil(x*p) / p
}
