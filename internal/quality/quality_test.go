package quality

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestGateSmall is the in-tree quality gate: the Small preset must pass its
// committed golden thresholds and the Fig. 7 ordering assertion. The Full
// preset runs in CI via `make quality`.
func TestGateSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("quality matrix skipped in -short mode")
	}
	cfg := Small()
	cfg.CacheDir = t.TempDir()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := LoadGolden(cfg.Preset)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Check(rep); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if !c.Pass {
			t.Errorf("cell %s: recall %.4f (min %.3f) error %.4f (min %.3f) selectivity %.4f (max %.4f)",
				c.Key, c.Recall, c.Threshold.MinRecall, c.ErrorRatio, c.Threshold.MinErrorRatio,
				c.Selectivity, c.Threshold.MaxSelectivity)
		}
	}
	for _, v := range rep.OrderingViolations {
		t.Errorf("ordering violation: %s", v)
	}
	if !rep.Pass {
		t.Fatal("quality gate failed")
	}
}

// TestRunDeterministic asserts the acceptance property of the harness: two
// runs of the same config produce byte-identical reports (one cold oracle
// cache, one warm, so the cache read path cannot change the numbers).
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("quality matrix skipped in -short mode")
	}
	cfg := Small()
	cfg.CacheDir = t.TempDir()
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := JSON(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := JSON(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two runs of the same config produced different report bytes")
	}
}

// TestOracleCache exercises the golden-file round trip: miss, hit with
// identical truth, and automatic recovery from a corrupted file.
func TestOracleCache(t *testing.T) {
	dir := t.TempDir()
	train, qs, _, err := Generators["manifold"](200, 20, 0, 12, 42)
	if err != nil {
		t.Fatal(err)
	}

	truth1, cached, err := groundTruth(dir, train, qs, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first call reported a cache hit in an empty dir")
	}
	truth2, cached, err := groundTruth(dir, train, qs, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second call missed the cache")
	}
	if !reflect.DeepEqual(truth1, truth2) {
		t.Fatal("cached truth differs from computed truth")
	}

	// Corrupt the golden file; the oracle must detect it and recompute.
	files, err := filepath.Glob(filepath.Join(dir, "oracle-*.golden"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one golden file, got %v (err %v)", files, err)
	}
	if err := os.WriteFile(files[0], []byte("BLSHORC1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	truth3, cached, err := groundTruth(dir, train, qs, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("corrupted golden file was served as a cache hit")
	}
	if !reflect.DeepEqual(truth1, truth3) {
		t.Fatal("recomputed truth differs after corruption")
	}
}

// TestOracleKey asserts the fingerprint separates everything it must:
// k, the id labeling and the vector bytes.
func TestOracleKey(t *testing.T) {
	train, qs, _, err := Generators["manifold"](64, 8, 0, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := oracleKey(train, qs, nil, 5)
	if oracleKey(train, qs, nil, 6) == base {
		t.Error("key ignores k")
	}
	ids := make([]int32, train.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	if oracleKey(train, qs, ids, 5) == base {
		t.Error("key ignores the id labeling")
	}
	train.Data[0] += 1
	if oracleKey(train, qs, nil, 5) == base {
		t.Error("key ignores the vector bytes")
	}
}

// TestGenerators checks every registered generator for shape, seed
// determinism and seed sensitivity.
func TestGenerators(t *testing.T) {
	const n, q, ins, d = 150, 15, 10, 8
	for name, gen := range Generators {
		t.Run(name, func(t *testing.T) {
			tr1, qs1, in1, err := gen(n, q, ins, d, 9)
			if err != nil {
				t.Fatal(err)
			}
			if tr1.N != n || qs1.N != q || in1.N != ins || tr1.D != d || qs1.D != d || in1.D != d {
				t.Fatalf("wrong shapes: train %dx%d queries %dx%d inserts %dx%d",
					tr1.N, tr1.D, qs1.N, qs1.D, in1.N, in1.D)
			}
			tr2, qs2, in2, err := gen(n, q, ins, d, 9)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr1.Data, tr2.Data) || !reflect.DeepEqual(qs1.Data, qs2.Data) || !reflect.DeepEqual(in1.Data, in2.Data) {
				t.Fatal("same seed produced different data")
			}
			tr3, _, _, err := gen(n, q, ins, d, 10)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(tr1.Data, tr3.Data) {
				t.Fatal("different seeds produced identical data")
			}
		})
	}
}

// TestGoldenCoversMatrix is the cheap structural guard: the committed
// golden tables must key exactly the cells each preset's matrix produces,
// so drift is caught even in -short mode where the matrix does not run.
func TestGoldenCoversMatrix(t *testing.T) {
	for _, cfg := range []Config{Full(), Small(), Planted()} {
		g, err := LoadGolden(cfg.Preset)
		if err != nil {
			t.Fatal(err)
		}
		cells := Cells(cfg)
		if len(g.Cells) != len(cells) {
			t.Errorf("%s: golden has %d cells, matrix has %d", cfg.Preset, len(g.Cells), len(cells))
		}
		for _, c := range cells {
			if _, ok := g.Cells[c.Key()]; !ok {
				t.Errorf("%s: matrix cell %s has no golden threshold", cfg.Preset, c.Key())
			}
		}
		if g.OrderingSlack <= 0 || g.OrderingSlack >= 0.1 {
			t.Errorf("%s: implausible ordering slack %v", cfg.Preset, g.OrderingSlack)
		}
	}
}

// TestConfigValidate covers the error paths of Config.Validate.
func TestConfigValidate(t *testing.T) {
	good := Small()
	if err := good.Validate(); err != nil {
		t.Fatalf("Small preset invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Preset = "" },
		func(c *Config) { c.Datasets = nil },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.K = -1 },
		func(c *Config) { c.L = 0 },
		func(c *Config) { c.DeleteBase = c.N },
		func(c *Config) { c.DeleteInserted = c.Inserts + 1 },
		func(c *Config) { c.Datasets = []string{"no-such-generator"} },
	}
	for i, mutate := range bad {
		c := Small()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
}
