// Package hierarchy implements the hierarchical LSH tables of Section
// IV-B2: query-adaptive bucket enlargement so that queries landing in
// sparse regions automatically search coarser (larger) buckets.
//
// Two constructions are provided, matching the paper:
//
//   - Morton: for the Z^M lattice, bucket codes are placed on a Morton
//     (Z-order) curve; the level-k ancestor groups of Eq. 8 are exactly the
//     shared-MSB prefix ranges of the sorted curve, so climbing the
//     hierarchy is a widening of a contiguous window.
//   - E8Tree: the E8 lattice admits no Morton representation, so the
//     hierarchy is stored explicitly as a linear array of buckets ordered
//     so each level's groups are contiguous, plus per-level indexes from
//     ancestor code (Eq. 10) to group range.
//
// Both support the same query operation: given the query's level-0 code,
// return the candidate ids of the smallest enclosing group holding at
// least minCount items.
package hierarchy

import (
	"fmt"
	"slices"

	"bilsh/internal/lattice"
	"bilsh/internal/lshtable"
	"bilsh/internal/morton"
)

// Hierarchy is the query-side interface shared by both constructions.
type Hierarchy interface {
	// Candidates returns item ids from the smallest group containing the
	// query code with at least minCount items (all items if no group
	// reaches minCount). The second result is the hierarchy level used.
	Candidates(code []int32, minCount int) ([]int, int)
	// AppendCandidates is Candidates appending int32 ids to dst, using s
	// for reusable key/code buffers — the allocation-free form the query
	// hot path calls with pooled scratch state.
	AppendCandidates(dst []int32, code []int32, minCount int, s *Scratch) ([]int32, int)
}

// Scratch carries the reusable buffers AppendCandidates encodes into. The
// zero value is ready to use; buffers grow on first use and are retained
// across queries.
type Scratch struct {
	Key  []byte  // Morton / lattice key buffer
	Code []int32 // ancestor code buffer
}

// ---------------------------------------------------------------------------
// Morton hierarchy (Z^M)

// Morton is the Z-order hierarchy over one LSH table.
type Morton struct {
	table  *lshtable.Table
	enc    *morton.Encoder
	curve  *morton.Curve
	prefix []int // prefix sums of bucket sizes in curve order
}

// NewMorton indexes table's buckets on a Morton curve. bits is the per-
// dimension key width (see morton.NewEncoder).
func NewMorton(table *lshtable.Table, m, bits int) (*Morton, error) {
	enc := morton.NewEncoder(m, bits)
	n := table.NumBuckets()
	keys := make([]string, n)
	vals := make([]int, n)
	for b := 0; b < n; b++ {
		key, _ := table.BucketByOrdinal(b)
		code := lattice.Unkey(key)
		if len(code) != m {
			return nil, fmt.Errorf("hierarchy: bucket code has %d dims, want %d", len(code), m)
		}
		keys[b] = enc.Encode(code)
		vals[b] = b
	}
	curve, err := morton.BuildCurve(enc, keys, vals)
	if err != nil {
		return nil, fmt.Errorf("hierarchy: %w", err)
	}
	h := &Morton{table: table, enc: enc, curve: curve}
	h.prefix = make([]int, curve.Len()+1)
	for i := 0; i < curve.Len(); i++ {
		_, ids := table.BucketByOrdinal(curve.Value(i))
		h.prefix[i+1] = h.prefix[i] + len(ids)
	}
	return h, nil
}

// Candidates implements Hierarchy by climbing ancestor levels (widening
// Morton prefix ranges) until the group holds minCount items.
func (h *Morton) Candidates(code []int32, minCount int) ([]int, int) {
	var s Scratch
	ids32, level := h.AppendCandidates(nil, code, minCount, &s)
	return widen(ids32), level
}

// AppendCandidates implements Hierarchy without allocating: the Morton key
// is encoded into s.Key and the group's ids are appended to dst.
func (h *Morton) AppendCandidates(dst []int32, code []int32, minCount int, s *Scratch) ([]int32, int) {
	s.Key = h.enc.AppendEncode(s.Key[:0], code)
	for k := 0; k <= h.enc.Bits(); k++ {
		lo, hi := h.curve.PrefixRangeBytes(s.Key, h.enc.AncestorLevelToPrefixBits(k))
		if h.prefix[hi]-h.prefix[lo] >= minCount || k == h.enc.Bits() {
			return h.collectAppend(dst, lo, hi), k
		}
	}
	return dst, 0 // unreachable: k == Bits() always returns
}

// Window returns the ids of up to nBuckets buckets nearest the query code
// on the curve — the paper's "Morton codes before and after the insert
// position" probe, without climbing levels.
func (h *Morton) Window(code []int32, nBuckets int) []int {
	key := h.enc.Encode(code)
	var out []int
	for _, b := range h.curve.Window(key, nBuckets) {
		_, ids := h.table.BucketByOrdinal(b)
		out = append(out, ids...)
	}
	return out
}

// SharedMSB returns the number of most significant Morton bits the query
// shares with its nearest curve neighbor — the paper's signal for choosing
// a hierarchy level.
func (h *Morton) SharedMSB(code []int32) int {
	if h.curve.Len() == 0 {
		return 0
	}
	key := h.enc.Encode(code)
	pos := h.curve.Find(key)
	best := 0
	if pos < h.curve.Len() {
		if s := h.enc.SharedPrefixBits(key, h.curve.Key(pos)); s > best {
			best = s
		}
	}
	if pos > 0 {
		if s := h.enc.SharedPrefixBits(key, h.curve.Key(pos-1)); s > best {
			best = s
		}
	}
	return best
}

func (h *Morton) collectAppend(dst []int32, lo, hi int) []int32 {
	for i := lo; i < hi; i++ {
		_, ids := h.table.BucketByOrdinal(h.curve.Value(i))
		for _, id := range ids {
			dst = append(dst, int32(id))
		}
	}
	return dst
}

// widen converts collected int32 ids back to the []int form of the
// compatibility Candidates methods.
func widen(ids32 []int32) []int {
	out := make([]int, len(ids32))
	for i, id := range ids32 {
		out[i] = int(id)
	}
	return out
}

// ---------------------------------------------------------------------------
// E8 hierarchy

// maxE8Levels caps the explicit hierarchy depth; buckets that still differ
// at the cap are joined by a virtual root (the E8 ancestor iteration does
// not always unify distant codes, unlike the Morton prefix).
const maxE8Levels = 24

// E8Tree is the explicit lattice hierarchy: the linear bucket array plus
// one index per level mapping ancestor keys to contiguous group ranges
// (Section IV-B2b's "linear array along with an index hierarchy"). It was
// designed for E8 — which has no Morton representation — but works for any
// lattice with the scaling property (E8, D_n), so it accepts the Lattice
// interface.
type E8Tree struct {
	table  *lshtable.Table
	lat    lattice.Lattice
	order  []int // bucket ordinals in hierarchy order
	prefix []int // prefix sums of bucket sizes in hierarchy order
	// levels[k] maps the level-k ancestor key to the [lo,hi) range of
	// `order` covered by that group; levels[0] is the buckets themselves.
	levels []map[string]groupRange
}

type groupRange struct{ lo, hi int }

// NewE8Tree builds the hierarchy for table's buckets under lat (E8, D_n,
// or any other lattice whose Ancestor implements the Eq. 10 recursion).
func NewE8Tree(table *lshtable.Table, lat lattice.Lattice) (*E8Tree, error) {
	n := table.NumBuckets()
	h := &E8Tree{table: table, lat: lat}
	if n == 0 {
		h.prefix = []int{0}
		return h, nil
	}

	// Ancestor keys per bucket per level, built from the level-0 codes.
	ancKeys := make([][]string, 0, maxE8Levels+1)
	codes := make([][]int32, n)
	level0 := make([]string, n)
	for b := 0; b < n; b++ {
		key, _ := table.BucketByOrdinal(b)
		codes[b] = lattice.Unkey(key)
		if len(codes[b]) != lat.CodeLen() {
			return nil, fmt.Errorf("hierarchy: bucket code has %d dims, want %d", len(codes[b]), lat.CodeLen())
		}
		level0[b] = key
	}
	ancKeys = append(ancKeys, level0)
	for k := 1; k <= maxE8Levels; k++ {
		keys := make([]string, n)
		unified := true
		for b := 0; b < n; b++ {
			keys[b] = lattice.Key(lat.Ancestor(codes[b], k))
			if keys[b] != keys[0] {
				unified = false
			}
		}
		ancKeys = append(ancKeys, keys)
		if unified {
			break // "the process is repeated until m", all codes equal
		}
	}
	top := len(ancKeys) - 1

	// Order buckets so every level's groups are contiguous: sort by the
	// ancestor-key tuple from the top level down.
	h.order = make([]int, n)
	for i := range h.order {
		h.order[i] = i
	}
	slices.SortFunc(h.order, func(x, y int) int {
		for k := top; k >= 0; k-- {
			switch {
			case ancKeys[k][x] < ancKeys[k][y]:
				return -1
			case ancKeys[k][x] > ancKeys[k][y]:
				return 1
			}
		}
		return 0
	})

	h.prefix = make([]int, n+1)
	for i, b := range h.order {
		_, ids := table.BucketByOrdinal(b)
		h.prefix[i+1] = h.prefix[i] + len(ids)
	}

	// Group ranges per level over the sorted order.
	h.levels = make([]map[string]groupRange, top+1)
	for k := 0; k <= top; k++ {
		idx := make(map[string]groupRange)
		start := 0
		for i := 1; i <= n; i++ {
			if i == n || ancKeys[k][h.order[i]] != ancKeys[k][h.order[start]] {
				idx[ancKeys[k][h.order[start]]] = groupRange{start, i}
				start = i
			}
		}
		h.levels[k] = idx
	}
	return h, nil
}

// Levels returns the number of explicit levels (including level 0).
func (h *E8Tree) Levels() int { return len(h.levels) }

// Candidates implements Hierarchy: climb the query's ancestor chain until
// a group with minCount items exists; the virtual root (all items) is the
// final fallback, covering queries whose codes match no stored group.
func (h *E8Tree) Candidates(code []int32, minCount int) ([]int, int) {
	var s Scratch
	ids32, level := h.AppendCandidates(nil, code, minCount, &s)
	return widen(ids32), level
}

// AppendCandidates implements Hierarchy without allocating: ancestor codes
// and their keys are built in s's reused buffers and the group's ids are
// appended to dst.
func (h *E8Tree) AppendCandidates(dst []int32, code []int32, minCount int, s *Scratch) ([]int32, int) {
	for k := 0; k < len(h.levels); k++ {
		s.Code = h.lat.AncestorInto(s.Code, code, k)
		s.Key = lattice.AppendKey(s.Key[:0], s.Code)
		g, ok := h.levels[k][string(s.Key)]
		if !ok {
			continue
		}
		if h.prefix[g.hi]-h.prefix[g.lo] >= minCount {
			return h.collectAppend(dst, g.lo, g.hi), k
		}
	}
	// Virtual root: distinct E8 ancestor chains can converge to different
	// fixed points and never unify, so the root is the explicit fallback.
	return h.collectAppend(dst, 0, len(h.order)), len(h.levels)
}

// Descend mirrors the paper's traversal: walk down from the top choosing
// the child whose ancestor code matches the query, and return the bucket
// group where the walk stops (no deeper matching child).
func (h *E8Tree) Descend(code []int32) ([]int, int) {
	if len(h.levels) == 0 {
		return nil, 0
	}
	for k := 0; k < len(h.levels); k++ {
		key := lattice.Key(h.lat.Ancestor(code, k))
		if g, ok := h.levels[k][key]; ok {
			return h.collect(g.lo, g.hi), k
		}
	}
	return h.collect(0, len(h.order)), len(h.levels)
}

func (h *E8Tree) collect(lo, hi int) []int {
	out := make([]int, 0, h.prefix[hi]-h.prefix[lo])
	for i := lo; i < hi; i++ {
		_, ids := h.table.BucketByOrdinal(h.order[i])
		out = append(out, ids...)
	}
	return out
}

func (h *E8Tree) collectAppend(dst []int32, lo, hi int) []int32 {
	for i := lo; i < hi; i++ {
		_, ids := h.table.BucketByOrdinal(h.order[i])
		for _, id := range ids {
			dst = append(dst, int32(id))
		}
	}
	return dst
}
