package hierarchy

import (
	"sort"
	"testing"

	"bilsh/internal/lattice"
	"bilsh/internal/lshtable"
	"bilsh/internal/xrand"
)

// buildZMTable hashes n random points to Z^M codes and returns the table
// plus each id's code.
func buildZMTable(t *testing.T, n, m int, scale float64, seed int64) (*lshtable.Table, [][]int32) {
	t.Helper()
	rng := xrand.New(seed)
	z := lattice.NewZM(m)
	codes := make([]string, n)
	raw := make([][]int32, n)
	ids := make([]int, n)
	y := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := range y {
			y[j] = rng.NormFloat64() * scale
		}
		c := z.Decode(y)
		raw[i] = c
		codes[i] = lattice.Key(c)
		ids[i] = i
	}
	tab, err := lshtable.Build(codes, ids)
	if err != nil {
		t.Fatal(err)
	}
	return tab, raw
}

func TestMortonCandidatesGrowWithMinCount(t *testing.T) {
	tab, raw := buildZMTable(t, 500, 4, 3, 1)
	h, err := NewMorton(tab, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := raw[0]
	small, lvlSmall := h.Candidates(q, 1)
	big, lvlBig := h.Candidates(q, 200)
	if len(small) < 1 {
		t.Fatal("exact bucket must contain the query's own point")
	}
	if len(big) < 200 {
		t.Fatalf("climbing produced only %d candidates, want >= 200", len(big))
	}
	if lvlBig < lvlSmall {
		t.Fatalf("bigger demand used lower level (%d < %d)", lvlBig, lvlSmall)
	}
	// Nesting: the small set must be a subset of the big set.
	set := make(map[int]bool, len(big))
	for _, id := range big {
		set[id] = true
	}
	for _, id := range small {
		if !set[id] {
			t.Fatal("hierarchy groups do not nest")
		}
	}
}

func TestMortonCandidatesExactBucketFirst(t *testing.T) {
	tab, raw := buildZMTable(t, 300, 4, 2, 2)
	h, err := NewMorton(tab, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// For minCount=1 the returned ids must be exactly the home bucket.
	q := raw[7]
	got, lvl := h.Candidates(q, 1)
	want := tab.Bucket(lattice.Key(q))
	if lvl != 0 {
		t.Fatalf("level = %d, want 0", lvl)
	}
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("home bucket contents differ")
		}
	}
}

func TestMortonRootReturnsEverything(t *testing.T) {
	tab, raw := buildZMTable(t, 200, 3, 2, 3)
	h, err := NewMorton(tab, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := h.Candidates(raw[0], 1<<30)
	if len(all) != 200 {
		t.Fatalf("root group has %d ids, want all 200", len(all))
	}
}

func TestMortonQueryInEmptyRegion(t *testing.T) {
	tab, _ := buildZMTable(t, 200, 3, 1, 4)
	h, err := NewMorton(tab, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// A far-away code hits no bucket at level 0; climbing must still find
	// candidates (this is the low-density-query scenario of Sec. IV-B2).
	q := []int32{500, -500, 500}
	got, _ := h.Candidates(q, 10)
	if len(got) < 10 {
		t.Fatalf("sparse query found only %d candidates", len(got))
	}
}

func TestMortonWindow(t *testing.T) {
	tab, raw := buildZMTable(t, 400, 4, 3, 5)
	h, err := NewMorton(tab, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	ids := h.Window(raw[3], 5)
	if len(ids) == 0 {
		t.Fatal("window produced no candidates")
	}
	// The home bucket must be part of a 5-bucket window around itself.
	home := tab.Bucket(lattice.Key(raw[3]))
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	for _, id := range home {
		if !set[id] {
			t.Fatal("window misses the home bucket")
		}
	}
}

func TestMortonSharedMSB(t *testing.T) {
	tab, raw := buildZMTable(t, 100, 3, 2, 6)
	h, err := NewMorton(tab, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// A stored code shares all bits with itself.
	if got := h.SharedMSB(raw[0]); got != 36 {
		t.Fatalf("SharedMSB(stored) = %d, want 36", got)
	}
	// A far-away code shares few bits.
	far := h.SharedMSB([]int32{2000, -2000, 2000})
	if far >= 36 {
		t.Fatalf("SharedMSB(far) = %d, want < 36", far)
	}
}

// ---------------------------------------------------------------------------
// E8 hierarchy

func buildE8Table(t *testing.T, n int, scale float64, seed int64) (*lshtable.Table, *lattice.E8, [][]int32) {
	t.Helper()
	rng := xrand.New(seed)
	e := lattice.NewE8(8)
	codes := make([]string, n)
	raw := make([][]int32, n)
	ids := make([]int, n)
	y := make([]float64, 8)
	for i := 0; i < n; i++ {
		for j := range y {
			y[j] = rng.NormFloat64() * scale
		}
		c := e.Decode(y)
		raw[i] = c
		codes[i] = lattice.Key(c)
		ids[i] = i
	}
	tab, err := lshtable.Build(codes, ids)
	if err != nil {
		t.Fatal(err)
	}
	return tab, e, raw
}

func TestE8TreeCandidatesNestAndGrow(t *testing.T) {
	tab, e, raw := buildE8Table(t, 600, 3, 7)
	h, err := NewE8Tree(tab, e)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() < 2 {
		t.Fatalf("hierarchy has %d levels; expected several", h.Levels())
	}
	q := raw[11]
	small, _ := h.Candidates(q, 1)
	if len(small) == 0 {
		t.Fatal("home bucket empty for stored code")
	}
	big, _ := h.Candidates(q, 300)
	if len(big) < 300 && len(big) != 600 {
		t.Fatalf("climb produced %d candidates", len(big))
	}
	set := make(map[int]bool, len(big))
	for _, id := range big {
		set[id] = true
	}
	for _, id := range small {
		if !set[id] {
			t.Fatal("E8 groups do not nest")
		}
	}
}

func TestE8TreeExactBucketLevel0(t *testing.T) {
	tab, e, raw := buildE8Table(t, 300, 2, 8)
	h, err := NewE8Tree(tab, e)
	if err != nil {
		t.Fatal(err)
	}
	q := raw[0]
	got, lvl := h.Candidates(q, 1)
	if lvl != 0 {
		t.Fatalf("level = %d, want 0", lvl)
	}
	want := tab.Bucket(lattice.Key(q))
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestE8TreeVirtualRoot(t *testing.T) {
	tab, e, raw := buildE8Table(t, 150, 2, 9)
	h, err := NewE8Tree(tab, e)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := h.Candidates(raw[0], 1<<30)
	if len(all) != 150 {
		t.Fatalf("virtual root returned %d ids, want all 150", len(all))
	}
	// A code unrelated to any stored bucket must still get candidates.
	q := make([]int32, 8)
	for i := range q {
		q[i] = 2000 // (1000)^8: sum even, valid E8 point far away
	}
	got, _ := h.Candidates(q, 5)
	if len(got) < 5 {
		t.Fatalf("alien query got %d candidates", len(got))
	}
}

func TestE8TreeDescend(t *testing.T) {
	tab, e, raw := buildE8Table(t, 400, 3, 10)
	h, err := NewE8Tree(tab, e)
	if err != nil {
		t.Fatal(err)
	}
	// Descending with a stored code reaches level 0 (its own bucket).
	got, lvl := h.Descend(raw[5])
	if lvl != 0 {
		t.Fatalf("Descend(stored) level = %d", lvl)
	}
	if len(got) == 0 {
		t.Fatal("Descend returned no ids")
	}
}

func TestE8TreeGroupsPartitionEveryLevel(t *testing.T) {
	tab, e, _ := buildE8Table(t, 500, 3, 11)
	h, err := NewE8Tree(tab, e)
	if err != nil {
		t.Fatal(err)
	}
	// At every level the group ranges must partition [0, buckets).
	for k := 0; k < h.Levels(); k++ {
		covered := make([]bool, tab.NumBuckets())
		for _, g := range h.levels[k] {
			for i := g.lo; i < g.hi; i++ {
				if covered[i] {
					t.Fatalf("level %d: position %d in two groups", k, i)
				}
				covered[i] = true
			}
		}
		for i, ok := range covered {
			if !ok {
				t.Fatalf("level %d: position %d uncovered", k, i)
			}
		}
	}
}

func TestE8TreeEmptyTable(t *testing.T) {
	tab, err := lshtable.Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewE8Tree(tab, lattice.NewE8(8))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.Candidates(make([]int32, 8), 1)
	if len(got) != 0 {
		t.Fatal("empty hierarchy must return nothing")
	}
}

func TestMortonDimensionMismatch(t *testing.T) {
	tab, _ := buildZMTable(t, 50, 4, 2, 12)
	if _, err := NewMorton(tab, 6, 16); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}
