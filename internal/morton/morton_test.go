package morton

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"bilsh/internal/xrand"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		m := 1 + rng.Intn(12)
		bits := 2 + rng.Intn(20)
		e := NewEncoder(m, bits)
		code := make([]int32, m)
		half := int32(1) << uint(bits-1)
		for i := range code {
			code[i] = int32(rng.Intn(int(2*half))) - half
		}
		return reflect.DeepEqual(e.Decode(e.Encode(code)), code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeClampsOutOfRange(t *testing.T) {
	e := NewEncoder(2, 4) // range [-8, 7]
	low := e.Encode([]int32{-100, 0})
	lowWant := e.Encode([]int32{-8, 0})
	if low != lowWant {
		t.Fatal("underflow must clamp to minimum")
	}
	high := e.Encode([]int32{100, 0})
	highWant := e.Encode([]int32{7, 0})
	if high != highWant {
		t.Fatal("overflow must clamp to maximum")
	}
}

func TestMortonOrder2DKnown(t *testing.T) {
	// Classic 2x2 Z pattern with bits=1 (biased domain {-1,0}): dim 0 is
	// interleaved first, so it occupies the more significant bit of each
	// pair: (-1,-1) < (-1,0) < (0,-1) < (0,0).
	e := NewEncoder(2, 1)
	keys := []string{
		e.Encode([]int32{-1, -1}),
		e.Encode([]int32{-1, 0}),
		e.Encode([]int32{0, -1}),
		e.Encode([]int32{0, 0}),
	}
	for i := 1; i < len(keys); i++ {
		if !(keys[i-1] < keys[i]) {
			t.Fatalf("Z-order violated between %d and %d", i-1, i)
		}
	}
}

// Property: the Morton order refines per-dimension order on shared-prefix
// groups — codes equal in all but the lowest bit land adjacent under their
// common ancestor prefix.
func TestAncestorPrefixGrouping(t *testing.T) {
	e := NewEncoder(3, 8)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		code := make([]int32, 3)
		for i := range code {
			code[i] = int32(rng.Intn(200) - 100)
		}
		k := 1 + rng.Intn(4)
		// Sibling: same level-k ancestor, different low bits.
		sib := make([]int32, 3)
		for i := range sib {
			base := (code[i] >> uint(k)) << uint(k)
			sib[i] = base + int32(rng.Intn(1<<uint(k)))
		}
		pb := e.AncestorLevelToPrefixBits(k)
		ka, kb := e.Encode(code), e.Encode(sib)
		return e.SharedPrefixBits(ka, kb) >= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPrefixBits(t *testing.T) {
	e := NewEncoder(2, 8)
	a := e.Encode([]int32{3, 5})
	if got := e.SharedPrefixBits(a, a); got != e.KeyBits() {
		t.Fatalf("self shared prefix = %d, want %d", got, e.KeyBits())
	}
	b := FlipBit(a, 0)
	if got := e.SharedPrefixBits(a, b); got != 0 {
		t.Fatalf("MSB-flip shared prefix = %d, want 0", got)
	}
	c := FlipBit(a, 9)
	if got := e.SharedPrefixBits(a, c); got != 9 {
		t.Fatalf("bit-9 flip shared prefix = %d, want 9", got)
	}
}

func TestFlipBitInvolution(t *testing.T) {
	e := NewEncoder(4, 6)
	key := e.Encode([]int32{1, -2, 3, -4})
	for bit := 0; bit < e.KeyBits(); bit++ {
		if FlipBit(FlipBit(key, bit), bit) != key {
			t.Fatalf("FlipBit not an involution at bit %d", bit)
		}
	}
}

func TestBuildCurveSortsAndRejectsDuplicates(t *testing.T) {
	e := NewEncoder(2, 8)
	keys := []string{e.Encode([]int32{5, 5}), e.Encode([]int32{-3, 2}), e.Encode([]int32{0, 0})}
	c, err := BuildCurve(e, keys, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !sort.StringsAreSorted([]string{c.Key(0), c.Key(1), c.Key(2)}) {
		t.Fatal("curve keys not sorted")
	}
	_, err = BuildCurve(e, []string{keys[0], keys[0]}, []int{0, 1})
	if err == nil {
		t.Fatal("duplicate keys must be rejected")
	}
	_, err = BuildCurve(e, keys, []int{0})
	if err == nil {
		t.Fatal("length mismatch must be rejected")
	}
}

func TestWindowAlternatesOutward(t *testing.T) {
	e := NewEncoder(1, 8)
	var keys []string
	var vals []int
	for i := 0; i < 10; i++ {
		keys = append(keys, e.Encode([]int32{int32(i * 2)}))
		vals = append(vals, i)
	}
	c, err := BuildCurve(e, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Query key 7 falls between buckets 3 (code 6) and 4 (code 8).
	got := c.Window(e.Encode([]int32{7}), 4)
	want := []int{4, 3, 5, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Window = %v, want %v", got, want)
	}
	// Exact hit starts with the hit bucket.
	got = c.Window(e.Encode([]int32{6}), 3)
	if got[0] != 3 {
		t.Fatalf("exact-hit Window = %v, want leading 3", got)
	}
	// Requesting more than available returns everything.
	got = c.Window(e.Encode([]int32{7}), 100)
	if len(got) != 10 {
		t.Fatalf("oversized Window returned %d values", len(got))
	}
	if c.Window(e.Encode([]int32{7}), 0) != nil {
		t.Fatal("zero-count Window must be nil")
	}
}

func TestWindowAtCurveEnds(t *testing.T) {
	e := NewEncoder(1, 8)
	keys := []string{e.Encode([]int32{0}), e.Encode([]int32{10})}
	c, err := BuildCurve(e, keys, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Window(e.Encode([]int32{-50}), 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("left-end Window = %v", got)
	}
	if got := c.Window(e.Encode([]int32{50}), 2); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("right-end Window = %v", got)
	}
}

func TestPrefixRange(t *testing.T) {
	e := NewEncoder(2, 4)
	var keys []string
	var vals []int
	codes := [][]int32{{0, 0}, {0, 1}, {1, 0}, {4, 4}, {4, 5}, {-8, -8}}
	for i, code := range codes {
		keys = append(keys, e.Encode(code))
		vals = append(vals, i)
	}
	c, err := BuildCurve(e, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Level-1 ancestor of (0,0): codes whose >>1 equals (0,0): {0,1}x{0,1}.
	lo, hi := c.PrefixRange(e.Encode([]int32{0, 0}), e.AncestorLevelToPrefixBits(1))
	members := map[int]bool{}
	for i := lo; i < hi; i++ {
		members[c.Value(i)] = true
	}
	if !members[0] || !members[1] || !members[2] || len(members) != 3 {
		t.Fatalf("level-1 group = %v, want {0,1,2}", members)
	}
	// Level-3 group around (0,0) spans codes in [0,8)^2 biased — excludes
	// the negative corner point.
	lo, hi = c.PrefixRange(e.Encode([]int32{0, 0}), e.AncestorLevelToPrefixBits(3))
	if hi-lo != 5 {
		t.Fatalf("level-3 group size = %d, want 5", hi-lo)
	}
	// prefixBits<=0 is the whole curve.
	lo, hi = c.PrefixRange(keys[0], 0)
	if lo != 0 || hi != c.Len() {
		t.Fatalf("root group = [%d,%d)", lo, hi)
	}
}

// Property: PrefixRange contains exactly the keys sharing the prefix.
func TestPrefixRangeExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		e := NewEncoder(2, 6)
		seen := map[string]bool{}
		var keys []string
		var vals []int
		for i := 0; i < 40; i++ {
			code := []int32{int32(rng.Intn(64) - 32), int32(rng.Intn(64) - 32)}
			k := e.Encode(code)
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			vals = append(vals, len(vals))
		}
		c, err := BuildCurve(e, keys, vals)
		if err != nil {
			return false
		}
		q := e.Encode([]int32{int32(rng.Intn(64) - 32), int32(rng.Intn(64) - 32)})
		pb := rng.Intn(e.KeyBits() + 1)
		lo, hi := c.PrefixRange(q, pb)
		for i := 0; i < c.Len(); i++ {
			in := i >= lo && i < hi
			shares := e.SharedPrefixBits(c.Key(i), q) >= pb
			if in != shares {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Morton order groups nested prefixes contiguously — any prefix
// range is an interval (already by construction) and deeper levels nest.
func TestPrefixNesting(t *testing.T) {
	e := NewEncoder(3, 6)
	rng := xrand.New(44)
	seen := map[string]bool{}
	var keys []string
	var vals []int
	for i := 0; i < 100; i++ {
		code := []int32{int32(rng.Intn(60) - 30), int32(rng.Intn(60) - 30), int32(rng.Intn(60) - 30)}
		k := e.Encode(code)
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		vals = append(vals, len(vals))
	}
	c, err := BuildCurve(e, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	q := e.Encode([]int32{3, -7, 12})
	prevLo, prevHi := c.PrefixRange(q, e.AncestorLevelToPrefixBits(0))
	for k := 1; k <= 6; k++ {
		lo, hi := c.PrefixRange(q, e.AncestorLevelToPrefixBits(k))
		if lo > prevLo || hi < prevHi {
			t.Fatalf("level %d group [%d,%d) does not contain level %d group [%d,%d)",
				k, lo, hi, k-1, prevLo, prevHi)
		}
		prevLo, prevHi = lo, hi
	}
}

func TestNewEncoderValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewEncoder(0, 8) },
		func() { NewEncoder(2, 0) },
		func() { NewEncoder(2, 32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}
