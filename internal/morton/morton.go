// Package morton implements the space-filling Z-order (Lebesgue/Morton)
// curve the paper uses to organize Z^M LSH buckets hierarchically
// (Section IV-B2a).
//
// LSH codes are signed; the encoder biases them into unsigned range and
// interleaves the binary representations MSB-first, so the byte-string
// keys compare in exactly Morton order and the level-k lattice ancestors
// (Eq. 8) correspond to key prefixes of (bits−k)·M bits. That prefix
// property is what turns "use a larger bucket, implemented as buckets with
// the same MSB bits" into a contiguous range of the sorted curve.
package morton

import (
	"fmt"
	"slices"
	"sort"
)

// Encoder interleaves M-dimensional signed codes into Morton keys.
type Encoder struct {
	m    int
	bits int
	bias int32
}

// NewEncoder returns an encoder for m-dimensional codes using the given
// number of bits per dimension (1..31). Codes must fit in
// [-2^(bits-1), 2^(bits-1)); out-of-range values are clamped, which keeps
// far-away outliers ordered at the curve's ends instead of corrupting keys.
func NewEncoder(m, bits int) *Encoder {
	if m <= 0 {
		panic(fmt.Sprintf("morton: NewEncoder m=%d", m))
	}
	if bits <= 0 || bits > 31 {
		panic(fmt.Sprintf("morton: NewEncoder bits=%d, want 1..31", bits))
	}
	return &Encoder{m: m, bits: bits, bias: int32(1) << uint(bits-1)}
}

// M returns the code dimensionality.
func (e *Encoder) M() int { return e.m }

// Bits returns bits per dimension.
func (e *Encoder) Bits() int { return e.bits }

// KeyBits returns the total number of bits in a key.
func (e *Encoder) KeyBits() int { return e.m * e.bits }

// Encode produces the Morton key of a signed code as a byte string whose
// lexicographic order is the Morton order. len(code) must equal M.
func (e *Encoder) Encode(code []int32) string {
	return string(e.AppendEncode(nil, code))
}

// AppendEncode appends the Morton key bytes of code to dst and returns the
// extended slice — the allocation-free form the hierarchical query path
// uses with a reused key buffer. Codes of more than 64 dimensions fall
// back to a small per-call scratch allocation.
func (e *Encoder) AppendEncode(dst []byte, code []int32) []byte {
	if len(code) != e.m {
		panic(fmt.Sprintf("morton: Encode got %d dims, want %d", len(code), e.m))
	}
	var stack [64]uint32
	var biased []uint32
	if e.m <= len(stack) {
		biased = stack[:e.m]
	} else {
		biased = make([]uint32, e.m)
	}
	limit := (int64(1) << uint(e.bits)) - 1
	for i, c := range code {
		v := int64(c) + int64(e.bias)
		if v < 0 {
			v = 0
		}
		if v > limit {
			v = limit
		}
		biased[i] = uint32(v)
	}
	total := e.KeyBits()
	base := len(dst)
	for n := (total + 7) / 8; n > 0; n-- {
		dst = append(dst, 0)
	}
	out := dst[base:]
	pos := 0 // bit cursor, MSB-first
	for level := e.bits - 1; level >= 0; level-- {
		for i := 0; i < e.m; i++ {
			if biased[i]&(1<<uint(level)) != 0 {
				out[pos/8] |= 1 << uint(7-pos%8)
			}
			pos++
		}
	}
	return dst
}

// Decode inverts Encode (for keys produced by this encoder).
func (e *Encoder) Decode(key string) []int32 {
	if len(key) != (e.KeyBits()+7)/8 {
		panic(fmt.Sprintf("morton: Decode key of %d bytes, want %d", len(key), (e.KeyBits()+7)/8))
	}
	biased := make([]uint32, e.m)
	pos := 0
	for level := e.bits - 1; level >= 0; level-- {
		for i := 0; i < e.m; i++ {
			if key[pos/8]&(1<<uint(7-pos%8)) != 0 {
				biased[i] |= 1 << uint(level)
			}
			pos++
		}
	}
	code := make([]int32, e.m)
	for i, b := range biased {
		code[i] = int32(int64(b) - int64(e.bias))
	}
	return code
}

// SharedPrefixBits returns the number of leading bits a and b share,
// considering only the first KeyBits bits. This is the paper's "number of
// most significant bits shared by query Morton code and its curve
// neighbors": small values mean the query sits between distant clusters
// and should climb to a higher hierarchy level.
func (e *Encoder) SharedPrefixBits(a, b string) int {
	max := e.KeyBits()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	bits := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			bits += 8
			continue
		}
		x := a[i] ^ b[i]
		for mask := byte(0x80); mask != 0 && x&mask == 0; mask >>= 1 {
			bits++
		}
		break
	}
	if bits > max {
		bits = max
	}
	return bits
}

// AncestorLevelToPrefixBits converts a lattice hierarchy level k to the key
// prefix length that identifies the level-k ancestor group: dropping the k
// least significant bits of every dimension removes the last k·M key bits.
func (e *Encoder) AncestorLevelToPrefixBits(k int) int {
	if k < 0 {
		k = 0
	}
	if k > e.bits {
		k = e.bits
	}
	return (e.bits - k) * e.m
}

// FlipBit returns key with the given bit (0 = most significant) inverted —
// the bit perturbation of Liao et al. the paper applies to query codes.
func FlipBit(key string, bit int) string {
	if bit < 0 || bit >= 8*len(key) {
		panic(fmt.Sprintf("morton: FlipBit bit %d out of range for %d-byte key", bit, len(key)))
	}
	b := []byte(key)
	b[bit/8] ^= 1 << uint(7-bit%8)
	return string(b)
}

// Curve is a sorted Morton curve over a set of bucket keys. Values attached
// to keys are opaque ints (bucket indices in the caller's table).
type Curve struct {
	enc    *Encoder
	keys   []string
	values []int
}

// BuildCurve sorts (key, value) pairs into a curve. Keys must be distinct
// (they identify unique LSH buckets).
func BuildCurve(enc *Encoder, keys []string, values []int) (*Curve, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("morton: BuildCurve got %d keys but %d values", len(keys), len(values))
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case keys[a] < keys[b]:
			return -1
		case keys[a] > keys[b]:
			return 1
		default:
			return 0
		}
	})
	c := &Curve{enc: enc, keys: make([]string, len(keys)), values: make([]int, len(keys))}
	for out, in := range idx {
		c.keys[out] = keys[in]
		c.values[out] = values[in]
		if out > 0 && c.keys[out-1] == c.keys[out] {
			return nil, fmt.Errorf("morton: BuildCurve duplicate key at sorted position %d", out)
		}
	}
	return c, nil
}

// Len returns the number of buckets on the curve.
func (c *Curve) Len() int { return len(c.keys) }

// Key returns the i-th key in curve order.
func (c *Curve) Key(i int) string { return c.keys[i] }

// Value returns the value attached to the i-th key in curve order.
func (c *Curve) Value(i int) int { return c.values[i] }

// Find returns the insertion position of key: the first index whose key is
// >= key. The position can equal Len().
func (c *Curve) Find(key string) int {
	return sort.SearchStrings(c.keys, key)
}

// FindBytes is Find for a byte-slice key, allocation-free (the string
// conversion below is a comparison temporary the compiler keeps off the
// heap).
func (c *Curve) FindBytes(key []byte) int {
	return sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= string(key) })
}

// Window returns the values of up to count buckets nearest to the insertion
// position of key on the curve (the paper's "Morton codes before and after
// the insert position"), alternating outward.
func (c *Curve) Window(key string, count int) []int {
	if count <= 0 || len(c.keys) == 0 {
		return nil
	}
	pos := c.Find(key)
	out := make([]int, 0, count)
	lo, hi := pos-1, pos
	// If the key itself is present, start with the exact bucket.
	if hi < len(c.keys) && c.keys[hi] == key {
		out = append(out, c.values[hi])
		hi++
	}
	for len(out) < count && (lo >= 0 || hi < len(c.keys)) {
		if hi < len(c.keys) {
			out = append(out, c.values[hi])
			hi++
		}
		if len(out) < count && lo >= 0 {
			out = append(out, c.values[lo])
			lo--
		}
	}
	return out
}

// PrefixRange returns the half-open range [lo, hi) of curve positions whose
// keys share the first prefixBits bits with key — the bucket group at the
// corresponding hierarchy level.
func (c *Curve) PrefixRange(key string, prefixBits int) (lo, hi int) {
	return prefixRange(c, key, prefixBits)
}

// PrefixRangeBytes is PrefixRange for a byte-slice key, allocation-free.
func (c *Curve) PrefixRangeBytes(key []byte, prefixBits int) (lo, hi int) {
	return prefixRange(c, key, prefixBits)
}

// byteSeq abstracts over the string keys the curve stores and the reused
// []byte key buffers the query hot path encodes into.
type byteSeq interface{ ~string | ~[]byte }

func prefixRange[K byteSeq](c *Curve, key K, prefixBits int) (lo, hi int) {
	if prefixBits <= 0 {
		return 0, len(c.keys)
	}
	max := c.enc.KeyBits()
	if prefixBits > max {
		prefixBits = max
	}
	lo = sort.Search(len(c.keys), func(i int) bool {
		return comparePrefix(c.keys[i], key, prefixBits) >= 0
	})
	hi = sort.Search(len(c.keys), func(i int) bool {
		return comparePrefix(c.keys[i], key, prefixBits) > 0
	})
	return lo, hi
}

// comparePrefix lexicographically compares the first bits bits of a and b.
func comparePrefix[A, B byteSeq](a A, b B, bits int) int {
	fullBytes := bits / 8
	rem := bits % 8
	n := fullBytes
	if n > len(a) {
		n = len(a)
	}
	if n > len(b) {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	if rem == 0 || fullBytes >= len(a) || fullBytes >= len(b) {
		return 0
	}
	mask := byte(0xff) << uint(8-rem)
	av, bv := a[fullBytes]&mask, b[fullBytes]&mask
	switch {
	case av < bv:
		return -1
	case av > bv:
		return 1
	default:
		return 0
	}
}
