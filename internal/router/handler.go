package router

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bilsh/internal/httpx"
	"bilsh/internal/metrics"
)

// HTTP front end of the router. The endpoint shapes deliberately mirror
// the shard server's (internal/server) so clients can point at either a
// single node or a cluster without changing request bodies; the extras
// are the cluster-only fields (spill, shards_contacted, partial) and the
// /router/* introspection endpoints. docs/api.md documents every route.

const maxBodyBytes = 64 << 20

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]map[string]http.HandlerFunc{
		"/healthz":       {http.MethodGet: rt.handleHealthz},
		"/info":          {http.MethodGet: rt.handleInfo},
		"/router/shards": {http.MethodGet: rt.handleShards},
		"/query":         {http.MethodPost: rt.handleQuery},
		"/batch":         {http.MethodPost: rt.handleBatch},
		"/insert":        {http.MethodPost: rt.handleInsert},
		"/delete":        {http.MethodPost: rt.handleDelete},
		"/metrics":       {http.MethodGet: rt.handleMetrics},
	}
	for path, methods := range routes {
		mux.Handle(path, rt.instrument(path, httpx.MethodDispatch(methods)))
	}
	return mux
}

// instrument mirrors the shard server's middleware: request count by
// (path, code), latency by path, error count by path — same metric
// names, so one dashboard reads both tiers.
func (rt *Router) instrument(path string, next http.Handler) http.Handler {
	latency := rt.reg.Histogram("bilsh_http_request_seconds",
		"HTTP request latency, by path.", metrics.DefLatencyBuckets, metrics.L("path", path))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &httpx.StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
		next.ServeHTTP(rec, r)
		latency.Observe(time.Since(start).Seconds())
		rt.reg.Counter("bilsh_http_requests_total", "HTTP requests served, by path and status code.",
			metrics.L("path", path), metrics.L("code", strconv.Itoa(rec.Status))).Inc()
		if rec.Status >= 400 {
			rt.reg.Counter("bilsh_http_errors_total", "HTTP responses with status >= 400, by path.",
				metrics.L("path", path)).Inc()
		}
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleInfo(w http.ResponseWriter, _ *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, map[string]interface{}{
		"role":           "router",
		"shards":         rt.m.NumShards(),
		"leaves":         rt.m.NumLeaves(),
		"leaf_aware":     rt.m.LeafAware(),
		"dim":            rt.m.Dim(),
		"spill":          rt.spill,
		"uptime_seconds": int64(time.Since(rt.start).Seconds()),
	})
}

func (rt *Router) handleShards(w http.ResponseWriter, _ *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, map[string]interface{}{"addrs": rt.Health()})
}

type queryRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	// Spill overrides the router's default leaf probe budget for this
	// query (0 = use the default).
	Spill int `json:"spill"`
	// The embedded plan fields (recall, probes, tables, hier_min, rerank,
	// stable_probes, max_candidates) are forwarded to shards; URL
	// parameters of the same names override them, exactly like the shard
	// server's own /query.
	httpx.QueryPlan
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !httpx.DecodeBody(w, r, maxBodyBytes, &req) {
		return
	}
	k, ok := httpx.DecodePlanRequest(w, r, req.K, &req.QueryPlan)
	if !ok {
		return
	}
	res, err := rt.QueryPlan(r.Context(), req.Vector, k, req.Spill, req.QueryPlan, httpx.WantStats(r.URL.Query()))
	if err != nil {
		rt.writeError(w, err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, res)
}

type batchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	K       int         `json:"k"`
	Spill   int         `json:"spill"`
	httpx.QueryPlan
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !httpx.DecodeBody(w, r, maxBodyBytes, &req) {
		return
	}
	k, ok := httpx.DecodePlanRequest(w, r, req.K, &req.QueryPlan)
	if !ok {
		return
	}
	if len(req.Vectors) == 0 {
		httpx.Error(w, http.StatusBadRequest, "batch needs at least one vector")
		return
	}
	wantStats := httpx.WantStats(r.URL.Query())
	results := make([]*Result, len(req.Vectors))
	for i, v := range req.Vectors {
		res, err := rt.QueryPlan(r.Context(), v, k, req.Spill, req.QueryPlan, wantStats)
		if err != nil {
			rt.writeError(w, fmt.Errorf("vector %d: %w", i, err))
			return
		}
		results[i] = res
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]interface{}{"results": results})
}

func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Vector []float32 `json:"vector"`
	}
	if !httpx.DecodeBody(w, r, maxBodyBytes, &req) {
		return
	}
	gid, shard, err := rt.Insert(r.Context(), req.Vector)
	if err != nil {
		rt.writeError(w, err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]int{"id": gid, "shard": shard})
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID *int `json:"id"`
	}
	if !httpx.DecodeBody(w, r, maxBodyBytes, &req) {
		return
	}
	if req.ID == nil || *req.ID < 0 {
		httpx.Error(w, http.StatusBadRequest, "delete needs a non-negative \"id\"")
		return
	}
	res := rt.Delete(r.Context(), *req.ID)
	status := http.StatusOK
	if len(res.FailedShards) > 0 {
		// The id may live on an unreachable shard — the delete is not
		// known to have happened cluster-wide.
		status = http.StatusBadGateway
	}
	httpx.WriteJSON(w, status, res)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		w.Header().Set("Content-Type", "application/json")
		rt.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WritePrometheus(w)
}

// writeError maps router errors onto the structured JSON error shape:
// client mistakes are 400, shard-side failures are 502 (the router is
// fine; an upstream is not).
func (rt *Router) writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrBadQuery) {
		httpx.Error(w, http.StatusBadRequest, "%v", err)
		return
	}
	httpx.Error(w, http.StatusBadGateway, "%v", err)
}
