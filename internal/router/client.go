package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"bilsh/internal/httpx"
	"bilsh/internal/metrics"
)

// shardQueryRequest / shardQueryResponse mirror the shard server's
// /query wire format (internal/server). The embedded plan fields forward
// the merged (router default + per-request) execution plan verbatim; each
// shard re-resolves TargetRecall against its own built parameters.
type shardQueryRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	httpx.QueryPlan
}

// shardPlanStats mirrors the shard server's per-query stats block
// (answered under ?stats=1).
type shardPlanStats struct {
	Scanned         int  `json:"scanned"`
	Probes          int  `json:"probes"`
	TablesProbed    int  `json:"tables_probed"`
	ResolvedTables  int  `json:"resolved_tables"`
	ResolvedProbes  int  `json:"resolved_probes"`
	TerminatedEarly bool `json:"terminated_early"`
}

type shardQueryResponse struct {
	Neighbors  []Neighbor      `json:"neighbors"`
	Candidates int             `json:"candidates"`
	Group      int             `json:"group"`
	Stats      *shardPlanStats `json:"stats"`
}

// shardInsertRequest mirrors the shard server's /insert body; ID is the
// router-assigned cluster-global id.
type shardInsertRequest struct {
	Vector []float32 `json:"vector"`
	ID     *int      `json:"id"`
}

// addrState is the health view of one address. down flips on transport
// failures (passively) and on failed health probes; the prober flips it
// back when the address answers again. misconfigured means the address
// answered /shard/info with the wrong shard id — it is never used until
// the operator fixes the address list.
type addrState struct {
	down          atomic.Bool
	misconfigured atomic.Bool
	lastErr       atomic.Pointer[string]
}

// shardClient issues requests to one shard's address set with
// per-attempt timeouts, replica rotation, retries and hedging.
type shardClient struct {
	id    int
	addrs []string
	state []*addrState
	hc    *http.Client

	timeout time.Duration
	hedge   time.Duration
	retries int

	rr atomic.Uint64 // read rotation cursor across replicas

	metLatency *metrics.Histogram
	metErrs    *metrics.Counter
	metHedges  *metrics.Counter
}

func newShardClient(id int, addrs []string, hc *http.Client,
	timeout, hedge time.Duration, retries int,
	reg *metrics.Registry, metHedges *metrics.Counter) *shardClient {
	c := &shardClient{
		id:      id,
		addrs:   append([]string(nil), addrs...),
		hc:      hc,
		timeout: timeout,
		hedge:   hedge,
		retries: retries,
		metLatency: reg.Histogram("bilsh_router_shard_request_seconds",
			"Shard request latency (successful attempts), by shard.",
			metrics.DefLatencyBuckets, metrics.L("shard", fmt.Sprint(id))),
		metErrs: reg.Counter("bilsh_router_shard_errors_total",
			"Failed shard request attempts, by shard.", metrics.L("shard", fmt.Sprint(id))),
		metHedges: metHedges,
	}
	c.state = make([]*addrState, len(addrs))
	for i := range c.state {
		c.state[i] = &addrState{}
	}
	return c
}

// readOrder returns the addresses to try for a read, rotated by the
// round-robin cursor and with down/misconfigured addresses pushed out;
// when nothing looks healthy every non-misconfigured address is fair
// game (the mark may be stale).
func (c *shardClient) readOrder() []string {
	start := int(c.rr.Add(1)) % len(c.addrs)
	healthy := make([]string, 0, len(c.addrs))
	fallback := make([]string, 0, len(c.addrs))
	for i := 0; i < len(c.addrs); i++ {
		j := (start + i) % len(c.addrs)
		st := c.state[j]
		if st.misconfigured.Load() {
			continue
		}
		if st.down.Load() {
			fallback = append(fallback, c.addrs[j])
			continue
		}
		healthy = append(healthy, c.addrs[j])
	}
	return append(healthy, fallback...)
}

// read issues a hedged, retried POST against the shard's replicas: the
// first attempt goes to the next address in rotation; after the hedge
// delay of silence a duplicate attempt races it on the following
// address; failed attempts move on immediately. The first success wins.
func (c *shardClient) read(ctx context.Context, path string, body, out interface{}) error {
	addrs := c.readOrder()
	if len(addrs) == 0 {
		return fmt.Errorf("router: shard %d has no usable addresses (all misconfigured)", c.id)
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	attempts := 1 + c.retries
	if attempts > len(addrs) {
		attempts = len(addrs)
	}

	// One goroutine per launched attempt reports here; the loop below is
	// the only writer of `next`, so launches never race.
	type attemptResult struct {
		body []byte
		err  error
	}
	resc := make(chan attemptResult, attempts)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in the losers once a winner returns

	launch := func(addr string) {
		go func() {
			b, err := c.try(ctx, addr, path, payload)
			resc <- attemptResult{body: b, err: err}
		}()
	}
	next := 0
	launch(addrs[next])
	next++

	var hedgeC <-chan time.Time
	if c.hedge > 0 && next < attempts {
		t := time.NewTimer(c.hedge)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var firstErr error
	for {
		select {
		case r := <-resc:
			pending--
			if r.err == nil {
				return json.Unmarshal(r.body, out)
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if next < attempts {
				launch(addrs[next])
				next++
				pending++
				continue
			}
			if pending == 0 {
				return firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if next < attempts {
				c.metHedges.Inc()
				launch(addrs[next])
				next++
				pending++
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// primary issues one POST to the shard's primary — mutations are not
// hedged or retried, so a side effect happens at most once per request.
func (c *shardClient) primary(ctx context.Context, path string, body, out interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	b, err := c.try(ctx, c.addrs[0], path, payload)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// primaryGet issues one GET to the shard's primary.
func (c *shardClient) primaryGet(ctx context.Context, path string, out interface{}) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.addrs[0]+path, nil)
	if err != nil {
		return err
	}
	b, err := c.roundTrip(req, 0)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// try runs one POST attempt against addr with the per-attempt timeout,
// recording latency and marking the address down on transport failure.
func (c *shardClient) try(ctx context.Context, addr, path string, payload []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.roundTrip(req, c.addrIndex(addr))
}

func (c *shardClient) addrIndex(addr string) int {
	for i, a := range c.addrs {
		if a == addr {
			return i
		}
	}
	return 0
}

// roundTrip executes req, maps non-2xx statuses to errors carrying the
// shard's structured {"error": ...} body, and maintains passive health.
func (c *shardClient) roundTrip(req *http.Request, addrIdx int) ([]byte, error) {
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failure: the process may be gone; skip this address
		// until the prober sees it again.
		c.markDown(addrIdx, err)
		c.metErrs.Inc()
		return nil, fmt.Errorf("router: shard %d %s: %w", c.id, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		c.metErrs.Inc()
		return nil, fmt.Errorf("router: shard %d %s: reading response: %w", c.id, req.URL.Path, err)
	}
	if resp.StatusCode/100 != 2 {
		// The shard answered — alive, just unhappy. Surface its
		// structured error.
		c.metErrs.Inc()
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("router: shard %d %s: %d: %s", c.id, req.URL.Path, resp.StatusCode, e.Error)
		}
		return nil, fmt.Errorf("router: shard %d %s: status %d", c.id, req.URL.Path, resp.StatusCode)
	}
	c.markUp(addrIdx)
	c.metLatency.Observe(time.Since(start).Seconds())
	return body, nil
}

func (c *shardClient) markDown(addrIdx int, err error) {
	st := c.state[addrIdx]
	st.down.Store(true)
	msg := err.Error()
	st.lastErr.Store(&msg)
}

func (c *shardClient) markUp(addrIdx int) {
	st := c.state[addrIdx]
	st.down.Store(false)
	st.lastErr.Store(nil)
}
