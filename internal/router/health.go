package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// healthProber periodically GETs /shard/info on every configured
// address, flipping addrState.down as processes come and go and pinning
// addrState.misconfigured when an address reports the wrong shard id
// (a swapped address list would otherwise silently merge the wrong
// shards' results).
type healthProber struct {
	rt       *Router
	interval time.Duration
}

// Start launches background health probing; it runs until Stop or ctx
// cancellation. Calling Start twice restarts the probe loop.
func (rt *Router) Start(ctx context.Context) {
	rt.Stop()
	ctx, cancel := context.WithCancel(ctx)
	rt.stopHealth = cancel
	go rt.health.run(ctx)
}

// Stop halts background health probing (no-op when not started).
func (rt *Router) Stop() {
	if rt.stopHealth != nil {
		rt.stopHealth()
		rt.stopHealth = nil
	}
}

func (p *healthProber) run(ctx context.Context) {
	t := time.NewTicker(p.interval)
	defer t.Stop()
	p.sweep(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.sweep(ctx)
		}
	}
}

// sweep probes every address of every shard once.
func (p *healthProber) sweep(ctx context.Context) {
	for _, c := range p.rt.clients {
		for i := range c.addrs {
			p.probe(ctx, c, i)
		}
	}
}

// probe checks one address: reachable and reporting the expected shard
// id → up; reachable with the wrong id → misconfigured (never used until
// the operator fixes it); unreachable → down.
func (p *healthProber) probe(ctx context.Context, c *shardClient, addrIdx int) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.addrs[addrIdx]+"/shard/info", nil)
	if err != nil {
		c.markDown(addrIdx, err)
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.markDown(addrIdx, err)
		return
	}
	defer resp.Body.Close()
	var info struct {
		Shard int `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		c.markDown(addrIdx, fmt.Errorf("bad /shard/info reply: %w", err))
		return
	}
	// Shard -1 means the server was started without a shard id (plain
	// `bilsh serve`); accept it rather than refusing single-node setups.
	if info.Shard >= 0 && info.Shard != c.id {
		msg := fmt.Sprintf("address %s reports shard %d, configured as shard %d",
			c.addrs[addrIdx], info.Shard, c.id)
		c.state[addrIdx].misconfigured.Store(true)
		c.state[addrIdx].lastErr.Store(&msg)
		return
	}
	c.state[addrIdx].misconfigured.Store(false)
	c.markUp(addrIdx)
}

// AddrHealth is the health view of one shard address.
type AddrHealth struct {
	Shard         int    `json:"shard"`
	Addr          string `json:"addr"`
	Primary       bool   `json:"primary"`
	Down          bool   `json:"down"`
	Misconfigured bool   `json:"misconfigured"`
	LastError     string `json:"last_error,omitempty"`
}

// Health snapshots the per-address health state (as maintained by the
// background prober plus passive marks from request failures).
func (rt *Router) Health() []AddrHealth {
	var out []AddrHealth
	for _, c := range rt.clients {
		for i, addr := range c.addrs {
			h := AddrHealth{
				Shard:         c.id,
				Addr:          addr,
				Primary:       i == 0,
				Down:          c.state[i].down.Load(),
				Misconfigured: c.state[i].misconfigured.Load(),
			}
			if p := c.state[i].lastErr.Load(); p != nil {
				h.LastError = *p
			}
			out = append(out, h)
		}
	}
	return out
}
