package router_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bilsh/internal/httpx"
	"bilsh/internal/router"
)

// TestRouterServer400Parity pins the centralized-validation satellite:
// the same bad request draws a byte-identical 400 body from a shard
// server and from the router, because both funnel through
// httpx.DecodePlanRequest.
func TestRouterServer400Parity(t *testing.T) {
	train := testData(t, 400, 8)
	c := leafCluster(t, train, false, nil)
	rtSrv := httptest.NewServer(c.rt.Handler())
	t.Cleanup(rtSrv.Close)
	shardSrv := c.servers[0]

	vec := make([]float32, 8)
	cases := []struct {
		name string
		path string
		body map[string]interface{}
	}{
		{"negative k", "/query", map[string]interface{}{"vector": vec, "k": -2}},
		{"huge k", "/query", map[string]interface{}{"vector": vec, "k": httpx.MaxK + 1}},
		{"recall out of range", "/query?recall=1.5", map[string]interface{}{"vector": vec, "k": 3}},
		{"garbage probes", "/query?probes=abc", map[string]interface{}{"vector": vec, "k": 3}},
		{"negative tables", "/query", map[string]interface{}{"vector": vec, "k": 3, "tables": -4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := json.Marshal(tc.body)
			if err != nil {
				t.Fatal(err)
			}
			fetch := func(base string) (int, string) {
				resp, err := http.Post(base+tc.path, "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				b, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				return resp.StatusCode, string(b)
			}
			shardStatus, shardBody := fetch(shardSrv.URL)
			routerStatus, routerBody := fetch(rtSrv.URL)
			if shardStatus != http.StatusBadRequest || routerStatus != http.StatusBadRequest {
				t.Fatalf("statuses = shard %d, router %d, want 400/400", shardStatus, routerStatus)
			}
			if shardBody != routerBody {
				t.Fatalf("400 bodies differ\nshard:  %s\nrouter: %s", shardBody, routerBody)
			}
		})
	}
}

// TestRouterStatsMerge pins ?stats=1 through the router: per-shard
// PlanStats are merged with the reporting-shard count attached.
func TestRouterStatsMerge(t *testing.T) {
	train := testData(t, 400, 8)
	c := scatterCluster(t, train, 2)
	rtSrv := httptest.NewServer(c.rt.Handler())
	t.Cleanup(rtSrv.Close)

	post := func(path string, body interface{}) *router.Result {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(rtSrv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d: %s", resp.StatusCode, b)
		}
		var res router.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return &res
	}

	body := map[string]interface{}{"vector": train.Row(3), "k": 3}
	if res := post("/query", body); res.Stats != nil {
		t.Fatalf("stats attached without ?stats=1: %+v", res.Stats)
	}
	res := post("/query?stats=1", body)
	if res.Stats == nil {
		t.Fatal("?stats=1 returned no stats")
	}
	if res.Stats.ReportingShards != 2 {
		t.Fatalf("ReportingShards = %d, want 2 (scatter contacts all shards)", res.Stats.ReportingShards)
	}
	if res.Stats.Scanned <= 0 || res.Stats.TablesProbed <= 0 {
		t.Fatalf("merged stats look empty: %+v", res.Stats)
	}
	if res.Stats.TerminatedEarly != 0 {
		t.Fatalf("default plan terminated early on %d shards", res.Stats.TerminatedEarly)
	}
}

// TestRouterForwardsPlan pins plan forwarding end to end: a Tables
// override sent to the router reaches every shard (visible in the merged
// tables-probed count dropping).
func TestRouterForwardsPlan(t *testing.T) {
	train := testData(t, 400, 8)

	c := scatterCluster(t, train, 2)
	ctx := context.Background()

	full, err := c.rt.QueryPlan(ctx, train.Row(3), 3, 0, httpx.QueryPlan{}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Shards in this cluster are built with L=1, so the only observable
	// plan knob here is MaxCandidates early termination.
	capped, err := c.rt.QueryPlan(ctx, train.Row(3), 3, 0, httpx.QueryPlan{MaxCandidates: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Stats.TerminatedEarly == 0 {
		t.Fatalf("max_candidates=1 terminated no shard early: full=%+v capped=%+v", full.Stats, capped.Stats)
	}
	if capped.Stats.Scanned > full.Stats.Scanned {
		t.Fatalf("capped plan scanned more: %d > %d", capped.Stats.Scanned, full.Stats.Scanned)
	}

	// An invalid forwarded plan is rejected at the router, not the shard.
	if _, err := c.rt.QueryPlan(ctx, train.Row(3), 3, 0, httpx.QueryPlan{TargetRecall: 2}, false); err == nil {
		t.Fatal("router accepted an invalid plan")
	}
}

// TestRouterAdaptiveRace stress-tests the router's online re-tuning
// racing live proxied queries (run under -race).
func TestRouterAdaptiveRace(t *testing.T) {
	train := testData(t, 400, 8)
	c := scatterCluster(t, train, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.rt.StartAdaptive(ctx, router.AdaptiveConfig{
		TargetRecall: 0.9,
		Interval:     time.Millisecond,
		MinSamples:   1,
	})

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := c.rt.QueryPlan(ctx, train.Row((w*perWorker+i)%train.N), 3, 0, httpx.QueryPlan{}, true); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for c.rt.DefaultPlan().IsZero() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	dp := c.rt.DefaultPlan()
	if dp.IsZero() {
		t.Fatal("router online tuner never published a forwarded plan")
	}
	if dp.TargetRecall != 0.9 || dp.MaxCandidates <= 0 {
		t.Fatalf("forwarded plan = %+v, want TargetRecall 0.9 and a MaxCandidates cap", dp)
	}
	if _, err := c.rt.QueryPlan(ctx, train.Row(3), 3, 0, httpx.QueryPlan{}, false); err != nil {
		t.Fatalf("post-retune query failed: %v", err)
	}
}
