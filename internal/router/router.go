package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bilsh/internal/httpx"
	"bilsh/internal/metrics"
	"bilsh/internal/topk"
)

// ShardSet is the addresses serving one shard: Addrs[0] is the primary
// (the only address that takes mutations), the rest are read replicas.
type ShardSet struct {
	Addrs []string
}

// Options configures a Router.
type Options struct {
	// Map routes queries to shards. Required; use ScatterMap for
	// clusters split without a tree.
	Map *ShardMap
	// Shards lists the addresses of each shard, indexed by shard id.
	// len(Shards) must equal Map.NumShards().
	Shards []ShardSet
	// Spill is the number of level-1 leaves probed per query (default
	// 1: the home leaf only). Queries can override it per request.
	Spill int
	// Timeout bounds each shard request attempt (default 2s).
	Timeout time.Duration
	// HedgeDelay, when positive, launches a second attempt against the
	// next replica after this much silence — the hedged-request pattern
	// for cutting tail latency. Only read requests hedge.
	HedgeDelay time.Duration
	// Retries is the number of extra attempts (on other replicas when
	// available) after a failed read (default 1).
	Retries int
	// HealthInterval is the background health-probe cadence (default
	// 2s; probes start with Start).
	HealthInterval time.Duration
	// Registry receives the router metrics (default metrics.Default()).
	Registry *metrics.Registry
	// Client is the HTTP client for shard requests (default: a client
	// with sane connection pooling; per-attempt timeouts come from
	// Timeout, not the client).
	Client *http.Client
}

// Router is the scatter-gather front end over a set of shards.
type Router struct {
	m       *ShardMap
	clients []*shardClient
	spill   int
	reg     *metrics.Registry
	start   time.Time

	// nextGID allocates cluster-global ids for inserts; seeded lazily
	// from the shards' reported max_global_id.
	gidMu   sync.Mutex
	gidInit bool
	nextGID int

	metQueries    *metrics.Counter
	metFanout     *metrics.Histogram
	metPartial    *metrics.Counter
	metHedges     *metrics.Counter
	metCandidates *metrics.Histogram

	health     *healthProber
	stopHealth context.CancelFunc

	// defaultPlan is the base execution plan forwarded to shards for
	// requests that carry no overrides — nil means none. The adaptive
	// loop (StartAdaptive) republishes it, racing queries.
	defaultPlan atomic.Pointer[httpx.QueryPlan]
}

// fanoutBounds buckets the per-query shard fan-out width.
var fanoutBounds = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// New validates o and builds a router. It performs no network I/O;
// health probing starts with Start.
func New(o Options) (*Router, error) {
	if o.Map == nil {
		return nil, fmt.Errorf("router: Options.Map is required")
	}
	if len(o.Shards) != o.Map.NumShards() {
		return nil, fmt.Errorf("router: shard map expects %d shards, %d address sets given",
			o.Map.NumShards(), len(o.Shards))
	}
	for i, ss := range o.Shards {
		if len(ss.Addrs) == 0 {
			return nil, fmt.Errorf("router: shard %d has no addresses", i)
		}
	}
	if o.Spill < 1 {
		o.Spill = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 1
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	reg := o.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	hc := o.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}

	rt := &Router{
		m:     o.Map,
		spill: o.Spill,
		reg:   reg,
		start: time.Now(),
		metQueries: reg.Counter("bilsh_router_queries_total",
			"Queries routed (including partial results)."),
		metFanout: reg.Histogram("bilsh_router_fanout_shards",
			"Shards contacted per query.", fanoutBounds),
		metPartial: reg.Counter("bilsh_router_partial_results_total",
			"Queries answered with at least one shard missing."),
		metHedges: reg.Counter("bilsh_router_hedges_total",
			"Hedged (duplicate) shard requests launched after the hedge delay."),
		metCandidates: reg.Histogram("bilsh_router_candidates",
			"Per-shard shortlist candidates per query reply (the online tuner's collision-mass signal).",
			metrics.DefCountBuckets),
	}
	rt.clients = make([]*shardClient, len(o.Shards))
	for i, ss := range o.Shards {
		rt.clients[i] = newShardClient(i, ss.Addrs, hc, o.Timeout, o.HedgeDelay, o.Retries, reg, rt.metHedges)
	}
	rt.health = &healthProber{rt: rt, interval: o.HealthInterval}
	return rt, nil
}

// Neighbor is one merged result entry (cluster-global id, squared
// Euclidean distance).
type Neighbor struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// Result is a merged cluster query result. Partial results are a
// deliberate degradation mode: when a shard is unreachable the router
// answers from the shards it could reach and says so, rather than
// failing the query outright (docs/sharding.md, failure matrix).
type Result struct {
	Neighbors []Neighbor `json:"neighbors"`
	// Candidates sums the per-shard candidate counts (the cluster-wide
	// short-list size).
	Candidates int `json:"candidates"`
	// ShardsContacted is the fan-out width of this query.
	ShardsContacted int `json:"shards_contacted"`
	// FailedShards lists shards that answered no attempt in time;
	// Partial mirrors len(FailedShards) > 0.
	FailedShards []int `json:"failed_shards,omitempty"`
	Partial      bool  `json:"partial"`
	// Stats aggregates the per-shard PlanStats when the request asked for
	// them (?stats=1); nil otherwise.
	Stats *ResultStats `json:"stats,omitempty"`
}

// ResultStats is the FailedShards-aware aggregation of the per-shard
// PlanStats: sums cover only the shards that answered (ReportingShards of
// ShardsContacted), so a partial result's work counters honestly reflect
// the work that actually happened rather than guessing at the dead
// shard's share.
type ResultStats struct {
	// Scanned and Probes sum the per-shard work counters.
	Scanned int `json:"scanned"`
	Probes  int `json:"probes"`
	// TablesProbed sums tables entered across shards; ResolvedTables sums
	// the per-shard budgets, so the two compare like-for-like.
	TablesProbed   int `json:"tables_probed"`
	ResolvedTables int `json:"resolved_tables"`
	// TerminatedEarly counts shards whose probe loop stopped early.
	TerminatedEarly int `json:"terminated_early"`
	// ReportingShards is how many shard replies carried stats (failed
	// shards never do).
	ReportingShards int `json:"reporting_shards"`
}

// ErrBadQuery marks client mistakes (dimension mismatch, bad k) so the
// HTTP layer can answer 400 rather than 500.
var ErrBadQuery = errors.New("router: bad query")

// Query fans v out to the shards its probe set touches (spill <= 0 uses
// the router default) and merges the per-shard shortlists into one
// top-k. The error is non-nil only for invalid input; shard failures
// surface as a partial Result. Query(ctx, v, k, spill) is
// QueryPlan(ctx, v, k, spill, zero plan, no stats).
func (rt *Router) Query(ctx context.Context, v []float32, k, spill int) (*Result, error) {
	return rt.QueryPlan(ctx, v, k, spill, httpx.QueryPlan{}, false)
}

// QueryPlan is Query under an explicit per-query execution plan. The plan
// (merged over the router's default plan; request fields win) is
// forwarded verbatim to every contacted shard, which re-resolves any
// TargetRecall SLO against its own built parameters. With wantStats, each
// shard reports its PlanStats and the merge aggregates them
// FailedShards-aware into Result.Stats.
func (rt *Router) QueryPlan(ctx context.Context, v []float32, k, spill int, plan httpx.QueryPlan, wantStats bool) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k must be >= 1, got %d", ErrBadQuery, k)
	}
	if dim := rt.m.Dim(); dim != 0 && len(v) != dim {
		return nil, fmt.Errorf("%w: vector has dim %d, shard map wants %d", ErrBadQuery, len(v), dim)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	plan = rt.planFor(plan)
	if spill <= 0 {
		spill = rt.spill
	}
	targets := rt.m.ShardsFor(v, spill)
	rt.metQueries.Inc()
	rt.metFanout.Observe(float64(len(targets)))

	path := "/query"
	if wantStats {
		path = "/query?stats=1"
	}
	type shardReply struct {
		shard int
		resp  shardQueryResponse
		err   error
	}
	replies := make([]shardReply, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			var resp shardQueryResponse
			err := rt.clients[shard].read(ctx, path, shardQueryRequest{Vector: v, K: k, QueryPlan: plan}, &resp)
			replies[i] = shardReply{shard: shard, resp: resp, err: err}
		}(i, shard)
	}
	wg.Wait()

	res := &Result{ShardsContacted: len(targets)}
	if wantStats {
		res.Stats = &ResultStats{}
	}
	h := topk.New(k)
	for _, r := range replies {
		if r.err != nil {
			res.FailedShards = append(res.FailedShards, r.shard)
			continue
		}
		res.Candidates += r.resp.Candidates
		rt.metCandidates.Observe(float64(r.resp.Candidates))
		if res.Stats != nil && r.resp.Stats != nil {
			res.Stats.Scanned += r.resp.Stats.Scanned
			res.Stats.Probes += r.resp.Stats.Probes
			res.Stats.TablesProbed += r.resp.Stats.TablesProbed
			res.Stats.ResolvedTables += r.resp.Stats.ResolvedTables
			if r.resp.Stats.TerminatedEarly {
				res.Stats.TerminatedEarly++
			}
			res.Stats.ReportingShards++
		}
		for _, n := range r.resp.Neighbors {
			if h.Accepts(n.Dist) {
				h.Push(n.ID, n.Dist)
			}
		}
	}
	for _, it := range h.Sorted() {
		res.Neighbors = append(res.Neighbors, Neighbor{ID: it.ID, Dist: it.Dist})
	}
	if len(res.FailedShards) > 0 {
		res.Partial = true
		rt.metPartial.Inc()
	}
	return res, nil
}

// Insert routes v to the shard owning its home leaf (round-robin by
// global id under a scatter map), allocating the next cluster-global id.
// It returns the assigned id and the shard that stored the vector.
func (rt *Router) Insert(ctx context.Context, v []float32) (gid, shard int, err error) {
	if dim := rt.m.Dim(); dim != 0 && len(v) != dim {
		return 0, 0, fmt.Errorf("%w: vector has dim %d, shard map wants %d", ErrBadQuery, len(v), dim)
	}
	gid, err = rt.allocGID(ctx)
	if err != nil {
		return 0, 0, err
	}
	shard = rt.m.ShardOf(v)
	if shard < 0 {
		shard = gid % len(rt.clients)
	}
	var resp struct {
		ID int `json:"id"`
	}
	err = rt.clients[shard].primary(ctx, "/insert", shardInsertRequest{Vector: v, ID: &gid}, &resp)
	if err != nil {
		return 0, shard, err
	}
	return resp.ID, shard, nil
}

// DeleteResult reports a cluster delete: whether any shard held (and
// tombstoned) the id, and the shards that could not be asked.
type DeleteResult struct {
	Deleted      bool  `json:"deleted"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

// Delete broadcasts the delete to every shard primary — the router does
// not track which shard holds a global id, and exactly one shard will
// answer true.
func (rt *Router) Delete(ctx context.Context, gid int) DeleteResult {
	type reply struct {
		deleted bool
		err     error
	}
	replies := make([]reply, len(rt.clients))
	var wg sync.WaitGroup
	for i := range rt.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp struct {
				Deleted bool `json:"deleted"`
			}
			err := rt.clients[i].primary(ctx, "/delete", map[string]int{"id": gid}, &resp)
			replies[i] = reply{deleted: resp.Deleted, err: err}
		}(i)
	}
	wg.Wait()
	var out DeleteResult
	for i, r := range replies {
		if r.err != nil {
			out.FailedShards = append(out.FailedShards, i)
			continue
		}
		out.Deleted = out.Deleted || r.deleted
	}
	return out
}

// allocGID returns the next cluster-global id, seeding the allocator on
// first use from every shard's reported max_global_id. Allocation fails
// when a shard cannot be asked during seeding — handing out a possibly
// colliding id would corrupt the cluster's id space.
func (rt *Router) allocGID(ctx context.Context) (int, error) {
	rt.gidMu.Lock()
	defer rt.gidMu.Unlock()
	if !rt.gidInit {
		maxGID := -1
		for _, c := range rt.clients {
			var info struct {
				MaxGlobalID int `json:"max_global_id"`
			}
			if err := c.primaryGet(ctx, "/shard/info", &info); err != nil {
				return 0, fmt.Errorf("router: seeding id allocator from shard %d: %w", c.id, err)
			}
			if info.MaxGlobalID > maxGID {
				maxGID = info.MaxGlobalID
			}
		}
		rt.nextGID = maxGID + 1
		rt.gidInit = true
	}
	gid := rt.nextGID
	rt.nextGID++
	return gid, nil
}

// Map returns the routing map (read-only).
func (rt *Router) Map() *ShardMap { return rt.m }

// Spill returns the default per-query leaf probe budget.
func (rt *Router) Spill() int { return rt.spill }
