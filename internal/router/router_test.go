package router_test

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/metrics"
	"bilsh/internal/router"
	"bilsh/internal/server"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// hugeW makes every projection decode to the zero lattice point, so each
// level-2 lookup degenerates to an exact scan of its partition. That
// turns "router over shards equals monolithic index" into an exact
// byte-for-byte claim instead of a statistical one: both sides scan the
// same rows, so the top-k lists must match, not just overlap.
const hugeW = 1e9

func testData(t *testing.T, n, d int) *vec.Matrix {
	t.Helper()
	spec := dataset.ClusteredSpec{N: n, D: d, Clusters: 4, IntrinsicDim: 3,
		Aspect: 3, NoiseSigma: 0.05, Spread: 8, PowerLaw: 0.3, ScaleSpread: 2}
	data, _, err := dataset.Clustered(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// cluster is a monolithic index plus an equivalent set of shard servers
// and a router over them.
type cluster struct {
	mono    *core.Index
	rt      *router.Router
	reg     *metrics.Registry
	servers []*httptest.Server
	shards  int
}

// leafCluster builds the leaf-aware equivalence setup: a bi-level
// monolithic index (one leaf per shard, single probe) and one
// PartitionNone shard per leaf holding exactly that leaf's rows under
// their monolithic (global) ids.
func leafCluster(t *testing.T, train *vec.Matrix, mutable bool, opt func(*router.Options)) *cluster {
	t.Helper()
	mono, err := core.Build(train, core.Options{
		Partitioner: core.PartitionRPTree, Groups: 4, AutoTuneW: false,
		ProbeMode: core.ProbeSingle,
		Params:    lshfunc.Params{M: 4, L: 1, W: hugeW},
	}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	md := mono.Describe()
	S := md.Groups
	identity := make([]int, S)
	for i := range identity {
		identity[i] = i
	}
	smap, err := router.NewShardMap(mono.Tree(), identity, S)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{mono: mono, reg: metrics.NewRegistry(), shards: S}
	sets := make([]router.ShardSet, S)
	for s := 0; s < S; s++ {
		gids := mono.GroupMembers(s)
		sort.Ints(gids)
		if len(gids) == 0 {
			t.Fatalf("leaf %d is empty; pick a bigger dataset", s)
		}
		six, err := core.Build(train.Subset(gids), core.Options{
			Partitioner: core.PartitionNone, AutoTuneW: false,
			Params: lshfunc.Params{M: 4, L: 1, W: hugeW},
		}, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		locals := make([]int, len(gids))
		for i := range locals {
			locals[i] = i
		}
		im, err := server.NewIDMap(locals, gids)
		if err != nil {
			t.Fatal(err)
		}
		api := server.New(six, mutable)
		api.SetShardID(s)
		api.SetIDMap(im)
		api.SetRegistry(metrics.NewRegistry())
		srv := httptest.NewServer(api.Handler())
		t.Cleanup(srv.Close)
		c.servers = append(c.servers, srv)
		sets[s] = router.ShardSet{Addrs: []string{srv.URL}}
	}
	o := router.Options{Map: smap, Shards: sets, Spill: 1, Registry: c.reg}
	if opt != nil {
		opt(&o)
	}
	c.rt, err = router.New(o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// scatterCluster splits a PartitionNone monolithic index round-robin
// across two shards under a scatter map.
func scatterCluster(t *testing.T, train *vec.Matrix, shards int) *cluster {
	t.Helper()
	opts := core.Options{
		Partitioner: core.PartitionNone, AutoTuneW: false,
		Params: lshfunc.Params{M: 4, L: 1, W: hugeW},
	}
	mono, err := core.Build(train, opts, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	smap, err := router.ScatterMap(shards)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{mono: mono, reg: metrics.NewRegistry(), shards: shards}
	sets := make([]router.ShardSet, shards)
	for s := 0; s < shards; s++ {
		var gids []int
		for id := 0; id < train.N; id++ {
			if id%shards == s {
				gids = append(gids, id)
			}
		}
		six, err := core.Build(train.Subset(gids), opts, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		locals := make([]int, len(gids))
		for i := range locals {
			locals[i] = i
		}
		im, err := server.NewIDMap(locals, gids)
		if err != nil {
			t.Fatal(err)
		}
		api := server.New(six, false)
		api.SetShardID(s)
		api.SetIDMap(im)
		api.SetRegistry(metrics.NewRegistry())
		srv := httptest.NewServer(api.Handler())
		t.Cleanup(srv.Close)
		c.servers = append(c.servers, srv)
		sets[s] = router.ShardSet{Addrs: []string{srv.URL}}
	}
	c.rt, err = router.New(router.Options{Map: smap, Shards: sets, Registry: c.reg})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// assertSameResult fails unless the router result matches the monolithic
// one: same ids in the same order, same distances. Distances pass
// through JSON, which Go round-trips exactly for float64, so no epsilon.
func assertSameResult(t *testing.T, qi int, want knn.Result, got *router.Result) {
	t.Helper()
	if got.Partial {
		t.Fatalf("query %d: unexpected partial result (failed shards %v)", qi, got.FailedShards)
	}
	if len(got.Neighbors) != len(want.IDs) {
		t.Fatalf("query %d: router returned %d neighbors, monolithic %d", qi, len(got.Neighbors), len(want.IDs))
	}
	for j, nb := range got.Neighbors {
		if nb.ID != want.IDs[j] {
			t.Fatalf("query %d rank %d: router id %d, monolithic id %d\nrouter: %v\nmono ids: %v",
				qi, j, nb.ID, want.IDs[j], got.Neighbors, want.IDs)
		}
		if math.Abs(nb.Dist-want.Dists[j]) > 1e-9*(1+math.Abs(want.Dists[j])) {
			t.Fatalf("query %d rank %d: router dist %v, monolithic dist %v", qi, j, nb.Dist, want.Dists[j])
		}
	}
}

func histogram(t *testing.T, reg *metrics.Registry, name string) (count int64, sum float64) {
	t.Helper()
	for _, p := range reg.Snapshot() {
		if p.Name == name && p.Count != nil {
			return *p.Count, *p.Sum
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0, 0
}

func counter(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	total := 0.0
	found := false
	for _, p := range reg.Snapshot() {
		if p.Name == name && p.Value != nil {
			total += *p.Value
			found = true
		}
	}
	if !found {
		t.Fatalf("metric %s not found", name)
	}
	return total
}

// TestRouterMatchesMonolithicLeafAware is the core equivalence claim of
// the sharded tier: a router over one-leaf-per-shard servers answers
// exactly what the monolithic bi-level index answers, while contacting
// only the query's home-leaf shard.
func TestRouterMatchesMonolithicLeafAware(t *testing.T) {
	data := testData(t, 440, 8)
	train, queries := dataset.Split(data, 40, xrand.New(9))
	c := leafCluster(t, train, false, nil)
	ctx := context.Background()
	const k = 10
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		want, _ := c.mono.Query(q, k)
		got, err := c.rt.Query(ctx, q, k, 1)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.ShardsContacted != 1 {
			t.Fatalf("query %d: contacted %d shards, want 1 (single-probe home leaf)", i, got.ShardsContacted)
		}
		assertSameResult(t, i, want, got)
	}
	// The fan-out histogram is the proof that leaf-aware routing beats
	// full scatter: every query cost 1 shard, scatter would cost all.
	count, sum := histogram(t, c.reg, "bilsh_router_fanout_shards")
	if count != int64(queries.N) {
		t.Fatalf("fanout metric counted %d queries, want %d", count, queries.N)
	}
	if scatter := float64(queries.N * c.shards); sum >= scatter {
		t.Fatalf("fanout sum %v not below full scatter %v", sum, scatter)
	}
}

// TestRouterOverlayLifecycle drives inserts and deletes through the
// router and the monolithic index in lockstep and checks they stay
// equivalent: global id assignment matches, and queries agree after both
// mutations.
func TestRouterOverlayLifecycle(t *testing.T) {
	data := testData(t, 460, 8)
	train, rest := dataset.Split(data, 60, xrand.New(9))
	queries, extra := dataset.Split(rest, 20, xrand.New(10))
	c := leafCluster(t, train, true, nil)
	ctx := context.Background()
	const k = 10

	var gids []int
	for i := 0; i < extra.N; i++ {
		v := extra.Row(i)
		gid, _, err := c.rt.Insert(ctx, v)
		if err != nil {
			t.Fatalf("router insert %d: %v", i, err)
		}
		monoID, err := c.mono.Insert(v)
		if err != nil {
			t.Fatalf("monolithic insert %d: %v", i, err)
		}
		if gid != monoID {
			t.Fatalf("insert %d: router assigned gid %d, monolithic %d", i, gid, monoID)
		}
		gids = append(gids, gid)
	}
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		want, _ := c.mono.Query(q, k)
		got, err := c.rt.Query(ctx, q, k, 1)
		if err != nil {
			t.Fatalf("post-insert query %d: %v", i, err)
		}
		assertSameResult(t, i, want, got)
	}

	// Delete half of the inserts (broadcast on the router side) and one
	// base row, then re-check.
	for _, gid := range append(gids[:len(gids)/2], 0) {
		res := c.rt.Delete(ctx, gid)
		if len(res.FailedShards) > 0 {
			t.Fatalf("delete %d: failed shards %v", gid, res.FailedShards)
		}
		if !res.Deleted {
			t.Fatalf("delete %d: no shard held it", gid)
		}
		if !c.mono.Delete(gid) {
			t.Fatalf("monolithic delete %d: not found", gid)
		}
	}
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		want, _ := c.mono.Query(q, k)
		got, err := c.rt.Query(ctx, q, k, 1)
		if err != nil {
			t.Fatalf("post-delete query %d: %v", i, err)
		}
		assertSameResult(t, i, want, got)
	}
}

// TestRouterMatchesMonolithicScatter is the tree-less flavor: a
// PartitionNone index split round-robin, full scatter on every query.
func TestRouterMatchesMonolithicScatter(t *testing.T) {
	data := testData(t, 330, 8)
	train, queries := dataset.Split(data, 30, xrand.New(9))
	c := scatterCluster(t, train, 2)
	ctx := context.Background()
	const k = 10
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		want, _ := c.mono.Query(q, k)
		got, err := c.rt.Query(ctx, q, k, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.ShardsContacted != c.shards {
			t.Fatalf("query %d: contacted %d shards, scatter should contact all %d", i, got.ShardsContacted, c.shards)
		}
		assertSameResult(t, i, want, got)
	}
}

// TestRouterPartialResults kills one shard of a scatter cluster and
// checks the router degrades instead of failing: the reply is flagged
// partial, names the dead shard, and carries the live shard's neighbors
// (round-robin placement ⇒ only even global ids survive).
func TestRouterPartialResults(t *testing.T) {
	data := testData(t, 220, 8)
	train, queries := dataset.Split(data, 20, xrand.New(9))
	c := scatterCluster(t, train, 2)
	c.servers[1].Close()
	ctx := context.Background()
	for i := 0; i < queries.N; i++ {
		got, err := c.rt.Query(ctx, queries.Row(i), 5, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !got.Partial {
			t.Fatalf("query %d: shard 1 is dead but result is not partial", i)
		}
		if len(got.FailedShards) != 1 || got.FailedShards[0] != 1 {
			t.Fatalf("query %d: failed shards %v, want [1]", i, got.FailedShards)
		}
		if len(got.Neighbors) == 0 {
			t.Fatalf("query %d: no neighbors from the surviving shard", i)
		}
		for _, nb := range got.Neighbors {
			if nb.ID%2 != 0 {
				t.Fatalf("query %d: id %d came from dead shard 1 (odd ids live there)", i, nb.ID)
			}
		}
	}
	if got := counter(t, c.reg, "bilsh_router_partial_results_total"); got != float64(queries.N) {
		t.Fatalf("partial counter %v, want %d", got, queries.N)
	}
}

// TestRouterHedging puts two slow replicas behind one shard and checks
// the hedge timer launches a duplicate attempt.
func TestRouterHedging(t *testing.T) {
	data := testData(t, 120, 8)
	train, queries := dataset.Split(data, 10, xrand.New(9))
	six, err := core.Build(train, core.Options{
		Partitioner: core.PartitionNone, AutoTuneW: false,
		Params: lshfunc.Params{M: 4, L: 1, W: hugeW},
	}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	api := server.New(six, false)
	api.SetRegistry(metrics.NewRegistry())
	slow := func() *httptest.Server {
		h := api.Handler()
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(60 * time.Millisecond)
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		return srv
	}
	reg := metrics.NewRegistry()
	smap, err := router.ScatterMap(1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.New(router.Options{
		Map:        smap,
		Shards:     []router.ShardSet{{Addrs: []string{slow().URL, slow().URL}}},
		HedgeDelay: 5 * time.Millisecond,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.Query(context.Background(), queries.Row(0), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial || len(got.Neighbors) == 0 {
		t.Fatalf("hedged query failed: %+v", got)
	}
	if hedges := counter(t, reg, "bilsh_router_hedges_total"); hedges < 1 {
		t.Fatalf("hedge counter %v, want >= 1 (both replicas sleep past the hedge delay)", hedges)
	}
}

// TestRouterHealthDetectsMisconfiguredShard swaps two shard ids and
// checks the health prober pins both addresses as misconfigured rather
// than merging the wrong shards' results.
func TestRouterHealthDetectsMisconfiguredShard(t *testing.T) {
	data := testData(t, 120, 8)
	train, _ := dataset.Split(data, 10, xrand.New(9))
	sets := make([]router.ShardSet, 2)
	for s := 0; s < 2; s++ {
		six, err := core.Build(train, core.Options{
			Partitioner: core.PartitionNone, AutoTuneW: false,
			Params: lshfunc.Params{M: 4, L: 1, W: hugeW},
		}, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		api := server.New(six, false)
		api.SetShardID(1 - s) // swapped on purpose
		api.SetRegistry(metrics.NewRegistry())
		srv := httptest.NewServer(api.Handler())
		t.Cleanup(srv.Close)
		sets[s] = router.ShardSet{Addrs: []string{srv.URL}}
	}
	smap, err := router.ScatterMap(2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.New(router.Options{
		Map: smap, Shards: sets,
		HealthInterval: 50 * time.Millisecond,
		Registry:       metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)
	defer rt.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		bad := 0
		for _, h := range rt.Health() {
			if h.Misconfigured {
				bad++
			}
		}
		if bad == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never flagged the swapped shard ids: %+v", rt.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
