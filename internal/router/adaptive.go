package router

import (
	"context"
	"log"
	"time"

	"bilsh/internal/httpx"
	"bilsh/internal/tuner"
)

// The adaptive side of the router: a default wire plan forwarded to
// shards for requests without overrides, re-tuned online from the
// per-shard shortlist sizes the router observes in every reply. Unlike
// the single-node server the router does not know the shards' built
// parameters (L, TuneTargetRecall) — and in a mixed cluster there is no
// single answer — so its recommendations carry TargetRecall and
// MaxCandidates only, and each shard resolves the recall target into a
// table budget against its own index. See docs/adaptive.md.

// DefaultPlan returns the router's current default plan (zero when none
// was set).
func (rt *Router) DefaultPlan() httpx.QueryPlan {
	if dp := rt.defaultPlan.Load(); dp != nil {
		return *dp
	}
	return httpx.QueryPlan{}
}

// SetDefaultPlan atomically replaces the default plan forwarded to shards
// for requests without their own overrides. Safe to call while queries
// are in flight.
func (rt *Router) SetDefaultPlan(p httpx.QueryPlan) { rt.defaultPlan.Store(&p) }

// planFor merges one request's plan over the router default: request
// fields win, unset fields fall through to the default plan.
func (rt *Router) planFor(p httpx.QueryPlan) httpx.QueryPlan {
	d := rt.DefaultPlan()
	if p.TargetRecall > 0 {
		d.TargetRecall = p.TargetRecall
	}
	if p.Probes > 0 {
		d.Probes = p.Probes
	}
	if p.Tables > 0 {
		d.Tables = p.Tables
	}
	if p.HierMinCandidates > 0 {
		d.HierMinCandidates = p.HierMinCandidates
	}
	if p.RerankFactor > 0 {
		d.RerankFactor = p.RerankFactor
	}
	if p.StableProbes > 0 {
		d.StableProbes = p.StableProbes
	}
	if p.MaxCandidates > 0 {
		d.MaxCandidates = p.MaxCandidates
	}
	return d
}

// AdaptiveConfig configures the router's online re-tuning loop.
type AdaptiveConfig struct {
	// TargetRecall is the recall SLO forwarded in the re-tuned default
	// plan (default 0.9); shards resolve it into table budgets locally.
	TargetRecall float64
	// Interval is the re-tune period (default 10s).
	Interval time.Duration
	// MinSamples gates each re-tune on a minimum number of observed
	// shard replies (default 64).
	MinSamples int64
	// Headroom multiplies the observed mean per-shard shortlist size into
	// the forwarded MaxCandidates cap (default 3).
	Headroom float64
	// Log, when set, logs each applied budget.
	Log *log.Logger
}

// StartAdaptive launches the online tuning loop: a tuner.Online watching
// the router's per-shard candidates histogram re-tunes the default
// forwarded plan every Interval until ctx is done. MaxCandidates is a
// per-shard cap (the histogram observes per-shard shortlist sizes, so the
// mean is per-shard collision mass). Returns immediately.
func (rt *Router) StartAdaptive(ctx context.Context, cfg AdaptiveConfig) {
	if cfg.TargetRecall <= 0 || cfg.TargetRecall >= 1 {
		cfg.TargetRecall = 0.9
	}
	on := tuner.NewOnline(tuner.OnlineConfig{
		Candidates:   rt.metCandidates,
		TargetRecall: cfg.TargetRecall,
		// BuiltRecall/Tables stay zero: shards resolve the table budget.
		MinSamples: cfg.MinSamples,
		Headroom:   cfg.Headroom,
		Interval:   cfg.Interval,
	})
	go on.Run(ctx, func(b tuner.Budget) {
		rt.SetDefaultPlan(httpx.QueryPlan{
			TargetRecall:  b.TargetRecall,
			MaxCandidates: b.MaxCandidates,
		})
		if cfg.Log != nil {
			cfg.Log.Printf("adaptive: re-tuned forwarded plan: target_recall=%.3f max_candidates=%d (mean per-shard candidates %.1f over %d replies)",
				b.TargetRecall, b.MaxCandidates, b.MeanCandidates, b.Samples)
		}
	})
}
