package router_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"bilsh/internal/dataset"
	"bilsh/internal/router"
	"bilsh/internal/rptree"
	"bilsh/internal/xrand"
)

func testTree(t *testing.T, leaves int) *rptree.Tree {
	t.Helper()
	data, _, err := dataset.Clustered(dataset.ClusteredSpec{N: 300, D: 8, Clusters: 4,
		IntrinsicDim: 3, Aspect: 3, NoiseSigma: 0.05, Spread: 8, PowerLaw: 0.3, ScaleSpread: 2},
		xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := rptree.Build(data, rptree.Options{Leaves: leaves}, xrand.New(6))
	return tree
}

func TestAssignLeavesBalances(t *testing.T) {
	sizes := []int{100, 90, 10, 10, 5, 5}
	out := router.AssignLeaves(sizes, 2)
	if len(out) != len(sizes) {
		t.Fatalf("assignment covers %d leaves, want %d", len(out), len(sizes))
	}
	load := make([]int, 2)
	for leaf, s := range out {
		if s < 0 || s > 1 {
			t.Fatalf("leaf %d assigned to shard %d", leaf, s)
		}
		load[s] += sizes[leaf]
	}
	// LPT on this instance is exact: {100, 10} vs {90, 10, 5, 5}.
	if load[0] != 110 || load[1] != 110 {
		t.Fatalf("loads %v, want [110 110]", load)
	}
}

func TestShardMapValidation(t *testing.T) {
	tree := testTree(t, 4)
	n := tree.NumLeaves()
	if _, err := router.NewShardMap(tree, make([]int, n-1), 2); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := make([]int, n)
	bad[0] = 5
	if _, err := router.NewShardMap(tree, bad, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := router.ScatterMap(0); err == nil {
		t.Fatal("zero-shard scatter map accepted")
	}
}

func TestShardsForDedupsAndOrders(t *testing.T) {
	tree := testTree(t, 6)
	n := tree.NumLeaves()
	// All leaves on one shard: any spill still contacts exactly it.
	m, err := router.NewShardMap(tree, make([]int, n), 1)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float32, tree.Dim())
	if got := m.ShardsFor(v, n); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ShardsFor = %v, want [0]", got)
	}
	// One shard per leaf: the first shard returned is the home leaf's.
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	m, err = router.NewShardMap(tree, ident, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ShardsFor(v, 3); len(got) == 0 || got[0] != m.ShardOf(v) {
		t.Fatalf("ShardsFor = %v, home shard %d must come first", got, m.ShardOf(v))
	}
	// Scatter map: every shard, every time.
	sm, err := router.ScatterMap(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := sm.ShardsFor(v, 1); len(got) != 3 {
		t.Fatalf("scatter ShardsFor = %v, want all 3 shards", got)
	}
	if sm.ShardOf(v) != -1 {
		t.Fatalf("scatter ShardOf = %d, want -1", sm.ShardOf(v))
	}
}

func TestShardMapRoundTrip(t *testing.T) {
	tree := testTree(t, 5)
	n := tree.NumLeaves()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % 3
	}
	m, err := router.NewShardMap(tree, assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := router.ReadShardMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != 3 || got.NumLeaves() != n || !got.LeafAware() {
		t.Fatalf("round trip lost shape: shards=%d leaves=%d aware=%v",
			got.NumShards(), got.NumLeaves(), got.LeafAware())
	}
	// Routing must survive serialization bit-for-bit.
	probe := make([]float32, tree.Dim())
	for trial := 0; trial < 50; trial++ {
		rng := xrand.New(int64(trial))
		for j := range probe {
			probe[j] = float32(rng.NormFloat64())
		}
		if a, b := m.ShardOf(probe), got.ShardOf(probe); a != b {
			t.Fatalf("trial %d: ShardOf diverged after round trip: %d vs %d", trial, a, b)
		}
	}

	// File round trip, including the scatter flavor.
	dir := t.TempDir()
	path := filepath.Join(dir, "shardmap.bin")
	if err := router.SaveShardMap(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := router.LoadShardMap(path); err != nil {
		t.Fatal(err)
	}
	sm, err := router.ScatterMap(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SaveShardMap(path, sm); err != nil {
		t.Fatal(err)
	}
	back, err := router.LoadShardMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.LeafAware() || back.NumShards() != 4 {
		t.Fatalf("scatter map round trip: aware=%v shards=%d", back.LeafAware(), back.NumShards())
	}
}
