// Package router implements the cluster tier of bilsh: a scatter-gather
// front end that fans a query out to the shards that can hold its
// neighbors, merges the per-shard shortlists into one top-k, hedges slow
// shard requests for tail-latency control, and fails partially instead
// of completely when shards are down.
//
// The routing insight is the paper's own: level 1 of Bi-level LSH is a
// data partitioner (the RP-tree of Section IV-A), so the tree that routes
// a query to its level-1 cell on one machine routes it to the machines
// owning those cells in a cluster. A ShardMap is exactly that tree plus a
// leaf→shard assignment; a query contacts only the shards owning the
// leaves its probe set touches (Tree.LeafProbes — the home leaf plus
// optional low-margin spill leaves), and degenerates to full scatter when
// the cluster was split without a tree (PartitionNone). docs/sharding.md
// is the operator-facing description.
package router

import (
	"fmt"
	"io"
	"os"

	"bilsh/internal/durable"
	"bilsh/internal/rptree"
	"bilsh/internal/wire"
)

const shardMapMagic = "bilsh.ShardMap/1"

// ShardMap assigns every level-1 leaf to a shard. The zero leaf count
// (tree == nil) is the scatter map: every query fans out to all shards.
type ShardMap struct {
	tree        *rptree.Tree
	leafToShard []int
	shards      int
}

// NewShardMap pairs a level-1 tree with a leaf→shard assignment.
func NewShardMap(tree *rptree.Tree, leafToShard []int, shards int) (*ShardMap, error) {
	if shards < 1 {
		return nil, fmt.Errorf("router: shard map needs >= 1 shard, got %d", shards)
	}
	if tree == nil {
		return nil, fmt.Errorf("router: shard map needs a tree (use ScatterMap for tree-less clusters)")
	}
	if len(leafToShard) != tree.NumLeaves() {
		return nil, fmt.Errorf("router: assignment covers %d leaves, tree has %d",
			len(leafToShard), tree.NumLeaves())
	}
	for leaf, s := range leafToShard {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("router: leaf %d assigned to shard %d, want [0,%d)", leaf, s, shards)
		}
	}
	return &ShardMap{tree: tree, leafToShard: append([]int(nil), leafToShard...), shards: shards}, nil
}

// ScatterMap is the tree-less map: every query contacts every shard. It
// is what a cluster split from a PartitionNone index uses.
func ScatterMap(shards int) (*ShardMap, error) {
	if shards < 1 {
		return nil, fmt.Errorf("router: shard map needs >= 1 shard, got %d", shards)
	}
	return &ShardMap{shards: shards}, nil
}

// AssignLeaves balances leaves across shards greedily: leaves in
// descending size order, each to the currently lightest shard — the
// classic LPT bound keeps the heaviest shard within 4/3 of optimal, ample
// for leaf counts a small multiple of the shard count.
func AssignLeaves(sizes []int, shards int) []int {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	// Descending by size; stable on ties via leaf id for determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if sizes[a] > sizes[b] || (sizes[a] == sizes[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	load := make([]int, shards)
	out := make([]int, len(sizes))
	for _, leaf := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		out[leaf] = best
		load[best] += sizes[leaf]
	}
	return out
}

// NumShards returns the shard count.
func (m *ShardMap) NumShards() int { return m.shards }

// NumLeaves returns the leaf count, 0 for the scatter map.
func (m *ShardMap) NumLeaves() int {
	if m.tree == nil {
		return 0
	}
	return m.tree.NumLeaves()
}

// Dim returns the expected query dimensionality, 0 for the scatter map
// (which accepts any).
func (m *ShardMap) Dim() int {
	if m.tree == nil {
		return 0
	}
	return m.tree.Dim()
}

// LeafAware reports whether queries route by leaf (false = full scatter).
func (m *ShardMap) LeafAware() bool { return m.tree != nil }

// ShardOf routes v to the shard owning its home leaf — where an insert
// belongs. The scatter map has no opinion and returns -1.
func (m *ShardMap) ShardOf(v []float32) int {
	if m.tree == nil {
		return -1
	}
	return m.leafToShard[m.tree.Leaf(v)]
}

// ShardsFor returns the distinct shards owning the (up to) spill leaves
// v probes, in probe order — the home leaf's shard first. The scatter
// map returns every shard.
func (m *ShardMap) ShardsFor(v []float32, spill int) []int {
	if m.tree == nil {
		all := make([]int, m.shards)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if spill < 1 {
		spill = 1
	}
	leaves := m.tree.LeafProbes(v, spill)
	out := make([]int, 0, len(leaves))
	for _, leaf := range leaves {
		s := m.leafToShard[leaf]
		seen := false
		for _, prev := range out {
			if prev == s {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, s)
		}
	}
	return out
}

// WriteTo serializes the map.
func (m *ShardMap) WriteTo(w io.Writer) (int64, error) {
	ww := wire.NewWriter(w)
	ww.Magic(shardMapMagic)
	ww.Int(m.shards)
	ww.Ints(m.leafToShard)
	ww.Bool(m.tree != nil)
	if m.tree != nil {
		m.tree.Encode(ww)
	}
	if err := ww.Flush(); err != nil {
		return ww.BytesWritten(), err
	}
	return ww.BytesWritten(), ww.Err()
}

// ReadShardMap deserializes a map written by WriteTo.
func ReadShardMap(r io.Reader) (*ShardMap, error) {
	rr := wire.NewReader(r)
	rr.ExpectMagic(shardMapMagic)
	shards := rr.Int()
	leafToShard := rr.Ints()
	hasTree := rr.Bool()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("router: reading shard map: %w", err)
	}
	if !hasTree {
		if len(leafToShard) != 0 {
			return nil, fmt.Errorf("router: scatter map carries %d leaf assignments", len(leafToShard))
		}
		return ScatterMap(shards)
	}
	tree, err := rptree.DecodeTree(rr)
	if err != nil {
		return nil, fmt.Errorf("router: reading shard map tree: %w", err)
	}
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("router: reading shard map: %w", err)
	}
	return NewShardMap(tree, leafToShard, shards)
}

// SaveShardMap atomically writes the map to path.
func SaveShardMap(path string, m *ShardMap) error {
	return durable.AtomicWrite(path, func(f *os.File) error {
		_, err := m.WriteTo(f)
		return err
	})
}

// LoadShardMap reads a map from path.
func LoadShardMap(path string) (*ShardMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadShardMap(f)
}
