package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must reproduce the same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children with different labels from identically-seeded parents must
	// themselves be reproducible and distinct from each other.
	p1 := New(7)
	p2 := New(7)
	c1 := p1.Split(1)
	c2 := p2.Split(1)
	for i := 0; i < 50; i++ {
		if c1.Int63() != c2.Int63() {
			t.Fatal("Split with same label must be reproducible")
		}
	}
	d1 := New(7).Split(1)
	d2 := New(7).Split(2)
	same := true
	for i := 0; i < 10; i++ {
		if d1.Int63() != d2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Split with different labels produced identical streams")
	}
}

func TestGaussianVecMoments(t *testing.T) {
	g := New(1)
	const d = 20000
	v := g.GaussianVec(d)
	var sum, ss float64
	for _, x := range v {
		sum += float64(x)
		ss += float64(x) * float64(x)
	}
	mean := sum / d
	variance := ss/d - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("gaussian variance = %v, want ~1", variance)
	}
}

func TestUnitVecIsUnit(t *testing.T) {
	g := New(2)
	for i := 0; i < 20; i++ {
		v := g.UnitVec(1 + g.Intn(64))
		var n float64
		for _, x := range v {
			n += float64(x) * float64(x)
		}
		if math.Abs(n-1) > 1e-5 {
			t.Fatalf("unit vector norm^2 = %v", n)
		}
	}
}

func TestSampleDistinctAndInRange(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		n := 1 + g.Intn(200)
		k := g.Intn(n + 10) // occasionally k > n
		s := g.Sample(n, k)
		want := k
		if k > n {
			want = n
		}
		if len(s) != want {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, i := range s {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleUniformity(t *testing.T) {
	// Each index should appear with roughly equal frequency.
	g := New(9)
	const n, k, trials = 10, 3, 20000
	counts := make([]int, n)
	for t := 0; t < trials; t++ {
		for _, i := range g.Sample(n, k) {
			counts[i]++
		}
	}
	expected := float64(trials*k) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 0.1*expected {
			t.Fatalf("index %d drawn %d times, want ~%.0f", i, c, expected)
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := New(3)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(2, 5)
		if x < 2 || x >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", x)
		}
	}
}
