// Package xrand provides the deterministic, splittable random sources used
// throughout the reproduction.
//
// Every randomized component (projection directions, hash offsets, dataset
// generation, query sampling) takes an *RNG so whole experiments replay
// bit-identically from a single seed, which is what lets the harness
// measure the projection-induced variance (the paper's r1) by re-running
// with controlled seeds.
package xrand

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with splitting and vector-sampling helpers.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. The child's seed mixes the
// parent stream and the label so distinct labels give distinct streams and
// the derivation is reproducible.
func (g *RNG) Split(label int64) *RNG {
	base := g.r.Int63()
	return New(mix(base, label))
}

// mix combines two 64-bit values with a splitmix64-style finalizer.
func mix(a, b int64) int64 {
	z := uint64(a) + 0x9e3779b97f4a7c15*uint64(b+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard Gaussian sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomly permutes n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Uniform returns a uniform sample in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// GaussianVec fills a fresh length-d vector with i.i.d. N(0,1) samples —
// the entries of the paper's p-stable projection directions a_i (Eq. 2).
func (g *RNG) GaussianVec(d int) []float32 {
	v := make([]float32, d)
	for i := range v {
		v[i] = float32(g.r.NormFloat64())
	}
	return v
}

// UnitVec returns a uniformly random direction on the d-sphere, used by the
// RP-tree split rule. Falls back to e_0 in the (measure-zero) case of an
// all-zero Gaussian draw.
func (g *RNG) UnitVec(d int) []float32 {
	v := g.GaussianVec(d)
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	if n == 0 {
		v[0] = 1
		return v
	}
	inv := 1 / math.Sqrt(n)
	for i := range v {
		v[i] = float32(float64(v[i]) * inv)
	}
	return v
}

// Sample returns k distinct indices drawn uniformly from [0,n), shuffled.
// If k >= n it returns a permutation of all n indices. It uses Floyd's
// algorithm so the cost is O(k) regardless of n.
func (g *RNG) Sample(n, k int) []int {
	if k >= n {
		return g.Perm(n)
	}
	set := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for i := n - k; i < n; i++ {
		j := g.Intn(i + 1)
		if _, dup := set[j]; dup {
			j = i
		}
		set[j] = struct{}{}
		out = append(out, j)
	}
	g.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}
