package multiprobe

import (
	"math"
	"testing"
	"testing/quick"

	"bilsh/internal/lattice"
	"bilsh/internal/xrand"
)

func randomY(rng *xrand.RNG, m int, scale float64) []float64 {
	y := make([]float64, m)
	for i := range y {
		y[i] = rng.NormFloat64() * scale
	}
	return y
}

// probeScore recomputes the Lv et al. score of a probe code: the sum of
// squared boundary distances over the perturbed dimensions.
func probeScore(home []int32, y []float64, probe []int32) float64 {
	var s float64
	for i := range home {
		d := probe[i] - home[i]
		frac := y[i] - float64(home[i])
		switch d {
		case 0:
		case -1:
			s += frac * frac
		case 1:
			s += (1 - frac) * (1 - frac)
		default:
			return math.Inf(1) // outside the ±1 perturbation model
		}
	}
	return s
}

func TestZMProbesBasics(t *testing.T) {
	z := lattice.NewZM(8)
	rng := xrand.New(1)
	y := randomY(rng, 8, 3)
	probes := ZMProbes(z, y, 50)
	if len(probes) != 50 {
		t.Fatalf("got %d probes, want 50", len(probes))
	}
	home := z.Decode(y)
	for i, h := range home {
		if probes[0][i] != h {
			t.Fatal("first probe must be the home bucket")
		}
	}
	seen := map[string]bool{}
	for _, p := range probes {
		k := lattice.Key(p)
		if seen[k] {
			t.Fatalf("duplicate probe %v", p)
		}
		seen[k] = true
	}
}

// Property: the probe sequence is emitted in non-decreasing score order —
// the defining guarantee of the heap-based generation.
func TestZMProbeOrderMonotone(t *testing.T) {
	z := lattice.NewZM(6)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		y := randomY(rng, 6, 4)
		probes := ZMProbes(z, y, 40)
		home := probes[0]
		prev := -1.0
		for _, p := range probes[1:] {
			s := probeScore(home, y, p)
			if math.IsInf(s, 1) {
				return false
			}
			if s < prev-1e-12 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZMSecondProbeIsCheapestFlip(t *testing.T) {
	z := lattice.NewZM(4)
	// y chosen so dimension 2's lower wall is closest (frac 0.05).
	y := []float64{0.5, 0.4, 0.05, 0.7}
	probes := ZMProbes(z, y, 2)
	want := z.Decode(y)
	want[2]--
	for i := range want {
		if probes[1][i] != want[i] {
			t.Fatalf("second probe = %v, want %v", probes[1], want)
		}
	}
}

func TestZMProbesNeverDoublePerturbOneDim(t *testing.T) {
	z := lattice.NewZM(3)
	rng := xrand.New(5)
	y := randomY(rng, 3, 2)
	probes := ZMProbes(z, y, 100)
	home := probes[0]
	for _, p := range probes {
		for i := range p {
			d := p[i] - home[i]
			if d < -1 || d > 1 {
				t.Fatalf("probe %v perturbs dim %d by %d", p, i, d)
			}
		}
	}
}

func TestZMProbesEdgeCounts(t *testing.T) {
	z := lattice.NewZM(2)
	y := []float64{0.3, 0.6}
	if got := ZMProbes(z, y, 0); got != nil {
		t.Fatal("count=0 must return nil")
	}
	if got := ZMProbes(z, y, 1); len(got) != 1 {
		t.Fatal("count=1 must return only home")
	}
	// M=2 has finitely many ±1 perturbation sets (3^2 = 9 codes); huge
	// counts must terminate.
	got := ZMProbes(z, y, 1000)
	if len(got) > 9 {
		t.Fatalf("M=2 emitted %d probes; only 9 cells reachable", len(got))
	}
	if len(got) < 5 {
		t.Fatalf("M=2 emitted %d probes; expected most of the 3x3 block", len(got))
	}
}

func TestE8ProbesBasics(t *testing.T) {
	e := lattice.NewE8(8)
	rng := xrand.New(7)
	y := randomY(rng, 8, 2)
	probes := E8Probes(e, y, 241)
	if len(probes) != 241 {
		t.Fatalf("got %d probes, want 241 (home + kissing number)", len(probes))
	}
	home := e.Decode(y)
	for i := range home {
		if probes[0][i] != home[i] {
			t.Fatal("first probe must be home")
		}
	}
	seen := map[string]bool{}
	for _, p := range probes {
		var arr [8]int32
		copy(arr[:], p)
		if !lattice.IsE8(arr) {
			t.Fatalf("probe %v is not an E8 point", p)
		}
		k := lattice.Key(p)
		if seen[k] {
			t.Fatalf("duplicate probe %v", p)
		}
		seen[k] = true
	}
}

// Property: within the first ring, probes are ordered by distance from the
// query's projection to the neighbor lattice points.
func TestE8ProbeDistanceOrder(t *testing.T) {
	e := lattice.NewE8(8)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		y := randomY(rng, 8, 1.5)
		probes := E8Probes(e, y, 100)
		prev := -1.0
		for _, p := range probes[1:] {
			var d2 float64
			for j := range p {
				diff := y[j] - float64(p[j])/2
				d2 += diff * diff
			}
			if d2 < prev-1e-9 {
				return false
			}
			prev = d2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestE8ProbesRecursiveExpansion(t *testing.T) {
	e := lattice.NewE8(8)
	rng := xrand.New(9)
	y := randomY(rng, 8, 1)
	// More than one ring's worth: must keep producing unique E8 codes.
	probes := E8Probes(e, y, 500)
	if len(probes) != 500 {
		t.Fatalf("expansion produced %d probes, want 500", len(probes))
	}
	seen := map[string]bool{}
	for _, p := range probes {
		k := lattice.Key(p)
		if seen[k] {
			t.Fatal("duplicate in expanded rings")
		}
		seen[k] = true
	}
}

func TestE8ProbesMultiBlock(t *testing.T) {
	e := lattice.NewE8(16) // two blocks
	rng := xrand.New(11)
	y := randomY(rng, 16, 2)
	probes := E8Probes(e, y, 481) // home + 240 per block
	if len(probes) != 481 {
		t.Fatalf("got %d probes", len(probes))
	}
	home := probes[0]
	// Each first-ring probe differs from home in exactly one block.
	for _, p := range probes[1:] {
		blocksChanged := 0
		for b := 0; b < 16; b += 8 {
			diff := false
			for j := b; j < b+8; j++ {
				if p[j] != home[j] {
					diff = true
				}
			}
			if diff {
				blocksChanged++
			}
		}
		if blocksChanged != 1 {
			t.Fatalf("first-ring probe %v changes %d blocks", p, blocksChanged)
		}
	}
}

func BenchmarkZMProbes240(b *testing.B) {
	z := lattice.NewZM(8)
	rng := xrand.New(1)
	y := randomY(rng, 8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZMProbes(z, y, 240)
	}
}

func BenchmarkE8Probes240(b *testing.B) {
	e := lattice.NewE8(8)
	rng := xrand.New(1)
	y := randomY(rng, 8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		E8Probes(e, y, 241)
	}
}

func TestDnProbesBasics(t *testing.T) {
	d := lattice.NewDn(8)
	rng := xrand.New(21)
	y := randomY(rng, 8, 2)
	// Home + the 2*8*7=112 first-ring neighbors.
	probes := DnProbes(d, y, 113)
	if len(probes) != 113 {
		t.Fatalf("got %d probes, want 113", len(probes))
	}
	home := d.Decode(y)
	for i := range home {
		if probes[0][i] != home[i] {
			t.Fatal("first probe must be home")
		}
	}
	seen := map[string]bool{}
	for _, p := range probes {
		if !lattice.IsDn(p) {
			t.Fatalf("probe %v not in D_n", p)
		}
		k := lattice.Key(p)
		if seen[k] {
			t.Fatal("duplicate probe")
		}
		seen[k] = true
	}
}

func TestDnProbeDistanceOrder(t *testing.T) {
	d := lattice.NewDn(8)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		y := randomY(rng, 8, 1.5)
		probes := DnProbes(d, y, 60)
		prev := -1.0
		for _, p := range probes[1:] {
			var d2 float64
			for j := range p {
				diff := y[j] - float64(p[j])/2
				d2 += diff * diff
			}
			if d2 < prev-1e-9 {
				return false
			}
			prev = d2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDnProbesSmallDim(t *testing.T) {
	d := lattice.NewDn(3) // single 3-dim block, 2*3*2=12 neighbors
	rng := xrand.New(22)
	y := randomY(rng, 3, 2)
	probes := DnProbes(d, y, 13)
	if len(probes) != 13 {
		t.Fatalf("got %d probes", len(probes))
	}
}
