package multiprobe

import "bilsh/internal/metrics"

// Probe-generation stage counters. Sequence generation sits on the hot
// path (one call per table per query under ProbeMulti), so the counters
// are resolved once here and updated with single atomic adds; the
// process-wide totals let an operator see how much probe work each
// lattice family is generating (documented in docs/metrics.md).
var (
	zmSequences = seqCounter("zm")
	zmProbes    = probeCounter("zm")
	e8Sequences = seqCounter("e8")
	e8Probes    = probeCounter("e8")
	dnSequences = seqCounter("dn")
	dnProbes    = probeCounter("dn")
)

func seqCounter(lat string) *metrics.Counter {
	return metrics.Default().Counter(
		"bilsh_multiprobe_sequences_total",
		"Probe sequences generated, by lattice family.",
		metrics.L("lattice", lat))
}

func probeCounter(lat string) *metrics.Counter {
	return metrics.Default().Counter(
		"bilsh_multiprobe_probes_total",
		"Individual probe codes emitted, by lattice family.",
		metrics.L("lattice", lat))
}
