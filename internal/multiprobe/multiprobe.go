// Package multiprobe generates probing sequences for LSH queries.
//
// For the Z^M lattice it implements the query-directed probing of Lv et
// al. (VLDB 2007), the method the paper uses: per-dimension boundary
// distances are sorted and perturbation sets are expanded best-first
// through a min-heap with the shift/expand operations, yielding buckets in
// increasing order of estimated distance to the query.
//
// For the E8 lattice (Section IV-B2b) the probe sequence is the bucket the
// query lies in followed by its 240 equidistant lattice neighbors, ordered
// by the distance from the query's unquantized projection to each
// neighbor's lattice point; when more probes are requested the adjacency
// ring is expanded recursively.
package multiprobe

import (
	"container/heap"
	"fmt"
	"sort"

	"bilsh/internal/lattice"
)

// ZMProbes returns up to count probe codes for a query whose unquantized
// projection is y (unit-cell coordinates, i.e. already divided by W). The
// first probe is always the home bucket ⌊y⌋; subsequent probes follow the
// Lv et al. perturbation order.
func ZMProbes(z *lattice.ZM, y []float64, count int) (probes [][]int32) {
	if len(y) != z.M() {
		panic(fmt.Sprintf("multiprobe: ZMProbes got %d dims, want %d", len(y), z.M()))
	}
	zmSequences.Inc()
	defer func() { zmProbes.Add(int64(len(probes))) }()
	if count <= 0 {
		return nil
	}
	home := z.Decode(y)
	probes = make([][]int32, 0, count)
	probes = append(probes, home)
	if count == 1 {
		return probes
	}

	m := z.M()
	// Boundary distances: for dimension i, x(i,-1) = y_i − ⌊y_i⌋ is the
	// distance to the lower cell wall, x(i,+1) = 1 − x(i,-1) to the upper.
	type pert struct {
		dim   int
		delta int32
		score float64 // squared boundary distance
	}
	perts := make([]pert, 0, 2*m)
	for i := 0; i < m; i++ {
		frac := y[i] - float64(home[i])
		perts = append(perts,
			pert{dim: i, delta: -1, score: frac * frac},
			pert{dim: i, delta: +1, score: (1 - frac) * (1 - frac)},
		)
	}
	sort.Slice(perts, func(a, b int) bool { return perts[a].score < perts[b].score })

	// prefix[j] = Σ scores of the first j sorted perturbations, used to
	// score sets cheaply.
	total := 2 * m
	score := func(set []int) float64 {
		var s float64
		for _, j := range set {
			s += perts[j].score
		}
		return s
	}
	// Validity: a set must not perturb one dimension both ways. With the
	// sorted order this is the classic "j and its companion" test; we check
	// dimensions directly, which is equivalent and robust to score ties.
	valid := func(set []int) bool {
		var seen [64]bool // m <= 32 in practice; fall back to map beyond
		var seenMap map[int]bool
		if m > 64 {
			seenMap = make(map[int]bool, len(set))
		}
		for _, j := range set {
			d := perts[j].dim
			if seenMap != nil {
				if seenMap[d] {
					return false
				}
				seenMap[d] = true
				continue
			}
			if seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}

	pq := &setHeap{}
	heap.Init(pq)
	heap.Push(pq, probeSet{set: []int{0}, score: perts[0].score})
	for len(probes) < count && pq.Len() > 0 {
		cur := heap.Pop(pq).(probeSet)
		if valid(cur.set) {
			code := make([]int32, m)
			copy(code, home)
			for _, j := range cur.set {
				code[perts[j].dim] += perts[j].delta
			}
			probes = append(probes, code)
		}
		// Children: shift the max element, and expand by the next element.
		last := cur.set[len(cur.set)-1]
		if last+1 < total {
			shifted := append(append([]int(nil), cur.set[:len(cur.set)-1]...), last+1)
			heap.Push(pq, probeSet{set: shifted, score: score(shifted)})
			expanded := append(append([]int(nil), cur.set...), last+1)
			heap.Push(pq, probeSet{set: expanded, score: score(expanded)})
		}
	}
	return probes
}

type probeSet struct {
	set   []int
	score float64
}

type setHeap []probeSet

func (h setHeap) Len() int            { return len(h) }
func (h setHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h setHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *setHeap) Push(x interface{}) { *h = append(*h, x.(probeSet)) }
func (h *setHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// E8Probes returns up to count probe codes for a query with unquantized
// projection y under the E8 quantizer: the home bucket, then neighbor
// buckets ordered by the distance from y to the neighbor's lattice point,
// expanding the adjacency ring recursively while more probes are needed
// ("if the number of candidates computed is not enough, we recursively
// probe the adjacent buckets of the 240 probed buckets").
func E8Probes(e *lattice.E8, y []float64, count int) [][]int32 {
	if len(y) != e.M() {
		panic(fmt.Sprintf("multiprobe: E8Probes got %d dims, want %d", len(y), e.M()))
	}
	mins := lattice.MinVectors()
	blockMins := make([][]int32, len(mins))
	for i := range mins {
		blockMins[i] = mins[i][:]
	}
	e8Sequences.Inc()
	probes := ringProbes(e.Decode(y), y, 8, blockMins, count)
	e8Probes.Add(int64(len(probes)))
	return probes
}

// DnProbes is the D_n analogue of E8Probes: the home bucket plus the
// 2n(n-1) equidistant D_n neighbors per block, ring-expanded on demand.
func DnProbes(d *lattice.Dn, y []float64, count int) [][]int32 {
	if len(y) != d.M() {
		panic(fmt.Sprintf("multiprobe: DnProbes got %d dims, want %d", len(y), d.M()))
	}
	bdim := d.BlockDim()
	dnSequences.Inc()
	probes := ringProbes(d.Decode(y), y, bdim, lattice.DnMinVectors(bdim), count)
	dnProbes.Add(int64(len(probes)))
	return probes
}

// ringProbes generates probe codes around home: neighbors differ in
// exactly one block by one minimal vector (doubled representation), are
// ordered by distance from the query's projection, and rings are expanded
// recursively until count probes exist or the frontier empties.
func ringProbes(home []int32, y []float64, blockDim int, mins [][]int32, count int) [][]int32 {
	if count <= 0 {
		return nil
	}
	probes := make([][]int32, 0, count)
	probes = append(probes, home)
	if count == 1 {
		return probes
	}
	codeLen := len(home)
	// Pad y to the code length in lattice (real) units.
	yy := make([]float64, codeLen)
	copy(yy, y)

	type cand struct {
		code []int32
		d2   float64
	}
	seen := map[string]bool{lattice.Key(home): true}
	frontier := [][]int32{home}
	for len(probes) < count && len(frontier) > 0 {
		var ring []cand
		for _, base := range frontier {
			for b := 0; b+blockDim <= codeLen; b += blockDim {
				for _, mv := range mins {
					nb := make([]int32, codeLen)
					copy(nb, base)
					for j := 0; j < blockDim; j++ {
						nb[b+j] += mv[j]
					}
					key := lattice.Key(nb)
					if seen[key] {
						continue
					}
					seen[key] = true
					var d2 float64
					for j := 0; j < codeLen; j++ {
						diff := yy[j] - float64(nb[j])/2
						d2 += diff * diff
					}
					ring = append(ring, cand{code: nb, d2: d2})
				}
			}
		}
		sort.Slice(ring, func(a, b int) bool {
			if ring[a].d2 != ring[b].d2 {
				return ring[a].d2 < ring[b].d2
			}
			return lattice.Key(ring[a].code) < lattice.Key(ring[b].code)
		})
		frontier = frontier[:0]
		for _, c := range ring {
			if len(probes) < count {
				probes = append(probes, c.code)
			}
			frontier = append(frontier, c.code)
		}
	}
	return probes
}
