// Package parsim is the documented hardware substitution for the paper's
// GPU experiments (Section V / Figure 4): a deterministic bulk-synchronous
// cost model of a p-core SIMT device, applied to the *measured* operation
// counts of the real short-list engines in internal/shortlist.
//
// The paper's Figure 4 compares three systems at growing candidate counts:
//
//	CPU-lshkit    — hash lookups, candidate gathering and short-list
//	                search on one CPU core;
//	CPU-shortlist — GPU (parallel cuckoo) hash table + serial short-list;
//	GPU           — fully parallel pipeline (per-thread-per-query heaps);
//
// plus the Section V-B work-queue engine, quoted as another 2–5x.
//
// A Go process cannot run CUDA, and this machine has one core, so instead
// of wall-clock we model time in abstract cycles: each engine reports what
// it did (distance evaluations, heap pushes, items sorted, per-query
// maxima) and a Device converts those counts into time, charging
// SIMT-realistic penalties:
//
//   - the hash stage includes per-candidate gathering (copying vectors out
//     of the table), which is what the GPU hash table removes from the
//     critical path — the paper's ≈2x;
//   - per-thread-per-query parallelism is bounded by the largest query of
//     each warp (load imbalance) and pays a divergence penalty on heap
//     pushes — the paper's 15–20x over the serial short-list;
//   - the work-queue engine streams coalesced distance + clustered-sort
//     work at full device efficiency, the work-efficient T_P(n) = 40n/p
//     bound — the paper's further 2–5x.
//
// The constants are calibrated once (GTX480-like: 480 lanes, warp 32) so
// the layering lands in the paper's quoted ranges; they are inputs to the
// model, not measurements. The model's purpose is to preserve the *shape*
// of Figure 4, as documented in DESIGN.md.
//
// The same shortlist.OpStats the model consumes are also accumulated
// process-wide as bilsh_shortlist_* counters (docs/metrics.md), so live
// operation counts from a running server can be fed back through a
// Device to estimate what the modeled hardware would have spent.
package parsim

import (
	"fmt"
	"math"

	"bilsh/internal/shortlist"
)

// Device is the modeled processor.
type Device struct {
	// Cores is p, the number of parallel lanes (1 = serial CPU).
	Cores int
	// DistCostPerDim is the cycle cost of one dimension of a distance
	// evaluation (multiply-add + load).
	DistCostPerDim float64
	// GatherCostPerDim is the cycle cost per dimension of copying one
	// candidate vector out of the hash table during lookup.
	GatherCostPerDim float64
	// HeapCostPerOp is the cycle cost of one heap push on a coherent core
	// (multiplied by log2(k) levels).
	HeapCostPerOp float64
	// DivergencePenalty multiplies heap costs on SIMT lanes (branchy tree
	// walks serialize within a warp).
	DivergencePenalty float64
	// SortCostPerItem is the per-item cost of the clustered sort.
	SortCostPerItem float64
	// HashCostPerLookup is the cycle cost of one bucket lookup (projection
	// + cuckoo probes).
	HashCostPerLookup float64
	// ParallelEfficiency derates parallel stages for memory contention.
	ParallelEfficiency float64
	// WarpSize groups queries for the per-thread-per-query engine; a batch
	// finishes when its largest member does.
	WarpSize int
}

// CPU returns a single-core device with coherent-core costs.
func CPU() Device {
	return Device{
		Cores:              1,
		DistCostPerDim:     1,
		GatherCostPerDim:   1,
		HeapCostPerOp:      12,
		DivergencePenalty:  1,
		SortCostPerItem:    14,
		HashCostPerLookup:  220,
		ParallelEfficiency: 1,
		WarpSize:           1,
	}
}

// GTX480 returns the GPU-like device the paper used: 480 lanes, warp size
// 32, divergent heap walks, memory-bound efficiency.
func GTX480() Device {
	return Device{
		Cores:              480,
		DistCostPerDim:     1,
		GatherCostPerDim:   1,
		HeapCostPerOp:      12,
		DivergencePenalty:  8,
		SortCostPerItem:    14,
		HashCostPerLookup:  220,
		ParallelEfficiency: 0.15,
		WarpSize:           32,
	}
}

// Validate reports configuration errors.
func (d Device) Validate() error {
	if d.Cores < 1 {
		return fmt.Errorf("parsim: Cores = %d, must be >= 1", d.Cores)
	}
	if d.ParallelEfficiency <= 0 || d.ParallelEfficiency > 1 {
		return fmt.Errorf("parsim: ParallelEfficiency = %g, must be in (0,1]", d.ParallelEfficiency)
	}
	if d.WarpSize < 1 {
		return fmt.Errorf("parsim: WarpSize = %d, must be >= 1", d.WarpSize)
	}
	return nil
}

// lanes is the effective parallel throughput divisor.
func (d Device) lanes() float64 {
	return math.Max(1, float64(d.Cores)*d.ParallelEfficiency)
}

// Workload describes one batch of queries, independent of engine.
type Workload struct {
	// Queries is the number of k-NN queries in the batch.
	Queries int
	// Dim is the vector dimensionality D.
	Dim int
	// K is the neighborhood size.
	K int
	// Lookups is the total number of hash-bucket lookups (queries × L ×
	// probes).
	Lookups int
	// PerQueryCandidates lists each query's candidate count (used for the
	// warp load-imbalance model).
	PerQueryCandidates []int
}

// TotalCandidates sums the per-query candidate counts.
func (w Workload) TotalCandidates() int {
	total := 0
	for _, c := range w.PerQueryCandidates {
		total += c
	}
	return total
}

// HashStage models the bucket-lookup-and-gather stage: lookups plus
// copying every candidate out of the table, parallel across lanes.
func (d Device) HashStage(w Workload) float64 {
	work := float64(w.Lookups)*d.HashCostPerLookup +
		float64(w.TotalCandidates())*d.GatherCostPerDim*float64(w.Dim)
	return work / d.lanes()
}

// SerialShortList models the heap-per-query short-list on ONE coherent
// core regardless of d.Cores (the CPU-shortlist configuration).
func (d Device) SerialShortList(w Workload, st shortlist.OpStats) float64 {
	logk := math.Max(1, math.Log2(float64(w.K)+1))
	return float64(st.DistanceOps)*d.DistCostPerDim*float64(w.Dim) +
		float64(st.HeapOps)*d.HeapCostPerOp*logk
}

// PerQueryShortList models the naive per-thread-per-query parallel
// short-list: queries are processed in warp-sized batches, each batch
// costing as much as its largest member, with divergent heap pushes.
func (d Device) PerQueryShortList(w Workload, st shortlist.OpStats) float64 {
	if len(w.PerQueryCandidates) == 0 {
		return 0
	}
	logk := math.Max(1, math.Log2(float64(w.K)+1))
	perCand := d.DistCostPerDim*float64(w.Dim) +
		d.HeapCostPerOp*d.DivergencePenalty*logk
	concurrentWarps := math.Max(1, float64(d.Cores)/float64(d.WarpSize)*d.ParallelEfficiency)
	var batchMaxSum float64
	for i := 0; i < len(w.PerQueryCandidates); i += d.WarpSize {
		hi := i + d.WarpSize
		if hi > len(w.PerQueryCandidates) {
			hi = len(w.PerQueryCandidates)
		}
		max := 0
		for _, c := range w.PerQueryCandidates[i:hi] {
			if c > max {
				max = c
			}
		}
		batchMaxSum += float64(max)
	}
	return batchMaxSum * perCand / concurrentWarps
}

// WorkQueueShortList models the paper's engine: fully coalesced streaming
// of distance + clustered-sort work across all lanes — the work-efficient
// T_P(n) = 40n/p bound.
func (d Device) WorkQueueShortList(w Workload, st shortlist.OpStats) float64 {
	work := float64(st.DistanceOps)*d.DistCostPerDim*float64(w.Dim) +
		float64(st.SortedItems)*d.SortCostPerItem
	return work / d.lanes()
}

// Figure4Row is one x-position of the Figure 4 reproduction.
type Figure4Row struct {
	Candidates int // total short-list candidates (the x axis)
	// Modeled times in cycles for the figure's systems.
	CPUOnly       float64 // CPU hash+gather + CPU short-list ("CPU-lshkit")
	GPUHashCPUSL  float64 // GPU hash table + CPU short-list ("CPU-shortlist")
	PureGPU       float64 // GPU hash + per-thread GPU short-list ("GPU")
	PureGPUQueued float64 // GPU hash + work-queue short-list (Section V-B)
}

// Speedups returns the ratios the paper quotes, all relative to CPUOnly.
func (r Figure4Row) Speedups() (hashOffload, pureGPU, queued float64) {
	if r.GPUHashCPUSL > 0 {
		hashOffload = r.CPUOnly / r.GPUHashCPUSL
	}
	if r.PureGPU > 0 {
		pureGPU = r.CPUOnly / r.PureGPU
	}
	if r.PureGPUQueued > 0 {
		queued = r.CPUOnly / r.PureGPUQueued
	}
	return hashOffload, pureGPU, queued
}

// ModelFigure4 combines measured op stats into one Figure 4 row. serialSt
// must come from the Serial engine and queueSt from the WorkQueue engine
// (distance work is identical; the sort accounting differs).
func ModelFigure4(cpu, gpu Device, w Workload, serialSt, queueSt shortlist.OpStats) Figure4Row {
	row := Figure4Row{Candidates: w.TotalCandidates()}
	row.CPUOnly = cpu.HashStage(w) + cpu.SerialShortList(w, serialSt)
	row.GPUHashCPUSL = gpu.HashStage(w) + cpu.SerialShortList(w, serialSt)
	row.PureGPU = gpu.HashStage(w) + gpu.PerQueryShortList(w, serialSt)
	row.PureGPUQueued = gpu.HashStage(w) + gpu.WorkQueueShortList(w, queueSt)
	return row
}
