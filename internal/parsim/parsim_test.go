package parsim

import (
	"testing"

	"bilsh/internal/shortlist"
	"bilsh/internal/xrand"
)

// syntheticWorkload builds a Figure-4-style batch: q queries with roughly
// c candidates each (lognormal-ish spread to exercise warp imbalance).
func syntheticWorkload(q, c, dim, k, lookupsPerQuery int, seed int64) (Workload, shortlist.OpStats, shortlist.OpStats) {
	rng := xrand.New(seed)
	w := Workload{Queries: q, Dim: dim, K: k, Lookups: q * lookupsPerQuery}
	total := 0
	for i := 0; i < q; i++ {
		n := int(float64(c) * (0.5 + rng.Float64()))
		w.PerQueryCandidates = append(w.PerQueryCandidates, n)
		total += n
	}
	serial := shortlist.OpStats{DistanceOps: total, HeapOps: total, MaxPerQuery: 2 * c}
	queue := shortlist.OpStats{DistanceOps: total, SortedItems: total + q*k, Passes: 1}
	return w, serial, queue
}

func TestValidate(t *testing.T) {
	if err := CPU().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := GTX480().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Device{Cores: 0, ParallelEfficiency: 0.5, WarpSize: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Cores=0 must be invalid")
	}
	bad = Device{Cores: 1, ParallelEfficiency: 0, WarpSize: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("eff=0 must be invalid")
	}
	bad = Device{Cores: 1, ParallelEfficiency: 0.5, WarpSize: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("warp=0 must be invalid")
	}
}

// The headline test: the modeled layering must land in the paper's quoted
// ranges at realistic settings (dim 384, k=500, L=10).
func TestFigure4LayeringMatchesPaper(t *testing.T) {
	w, serial, queue := syntheticWorkload(1000, 5000, 384, 500, 10, 1)
	row := ModelFigure4(CPU(), GTX480(), w, serial, queue)
	hashOffload, pureGPU, queued := row.Speedups()

	if hashOffload < 1.5 || hashOffload > 3 {
		t.Fatalf("hash-offload speedup %.1fx outside the paper's ~2x", hashOffload)
	}
	// "about 15-20x faster than the second" → pureGPU / hashOffload.
	overSL := pureGPU / hashOffload
	if overSL < 10 || overSL > 25 {
		t.Fatalf("per-thread GPU %.1fx over CPU short-list, want ~15-20x", overSL)
	}
	// "Overall ... 40x acceleration" (we accept 25-55x).
	if pureGPU < 25 || pureGPU > 55 {
		t.Fatalf("pure GPU total speedup %.1fx, want ~40x", pureGPU)
	}
	// "Another 2-5x ... by the work-queue based method."
	extra := queued / pureGPU
	if extra < 2 || extra > 5 {
		t.Fatalf("work-queue extra speedup %.1fx, want 2-5x", extra)
	}
}

// Ordering must hold across the candidate sweep (the figure's x axis).
func TestFigure4OrderingAcrossSweep(t *testing.T) {
	for _, c := range []int{100, 500, 2000, 10000, 50000} {
		w, serial, queue := syntheticWorkload(200, c, 384, 500, 10, int64(c))
		row := ModelFigure4(CPU(), GTX480(), w, serial, queue)
		if !(row.CPUOnly > row.GPUHashCPUSL && row.GPUHashCPUSL > row.PureGPU && row.PureGPU > row.PureGPUQueued) {
			t.Fatalf("c=%d: ordering violated: %+v", c, row)
		}
	}
}

// Times must grow monotonically with candidate volume for every system.
func TestMonotoneInCandidates(t *testing.T) {
	var prev Figure4Row
	for i, c := range []int{100, 1000, 10000} {
		w, serial, queue := syntheticWorkload(100, c, 128, 100, 10, 7)
		row := ModelFigure4(CPU(), GTX480(), w, serial, queue)
		if i > 0 {
			if row.CPUOnly <= prev.CPUOnly || row.PureGPU <= prev.PureGPU ||
				row.GPUHashCPUSL <= prev.GPUHashCPUSL || row.PureGPUQueued <= prev.PureGPUQueued {
				t.Fatalf("times not monotone at c=%d", c)
			}
		}
		prev = row
	}
}

// Load imbalance: a skewed workload must cost the per-thread engine more
// than a balanced workload with the same total candidates.
func TestWarpImbalancePenalty(t *testing.T) {
	gpu := GTX480()
	balanced := Workload{Queries: 64, Dim: 64, K: 10,
		PerQueryCandidates: make([]int, 64)}
	skewed := Workload{Queries: 64, Dim: 64, K: 10,
		PerQueryCandidates: make([]int, 64)}
	for i := range balanced.PerQueryCandidates {
		balanced.PerQueryCandidates[i] = 100
		skewed.PerQueryCandidates[i] = 1
	}
	// Same total: one whale per warp.
	skewed.PerQueryCandidates[0] = 100*32 - 31
	skewed.PerQueryCandidates[32] = 100*32 - 31
	st := shortlist.OpStats{DistanceOps: 6400, HeapOps: 6400}
	tBal := gpu.PerQueryShortList(balanced, st)
	tSkew := gpu.PerQueryShortList(skewed, st)
	if tSkew <= tBal {
		t.Fatalf("no imbalance penalty: balanced %.0f vs skewed %.0f", tBal, tSkew)
	}
	// The work-queue engine is immune: identical stats → identical time.
	if gpu.WorkQueueShortList(balanced, st) != gpu.WorkQueueShortList(skewed, st) {
		t.Fatal("work-queue time must depend only on totals")
	}
}

// The work-queue bound is work-efficient: modeled parallel time times
// lanes never beats the serial distance work.
func TestWorkQueueWorkEfficiency(t *testing.T) {
	gpu := GTX480()
	w, _, queue := syntheticWorkload(300, 2000, 256, 200, 10, 9)
	par := gpu.WorkQueueShortList(w, queue)
	serialWork := float64(queue.DistanceOps) * gpu.DistCostPerDim * float64(w.Dim)
	if par*gpu.lanes() < serialWork {
		t.Fatalf("modeled parallel time %.0f × lanes beats serial work %.0f", par, serialWork)
	}
}

func TestEmptyWorkload(t *testing.T) {
	gpu := GTX480()
	if got := gpu.PerQueryShortList(Workload{}, shortlist.OpStats{}); got != 0 {
		t.Fatalf("empty per-query time = %v", got)
	}
	if got := gpu.HashStage(Workload{}); got != 0 {
		t.Fatalf("empty hash time = %v", got)
	}
}

func TestSpeedupsZeroSafe(t *testing.T) {
	var r Figure4Row
	a, b, c := r.Speedups()
	if a != 0 || b != 0 || c != 0 {
		t.Fatal("zero row must give zero speedups, not NaN/Inf")
	}
}
