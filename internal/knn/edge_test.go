package knn

import (
	"math"
	"reflect"
	"testing"

	"bilsh/internal/vec"
)

// TestExactEdgeCases is the table-driven boundary sweep for the exact
// reference: degenerate k, empty data, k exceeding n, and duplicate rows
// (tied distances). Every returned result must be NaN-free, sorted and
// tie-stable.
func TestExactEdgeCases(t *testing.T) {
	data := vec.FromRows([][]float32{
		{0, 0}, // id 0, sqdist 0
		{1, 0}, // id 1, sqdist 1
		{1, 0}, // id 2, duplicate of id 1
		{0, 2}, // id 3, sqdist 4
	})
	empty := vec.NewMatrix(0, 2)
	q := []float32{0, 0}

	cases := []struct {
		name      string
		data      *vec.Matrix
		k         int
		wantIDs   []int
		wantDists []float64
	}{
		{name: "k zero", data: data, k: 0, wantIDs: []int{}, wantDists: []float64{}},
		{name: "k negative", data: data, k: -3, wantIDs: []int{}, wantDists: []float64{}},
		{name: "empty data", data: empty, k: 5, wantIDs: []int{}, wantDists: []float64{}},
		{name: "k exceeds n", data: data, k: 100, wantIDs: []int{0, 1, 2, 3}, wantDists: []float64{0, 1, 1, 4}},
		{name: "duplicate distances tie-break by id", data: data, k: 2, wantIDs: []int{0, 1}, wantDists: []float64{0, 1}},
		{name: "tie straddles the cut", data: data, k: 3, wantIDs: []int{0, 1, 2}, wantDists: []float64{0, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Exact(tc.data, q, tc.k)
			if !reflect.DeepEqual(r.IDs, tc.wantIDs) {
				t.Errorf("IDs = %v, want %v", r.IDs, tc.wantIDs)
			}
			if !reflect.DeepEqual(r.Dists, tc.wantDists) {
				t.Errorf("Dists = %v, want %v", r.Dists, tc.wantDists)
			}
			if len(r.IDs) != len(r.Dists) {
				t.Errorf("ragged result: %d ids, %d dists", len(r.IDs), len(r.Dists))
			}
			for i, d := range r.Dists {
				if math.IsNaN(d) {
					t.Errorf("NaN distance at rank %d", i)
				}
			}
		})
	}
}

// TestExactAllDegenerate: the parallel driver must pass the degenerate
// cases through unchanged — empty results for k <= 0, one result row per
// query even with zero data rows.
func TestExactAllDegenerate(t *testing.T) {
	data := vec.FromRows([][]float32{{0, 0}, {3, 4}})
	queries := vec.FromRows([][]float32{{0, 0}, {1, 1}, {5, 5}})

	for _, k := range []int{0, -1} {
		out := ExactAll(data, queries, k)
		if len(out) != queries.N {
			t.Fatalf("k=%d: got %d results, want %d", k, len(out), queries.N)
		}
		for qi, r := range out {
			if len(r.IDs) != 0 || len(r.Dists) != 0 {
				t.Errorf("k=%d query %d: non-empty result %v", k, qi, r)
			}
		}
	}

	out := ExactAll(vec.NewMatrix(0, 2), queries, 3)
	for qi, r := range out {
		if len(r.IDs) != 0 {
			t.Errorf("empty data, query %d: got %d neighbors", qi, len(r.IDs))
		}
	}
}

// TestMetricsDegenerate: the quality metrics must stay NaN-free on empty
// inputs (a query with no results is a recall-0, not a 0/0).
func TestMetricsDegenerate(t *testing.T) {
	if r := Recall([]int{1, 2}, nil); r != 0 {
		t.Errorf("Recall(truth, empty) = %v, want 0", r)
	}
	m := Measure(Result{IDs: []int{1}, Dists: []float64{1}}, Result{IDs: []int{}, Dists: []float64{}}, 0, 10)
	for name, v := range map[string]float64{
		"recall": m.Recall, "error": m.ErrorRatio, "selectivity": m.Selectivity,
	} {
		if math.IsNaN(v) {
			t.Errorf("%s is NaN on an empty result", name)
		}
	}
}
