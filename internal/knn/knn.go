// Package knn provides the exact brute-force k-nearest-neighbor reference
// (the paper's ground truth N(v)) and the three quality metrics of
// Section II-A: recall ratio (Eq. 3), error ratio (Eq. 4) and selectivity
// (Eq. 5), plus the r1/r2 variance aggregation of Section VI-B2.
package knn

import (
	"fmt"
	"runtime"
	"sync"

	"bilsh/internal/topk"
	"bilsh/internal/vec"
)

// Result is one query's neighbor list, closest first.
type Result struct {
	IDs   []int
	Dists []float64
}

// Exact computes the exact k nearest neighbors of query within data by
// linear scan — the O(n) reference the approximate algorithms are judged
// against. k <= 0 yields an empty result.
func Exact(data *vec.Matrix, query []float32, k int) Result {
	if k <= 0 {
		return Result{IDs: []int{}, Dists: []float64{}}
	}
	h := topk.New(k)
	for i := 0; i < data.N; i++ {
		d := vec.SqDist(data.Row(i), query)
		if h.Accepts(d) {
			h.Push(i, d)
		}
	}
	return fromHeap(h)
}

// ExactAll computes ground truth for every row of queries, fanning out
// across GOMAXPROCS goroutines (the queries are independent).
func ExactAll(data, queries *vec.Matrix, k int) []Result {
	if data.D != queries.D {
		panic(fmt.Sprintf("knn: dimension mismatch data=%d queries=%d", data.D, queries.D))
	}
	out := make([]Result, queries.N)
	parallelFor(queries.N, func(q int) {
		out[q] = Exact(data, queries.Row(q), k)
	})
	return out
}

func fromHeap(h *topk.Heap) Result {
	items := h.Sorted()
	r := Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
	for i, it := range items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist // squared distance; metrics take sqrt where needed
	}
	return r
}

// parallelFor runs body(i) for i in [0,n) on up to GOMAXPROCS workers.
func parallelFor(n int, body func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
