package knn

import (
	"math"

	"bilsh/internal/vec"
)

// Recall implements Eq. 3: |N(v) ∩ I(v)| / |N(v)|, where truth is the exact
// neighbor id set N(v) and got the approximate result I(v).
func Recall(truth, got []int) float64 {
	if len(truth) == 0 {
		return 0
	}
	set := make(map[int]struct{}, len(got))
	for _, id := range got {
		set[id] = struct{}{}
	}
	hit := 0
	for _, id := range truth {
		if _, ok := set[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// ErrorRatio implements Eq. 4: (1/k) Σ ||v−N(v)_i|| / ||v−I(v)_i||, taking
// plain (not squared) distances. Positions where the approximate result is
// missing contribute 0 (the harshest consistent convention: an absent
// neighbor is infinitely far). A ratio of 1 means exact. Zero-distance
// pairs (query duplicated in the dataset) contribute 1.
func ErrorRatio(truthDists, gotDists []float64) float64 {
	if len(truthDists) == 0 {
		return 0
	}
	var sum float64
	for i, td := range truthDists {
		if i >= len(gotDists) {
			break // missing results contribute 0
		}
		t := math.Sqrt(td)
		g := math.Sqrt(gotDists[i])
		switch {
		case g == 0 && t == 0:
			sum++
		case g == 0:
			// Approximate closer than exact is impossible for a correct
			// ground truth; guard anyway.
			sum++
		default:
			sum += t / g
		}
	}
	return sum / float64(len(truthDists))
}

// Selectivity implements Eq. 5: |A(v)| / |S|, with candidates the number of
// short-list candidates scanned and n the dataset size.
func Selectivity(candidates, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(candidates) / float64(n)
}

// QueryMeasure bundles the three per-query measurements.
type QueryMeasure struct {
	Recall      float64
	ErrorRatio  float64
	Selectivity float64
}

// Measure evaluates one approximate result against ground truth.
func Measure(truth Result, got Result, candidates, n int) QueryMeasure {
	return QueryMeasure{
		Recall:      Recall(truth.IDs, got.IDs),
		ErrorRatio:  ErrorRatio(truth.Dists, got.Dists),
		Selectivity: Selectivity(candidates, n),
	}
}

// RunMeasure aggregates one algorithm execution (one random projection
// draw, i.e. one r1 sample) over its whole query set (the r2 samples):
// E_r2 for each metric plus the per-query standard deviations.
type RunMeasure struct {
	Recall, ErrorRatio, Selectivity             vec.Stats
	QueryRecalls, QueryErrors, QuerySelectivity []float64
}

// AggregateQueries folds per-query measures into a RunMeasure.
func AggregateQueries(ms []QueryMeasure) RunMeasure {
	r := RunMeasure{
		QueryRecalls:     make([]float64, len(ms)),
		QueryErrors:      make([]float64, len(ms)),
		QuerySelectivity: make([]float64, len(ms)),
	}
	for i, m := range ms {
		r.QueryRecalls[i] = m.Recall
		r.QueryErrors[i] = m.ErrorRatio
		r.QuerySelectivity[i] = m.Selectivity
	}
	r.Recall = vec.Summarize(r.QueryRecalls)
	r.ErrorRatio = vec.Summarize(r.QueryErrors)
	r.Selectivity = vec.Summarize(r.QuerySelectivity)
	return r
}

// VarianceSummary is the paper's Section VI-B2 decomposition for one
// parameter setting (one W): means over all runs and queries, the std of
// per-run means across projections (Std_r1 E_r2), and the mean of per-run
// query stds (E_r1 Std_r2 — the query-induced deviation of Figs. 11–12).
type VarianceSummary struct {
	MeanRecall, MeanError, MeanSelectivity          float64
	ProjStdRecall, ProjStdError, ProjStdSelectivity float64
	QueryStdRecall, QueryStdError, QueryStdSel      float64
	Runs                                            int
}

// AggregateRuns combines the per-projection RunMeasures of repeated
// executions with independent hash draws.
func AggregateRuns(runs []RunMeasure) VarianceSummary {
	n := len(runs)
	if n == 0 {
		return VarianceSummary{}
	}
	recallMeans := make([]float64, n)
	errMeans := make([]float64, n)
	selMeans := make([]float64, n)
	var qsr, qse, qss float64
	for i, r := range runs {
		recallMeans[i] = r.Recall.Mean
		errMeans[i] = r.ErrorRatio.Mean
		selMeans[i] = r.Selectivity.Mean
		qsr += r.Recall.Std
		qse += r.ErrorRatio.Std
		qss += r.Selectivity.Std
	}
	sr := vec.Summarize(recallMeans)
	se := vec.Summarize(errMeans)
	ss := vec.Summarize(selMeans)
	return VarianceSummary{
		MeanRecall: sr.Mean, MeanError: se.Mean, MeanSelectivity: ss.Mean,
		ProjStdRecall: sr.Std, ProjStdError: se.Std, ProjStdSelectivity: ss.Std,
		QueryStdRecall: qsr / float64(n), QueryStdError: qse / float64(n),
		QueryStdSel: qss / float64(n),
		Runs:        n,
	}
}
