package knn

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"bilsh/internal/dataset"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func TestExactSmall(t *testing.T) {
	data := vec.FromRows([][]float32{{0}, {10}, {2}, {-1}})
	r := Exact(data, []float32{0.4}, 2)
	if !reflect.DeepEqual(r.IDs, []int{0, 3}) {
		t.Fatalf("IDs = %v, want [0 3]", r.IDs)
	}
	if r.Dists[0] >= r.Dists[1] {
		t.Fatal("distances must be ascending")
	}
}

func TestExactKLargerThanN(t *testing.T) {
	data := vec.FromRows([][]float32{{0}, {1}})
	r := Exact(data, []float32{0}, 5)
	if len(r.IDs) != 2 {
		t.Fatalf("got %d ids, want all 2", len(r.IDs))
	}
}

// Property: ExactAll agrees with a naive full sort for random instances.
func TestExactMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(60)
		d := 1 + rng.Intn(6)
		k := 1 + rng.Intn(8)
		data := dataset.Gaussian(n, d, 1, rng.Split(1))
		q := rng.GaussianVec(d)
		got := Exact(data, q, k)

		type pair struct {
			id int
			d  float64
		}
		ps := make([]pair, n)
		for i := 0; i < n; i++ {
			ps[i] = pair{i, vec.SqDist(data.Row(i), q)}
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].d != ps[j].d {
				return ps[i].d < ps[j].d
			}
			return ps[i].id < ps[j].id
		})
		if k > n {
			k = n
		}
		for i := 0; i < k; i++ {
			if got.IDs[i] != ps[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExactAllMatchesSingle(t *testing.T) {
	rng := xrand.New(5)
	data := dataset.Gaussian(200, 8, 1, rng.Split(0))
	queries := dataset.Gaussian(17, 8, 1, rng.Split(1))
	all := ExactAll(data, queries, 4)
	for q := 0; q < queries.N; q++ {
		one := Exact(data, queries.Row(q), 4)
		if !reflect.DeepEqual(all[q].IDs, one.IDs) {
			t.Fatalf("query %d: parallel %v != serial %v", q, all[q].IDs, one.IDs)
		}
	}
}

func TestRecall(t *testing.T) {
	truth := []int{1, 2, 3, 4}
	if got := Recall(truth, []int{2, 4, 9, 10}); got != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", got)
	}
	if got := Recall(truth, truth); got != 1 {
		t.Fatalf("perfect Recall = %v", got)
	}
	if got := Recall(truth, nil); got != 0 {
		t.Fatalf("empty-result Recall = %v", got)
	}
	if got := Recall(nil, []int{1}); got != 0 {
		t.Fatalf("empty-truth Recall = %v", got)
	}
}

func TestErrorRatio(t *testing.T) {
	// Exact match: ratio 1 at every position.
	td := []float64{1, 4, 9}
	if got := ErrorRatio(td, td); math.Abs(got-1) > 1e-12 {
		t.Fatalf("exact ErrorRatio = %v, want 1", got)
	}
	// Approximate twice as far at every position: ratio 0.5.
	gd := []float64{4, 16, 36}
	if got := ErrorRatio(td, gd); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("2x ErrorRatio = %v, want 0.5", got)
	}
	// Short approximate list: missing tail contributes 0.
	if got := ErrorRatio(td, td[:1]); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("truncated ErrorRatio = %v, want 1/3", got)
	}
	// Zero distances (duplicate points) contribute 1, not NaN.
	if got := ErrorRatio([]float64{0}, []float64{0}); got != 1 {
		t.Fatalf("zero-dist ErrorRatio = %v, want 1", got)
	}
}

func TestErrorRatioAtMostOne(t *testing.T) {
	// Approximate distances can never beat exact ground truth, so kappa<=1.
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		k := 1 + rng.Intn(10)
		td := make([]float64, k)
		gd := make([]float64, k)
		prev := 0.0
		for i := 0; i < k; i++ {
			prev += rng.Float64()
			td[i] = prev * prev
			gd[i] = (prev + rng.Float64()) * (prev + rng.Float64())
		}
		kappa := ErrorRatio(td, gd)
		return kappa <= 1+1e-9 && kappa >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectivity(t *testing.T) {
	if got := Selectivity(25, 100); got != 0.25 {
		t.Fatalf("Selectivity = %v", got)
	}
	if got := Selectivity(5, 0); got != 0 {
		t.Fatalf("Selectivity with n=0 = %v", got)
	}
}

func TestAggregateQueries(t *testing.T) {
	ms := []QueryMeasure{
		{Recall: 1, ErrorRatio: 1, Selectivity: 0.2},
		{Recall: 0, ErrorRatio: 0.5, Selectivity: 0.4},
	}
	r := AggregateQueries(ms)
	if r.Recall.Mean != 0.5 || math.Abs(r.Selectivity.Mean-0.3) > 1e-12 {
		t.Fatalf("aggregate = %+v", r)
	}
	if r.Recall.Std != 0.5 {
		t.Fatalf("recall std = %v, want 0.5", r.Recall.Std)
	}
}

func TestAggregateRuns(t *testing.T) {
	runs := []RunMeasure{
		{Recall: vec.Stats{Mean: 0.8, Std: 0.1},
			ErrorRatio:  vec.Stats{Mean: 0.9, Std: 0.05},
			Selectivity: vec.Stats{Mean: 0.2, Std: 0.02}},
		{Recall: vec.Stats{Mean: 0.6, Std: 0.3},
			ErrorRatio:  vec.Stats{Mean: 0.7, Std: 0.15},
			Selectivity: vec.Stats{Mean: 0.4, Std: 0.04}},
	}
	s := AggregateRuns(runs)
	if s.MeanRecall != 0.7 || s.Runs != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.ProjStdRecall-0.1) > 1e-12 {
		t.Fatalf("proj std recall = %v, want 0.1", s.ProjStdRecall)
	}
	if math.Abs(s.QueryStdRecall-0.2) > 1e-12 {
		t.Fatalf("query std recall = %v, want 0.2", s.QueryStdRecall)
	}
	if z := AggregateRuns(nil); z.Runs != 0 {
		t.Fatalf("empty AggregateRuns = %+v", z)
	}
}

func TestMeasureEndToEnd(t *testing.T) {
	rng := xrand.New(10)
	data := dataset.Gaussian(300, 6, 1, rng.Split(0))
	q := rng.GaussianVec(6)
	truth := Exact(data, q, 5)
	m := Measure(truth, truth, 50, data.N)
	if m.Recall != 1 || math.Abs(m.ErrorRatio-1) > 1e-12 {
		t.Fatalf("self-measure = %+v", m)
	}
	if math.Abs(m.Selectivity-50.0/300) > 1e-12 {
		t.Fatalf("selectivity = %v", m.Selectivity)
	}
}

func TestParallelForCoversAllIndexesUnderContention(t *testing.T) {
	// Exercise the multi-worker path explicitly (GOMAXPROCS may be 1 on
	// the test machine, which routes ExactAll through the serial branch).
	const n = 500
	hits := make([]int32, n)
	var wg sync.WaitGroup
	workers := 4
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				atomic.AddInt32(&hits[i], 1)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d handled %d times", i, h)
		}
	}
	// And drive parallelFor itself on a forced-parallel shape.
	got := make([]int32, n)
	parallelFor(n, func(i int) { atomic.AddInt32(&got[i], 1) })
	for i, h := range got {
		if h != 1 {
			t.Fatalf("parallelFor index %d handled %d times", i, h)
		}
	}
}
