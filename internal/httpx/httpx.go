// Package httpx holds the small HTTP conventions shared by the
// single-node server (internal/server) and the cluster router
// (internal/router), so the two tiers cannot drift apart:
//
//   - every response body is JSON; errors are {"error": "..."} with a
//     meaningful 4xx/5xx status, never a bare 500 with a text body;
//   - a known path with the wrong method answers 405 with an Allow
//     header instead of falling through to 404;
//   - request bodies are size-capped and reject unknown fields, so a
//     typo'd parameter is a 400, not a silent no-op.
//
// docs/api.md documents the conventions as seen from the wire.
package httpx

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// MethodDispatch routes by HTTP method and answers anything else with 405
// plus an Allow header — the contract HTTP clients and load balancers
// expect, instead of a fall-through 404 that hides the typo'd verb.
func MethodDispatch(methods map[string]http.HandlerFunc) http.Handler {
	allowed := make([]string, 0, len(methods))
	for m := range methods {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, ok := methods[r.Method]
		if !ok {
			w.Header().Set("Allow", allow)
			Error(w, http.StatusMethodNotAllowed,
				"method %s not allowed (allow: %s)", r.Method, allow)
			return
		}
		h(w, r)
	})
}

// StatusRecorder captures the response status for metrics middleware.
type StatusRecorder struct {
	http.ResponseWriter
	Status int
}

// WriteHeader records code before delegating.
func (sr *StatusRecorder) WriteHeader(code int) {
	sr.Status = code
	sr.ResponseWriter.WriteHeader(code)
}

// DecodeBody parses a JSON body with a size cap, rejecting unknown
// fields; it writes the 400 response itself and reports success.
func DecodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, dst interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		Error(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

// WriteJSON writes v as the JSON response body under status.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

// Error writes a structured JSON error body {"error": "..."} under
// status.
func Error(w http.ResponseWriter, status int, format string, args ...interface{}) {
	WriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
