package httpx

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// Wire form of the per-query execution plan (core.Plan) plus the request
// validation both HTTP tiers share. The server and the router accept the
// same JSON body fields and the same URL query parameters, run the same
// Validate, and therefore emit byte-identical 400 bodies for the same bad
// input — the single place that keeps the two tiers from drifting apart
// on what a legal query request is. docs/api.md documents the parameters;
// docs/adaptive.md the semantics of each knob.

const (
	// DefaultK is the neighbor count used when a request omits k, the
	// long-standing single-node default now shared by both tiers.
	DefaultK = 10

	// MaxK caps the per-request neighbor count. Unbounded k would let one
	// request allocate result buffers proportional to an attacker-chosen
	// number; 4096 is far above any sensible shortlist re-rank.
	MaxK = 4096

	// PlanLimit bounds every count field of a wire plan, mirroring
	// core.Plan's own limit (and Options.Validate's ranges).
	PlanLimit = 1 << 20
)

// QueryPlan is the transport representation of a per-query execution
// plan. Zero value = no overrides = the serving tier's default plan. All
// fields are optional on the wire; URL query parameters (?probes=,
// ?recall=, ?rerank=, ?tables=, ?stable_probes=, ?max_candidates=)
// override the matching body fields when both are present.
type QueryPlan struct {
	// TargetRecall is the per-query recall SLO in (0, 1) (?recall=).
	TargetRecall float64 `json:"recall,omitempty"`
	// Probes overrides the multiprobe budget per table (?probes=).
	Probes int `json:"probes,omitempty"`
	// Tables caps how many hash tables are probed (?tables=).
	Tables int `json:"tables,omitempty"`
	// HierMinCandidates overrides the hierarchy bucket-size floor
	// (?hier_min=).
	HierMinCandidates int `json:"hier_min,omitempty"`
	// RerankFactor overrides the SQ8 exact re-rank multiplier (?rerank=).
	RerankFactor int `json:"rerank,omitempty"`
	// StableProbes arms plateau early termination (?stable_probes=).
	StableProbes int `json:"stable_probes,omitempty"`
	// MaxCandidates arms the shortlist-cap early termination
	// (?max_candidates=).
	MaxCandidates int `json:"max_candidates,omitempty"`
}

// IsZero reports whether the plan carries no overrides.
func (p QueryPlan) IsZero() bool { return p == QueryPlan{} }

// ApplyQueryParams folds the recognized URL query parameters into p,
// overriding any body-supplied values. Unparseable values are an error
// (the caller answers 400); parameters it does not recognize are left to
// the caller's own routing (e.g. ?stats=1, ?spill=).
func (p *QueryPlan) ApplyQueryParams(q url.Values) error {
	if v := q.Get("recall"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("query parameter recall=%q is not a number", v)
		}
		p.TargetRecall = f
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"probes", &p.Probes},
		{"tables", &p.Tables},
		{"hier_min", &p.HierMinCandidates},
		{"rerank", &p.RerankFactor},
		{"stable_probes", &p.StableProbes},
		{"max_candidates", &p.MaxCandidates},
	} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("query parameter %s=%q is not an integer", f.name, v)
		}
		*f.dst = n
	}
	return nil
}

// Validate reports whether every plan field is in range, mirroring
// core.Plan.Validate so a plan that passes here is accepted verbatim by
// the index. Both tiers run it and 400 on error, so the error text is the
// wire contract.
func (p QueryPlan) Validate() error {
	switch {
	case p.TargetRecall < 0 || p.TargetRecall >= 1:
		return fmt.Errorf("recall %g outside [0, 1)", p.TargetRecall)
	case p.Probes < 0 || p.Probes > PlanLimit:
		return fmt.Errorf("probes %d out of range [0, %d]", p.Probes, PlanLimit)
	case p.Tables < 0 || p.Tables > PlanLimit:
		return fmt.Errorf("tables %d out of range [0, %d]", p.Tables, PlanLimit)
	case p.HierMinCandidates < 0 || p.HierMinCandidates > PlanLimit:
		return fmt.Errorf("hier_min %d out of range [0, %d]", p.HierMinCandidates, PlanLimit)
	case p.RerankFactor < 0 || p.RerankFactor > PlanLimit:
		return fmt.Errorf("rerank %d out of range [0, %d]", p.RerankFactor, PlanLimit)
	case p.StableProbes < 0 || p.StableProbes > PlanLimit:
		return fmt.Errorf("stable_probes %d out of range [0, %d]", p.StableProbes, PlanLimit)
	case p.MaxCandidates < 0 || p.MaxCandidates > PlanLimit:
		return fmt.Errorf("max_candidates %d out of range [0, %d]", p.MaxCandidates, PlanLimit)
	}
	return nil
}

// NormalizeK is the shared k policy: 0 means "use the default", negative
// or absurdly large k is a client error. Historically the single-node
// server silently defaulted any k <= 0 to 10 while the router rejected
// k < 1 — NormalizeK makes both tiers answer identically.
func NormalizeK(k int) (int, error) {
	switch {
	case k == 0:
		return DefaultK, nil
	case k < 0:
		return 0, fmt.Errorf("k %d must be positive", k)
	case k > MaxK:
		return 0, fmt.Errorf("k %d exceeds maximum %d", k, MaxK)
	}
	return k, nil
}

// DecodePlanRequest is the shared validation pipeline both tiers run on a
// query request after decoding its body: normalize k, fold the URL query
// parameters into wp, validate the result. On any failure it writes the
// 400 itself (structured {"error": ...} body) and reports false — since
// the server and the router both funnel through here, the same bad
// request draws byte-identical error bodies from either tier.
func DecodePlanRequest(w http.ResponseWriter, r *http.Request, k int, wp *QueryPlan) (int, bool) {
	k, err := NormalizeK(k)
	if err != nil {
		Error(w, http.StatusBadRequest, "%v", err)
		return 0, false
	}
	if err := wp.ApplyQueryParams(r.URL.Query()); err != nil {
		Error(w, http.StatusBadRequest, "%v", err)
		return 0, false
	}
	if err := wp.Validate(); err != nil {
		Error(w, http.StatusBadRequest, "%v", err)
		return 0, false
	}
	return k, true
}

// WantStats reports whether the request opted into per-query PlanStats in
// the response (?stats=1, or any truthy value strconv recognizes).
func WantStats(q url.Values) bool {
	v := q.Get("stats")
	if v == "" {
		return false
	}
	b, err := strconv.ParseBool(v)
	return err == nil && b
}
