package httpx

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func TestApplyQueryParams(t *testing.T) {
	cases := []struct {
		name    string
		body    QueryPlan // as if decoded from the JSON body
		query   string
		want    QueryPlan
		wantErr string
	}{
		{name: "empty", query: "", want: QueryPlan{}},
		{
			name:  "all params",
			query: "recall=0.9&probes=8&tables=4&hier_min=20&rerank=6&stable_probes=16&max_candidates=1000",
			want: QueryPlan{
				TargetRecall: 0.9, Probes: 8, Tables: 4, HierMinCandidates: 20,
				RerankFactor: 6, StableProbes: 16, MaxCandidates: 1000,
			},
		},
		{
			name:  "url overrides body",
			body:  QueryPlan{TargetRecall: 0.5, Probes: 2, Tables: 9},
			query: "recall=0.9&probes=8",
			want:  QueryPlan{TargetRecall: 0.9, Probes: 8, Tables: 9},
		},
		{
			name:  "unrecognized params ignored",
			query: "stats=1&spill=3&k=5",
			want:  QueryPlan{},
		},
		{name: "garbage recall", query: "recall=high", wantErr: "recall"},
		{name: "garbage probes", query: "probes=many", wantErr: "probes"},
		{name: "float tables", query: "tables=1.5", wantErr: "tables"},
		{name: "garbage stable_probes", query: "stable_probes=x", wantErr: "stable_probes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			p := tc.body
			err = p.ApplyQueryParams(vals)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ApplyQueryParams(%q) = %v, want error mentioning %q", tc.query, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ApplyQueryParams(%q): %v", tc.query, err)
			}
			if p != tc.want {
				t.Fatalf("ApplyQueryParams(%q) = %+v, want %+v", tc.query, p, tc.want)
			}
		})
	}
}

func TestQueryPlanValidate(t *testing.T) {
	big := PlanLimit + 1
	cases := []struct {
		p    QueryPlan
		want string // "" = valid
	}{
		{QueryPlan{}, ""},
		{QueryPlan{TargetRecall: 0.99, Probes: 8, Tables: 4, HierMinCandidates: 1, RerankFactor: 1, StableProbes: 1, MaxCandidates: 1}, ""},
		{QueryPlan{TargetRecall: 1}, "recall"},
		{QueryPlan{TargetRecall: -0.5}, "recall"},
		{QueryPlan{Probes: -1}, "probes"},
		{QueryPlan{Probes: big}, "probes"},
		{QueryPlan{Tables: -1}, "tables"},
		{QueryPlan{HierMinCandidates: big}, "hier_min"},
		{QueryPlan{RerankFactor: -1}, "rerank"},
		{QueryPlan{StableProbes: big}, "stable_probes"},
		{QueryPlan{MaxCandidates: -1}, "max_candidates"},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", tc.p, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want error mentioning %q", tc.p, err, tc.want)
		}
	}
}

func TestNormalizeK(t *testing.T) {
	cases := []struct {
		k, want int
		wantErr bool
	}{
		{0, DefaultK, false},
		{1, 1, false},
		{MaxK, MaxK, false},
		{-1, 0, true},
		{MaxK + 1, 0, true},
	}
	for _, tc := range cases {
		got, err := NormalizeK(tc.k)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("NormalizeK(%d) = (%d, %v), want (%d, err=%v)", tc.k, got, err, tc.want, tc.wantErr)
		}
	}
}

// TestDecodePlanRequestWrites400 pins the shared pipeline's error
// behavior: any invalid input draws a structured {"error": ...} 400 with
// the offending value echoed, which both tiers then share verbatim.
func TestDecodePlanRequestWrites400(t *testing.T) {
	cases := []struct {
		name   string
		k      int
		target string
		want   string
	}{
		{"bad k", -3, "/query", "k -3"},
		{"huge k", MaxK + 1, "/query", "exceeds maximum"},
		{"garbage param", 5, "/query?probes=lots", "probes"},
		{"out of range param", 5, "/query?recall=2", "recall 2 outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			r := httptest.NewRequest("POST", tc.target, nil)
			var p QueryPlan
			if _, ok := DecodePlanRequest(rec, r, tc.k, &p); ok {
				t.Fatal("DecodePlanRequest accepted an invalid request")
			}
			if rec.Code != 400 {
				t.Fatalf("status = %d, want 400", rec.Code)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("400 body is not JSON: %v (%q)", err, rec.Body.String())
			}
			if !strings.Contains(body.Error, tc.want) {
				t.Fatalf("400 error = %q, want mention of %q", body.Error, tc.want)
			}
		})
	}

	// The happy path folds URL params over the body plan and returns the
	// normalized k.
	rec := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/query?recall=0.9&probes=8", nil)
	p := QueryPlan{Probes: 2, Tables: 3}
	k, ok := DecodePlanRequest(rec, r, 0, &p)
	if !ok || k != DefaultK {
		t.Fatalf("DecodePlanRequest = (%d, %v), want (%d, true)", k, ok, DefaultK)
	}
	if want := (QueryPlan{TargetRecall: 0.9, Probes: 8, Tables: 3}); p != want {
		t.Fatalf("plan = %+v, want %+v", p, want)
	}
}

func TestWantStats(t *testing.T) {
	cases := []struct {
		query string
		want  bool
	}{
		{"", false},
		{"stats=1", true},
		{"stats=true", true},
		{"stats=0", false},
		{"stats=false", false},
		{"stats=yes", false}, // not a strconv bool: treated as off, not an error
	}
	for _, tc := range cases {
		vals, _ := url.ParseQuery(tc.query)
		if got := WantStats(vals); got != tc.want {
			t.Errorf("WantStats(%q) = %v, want %v", tc.query, got, tc.want)
		}
	}
}
