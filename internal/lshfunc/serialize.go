package lshfunc

import (
	"fmt"

	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

const familyMagic = "lshfunc.Family/1"

// Encode writes the family (directions, offsets, current width) to w.
func (f *Family) Encode(w *wire.Writer) {
	w.Magic(familyMagic)
	w.Int(f.d)
	w.Int(f.m)
	w.Int(f.l)
	w.F64(f.w)
	for t := 0; t < f.l; t++ {
		f.a[t].Encode(w)
		w.F64s(f.bFrac[t])
	}
}

// DecodeFamily reads a family written by Encode.
func DecodeFamily(r *wire.Reader) (*Family, error) {
	r.ExpectMagic(familyMagic)
	f := &Family{
		d: r.Int(),
		m: r.Int(),
		l: r.Int(),
		w: r.F64(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if f.d <= 0 || f.m <= 0 || f.l <= 0 || f.w <= 0 || f.l > 1<<20 {
		return nil, fmt.Errorf("lshfunc: decoded family shape d=%d m=%d l=%d w=%g implausible", f.d, f.m, f.l, f.w)
	}
	f.a = make([]*vec.Matrix, f.l)
	f.bFrac = make([][]float64, f.l)
	for t := 0; t < f.l; t++ {
		a, err := vec.DecodeMatrix(r)
		if err != nil {
			return nil, fmt.Errorf("lshfunc: table %d directions: %w", t, err)
		}
		if a.N != f.m || a.D != f.d {
			return nil, fmt.Errorf("lshfunc: table %d directions shaped %dx%d, want %dx%d", t, a.N, a.D, f.m, f.d)
		}
		f.a[t] = a
		f.bFrac[t] = r.F64s()
		if len(f.bFrac[t]) != f.m {
			return nil, fmt.Errorf("lshfunc: table %d has %d offsets, want %d", t, len(f.bFrac[t]), f.m)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return f, nil
}
