package lshfunc

import (
	"fmt"

	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

const (
	familyMagic   = "lshfunc.Family/1"
	sketcherMagic = "lshfunc.Sketcher/1"
	samplerMagic  = "lshfunc.BitSampler/1"
)

// Encode writes the sketcher (hyperplane normals) to w.
func (s *Sketcher) Encode(w *wire.Writer) {
	w.Magic(sketcherMagic)
	w.Int(s.d)
	w.Int(s.bits)
	s.planes.Encode(w)
}

// DecodeSketcher reads a sketcher written by Encode.
func DecodeSketcher(r *wire.Reader) (*Sketcher, error) {
	r.ExpectMagic(sketcherMagic)
	s := &Sketcher{d: r.Int(), bits: r.Int()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if s.d <= 0 || s.bits <= 0 || s.bits > 1<<20 {
		return nil, fmt.Errorf("lshfunc: decoded sketcher shape d=%d bits=%d implausible", s.d, s.bits)
	}
	p, err := vec.DecodeMatrix(r)
	if err != nil {
		return nil, fmt.Errorf("lshfunc: sketcher planes: %w", err)
	}
	if p.N != s.bits || p.D != s.d {
		return nil, fmt.Errorf("lshfunc: sketcher planes shaped %dx%d, want %dx%d", p.N, p.D, s.bits, s.d)
	}
	s.planes = p
	return s, nil
}

// Encode writes the bit sampler (per-table positions) to w.
func (bs *BitSampler) Encode(w *wire.Writer) {
	w.Magic(samplerMagic)
	w.Int(bs.bits)
	w.Int(bs.m)
	w.Int(bs.l)
	for t := 0; t < bs.l; t++ {
		w.Ints(bs.pos[t])
	}
}

// DecodeBitSampler reads a bit sampler written by Encode.
func DecodeBitSampler(r *wire.Reader) (*BitSampler, error) {
	r.ExpectMagic(samplerMagic)
	bs := &BitSampler{bits: r.Int(), m: r.Int(), l: r.Int()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if bs.bits <= 0 || bs.m <= 0 || bs.l <= 0 || bs.m > bs.bits || bs.l > 1<<20 {
		return nil, fmt.Errorf("lshfunc: decoded sampler shape bits=%d m=%d l=%d implausible", bs.bits, bs.m, bs.l)
	}
	bs.pos = make([][]int, bs.l)
	for t := 0; t < bs.l; t++ {
		pt := r.Ints()
		if len(pt) != bs.m {
			return nil, fmt.Errorf("lshfunc: sampler table %d has %d positions, want %d", t, len(pt), bs.m)
		}
		for _, p := range pt {
			if p < 0 || p >= bs.bits {
				return nil, fmt.Errorf("lshfunc: sampler table %d position %d outside %d-bit sketch", t, p, bs.bits)
			}
		}
		bs.pos[t] = pt
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return bs, nil
}

// Encode writes the family (directions, offsets, current width) to w.
func (f *Family) Encode(w *wire.Writer) {
	w.Magic(familyMagic)
	w.Int(f.d)
	w.Int(f.m)
	w.Int(f.l)
	w.F64(f.w)
	for t := 0; t < f.l; t++ {
		f.a[t].Encode(w)
		w.F64s(f.bFrac[t])
	}
}

// DecodeFamily reads a family written by Encode.
func DecodeFamily(r *wire.Reader) (*Family, error) {
	r.ExpectMagic(familyMagic)
	f := &Family{
		d: r.Int(),
		m: r.Int(),
		l: r.Int(),
		w: r.F64(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if f.d <= 0 || f.m <= 0 || f.l <= 0 || f.w <= 0 || f.l > 1<<20 {
		return nil, fmt.Errorf("lshfunc: decoded family shape d=%d m=%d l=%d w=%g implausible", f.d, f.m, f.l, f.w)
	}
	f.a = make([]*vec.Matrix, f.l)
	f.bFrac = make([][]float64, f.l)
	for t := 0; t < f.l; t++ {
		a, err := vec.DecodeMatrix(r)
		if err != nil {
			return nil, fmt.Errorf("lshfunc: table %d directions: %w", t, err)
		}
		if a.N != f.m || a.D != f.d {
			return nil, fmt.Errorf("lshfunc: table %d directions shaped %dx%d, want %dx%d", t, a.N, a.D, f.m, f.d)
		}
		f.a[t] = a
		f.bFrac[t] = r.F64s()
		if len(f.bFrac[t]) != f.m {
			return nil, fmt.Errorf("lshfunc: table %d has %d offsets, want %d", t, len(f.bFrac[t]), f.m)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return f, nil
}
