package lshfunc

// Binary (Hamming) LSH. Two pieces:
//
//   - Sketcher: hyperplane-sign binarization of float inputs. Each of the
//     Bits output bits is sign(a_i·v) for an i.i.d. Gaussian hyperplane
//     a_i (Charikar's SimHash family), so existing fvecs datasets sketch
//     into packed Hamming space. The signed projection a_i·v is also the
//     bit's *margin*: its magnitude says how close v sits to hyperplane i,
//     which is what the query-directed multiprobe path flips on (the
//     Dynamic Query Modification idea — flip the least-confident bits
//     first).
//
//   - BitSampler: the classical bit-sampling LSH family over the packed
//     sketch. Table t's key is M bits drawn without replacement from the
//     Bits sketch positions, packed into (M+7)/8 key bytes. Bit sampling
//     is provably locality sensitive for Hamming distance, and the packed
//     byte keys feed the existing string-keyed lshtable unchanged.
//
// Both are drawn from a splittable RNG so a serialized index replays
// bit-identically, matching the float Family's determinism contract.

import (
	"fmt"

	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Sketcher binarizes d-dimensional float vectors into packed bits-bit
// sketches by hyperplane signs.
type Sketcher struct {
	d      int
	bits   int
	planes *vec.Matrix // bits × d Gaussian hyperplane normals
}

// NewSketcher draws bits Gaussian hyperplanes over dimension d.
func NewSketcher(d, bitCount int, rng *xrand.RNG) (*Sketcher, error) {
	if d <= 0 {
		return nil, fmt.Errorf("lshfunc: sketcher d = %d, must be positive", d)
	}
	if bitCount <= 0 {
		return nil, fmt.Errorf("lshfunc: sketcher bits = %d, must be positive", bitCount)
	}
	p := vec.NewMatrix(bitCount, d)
	for i := 0; i < bitCount; i++ {
		copy(p.Row(i), rng.GaussianVec(d))
	}
	return &Sketcher{d: d, bits: bitCount, planes: p}, nil
}

// D returns the input dimensionality.
func (s *Sketcher) D() int { return s.d }

// Bits returns the sketch width in bits.
func (s *Sketcher) Bits() int { return s.bits }

// Words returns the packed sketch width in uint64 words.
func (s *Sketcher) Words() int { return (s.bits + 63) / 64 }

// Sketch writes the packed sketch of v into out (len out == Words()).
// Bit i is 1 iff a_i·v >= 0; ties on the hyperplane go to 1 so the map is
// total and deterministic.
func (s *Sketcher) Sketch(v []float32, out []uint64) {
	s.SketchWithMargins(v, out, nil)
}

// SketchWithMargins is Sketch plus, when marg is non-nil (len == Bits()),
// the raw signed projections a_i·v — the per-bit confidence the multiprobe
// path orders its flips by.
func (s *Sketcher) SketchWithMargins(v []float32, out []uint64, marg []float64) {
	if len(v) != s.d {
		panic(fmt.Sprintf("lshfunc: Sketch got dim %d, want %d", len(v), s.d))
	}
	if len(out) != s.Words() {
		panic(fmt.Sprintf("lshfunc: Sketch out len %d, want %d", len(out), s.Words()))
	}
	if marg != nil && len(marg) != s.bits {
		panic(fmt.Sprintf("lshfunc: Sketch margins len %d, want %d", len(marg), s.bits))
	}
	for w := range out {
		out[w] = 0
	}
	for i := 0; i < s.bits; i++ {
		p := vec.Dot(s.planes.Row(i), v)
		if marg != nil {
			marg[i] = p
		}
		if p >= 0 {
			out[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// SketchAll sketches every row of m into a fresh packed binary matrix.
func (s *Sketcher) SketchAll(m *vec.Matrix) *vec.BinaryMatrix {
	if m.D != s.d {
		panic(fmt.Sprintf("lshfunc: SketchAll got dim %d, want %d", m.D, s.d))
	}
	bm := vec.NewBinaryMatrix(m.N, s.bits)
	for i := 0; i < m.N; i++ {
		s.Sketch(m.Row(i), bm.Row(i))
	}
	return bm
}

// BitSampler is the bit-sampling LSH family: L tables, each keyed by M
// sketch bit positions sampled without replacement.
type BitSampler struct {
	bits int
	m    int
	l    int
	pos  [][]int // per table: M sampled positions in [0,bits)
}

// NewBitSampler draws L tables of M positions each from a bits-wide sketch.
func NewBitSampler(bitCount, m, l int, rng *xrand.RNG) (*BitSampler, error) {
	switch {
	case bitCount <= 0:
		return nil, fmt.Errorf("lshfunc: sampler bits = %d, must be positive", bitCount)
	case m <= 0:
		return nil, fmt.Errorf("lshfunc: sampler M = %d, must be positive", m)
	case l <= 0:
		return nil, fmt.Errorf("lshfunc: sampler L = %d, must be positive", l)
	case m > bitCount:
		return nil, fmt.Errorf("lshfunc: sampler M = %d exceeds sketch width %d bits", m, bitCount)
	}
	bs := &BitSampler{bits: bitCount, m: m, l: l, pos: make([][]int, l)}
	for t := 0; t < l; t++ {
		bs.pos[t] = rng.Split(int64(t)).Sample(bitCount, m)
	}
	return bs, nil
}

// Bits returns the sketch width the sampler indexes into.
func (bs *BitSampler) Bits() int { return bs.bits }

// M returns the per-table key length in bits.
func (bs *BitSampler) M() int { return bs.m }

// L returns the number of tables.
func (bs *BitSampler) L() int { return bs.l }

// KeyLen returns the packed key length in bytes.
func (bs *BitSampler) KeyLen() int { return (bs.m + 7) / 8 }

// Positions returns table t's sampled sketch positions (shared storage;
// callers must not mutate). Key bit j of table t is sketch bit
// Positions(t)[j], so a probe that flips key bit j is un-confident exactly
// in sketch position Positions(t)[j].
func (bs *BitSampler) Positions(t int) []int {
	if t < 0 || t >= bs.l {
		panic(fmt.Sprintf("lshfunc: Positions table %d of %d", t, bs.l))
	}
	return bs.pos[t]
}

// AppendKey appends table t's packed key for the given sketch to dst and
// returns the extended slice. Key bit j mirrors sketch bit pos[t][j];
// unused high bits of the last key byte are zero.
func (bs *BitSampler) AppendKey(dst []byte, t int, sketch []uint64) []byte {
	if t < 0 || t >= bs.l {
		panic(fmt.Sprintf("lshfunc: AppendKey table %d of %d", t, bs.l))
	}
	if len(sketch)*64 < bs.bits {
		panic(fmt.Sprintf("lshfunc: AppendKey sketch %d words too short for %d bits", len(sketch), bs.bits))
	}
	base := len(dst)
	for i := 0; i < bs.KeyLen(); i++ {
		dst = append(dst, 0)
	}
	for j, p := range bs.pos[t] {
		if sketch[p>>6]&(1<<(uint(p)&63)) != 0 {
			dst[base+(j>>3)] |= 1 << (uint(j) & 7)
		}
	}
	return dst
}
