package lshfunc

import (
	"bytes"
	"math"
	"testing"

	"bilsh/internal/vec"
	"bilsh/internal/wire"
	"bilsh/internal/xrand"
)

func TestSketcherSignsAndMargins(t *testing.T) {
	sk, err := NewSketcher(8, 70, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if sk.Words() != 2 {
		t.Fatalf("Words = %d, want 2", sk.Words())
	}
	v := xrand.New(2).GaussianVec(8)
	out := make([]uint64, sk.Words())
	marg := make([]float64, sk.Bits())
	sk.SketchWithMargins(v, out, marg)
	for i := 0; i < sk.Bits(); i++ {
		dot := vec.Dot(sk.planes.Row(i), v)
		if dot != marg[i] {
			t.Fatalf("bit %d margin %g, want %g", i, marg[i], dot)
		}
		bit := out[i>>6]&(1<<(uint(i)&63)) != 0
		if bit != (dot >= 0) {
			t.Fatalf("bit %d = %v, margin %g", i, bit, dot)
		}
	}
	// Pad bits beyond Bits stay zero.
	if out[1]>>(70-64) != 0 {
		t.Fatalf("pad bits set: %#x", out[1])
	}

	// Negating the vector flips every bit with a nonzero margin.
	neg := make([]float32, len(v))
	for i := range v {
		neg[i] = -v[i]
	}
	out2 := make([]uint64, sk.Words())
	sk.Sketch(neg, out2)
	for i := 0; i < sk.Bits(); i++ {
		if marg[i] == 0 {
			continue
		}
		a := out[i>>6]&(1<<(uint(i)&63)) != 0
		b := out2[i>>6]&(1<<(uint(i)&63)) != 0
		if a == b {
			t.Fatalf("bit %d did not flip under negation (margin %g)", i, marg[i])
		}
	}
}

// TestSketcherLocality checks the SimHash property on aggregate: closer
// vectors get closer sketches.
func TestSketcherLocality(t *testing.T) {
	rng := xrand.New(5)
	sk, err := NewSketcher(16, 256, rng.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	var nearSum, farSum int
	const trials = 50
	for i := 0; i < trials; i++ {
		base := rng.GaussianVec(16)
		near := make([]float32, 16)
		far := rng.GaussianVec(16)
		for j := range base {
			near[j] = base[j] + 0.05*float32(rng.NormFloat64())
		}
		sb := make([]uint64, sk.Words())
		snr := make([]uint64, sk.Words())
		sf := make([]uint64, sk.Words())
		sk.Sketch(base, sb)
		sk.Sketch(near, snr)
		sk.Sketch(far, sf)
		nearSum += vec.Hamming(sb, snr)
		farSum += vec.Hamming(sb, sf)
	}
	if nearSum >= farSum {
		t.Fatalf("near perturbations averaged Hamming %d, unrelated vectors %d; sketch is not locality sensitive", nearSum/trials, farSum/trials)
	}
}

func TestBitSamplerKeys(t *testing.T) {
	bs, err := NewBitSampler(128, 10, 4, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if bs.KeyLen() != 2 {
		t.Fatalf("KeyLen = %d, want 2", bs.KeyLen())
	}
	sketch := []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef}
	for tab := 0; tab < bs.L(); tab++ {
		pos := bs.Positions(tab)
		if len(pos) != bs.M() {
			t.Fatalf("table %d has %d positions, want %d", tab, len(pos), bs.M())
		}
		seen := map[int]bool{}
		for _, p := range pos {
			if p < 0 || p >= bs.Bits() || seen[p] {
				t.Fatalf("table %d position %d out of range or duplicated", tab, p)
			}
			seen[p] = true
		}
		key := bs.AppendKey(nil, tab, sketch)
		if len(key) != bs.KeyLen() {
			t.Fatalf("key length %d, want %d", len(key), bs.KeyLen())
		}
		for j, p := range pos {
			want := sketch[p>>6]&(1<<(uint(p)&63)) != 0
			got := key[j>>3]&(1<<(uint(j)&7)) != 0
			if got != want {
				t.Fatalf("table %d key bit %d = %v, want sketch bit %d = %v", tab, j, got, p, want)
			}
		}
	}
	// Determinism: the same seed redraws the same positions.
	bs2, _ := NewBitSampler(128, 10, 4, xrand.New(3))
	for tab := 0; tab < bs.L(); tab++ {
		p1, p2 := bs.Positions(tab), bs2.Positions(tab)
		for j := range p1 {
			if p1[j] != p2[j] {
				t.Fatalf("table %d not deterministic", tab)
			}
		}
	}
}

func TestBitSamplerValidation(t *testing.T) {
	if _, err := NewBitSampler(8, 9, 1, xrand.New(1)); err == nil {
		t.Fatal("accepted M > Bits")
	}
	if _, err := NewBitSampler(0, 1, 1, xrand.New(1)); err == nil {
		t.Fatal("accepted zero Bits")
	}
}

func TestSketcherRoundTrip(t *testing.T) {
	sk, err := NewSketcher(12, 96, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	sk.Encode(ww)
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSketcher(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.D() != sk.D() || got.Bits() != sk.Bits() {
		t.Fatalf("shape d=%d bits=%d, want d=%d bits=%d", got.D(), got.Bits(), sk.D(), sk.Bits())
	}
	v := xrand.New(9).GaussianVec(12)
	a, b := make([]uint64, sk.Words()), make([]uint64, got.Words())
	ma, mb := make([]float64, sk.Bits()), make([]float64, got.Bits())
	sk.SketchWithMargins(v, a, ma)
	got.SketchWithMargins(v, b, mb)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decoded sketcher produces different sketch word %d", i)
		}
	}
	for i := range ma {
		if math.Float64bits(ma[i]) != math.Float64bits(mb[i]) {
			t.Fatalf("decoded sketcher margin %d differs", i)
		}
	}
}

func TestBitSamplerRoundTrip(t *testing.T) {
	bs, err := NewBitSampler(256, 16, 6, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	bs.Encode(ww)
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBitSampler(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bits() != bs.Bits() || got.M() != bs.M() || got.L() != bs.L() {
		t.Fatal("decoded sampler shape differs")
	}
	sketch := []uint64{42, ^uint64(0), 7, 0}
	for tab := 0; tab < bs.L(); tab++ {
		a := bs.AppendKey(nil, tab, sketch)
		b := got.AppendKey(nil, tab, sketch)
		if !bytes.Equal(a, b) {
			t.Fatalf("table %d keys differ after round trip", tab)
		}
	}
}

func TestDecodeBitSamplerRejectsOutOfRangePosition(t *testing.T) {
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	ww.Magic(samplerMagic)
	ww.Int(64) // bits
	ww.Int(2)  // m
	ww.Int(1)  // l
	ww.Ints([]int{3, 64})
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBitSampler(wire.NewReader(&buf)); err == nil {
		t.Fatal("decoder accepted a position outside the sketch width")
	}
}
