package lshfunc

import (
	"math"
	"testing"
	"testing/quick"

	"bilsh/internal/xrand"
)

func TestValidate(t *testing.T) {
	good := Params{M: 8, L: 10, W: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Params{{M: 0, L: 1, W: 1}, {M: 1, L: 0, W: 1}, {M: 1, L: 1, W: 0}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("params %+v must be invalid", bad)
		}
	}
	if _, err := NewFamily(0, good, xrand.New(1)); err == nil {
		t.Fatal("d=0 must be rejected")
	}
}

func TestProjectShapeAndDeterminism(t *testing.T) {
	p := Params{M: 8, L: 3, W: 2}
	f1, err := NewFamily(16, p, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFamily(16, p, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	v := xrand.New(7).GaussianVec(16)
	for tab := 0; tab < 3; tab++ {
		a := f1.Projected(tab, v)
		b := f2.Projected(tab, v)
		if len(a) != 8 {
			t.Fatalf("projection len = %d", len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("same seed must give identical projections")
			}
		}
	}
}

func TestTablesIndependent(t *testing.T) {
	f, err := NewFamily(8, Params{M: 4, L: 2, W: 1}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	v := xrand.New(4).GaussianVec(8)
	a := f.Projected(0, v)
	b := f.Projected(1, v)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different tables produced identical projections")
	}
}

// Property: locality sensitivity — scaled W shrinks projected distances
// proportionally: proj_W(u)-proj_W(v) = (a·(u-v))/W.
func TestProjectionLinearInW(t *testing.T) {
	f, err := NewFamily(6, Params{M: 4, L: 1, W: 1}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g := func(seed int64) bool {
		rng := xrand.New(seed)
		u := rng.GaussianVec(6)
		v := rng.GaussianVec(6)
		if err := f.SetW(1); err != nil {
			return false
		}
		d1 := diff(f.Projected(0, u), f.Projected(0, v))
		if err := f.SetW(4); err != nil {
			return false
		}
		d4 := diff(f.Projected(0, u), f.Projected(0, v))
		for i := range d1 {
			if math.Abs(d1[i]-4*d4[i]) > 1e-9*(1+math.Abs(d1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func diff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Property: close points collide more than far points under floor
// quantization — the defining LSH property, checked statistically.
func TestLocalitySensitivity(t *testing.T) {
	rng := xrand.New(10)
	f, err := NewFamily(12, Params{M: 1, L: 1, W: 4}, rng.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	collide := func(u, v []float32) bool {
		return math.Floor(f.Projected(0, u)[0]) == math.Floor(f.Projected(0, v)[0])
	}
	var closeHits, farHits int
	const trials = 2000
	for i := 0; i < trials; i++ {
		base := rng.GaussianVec(12)
		near := make([]float32, 12)
		far := make([]float32, 12)
		for j := range base {
			near[j] = base[j] + float32(rng.NormFloat64()*0.05)
			far[j] = base[j] + float32(rng.NormFloat64()*3)
		}
		if collide(base, near) {
			closeHits++
		}
		if collide(base, far) {
			farHits++
		}
	}
	if closeHits <= farHits {
		t.Fatalf("no locality: close=%d far=%d collisions", closeHits, farHits)
	}
	if float64(closeHits)/trials < 0.8 {
		t.Fatalf("close collision rate %.2f too low for W=4", float64(closeHits)/trials)
	}
}

func TestSetWValidation(t *testing.T) {
	f, err := NewFamily(4, Params{M: 2, L: 1, W: 1}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetW(-1); err == nil {
		t.Fatal("negative W must be rejected")
	}
	if err := f.SetW(2.5); err != nil || f.W() != 2.5 {
		t.Fatal("valid SetW failed")
	}
}

func TestAccessors(t *testing.T) {
	f, err := NewFamily(9, Params{M: 3, L: 5, W: 1.5}, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if f.D() != 9 || f.M() != 3 || f.L() != 5 || f.W() != 1.5 {
		t.Fatalf("accessors: %d %d %d %v", f.D(), f.M(), f.L(), f.W())
	}
}

func TestProjectPanicsOnMisuse(t *testing.T) {
	f, _ := NewFamily(4, Params{M: 2, L: 1, W: 1}, xrand.New(13))
	for _, fn := range []func(){
		func() { f.Project(5, make([]float32, 4), make([]float64, 2)) },
		func() { f.Project(0, make([]float32, 3), make([]float64, 2)) },
		func() { f.Project(0, make([]float32, 4), make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
