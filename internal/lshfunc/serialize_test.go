package lshfunc

import (
	"bytes"
	"testing"

	"bilsh/internal/wire"
	"bilsh/internal/xrand"
)

func TestFamilyRoundTrip(t *testing.T) {
	orig, err := NewFamily(12, Params{M: 6, L: 4, W: 2.5}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.SetW(3.75); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	orig.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFamily(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.D() != 12 || got.M() != 6 || got.L() != 4 || got.W() != 3.75 {
		t.Fatalf("metadata: d=%d m=%d l=%d w=%v", got.D(), got.M(), got.L(), got.W())
	}
	v := xrand.New(2).GaussianVec(12)
	for tab := 0; tab < 4; tab++ {
		a := orig.Projected(tab, v)
		b := got.Projected(tab, v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("table %d projection differs after round trip", tab)
			}
		}
	}
}

func TestDecodeFamilyRejectsCorruptShape(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("lshfunc.Family/1")
	w.Int(0) // d = 0: invalid
	w.Int(4)
	w.Int(2)
	w.F64(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFamily(wire.NewReader(&buf)); err == nil {
		t.Fatal("d=0 must be rejected")
	}
}

func TestDecodeFamilyRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("something.else/9")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFamily(wire.NewReader(&buf)); err == nil {
		t.Fatal("wrong magic must be rejected")
	}
}

func TestDecodeFamilyRejectsShapeMismatch(t *testing.T) {
	// Family claiming M=6 but carrying a 4-row direction matrix.
	orig, err := NewFamily(8, Params{M: 4, L: 1, W: 1}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("lshfunc.Family/1")
	w.Int(8)
	w.Int(6) // lie about M
	w.Int(1)
	w.F64(1)
	orig.a[0].Encode(w)
	w.F64s(orig.bFrac[0])
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFamily(wire.NewReader(&buf)); err == nil {
		t.Fatal("direction shape mismatch must be rejected")
	}
}
