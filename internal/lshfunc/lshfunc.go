// Package lshfunc implements the p-stable (Gaussian, l2) locality
// sensitive hash functions of Datar et al. used by the paper (Eq. 2):
//
//	h_i(v) = ⌊(a_i·v + b_i) / W⌋
//
// A Family holds the functions for L independent tables of M functions
// each. The family produces *unquantized* projected values
// (a_i·v + b_i)/W; quantization (floor for Z^M, DECODE for E8) is the
// lattice's job, which is what lets the same projections feed both
// quantizers, exactly as the paper compares them.
//
// The offsets b_i are stored as fractions of W so the bucket width can be
// swept (the experiments' x-axis) without redrawing the projections —
// matching the paper's protocol where W grows gradually for fixed random
// directions within one run.
package lshfunc

import (
	"fmt"

	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Params are the LSH hyperparameters of the paper: code length M, table
// count L, bucket width W.
type Params struct {
	M int
	L int
	W float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.M <= 0:
		return fmt.Errorf("lshfunc: M = %d, must be positive", p.M)
	case p.L <= 0:
		return fmt.Errorf("lshfunc: L = %d, must be positive", p.L)
	case p.W <= 0:
		return fmt.Errorf("lshfunc: W = %g, must be positive", p.W)
	}
	return nil
}

// Family is a set of L×M p-stable hash functions over dimension D vectors.
type Family struct {
	d     int
	m     int
	l     int
	w     float64
	a     []*vec.Matrix // per table: M×D Gaussian directions
	bFrac [][]float64   // per table: M offsets as fractions of W
}

// NewFamily draws a fresh family for d-dimensional data.
func NewFamily(d int, p Params, rng *xrand.RNG) (*Family, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d <= 0 {
		return nil, fmt.Errorf("lshfunc: d = %d, must be positive", d)
	}
	f := &Family{d: d, m: p.M, l: p.L, w: p.W,
		a: make([]*vec.Matrix, p.L), bFrac: make([][]float64, p.L)}
	for t := 0; t < p.L; t++ {
		g := rng.Split(int64(t))
		at := vec.NewMatrix(p.M, d)
		for i := 0; i < p.M; i++ {
			copy(at.Row(i), g.GaussianVec(d))
		}
		f.a[t] = at
		bt := make([]float64, p.M)
		for i := range bt {
			bt[i] = g.Float64()
		}
		f.bFrac[t] = bt
	}
	return f, nil
}

// D returns the data dimensionality.
func (f *Family) D() int { return f.d }

// M returns the per-table code length.
func (f *Family) M() int { return f.m }

// L returns the number of tables.
func (f *Family) L() int { return f.l }

// W returns the current bucket width.
func (f *Family) W() float64 { return f.w }

// SetW rescales the bucket width, keeping the projection directions fixed.
func (f *Family) SetW(w float64) error {
	if w <= 0 {
		return fmt.Errorf("lshfunc: SetW(%g): width must be positive", w)
	}
	f.w = w
	return nil
}

// Project writes the unquantized hash values of v under table t into out
// (len out == M): out[i] = (a_i·v + b_i)/W with b_i = bFrac_i·W, i.e.
// out[i] = (a_i·v)/W + bFrac_i.
func (f *Family) Project(t int, v []float32, out []float64) {
	if t < 0 || t >= f.l {
		panic(fmt.Sprintf("lshfunc: Project table %d of %d", t, f.l))
	}
	if len(v) != f.d {
		panic(fmt.Sprintf("lshfunc: Project got dim %d, want %d", len(v), f.d))
	}
	if len(out) != f.m {
		panic(fmt.Sprintf("lshfunc: Project out len %d, want %d", len(out), f.m))
	}
	at := f.a[t]
	bt := f.bFrac[t]
	for i := 0; i < f.m; i++ {
		out[i] = vec.Dot(at.Row(i), v)/f.w + bt[i]
	}
}

// Projected returns a fresh slice with the projection of v under table t.
func (f *Family) Projected(t int, v []float32) []float64 {
	out := make([]float64, f.m)
	f.Project(t, v, out)
	return out
}
