// Package lattice implements the two space quantizers of the paper's
// second level: the integer lattice Z^M (Eq. 2) and the E8 lattice
// (Section IV-B2b), together with the ancestor operations (Eqs. 7–10) that
// the hierarchical LSH tables are built from.
//
// A code is a []int32. For Z^M the entries are the floor-quantized
// projections. For E8 the entries are *doubled* coordinates of the lattice
// point (E8 contains half-integer points, so doubling makes every
// coordinate an exact integer: D8 points have even entries, D8+½ points
// odd entries). Codes are turned into compact map/hash keys with Key.
package lattice

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Lattice is a space quantizer mapping M-dimensional projected values to
// integer codes, with the scaling-based ancestor operation the hierarchy
// needs.
type Lattice interface {
	// Name identifies the quantizer ("ZM" or "E8") in reports.
	Name() string
	// M returns the projected dimension consumed by Decode.
	M() int
	// CodeLen returns the length of codes produced by Decode.
	CodeLen() int
	// Decode quantizes the projected vector y (len == M()) to a code.
	Decode(y []float64) []int32
	// DecodeInto is Decode writing into dst's storage (grown as needed) —
	// the allocation-free form the query hot path uses. The returned slice
	// has length CodeLen and may alias dst.
	DecodeInto(dst []int32, y []float64) []int32
	// Ancestor returns the level-k ancestor of a level-0 code, in the
	// (unscaled for Z^M, doubled for E8) representation produced by
	// Decode. Ancestor(c, 0) is a copy of c.
	Ancestor(c []int32, k int) []int32
	// AncestorInto is Ancestor writing into dst's storage (grown as
	// needed). dst must not alias c.
	AncestorInto(dst, c []int32, k int) []int32
	// Center returns the real-space point (in projected coordinates, i.e.
	// pre-quantization units) represented by a code, used to order probes
	// by distance.
	Center(c []int32) []float64
}

// Key packs a code into a string usable as a map key. The encoding is the
// little-endian byte image of the entries, so it is injective.
func Key(code []int32) string {
	return string(AppendKey(nil, code))
}

// AppendKey appends the byte image of code (the Key encoding) to dst and
// returns the extended slice — the allocation-free form the query hot path
// uses together with byte-keyed bucket lookups.
func AppendKey(dst []byte, code []int32) []byte {
	need := 4 * len(code)
	if n := len(dst) + need; cap(dst) < n {
		grown := make([]byte, len(dst), n)
		copy(grown, dst)
		dst = grown
	}
	for _, c := range code {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c))
	}
	return dst
}

// CompareKeyOrder compares two codes in the lexicographic order of their
// Key byte images (bytes.Compare(AppendKey(nil,a), AppendKey(nil,b)))
// without materializing either key. Comparing the little-endian byte image
// of an entry is comparing its byte-swapped unsigned value.
func CompareKeyOrder(a, b []int32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			av := bits.ReverseBytes32(uint32(a[i]))
			bv := bits.ReverseBytes32(uint32(b[i]))
			if av < bv {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// growCode returns a slice of length n reusing dst's storage when it fits.
func growCode(dst []int32, n int) []int32 {
	if cap(dst) < n {
		return make([]int32, n)
	}
	return dst[:n]
}

// Unkey inverts Key.
func Unkey(key string) []int32 {
	if len(key)%4 != 0 {
		panic(fmt.Sprintf("lattice: Unkey on %d bytes, not a code key", len(key)))
	}
	code := make([]int32, len(key)/4)
	for i := range code {
		code[i] = int32(binary.LittleEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
	return code
}

// ---------------------------------------------------------------------------
// Z^M lattice

// ZM is the classic floor-quantizer lattice of Eq. 2.
type ZM struct{ m int }

// NewZM returns the Z^M quantizer for m projected dimensions.
func NewZM(m int) *ZM {
	if m <= 0 {
		panic(fmt.Sprintf("lattice: NewZM(%d): m must be positive", m))
	}
	return &ZM{m: m}
}

func (z *ZM) Name() string { return "ZM" }
func (z *ZM) M() int       { return z.m }
func (z *ZM) CodeLen() int { return z.m }

// Decode floors every projected coordinate, i.e. h_i = ⌊y_i⌋.
func (z *ZM) Decode(y []float64) []int32 {
	return z.DecodeInto(nil, y)
}

// DecodeInto implements Lattice.
func (z *ZM) DecodeInto(dst []int32, y []float64) []int32 {
	if len(y) != z.m {
		panic(fmt.Sprintf("lattice: ZM.Decode got %d dims, want %d", len(y), z.m))
	}
	dst = growCode(dst, z.m)
	for i, v := range y {
		dst[i] = int32(math.Floor(v))
	}
	return dst
}

// Ancestor implements Eq. 8: H^k(c) = 2^k·⌊c/2^k⌋. The returned code is in
// original-lattice units (scaled back up), so codes of distinct ancestors
// never collide across levels of the same run.
func (z *ZM) Ancestor(c []int32, k int) []int32 {
	return z.AncestorInto(nil, c, k)
}

// AncestorInto implements Lattice.
func (z *ZM) AncestorInto(dst, c []int32, k int) []int32 {
	dst = growCode(dst, len(c))
	copy(dst, c)
	if k <= 0 {
		return dst
	}
	if k > 30 {
		k = 30
	}
	for i, v := range dst {
		dst[i] = floorDivPow2(v, uint(k)) << uint(k)
	}
	return dst
}

// Center returns the cell midpoint c + 0.5 in projected units.
func (z *ZM) Center(c []int32) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = float64(v) + 0.5
	}
	return out
}

// floorDivPow2 computes ⌊v / 2^k⌋ for signed v; Go's >> on signed ints is
// an arithmetic shift, which is exactly floor division by a power of two.
func floorDivPow2(v int32, k uint) int32 { return v >> k }

// ---------------------------------------------------------------------------
// E8 lattice

// E8 quantizes with the Conway–Sloane decoder on ⌈M/8⌉ concatenated E8
// blocks (Section IV-B2b: "If the dimension of the dataset is M > 8, we use
// the combination of ⌈M/8⌉ E8 lattices"). Input dimensions beyond the last
// full block are zero-padded.
type E8 struct {
	m      int // projected dims consumed
	blocks int
}

// NewE8 returns the E8 quantizer for m projected dimensions.
func NewE8(m int) *E8 {
	if m <= 0 {
		panic(fmt.Sprintf("lattice: NewE8(%d): m must be positive", m))
	}
	return &E8{m: m, blocks: (m + 7) / 8}
}

func (e *E8) Name() string { return "E8" }
func (e *E8) M() int       { return e.m }
func (e *E8) CodeLen() int { return 8 * e.blocks }

// Decode maps each 8-dim block to its nearest E8 lattice point and returns
// the doubled-integer representation.
func (e *E8) Decode(y []float64) []int32 {
	return e.DecodeInto(nil, y)
}

// DecodeInto implements Lattice.
func (e *E8) DecodeInto(dst []int32, y []float64) []int32 {
	if len(y) != e.m {
		panic(fmt.Sprintf("lattice: E8.Decode got %d dims, want %d", len(y), e.m))
	}
	out := growCode(dst, e.CodeLen())
	var block [8]float64
	for b := 0; b < e.blocks; b++ {
		for j := 0; j < 8; j++ {
			if i := b*8 + j; i < e.m {
				block[j] = y[i]
			} else {
				block[j] = 0
			}
		}
		p := DecodeE8(block)
		copy(out[b*8:], p[:])
	}
	return out
}

// Ancestor implements Eq. 10: the level-k ancestor is
// 2^k·DECODE(½·DECODE(½·…DECODE(½·c)…)) applied blockwise — k nested
// halve-and-decode steps, with the 2^k scale applied once at the end.
// Unlike the floor function, DECODE does not telescope (Eq. 9 fails for
// it), so the steps cannot be collapsed into a single division.
func (e *E8) Ancestor(c []int32, k int) []int32 {
	return e.AncestorInto(nil, c, k)
}

// AncestorInto implements Lattice.
func (e *E8) AncestorInto(dst, c []int32, k int) []int32 {
	out := growCode(dst, len(c))
	copy(out, c)
	if k > 30 {
		k = 30
	}
	for step := 0; step < k; step++ {
		for b := 0; b+8 <= len(out); b += 8 {
			var y [8]float64
			for j := 0; j < 8; j++ {
				// out holds doubled coords of b_j; the real point is out/2
				// and DECODE consumes its half, i.e. out/4.
				y[j] = float64(out[b+j]) / 4
			}
			p := DecodeE8(y)
			copy(out[b:b+8], p[:]) // doubled coords of b_{j+1}
		}
	}
	if k > 0 {
		for i := range out {
			out[i] <<= uint(k)
		}
	}
	return out
}

// Center converts a doubled code back to projected-space coordinates.
func (e *E8) Center(c []int32) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = float64(v) / 2
	}
	return out
}

// DecodeE8 returns the E8 lattice point nearest to y, as doubled integers.
// This is the classic two-coset decoder the paper cites (Jégou et al.):
// decode y to the nearest point of D8 and of D8+½ and keep the closer —
// about a hundred arithmetic operations.
func DecodeE8(y [8]float64) [8]int32 {
	intPt, intDist := nearestD8(y, 0)
	halfPt, halfDist := nearestD8(y, 0.5)
	if intDist <= halfDist {
		return intPt
	}
	return halfPt
}

// nearestD8 finds the closest point of D8+offset·1 to y (offset 0 or 0.5)
// and returns it in doubled-integer form with the squared distance.
//
// Method: round every shifted coordinate to the nearest integer; if the
// coordinate sum is odd (violating the D8 parity constraint) re-round the
// coordinate whose rounding error is largest to its second-nearest integer,
// which is the cheapest parity repair.
func nearestD8(y [8]float64, offset float64) ([8]int32, float64) {
	var r [8]int32      // rounded integer part (before adding offset back)
	var errs [8]float64 // y - (r+offset)
	sum := int32(0)
	for i, v := range y {
		s := v - offset
		ri := int32(math.Floor(s + 0.5)) // round half up, deterministic
		r[i] = ri
		errs[i] = s - float64(ri)
		sum += ri
	}
	if sum&1 != 0 {
		// Flip the coordinate with the largest |error| toward its second
		// nearest integer: extra cost 1-2|err| is minimized there.
		worst := 0
		worstAbs := -1.0
		for i, e := range errs {
			if a := math.Abs(e); a > worstAbs {
				worstAbs = a
				worst = i
			}
		}
		if errs[worst] > 0 {
			r[worst]++
			errs[worst]--
		} else {
			r[worst]--
			errs[worst]++
		}
	}
	var dist float64
	var out [8]int32
	for i := range r {
		dist += errs[i] * errs[i]
		// doubled coordinate of r[i]+offset: 2r+2·offset (offset is 0 or ½).
		out[i] = 2*r[i] + int32(2*offset)
	}
	return out, dist
}

// MinVectors returns the 240 minimal vectors of E8 (squared norm 2) in
// doubled-integer form: the 112 permutations of (±1,±1,0^6) and the 128
// points (±½)^8 with an even number of minus signs. These are the
// equidistant neighbors used by the E8 multi-probe sequence.
func MinVectors() [][8]int32 {
	out := make([][8]int32, 0, 240)
	// Type 1: ±1 at two positions (doubled: ±2).
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			for _, si := range []int32{2, -2} {
				for _, sj := range []int32{2, -2} {
					var v [8]int32
					v[i], v[j] = si, sj
					out = append(out, v)
				}
			}
		}
	}
	// Type 2: all ±½ (doubled: ±1) with an even number of minus signs.
	for mask := 0; mask < 256; mask++ {
		if popcount8(mask)&1 != 0 {
			continue
		}
		var v [8]int32
		for i := 0; i < 8; i++ {
			if mask&(1<<i) != 0 {
				v[i] = -1
			} else {
				v[i] = 1
			}
		}
		out = append(out, v)
	}
	return out
}

func popcount8(x int) int {
	n := 0
	for x != 0 {
		n += x & 1
		x >>= 1
	}
	return n
}

// IsE8 reports whether a doubled-integer point belongs to E8: either all
// entries even with sum/2 even (D8), or all entries odd with (sum-8·1)/2
// even, i.e. the halved point is in D8+½ with integer-part sum even.
func IsE8(p [8]int32) bool {
	allEven, allOdd := true, true
	var sum int32
	for _, v := range p {
		if v&1 == 0 {
			allOdd = false
		} else {
			allEven = false
		}
		sum += v
	}
	if !allEven && !allOdd {
		return false
	}
	// Real-coordinate sum is sum/2; E8 requires it to be an even integer.
	return sum%4 == 0
}
