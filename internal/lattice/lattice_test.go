package lattice

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"bilsh/internal/xrand"
)

func TestZMDecode(t *testing.T) {
	z := NewZM(3)
	got := z.Decode([]float64{1.7, -0.2, 3.0})
	want := []int32{1, -1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decode = %v, want %v", got, want)
	}
}

func TestZMAncestorEq8(t *testing.T) {
	z := NewZM(1)
	// Eq. 8: H^k(c) = 2^k * floor(c / 2^k), including negatives.
	cases := []struct {
		c    int32
		k    int
		want int32
	}{
		{5, 0, 5}, {5, 1, 4}, {5, 2, 4}, {5, 3, 0},
		{-5, 1, -6}, {-5, 2, -8}, {-1, 3, -8},
		{8, 2, 8},
	}
	for _, tc := range cases {
		got := z.Ancestor([]int32{tc.c}, tc.k)[0]
		if got != tc.want {
			t.Errorf("Ancestor(%d, %d) = %d, want %d", tc.c, tc.k, got, tc.want)
		}
	}
}

// Property: the telescoping identity (Eq. 9) — ancestor levels compose.
func TestZMAncestorComposes(t *testing.T) {
	z := NewZM(4)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		c := make([]int32, 4)
		for i := range c {
			c[i] = int32(rng.Intn(2000) - 1000)
		}
		j := rng.Intn(5)
		k := rng.Intn(5)
		// ancestor_{j+k}(c) == ancestor_k(ancestor_j(c)) in *unscaled* terms;
		// with Eq. 8 scaling, ancestor_j output is already multiplied by 2^j,
		// so applying Ancestor(·, k) to it floors at 2^k on a 2^j-multiple,
		// which equals Ancestor(c, j+k) only when read at matching scale:
		a1 := z.Ancestor(c, j+k)
		a2 := z.Ancestor(z.Ancestor(c, j), j+k) // re-flooring scaled code at full depth
		return reflect.DeepEqual(a1, a2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZMCenter(t *testing.T) {
	z := NewZM(2)
	got := z.Center([]int32{1, -2})
	if got[0] != 1.5 || got[1] != -1.5 {
		t.Fatalf("Center = %v", got)
	}
}

func TestKeyInjective(t *testing.T) {
	a := Key([]int32{1, 2})
	b := Key([]int32{2, 1})
	c := Key([]int32{1, 2})
	if a == b {
		t.Fatal("distinct codes share a key")
	}
	if a != c {
		t.Fatal("equal codes must share a key")
	}
	if Key([]int32{-1}) == Key([]int32{1}) {
		t.Fatal("sign must be preserved in keys")
	}
}

func TestMinVectors(t *testing.T) {
	vs := MinVectors()
	if len(vs) != 240 {
		t.Fatalf("|MinVectors| = %d, want 240 (the E8 kissing number)", len(vs))
	}
	seen := make(map[[8]int32]bool, 240)
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("duplicate minimal vector %v", v)
		}
		seen[v] = true
		// Doubled squared norm must be 4*2 = 8 (real norm^2 = 2).
		var n int32
		for _, x := range v {
			n += x * x
		}
		if n != 8 {
			t.Fatalf("minimal vector %v has doubled norm^2 %d, want 8", v, n)
		}
		if !IsE8(v) {
			t.Fatalf("minimal vector %v not in E8", v)
		}
	}
}

func TestIsE8(t *testing.T) {
	cases := []struct {
		p    [8]int32
		want bool
	}{
		{[8]int32{2, 2, 2, 2, 2, 2, 2, 2}, true},   // (1)^8: sum 8 even
		{[8]int32{1, 1, 1, 1, 1, 1, 1, 1}, true},   // (1/2)^8: sum 4 even
		{[8]int32{0, 2, 2, 2, 2, 2, 2, 2}, false},  // (0,1,...,1): sum 7 odd
		{[8]int32{2, 0, 0, 0, 0, 0, 0, 0}, false},  // (1,0,...): sum odd
		{[8]int32{2, 2, 0, 0, 0, 0, 0, 0}, true},   // (1,1,0,...): sum 2 even
		{[8]int32{1, 2, 2, 2, 2, 2, 2, 2}, false},  // mixed parity
		{[8]int32{-1, 1, 1, 1, 1, 1, 1, 1}, false}, // sum 3 odd
		{[8]int32{-1, -1, 1, 1, 1, 1, 1, 1}, true}, // sum 2 even
	}
	for _, tc := range cases {
		if got := IsE8(tc.p); got != tc.want {
			t.Errorf("IsE8(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// Property: DecodeE8 always returns an E8 point.
func TestDecodeE8Membership(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		var y [8]float64
		for i := range y {
			y[i] = rng.NormFloat64() * 3
		}
		return IsE8(DecodeE8(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding a lattice point returns that point (idempotence).
func TestDecodeE8Idempotent(t *testing.T) {
	vs := MinVectors()
	rng := xrand.New(99)
	for trial := 0; trial < 300; trial++ {
		// Random E8 point: sum of a few minimal vectors (E8 is closed
		// under addition).
		var p [8]int32
		for s := 0; s < 1+rng.Intn(4); s++ {
			v := vs[rng.Intn(len(vs))]
			for i := range p {
				p[i] += v[i]
			}
		}
		var y [8]float64
		for i := range y {
			y[i] = float64(p[i]) / 2
		}
		if got := DecodeE8(y); got != p {
			t.Fatalf("DecodeE8(point %v) = %v", p, got)
		}
	}
}

// Property: the decoded point is at least as close as the point's 240
// neighbors and as the rival coset decode (local optimality).
func TestDecodeE8LocalOptimality(t *testing.T) {
	vs := MinVectors()
	sqDist := func(y [8]float64, p [8]int32) float64 {
		var s float64
		for i := range y {
			d := y[i] - float64(p[i])/2
			s += d * d
		}
		return s
	}
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		var y [8]float64
		for i := range y {
			y[i] = rng.NormFloat64() * 2
		}
		p := DecodeE8(y)
		d := sqDist(y, p)
		for _, v := range vs {
			var q [8]int32
			for i := range q {
				q[i] = p[i] + v[i]
			}
			if sqDist(y, q) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestE8DecodeBlocksAndPadding(t *testing.T) {
	e := NewE8(10) // two blocks, last 6 dims padded
	if e.CodeLen() != 16 {
		t.Fatalf("CodeLen = %d, want 16", e.CodeLen())
	}
	y := make([]float64, 10)
	y[8], y[9] = 1.0, 1.1
	c := e.Decode(y)
	if len(c) != 16 {
		t.Fatalf("code len = %d", len(c))
	}
	var first, second [8]int32
	copy(first[:], c[:8])
	copy(second[:], c[8:])
	if !IsE8(first) || !IsE8(second) {
		t.Fatal("block codes must be E8 points")
	}
	// First block decodes the origin: nearest E8 point to 0 is 0.
	if first != [8]int32{} {
		t.Fatalf("origin block decoded to %v", first)
	}
}

func TestE8AncestorScalingProperty(t *testing.T) {
	e := NewE8(8)
	rng := xrand.New(123)
	for trial := 0; trial < 100; trial++ {
		y := make([]float64, 8)
		for i := range y {
			y[i] = rng.NormFloat64() * 4
		}
		c := e.Decode(y)
		a := e.Ancestor(c, 1)
		// The level-1 ancestor must be 2x an E8 point (the scaled lattice),
		// i.e. halved doubled-coordinates still form an E8 point.
		var half [8]int32
		for i := range half {
			if a[i]%2 != 0 {
				t.Fatalf("ancestor %v not on 2*E8 (odd doubled coordinate)", a)
			}
			half[i] = a[i] / 2
		}
		if !IsE8(half) {
			t.Fatalf("ancestor/2 = %v not an E8 point", half)
		}
		// Ancestor(c, 0) must be a copy, not an alias.
		a0 := e.Ancestor(c, 0)
		a0[0] += 100
		if c[0] == a0[0] {
			t.Fatal("Ancestor(c,0) aliases input")
		}
	}
}

func TestE8AncestorLatticeMembershipAndDrift(t *testing.T) {
	// The level-k ancestor lies on the 2^k-scaled E8 lattice and stays
	// within the accumulated covering radius of the original point:
	// each step moves at most the level's covering distance 2^j (covering
	// radius of 2^j·E8 is 2^j), so |a_k − c| ≤ Σ_{j=1..k} 2^j < 2^{k+1}.
	// Note the ancestor does NOT converge to the origin — like the Z^M
	// ancestor, it is a coarser quantization of the same location, which
	// is why the E8 hierarchy build needs a virtual root.
	e := NewE8(8)
	rng := xrand.New(7)
	for trial := 0; trial < 30; trial++ {
		y := make([]float64, 8)
		for i := range y {
			y[i] = rng.NormFloat64() * 10
		}
		c := e.Decode(y)
		for k := 1; k <= 10; k++ {
			a := e.Ancestor(c, k)
			// Membership: halving doubled coords k+1 times must yield an
			// E8 point, i.e. a / 2^k is in E8 (doubled form: a >> k).
			var scaled [8]int32
			for i := range scaled {
				if a[i]%(1<<uint(k)) != 0 {
					t.Fatalf("level-%d ancestor %v not on 2^k lattice", k, a)
				}
				scaled[i] = a[i] / (1 << uint(k))
			}
			if !IsE8(scaled) {
				t.Fatalf("level-%d ancestor/2^k = %v not an E8 point", k, scaled)
			}
			// Drift bound in real coordinates (doubled/2).
			var drift float64
			for i := range a {
				d := float64(a[i]-c[i]) / 2
				drift += d * d
			}
			if math.Sqrt(drift) > float64(int32(2)<<uint(k)) {
				t.Fatalf("level-%d ancestor drifted %.2f > 2^{k+1}", k, math.Sqrt(drift))
			}
		}
	}
}

func TestLatticeInterfaceCompliance(t *testing.T) {
	var _ Lattice = NewZM(8)
	var _ Lattice = NewE8(8)
	z := NewZM(8)
	if z.Name() != "ZM" || z.M() != 8 {
		t.Fatal("ZM metadata wrong")
	}
	e := NewE8(12)
	if e.Name() != "E8" || e.M() != 12 || e.CodeLen() != 16 {
		t.Fatal("E8 metadata wrong")
	}
}

func TestE8CenterInverseOfKey(t *testing.T) {
	e := NewE8(8)
	y := []float64{0.6, -1.2, 0.1, 2.3, -0.7, 0.4, 1.9, -2.2}
	c := e.Decode(y)
	ctr := e.Center(c)
	// Center must be the actual lattice point (halved doubles).
	for i := range ctr {
		if ctr[i] != float64(c[i])/2 {
			t.Fatalf("Center[%d] = %v, want %v", i, ctr[i], float64(c[i])/2)
		}
	}
}

func BenchmarkDecodeE8(b *testing.B) {
	rng := xrand.New(1)
	ys := make([][8]float64, 256)
	for i := range ys {
		for j := range ys[i] {
			ys[i][j] = rng.NormFloat64() * 3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeE8(ys[i%len(ys)])
	}
}

func BenchmarkZMDecode(b *testing.B) {
	z := NewZM(8)
	rng := xrand.New(1)
	y := make([]float64, 8)
	for j := range y {
		y[j] = rng.NormFloat64() * 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Decode(y)
	}
}
