package lattice

import (
	"fmt"
	"math"
)

// Dn is the checkerboard lattice D_n = {x ∈ Z^n : Σx even} for arbitrary
// dimension n, a quantizer sitting between Z^M and E8 in density (D8 is
// E8's integer coset; E8 = D8 ∪ (D8+½)). The paper motivates E8 with the
// density argument of Section II-B; Dn exists here as the natural ablation
// between the two choices: decoding costs one parity repair over plain
// rounding, and density improves by a factor of 2 over Z^n.
//
// Codes are doubled integers like E8 codes, so the two lattices share the
// Key/Ancestor conventions (all Dn doubled entries are even).
type Dn struct {
	m      int
	blocks int
	bdim   int // block dimension (min(m, 8) by default 8-dim blocks)
}

// NewDn returns a D_n quantizer over m projected dimensions, processed in
// blocks of up to 8 dimensions (mirroring the E8 block layout so the two
// are directly comparable).
func NewDn(m int) *Dn {
	if m <= 0 {
		panic(fmt.Sprintf("lattice: NewDn(%d): m must be positive", m))
	}
	bdim := 8
	if m < bdim {
		bdim = m
	}
	return &Dn{m: m, blocks: (m + bdim - 1) / bdim, bdim: bdim}
}

// Name implements Lattice.
func (d *Dn) Name() string { return "Dn" }

// M implements Lattice.
func (d *Dn) M() int { return d.m }

// CodeLen implements Lattice.
func (d *Dn) CodeLen() int { return d.blocks * d.bdim }

// BlockDim returns the per-block dimension (8, or m when m < 8).
func (d *Dn) BlockDim() int { return d.bdim }

// Decode maps each block to its nearest D_n point (doubled integers).
func (d *Dn) Decode(y []float64) []int32 {
	return d.DecodeInto(nil, y)
}

// DecodeInto implements Lattice.
func (d *Dn) DecodeInto(dst []int32, y []float64) []int32 {
	if len(y) != d.m {
		panic(fmt.Sprintf("lattice: Dn.Decode got %d dims, want %d", len(y), d.m))
	}
	out := growCode(dst, d.CodeLen())
	var block [8]float64 // bdim = min(m, 8) <= 8
	for b := 0; b < d.blocks; b++ {
		for j := 0; j < d.bdim; j++ {
			if i := b*d.bdim + j; i < d.m {
				block[j] = y[i]
			} else {
				block[j] = 0
			}
		}
		decodeDn(out[b*d.bdim:(b+1)*d.bdim], block[:d.bdim])
	}
	return out
}

// decodeDn writes the nearest D_n point to y into out (doubled-integer
// form): round every coordinate, then repair odd parity at the coordinate
// with the largest rounding error (the Conway–Sloane D_n decoder).
// len(y) == len(out) <= 8.
func decodeDn(out []int32, y []float64) {
	var sum int32
	worst, worstAbs := 0, -1.0
	var errs [8]float64
	for i, v := range y {
		r := int32(math.Floor(v + 0.5))
		out[i] = r
		errs[i] = v - float64(r)
		sum += r
		if a := math.Abs(errs[i]); a > worstAbs {
			worstAbs = a
			worst = i
		}
	}
	if sum&1 != 0 {
		if errs[worst] > 0 {
			out[worst]++
		} else {
			out[worst]--
		}
	}
	for i := range out {
		out[i] *= 2 // doubled representation, shared with E8
	}
}

// Ancestor applies the halve-and-decode recursion of Eq. 10 with the D_n
// decoder (D_n also has the scaling property: 2·D_n ⊂ D_n).
func (d *Dn) Ancestor(c []int32, k int) []int32 {
	return d.AncestorInto(nil, c, k)
}

// AncestorInto implements Lattice.
func (d *Dn) AncestorInto(dst, c []int32, k int) []int32 {
	out := growCode(dst, len(c))
	copy(out, c)
	if k > 30 {
		k = 30
	}
	var y [8]float64
	for step := 0; step < k; step++ {
		for b := 0; b+d.bdim <= len(out); b += d.bdim {
			for j := 0; j < d.bdim; j++ {
				y[j] = float64(out[b+j]) / 4
			}
			decodeDn(out[b:b+d.bdim], y[:d.bdim])
		}
	}
	if k > 0 {
		for i := range out {
			out[i] <<= uint(k)
		}
	}
	return out
}

// Center converts a doubled code to projected-space coordinates.
func (d *Dn) Center(c []int32) []float64 {
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = float64(v) / 2
	}
	return out
}

// DnMinVectors returns the minimal vectors of D_n in doubled form: all
// (±1, ±1, 0^(n-2)) permutations — 2n(n-1) vectors of squared norm 2 —
// used as the multi-probe neighbor set.
func DnMinVectors(n int) [][]int32 {
	out := make([][]int32, 0, 2*n*(n-1))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, si := range []int32{2, -2} {
				for _, sj := range []int32{2, -2} {
					v := make([]int32, n)
					v[i], v[j] = si, sj
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// IsDn reports whether a doubled point is in D_n: all entries even
// (integer coordinates) with the coordinate sum even.
func IsDn(p []int32) bool {
	var sum int32
	for _, v := range p {
		if v&1 != 0 {
			return false
		}
		sum += v / 2
	}
	return sum&1 == 0
}
