package lattice

import (
	"testing"
	"testing/quick"

	"bilsh/internal/xrand"
)

func TestDnDecodeMembership(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		m := 2 + rng.Intn(14)
		d := NewDn(m)
		y := make([]float64, m)
		for i := range y {
			y[i] = rng.NormFloat64() * 3
		}
		code := d.Decode(y)
		for b := 0; b+d.bdim <= len(code); b += d.bdim {
			if !IsDn(code[b : b+d.bdim]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDnDecodeIdempotent(t *testing.T) {
	d := NewDn(8)
	rng := xrand.New(2)
	mins := DnMinVectors(8)
	for trial := 0; trial < 200; trial++ {
		// Random D8 point: sum of minimal vectors.
		p := make([]int32, 8)
		for s := 0; s < 1+rng.Intn(5); s++ {
			v := mins[rng.Intn(len(mins))]
			for i := range p {
				p[i] += v[i]
			}
		}
		y := make([]float64, 8)
		for i := range y {
			y[i] = float64(p[i]) / 2
		}
		got := d.Decode(y)
		for i := range p {
			if got[i] != p[i] {
				t.Fatalf("Decode(lattice point %v) = %v", p, got)
			}
		}
	}
}

// Property: the D_n decode is at least as close as every neighbor by a
// minimal vector (local optimality).
func TestDnLocalOptimality(t *testing.T) {
	d := NewDn(6)
	mins := DnMinVectors(6)
	sq := func(y []float64, p []int32) float64 {
		var s float64
		for i := range y {
			diff := y[i] - float64(p[i])/2
			s += diff * diff
		}
		return s
	}
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		y := make([]float64, 6)
		for i := range y {
			y[i] = rng.NormFloat64() * 2
		}
		p := d.Decode(y)
		dist := sq(y, p)
		for _, v := range mins {
			q := make([]int32, 6)
			for i := range q {
				q[i] = p[i] + v[i]
			}
			if sq(y, q) < dist-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDnMinVectors(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		vs := DnMinVectors(n)
		want := 2 * n * (n - 1)
		if len(vs) != want {
			t.Fatalf("D_%d has %d minimal vectors, want %d", n, len(vs), want)
		}
		seen := map[string]bool{}
		for _, v := range vs {
			if !IsDn(v) {
				t.Fatalf("minimal vector %v not in D_%d", v, n)
			}
			var norm int32
			for _, x := range v {
				norm += x * x
			}
			if norm != 8 { // doubled norm^2 = 4*2
				t.Fatalf("minimal vector %v has doubled norm %d", v, norm)
			}
			k := Key(v)
			if seen[k] {
				t.Fatal("duplicate minimal vector")
			}
			seen[k] = true
		}
	}
}

func TestDnAncestorScaling(t *testing.T) {
	d := NewDn(8)
	rng := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		y := make([]float64, 8)
		for i := range y {
			y[i] = rng.NormFloat64() * 6
		}
		c := d.Decode(y)
		for k := 1; k <= 6; k++ {
			a := d.Ancestor(c, k)
			for i := range a {
				if a[i]%(1<<uint(k)) != 0 {
					t.Fatalf("level-%d ancestor %v not on scaled lattice", k, a)
				}
			}
			scaled := make([]int32, len(a))
			for i := range a {
				scaled[i] = a[i] / (1 << uint(k))
			}
			if !IsDn(scaled) {
				t.Fatalf("level-%d ancestor/2^k = %v not in D_n", k, scaled)
			}
		}
		// Level 0 is a copy.
		a0 := d.Ancestor(c, 0)
		a0[0]++
		if c[0] == a0[0] {
			t.Fatal("Ancestor(c,0) aliases input")
		}
	}
}

func TestDnBlocksAndPadding(t *testing.T) {
	d := NewDn(12) // blocks of 8: code len 16
	if d.CodeLen() != 16 {
		t.Fatalf("CodeLen = %d", d.CodeLen())
	}
	small := NewDn(4) // single 4-dim block
	if small.CodeLen() != 4 {
		t.Fatalf("small CodeLen = %d", small.CodeLen())
	}
	y := []float64{0.6, -0.7, 1.2, 0.4}
	code := small.Decode(y)
	if !IsDn(code) {
		t.Fatalf("code %v not in D_4", code)
	}
}

func TestDnInterfaceCompliance(t *testing.T) {
	var _ Lattice = NewDn(8)
	d := NewDn(10)
	if d.Name() != "Dn" || d.M() != 10 {
		t.Fatal("metadata wrong")
	}
	ctr := d.Center([]int32{4, -2})
	if ctr[0] != 2 || ctr[1] != -1 {
		t.Fatalf("Center = %v", ctr)
	}
}

// D8 ⊂ E8: every D8 decode result must also be an E8 point, and the E8
// decode of the same input can only be closer or equal.
func TestD8SubsetOfE8(t *testing.T) {
	d := NewDn(8)
	rng := xrand.New(9)
	for trial := 0; trial < 200; trial++ {
		y8 := make([]float64, 8)
		var arr [8]float64
		for i := range y8 {
			y8[i] = rng.NormFloat64() * 2
			arr[i] = y8[i]
		}
		dp := d.Decode(y8)
		var dpArr [8]int32
		copy(dpArr[:], dp)
		if !IsE8(dpArr) {
			t.Fatalf("D8 point %v not in E8", dp)
		}
		ep := DecodeE8(arr)
		var dDist, eDist float64
		for i := 0; i < 8; i++ {
			dd := y8[i] - float64(dp[i])/2
			ee := y8[i] - float64(ep[i])/2
			dDist += dd * dd
			eDist += ee * ee
		}
		if eDist > dDist+1e-9 {
			t.Fatalf("E8 decode farther than D8 decode (%.4f > %.4f)", eDist, dDist)
		}
	}
}
