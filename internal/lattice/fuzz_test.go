package lattice_test

import (
	"math"
	"testing"

	"bilsh/internal/lattice"
	"bilsh/internal/quality"
)

// Fuzz targets for the two Conway–Sloane decoders. Each decoded point must
// satisfy three properties for arbitrary finite input:
//
//   - membership: the output is a lattice point (IsE8 / IsDn);
//   - idempotence: a lattice point is its own nearest lattice point, so
//     DECODE(Center(c)) == c exactly (Eq. 9's fixed-point requirement —
//     the hierarchy's halve-and-decode recursion terminates only because
//     of it);
//   - local optimality: the decoded point is at least as close to the
//     input as every one of its kissing neighbors (the minimal vectors).
//     The decoders are exact nearest-point algorithms, and for a lattice
//     "closer than all kissing neighbors of the output" is the first-order
//     check that the parity repair picked the right coordinate.
//
// The seed corpus is drawn from the quality harness's generators — real
// projected-coordinate distributions, not just synthetic corner cases.

// fuzzBound keeps inputs in the range where doubled int32 codes cannot
// overflow and float rounding stays exact.
const fuzzBound = 1e6

// seedCorpus returns rows of a quality-harness dataset as 8-dim blocks.
func seedCorpus(tb testing.TB) [][8]float64 {
	tb.Helper()
	train, _, _, err := quality.Generators["manifold"](32, 1, 0, 16, 3)
	if err != nil {
		tb.Fatal(err)
	}
	out := make([][8]float64, 0, train.N)
	for i := 0; i < train.N; i++ {
		row := train.Row(i)
		var y [8]float64
		for j := range y {
			y[j] = float64(row[j])
		}
		out = append(out, y)
	}
	return out
}

func fuzzable(y [8]float64) bool {
	for _, v := range y {
		if math.IsNaN(v) || math.Abs(v) > fuzzBound {
			return false
		}
	}
	return true
}

func sqDistTo(y [8]float64, center []float64) float64 {
	var d float64
	for i, v := range y {
		e := v - center[i]
		d += e * e
	}
	return d
}

func FuzzDecodeE8(f *testing.F) {
	for _, y := range seedCorpus(f) {
		f.Add(y[0], y[1], y[2], y[3], y[4], y[5], y[6], y[7])
	}
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5)
	f.Add(0.5, -0.5, 0.5, -0.5, 0.5, -0.5, 0.5, -0.5)
	f.Add(0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.75)

	e8 := lattice.NewE8(8)
	mins := lattice.MinVectors()
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i float64) {
		y := [8]float64{a, b, c, d, e, g, h, i}
		if !fuzzable(y) {
			t.Skip()
		}
		p := lattice.DecodeE8(y)
		if !lattice.IsE8(p) {
			t.Fatalf("DecodeE8(%v) = %v is not an E8 point", y, p)
		}

		// Idempotence: the decoded point's own coordinates decode to it.
		var back [8]float64
		for j, v := range e8.Center(p[:]) {
			back[j] = v
		}
		if again := lattice.DecodeE8(back); again != p {
			t.Fatalf("DecodeE8 not idempotent: %v decodes to %v, whose center decodes to %v", y, p, again)
		}

		// Local optimality among the 240 kissing neighbors.
		center := e8.Center(p[:])
		best := sqDistTo(y, center)
		for _, mv := range mins {
			var q [8]int32
			for j := range q {
				q[j] = p[j] + mv[j]
			}
			if d := sqDistTo(y, e8.Center(q[:])); d < best-1e-9 {
				t.Fatalf("DecodeE8(%v) = %v at sqdist %.12f, but neighbor %v is closer at %.12f", y, p, best, q, d)
			}
		}
	})
}

func FuzzDecodeDn(f *testing.F) {
	for _, y := range seedCorpus(f) {
		f.Add(y[0], y[1], y[2], y[3], y[4], y[5], y[6], y[7])
	}
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-0.49, 0.51, 1.5, -1.5, 0.0, 0.0, 0.0, 0.99)

	dn := lattice.NewDn(8)
	mins := lattice.DnMinVectors(8)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i float64) {
		y := [8]float64{a, b, c, d, e, g, h, i}
		if !fuzzable(y) {
			t.Skip()
		}
		p := dn.Decode(y[:])
		if !lattice.IsDn(p) {
			t.Fatalf("Dn.Decode(%v) = %v is not a D8 point", y, p)
		}

		// Idempotence.
		again := dn.Decode(dn.Center(p))
		for j := range p {
			if again[j] != p[j] {
				t.Fatalf("Dn.Decode not idempotent: %v decodes to %v, whose center decodes to %v", y, p, again)
			}
		}

		// Local optimality among the 2·8·7 = 112 kissing neighbors.
		best := sqDistTo(y, dn.Center(p))
		for _, mv := range mins {
			q := make([]int32, len(p))
			for j := range q {
				q[j] = p[j] + mv[j]
			}
			if d := sqDistTo(y, dn.Center(q)); d < best-1e-9 {
				t.Fatalf("Dn.Decode(%v) = %v at sqdist %.12f, but neighbor %v is closer at %.12f", y, p, best, q, d)
			}
		}
	})
}
