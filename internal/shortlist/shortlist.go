// Package shortlist implements the short-list search stage — ranking each
// query's candidate set by exact distance and keeping the k best — which
// the paper identifies as the bottleneck of every LSH pipeline (>95% of
// running time, Section V-B).
//
// Three engines mirror the three systems of Figure 4:
//
//   - Serial: one heap per query on one goroutine — the CPU (LSHKIT-role)
//     baseline.
//   - PerQuery: one goroutine per query batch, each with its own heap —
//     the naive "per-thread per-query" GPU mapping.
//   - WorkQueue: the paper's contribution — all (query, candidate) pairs
//     are flattened into a bounded work queue, distances are computed in
//     bulk, a clustered sort orders candidates within each query, and a
//     compact step keeps the best k, iterating in passes until all
//     candidates are consumed (Figure 3).
//
// All engines report operation counts so the parsim cost model can map the
// same executions onto a p-core device (the GPU substitution documented in
// DESIGN.md). The same counts are accumulated process-wide, labeled by
// engine, into the metrics registry (bilsh_shortlist_*; see
// docs/metrics.md), so a running server shows the relative work of the
// engines without re-running the cost model.
package shortlist

import (
	"cmp"
	"runtime"
	"slices"
	"sync"

	"bilsh/internal/knn"
	"bilsh/internal/topk"
	"bilsh/internal/vec"
)

// Request is one query with its candidate ids. Duplicates (as produced by
// multi-table probing) are tolerated: the candidate set A(v) is a set, so
// the heap engines skip repeats before the distance computation while the
// work-queue engine eliminates them in its compact step.
type Request struct {
	Query      []float32
	Candidates []int
}

// OpStats counts the work an engine performed; the parsim model consumes
// these.
type OpStats struct {
	// DistanceOps is the number of exact distance evaluations.
	DistanceOps int
	// HeapOps is the number of heap pushes (accepted or rejected probes).
	HeapOps int
	// SortedItems is the total number of items passed through clustered
	// sorts (work-queue engine only).
	SortedItems int
	// Passes is the number of work-queue passes (work-queue engine only).
	Passes int
	// MaxPerQuery is the largest single-query candidate count, which
	// bounds the naive parallel engine's critical path.
	MaxPerQuery int
}

// Engine ranks candidates for a batch of queries.
type Engine interface {
	Name() string
	Search(data *vec.Matrix, reqs []Request, k int) ([]knn.Result, OpStats)
}

// resultFromHeap converts a heap to a knn.Result with squared distances.
func resultFromHeap(h *topk.Heap) knn.Result {
	items := h.Sorted()
	r := knn.Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
	for i, it := range items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	return r
}

// ---------------------------------------------------------------------------
// Serial

// Serial is the single-threaded heap-per-query reference engine.
type Serial struct{}

// Name implements Engine.
func (Serial) Name() string { return "serial" }

// Search implements Engine.
func (Serial) Search(data *vec.Matrix, reqs []Request, k int) ([]knn.Result, OpStats) {
	out := make([]knn.Result, len(reqs))
	var st OpStats
	h := topk.New(k)
	seen := make(map[int]struct{})
	for qi, req := range reqs {
		h.Reset()
		clear(seen)
		if len(req.Candidates) > st.MaxPerQuery {
			st.MaxPerQuery = len(req.Candidates)
		}
		for _, id := range req.Candidates {
			if _, dup := seen[id]; dup {
				continue // multi-table unions repeat ids; A(v) is a set
			}
			seen[id] = struct{}{}
			d := vec.SqDist(data.Row(id), req.Query)
			st.DistanceOps++
			st.HeapOps++
			h.Push(id, d)
		}
		out[qi] = resultFromHeap(h)
	}
	recordOps("serial", len(reqs), st)
	return out, st
}

// ---------------------------------------------------------------------------
// PerQuery (naive parallel)

// PerQuery fans queries out to GOMAXPROCS workers, one heap per query —
// the naive GPU mapping whose weakness is load imbalance: the batch
// finishes when its largest candidate list does.
type PerQuery struct {
	// Workers overrides the worker count (default GOMAXPROCS).
	Workers int
}

// Name implements Engine.
func (PerQuery) Name() string { return "per-query" }

// Search implements Engine.
func (e PerQuery) Search(data *vec.Matrix, reqs []Request, k int) ([]knn.Result, OpStats) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]knn.Result, len(reqs))
	stats := make([]OpStats, workers)
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := topk.New(k)
			seen := make(map[int]struct{})
			st := &stats[w]
			for qi := range next {
				req := reqs[qi]
				h.Reset()
				clear(seen)
				if len(req.Candidates) > st.MaxPerQuery {
					st.MaxPerQuery = len(req.Candidates)
				}
				for _, id := range req.Candidates {
					if _, dup := seen[id]; dup {
						continue
					}
					seen[id] = struct{}{}
					d := vec.SqDist(data.Row(id), req.Query)
					st.DistanceOps++
					st.HeapOps++
					h.Push(id, d)
				}
				out[qi] = resultFromHeap(h)
			}
		}(w)
	}
	for qi := range reqs {
		next <- qi
	}
	close(next)
	wg.Wait()
	var st OpStats
	for _, s := range stats {
		st.DistanceOps += s.DistanceOps
		st.HeapOps += s.HeapOps
		if s.MaxPerQuery > st.MaxPerQuery {
			st.MaxPerQuery = s.MaxPerQuery
		}
	}
	recordOps("per-query", len(reqs), st)
	return out, st
}

// ---------------------------------------------------------------------------
// WorkQueue

// WorkQueue is the paper's work-queue engine (Figure 3): bounded passes of
// flatten → bulk distance → clustered sort → compact.
type WorkQueue struct {
	// QueueCap bounds the number of work items per pass ("the number of
	// queries that can fit into the global memory"); default 1<<16.
	QueueCap int
	// Workers parallelizes the bulk distance computation (default
	// GOMAXPROCS).
	Workers int
}

// Name implements Engine.
func (WorkQueue) Name() string { return "work-queue" }

type workItem struct {
	query int
	id    int
	dist  float64
}

// Search implements Engine.
func (e WorkQueue) Search(data *vec.Matrix, reqs []Request, k int) ([]knn.Result, OpStats) {
	queueCap := e.QueueCap
	if queueCap <= 0 {
		queueCap = 1 << 16
	}
	// A pass must at least hold one query's seed plus one new candidate.
	if queueCap < 2*k+2 {
		queueCap = 2*k + 2
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st OpStats
	// Current best-k per query, carried across passes ("the initial
	// k-nearest neighbors are ... the results from previous LSH tables").
	best := make([][]topk.Item, len(reqs))
	offsets := make([]int, len(reqs)) // progress into each candidate list
	for _, req := range reqs {
		if len(req.Candidates) > st.MaxPerQuery {
			st.MaxPerQuery = len(req.Candidates)
		}
	}

	queue := make([]workItem, 0, queueCap)
	for {
		queue = queue[:0]
		// Fill phase: seed with current results, then append unprocessed
		// candidates until the queue is full.
		for qi := range reqs {
			rem := len(reqs[qi].Candidates) - offsets[qi]
			if rem == 0 {
				continue
			}
			// Seed current top-k so compact merges old and new (Fig. 3).
			for _, it := range best[qi] {
				queue = append(queue, workItem{query: qi, id: it.ID, dist: it.Dist})
			}
			take := rem
			if len(queue)+take > queueCap {
				take = queueCap - len(queue)
				if take < 0 {
					take = 0
				}
			}
			for i := 0; i < take; i++ {
				id := reqs[qi].Candidates[offsets[qi]+i]
				queue = append(queue, workItem{query: qi, id: id, dist: -1})
			}
			offsets[qi] += take
			if len(queue) >= queueCap {
				break
			}
		}
		if len(queue) == 0 {
			break
		}
		st.Passes++

		// Bulk distance phase (parallel chunks).
		chunk := (len(queue) + workers - 1) / workers
		var wg sync.WaitGroup
		dops := make([]int, workers)
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(queue) {
				break
			}
			hi := lo + chunk
			if hi > len(queue) {
				hi = len(queue)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if queue[i].dist < 0 {
						queue[i].dist = vec.SqDist(data.Row(queue[i].id), reqs[queue[i].query].Query)
						dops[w]++
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for _, d := range dops {
			st.DistanceOps += d
		}

		// Clustered sort: by (query, dist, id) — candidates of the same
		// query become contiguous and ascending.
		slices.SortFunc(queue, func(a, b workItem) int {
			if a.query != b.query {
				return cmp.Compare(a.query, b.query)
			}
			if a.dist != b.dist {
				return cmp.Compare(a.dist, b.dist)
			}
			return cmp.Compare(a.id, b.id)
		})
		st.SortedItems += len(queue)

		// Compact: first k distinct ids per query become the new best.
		i := 0
		for i < len(queue) {
			qi := queue[i].query
			j := i
			items := best[qi][:0]
			var lastID = -1
			for j < len(queue) && queue[j].query == qi {
				if len(items) < k && queue[j].id != lastID {
					items = append(items, topk.Item{ID: queue[j].id, Dist: queue[j].dist})
					lastID = queue[j].id
				}
				j++
			}
			best[qi] = items
			i = j
		}
	}

	out := make([]knn.Result, len(reqs))
	for qi, items := range best {
		r := knn.Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
		for i, it := range items {
			r.IDs[i] = it.ID
			r.Dists[i] = it.Dist
		}
		out[qi] = r
	}
	recordOps("work-queue", len(reqs), st)
	return out, st
}
