package shortlist

import "bilsh/internal/metrics"

// Engine-level stage counters: every Search call folds its OpStats into
// the process-wide registry, labeled by engine, so the relative work of
// the serial / per-query / work-queue engines is visible outside the
// parsim cost model (docs/metrics.md lists the names).
func recordOps(engine string, reqs int, st OpStats) {
	l := metrics.L("engine", engine)
	reg := metrics.Default()
	reg.Counter("bilsh_shortlist_batches_total",
		"Search calls, by engine.", l).Inc()
	reg.Counter("bilsh_shortlist_requests_total",
		"Queries ranked across all Search calls, by engine.", l).Add(int64(reqs))
	reg.Counter("bilsh_shortlist_distance_ops_total",
		"Exact distance evaluations, by engine.", l).Add(int64(st.DistanceOps))
	reg.Counter("bilsh_shortlist_heap_ops_total",
		"Heap pushes (accepted or rejected), by engine.", l).Add(int64(st.HeapOps))
	reg.Counter("bilsh_shortlist_sorted_items_total",
		"Items passed through clustered sorts (work-queue engine).", l).Add(int64(st.SortedItems))
	reg.Counter("bilsh_shortlist_passes_total",
		"Work-queue passes (work-queue engine).", l).Add(int64(st.Passes))
}
