package shortlist

import (
	"reflect"
	"testing"
	"testing/quick"

	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// makeReqs builds q random queries each with a random candidate subset.
func makeReqs(rng *xrand.RNG, data *vec.Matrix, q, maxCand int) []Request {
	reqs := make([]Request, q)
	for i := range reqs {
		nc := rng.Intn(maxCand + 1)
		cands := make([]int, nc)
		for j := range cands {
			cands[j] = rng.Intn(data.N)
		}
		reqs[i] = Request{Query: rng.GaussianVec(data.D), Candidates: cands}
	}
	return reqs
}

// reference computes the expected result of short-list search directly.
func reference(data *vec.Matrix, reqs []Request, k int) []knn.Result {
	out := make([]knn.Result, len(reqs))
	for qi, req := range reqs {
		sub := make(map[int]float64, len(req.Candidates))
		for _, id := range req.Candidates {
			sub[id] = vec.SqDist(data.Row(id), req.Query)
		}
		type pair struct {
			id int
			d  float64
		}
		ps := make([]pair, 0, len(sub))
		for id, d := range sub {
			ps = append(ps, pair{id, d})
		}
		// Sort by (d, id).
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && (ps[j].d < ps[j-1].d || (ps[j].d == ps[j-1].d && ps[j].id < ps[j-1].id)); j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
		if len(ps) > k {
			ps = ps[:k]
		}
		r := knn.Result{IDs: make([]int, len(ps)), Dists: make([]float64, len(ps))}
		for i, p := range ps {
			r.IDs[i] = p.id
			r.Dists[i] = p.d
		}
		out[qi] = r
	}
	return out
}

func enginesUnderTest() []Engine {
	return []Engine{
		Serial{},
		PerQuery{Workers: 3},
		WorkQueue{QueueCap: 64, Workers: 2}, // tiny cap forces multiple passes
		WorkQueue{},                         // default cap: single pass
	}
}

func TestEnginesAgreeWithReference(t *testing.T) {
	rng := xrand.New(1)
	data := dataset.Gaussian(200, 8, 1, rng.Split(0))
	reqs := makeReqs(rng.Split(1), data, 20, 60)
	want := reference(data, reqs, 5)
	for _, e := range enginesUnderTest() {
		got, st := e.Search(data, reqs, 5)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("engine %q disagrees with reference", e.Name())
		}
		if st.DistanceOps == 0 {
			t.Fatalf("engine %q reported zero distance ops", e.Name())
		}
	}
}

// Property: all engines return identical results on random workloads.
func TestEngineEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		data := dataset.Gaussian(50+rng.Intn(100), 4, 1, rng.Split(0))
		k := 1 + rng.Intn(8)
		reqs := makeReqs(rng.Split(1), data, 1+rng.Intn(10), 40)
		want := reference(data, reqs, k)
		for _, e := range enginesUnderTest() {
			got, _ := e.Search(data, reqs, k)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateCandidates(t *testing.T) {
	data := vec.FromRows([][]float32{{0}, {1}, {2}})
	reqs := []Request{{Query: []float32{0}, Candidates: []int{2, 1, 1, 1, 0, 0}}}
	for _, e := range enginesUnderTest() {
		got, _ := e.Search(data, reqs, 2)
		if !reflect.DeepEqual(got[0].IDs, []int{0, 1}) {
			t.Fatalf("engine %q with duplicates: %v", e.Name(), got[0].IDs)
		}
	}
}

func TestEmptyCandidates(t *testing.T) {
	data := vec.FromRows([][]float32{{0}})
	reqs := []Request{
		{Query: []float32{0}, Candidates: nil},
		{Query: []float32{1}, Candidates: []int{0}},
	}
	for _, e := range enginesUnderTest() {
		got, _ := e.Search(data, reqs, 3)
		if len(got[0].IDs) != 0 {
			t.Fatalf("engine %q invented candidates", e.Name())
		}
		if len(got[1].IDs) != 1 {
			t.Fatalf("engine %q lost the single candidate", e.Name())
		}
	}
}

func TestNoRequests(t *testing.T) {
	data := vec.FromRows([][]float32{{0}})
	for _, e := range enginesUnderTest() {
		got, st := e.Search(data, nil, 3)
		if len(got) != 0 || st.DistanceOps != 0 {
			t.Fatalf("engine %q misbehaves on empty batch", e.Name())
		}
	}
}

func TestWorkQueueMultiplePasses(t *testing.T) {
	rng := xrand.New(9)
	data := dataset.Gaussian(300, 4, 1, rng.Split(0))
	reqs := makeReqs(rng.Split(1), data, 30, 100)
	e := WorkQueue{QueueCap: 64}
	got, st := e.Search(data, reqs, 4)
	if st.Passes < 2 {
		t.Fatalf("tiny queue ran only %d passes", st.Passes)
	}
	want := reference(data, reqs, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("multi-pass results wrong")
	}
	if st.SortedItems == 0 {
		t.Fatal("clustered sort not counted")
	}
}

func TestOpStatsPlausible(t *testing.T) {
	rng := xrand.New(10)
	data := dataset.Gaussian(100, 4, 1, rng.Split(0))
	reqs := makeReqs(rng.Split(1), data, 10, 50)
	var totalCands, uniqueCands, maxCands int
	for _, r := range reqs {
		totalCands += len(r.Candidates)
		set := map[int]bool{}
		for _, id := range r.Candidates {
			set[id] = true
		}
		uniqueCands += len(set)
		if len(r.Candidates) > maxCands {
			maxCands = len(r.Candidates)
		}
	}
	for _, e := range []Engine{Serial{}, PerQuery{Workers: 2}} {
		_, st := e.Search(data, reqs, 5)
		if st.DistanceOps != uniqueCands {
			t.Fatalf("%s: DistanceOps = %d, want %d unique", e.Name(), st.DistanceOps, uniqueCands)
		}
		if st.MaxPerQuery != maxCands {
			t.Fatalf("%s: MaxPerQuery = %d, want %d", e.Name(), st.MaxPerQuery, maxCands)
		}
	}
	// WorkQueue computes a distance per queued occurrence (dedup happens
	// in the compact step, as on the GPU).
	_, st := WorkQueue{}.Search(data, reqs, 5)
	if st.DistanceOps != totalCands {
		t.Fatalf("work-queue DistanceOps = %d, want %d", st.DistanceOps, totalCands)
	}
}

func BenchmarkSerial(b *testing.B)    { benchEngine(b, Serial{}) }
func BenchmarkWorkQueue(b *testing.B) { benchEngine(b, WorkQueue{}) }

func benchEngine(b *testing.B, e Engine) {
	rng := xrand.New(1)
	data := dataset.Gaussian(5000, 32, 1, rng.Split(0))
	reqs := makeReqs(rng.Split(1), data, 50, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(data, reqs, 50)
	}
}
