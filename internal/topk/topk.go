// Package topk implements the bounded max-heap the short-list search uses
// to keep the k best (closest) candidates seen so far.
//
// The paper (Section V-B) describes short-list search as "inserting the
// candidates sequentially into a max-heap with the maximum size k". This
// package is that data structure: a binary max-heap ordered by distance,
// capped at k entries, with deterministic tie-breaking on the item id so
// experiment runs are reproducible.
package topk

import (
	"fmt"
	"slices"
)

// Item is one k-NN candidate: a dataset id and its distance to the query.
type Item struct {
	ID   int
	Dist float64
}

// less orders items by (Dist, ID) ascending; the heap keeps the *largest*
// at the root so the worst candidate is evicted first.
func less(a, b Item) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Heap is a bounded max-heap holding at most K items.
// The zero value is unusable; create with New.
type Heap struct {
	k     int
	items []Item
}

// New returns an empty heap with capacity k (k >= 1).
func New(k int) *Heap {
	if k < 1 {
		panic(fmt.Sprintf("topk: New(%d): k must be >= 1", k))
	}
	return &Heap{k: k, items: make([]Item, 0, k)}
}

// K returns the heap's bound.
func (h *Heap) K() int { return h.k }

// Len returns the number of items currently held.
func (h *Heap) Len() int { return len(h.items) }

// Full reports whether the heap holds k items.
func (h *Heap) Full() bool { return len(h.items) == h.k }

// Worst returns the current k-th best distance, or +Inf semantics via
// ok=false when fewer than k items are held.
func (h *Heap) Worst() (Item, bool) {
	if !h.Full() {
		return Item{}, false
	}
	return h.items[0], true
}

// Push offers an item. It returns true if the item was kept (i.e. the heap
// was not full, or the item beats the current worst).
func (h *Heap) Push(id int, dist float64) bool {
	it := Item{ID: id, Dist: dist}
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return true
	}
	if !less(it, h.items[0]) {
		return false
	}
	h.items[0] = it
	h.down(0)
	return true
}

// Accepts reports whether a candidate at dist would be kept if pushed now.
// Useful to skip distance refinement for hopeless candidates.
func (h *Heap) Accepts(dist float64) bool {
	return len(h.items) < h.k || dist < h.items[0].Dist
}

// Reset empties the heap, retaining capacity.
func (h *Heap) Reset() { h.items = h.items[:0] }

// Merge pushes every element of other into h.
func (h *Heap) Merge(other *Heap) {
	for _, it := range other.items {
		h.Push(it.ID, it.Dist)
	}
}

// cmpItem is the three-way form of less for slices.SortFunc.
func cmpItem(a, b Item) int {
	switch {
	case less(a, b):
		return -1
	case less(b, a):
		return 1
	default:
		return 0
	}
}

// Sorted returns the held items ordered by ascending (Dist, ID).
// The heap remains valid afterwards.
func (h *Heap) Sorted() []Item {
	return h.AppendSorted(make([]Item, 0, len(h.items)))
}

// AppendSorted appends the held items to dst in ascending (Dist, ID) order
// and returns the extended slice — the allocation-free form the pooled
// query scratch uses. The heap remains valid afterwards.
func (h *Heap) AppendSorted(dst []Item) []Item {
	base := len(dst)
	dst = append(dst, h.items...)
	slices.SortFunc(dst[base:], cmpItem)
	return dst
}

// IDs returns just the ids of Sorted().
func (h *Heap) IDs() []int {
	s := h.Sorted()
	ids := make([]int, len(s))
	for i, it := range s {
		ids[i] = it.ID
	}
	return ids
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.items[parent], h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && less(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < n && less(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

// SelectK returns the k smallest items of xs by (Dist, ID) — the reference
// answer the heap must agree with, also used directly by the work-queue
// short-list engine after its clustered sort.
func SelectK(xs []Item, k int) []Item {
	cp := make([]Item, len(xs))
	copy(cp, xs)
	slices.SortFunc(cp, cmpItem)
	if len(cp) > k {
		cp = cp[:k]
	}
	return cp
}
