package topk

import (
	"math"
	"reflect"
	"testing"
)

// TestEdgeCases is the table-driven boundary sweep: k larger than the
// stream, duplicate distances, zero and negative distances, and exact
// (Dist, ID) tie ordering.
func TestEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		k    int
		in   []Item
		want []Item
	}{
		{
			name: "empty stream",
			k:    3,
			in:   nil,
			want: []Item{},
		},
		{
			name: "k exceeds stream length",
			k:    10,
			in:   []Item{{ID: 2, Dist: 1}, {ID: 1, Dist: 3}},
			want: []Item{{ID: 2, Dist: 1}, {ID: 1, Dist: 3}},
		},
		{
			name: "duplicate distances break ties by id",
			k:    3,
			in:   []Item{{ID: 9, Dist: 2}, {ID: 1, Dist: 2}, {ID: 5, Dist: 2}, {ID: 3, Dist: 2}},
			want: []Item{{ID: 1, Dist: 2}, {ID: 3, Dist: 2}, {ID: 5, Dist: 2}},
		},
		{
			name: "all-equal stream keeps the k smallest ids",
			k:    2,
			in:   []Item{{ID: 4, Dist: 0}, {ID: 2, Dist: 0}, {ID: 8, Dist: 0}, {ID: 1, Dist: 0}},
			want: []Item{{ID: 1, Dist: 0}, {ID: 2, Dist: 0}},
		},
		{
			name: "zero and negative distances order correctly",
			k:    3,
			in:   []Item{{ID: 1, Dist: 0}, {ID: 2, Dist: -1.5}, {ID: 3, Dist: 2}, {ID: 4, Dist: -1.5}},
			want: []Item{{ID: 2, Dist: -1.5}, {ID: 4, Dist: -1.5}, {ID: 1, Dist: 0}},
		},
		{
			name: "k equals one keeps the single best",
			k:    1,
			in:   []Item{{ID: 7, Dist: 5}, {ID: 3, Dist: 5}, {ID: 9, Dist: 4}},
			want: []Item{{ID: 9, Dist: 4}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := New(tc.k)
			for _, it := range tc.in {
				h.Push(it.ID, it.Dist)
			}
			got := h.Sorted()
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Sorted() = %v, want %v", got, tc.want)
			}
			if ref := SelectK(tc.in, tc.k); !reflect.DeepEqual(got, ref) {
				t.Errorf("heap disagrees with SelectK: %v vs %v", got, ref)
			}
		})
	}
}

// TestTieStabilityUnderInsertionOrder: with duplicate distances the kept
// set and its order must not depend on the order candidates arrive — the
// (Dist, ID) total order makes eviction deterministic.
func TestTieStabilityUnderInsertionOrder(t *testing.T) {
	items := []Item{
		{ID: 0, Dist: 1}, {ID: 1, Dist: 1}, {ID: 2, Dist: 1},
		{ID: 3, Dist: 1}, {ID: 4, Dist: 2}, {ID: 5, Dist: 2},
	}
	want := SelectK(items, 4)

	// All rotations plus a reversal: enough order diversity to catch an
	// arrival-order-dependent eviction rule.
	orders := make([][]Item, 0, len(items)+1)
	for r := 0; r < len(items); r++ {
		rot := append(append([]Item{}, items[r:]...), items[:r]...)
		orders = append(orders, rot)
	}
	rev := make([]Item, len(items))
	for i, it := range items {
		rev[len(items)-1-i] = it
	}
	orders = append(orders, rev)

	for oi, order := range orders {
		h := New(4)
		for _, it := range order {
			h.Push(it.ID, it.Dist)
		}
		if got := h.Sorted(); !reflect.DeepEqual(got, want) {
			t.Errorf("order %d: Sorted() = %v, want %v", oi, got, want)
		}
	}
}

// TestWorstOnPartialHeap: Worst must report ok=false (the +Inf semantics)
// until the heap is full, and the true k-th best afterwards.
func TestWorstOnPartialHeap(t *testing.T) {
	h := New(2)
	if _, ok := h.Worst(); ok {
		t.Fatal("empty heap reported a worst item")
	}
	h.Push(1, 5)
	if _, ok := h.Worst(); ok {
		t.Fatal("half-full heap reported a worst item")
	}
	if !h.Accepts(math.Inf(1)) {
		t.Fatal("non-full heap must accept any distance")
	}
	h.Push(2, 3)
	w, ok := h.Worst()
	if !ok || w.ID != 1 || w.Dist != 5 {
		t.Fatalf("Worst() = %v,%v, want item 1 at 5", w, ok)
	}
}
