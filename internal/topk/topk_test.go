package topk

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPushKeepsBest(t *testing.T) {
	h := New(2)
	if !h.Push(1, 5) || !h.Push(2, 3) {
		t.Fatal("pushes into non-full heap must be kept")
	}
	if h.Push(3, 10) {
		t.Fatal("worse-than-worst push into full heap must be rejected")
	}
	if !h.Push(4, 1) {
		t.Fatal("better push into full heap must be kept")
	}
	got := h.IDs()
	if !reflect.DeepEqual(got, []int{4, 2}) {
		t.Fatalf("IDs = %v, want [4 2]", got)
	}
}

func TestWorstAndAccepts(t *testing.T) {
	h := New(3)
	if _, ok := h.Worst(); ok {
		t.Fatal("Worst on non-full heap should report ok=false")
	}
	if !h.Accepts(1e18) {
		t.Fatal("non-full heap accepts anything")
	}
	h.Push(1, 1)
	h.Push(2, 2)
	h.Push(3, 3)
	w, ok := h.Worst()
	if !ok || w.Dist != 3 {
		t.Fatalf("Worst = %+v ok=%v, want dist 3", w, ok)
	}
	if h.Accepts(3) {
		t.Fatal("equal distance must not be accepted (deterministic keep-first)")
	}
	if !h.Accepts(2.5) {
		t.Fatal("better distance must be accepted")
	}
}

func TestTieBreakOnID(t *testing.T) {
	h := New(2)
	h.Push(5, 1)
	h.Push(3, 1)
	h.Push(9, 1) // same dist, higher id: must lose to id 3 and 5
	got := h.IDs()
	if !reflect.DeepEqual(got, []int{3, 5}) {
		t.Fatalf("IDs = %v, want [3 5]", got)
	}
}

func TestResetAndMerge(t *testing.T) {
	a := New(3)
	a.Push(1, 1)
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset must empty the heap")
	}
	a.Push(1, 1)
	a.Push(2, 9)
	b := New(3)
	b.Push(3, 2)
	b.Push(4, 3)
	a.Merge(b)
	got := a.IDs()
	if !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Fatalf("merged IDs = %v, want [1 3 4]", got)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) must panic")
		}
	}()
	New(0)
}

// Property: the heap agrees with sort-and-truncate for random streams.
func TestHeapMatchesSelectK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(20)
		n := rng.Intn(200)
		items := make([]Item, n)
		h := New(k)
		for i := 0; i < n; i++ {
			// Coarse distances force plenty of ties to exercise ID order.
			d := float64(rng.Intn(30))
			items[i] = Item{ID: i, Dist: d}
			h.Push(i, d)
		}
		return reflect.DeepEqual(h.Sorted(), SelectK(items, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sorted output is non-decreasing in (Dist, ID).
func TestSortedOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(1 + rng.Intn(15))
		for i := 0; i < rng.Intn(100); i++ {
			h.Push(rng.Intn(1000), rng.Float64())
		}
		s := h.Sorted()
		for i := 1; i < len(s); i++ {
			if less(s[i], s[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dists := make([]float64, 4096)
	for i := range dists {
		dists[i] = rng.Float64()
	}
	h := New(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(i, dists[i%len(dists)])
	}
}
