// Package diameter approximates the diameter Δ(S) of a high-dimensional
// point set with the iterative algorithm of Egecioglu & Kalantari
// (Information Processing Letters, 1989), which the paper uses inside the
// RP-tree mean split rule (Section IV-A2).
//
// The algorithm produces an increasing series r_1 < r_2 < ... < r_m with
//
//	r_m ≤ Δ(S) ≤ min(√3·r_1, √(5−2√3)·r_m)
//
// Each iteration costs O(|S|) distance evaluations, so m iterations cost
// O(m·|S|); the paper reports m as small as 40 giving good precision, and
// in practice the series converges much sooner, so we stop early when an
// iteration stops improving.
package diameter

import (
	"math"

	"bilsh/internal/vec"
)

// UpperFactor is √(5−2√3): multiplying the final r_m by it bounds Δ above.
var UpperFactor = math.Sqrt(5 - 2*math.Sqrt(3))

// Result reports the approximation and its certified bracket.
type Result struct {
	// Lower is r_m, a certified lower bound on the true diameter (it is the
	// distance between two actual points of the set).
	Lower float64
	// Upper is min(√3·r_1, √(5−2√3)·r_m), a certified upper bound.
	Upper float64
	// Iterations actually performed (≤ m requested).
	Iterations int
	// A and B are indices (into idx, or into the matrix when idx is nil)
	// of the far pair realizing Lower.
	A, B int
}

// Approx runs up to m iterations over the rows of data listed in idx
// (all rows when idx is nil). Sets with fewer than two points yield a zero
// Result.
func Approx(data *vec.Matrix, idx []int, m int) Result {
	n := data.N
	at := func(i int) []float32 { return data.Row(i) }
	if idx != nil {
		n = len(idx)
		at = func(i int) []float32 { return data.Row(idx[i]) }
	}
	if n < 2 {
		return Result{}
	}
	if m < 1 {
		m = 1
	}

	// One iteration: from point p, find the farthest point q; r = |p-q|.
	farthest := func(from int) (int, float64) {
		best, bestD := -1, -1.0
		fv := at(from)
		for i := 0; i < n; i++ {
			if i == from {
				continue
			}
			d := vec.SqDist(fv, at(i))
			if d > bestD {
				bestD = d
				best = i
			}
		}
		return best, math.Sqrt(bestD)
	}

	res := Result{}
	// Start from the point farthest from the centroid, the standard E-K
	// initialization: it guarantees the √3 bound on r_1.
	centroid := data.Mean(idx)
	start, startD := -1, -1.0
	for i := 0; i < n; i++ {
		d := vec.SqDist(centroid, at(i))
		if d > startD {
			startD = d
			start = i
		}
	}

	var r1 float64
	p := start
	for it := 0; it < m; it++ {
		q, r := farthest(p)
		res.Iterations = it + 1
		if it == 0 {
			r1 = r
		}
		if r > res.Lower {
			res.Lower = r
			res.A, res.B = p, q
		} else {
			// No improvement: the series has converged.
			break
		}
		p = q
	}
	res.Upper = math.Min(math.Sqrt(3)*r1, UpperFactor*res.Lower)
	if res.Upper < res.Lower {
		// The √3·r1 bound only certifies the first iterate; the monotone
		// series can exceed it, in which case Lower itself is the better
		// upper estimate (Δ ≥ Lower always, so clamp).
		res.Upper = UpperFactor * res.Lower
	}
	return res
}

// Exact computes the true diameter by the O(n²) pairwise scan. It exists
// for tests and for tiny leaf sets where the scan is cheaper than the
// iteration bookkeeping.
func Exact(data *vec.Matrix, idx []int) float64 {
	n := data.N
	at := func(i int) []float32 { return data.Row(i) }
	if idx != nil {
		n = len(idx)
		at = func(i int) []float32 { return data.Row(idx[i]) }
	}
	var best float64
	for i := 0; i < n; i++ {
		vi := at(i)
		for j := i + 1; j < n; j++ {
			if d := vec.SqDist(vi, at(j)); d > best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}
