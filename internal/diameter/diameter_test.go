package diameter

import (
	"math"
	"testing"
	"testing/quick"

	"bilsh/internal/dataset"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func TestApproxTinySets(t *testing.T) {
	m := vec.FromRows([][]float32{{1, 1}})
	if r := Approx(m, nil, 10); r.Lower != 0 || r.Upper != 0 {
		t.Fatalf("single point diameter = %+v, want zeros", r)
	}
	two := vec.FromRows([][]float32{{0, 0}, {3, 4}})
	r := Approx(two, nil, 10)
	if math.Abs(r.Lower-5) > 1e-6 {
		t.Fatalf("two-point Lower = %v, want 5", r.Lower)
	}
}

func TestApproxExactOnColinear(t *testing.T) {
	// Points on a segment: the diameter endpoints are found in one hop.
	m := vec.FromRows([][]float32{{0}, {1}, {2}, {7}, {3}})
	r := Approx(m, nil, 40)
	if r.Lower != 7 {
		t.Fatalf("colinear Lower = %v, want 7", r.Lower)
	}
}

// Property: the certified bracket Lower <= exact <= Upper holds, and Lower
// is realized by an actual point pair.
func TestBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 3 + rng.Intn(80)
		d := 1 + rng.Intn(12)
		data := dataset.Gaussian(n, d, 1+rng.Float64()*3, rng.Split(1))
		r := Approx(data, nil, 40)
		exact := Exact(data, nil)
		if r.Lower > exact+1e-6 {
			return false // lower bound violated
		}
		if r.Upper < exact-1e-6*exact {
			return false // upper bound violated
		}
		realized := vec.Dist(data.Row(r.A), data.Row(r.B))
		return math.Abs(realized-r.Lower) < 1e-6*(1+r.Lower)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxQuality(t *testing.T) {
	// On realistic clustered data with m=40 the approximation should be
	// within the theoretical factor and practically much closer.
	rng := xrand.New(17)
	data, _, err := dataset.Clustered(dataset.DefaultClusteredSpec(400, 24), rng)
	if err != nil {
		t.Fatal(err)
	}
	r := Approx(data, nil, 40)
	exact := Exact(data, nil)
	if r.Lower < 0.8*exact {
		t.Fatalf("approximation too loose: %v vs exact %v", r.Lower, exact)
	}
}

func TestApproxWithIndexSubset(t *testing.T) {
	m := vec.FromRows([][]float32{{0}, {100}, {1}, {2}})
	// Excluding row 1 the diameter is 2.
	r := Approx(m, []int{0, 2, 3}, 10)
	if r.Lower != 2 {
		t.Fatalf("subset Lower = %v, want 2", r.Lower)
	}
	if e := Exact(m, []int{0, 2, 3}); e != 2 {
		t.Fatalf("subset Exact = %v, want 2", e)
	}
}

func TestEarlyStop(t *testing.T) {
	// On a perfectly symmetric set the series converges immediately; the
	// iteration count must reflect early termination rather than m.
	m := vec.FromRows([][]float32{{-1, 0}, {1, 0}, {0, 0.5}})
	r := Approx(m, nil, 1000)
	if r.Iterations >= 1000 {
		t.Fatalf("no early stop: %d iterations", r.Iterations)
	}
	if r.Lower != 2 {
		t.Fatalf("Lower = %v, want 2", r.Lower)
	}
}

func TestUpperFactorValue(t *testing.T) {
	want := math.Sqrt(5 - 2*math.Sqrt(3))
	if UpperFactor != want {
		t.Fatalf("UpperFactor = %v, want %v", UpperFactor, want)
	}
}
