package lshtable

import (
	"bytes"
	"reflect"
	"testing"

	"bilsh/internal/wire"
)

func TestTableRoundTrip(t *testing.T) {
	orig, err := Build([]string{"b", "a", "b", "c", "a", "a"}, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	orig.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBuckets() != orig.NumBuckets() || got.NumItems() != orig.NumItems() {
		t.Fatal("table shape changed")
	}
	for _, key := range []string{"a", "b", "c", "zz"} {
		if !reflect.DeepEqual(got.Bucket(key), orig.Bucket(key)) {
			t.Fatalf("bucket %q differs after round trip", key)
		}
	}
	if !reflect.DeepEqual(got.Summary(), orig.Summary()) {
		t.Fatal("summary differs after round trip")
	}
}

func TestEmptyTableRoundTrip(t *testing.T) {
	orig, err := Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	orig.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBuckets() != 0 || got.Bucket("x") != nil {
		t.Fatal("empty table misbehaves after round trip")
	}
}

func TestDecodeTableRejectsInconsistentIntervals(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("lshtable.Table/1")
	w.Strings([]string{"a", "b"})
	w.Ints([]int{0, 5, 3}) // decreasing interval
	w.Ints([]int{1, 2, 3})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTable(wire.NewReader(&buf)); err == nil {
		t.Fatal("decreasing bucket intervals must be rejected")
	}
}

func TestDecodeTableRejectsUnsortedKeys(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("lshtable.Table/1")
	w.Strings([]string{"b", "a"})
	w.Ints([]int{0, 1, 2})
	w.Ints([]int{1, 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTable(wire.NewReader(&buf)); err == nil {
		t.Fatal("unsorted keys must be rejected")
	}
}

func TestDecodeTableRejectsStartMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("lshtable.Table/1")
	w.Strings([]string{"a"})
	w.Ints([]int{0, 3}) // claims 3 ids...
	w.Ints([]int{1, 2}) // ...but carries 2
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTable(wire.NewReader(&buf)); err == nil {
		t.Fatal("interval/id mismatch must be rejected")
	}
}
