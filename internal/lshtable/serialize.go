package lshtable

import (
	"fmt"

	"bilsh/internal/wire"
)

const tableMagic = "lshtable.Table/1"

// Encode writes the bucket store to w. The cuckoo index is derived state
// and rebuilt on load.
func (t *Table) Encode(w *wire.Writer) {
	w.Magic(tableMagic)
	w.Strings(t.keys)
	w.Ints(t.starts)
	w.Ints(t.ids)
}

// DecodeTable reads a table written by Encode and rebuilds its index.
func DecodeTable(r *wire.Reader) (*Table, error) {
	r.ExpectMagic(tableMagic)
	t := &Table{
		keys:   r.Strings(),
		starts: r.Ints(),
		ids:    r.Ints(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(t.starts) != len(t.keys)+1 {
		return nil, fmt.Errorf("lshtable: decoded %d starts for %d keys", len(t.starts), len(t.keys))
	}
	if len(t.starts) > 0 {
		if t.starts[0] != 0 || t.starts[len(t.starts)-1] != len(t.ids) {
			return nil, fmt.Errorf("lshtable: decoded bucket intervals do not cover the id array")
		}
		for b := 1; b < len(t.starts); b++ {
			if t.starts[b] < t.starts[b-1] {
				return nil, fmt.Errorf("lshtable: decoded bucket %d has negative size", b-1)
			}
			if b < len(t.keys) && t.keys[b] <= t.keys[b-1] {
				return nil, fmt.Errorf("lshtable: decoded keys not strictly sorted at %d", b)
			}
		}
	}
	// Empty tables round-trip with nil slices; normalize the sentinel.
	if len(t.keys) == 0 {
		t.starts = append(t.starts[:0], 0)
	}
	// Rebuild the cuckoo index.
	rebuilt, err := Build(flattenCodes(t), flattenIDs(t))
	if err != nil {
		return nil, fmt.Errorf("lshtable: rebuilding index: %w", err)
	}
	return rebuilt, nil
}

func flattenCodes(t *Table) []string {
	out := make([]string, 0, len(t.ids))
	for b := 0; b < len(t.keys); b++ {
		for i := t.starts[b]; i < t.starts[b+1]; i++ {
			out = append(out, t.keys[b])
		}
	}
	return out
}

func flattenIDs(t *Table) []int {
	out := make([]int, 0, len(t.ids))
	out = append(out, t.ids...)
	return out
}
