package lshtable

import (
	"fmt"
	"math/rand"
	"testing"
)

func buildRandom(t *testing.T, n, buckets int, seed int64) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	codes := make([]string, n)
	ids := make([]int, n)
	for i := range codes {
		codes[i] = fmt.Sprintf("k%04d", rng.Intn(buckets))
		ids[i] = i
	}
	tab, err := Build(codes, ids)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestMappedRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, buckets int }{
		{0, 1}, {1, 1}, {500, 40}, {2000, 311},
	} {
		tab := buildRandom(t, tc.n, tc.buckets, int64(tc.n)+7)
		img := tab.AppendMapped(nil)
		if len(img) != tab.MappedSize() {
			t.Fatalf("n=%d: image %d bytes, MappedSize says %d", tc.n, len(img), tab.MappedSize())
		}
		view, err := ViewMapped(img, tc.n+1)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if view.NumBuckets() != tab.NumBuckets() || view.NumItems() != tab.NumItems() {
			t.Fatalf("n=%d: shape %d/%d want %d/%d", tc.n,
				view.NumBuckets(), view.NumItems(), tab.NumBuckets(), tab.NumItems())
		}
		for b := 0; b < tab.NumBuckets(); b++ {
			key, ids := tab.BucketByOrdinal(b)
			vids := view.Bucket(key)
			if len(vids) != len(ids) {
				t.Fatalf("bucket %q: %d ids, want %d", key, len(vids), len(ids))
			}
			for i := range ids {
				if vids[i] != ids[i] {
					t.Fatalf("bucket %q id[%d]: %d want %d", key, i, vids[i], ids[i])
				}
			}
			if got := view.BucketBytes([]byte(key)); len(got) != len(ids) {
				t.Fatalf("BucketBytes(%q): %d ids, want %d", key, len(got), len(ids))
			}
		}
		if ids := view.Bucket("no-such-key"); ids != nil {
			t.Fatal("absent key returned a bucket")
		}
		s1, s2 := tab.Summary(), view.Summary()
		if s1 != s2 {
			t.Fatalf("summary drift: %+v vs %+v", s1, s2)
		}
	}
}

func TestMappedRejectsCorrupt(t *testing.T) {
	tab := buildRandom(t, 300, 37, 3)
	img := tab.AppendMapped(nil)

	if _, err := ViewMapped(nil, 300); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := ViewMapped(img[:len(img)-8], 300); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte{}, img...)
	bad[0] = 'X'
	if _, err := ViewMapped(bad, 300); err == nil {
		t.Error("bad magic accepted")
	}
	// id out of range: maxID below the real id space must be rejected.
	if _, err := ViewMapped(img, 5); err == nil {
		t.Error("out-of-range ids accepted")
	}
}

func TestMappedOverflowCollision(t *testing.T) {
	// Force the overflow path by building a table, then checking a mapped
	// round trip preserves overflow behavior if any collisions exist. Real
	// 64-bit collisions are astronomically rare, so synthesize one by
	// round-tripping a table that already has an overflow map (none in
	// practice) — this test then only asserts the nil-overflow round trip.
	tab := buildRandom(t, 100, 10, 11)
	img := tab.AppendMapped(nil)
	view, err := ViewMapped(img, 100)
	if err != nil {
		t.Fatal(err)
	}
	if (tab.overflow == nil) != (view.overflow == nil) {
		t.Fatal("overflow presence drifted across round trip")
	}
}
