package lshtable

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"bilsh/internal/lattice"
	"bilsh/internal/xrand"
)

func TestBuildAndLookup(t *testing.T) {
	codes := []string{"b", "a", "b", "c", "a"}
	ids := []int{0, 1, 2, 3, 4}
	tab, err := Build(codes, ids)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumBuckets() != 3 || tab.NumItems() != 5 {
		t.Fatalf("buckets=%d items=%d", tab.NumBuckets(), tab.NumItems())
	}
	if got := tab.Bucket("a"); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("Bucket(a) = %v", got)
	}
	if got := tab.Bucket("b"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Bucket(b) = %v", got)
	}
	if got := tab.Bucket("zzz"); got != nil {
		t.Fatalf("absent bucket = %v", got)
	}
	if tab.BucketSize("c") != 1 || tab.BucketSize("nope") != 0 {
		t.Fatal("BucketSize wrong")
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	if _, err := Build([]string{"a"}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestBucketsContiguousAndSorted(t *testing.T) {
	codes := []string{"x", "y", "x", "z", "y", "x"}
	ids := []int{5, 4, 3, 2, 1, 0}
	tab, err := Build(codes, ids)
	if err != nil {
		t.Fatal(err)
	}
	keys := tab.Keys()
	if !sort.StringsAreSorted(keys) {
		t.Fatal("bucket keys not sorted")
	}
	total := 0
	for b := 0; b < tab.NumBuckets(); b++ {
		key, members := tab.BucketByOrdinal(b)
		if key != keys[b] {
			t.Fatal("BucketByOrdinal key mismatch")
		}
		total += len(members)
	}
	if total != 6 {
		t.Fatalf("buckets cover %d items", total)
	}
}

// Property: Build agrees with a reference map[string][]int grouping for
// random inputs, including lattice-generated keys.
func TestMapEquivalence(t *testing.T) {
	z := lattice.NewZM(3)
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(300)
		codes := make([]string, n)
		ids := make([]int, n)
		ref := make(map[string][]int)
		for i := 0; i < n; i++ {
			code := z.Decode([]float64{
				float64(rng.Intn(10)) - 5,
				float64(rng.Intn(10)) - 5,
				float64(rng.Intn(4)) - 2,
			})
			key := lattice.Key(code)
			codes[i] = key
			ids[i] = i
			ref[key] = append(ref[key], i)
		}
		tab, err := Build(codes, ids)
		if err != nil {
			return false
		}
		if tab.NumBuckets() != len(ref) {
			return false
		}
		for key, want := range ref {
			if !reflect.DeepEqual(tab.Bucket(key), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	tab, err := Build([]string{"a", "a", "a", "b"}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Summary()
	if s.Buckets != 2 || s.Items != 4 || s.MaxBucket != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MeanBucket != 2 {
		t.Fatalf("MeanBucket = %v", s.MeanBucket)
	}
	// (9+1)/4
	if s.CollisionMass != 2.5 {
		t.Fatalf("CollisionMass = %v", s.CollisionMass)
	}
}

func TestEmptyTable(t *testing.T) {
	tab, err := Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumBuckets() != 0 || tab.Bucket("a") != nil {
		t.Fatal("empty table misbehaves")
	}
	if s := tab.Summary(); s.Buckets != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func BenchmarkBucketLookup(b *testing.B) {
	rng := xrand.New(1)
	n := 50000
	codes := make([]string, n)
	ids := make([]int, n)
	z := lattice.NewZM(8)
	y := make([]float64, 8)
	for i := 0; i < n; i++ {
		for j := range y {
			y[j] = rng.NormFloat64() * 5
		}
		codes[i] = lattice.Key(z.Decode(y))
		ids[i] = i
	}
	tab, err := Build(codes, ids)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Bucket(codes[i%n])
	}
}
