package lshtable

import (
	"encoding/binary"
	"fmt"

	"bilsh/internal/cuckoo"
	"bilsh/internal/mmap"
)

// Mapped table image — the bucket-store section of the paged disk layout
// (bilsh.Disk/3). Unlike the wire Encode/DecodeTable pair, which streams
// varints and rebuilds the cuckoo index on load, this image stores every
// array as fixed-width little-endian records at 8-aligned offsets so an
// opened index can alias them in place: ids and starts reinterpret as
// []int, bucket keys become string headers over the shared key blob, and
// the cuckoo index maps via cuckoo.ViewBinary. Opening costs O(buckets)
// heap (string headers) instead of O(items), and the id arrays — the
// dominant index structure at scale — stay on disk until probed.
//
// Layout (all u64 little endian; keysBlob last so every array before it
// is naturally 8-aligned; image padded to a multiple of 8):
//
//	[ 0, 8)  magic "LSHTBL/3"
//	[ 8,16)  nBuckets
//	[16,24)  nIds
//	[24,32)  keysBlobLen
//	[32,40)  overflowCount
//	[40,48)  cuckooLen
//	starts    (nBuckets+1) × i64
//	ids       nIds × i64
//	keyOffs   (nBuckets+1) × i64  (offsets into keysBlob)
//	overflow  overflowCount × i64 (bucket ordinals routed via the exact map)
//	cuckoo    cuckooLen bytes (cuckoo.AppendBinary image)
//	keysBlob  keysBlobLen bytes, zero-padded to 8
const mappedMagic = "LSHTBL/3"

const mappedHeaderLen = 48

// MappedSize returns the byte size of AppendMapped's output (always a
// multiple of 8).
func (t *Table) MappedSize() int {
	var keyBytes int
	for _, k := range t.keys {
		keyBytes += len(k)
	}
	n := mappedHeaderLen +
		8*(len(t.keys)+1) + // starts
		8*len(t.ids) +
		8*(len(t.keys)+1) + // keyOffs
		8*len(t.overflow) +
		t.index.BinarySize() +
		keyBytes
	return (n + 7) &^ 7
}

// AppendMapped appends the table's mapped image to dst.
func (t *Table) AppendMapped(dst []byte) []byte {
	base := len(dst)
	var keyBytes int
	for _, k := range t.keys {
		keyBytes += len(k)
	}
	dst = append(dst, mappedMagic...)
	dst = appendU64(dst, uint64(len(t.keys)))
	dst = appendU64(dst, uint64(len(t.ids)))
	dst = appendU64(dst, uint64(keyBytes))
	dst = appendU64(dst, uint64(len(t.overflow)))
	dst = appendU64(dst, uint64(t.index.BinarySize()))
	for _, s := range t.starts {
		dst = appendU64(dst, uint64(int64(s)))
	}
	if len(t.keys) == 0 && len(t.starts) == 0 {
		// Normalized empty tables carry starts == [0]; a zero-value table
		// would otherwise emit nothing for the (nBuckets+1) slot.
		dst = appendU64(dst, 0)
	}
	for _, id := range t.ids {
		dst = appendU64(dst, uint64(int64(id)))
	}
	off := 0
	for _, k := range t.keys {
		dst = appendU64(dst, uint64(off))
		off += len(k)
	}
	dst = appendU64(dst, uint64(off))
	// Overflow ordinals, sorted for determinism (map iteration order).
	ords := make([]int, 0, len(t.overflow))
	for _, b := range t.overflow {
		ords = append(ords, b)
	}
	sortInts(ords)
	for _, b := range ords {
		dst = appendU64(dst, uint64(int64(b)))
	}
	dst = t.index.AppendBinary(dst)
	for _, k := range t.keys {
		dst = append(dst, k...)
	}
	for (len(dst)-base)%8 != 0 {
		dst = append(dst, 0)
	}
	return dst
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ViewMapped opens a table over b (an AppendMapped image, possibly
// mmap-backed). The returned table aliases b wherever the host allows
// zero-copy reinterpretation; the caller must keep b immutable and alive
// for the table's lifetime. maxID, when positive, bounds every stored
// item id (a corrupt file must not inject ids outside the row space).
// Structural corruption returns an error; ViewMapped never panics or
// reads outside b.
func ViewMapped(b []byte, maxID int) (*Table, error) {
	if len(b) < mappedHeaderLen {
		return nil, fmt.Errorf("lshtable: mapped image %d bytes, want >= %d", len(b), mappedHeaderLen)
	}
	if string(b[:8]) != mappedMagic {
		return nil, fmt.Errorf("lshtable: bad mapped magic %q", b[:8])
	}
	nBuckets := binary.LittleEndian.Uint64(b[8:])
	nIds := binary.LittleEndian.Uint64(b[16:])
	keysBlobLen := binary.LittleEndian.Uint64(b[24:])
	overflowCount := binary.LittleEndian.Uint64(b[32:])
	cuckooLen := binary.LittleEndian.Uint64(b[40:])
	const limit = 1 << 40
	if nBuckets > limit || nIds > limit || keysBlobLen > limit || overflowCount > nBuckets || cuckooLen > limit {
		return nil, fmt.Errorf("lshtable: mapped image counts implausible (%d buckets, %d ids)", nBuckets, nIds)
	}
	need := uint64(mappedHeaderLen) + 8*(nBuckets+1) + 8*nIds + 8*(nBuckets+1) + 8*overflowCount + cuckooLen + keysBlobLen
	padded := (need + 7) &^ 7
	if uint64(len(b)) != padded {
		return nil, fmt.Errorf("lshtable: mapped image %d bytes, want %d", len(b), padded)
	}

	off := uint64(mappedHeaderLen)
	startsB := b[off : off+8*(nBuckets+1)]
	off += 8 * (nBuckets + 1)
	idsB := b[off : off+8*nIds]
	off += 8 * nIds
	keyOffsB := b[off : off+8*(nBuckets+1)]
	off += 8 * (nBuckets + 1)
	overflowB := b[off : off+8*overflowCount]
	off += 8 * overflowCount
	cuckooB := b[off : off+cuckooLen]
	off += cuckooLen
	keysBlob := b[off : off+keysBlobLen]

	t := &Table{
		starts: mmap.ViewInts(startsB),
		ids:    mmap.ViewInts(idsB),
	}
	// Interval invariants, exactly DecodeTable's checks.
	if t.starts[0] != 0 || t.starts[nBuckets] != int(nIds) {
		return nil, fmt.Errorf("lshtable: mapped bucket intervals do not cover the id array")
	}
	for i := uint64(1); i <= nBuckets; i++ {
		if t.starts[i] < t.starts[i-1] {
			return nil, fmt.Errorf("lshtable: mapped bucket %d has negative size", i-1)
		}
	}
	if maxID > 0 {
		for _, id := range t.ids {
			if id < 0 || id >= maxID {
				return nil, fmt.Errorf("lshtable: mapped id %d out of [0,%d)", id, maxID)
			}
		}
	}

	// Bucket keys: string headers over the shared blob (no byte copies).
	keyOffs := mmap.ViewInts(keyOffsB)
	if keyOffs[0] != 0 || keyOffs[nBuckets] != int(keysBlobLen) {
		return nil, fmt.Errorf("lshtable: mapped key offsets do not cover the key blob")
	}
	t.keys = make([]string, nBuckets)
	for i := uint64(0); i < nBuckets; i++ {
		lo, hi := keyOffs[i], keyOffs[i+1]
		if lo < 0 || hi < lo || hi > int(keysBlobLen) {
			return nil, fmt.Errorf("lshtable: mapped key %d offsets [%d,%d) invalid", i, lo, hi)
		}
		t.keys[i] = mmap.String(keysBlob[lo:hi])
		if i > 0 && t.keys[i] <= t.keys[i-1] {
			return nil, fmt.Errorf("lshtable: mapped keys not strictly sorted at %d", i)
		}
	}

	for i := uint64(0); i < overflowCount; i++ {
		ord := int(int64(binary.LittleEndian.Uint64(overflowB[8*i:])))
		if ord < 0 || ord >= int(nBuckets) {
			return nil, fmt.Errorf("lshtable: mapped overflow ordinal %d out of range", ord)
		}
		if t.overflow == nil {
			t.overflow = make(map[string]int, overflowCount)
		}
		t.overflow[t.keys[ord]] = ord
	}

	idx, err := cuckoo.ViewBinary(cuckooB, int(nBuckets))
	if err != nil {
		return nil, fmt.Errorf("lshtable: mapped cuckoo index: %w", err)
	}
	t.index = idx
	return t, nil
}
