// Package lshtable stores one LSH hash table in the layout of the paper's
// Section V-A: a single sorted linear array of item ids, grouped so that
// all items with the same LSH code are contiguous (a bucket), plus an
// index from code key to the bucket's [start, end) interval. The interval
// index is a cuckoo hash table over compressed 64-bit keys, as on the GPU,
// with an exactness fallback for the (astronomically rare) 64-bit key
// collision.
package lshtable

import (
	"cmp"
	"fmt"
	"slices"

	"bilsh/internal/cuckoo"
)

// Table is one immutable LSH hash table.
type Table struct {
	keys   []string // unique bucket keys, in sorted bucket order
	starts []int    // len == len(keys)+1; bucket b is ids[starts[b]:starts[b+1]]
	ids    []int    // all item ids grouped by bucket

	index    *cuckoo.Table  // compressed key -> bucket ordinal
	overflow map[string]int // buckets whose compressed key collided
}

// Build groups ids by their code keys. codes[i] is the key of ids[i].
func Build(codes []string, ids []int) (*Table, error) {
	if len(codes) != len(ids) {
		return nil, fmt.Errorf("lshtable: %d codes but %d ids", len(codes), len(ids))
	}
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if c := cmp.Compare(codes[a], codes[b]); c != 0 {
			return c
		}
		return cmp.Compare(ids[a], ids[b])
	})

	t := &Table{ids: make([]int, len(ids))}
	for out, in := range order {
		t.ids[out] = ids[in]
		key := codes[in]
		if len(t.keys) == 0 || t.keys[len(t.keys)-1] != key {
			t.keys = append(t.keys, key)
			t.starts = append(t.starts, out)
		}
	}
	t.starts = append(t.starts, len(t.ids))

	t.index = cuckoo.New(len(t.keys))
	for b, key := range t.keys {
		ck := compress(key)
		if prev, ok := t.index.Get(ck); ok {
			// 64-bit collision between distinct keys: route both through
			// the exact overflow map.
			if t.overflow == nil {
				t.overflow = make(map[string]int)
			}
			t.overflow[t.keys[prev]] = prev
			t.overflow[key] = b
			continue
		}
		if err := t.index.Put(ck, b); err != nil {
			return nil, fmt.Errorf("lshtable: indexing bucket %d: %w", b, err)
		}
	}
	return t, nil
}

// compress folds a code key to the 64-bit cuckoo key (the "dim-1 key by
// using another hash function" of Section V-A).
func compress(key string) uint64 { return cuckoo.Compress64String(key) }

// NumBuckets returns the number of distinct codes.
func (t *Table) NumBuckets() int { return len(t.keys) }

// NumItems returns the number of stored ids.
func (t *Table) NumItems() int { return len(t.ids) }

// Bucket returns the item ids whose code key equals key. The returned
// slice aliases the table's storage; callers must not modify it.
func (t *Table) Bucket(key string) []int {
	b, ok := t.bucketOrdinal(key)
	if !ok {
		return nil
	}
	return t.ids[t.starts[b]:t.starts[b+1]]
}

// bucketOrdinal resolves a key to its bucket index.
func (t *Table) bucketOrdinal(key string) (int, bool) {
	if t.overflow != nil {
		if b, ok := t.overflow[key]; ok {
			return b, true
		}
	}
	b, ok := t.index.Get(compress(key))
	if !ok || t.keys[b] != key {
		return 0, false
	}
	return b, true
}

// BucketBytes is Bucket for a byte-slice key: the query hot path encodes
// codes into a reused byte buffer and probes without ever converting to
// string (the conversions below are comparison/lookup temporaries the
// compiler does not materialize on the heap).
func (t *Table) BucketBytes(key []byte) []int {
	b, ok := t.bucketOrdinalBytes(key)
	if !ok {
		return nil
	}
	return t.ids[t.starts[b]:t.starts[b+1]]
}

// bucketOrdinalBytes resolves a byte-slice key to its bucket index without
// allocating.
func (t *Table) bucketOrdinalBytes(key []byte) (int, bool) {
	if t.overflow != nil {
		if b, ok := t.overflow[string(key)]; ok {
			return b, true
		}
	}
	b, ok := t.index.Get(cuckoo.Compress64(key))
	if !ok || t.keys[b] != string(key) {
		return 0, false
	}
	return b, true
}

// BucketByOrdinal returns bucket b's key and ids in sorted-key order,
// which is what the hierarchy builders iterate.
func (t *Table) BucketByOrdinal(b int) (string, []int) {
	return t.keys[b], t.ids[t.starts[b]:t.starts[b+1]]
}

// BucketSize returns the population of the bucket holding key (0 when the
// bucket does not exist).
func (t *Table) BucketSize(key string) int {
	b, ok := t.bucketOrdinal(key)
	if !ok {
		return 0
	}
	return t.starts[b+1] - t.starts[b]
}

// Keys returns the sorted unique bucket keys (shared storage; read-only).
func (t *Table) Keys() []string { return t.keys }

// Stats summarizes bucket occupancy for parameter-tuning and reports.
type Stats struct {
	Buckets   int
	Items     int
	MaxBucket int
	// MeanBucket is Items/Buckets.
	MeanBucket float64
	// CollisionMass is Σ size² / Items — the expected bucket size seen by
	// a random stored item, a direct selectivity predictor.
	CollisionMass float64
}

// Summary computes occupancy statistics.
func (t *Table) Summary() Stats {
	s := Stats{Buckets: len(t.keys), Items: len(t.ids)}
	if s.Buckets == 0 {
		return s
	}
	var sq float64
	for b := 0; b < len(t.keys); b++ {
		size := t.starts[b+1] - t.starts[b]
		if size > s.MaxBucket {
			s.MaxBucket = size
		}
		sq += float64(size) * float64(size)
	}
	s.MeanBucket = float64(s.Items) / float64(s.Buckets)
	s.CollisionMass = sq / float64(s.Items)
	return s
}
