package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound ("le"); the final
	// bucket has UpperBound +Inf (serialized as the string "+Inf" in JSON).
	UpperBound float64 `json:"-"`
	// Count is the cumulative number of observations <= UpperBound.
	Count int64 `json:"count"`
}

// MarshalJSON emits {"le":"0.01","count":42}; +Inf needs a string form
// because JSON has no infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, +1) {
		le = formatFloat(b.UpperBound)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// Point is one series in a snapshot: a counter or gauge value, or a full
// histogram.
type Point struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`

	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`

	// Count, Sum and Buckets are set for histograms.
	Count   *int64   `json:"count,omitempty"`
	Sum     *float64 `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every registered series in a deterministic order:
// families in registration order, series in registration order within a
// family. Values are read atomically per metric.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	type flat struct {
		f *family
		s *series
	}
	var all []flat
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			all = append(all, flat{f, f.series[key]})
		}
	}
	r.mu.Unlock()

	out := make([]Point, 0, len(all))
	for _, fs := range all {
		p := Point{Name: fs.f.name, Type: fs.f.typ, Help: fs.f.help}
		if len(fs.s.labels) > 0 {
			p.Labels = make(map[string]string, len(fs.s.labels))
			for _, l := range fs.s.labels {
				p.Labels[l.Name] = l.Value
			}
		}
		switch fs.f.typ {
		case typeCounter:
			v := float64(fs.s.c.Value())
			p.Value = &v
		case typeGauge:
			v := float64(fs.s.g.Value())
			p.Value = &v
		case typeHistogram:
			h := fs.s.h
			cum := h.Cumulative()
			n := h.Count()
			sum := h.Sum()
			p.Count, p.Sum = &n, &sum
			p.Buckets = make([]Bucket, len(cum))
			for i, c := range cum {
				ub := math.Inf(+1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				p.Buckets[i] = Bucket{UpperBound: ub, Count: c}
			}
		}
		out = append(out, p)
	}
	return out
}

// WriteJSON writes the snapshot as a single JSON object:
//
//	{"metrics":[{"name":...,"type":"counter","value":12}, ...]}
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Point `json:"metrics"`
	}{r.Snapshot()})
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, one line
// per series, histograms expanded into _bucket{le=...}, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Snapshot()
	var b strings.Builder
	lastFamily := ""
	for _, p := range points {
		if p.Name != lastFamily {
			if p.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, escapeHelp(p.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, p.Type)
			lastFamily = p.Name
		}
		switch p.Type {
		case typeCounter, typeGauge:
			fmt.Fprintf(&b, "%s%s %s\n", p.Name, promLabels(p.Labels, "", ""), formatFloat(*p.Value))
		case typeHistogram:
			for _, bk := range p.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, +1) {
					le = formatFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, "le", le), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", p.Name, promLabels(p.Labels, "", ""), formatFloat(*p.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", p.Name, promLabels(p.Labels, "", ""), *p.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promLabels renders {k="v",...} with an optional extra label appended
// (used for the histogram "le"); empty label sets render as "".
func promLabels(labels map[string]string, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	// Deterministic order for tests and diffing.
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes newlines and backslashes per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
