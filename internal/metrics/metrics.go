// Package metrics is the repository's own lock-cheap instrumentation
// layer: atomic counters, gauges, and fixed-bucket latency histograms,
// collected in a process-wide Registry and exposed as JSON or Prometheus
// text exposition format. It has no dependencies outside the standard
// library, so every package in the module (including the hot query path
// in internal/core) can record into it without pulling in an external
// metrics stack.
//
// # Why it exists
//
// The paper's performance story (the GPU pipeline of Section V, the
// W/multi-probe trade-off curves of Section VI) depends on knowing where
// query time goes — RP-tree descent, probe generation, short-list scan,
// top-k merge. core.QueryStats reports that per query but evaporates with
// the response; this package is where those per-query samples accumulate
// so operators (and future optimization PRs) can see distributions over a
// whole workload: `GET /metrics` on a running server, the -metrics flag on
// `bilsh exp`, or the periodic Logger.
//
// # Concurrency and cost
//
// All update operations (Counter.Add, Gauge.Set, Histogram.Observe) are
// single atomic instructions plus, for histograms, one branch-free binary
// search over a small immutable bound slice — no locks, no allocation.
// Registry lookups (Registry.Counter etc.) do take a mutex, so hot paths
// should resolve their metric pointers once (package-level vars or struct
// fields) and then only call the atomic update methods. Snapshots read the
// same atomics; a snapshot taken during concurrent updates is a coherent
// per-metric view, not a global point-in-time cut, which is the standard
// metrics-registry contract.
//
// # Typical use
//
//	var queries = metrics.Default().Counter(
//	        "bilsh_core_queries_total", "Single-vector Query calls.")
//	var latency = metrics.Default().Histogram(
//	        "bilsh_core_query_seconds", "End-to-end query latency.",
//	        metrics.DefLatencyBuckets)
//
//	func handle() {
//	        start := time.Now()
//	        ...
//	        queries.Inc()
//	        latency.Observe(time.Since(start).Seconds())
//	}
//
// Every exported metric name in the repository is catalogued in
// docs/metrics.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is a programming error and is ignored so a
// counter can never go backwards.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v with v <= Bounds[i] and v > Bounds[i-1]; one implicit overflow bucket
// (+Inf) catches everything above the last bound. Counts are stored
// per-bucket (not cumulative); exposition cumulates them to match the
// Prometheus `le` convention.
type Histogram struct {
	bounds  []float64      // sorted upper bounds, immutable after creation
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// newHistogram validates and copies bounds.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	cp := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(cp) {
		panic("metrics: histogram bounds must be sorted ascending")
	}
	for i := 1; i < len(cp); i++ {
		if cp[i] == cp[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	if math.IsInf(cp[len(cp)-1], +1) {
		cp = cp[:len(cp)-1] // the +Inf bucket is implicit
	}
	if len(cp) == 0 {
		panic("metrics: histogram needs at least one finite bucket bound")
	}
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bound >= v; SearchFloat64s finds the first i with bounds[i] >= v
	// because bounds are strictly increasing.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative bucket counts aligned with Bounds()
// plus one final entry for +Inf (== Count(), up to snapshot skew).
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// interpolation inside the owning bucket, the same estimate Prometheus's
// histogram_quantile computes. The +Inf bucket clamps to the last finite
// bound. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	cum := h.Cumulative()
	n := cum[len(cum)-1]
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(h.bounds) {
		return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
	}
	lo, prev := 0.0, int64(0)
	if i > 0 {
		lo, prev = h.bounds[i-1], cum[i-1]
	}
	hi := h.bounds[i]
	inBucket := cum[i] - prev
	if inBucket == 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(prev))/float64(inBucket)
}

// ExpBuckets returns n bounds start, start*factor, start*factor², ….
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d): need start>0, factor>1, n>=1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, start+2·width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("metrics: LinearBuckets(%v, %v, %d): need width>0, n>=1", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DefLatencyBuckets spans 10µs to ~10s in powers of two — wide enough for
// both an in-memory bucket probe and a cold disk-backed batch.
var DefLatencyBuckets = ExpBuckets(10e-6, 2, 21)

// DefCountBuckets spans 1 to ~256k in powers of four, suited to candidate
// and probe counts whose interesting range covers several decades.
var DefCountBuckets = ExpBuckets(1, 4, 10)
