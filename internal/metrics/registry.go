package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name="value" dimension of a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metric type strings, shared by exposition.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family groups every label combination (series) of one metric name; a
// family has a single type and help string, mirroring the Prometheus data
// model.
type family struct {
	name   string
	help   string
	typ    string
	bounds []float64 // histogram families only; fixed across series

	series map[string]*series // keyed by canonical label string
	order  []string           // registration order of series keys
}

// series is one (name, labels) instrument.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default). Registration (the Counter/Gauge/Histogram
// lookups) takes a mutex; the returned instruments update lock-free, so
// hot paths should cache them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order of family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// std is the process-wide registry that core, server, shortlist and
// multiprobe record into.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the counter registered under name and labels, creating
// it on first use. It panics if name is already registered with a
// different type — a programming error, like a duplicate flag.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, typeCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge registered under name and labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, typeGauge, nil, labels)
	return s.g
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use with the given bucket upper bounds. Bounds are
// fixed per family: series of the same name share them, and passing
// different bounds for an existing family panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, typeHistogram, bounds, labels)
	return s.h
}

// lookup is the shared get-or-create path.
func (r *Registry) lookup(name, help, typ string, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Name, name))
		}
	}
	key := labelKey(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		if typ == typeHistogram {
			f.bounds = newHistogram(bounds).bounds // validated copy
		}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %q already registered as %s, requested %s", name, f.typ, typ))
	}
	if typ == typeHistogram && bounds != nil && !sameBounds(f.bounds, newHistogram(bounds).bounds) {
		panic(fmt.Sprintf("metrics: %q re-registered with different buckets", name))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sortedLabels(labels)}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// sortedLabels returns a copy sorted by label name, the canonical series
// order.
func sortedLabels(labels []Label) []Label {
	cp := append([]Label(nil), labels...)
	sort.Slice(cp, func(a, b int) bool { return cp[a].Name < cp[b].Name })
	return cp
}

// labelKey is the canonical map key for a label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	cp := sortedLabels(labels)
	key := ""
	for _, l := range cp {
		key += l.Name + "\x00" + l.Value + "\x00"
	}
	return key
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
