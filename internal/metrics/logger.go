package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Logger periodically writes a one-line summary of a registry: every
// counter family whose total moved since the previous tick (summed across
// label series, with the delta in parentheses) and every histogram family
// with new observations (count delta plus p50/p99 estimates). Families
// that did not move are omitted, so an idle process logs nothing.
//
// It is the "periodic stats logger" behind `bilsh serve -stats-interval`
// and `bilsh exp -stats-interval`.
type Logger struct {
	reg      *Registry
	interval time.Duration
	printf   func(format string, args ...any)

	prev map[string]float64 // family name -> last summed value/count
	stop chan struct{}
	done chan struct{}
}

// NewLogger creates a logger over reg that emits through printf every
// interval. printf is typically log.Printf; it must be safe for
// concurrent use.
func NewLogger(reg *Registry, interval time.Duration, printf func(format string, args ...any)) *Logger {
	return &Logger{
		reg:      reg,
		interval: interval,
		printf:   printf,
		prev:     make(map[string]float64),
	}
}

// Start launches the ticking goroutine and returns immediately. Call Stop
// to halt it; Start after Stop is not supported.
func (l *Logger) Start() {
	l.stop = make(chan struct{})
	l.done = make(chan struct{})
	go func() {
		defer close(l.done)
		t := time.NewTicker(l.interval)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				if line := l.Tick(); line != "" {
					l.printf("%s", line)
				}
			}
		}
	}()
}

// Stop halts the ticking goroutine and flushes one final line.
func (l *Logger) Stop() {
	if l.stop == nil {
		return
	}
	close(l.stop)
	<-l.done
	if line := l.Tick(); line != "" {
		l.printf("%s", line)
	}
}

// Tick computes the summary line for activity since the previous Tick and
// advances the baseline. It returns "" when nothing moved. Exported so
// tests (and callers with their own scheduling) can drive it directly.
func (l *Logger) Tick() string {
	type agg struct {
		name  string
		typ   string
		total float64 // counter sum or histogram count
		p50   float64
		p99   float64
	}
	points := l.reg.Snapshot()
	byFamily := map[string]*agg{}
	var order []string
	// Merge label series: operators want "queries total this tick", not
	// one log field per label combination.
	merged := map[string]*Histogram{}
	for _, p := range points {
		a, ok := byFamily[p.Name]
		if !ok {
			a = &agg{name: p.Name, typ: p.Type}
			byFamily[p.Name] = a
			order = append(order, p.Name)
		}
		switch p.Type {
		case typeCounter:
			a.total += *p.Value
		case typeHistogram:
			a.total += float64(*p.Count)
			m, ok := merged[p.Name]
			if !ok {
				bounds := make([]float64, 0, len(p.Buckets))
				for _, b := range p.Buckets[:len(p.Buckets)-1] {
					bounds = append(bounds, b.UpperBound)
				}
				m = newHistogram(bounds)
				merged[p.Name] = m
			}
			prev := int64(0)
			for i, b := range p.Buckets {
				m.counts[i].Add(b.Count - prev)
				m.total.Add(b.Count - prev)
				prev = b.Count
			}
		}
	}
	var parts []string
	sort.Strings(order)
	for _, name := range order {
		a := byFamily[name]
		if a.typ == typeGauge {
			continue // gauges are instantaneous; /metrics is the place for them
		}
		delta := a.total - l.prev[name]
		l.prev[name] = a.total
		if delta == 0 {
			continue
		}
		short := strings.TrimPrefix(name, "bilsh_")
		if a.typ == typeHistogram {
			m := merged[name]
			parts = append(parts, fmt.Sprintf("%s=%s (+%s) p50=%.3g p99=%.3g",
				short, formatFloat(a.total), formatFloat(delta), m.Quantile(0.50), m.Quantile(0.99)))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%s (+%s)", short, formatFloat(a.total), formatFloat(delta)))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "stats: " + strings.Join(parts, " ")
}
