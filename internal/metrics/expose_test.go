package metrics

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func populated(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("bilsh_requests_total", "Requests served.", L("path", "/query"), L("code", "200")).Add(42)
	r.Counter("bilsh_requests_total", "Requests served.", L("path", "/batch"), L("code", "200")).Add(7)
	r.Gauge("bilsh_inflight", "In-flight requests.").Set(3)
	h := r.Histogram("bilsh_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := populated(t).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string            `json:"name"`
			Type    string            `json:"type"`
			Labels  map[string]string `json:"labels"`
			Value   *float64          `json:"value"`
			Count   *int64            `json:"count"`
			Sum     *float64          `json:"sum"`
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 4 {
		t.Fatalf("got %d points, want 4 (2 counter series + gauge + histogram)", len(doc.Metrics))
	}
	byName := map[string]int{}
	for i, m := range doc.Metrics {
		byName[m.Name+"/"+m.Labels["path"]] = i
	}
	q := doc.Metrics[byName["bilsh_requests_total//query"]]
	if q.Type != "counter" || q.Value == nil || *q.Value != 42 || q.Labels["code"] != "200" {
		t.Errorf("query counter point wrong: %+v", q)
	}
	hist := doc.Metrics[byName["bilsh_latency_seconds/"]]
	if hist.Type != "histogram" || hist.Count == nil || *hist.Count != 3 {
		t.Fatalf("histogram point wrong: %+v", hist)
	}
	if got := len(hist.Buckets); got != 4 {
		t.Fatalf("histogram has %d buckets, want 4 (3 bounds + +Inf)", got)
	}
	if last := hist.Buckets[3]; last.LE != "+Inf" || last.Count != 3 {
		t.Errorf("+Inf bucket = %+v, want le=+Inf count=3", last)
	}
}

// TestWritePrometheus asserts the exposition output against a minimal
// line-oriented parser of the 0.0.4 text format.
func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := populated(t).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	values, types := parsePrometheus(t, out)

	if types["bilsh_requests_total"] != "counter" ||
		types["bilsh_inflight"] != "gauge" ||
		types["bilsh_latency_seconds"] != "histogram" {
		t.Fatalf("TYPE lines wrong: %v", types)
	}
	checks := map[string]float64{
		`bilsh_requests_total{code="200",path="/query"}`: 42,
		`bilsh_requests_total{code="200",path="/batch"}`: 7,
		`bilsh_inflight`: 3,
		`bilsh_latency_seconds_bucket{le="0.001"}`: 1,
		`bilsh_latency_seconds_bucket{le="0.1"}`:   2,
		`bilsh_latency_seconds_bucket{le="+Inf"}`:  3,
		`bilsh_latency_seconds_count`:              3,
	}
	for series, want := range checks {
		got, ok := values[series]
		if !ok {
			t.Errorf("missing series %s in output:\n%s", series, out)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if sum := values["bilsh_latency_seconds_sum"]; sum < 5.05 || sum > 5.06 {
		t.Errorf("histogram sum = %v, want ~5.0505", sum)
	}
}

// parsePrometheus is a strict little parser: every non-comment line must
// be "<series> <float>", every family must have a TYPE comment.
func parsePrometheus(t *testing.T, s string) (values map[string]float64, types map[string]string) {
	t.Helper()
	values = map[string]float64{}
	types = map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[line[:idx]] = v
	}
	return values, types
}
