package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("Counter.Value() = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("Gauge.Value() = %d, want 5", got)
	}
}

// TestHistogramBucketBoundaries pins down the le (inclusive upper bound)
// convention: an observation exactly on a bound lands in that bound's
// bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	tests := []struct {
		name    string
		bounds  []float64
		samples []float64
		// wantCum is the expected cumulative count per bucket, including
		// the final +Inf bucket.
		wantCum []int64
	}{
		{
			name:    "exact-boundary-is-inclusive",
			bounds:  []float64{1, 2, 4},
			samples: []float64{1, 2, 4},
			wantCum: []int64{1, 2, 3, 3},
		},
		{
			name:    "just-above-boundary-spills",
			bounds:  []float64{1, 2, 4},
			samples: []float64{1.0001, 2.0001, 4.0001},
			wantCum: []int64{0, 1, 2, 3},
		},
		{
			name:    "below-first-bound",
			bounds:  []float64{1, 2},
			samples: []float64{-5, 0, 0.5},
			wantCum: []int64{3, 3, 3},
		},
		{
			name:    "overflow-bucket",
			bounds:  []float64{1, 2},
			samples: []float64{3, 1e12, math.Inf(1)},
			wantCum: []int64{0, 0, 3},
		},
		{
			name:    "explicit-inf-bound-is-trimmed",
			bounds:  []float64{1, math.Inf(1)},
			samples: []float64{0.5, 99},
			wantCum: []int64{1, 2},
		},
		{
			name:    "mixed",
			bounds:  []float64{0.001, 0.01, 0.1, 1},
			samples: []float64{0.0005, 0.001, 0.002, 0.05, 0.5, 2},
			wantCum: []int64{2, 3, 4, 5, 6},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.bounds)
			for _, v := range tc.samples {
				h.Observe(v)
			}
			got := h.Cumulative()
			if len(got) != len(tc.wantCum) {
				t.Fatalf("Cumulative() has %d buckets, want %d", len(got), len(tc.wantCum))
			}
			for i := range got {
				if got[i] != tc.wantCum[i] {
					t.Errorf("bucket %d: cumulative = %d, want %d", i, got[i], tc.wantCum[i])
				}
			}
			if h.Count() != int64(len(tc.samples)) {
				t.Errorf("Count() = %d, want %d", h.Count(), len(tc.samples))
			}
			var sum float64
			for _, v := range tc.samples {
				sum += v
			}
			if !math.IsInf(sum, 0) && math.Abs(h.Sum()-sum) > 1e-9 {
				t.Errorf("Sum() = %v, want %v", h.Sum(), sum)
			}
		})
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 100 samples uniform in (0,1]: everything in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if q := h.Quantile(0.5); q < 0 || q > 1 {
		t.Errorf("p50 = %v, want within first bucket [0,1]", q)
	}
	// Push 100 samples into the overflow bucket; p99 clamps to last bound.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	if q := h.Quantile(0.99); q != 8 {
		t.Errorf("p99 with overflow mass = %v, want clamp to 8", q)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(10, 5, 3)
	want = []float64{10, 15, 20}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, want)
		}
	}
	if len(DefLatencyBuckets) == 0 || len(DefCountBuckets) == 0 {
		t.Fatal("default bucket sets must be non-empty")
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{
		nil,
		{},
		{2, 1},
		{1, 1},
		{math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newHistogram(%v) should panic", bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines doing
// both registration (lookups) and updates; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("test_ops_total", "ops", L("worker", "shared")).Inc()
				r.Gauge("test_inflight", "inflight").Add(1)
				r.Histogram("test_latency_seconds", "lat", DefLatencyBuckets).Observe(float64(i) * 1e-5)
				r.Gauge("test_inflight", "inflight").Add(-1)
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reads
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("test_ops_total", "ops", L("worker", "shared")).Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("test_inflight", "inflight").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("test_latency_seconds", "lat", DefLatencyBuckets).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("metric_a", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("metric_a", "a")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q) should panic", name)
				}
			}()
			r.Counter(name, "bad")
		}()
	}
}

func TestRegistrySeriesIdentity(t *testing.T) {
	r := NewRegistry()
	// Same labels in any order are the same series.
	a := r.Counter("multi", "m", L("x", "1"), L("y", "2"))
	b := r.Counter("multi", "m", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order must not create a new series")
	}
	c := r.Counter("multi", "m", L("x", "1"), L("y", "3"))
	if a == c {
		t.Fatal("different label values must create a new series")
	}
}

func TestLoggerTick(t *testing.T) {
	r := NewRegistry()
	l := NewLogger(r, 0, func(string, ...any) {})
	if line := l.Tick(); line != "" {
		t.Fatalf("idle registry should produce no line, got %q", line)
	}
	r.Counter("bilsh_test_total", "t").Add(3)
	r.Histogram("bilsh_test_seconds", "t", DefLatencyBuckets).Observe(0.001)
	line := l.Tick()
	if line == "" {
		t.Fatal("expected a summary line after activity")
	}
	for _, want := range []string{"test_total=3 (+3)", "test_seconds=1 (+1)", "p50="} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	if again := l.Tick(); again != "" {
		t.Fatalf("no new activity should produce no line, got %q", again)
	}
}
