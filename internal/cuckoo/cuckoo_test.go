package cuckoo

import (
	"testing"
	"testing/quick"

	"bilsh/internal/xrand"
)

func TestPutGet(t *testing.T) {
	c := New(4)
	if err := c.Put(10, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(10); !ok || v != 100 {
		t.Fatalf("Get(10) = %d,%v", v, ok)
	}
	if _, ok := c.Get(11); ok {
		t.Fatal("absent key reported present")
	}
}

func TestOverwrite(t *testing.T) {
	c := New(4)
	c.Put(1, 1)
	c.Put(1, 2)
	if v, _ := c.Get(1); v != 2 {
		t.Fatalf("overwrite: got %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", c.Len())
	}
}

func TestReservedKeyRejected(t *testing.T) {
	c := New(4)
	if err := c.Put(^uint64(0), 1); err == nil {
		t.Fatal("reserved key must be rejected")
	}
	if _, ok := c.Get(^uint64(0)); ok {
		t.Fatal("reserved key must never be present")
	}
}

func TestGrowthUnderLoad(t *testing.T) {
	c := New(2) // deliberately undersized
	const n = 10000
	for i := uint64(0); i < n; i++ {
		if err := c.Put(i*2654435761+1, int(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := c.Get(i*2654435761 + 1); !ok || v != int(i) {
			t.Fatalf("key %d: got %d,%v", i, v, ok)
		}
	}
}

// Property: the table behaves exactly like a map under random workloads.
func TestMapEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		c := New(8)
		ref := make(map[uint64]int)
		for op := 0; op < 500; op++ {
			k := uint64(rng.Intn(200))
			if k == ^uint64(0) {
				continue
			}
			if rng.Float64() < 0.7 {
				v := rng.Intn(1000)
				if err := c.Put(k, v); err != nil {
					return false
				}
				ref[k] = v
			} else {
				got, ok := c.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			}
		}
		if c.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := c.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarialEqualHashes(t *testing.T) {
	// Sequential keys stress eviction chains; the table must stay correct
	// through rehashes.
	c := New(16)
	for i := uint64(0); i < 3000; i++ {
		c.Put(i, int(i)*3)
	}
	for i := uint64(0); i < 3000; i++ {
		if v, ok := c.Get(i); !ok || v != int(i)*3 {
			t.Fatalf("key %d lost after rehashes (%d rebuilds)", i, c.Rehashes())
		}
	}
}

func BenchmarkPut(b *testing.B) {
	c := New(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(uint64(i)*2654435761+7, i)
	}
}

func BenchmarkGet(b *testing.B) {
	c := New(100000)
	for i := 0; i < 100000; i++ {
		c.Put(uint64(i)*2654435761+7, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i%100000)*2654435761 + 7)
	}
}
