// Package cuckoo implements the cuckoo hash table the paper's GPU pipeline
// uses to index LSH buckets (Section V-A, after Alcantara et al.): each key
// is a compressed LSH code, each value the bucket's interval in the sorted
// linear array of items.
//
// The table uses two hash choices with an eviction chain plus a small
// stash; insertion failures trigger a rehash with fresh hash seeds (and
// growth when load is high), mirroring the GPU construction's
// retry-with-new-functions strategy. Lookups probe at most two slots and
// the stash, which is the property that makes the structure attractive on
// parallel hardware.
package cuckoo

import (
	"fmt"
)

const (
	empty        = ^uint64(0) // sentinel key for empty slots
	maxKicks     = 64         // eviction chain length before rehash
	stashLimit   = 8          // entries tolerated in the stash
	maxRebuilds  = 32         // rehash attempts before giving up growing
	minTableSize = 16
)

// Compress64 folds an LSH code key's byte image to the 64-bit cuckoo key
// (the "dim-1 key by using another hash function" of Section V-A). It is
// FNV-1a, inlined so the query hot path hashes straight from a reused byte
// buffer without constructing a hash.Hash64. The reserved sentinel value
// is remapped so the result is always a legal Table key.
func Compress64(key []byte) uint64 {
	v := uint64(fnvOffset64)
	for _, b := range key {
		v ^= uint64(b)
		v *= fnvPrime64
	}
	if v == empty {
		v-- // avoid the cuckoo sentinel
	}
	return v
}

// Compress64String is Compress64 over a string key (build paths index
// string-keyed buckets; both forms produce identical values for the same
// bytes).
func Compress64String(key string) uint64 {
	v := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		v ^= uint64(key[i])
		v *= fnvPrime64
	}
	if v == empty {
		v--
	}
	return v
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Table maps uint64 keys to int values. The zero value is not usable;
// create with New. Key ^uint64(0) is reserved.
type Table struct {
	slots  []entry
	stash  []entry
	n      int
	seed1  uint64
	seed2  uint64
	rounds int // total rehash count, exposed for tests/diagnostics
}

type entry struct {
	key uint64
	val int
}

// New returns a table pre-sized for capacity entries.
func New(capacity int) *Table {
	size := minTableSize
	for size < 2*capacity {
		size *= 2
	}
	t := &Table{seed1: 0x9e3779b97f4a7c15, seed2: 0xc2b2ae3d27d4eb4f}
	t.slots = make([]entry, size)
	for i := range t.slots {
		t.slots[i].key = empty
	}
	return t
}

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.n }

// Rehashes returns how many times the table rebuilt itself.
func (t *Table) Rehashes() int { return t.rounds }

// hash mixes k with seed (xorshift-multiply finalizer).
func hash(k, seed uint64) uint64 {
	x := k ^ seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (t *Table) slot1(k uint64) int { return int(hash(k, t.seed1) & uint64(len(t.slots)-1)) }
func (t *Table) slot2(k uint64) int { return int(hash(k, t.seed2) & uint64(len(t.slots)-1)) }

// Get returns the value for key, with ok=false for absent keys.
func (t *Table) Get(key uint64) (int, bool) {
	if key == empty {
		return 0, false
	}
	if e := t.slots[t.slot1(key)]; e.key == key {
		return e.val, true
	}
	if e := t.slots[t.slot2(key)]; e.key == key {
		return e.val, true
	}
	for _, e := range t.stash {
		if e.key == key {
			return e.val, true
		}
	}
	return 0, false
}

// Put inserts or overwrites key. It returns an error only if key is the
// reserved sentinel; capacity pressure is handled internally by rehashing
// and growing.
func (t *Table) Put(key uint64, val int) error {
	if key == empty {
		return fmt.Errorf("cuckoo: key %#x is reserved", key)
	}
	// Overwrite in place if present.
	if i := t.slot1(key); t.slots[i].key == key {
		t.slots[i].val = val
		return nil
	}
	if i := t.slot2(key); t.slots[i].key == key {
		t.slots[i].val = val
		return nil
	}
	for i := range t.stash {
		if t.stash[i].key == key {
			t.stash[i].val = val
			return nil
		}
	}
	t.insertNew(entry{key, val})
	return nil
}

// insertNew places a key known to be absent, evicting as needed.
func (t *Table) insertNew(e entry) {
	for rebuild := 0; ; rebuild++ {
		cur := e
		pos := t.slot1(cur.key)
		for kick := 0; kick < maxKicks; kick++ {
			if t.slots[pos].key == empty {
				t.slots[pos] = cur
				t.n++
				return
			}
			t.slots[pos], cur = cur, t.slots[pos]
			// Bounce the evicted entry to its other slot.
			if alt := t.slot1(cur.key); alt != pos {
				pos = alt
			} else {
				pos = t.slot2(cur.key)
			}
		}
		// Eviction chain too long: stash, or rehash.
		if len(t.stash) < stashLimit {
			t.stash = append(t.stash, cur)
			t.n++
			return
		}
		if rebuild >= maxRebuilds {
			// Pathological input; grow unconditionally and keep going.
			t.grow(cur)
			t.n++
			return
		}
		e = t.rehash(cur, t.loadFactor() > 0.45)
	}
}

func (t *Table) loadFactor() float64 {
	return float64(t.n) / float64(len(t.slots))
}

// rehash rebuilds the table with fresh seeds (optionally doubled size) and
// returns the pending entry still to insert.
func (t *Table) rehash(pending entry, grow bool) entry {
	old := t.slots
	oldStash := t.stash
	size := len(t.slots)
	if grow {
		size *= 2
	}
	t.rounds++
	t.seed1 = hash(t.seed1, uint64(t.rounds)*0x9e3779b97f4a7c15+1)
	t.seed2 = hash(t.seed2, uint64(t.rounds)*0xc2b2ae3d27d4eb4f+3)
	t.slots = make([]entry, size)
	for i := range t.slots {
		t.slots[i].key = empty
	}
	t.stash = nil
	t.n = 0
	for _, e := range old {
		if e.key != empty {
			t.insertNew(e)
		}
	}
	for _, e := range oldStash {
		t.insertNew(e)
	}
	return pending
}

// grow is the last-resort path: double and reinsert, then place pending in
// the stash directly.
func (t *Table) grow(pending entry) {
	t.rehash(entry{key: empty}, true)
	t.stash = append(t.stash, pending)
}
