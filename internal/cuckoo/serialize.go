package cuckoo

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"bilsh/internal/mmap"
)

// In-place binary image of a table, designed so the paged disk layout can
// map it instead of rebuilding it: on a 64-bit little-endian host the
// slot and stash arrays are reinterpreted directly from the mapped bytes
// (an entry is exactly its on-disk record), so opening an index costs
// O(1) per table rather than O(buckets) re-insertion. Elsewhere the
// records are decoded into heap entries with identical behavior.
//
// Layout (all little endian):
//
//	[ 0, 8)  seed1
//	[ 8,16)  seed2
//	[16,24)  rounds
//	[24,32)  n (stored keys)
//	[32,40)  slotCount (power of two)
//	[40,48)  stashCount
//	then slotCount entries, then stashCount entries; an entry is
//	{key uint64, val int64}, 16 bytes.
const binaryHeaderLen = 48

const entrySize = 16

// entriesViewable reports whether []entry can alias the on-disk records
// on this host (layout match is asserted, not assumed).
func entriesViewable() bool {
	return mmap.ZeroCopy() &&
		unsafe.Sizeof(entry{}) == entrySize &&
		unsafe.Offsetof(entry{}.key) == 0 &&
		unsafe.Offsetof(entry{}.val) == 8
}

// BinarySize returns the encoded size of AppendBinary's output.
func (t *Table) BinarySize() int {
	return binaryHeaderLen + entrySize*(len(t.slots)+len(t.stash))
}

// AppendBinary appends the table's in-place image to dst.
func (t *Table) AppendBinary(dst []byte) []byte {
	var h [binaryHeaderLen]byte
	binary.LittleEndian.PutUint64(h[0:], t.seed1)
	binary.LittleEndian.PutUint64(h[8:], t.seed2)
	binary.LittleEndian.PutUint64(h[16:], uint64(t.rounds))
	binary.LittleEndian.PutUint64(h[24:], uint64(t.n))
	binary.LittleEndian.PutUint64(h[32:], uint64(len(t.slots)))
	binary.LittleEndian.PutUint64(h[40:], uint64(len(t.stash)))
	dst = append(dst, h[:]...)
	var rec [entrySize]byte
	for _, e := range t.slots {
		binary.LittleEndian.PutUint64(rec[0:], e.key)
		binary.LittleEndian.PutUint64(rec[8:], uint64(int64(e.val)))
		dst = append(dst, rec[:]...)
	}
	for _, e := range t.stash {
		binary.LittleEndian.PutUint64(rec[0:], e.key)
		binary.LittleEndian.PutUint64(rec[8:], uint64(int64(e.val)))
		dst = append(dst, rec[:]...)
	}
	return dst
}

// ViewBinary opens a table over b (an AppendBinary image). When the host
// allows it the slot arrays alias b — the caller must keep b immutable
// and alive for the table's lifetime, and must not call Put. maxVal
// bounds every stored value (vals are bucket ordinals; a corrupt image
// must not index out of the caller's bucket arrays). Structural
// corruption returns an error; ViewBinary never panics on hostile input.
func ViewBinary(b []byte, maxVal int) (*Table, error) {
	if len(b) < binaryHeaderLen {
		return nil, fmt.Errorf("cuckoo: image %d bytes, want >= %d", len(b), binaryHeaderLen)
	}
	slotCount := binary.LittleEndian.Uint64(b[32:])
	stashCount := binary.LittleEndian.Uint64(b[40:])
	if slotCount < minTableSize || slotCount > 1<<40 || slotCount&(slotCount-1) != 0 {
		return nil, fmt.Errorf("cuckoo: slot count %d not a plausible power of two", slotCount)
	}
	if stashCount > 1<<20 {
		return nil, fmt.Errorf("cuckoo: stash count %d implausible", stashCount)
	}
	want := binaryHeaderLen + entrySize*(slotCount+stashCount)
	if uint64(len(b)) != want {
		return nil, fmt.Errorf("cuckoo: image %d bytes, want %d", len(b), want)
	}
	n := binary.LittleEndian.Uint64(b[24:])
	if n > slotCount+stashCount {
		return nil, fmt.Errorf("cuckoo: stored count %d exceeds capacity %d", n, slotCount+stashCount)
	}
	t := &Table{
		seed1:  binary.LittleEndian.Uint64(b[0:]),
		seed2:  binary.LittleEndian.Uint64(b[8:]),
		rounds: int(binary.LittleEndian.Uint64(b[16:])),
		n:      int(n),
	}
	recs := b[binaryHeaderLen:]
	if entriesViewable() {
		all := unsafe.Slice((*entry)(unsafe.Pointer(&recs[0])), slotCount+stashCount)
		t.slots = all[:slotCount:slotCount]
		t.stash = all[slotCount:]
	} else {
		all := make([]entry, slotCount+stashCount)
		for i := range all {
			all[i].key = binary.LittleEndian.Uint64(recs[entrySize*i:])
			all[i].val = int(int64(binary.LittleEndian.Uint64(recs[entrySize*i+8:])))
		}
		t.slots = all[:slotCount:slotCount]
		t.stash = all[slotCount:]
	}
	for _, e := range t.slots {
		if e.key != empty && (e.val < 0 || e.val >= maxVal) {
			return nil, fmt.Errorf("cuckoo: slot value %d out of [0,%d)", e.val, maxVal)
		}
	}
	for _, e := range t.stash {
		if e.key != empty && (e.val < 0 || e.val >= maxVal) {
			return nil, fmt.Errorf("cuckoo: stash value %d out of [0,%d)", e.val, maxVal)
		}
	}
	return t, nil
}
