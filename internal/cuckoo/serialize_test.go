package cuckoo

import (
	"math/rand"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := New(1000)
	want := make(map[uint64]int, 1000)
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		if k == ^uint64(0) {
			k--
		}
		want[k] = i
		if err := tab.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}

	img := tab.AppendBinary(nil)
	if len(img) != tab.BinarySize() {
		t.Fatalf("image %d bytes, BinarySize says %d", len(img), tab.BinarySize())
	}
	view, err := ViewBinary(img, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != tab.Len() {
		t.Fatalf("Len: got %d want %d", view.Len(), tab.Len())
	}
	for k, v := range want {
		got, ok := view.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%#x) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	if _, ok := view.Get(0xdeadbeefdeadbeef); ok && want[0xdeadbeefdeadbeef] == 0 {
		// Absent keys stay absent (probabilistically guaranteed distinct).
		if _, present := want[0xdeadbeefdeadbeef]; !present {
			t.Fatal("view returned a value for an absent key")
		}
	}
}

func TestViewBinaryRejectsCorrupt(t *testing.T) {
	tab := New(64)
	for i := 0; i < 64; i++ {
		tab.Put(uint64(i)*2654435761+1, i) //nolint:errcheck
	}
	img := tab.AppendBinary(nil)

	cases := map[string][]byte{
		"empty":     {},
		"short":     img[:binaryHeaderLen-1],
		"truncated": img[:len(img)-8],
		"extended":  append(append([]byte{}, img...), 0, 0, 0, 0),
	}
	for name, b := range cases {
		if _, err := ViewBinary(b, 64); err == nil {
			t.Errorf("%s: corrupt image accepted", name)
		}
	}

	// Out-of-range value: flip a stored val beyond maxVal.
	bad := append([]byte{}, img...)
	// find first non-empty slot record and corrupt its val
	for off := binaryHeaderLen; off+entrySize <= len(bad); off += entrySize {
		key := le64(bad[off:])
		if key != ^uint64(0) {
			bad[off+8] = 0xff
			bad[off+9] = 0xff
			bad[off+10] = 0xff
			bad[off+11] = 0x7f
			break
		}
	}
	if _, err := ViewBinary(bad, 64); err == nil {
		t.Error("out-of-range val accepted")
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
