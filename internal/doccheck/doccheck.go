// Package doccheck is a dependency-free markdown link checker for the
// repository's documentation. It walks every .md file, extracts inline
// links and images outside code blocks, and verifies that relative
// links resolve to files that exist and that #fragment anchors match a
// heading in the target document (GitHub heading-slug rules). External
// links (http, https, mailto) are not fetched — CI must not depend on
// the network — so they are skipped.
//
// The checker runs as a plain test (TestRepoDocLinks) so `go test
// ./...` and `make linkcheck` both gate it; a broken cross-reference in
// README.md or docs/ fails CI the same way a broken unit does.
package doccheck

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

// Problem is one broken link.
type Problem struct {
	File   string // repo-relative path of the file holding the link
	Line   int    // 1-based line number
	Link   string // the link target as written
	Reason string // what is wrong with it
}

func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: link %q: %s", p.File, p.Line, p.Link, p.Reason)
}

// inlineLink matches [text](target) and ![alt](target "title"),
// capturing the target. Targets never contain whitespace in this
// repository's docs, which keeps the pattern honest about titles.
var inlineLink = regexp.MustCompile(`!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+"[^"]*")?\s*\)`)

// codeSpan matches inline code, stripped before link extraction so
// documentation *about* markdown syntax does not produce false links.
var codeSpan = regexp.MustCompile("`[^`]*`")

// CheckRepo walks root for .md files (skipping dot-directories and
// testdata) and checks every one. Problems come back sorted by file
// and line; the error is reserved for I/O failures, not bad links.
func CheckRepo(root string) ([]Problem, error) {
	var files []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		name := info.Name()
		if info.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(name), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Problem
	for _, f := range files {
		ps, err := CheckFile(root, f)
		if err != nil {
			return nil, err
		}
		out = append(out, ps...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// CheckFile checks one markdown file. root anchors leading-slash links
// and the repo-relative paths in Problems.
func CheckFile(root, path string) ([]Problem, error) {
	links, err := extractLinks(path)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	var out []Problem
	for _, l := range links {
		if reason := checkLink(root, path, l.target); reason != "" {
			out = append(out, Problem{File: rel, Line: l.line, Link: l.target, Reason: reason})
		}
	}
	return out, nil
}

type link struct {
	target string
	line   int
}

// extractLinks returns the inline link targets of a markdown file,
// ignoring fenced code blocks and inline code spans.
func extractLinks(path string) ([]link, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []link
	inFence := false
	lineNo := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range inlineLink.FindAllStringSubmatch(codeSpan.ReplaceAllString(line, ""), -1) {
			out = append(out, link{target: m[1], line: lineNo})
		}
	}
	return out, sc.Err()
}

// checkLink validates one target relative to the file holding it.
// It returns "" when the link is fine.
func checkLink(root, from, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not fetched
	}
	pathPart, frag, _ := strings.Cut(target, "#")
	dest := from
	if pathPart != "" {
		if strings.HasPrefix(pathPart, "/") {
			// GitHub resolves a leading slash against the repo root.
			dest = filepath.Join(root, filepath.FromSlash(pathPart))
		} else {
			dest = filepath.Join(filepath.Dir(from), filepath.FromSlash(pathPart))
		}
		info, err := os.Stat(dest)
		if err != nil {
			return "target does not exist"
		}
		if info.IsDir() && frag != "" {
			return "anchor on a directory link"
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.EqualFold(filepath.Ext(dest), ".md") {
		return "" // anchors into non-markdown files are the viewer's business
	}
	anchors, err := headingAnchors(dest)
	if err != nil {
		return "cannot read anchor target: " + err.Error()
	}
	if !anchors[strings.ToLower(frag)] {
		return fmt.Sprintf("no heading for anchor %q in %s", "#"+frag, filepath.Base(dest))
	}
	return ""
}

// headingAnchors returns the set of GitHub-style anchor slugs for every
// heading in a markdown file, duplicate headings suffixed -1, -2, ...
func headingAnchors(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	anchors := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		level := 0
		for level < len(line) && line[level] == '#' {
			level++
		}
		if level > 6 || level == len(line) || line[level] != ' ' {
			continue
		}
		slug := slugify(line[level+1:])
		if n := counts[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	return anchors, sc.Err()
}

// slugify applies GitHub's heading-anchor rules: markdown code markers
// dropped, lowercased, punctuation removed except hyphens and
// underscores, spaces turned into hyphens.
func slugify(heading string) string {
	h := strings.TrimSpace(heading)
	h = strings.NewReplacer("`", "", "*", "", "[", "", "]", "").Replace(h)
	var b strings.Builder
	for _, r := range h {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		}
	}
	return b.String()
}
