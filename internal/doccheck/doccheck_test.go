package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGoodLinksPass(t *testing.T) {
	root := t.TempDir()
	write(t, root, "README.md", `# Top

See [the guide](docs/guide.md), [section two](docs/guide.md#twos-section),
an [absolute link](/docs/guide.md), [self anchor](#top),
an ![image](docs/img.png), and https://example.com/ in prose.
External: [site](https://example.com/missing) and [mail](mailto:a@b.c).
`)
	write(t, root, "docs/guide.md", `# Guide

## Two's section!

Back to [README](../README.md).
`)
	write(t, root, "docs/img.png", "not really a png")
	problems, err := CheckRepo(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean fixture reported problems: %v", problems)
	}
}

func TestBrokenLinksCaught(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.md", `# A

[gone](missing.md) and [bad anchor](b.md#nope) and [ok](b.md#b).
`)
	write(t, root, "b.md", "# B\n")
	problems, err := CheckRepo(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("want 2 problems, got %v", problems)
	}
	if problems[0].Link != "missing.md" || problems[0].Line != 3 {
		t.Fatalf("first problem %+v, want missing.md at line 3", problems[0])
	}
	if problems[1].Link != "b.md#nope" {
		t.Fatalf("second problem %+v, want the bad anchor", problems[1])
	}
}

func TestCodeBlocksIgnored(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.md", "# A\n\n```\n[not a link](nowhere.md)\n```\n\nInline `[also not](gone.md)` code.\n")
	problems, err := CheckRepo(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("links inside code reported: %v", problems)
	}
}

func TestDuplicateHeadingAnchors(t *testing.T) {
	root := t.TempDir()
	write(t, root, "a.md", `# Title

[first](#notes) [second](#notes-1) [third](#notes-2)

## Notes

## Notes
`)
	problems, err := CheckRepo(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || problems[0].Link != "#notes-2" {
		t.Fatalf("want exactly the #notes-2 overflow flagged, got %v", problems)
	}
}

// TestRepoDocLinks is the real gate: every markdown file in this
// repository must have resolvable relative links and anchors.
func TestRepoDocLinks(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	problems, err := CheckRepo(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("%s", p)
	}
}
