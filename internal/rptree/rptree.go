// Package rptree implements random projection trees (Freund et al.;
// Dasgupta & Freund) — the first level of Bi-level LSH (Section IV-A).
//
// The tree recursively splits the dataset with two rules:
//
//   - RP-tree max: project onto a random unit direction and split at the
//     median plus a small jitter proportional to the cell diameter — the
//     rule with guaranteed aspect-ratio ("roundness") bounds.
//   - RP-tree mean: like max, but when the cell's diameter is much larger
//     than its average interpoint distance (Δ² > c·Δ_A²), split by distance
//     to the cell mean instead, which adapts to the data's intrinsic
//     dimension. The diameter is approximated with the Egecioglu–Kalantari
//     iteration (package diameter), as prescribed by the paper.
//
// Construction targets a leaf count g rather than a depth: the largest
// leaf is split repeatedly until g leaves exist (or no leaf is splittable),
// so g needs not be a power of two.
package rptree

import (
	"container/heap"
	"fmt"
	"math"
	"slices"

	"bilsh/internal/diameter"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Rule selects the RP-tree split rule. The zero value is RuleMean — the
// rule the paper prefers ("RP-tree mean rule computes better results in
// terms of recall ratio of the overall bi-level scheme") — so default
// configurations follow the paper.
type Rule int

const (
	// RuleMean adds the diameter-conditional distance-to-mean split; the
	// paper observes it gives better recall for the overall bi-level
	// scheme and uses it by default.
	RuleMean Rule = iota
	// RuleMax is the gap-snapped median projection split.
	RuleMax
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case RuleMax:
		return "max"
	case RuleMean:
		return "mean"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Options configures tree construction.
type Options struct {
	// Rule selects the split rule (default RuleMean, the paper's choice).
	Rule Rule
	// Leaves is the number of partitions g to produce (>= 1).
	Leaves int
	// MinLeafSize stops splitting cells that would produce a side smaller
	// than this (default 1).
	MinLeafSize int
	// DiameterIters is the m of the approximate-diameter iteration
	// (default 40, the value the paper reports as sufficient).
	DiameterIters int
	// MeanSplitC is the c of the Δ²(S) ≤ c·Δ_A²(S) test deciding between
	// projection and distance splits in the mean rule (default 10).
	MeanSplitC float64
	// JitterFrac scales the max-rule median jitter as a fraction of the
	// projected spread (default 0.05).
	JitterFrac float64
}

func (o *Options) fill() {
	if o.Leaves < 1 {
		o.Leaves = 1
	}
	if o.MinLeafSize < 1 {
		o.MinLeafSize = 1
	}
	if o.DiameterIters <= 0 {
		o.DiameterIters = 40
	}
	if o.MeanSplitC <= 0 {
		o.MeanSplitC = 10
	}
	if o.JitterFrac <= 0 {
		o.JitterFrac = 0.05
	}
}

// node is one tree node. Internal nodes carry a split; leaves carry the
// partition id.
type node struct {
	// split by projection: proj != nil, go left when dot(v,proj) <= thresh.
	proj []float32
	// split by distance to mean: mean != nil, go left when
	// ||v-mean|| <= thresh.
	mean   []float32
	thresh float64

	left, right int // children indices, -1 for leaves
	leaf        int // leaf id, -1 for internal nodes
	size        int // points routed here during construction
}

// Tree is a built random projection tree.
type Tree struct {
	nodes  []node
	leaves int
	dim    int
	rule   Rule
}

// Assignment maps each build point to its leaf, with member lists per leaf.
type Assignment struct {
	LeafOf  []int   // point index -> leaf id
	Members [][]int // leaf id -> point indices
}

// Build constructs a tree over data targeting opts.Leaves partitions and
// returns the tree plus the training-point assignment.
func Build(data *vec.Matrix, opts Options, rng *xrand.RNG) (*Tree, *Assignment) {
	opts.fill()
	t := &Tree{dim: data.D, rule: opts.Rule}
	all := make([]int, data.N)
	for i := range all {
		all[i] = i
	}
	root := t.addLeaf(len(all))

	// Largest-first splitting via a max-heap on |idx|.
	pq := &workHeap{}
	heap.Init(pq)
	heap.Push(pq, workItem{node: root, idx: all})

	leafSets := map[int][]int{root: all}
	for t.leaves < opts.Leaves && pq.Len() > 0 {
		it := heap.Pop(pq).(workItem)
		if len(it.idx) < 2*opts.MinLeafSize {
			continue // unsplittable; leave as leaf
		}
		leftIdx, rightIdx, nd, ok := split(data, it.idx, opts, rng)
		if !ok || len(leftIdx) < opts.MinLeafSize || len(rightIdx) < opts.MinLeafSize {
			continue // unsplittable under the size floor; stays a leaf
		}
		// Convert the leaf into an internal node with two fresh leaves.
		li := t.addLeaf(len(leftIdx))
		ri := t.addLeaf(len(rightIdx))
		n := &t.nodes[it.node]
		n.proj, n.mean, n.thresh = nd.proj, nd.mean, nd.thresh
		n.left, n.right = li, ri
		// The converted node is no longer a leaf.
		t.releaseLeaf(n.leaf)
		n.leaf = -1
		delete(leafSets, it.node)
		leafSets[li] = leftIdx
		leafSets[ri] = rightIdx
		heap.Push(pq, workItem{node: li, idx: leftIdx})
		heap.Push(pq, workItem{node: ri, idx: rightIdx})
	}

	// Renumber leaves densely in node order for stable ids.
	asg := &Assignment{LeafOf: make([]int, data.N)}
	leafID := 0
	for i := range t.nodes {
		if t.nodes[i].leaf >= 0 {
			t.nodes[i].leaf = leafID
			idx := leafSets[i]
			asg.Members = append(asg.Members, idx)
			for _, p := range idx {
				asg.LeafOf[p] = leafID
			}
			leafID++
		}
	}
	t.leaves = leafID
	return t, asg
}

// addLeaf appends a leaf node and returns its index.
func (t *Tree) addLeaf(size int) int {
	t.nodes = append(t.nodes, node{left: -1, right: -1, leaf: t.leaves, size: size})
	t.leaves++
	return len(t.nodes) - 1
}

func (t *Tree) releaseLeaf(int) { t.leaves-- }

// NumLeaves returns the number of partitions.
func (t *Tree) NumLeaves() int { return t.leaves }

// Dim returns the expected vector dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Rule returns the split rule the tree was built with.
func (t *Tree) Rule() Rule { return t.rule }

// Leaf routes v to its partition id — the RP-tree(v) component of the
// bi-level hash code H~(v).
func (t *Tree) Leaf(v []float32) int {
	if len(v) != t.dim {
		panic(fmt.Sprintf("rptree: Leaf got dim %d, want %d", len(v), t.dim))
	}
	i := 0
	for {
		n := &t.nodes[i]
		if n.leaf >= 0 {
			return n.leaf
		}
		if n.proj != nil {
			if vec.Dot(v, n.proj) <= n.thresh {
				i = n.left
			} else {
				i = n.right
			}
		} else {
			if vec.Dist(v, n.mean) <= n.thresh {
				i = n.left
			} else {
				i = n.right
			}
		}
	}
}

// LeafProbes routes v to up to m distinct leaves, ordered by routing
// confidence: the first entry is Leaf(v), and the rest are the alternate
// leaves reached by flipping the descent's lowest-margin split decisions
// first (best-first search over the accumulated flip penalty). A point
// near a partition boundary has a tiny margin at the straddled split, so
// its spill set is exactly the neighboring cells the boundary separates —
// the standard mitigation for defeatist tree search, and what the cluster
// router uses to widen a query's shard fan-out (docs/sharding.md).
//
// The penalty of a leaf is the sum of |projection − threshold| (or
// |distance-to-mean − threshold| for distance splits) over the decisions
// flipped to reach it; margins of the two split kinds share the data's
// length scale but are not calibrated against each other, which is
// acceptable for ordering a handful of spill candidates.
func (t *Tree) LeafProbes(v []float32, m int) []int {
	if len(v) != t.dim {
		panic(fmt.Sprintf("rptree: LeafProbes got dim %d, want %d", len(v), t.dim))
	}
	if m < 1 {
		m = 1
	}
	out := make([]int, 0, m)
	// Frontier of (penalty, subtree root) pairs; the pop is a linear min
	// scan — the frontier holds at most one entry per level of the paths
	// walked, and m is small.
	type cand struct {
		pen  float64
		node int
	}
	frontier := []cand{{0, 0}}
	for len(frontier) > 0 && len(out) < m {
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i].pen < frontier[best].pen {
				best = i
			}
		}
		c := frontier[best]
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		i := c.node
		for {
			n := &t.nodes[i]
			if n.leaf >= 0 {
				out = append(out, n.leaf)
				break
			}
			var d float64
			if n.proj != nil {
				d = vec.Dot(v, n.proj) - n.thresh
			} else {
				d = vec.Dist(v, n.mean) - n.thresh
			}
			next, other := n.left, n.right
			if d > 0 {
				next, other = n.right, n.left
			}
			frontier = append(frontier, cand{c.pen + math.Abs(d), other})
			i = next
		}
	}
	return out
}

// split divides idx into two non-empty sides per the configured rule.
func split(data *vec.Matrix, idx []int, opts Options, rng *xrand.RNG) (left, right []int, nd node, ok bool) {
	if opts.Rule == RuleMean {
		mean := data.Mean(idx)
		// Δ_A² estimated as 2 · average squared distance to the mean
		// (exact identity for the average interpoint squared distance).
		var avg2 float64
		for _, p := range idx {
			avg2 += vec.SqDist(data.Row(p), mean)
		}
		avg2 = 2 * avg2 / float64(len(idx))
		diam := diameter.Approx(data, idx, opts.DiameterIters)
		if diam.Lower*diam.Lower > opts.MeanSplitC*avg2 {
			// Outlier-dominated cell: split by distance to mean.
			dists := make([]float64, len(idx))
			for j, p := range idx {
				dists[j] = vec.Dist(data.Row(p), mean)
			}
			th, lok := medianThreshold(dists)
			if lok {
				for j, p := range idx {
					if dists[j] <= th {
						left = append(left, p)
					} else {
						right = append(right, p)
					}
				}
				return left, right, node{mean: mean, thresh: th}, true
			}
			// Degenerate distances: fall through to projection split.
		}
	}

	// Projection split (the max rule, and the mean rule's common case).
	// A few retries guard against degenerate directions where every point
	// projects identically.
	for attempt := 0; attempt < 4; attempt++ {
		dir := rng.UnitVec(data.D)
		proj := make([]float64, len(idx))
		for j, p := range idx {
			proj[j] = vec.Dot(data.Row(p), dir)
		}
		th, lok := medianThreshold(proj)
		if !lok {
			continue
		}
		if opts.Rule == RuleMax {
			// Jittered median split (Dasgupta–Freund): perturb within a
			// fraction of the projected spread, re-clamped to keep both
			// sides non-empty.
			lo, hi := minMax(proj)
			jit := (rng.Float64()*2 - 1) * opts.JitterFrac * (hi - lo)
			th = clampThreshold(proj, th+jit)
		}
		for j, p := range idx {
			if proj[j] <= th {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		if len(left) > 0 && len(right) > 0 {
			return left, right, node{proj: dir, thresh: th}, true
		}
		left, right = nil, nil
	}
	return nil, nil, node{}, false
}

// medianThreshold returns a threshold splitting xs into two non-empty,
// roughly balanced halves; ok is false when all values are equal.
//
// Rather than cutting exactly at the median — which slices through any
// cluster that happens to straddle it — the threshold snaps to the largest
// gap between consecutive sorted values inside the middle [25%, 75%]
// quantile band. On multi-cluster data the inter-cluster gaps dominate, so
// splits land between clusters while staying balanced within a factor of
// three; on gap-free data this degenerates to (approximately) the median.
func medianThreshold(xs []float64) (float64, bool) {
	s := append([]float64(nil), xs...)
	slices.Sort(s)
	n := len(s)
	if s[0] == s[n-1] {
		return 0, false
	}
	lo := n / 4
	hi := n - 1 - n/4
	if hi <= lo {
		lo, hi = 0, n-1
	}
	bestGap := -1.0
	bestI := -1
	for i := lo; i < hi; i++ {
		if gap := s[i+1] - s[i]; gap > bestGap {
			bestGap = gap
			bestI = i
		}
	}
	if bestI < 0 || bestGap <= 0 {
		// Middle band constant: fall back to a full-range split at the
		// first distinct value below the maximum.
		th := s[(n-1)/2]
		if th == s[n-1] {
			for i := n - 1; i > 0; i-- {
				if s[i-1] < th {
					return s[i-1], true
				}
			}
		}
		if th == s[n-1] {
			return 0, false
		}
		return th, true
	}
	// Everything <= s[bestI] goes left.
	return s[bestI], true
}

// clampThreshold forces th into a range that keeps both sides of xs
// non-empty.
func clampThreshold(xs []float64, th float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1) // min and max of xs
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if th < lo {
		th = lo
	}
	// Threshold semantics are "x <= th goes left", so th == hi would empty
	// the right side; nudge below the maximum.
	if th >= hi {
		// Largest value strictly below hi.
		best := lo
		for _, x := range xs {
			if x < hi && x > best {
				best = x
			}
		}
		th = best
	}
	return th
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// workItem and workHeap implement largest-first splitting.
type workItem struct {
	node int
	idx  []int
}

type workHeap []workItem

func (h workHeap) Len() int            { return len(h) }
func (h workHeap) Less(i, j int) bool  { return len(h[i].idx) > len(h[j].idx) }
func (h workHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workHeap) Push(x interface{}) { *h = append(*h, x.(workItem)) }
func (h *workHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
