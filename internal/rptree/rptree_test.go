package rptree

import (
	"testing"
	"testing/quick"

	"bilsh/internal/dataset"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func buildClustered(t *testing.T, n, d int, seed int64) (*vec.Matrix, []int) {
	t.Helper()
	spec := dataset.ClusteredSpec{N: n, D: d, Clusters: 4, IntrinsicDim: 3,
		Aspect: 4, NoiseSigma: 0.02, Spread: 10, PowerLaw: 0.5}
	m, labels, err := dataset.Clustered(spec, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m, labels
}

func TestBuildPartitionIsComplete(t *testing.T) {
	for _, rule := range []Rule{RuleMax, RuleMean} {
		data, _ := buildClustered(t, 300, 16, 1)
		tree, asg := Build(data, Options{Rule: rule, Leaves: 8}, xrand.New(2))
		if tree.NumLeaves() != 8 {
			t.Fatalf("rule %v: leaves = %d, want 8", rule, tree.NumLeaves())
		}
		// Every point in exactly one leaf; member lists consistent.
		seen := make([]bool, data.N)
		for leaf, members := range asg.Members {
			for _, p := range members {
				if seen[p] {
					t.Fatalf("rule %v: point %d in two leaves", rule, p)
				}
				seen[p] = true
				if asg.LeafOf[p] != leaf {
					t.Fatalf("rule %v: LeafOf mismatch for %d", rule, p)
				}
			}
		}
		for p, ok := range seen {
			if !ok {
				t.Fatalf("rule %v: point %d unassigned", rule, p)
			}
		}
	}
}

func TestRoutingMatchesAssignment(t *testing.T) {
	for _, rule := range []Rule{RuleMax, RuleMean} {
		data, _ := buildClustered(t, 400, 12, 3)
		tree, asg := Build(data, Options{Rule: rule, Leaves: 16}, xrand.New(4))
		for p := 0; p < data.N; p++ {
			if got := tree.Leaf(data.Row(p)); got != asg.LeafOf[p] {
				t.Fatalf("rule %v: point %d routed to %d, assigned %d", rule, p, got, asg.LeafOf[p])
			}
		}
	}
}

func TestSingleLeaf(t *testing.T) {
	data, _ := buildClustered(t, 50, 8, 5)
	tree, asg := Build(data, Options{Leaves: 1}, xrand.New(6))
	if tree.NumLeaves() != 1 {
		t.Fatalf("leaves = %d", tree.NumLeaves())
	}
	if len(asg.Members[0]) != 50 {
		t.Fatalf("leaf 0 holds %d points", len(asg.Members[0]))
	}
	if tree.Leaf(data.Row(0)) != 0 {
		t.Fatal("routing in trivial tree")
	}
}

func TestDuplicatePointsDoNotLoop(t *testing.T) {
	// All-identical data is unsplittable; Build must terminate with one
	// populated leaf rather than spinning or producing empty cells.
	rows := make([][]float32, 64)
	for i := range rows {
		rows[i] = []float32{1, 2, 3}
	}
	data := vec.FromRows(rows)
	tree, asg := Build(data, Options{Rule: RuleMean, Leaves: 8}, xrand.New(7))
	if tree.NumLeaves() != 1 {
		t.Fatalf("identical data produced %d leaves, want 1", tree.NumLeaves())
	}
	if len(asg.Members[0]) != 64 {
		t.Fatal("points lost")
	}
}

func TestMinLeafSizeRespected(t *testing.T) {
	data, _ := buildClustered(t, 200, 8, 9)
	_, asg := Build(data, Options{Leaves: 64, MinLeafSize: 10}, xrand.New(10))
	for leaf, members := range asg.Members {
		if len(members) < 10 {
			t.Fatalf("leaf %d has %d members < MinLeafSize", leaf, len(members))
		}
	}
}

func TestBalancedSizes(t *testing.T) {
	// Median splits keep leaves within a reasonable factor of each other.
	data := dataset.Gaussian(512, 16, 1, xrand.New(11))
	_, asg := Build(data, Options{Rule: RuleMax, Leaves: 8}, xrand.New(12))
	min, max := data.N, 0
	for _, m := range asg.Members {
		if len(m) < min {
			min = len(m)
		}
		if len(m) > max {
			max = len(m)
		}
	}
	if max > 4*min {
		t.Fatalf("leaf sizes too skewed: min=%d max=%d", min, max)
	}
}

func TestLeavesShrinkRadius(t *testing.T) {
	// The mean of leaf radii must be well below the root radius: the tree
	// actually localizes points (the paper's convergence property).
	data, _ := buildClustered(t, 600, 24, 13)
	_, asg := Build(data, Options{Rule: RuleMean, Leaves: 16}, xrand.New(14))
	radius := func(idx []int) float64 {
		mean := data.Mean(idx)
		var worst float64
		for _, p := range idx {
			if d := vec.Dist(data.Row(p), mean); d > worst {
				worst = d
			}
		}
		return worst
	}
	all := make([]int, data.N)
	for i := range all {
		all[i] = i
	}
	rootR := radius(all)
	var sum float64
	for _, m := range asg.Members {
		sum += radius(m)
	}
	avg := sum / float64(len(asg.Members))
	if avg > 0.8*rootR {
		t.Fatalf("leaves barely shrink: avg leaf radius %.2f vs root %.2f", avg, rootR)
	}
}

func TestClusterPurity(t *testing.T) {
	// With well-separated latent clusters, RP-tree leaves should be nearly
	// pure (each leaf dominated by one cluster) — this is the "similar
	// data items end up together" property the bi-level scheme relies on.
	spec := dataset.ClusteredSpec{N: 800, D: 32, Clusters: 4, IntrinsicDim: 2,
		Aspect: 2, NoiseSigma: 0.01, Spread: 50, PowerLaw: 0}
	data, labels, err := dataset.Clustered(spec, xrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	_, asg := Build(data, Options{Rule: RuleMean, Leaves: 8}, xrand.New(16))
	var pure, total int
	for _, members := range asg.Members {
		counts := map[int]int{}
		for _, p := range members {
			counts[labels[p]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		pure += best
		total += len(members)
	}
	if purity := float64(pure) / float64(total); purity < 0.9 {
		t.Fatalf("leaf purity %.2f < 0.9 on well-separated clusters", purity)
	}
}

// Property: routing is total and stable — every vector lands in a valid
// leaf, twice in the same one.
func TestRoutingTotalAndDeterministic(t *testing.T) {
	data, _ := buildClustered(t, 300, 10, 17)
	tree, _ := Build(data, Options{Rule: RuleMean, Leaves: 12}, xrand.New(18))
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		v := rng.GaussianVec(10)
		vec.Scale(v, 20*rng.Float64())
		l1 := tree.Leaf(v)
		l2 := tree.Leaf(v)
		return l1 == l2 && l1 >= 0 && l1 < tree.NumLeaves()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDeterminism(t *testing.T) {
	data, _ := buildClustered(t, 250, 8, 19)
	t1, a1 := Build(data, Options{Rule: RuleMean, Leaves: 8}, xrand.New(20))
	t2, a2 := Build(data, Options{Rule: RuleMean, Leaves: 8}, xrand.New(20))
	if t1.NumLeaves() != t2.NumLeaves() {
		t.Fatal("leaf counts differ across identical builds")
	}
	for p := range a1.LeafOf {
		if a1.LeafOf[p] != a2.LeafOf[p] {
			t.Fatal("assignments differ across identical builds")
		}
	}
}

func TestRuleString(t *testing.T) {
	if RuleMax.String() != "max" || RuleMean.String() != "mean" {
		t.Fatal("Rule.String wrong")
	}
	if Rule(9).String() == "" {
		t.Fatal("unknown rule must still format")
	}
}

func TestMedianThreshold(t *testing.T) {
	th, ok := medianThreshold([]float64{3, 1, 2, 4})
	if !ok || th != 2 {
		t.Fatalf("medianThreshold = %v ok=%v", th, ok)
	}
	// All-equal input is degenerate.
	if _, ok := medianThreshold([]float64{5, 5, 5}); ok {
		t.Fatal("all-equal input must report !ok")
	}
	// Median equal to max must step down to keep the right side non-empty.
	th, ok = medianThreshold([]float64{1, 9, 9})
	if !ok || th != 1 {
		t.Fatalf("max-median case: th=%v ok=%v, want 1", th, ok)
	}
}
