package rptree

import (
	"bytes"
	"testing"

	"bilsh/internal/dataset"
	"bilsh/internal/wire"
	"bilsh/internal/xrand"
)

func TestTreeRoundTrip(t *testing.T) {
	for _, rule := range []Rule{RuleMean, RuleMax} {
		data, _, err := dataset.Clustered(dataset.DefaultClusteredSpec(300, 16), xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		orig, _ := Build(data, Options{Rule: rule, Leaves: 8}, xrand.New(2))

		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		orig.Encode(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeTree(wire.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if got.NumLeaves() != orig.NumLeaves() || got.Dim() != orig.Dim() || got.Rule() != orig.Rule() {
			t.Fatal("tree metadata changed across round trip")
		}
		// Routing must be identical for stored points and fresh vectors.
		for i := 0; i < data.N; i += 7 {
			if got.Leaf(data.Row(i)) != orig.Leaf(data.Row(i)) {
				t.Fatalf("rule %v: routing differs for row %d", rule, i)
			}
		}
		rng := xrand.New(3)
		for i := 0; i < 50; i++ {
			v := rng.GaussianVec(16)
			if got.Leaf(v) != orig.Leaf(v) {
				t.Fatalf("rule %v: routing differs for random vector", rule)
			}
		}
	}
}

func TestDecodeTreeRejectsBadStructure(t *testing.T) {
	// Internal node whose children point backwards must be rejected.
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("rptree.Tree/1")
	w.Int(4) // dim
	w.Int(0) // rule
	w.Int(1) // leaves
	w.Int(2) // nodes
	// Node 0: internal with left=0 (self-loop).
	w.F32s([]float32{1, 0, 0, 0})
	w.F32s(nil)
	w.F64(0)
	w.Int(0) // left: invalid (must be > 0)
	w.Int(1)
	w.Int(-1)
	w.Int(10)
	// Node 1: leaf.
	w.F32s(nil)
	w.F32s(nil)
	w.F64(0)
	w.Int(-1)
	w.Int(-1)
	w.Int(0)
	w.Int(10)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTree(wire.NewReader(&buf)); err == nil {
		t.Fatal("self-loop children must be rejected")
	}
}

func TestDecodeTreeRejectsSplitlessInternal(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("rptree.Tree/1")
	w.Int(4)
	w.Int(0)
	w.Int(2)
	w.Int(3)
	// Node 0: internal with NO split vectors.
	w.F32s(nil)
	w.F32s(nil)
	w.F64(0)
	w.Int(1)
	w.Int(2)
	w.Int(-1)
	w.Int(10)
	for leaf := 0; leaf < 2; leaf++ {
		w.F32s(nil)
		w.F32s(nil)
		w.F64(0)
		w.Int(-1)
		w.Int(-1)
		w.Int(leaf)
		w.Int(5)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTree(wire.NewReader(&buf)); err == nil {
		t.Fatal("splitless internal node must be rejected")
	}
}

func TestDecodeTreeRejectsLeafIDOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Magic("rptree.Tree/1")
	w.Int(4)
	w.Int(0)
	w.Int(1) // one leaf claimed...
	w.Int(1)
	w.F32s(nil)
	w.F32s(nil)
	w.F64(0)
	w.Int(-1)
	w.Int(-1)
	w.Int(5) // ...but labeled 5
	w.Int(3)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTree(wire.NewReader(&buf)); err == nil {
		t.Fatal("out-of-range leaf id must be rejected")
	}
}
