package rptree

import (
	"testing"

	"bilsh/internal/dataset"
	"bilsh/internal/xrand"
)

func probeTree(t *testing.T, leaves int) (*Tree, *dataset.ClusteredSpec) {
	t.Helper()
	spec := dataset.ClusteredSpec{N: 400, D: 8, Clusters: 4, IntrinsicDim: 3,
		Aspect: 3, NoiseSigma: 0.05, Spread: 8, PowerLaw: 0.3, ScaleSpread: 2}
	data, _, err := dataset.Clustered(spec, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := Build(data, Options{Leaves: leaves}, xrand.New(12))
	return tree, &spec
}

func TestLeafProbesFirstIsHomeLeaf(t *testing.T) {
	tree, _ := probeTree(t, 8)
	rng := xrand.New(13)
	v := make([]float32, tree.Dim())
	for trial := 0; trial < 100; trial++ {
		for j := range v {
			v[j] = float32(rng.NormFloat64() * 3)
		}
		for _, m := range []int{1, 2, tree.NumLeaves(), tree.NumLeaves() + 5} {
			probes := tree.LeafProbes(v, m)
			if len(probes) == 0 || probes[0] != tree.Leaf(v) {
				t.Fatalf("trial %d m=%d: probes %v, first must be home leaf %d", trial, m, probes, tree.Leaf(v))
			}
			want := m
			if want > tree.NumLeaves() {
				want = tree.NumLeaves()
			}
			if len(probes) != want {
				t.Fatalf("trial %d m=%d: %d probes, want %d", trial, m, len(probes), want)
			}
			seen := map[int]bool{}
			for _, p := range probes {
				if p < 0 || p >= tree.NumLeaves() {
					t.Fatalf("trial %d: probe %d out of range [0,%d)", trial, p, tree.NumLeaves())
				}
				if seen[p] {
					t.Fatalf("trial %d: duplicate probe %d in %v", trial, p, probes)
				}
				seen[p] = true
			}
		}
	}
}

// TestLeafProbesCoversAllLeaves checks that asking for every leaf
// enumerates every leaf — the best-first search must not lose subtrees.
func TestLeafProbesCoversAllLeaves(t *testing.T) {
	tree, _ := probeTree(t, 6)
	v := make([]float32, tree.Dim())
	probes := tree.LeafProbes(v, tree.NumLeaves())
	if len(probes) != tree.NumLeaves() {
		t.Fatalf("asked for all %d leaves, got %d: %v", tree.NumLeaves(), len(probes), probes)
	}
}

// TestLeafProbesSingleLeafTree: a degenerate tree (one leaf) always
// probes leaf 0.
func TestLeafProbesSingleLeafTree(t *testing.T) {
	tree, _ := probeTree(t, 1)
	if tree.NumLeaves() != 1 {
		t.Skipf("build produced %d leaves", tree.NumLeaves())
	}
	v := make([]float32, tree.Dim())
	if got := tree.LeafProbes(v, 4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("probes %v, want [0]", got)
	}
}
