package rptree

import (
	"fmt"

	"bilsh/internal/wire"
)

const treeMagic = "rptree.Tree/1"

// Encode writes the routing structure of the tree (what Leaf needs); the
// construction-time member lists are not part of the persistent form.
func (t *Tree) Encode(w *wire.Writer) {
	w.Magic(treeMagic)
	w.Int(t.dim)
	w.Int(int(t.rule))
	w.Int(t.leaves)
	w.Int(len(t.nodes))
	for i := range t.nodes {
		n := &t.nodes[i]
		w.F32s(n.proj) // nil encodes as empty
		w.F32s(n.mean)
		w.F64(n.thresh)
		w.Int(n.left)
		w.Int(n.right)
		w.Int(n.leaf)
		w.Int(n.size)
	}
}

// DecodeTree reads a tree written by Encode.
func DecodeTree(r *wire.Reader) (*Tree, error) {
	r.ExpectMagic(treeMagic)
	t := &Tree{
		dim:    r.Int(),
		rule:   Rule(r.Int()),
		leaves: r.Int(),
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if t.dim <= 0 || t.leaves < 1 || n < 1 || n > wire.MaxLen/16 {
		return nil, fmt.Errorf("rptree: decoded tree shape dim=%d leaves=%d nodes=%d implausible", t.dim, t.leaves, n)
	}
	t.nodes = make([]node, n)
	for i := range t.nodes {
		nd := &t.nodes[i]
		if proj := r.F32s(); len(proj) > 0 {
			nd.proj = proj
		}
		if mean := r.F32s(); len(mean) > 0 {
			nd.mean = mean
		}
		nd.thresh = r.F64()
		nd.left = r.Int()
		nd.right = r.Int()
		nd.leaf = r.Int()
		nd.size = r.Int()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Structural validation: children in range, leaves labeled densely.
	for i := range t.nodes {
		nd := &t.nodes[i]
		if nd.leaf >= 0 {
			if nd.leaf >= t.leaves {
				return nil, fmt.Errorf("rptree: node %d has leaf id %d of %d", i, nd.leaf, t.leaves)
			}
			continue
		}
		if nd.left <= i || nd.left >= n || nd.right <= i || nd.right >= n {
			return nil, fmt.Errorf("rptree: node %d has out-of-order children (%d,%d)", i, nd.left, nd.right)
		}
		if nd.proj == nil && nd.mean == nil {
			return nil, fmt.Errorf("rptree: internal node %d carries no split", i)
		}
	}
	return t, nil
}
