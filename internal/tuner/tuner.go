// Package tuner estimates per-cluster LSH parameters, playing the role of
// the statistical model of Dong et al. that the paper invokes at the start
// of Section IV-B ("we use an automatic parameter tuning approach to
// compute the optimal LSH parameters for each cell").
//
// Substitution note (see DESIGN.md): Dong et al. fit a full quality/runtime
// model from a sample. This tuner keeps the part the bi-level algorithm
// actually consumes — a per-cluster bucket width W — and derives it from
// the same ingredients: the sampled k-NN radius of the cluster and the
// closed-form p-stable collision probability. Choosing W so that a true
// k-th neighbor collides with the query in one table with a target
// probability directly trades recall against selectivity, which is the
// axis all the paper's figures sweep.
package tuner

import (
	"fmt"
	"math"
	"slices"

	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Config bounds the sampling effort.
type Config struct {
	// SamplePoints caps how many cluster members serve as pivot samples
	// (default 64).
	SamplePoints int
	// SampleAgainst caps how many members each pivot is compared to
	// (default 1024).
	SampleAgainst int
}

func (c *Config) fill() {
	if c.SamplePoints <= 0 {
		c.SamplePoints = 64
	}
	if c.SampleAgainst <= 0 {
		c.SampleAgainst = 1024
	}
}

// Estimate is the tuner's output for one cluster.
type Estimate struct {
	// W is the recommended bucket width for Eq. 2.
	W float64
	// KDist is the sampled mean distance to the k-th nearest neighbor.
	KDist float64
	// MeanDist is the sampled mean pairwise distance (a scale reference).
	MeanDist float64
	// Samples is the number of pivots actually used.
	Samples int
}

// CollisionProb returns the probability that two points at distance r fall
// into the same bucket of a single p-stable hash h(v) = ⌊(a·v+b)/W⌋ with
// Gaussian a — the closed form used by Datar et al. and Dong et al.:
//
//	p(c) = 2Φ(c) − 1 − (2/(√(2π)·c))·(1 − e^(−c²/2)),  c = W/r.
func CollisionProb(r, w float64) float64 {
	if r <= 0 {
		return 1
	}
	if w <= 0 {
		return 0
	}
	c := w / r
	return 2*phi(c) - 1 - 2/(math.Sqrt(2*math.Pi)*c)*(1-math.Exp(-c*c/2))
}

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// EstimateW picks a bucket width for the cluster consisting of the given
// member rows, such that a point at the sampled k-NN radius shares all M
// hash values with the query with probability targetRecall (per table).
// Clusters too small to sample fall back to W = MeanDist (and ultimately
// to 1.0 for degenerate single-point clusters).
func EstimateW(data *vec.Matrix, members []int, k, m int, targetRecall float64, cfg Config, rng *xrand.RNG) (Estimate, error) {
	if k <= 0 || m <= 0 {
		return Estimate{}, fmt.Errorf("tuner: k=%d m=%d must be positive", k, m)
	}
	if targetRecall <= 0 || targetRecall >= 1 {
		return Estimate{}, fmt.Errorf("tuner: targetRecall=%g must be in (0,1)", targetRecall)
	}
	cfg.fill()

	est := Estimate{W: 1}
	if len(members) < 2 {
		return est, nil
	}
	pivots := rng.Sample(len(members), cfg.SamplePoints)
	others := members
	if len(others) > cfg.SampleAgainst {
		idx := rng.Sample(len(members), cfg.SampleAgainst)
		others = make([]int, len(idx))
		for i, j := range idx {
			others[i] = members[j]
		}
	}

	var kSum, meanSum float64
	var meanN int
	dists := make([]float64, 0, len(others))
	for _, pi := range pivots {
		p := members[pi]
		dists = dists[:0]
		for _, q := range others {
			if q == p {
				continue
			}
			d := vec.Dist(data.Row(p), data.Row(q))
			dists = append(dists, d)
			meanSum += d
			meanN++
		}
		if len(dists) == 0 {
			continue
		}
		slices.Sort(dists)
		kk := k
		if kk > len(dists) {
			kk = len(dists)
		}
		kSum += dists[kk-1]
		est.Samples++
	}
	if est.Samples == 0 || meanN == 0 {
		return est, nil
	}
	est.KDist = kSum / float64(est.Samples)
	est.MeanDist = meanSum / float64(meanN)
	if est.KDist <= 0 {
		// Duplicate-heavy cluster: any W works; use the scale reference.
		est.W = math.Max(est.MeanDist, 1e-6)
		return est, nil
	}

	// Solve p(W/KDist)^m = targetRecall for W by bisection; p is
	// monotonically increasing in W.
	perDim := math.Pow(targetRecall, 1/float64(m))
	lo, hi := 1e-9*est.KDist, 1e6*est.KDist
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if CollisionProb(est.KDist, mid) < perDim {
			lo = mid
		} else {
			hi = mid
		}
	}
	est.W = (lo + hi) / 2
	return est, nil
}

// ScaleForSelectivity adjusts a base estimate multiplicatively: the
// experiments sweep W over a grid of multipliers of the tuned value, which
// keeps per-cluster ratios intact while moving the global operating point.
func ScaleForSelectivity(base Estimate, mult float64) Estimate {
	out := base
	out.W = base.W * mult
	return out
}
