package tuner

import (
	"context"
	"math"
	"time"

	"bilsh/internal/metrics"
)

// Online re-tuning: instead of the offline sample-based sweep (EstimateW
// at build time), watch the live per-query work counters that
// internal/core already records into internal/metrics and periodically
// recommend a default execution budget from observed traffic. The server
// and router run one Online each behind their -adaptive flags and apply
// the recommendations to their default query plan; core itself never
// depends on this file, so the byte-identical default-plan guarantee is
// untouched.
//
// The model is deliberately the same one the build-time tuner uses
// (Section IV-B): bucket widths were chosen so a true k-th neighbor
// collides per table with probability q = 1 − (1 − built)^(1/L), which
// makes T tables worth of probing deliver estimated recall
// 1 − (1 − q)^T. The online part estimates the *collision mass* — the
// typical number of distinct candidates a full-budget query gathers —
// from windowed histogram deltas, and turns it into a MaxCandidates
// trigger: once a query has collected a comfortable multiple of the
// typical mass, further probing is spending latency on candidates the
// ranker almost surely discards.

// Budget is an online recommendation for the default query plan. It is
// transport- and core-agnostic (plain numbers) so the tuner can be used
// from both tiers without importing core: the server maps it onto a
// core.Plan, the router onto its forwarded wire plan.
type Budget struct {
	// TargetRecall is the SLO the budget was resolved for (echoed from
	// the config; the serving tier forwards it so shards re-resolve
	// against their own built parameters).
	TargetRecall float64
	// Tables is the recommended table budget (0 when the config did not
	// provide the built table count, e.g. on the router, whose shards
	// resolve tables locally from TargetRecall).
	Tables int
	// MaxCandidates is the early-termination shortlist cap derived from
	// the observed collision mass (0 until enough samples accumulated).
	MaxCandidates int
	// Samples is the number of queries the window observed.
	Samples int64
	// MeanCandidates is the observed mean shortlist size per query in the
	// window.
	MeanCandidates float64
}

// OnlineConfig configures an Online tuner.
type OnlineConfig struct {
	// Candidates is the per-query shortlist-size histogram to watch
	// (normally bilsh_core_query_candidates resolved from the default
	// registry; the router watches its own merged-candidates histogram).
	Candidates *metrics.Histogram

	// TargetRecall is the recall SLO, in (0, 1), that recommendations
	// carry and (when BuiltRecall/Tables are set) resolve into a table
	// budget.
	TargetRecall float64

	// BuiltRecall is the index's build-time TuneTargetRecall and Tables
	// its table count L. When both are set, recommendations include a
	// concrete Tables value; when not (the router fronting heterogeneous
	// shards), Tables stays 0 and only TargetRecall is forwarded.
	BuiltRecall float64
	Tables      int

	// MinSamples is the minimum number of queries a window must observe
	// before the tuner recommends anything (default 64): re-tuning from a
	// handful of queries would chase noise.
	MinSamples int64

	// Headroom multiplies the observed mean shortlist size to produce
	// MaxCandidates (default 3). Larger headroom terminates later and is
	// safer; 1.0 would cut half of all queries short of their own typical
	// mass.
	Headroom float64

	// Interval is the re-tune period for Run (default 10s).
	Interval time.Duration
}

func (c *OnlineConfig) fill() {
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.Headroom <= 0 {
		c.Headroom = 3
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
}

// Online watches live metrics and periodically recommends a Budget.
// Methods are not safe for concurrent use with each other; Run owns the
// Online for its lifetime.
type Online struct {
	cfg OnlineConfig

	// Window baseline: the histogram totals at the end of the previous
	// window. Deltas against these isolate the current window's traffic.
	lastCount int64
	lastSum   float64
}

var metRetunes = metrics.Default().Counter(
	"bilsh_adaptive_retunes_total",
	"Online tuner windows that produced a budget recommendation.")

// NewOnline returns an online tuner over cfg. The initial window baseline
// is the histogram's current totals, so pre-existing traffic is excluded.
func NewOnline(cfg OnlineConfig) *Online {
	cfg.fill()
	o := &Online{cfg: cfg}
	if cfg.Candidates != nil {
		o.lastCount = cfg.Candidates.Count()
		o.lastSum = cfg.Candidates.Sum()
	}
	return o
}

// Step closes the current observation window and, if it saw at least
// MinSamples queries, returns a budget recommendation. The window
// baseline advances only when a recommendation is produced, so sparse
// traffic accumulates across ticks instead of being discarded.
func (o *Online) Step() (Budget, bool) {
	if o.cfg.Candidates == nil {
		return Budget{}, false
	}
	count := o.cfg.Candidates.Count()
	sum := o.cfg.Candidates.Sum()
	n := count - o.lastCount
	if n < o.cfg.MinSamples {
		return Budget{}, false
	}
	mean := (sum - o.lastSum) / float64(n)
	o.lastCount = count
	o.lastSum = sum

	b := Budget{
		TargetRecall:   o.cfg.TargetRecall,
		Samples:        n,
		MeanCandidates: mean,
	}
	if mean > 0 {
		b.MaxCandidates = int(math.Ceil(o.cfg.Headroom * mean))
	}
	if o.cfg.TargetRecall > 0 && o.cfg.Tables > 0 {
		b.Tables = TablesForRecall(o.cfg.TargetRecall, o.cfg.BuiltRecall, o.cfg.Tables)
	}
	metRetunes.Inc()
	return b, true
}

// Run re-tunes every Interval until ctx is done, invoking apply for each
// recommendation. apply runs on Run's goroutine; appliers that publish to
// a live default plan must do so atomically (the serving tiers use an
// atomic pointer swap).
func (o *Online) Run(ctx context.Context, apply func(Budget)) {
	t := time.NewTicker(o.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if b, ok := o.Step(); ok {
				apply(b)
			}
		}
	}
}

// TablesForRecall translates a recall target into a table budget under
// the build-time collision model: widths were tuned so a true k-th
// neighbor collides per table with probability
// q = 1 − (1 − built)^(1/L), hence estimated recall after T tables is
// 1 − (1 − q)^T. Returns the smallest T meeting target, clamped to
// [1, L]. Out-of-range built values fall back to the 0.9 build default.
func TablesForRecall(target, built float64, L int) int {
	if L <= 1 {
		return 1
	}
	if built <= 0 || built >= 1 {
		built = 0.9
	}
	q := 1 - math.Pow(1-built, 1/float64(L))
	if q <= 0 || q >= 1 || target <= 0 || target >= 1 {
		return L
	}
	t := int(math.Ceil(math.Log(1-target) / math.Log(1-q)))
	if t < 1 {
		t = 1
	}
	if t > L {
		t = L
	}
	return t
}

// EstimatedRecall is the inverse of TablesForRecall: the recall the
// collision model predicts for probing tables of L built tables.
func EstimatedRecall(tables int, built float64, L int) float64 {
	if L < 1 || tables < 1 {
		return 0
	}
	if tables > L {
		tables = L
	}
	if built <= 0 || built >= 1 {
		built = 0.9
	}
	q := 1 - math.Pow(1-built, 1/float64(L))
	return 1 - math.Pow(1-q, float64(tables))
}
