package tuner

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"bilsh/internal/metrics"
)

func onlineHist(t *testing.T) *metrics.Histogram {
	t.Helper()
	reg := metrics.NewRegistry()
	return reg.Histogram("test_candidates", "per-query candidates", metrics.DefCountBuckets)
}

// feed records n queries of the given shortlist size.
func feed(h *metrics.Histogram, n int, size float64) {
	for i := 0; i < n; i++ {
		h.Observe(size)
	}
}

func TestOnlineStepNeedsMinSamples(t *testing.T) {
	h := onlineHist(t)
	on := NewOnline(OnlineConfig{Candidates: h, TargetRecall: 0.9, MinSamples: 10})
	if _, ok := on.Step(); ok {
		t.Fatal("Step with no traffic produced a recommendation")
	}
	feed(h, 9, 100)
	if _, ok := on.Step(); ok {
		t.Fatal("Step below MinSamples produced a recommendation")
	}
	// Sparse traffic accumulates: one more query tips the same window over
	// the threshold instead of being discarded with it.
	feed(h, 1, 100)
	b, ok := on.Step()
	if !ok {
		t.Fatal("Step at MinSamples produced nothing")
	}
	if b.Samples != 10 || b.MeanCandidates != 100 {
		t.Fatalf("budget = %+v, want 10 samples of mean 100", b)
	}
}

func TestOnlineStepDerivesCap(t *testing.T) {
	h := onlineHist(t)
	on := NewOnline(OnlineConfig{
		Candidates: h, TargetRecall: 0.9, MinSamples: 10,
		Headroom: 2, BuiltRecall: 0.9, Tables: 16,
	})
	feed(h, 20, 500)
	b, ok := on.Step()
	if !ok {
		t.Fatal("no recommendation")
	}
	if b.MaxCandidates != 1000 {
		t.Fatalf("MaxCandidates = %d, want Headroom 2 x mean 500 = 1000", b.MaxCandidates)
	}
	if b.TargetRecall != 0.9 {
		t.Fatalf("TargetRecall = %g, want the configured SLO echoed", b.TargetRecall)
	}
	if want := TablesForRecall(0.9, 0.9, 16); b.Tables != want {
		t.Fatalf("Tables = %d, want %d", b.Tables, want)
	}

	// The window baseline advanced: the next window sees only new traffic.
	feed(h, 10, 300)
	b, ok = on.Step()
	if !ok {
		t.Fatal("no recommendation for second window")
	}
	if b.Samples != 10 || b.MeanCandidates != 300 {
		t.Fatalf("second window = %+v, want 10 samples of mean 300", b)
	}
}

func TestOnlineIgnoresPreexistingTraffic(t *testing.T) {
	h := onlineHist(t)
	feed(h, 1000, 9999)
	on := NewOnline(OnlineConfig{Candidates: h, TargetRecall: 0.9, MinSamples: 10})
	if _, ok := on.Step(); ok {
		t.Fatal("Step counted traffic observed before NewOnline")
	}
	feed(h, 10, 100)
	b, ok := on.Step()
	if !ok || b.MeanCandidates != 100 {
		t.Fatalf("budget = %+v ok=%v, want mean 100 from the fresh window only", b, ok)
	}
}

func TestOnlineNilHistogram(t *testing.T) {
	on := NewOnline(OnlineConfig{TargetRecall: 0.9})
	if _, ok := on.Step(); ok {
		t.Fatal("Step with nil histogram produced a recommendation")
	}
}

func TestOnlineRunAppliesBudgets(t *testing.T) {
	h := onlineHist(t)
	on := NewOnline(OnlineConfig{
		Candidates: h, TargetRecall: 0.9,
		MinSamples: 1, Interval: time.Millisecond,
	})
	feed(h, 5, 200)
	var applied atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		on.Run(ctx, func(b Budget) { applied.Add(1) })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for applied.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if applied.Load() == 0 {
		t.Fatal("Run never applied a recommendation")
	}
}

func TestTablesForRecall(t *testing.T) {
	cases := []struct {
		target, built float64
		L, want       int
	}{
		// target == built needs the full budget by construction.
		{0.9, 0.9, 16, 16},
		{0.9, 0.9, 8, 8},
		// Lower targets need geometrically fewer tables.
		{0.5, 0.9, 16, 5},
		{0.1, 0.9, 16, 1},
		// Degenerate inputs clamp instead of failing.
		{0.999999, 0.9, 16, 16},
		{0.9, 0, 16, 16}, // built falls back to 0.9
		{0, 0.9, 16, 16}, // no target = full budget
		{0.9, 0.9, 1, 1}, // single table
		{0.5, 0.9, 0, 1}, // L <= 1 clamps to 1
	}
	for _, tc := range cases {
		if got := TablesForRecall(tc.target, tc.built, tc.L); got != tc.want {
			t.Errorf("TablesForRecall(%g, %g, %d) = %d, want %d", tc.target, tc.built, tc.L, got, tc.want)
		}
	}
	// Monotone in the target.
	prev := 0
	for _, target := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		got := TablesForRecall(target, 0.9, 16)
		if got < prev {
			t.Fatalf("TablesForRecall(%g) = %d < previous %d: not monotone", target, got, prev)
		}
		prev = got
	}
}

func TestEstimatedRecallInvertsTablesForRecall(t *testing.T) {
	const built, L = 0.9, 16
	for tables := 1; tables <= L; tables++ {
		est := EstimatedRecall(tables, built, L)
		if est <= 0 || est >= 1 {
			t.Fatalf("EstimatedRecall(%d) = %g out of (0,1)", tables, est)
		}
		// Resolving the estimate back must not need more tables than we
		// estimated for (ceil may round down to fewer).
		if got := TablesForRecall(est-1e-9, built, L); got > tables {
			t.Fatalf("TablesForRecall(EstimatedRecall(%d)) = %d > %d", tables, got, tables)
		}
	}
	if EstimatedRecall(L, built, L) < built-1e-9 {
		t.Fatalf("full budget estimates %g, want >= built %g", EstimatedRecall(L, built, L), built)
	}
}
