package tuner

import (
	"math"
	"testing"
	"testing/quick"

	"bilsh/internal/dataset"
	"bilsh/internal/lattice"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func TestCollisionProbLimits(t *testing.T) {
	// Tiny W: almost never collide. Huge W: almost always.
	if p := CollisionProb(1, 1e-6); p > 1e-3 {
		t.Fatalf("p(tiny W) = %v", p)
	}
	if p := CollisionProb(1, 1e6); p < 0.999 {
		t.Fatalf("p(huge W) = %v", p)
	}
	if p := CollisionProb(0, 5); p != 1 {
		t.Fatalf("p(r=0) = %v, want 1", p)
	}
	if p := CollisionProb(1, 0); p != 0 {
		t.Fatalf("p(W=0) = %v, want 0", p)
	}
}

// Property: CollisionProb is within [0,1] and increasing in W.
func TestCollisionProbMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		r := 0.1 + rng.Float64()*10
		prev := -1.0
		for w := 0.1; w < 50; w *= 1.5 {
			p := CollisionProb(r, w)
			if p < 0 || p > 1 || p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// CollisionProb must agree with a Monte-Carlo simulation of Eq. 2.
func TestCollisionProbMatchesSimulation(t *testing.T) {
	rng := xrand.New(3)
	const d = 16
	r := 2.0
	w := 3.0
	u := make([]float32, d)
	v := make([]float32, d)
	v[0] = float32(r) // distance exactly r
	z := lattice.NewZM(1)
	const trials = 4000
	hits := 0
	for i := 0; i < trials; i++ {
		f, err := lshfunc.NewFamily(d, lshfunc.Params{M: 1, L: 1, W: w}, rng.Split(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		cu := z.Decode(f.Projected(0, u))
		cv := z.Decode(f.Projected(0, v))
		if cu[0] == cv[0] {
			hits++
		}
	}

	got := float64(hits) / trials
	want := CollisionProb(r, w)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("simulated collision %.3f vs closed form %.3f", got, want)
	}
}

func TestEstimateWValidation(t *testing.T) {
	data := dataset.Gaussian(10, 4, 1, xrand.New(1))
	members := []int{0, 1, 2}
	if _, err := EstimateW(data, members, 0, 8, 0.9, Config{}, xrand.New(2)); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := EstimateW(data, members, 3, 0, 0.9, Config{}, xrand.New(2)); err == nil {
		t.Fatal("m=0 must error")
	}
	if _, err := EstimateW(data, members, 3, 8, 1.5, Config{}, xrand.New(2)); err == nil {
		t.Fatal("target out of range must error")
	}
}

func TestEstimateWTinyClusters(t *testing.T) {
	data := dataset.Gaussian(10, 4, 1, xrand.New(3))
	est, err := EstimateW(data, []int{5}, 3, 8, 0.9, Config{}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if est.W != 1 || est.Samples != 0 {
		t.Fatalf("single-point cluster estimate = %+v", est)
	}
}

func TestEstimateWDuplicateCluster(t *testing.T) {
	rows := make([][]float32, 30)
	for i := range rows {
		rows[i] = []float32{1, 2}
	}
	data := vec.FromRows(rows)
	members := make([]int, 30)
	for i := range members {
		members[i] = i
	}
	est, err := EstimateW(data, members, 5, 8, 0.9, Config{}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if est.W <= 0 {
		t.Fatalf("degenerate cluster W = %v", est.W)
	}
}

func TestEstimateWScalesWithData(t *testing.T) {
	// Scaling the data by 10x must scale the tuned W by ~10x.
	rng := xrand.New(6)
	small := dataset.Gaussian(300, 8, 1, rng.Split(0))
	big := vec.NewMatrix(small.N, small.D)
	copy(big.Data, small.Data)
	vec.Scale(big.Data, 10)
	members := make([]int, small.N)
	for i := range members {
		members[i] = i
	}
	e1, err := EstimateW(small, members, 10, 8, 0.9, Config{}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EstimateW(big, members, 10, 8, 0.9, Config{}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	ratio := e2.W / e1.W
	if ratio < 8 || ratio > 12 {
		t.Fatalf("W ratio = %.2f, want ~10", ratio)
	}
}

func TestEstimateWAchievesTarget(t *testing.T) {
	// The tuned W must make CollisionProb(KDist, W)^m equal the target.
	data := dataset.Gaussian(400, 16, 2, xrand.New(8))
	members := make([]int, data.N)
	for i := range members {
		members[i] = i
	}
	const m = 8
	const target = 0.7
	est, err := EstimateW(data, members, 20, m, target, Config{}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	got := math.Pow(CollisionProb(est.KDist, est.W), m)
	if math.Abs(got-target) > 1e-6 {
		t.Fatalf("achieved collision %.6f, want %.2f", got, target)
	}
	if est.KDist <= 0 || est.MeanDist <= est.KDist {
		t.Fatalf("distance stats implausible: %+v", est)
	}
}

func TestHigherTargetNeedsWiderBuckets(t *testing.T) {
	data := dataset.Gaussian(300, 8, 1, xrand.New(10))
	members := make([]int, data.N)
	for i := range members {
		members[i] = i
	}
	lo, err := EstimateW(data, members, 10, 8, 0.5, Config{}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := EstimateW(data, members, 10, 8, 0.95, Config{}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if hi.W <= lo.W {
		t.Fatalf("W(0.95)=%.3f not wider than W(0.5)=%.3f", hi.W, lo.W)
	}
}

func TestScaleForSelectivity(t *testing.T) {
	base := Estimate{W: 2, KDist: 1}
	out := ScaleForSelectivity(base, 2.5)
	if out.W != 5 || out.KDist != 1 {
		t.Fatalf("scaled = %+v", out)
	}
}
