package kmeans

import (
	"bytes"
	"testing"

	"bilsh/internal/dataset"
	"bilsh/internal/wire"
	"bilsh/internal/xrand"
)

func TestModelRoundTrip(t *testing.T) {
	data := dataset.Gaussian(200, 8, 1, xrand.New(1))
	orig, _ := Build(data, Options{K: 5}, xrand.New(2))
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	orig.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != orig.K() || got.Inertia != orig.Inertia || got.Iters != orig.Iters {
		t.Fatal("model metadata changed")
	}
	for i := 0; i < data.N; i += 13 {
		if got.Assign(data.Row(i)) != orig.Assign(data.Row(i)) {
			t.Fatalf("assignment differs for row %d", i)
		}
	}
}

func TestDecodeModelRejectsGarbage(t *testing.T) {
	if _, err := DecodeModel(wire.NewReader(bytes.NewReader([]byte("junk")))); err == nil {
		t.Fatal("garbage must be rejected")
	}
}
