// Package kmeans implements Lloyd's algorithm with k-means++ seeding.
//
// It is the baseline level-1 partitioner the paper compares RP-trees
// against (Figure 13(c)): the paper argues K-means is sensitive to
// initialization and converges slowly on high-dimensional data, and the
// Fig. 13c experiment shows RP-tree partitions give better quality and
// lower deviation. This package exists so that comparison can be
// reproduced.
package kmeans

import (
	"fmt"
	"math"

	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Options configures a run.
type Options struct {
	// K is the number of clusters (>= 1).
	K int
	// MaxIters caps Lloyd iterations (default 50).
	MaxIters int
	// Tol stops early when the relative decrease of the objective falls
	// below it (default 1e-4).
	Tol float64
}

func (o *Options) fill() {
	if o.K < 1 {
		o.K = 1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
}

// Model is a fitted clustering.
type Model struct {
	Centroids *vec.Matrix
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Assignment mirrors rptree.Assignment for the level-1 consumer.
type Assignment struct {
	LeafOf  []int
	Members [][]int
}

// Build fits K-means to data and returns the model and point assignment.
// Empty clusters are re-seeded from the point currently farthest from its
// centroid, so every returned cluster is non-empty when data.N >= K.
func Build(data *vec.Matrix, opts Options, rng *xrand.RNG) (*Model, *Assignment) {
	opts.fill()
	k := opts.K
	if k > data.N {
		k = data.N
	}
	cents := seedPlusPlus(data, k, rng)
	assign := make([]int, data.N)
	prevObj := math.Inf(1)
	m := &Model{}
	for iter := 0; iter < opts.MaxIters; iter++ {
		m.Iters = iter + 1
		obj := assignAll(data, cents, assign)
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, data.D)
		}
		for p := 0; p < data.N; p++ {
			c := assign[p]
			counts[c]++
			row := data.Row(p)
			for d, v := range row {
				sums[c][d] += float64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed from the worst-served point.
				worst, worstD := 0, -1.0
				for p := 0; p < data.N; p++ {
					if d := vec.SqDist(data.Row(p), cents.Row(assign[p])); d > worstD {
						worstD = d
						worst = p
					}
				}
				copy(cents.Row(c), data.Row(worst))
				continue
			}
			row := cents.Row(c)
			for d := range row {
				row[d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
		if prevObj-obj <= opts.Tol*math.Abs(prevObj) {
			m.Inertia = obj
			break
		}
		prevObj = obj
		m.Inertia = obj
	}
	// Final assignment against the final centroids.
	m.Inertia = assignAll(data, cents, assign)
	m.Centroids = cents

	asg := &Assignment{LeafOf: assign, Members: make([][]int, k)}
	for p, c := range assign {
		asg.Members[c] = append(asg.Members[c], p)
	}
	return m, asg
}

// assignAll writes the nearest-centroid index of every point into assign
// and returns the total squared-distance objective.
func assignAll(data, cents *vec.Matrix, assign []int) float64 {
	var obj float64
	for p := 0; p < data.N; p++ {
		row := data.Row(p)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < cents.N; c++ {
			if d := vec.SqDist(row, cents.Row(c)); d < bestD {
				bestD = d
				best = c
			}
		}
		assign[p] = best
		obj += bestD
	}
	return obj
}

// Assign routes a query vector to its nearest centroid.
func (m *Model) Assign(v []float32) int {
	if len(v) != m.Centroids.D {
		panic(fmt.Sprintf("kmeans: Assign got dim %d, want %d", len(v), m.Centroids.D))
	}
	best, bestD := 0, math.Inf(1)
	for c := 0; c < m.Centroids.N; c++ {
		if d := vec.SqDist(v, m.Centroids.Row(c)); d < bestD {
			bestD = d
			best = c
		}
	}
	return best
}

// K returns the number of clusters.
func (m *Model) K() int { return m.Centroids.N }

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(data *vec.Matrix, k int, rng *xrand.RNG) *vec.Matrix {
	cents := vec.NewMatrix(k, data.D)
	first := rng.Intn(data.N)
	copy(cents.Row(0), data.Row(first))
	d2 := make([]float64, data.N)
	for p := 0; p < data.N; p++ {
		d2[p] = vec.SqDist(data.Row(p), cents.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(data.N) // all points coincide with a centroid
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = data.N - 1
			for p, d := range d2 {
				acc += d
				if acc >= target {
					pick = p
					break
				}
			}
		}
		copy(cents.Row(c), data.Row(pick))
		for p := 0; p < data.N; p++ {
			if d := vec.SqDist(data.Row(p), cents.Row(c)); d < d2[p] {
				d2[p] = d
			}
		}
	}
	return cents
}
