package kmeans

import (
	"fmt"

	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

const modelMagic = "kmeans.Model/1"

// Encode writes the fitted model to w.
func (m *Model) Encode(w *wire.Writer) {
	w.Magic(modelMagic)
	m.Centroids.Encode(w)
	w.F64(m.Inertia)
	w.Int(m.Iters)
}

// DecodeModel reads a model written by Encode.
func DecodeModel(r *wire.Reader) (*Model, error) {
	r.ExpectMagic(modelMagic)
	cents, err := vec.DecodeMatrix(r)
	if err != nil {
		return nil, fmt.Errorf("kmeans: centroids: %w", err)
	}
	m := &Model{Centroids: cents, Inertia: r.F64(), Iters: r.Int()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m.Centroids.N < 1 {
		return nil, fmt.Errorf("kmeans: decoded model has no centroids")
	}
	return m, nil
}
