package kmeans

import (
	"testing"

	"bilsh/internal/dataset"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func TestRecoverSeparatedClusters(t *testing.T) {
	spec := dataset.ClusteredSpec{N: 400, D: 16, Clusters: 4, IntrinsicDim: 2,
		Aspect: 1.5, NoiseSigma: 0.01, Spread: 40, PowerLaw: 0}
	data, labels, err := dataset.Clustered(spec, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	_, asg := Build(data, Options{K: 4}, xrand.New(2))
	// Compute purity: each fitted cluster should be dominated by one label.
	var pure int
	for _, members := range asg.Members {
		counts := map[int]int{}
		for _, p := range members {
			counts[labels[p]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		pure += best
	}
	if purity := float64(pure) / float64(data.N); purity < 0.95 {
		t.Fatalf("purity = %.2f on trivially separable data", purity)
	}
}

func TestAssignmentComplete(t *testing.T) {
	data := dataset.Gaussian(200, 8, 1, xrand.New(3))
	m, asg := Build(data, Options{K: 5}, xrand.New(4))
	if m.K() != 5 {
		t.Fatalf("K = %d", m.K())
	}
	seen := make([]bool, data.N)
	for c, members := range asg.Members {
		if len(members) == 0 {
			t.Fatalf("cluster %d empty", c)
		}
		for _, p := range members {
			if seen[p] {
				t.Fatalf("point %d assigned twice", p)
			}
			seen[p] = true
			if asg.LeafOf[p] != c {
				t.Fatal("LeafOf inconsistent with Members")
			}
		}
	}
	for p, ok := range seen {
		if !ok {
			t.Fatalf("point %d unassigned", p)
		}
	}
}

func TestAssignMatchesTraining(t *testing.T) {
	data := dataset.Gaussian(150, 6, 1, xrand.New(5))
	m, asg := Build(data, Options{K: 3}, xrand.New(6))
	for p := 0; p < data.N; p++ {
		if got := m.Assign(data.Row(p)); got != asg.LeafOf[p] {
			t.Fatalf("point %d routed to %d, assigned %d", p, got, asg.LeafOf[p])
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	data := dataset.Gaussian(300, 8, 1, xrand.New(7))
	m1, _ := Build(data, Options{K: 1}, xrand.New(8))
	m8, _ := Build(data, Options{K: 8}, xrand.New(8))
	if m8.Inertia >= m1.Inertia {
		t.Fatalf("inertia did not decrease: K1=%.1f K8=%.1f", m1.Inertia, m8.Inertia)
	}
}

func TestKLargerThanN(t *testing.T) {
	data := dataset.Gaussian(3, 4, 1, xrand.New(9))
	m, asg := Build(data, Options{K: 10}, xrand.New(10))
	if m.K() != 3 {
		t.Fatalf("K clamped to %d, want 3", m.K())
	}
	if len(asg.Members) != 3 {
		t.Fatalf("members has %d clusters", len(asg.Members))
	}
}

func TestIdenticalPoints(t *testing.T) {
	rows := make([][]float32, 20)
	for i := range rows {
		rows[i] = []float32{7, 7}
	}
	data := vec.FromRows(rows)
	m, asg := Build(data, Options{K: 3}, xrand.New(11))
	total := 0
	for _, members := range asg.Members {
		total += len(members)
	}
	if total != 20 {
		t.Fatalf("points lost: %d", total)
	}
	if m.Inertia != 0 {
		t.Fatalf("inertia = %v on identical points", m.Inertia)
	}
}

func TestDeterminism(t *testing.T) {
	data := dataset.Gaussian(120, 5, 1, xrand.New(12))
	_, a1 := Build(data, Options{K: 4}, xrand.New(13))
	_, a2 := Build(data, Options{K: 4}, xrand.New(13))
	for p := range a1.LeafOf {
		if a1.LeafOf[p] != a2.LeafOf[p] {
			t.Fatal("same seed must reproduce the same clustering")
		}
	}
}
