package durable

import "bilsh/internal/metrics"

// Durability observability, registered in the process-wide registry like
// the core query-path instruments (docs/metrics.md catalogues them).
var (
	metWALAppends = metrics.Default().Counter(
		"bilsh_wal_appends_total", "Records appended to the write-ahead log.")
	metWALBytes = metrics.Default().Counter(
		"bilsh_wal_bytes_total", "Bytes appended to the write-ahead log (frames plus payload).")
	metWALSyncs = metrics.Default().Counter(
		"bilsh_wal_syncs_total", "WAL fsync batches (group commit: one sync covers every record appended since the last).")
	metCheckpoints = metrics.Default().Counter(
		"bilsh_durable_checkpoints_total", "Checkpoints written (atomic snapshot plus WAL truncation).")
	metRecoveryReplayed = metrics.Default().Counter(
		"bilsh_recovery_replayed_total", "WAL records replayed across recoveries.")
	metRecoveryTruncated = metrics.Default().Counter(
		"bilsh_recovery_truncated_bytes_total", "Torn or corrupt WAL tail bytes dropped at recovery.")
)
