package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWriteReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new contents")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "new contents" {
		t.Fatalf("read back %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestAtomicWriteFailureKeepsOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFileAtomic(path, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := AtomicWrite(path, func(f *os.File) error {
		f.Write([]byte("partial garbage")) //nolint:errcheck
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("AtomicWrite returned %v, want boom", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "precious" {
		t.Fatalf("failed write clobbered the original: %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after failure: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ckpt")
	payload := []byte("serialized index bytes")
	err := WriteCheckpoint(path, 7, func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, r, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if gen != 7 {
		t.Fatalf("gen = %d, want 7", gen)
	}
	got := make([]byte, len(payload)+10)
	n, _ := r.Read(got)
	if string(got[:n]) != string(payload) {
		t.Fatalf("payload %q, want %q", got[:n], payload)
	}
}

func TestCheckpointRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.ckpt")
	if err := WriteFileAtomic(path, []byte("not a checkpoint at all....")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("got %v, want ErrBadCheckpoint", err)
	}
	// Torn header (shorter than the fixed prefix).
	if err := os.WriteFile(path, []byte("bilsh.CKPT/1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("torn: got %v, want ErrBadCheckpoint", err)
	}
	// Missing file surfaces the os error so callers can seed fresh state.
	if _, _, err := OpenCheckpoint(filepath.Join(t.TempDir(), "absent")); !os.IsNotExist(err) {
		t.Fatalf("missing: got %v, want IsNotExist", err)
	}
}
