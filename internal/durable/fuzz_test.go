package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the replay path and checks its
// invariants: replay never panics, never reports an error for damaged
// record frames (only for a bad header), accounts for every byte
// (ValidBytes + TruncatedBytes == file size), and a reopen+append over
// the damaged log yields a clean log whose replay extends the surviving
// prefix by exactly the appended record.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed log, a truncation of it, and raw noise.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.log")
	hdr := Header{Gen: 2, BaseN: 5, Dim: 3}
	w, err := CreateWAL(seedPath, hdr, WALConfig{Fsync: FsyncNever})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.AppendInsert([]float32{float32(i), 1, 2}); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := w.AppendDelete(3); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add(seed[:walHeaderLen])
	f.Add([]byte("garbage that is not a WAL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		hdr, stats, err := ReplayWAL(path, func(Record) error { return nil })
		if err != nil {
			// Only a header problem may error; damaged records must not.
			if int64(len(data)) >= walHeaderLen && bytes.Equal(data[:walMagicLen], walMagic[:]) {
				// Magic matched; the CRC or dim field rejected it. Fine.
			}
			return
		}
		if hdr.Dim <= 0 || hdr.Dim > maxWALDim {
			t.Fatalf("accepted header with dim %d", hdr.Dim)
		}
		if stats.ValidBytes+stats.TruncatedBytes != int64(len(data)) {
			t.Fatalf("byte accounting broken: %d valid + %d truncated != %d total",
				stats.ValidBytes, stats.TruncatedBytes, len(data))
		}
		if stats.ValidBytes < walHeaderLen {
			t.Fatalf("ValidBytes %d below header length", stats.ValidBytes)
		}

		// Reopen: the torn tail is cut, appends extend the intact prefix.
		w, err := OpenWAL(path, WALConfig{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("OpenWAL after successful replay: %v", err)
		}
		if w.Header().Dim != hdr.Dim {
			t.Fatalf("OpenWAL header dim %d != replay dim %d", w.Header().Dim, hdr.Dim)
		}
		seq, err := w.AppendDelete(7)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(seq); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, stats2, err := ReplayWAL(path, nil)
		if err != nil {
			t.Fatalf("replay after reopen+append: %v", err)
		}
		if stats2.TruncatedBytes != 0 {
			t.Fatalf("reopen left %d torn bytes", stats2.TruncatedBytes)
		}
		if stats2.Records != stats.Records+1 {
			t.Fatalf("reopen+append replayed %d records, want %d", stats2.Records, stats.Records+1)
		}
	})
}
