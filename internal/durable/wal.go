package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Write-ahead log. Each overlay mutation of a durable index (insert
// vector / delete id) is appended here before the caller's write is
// acknowledged, so that acked writes survive a crash and are replayed at
// the next open.
//
// File layout:
//
//	[ 0,12)  magic "bilsh.WAL/1\0"
//	[12,16)  CRC32C over bytes [16,40), little endian
//	[16,24)  generation (pairs the log with a checkpoint), little endian
//	[24,32)  base row count N the log's ids extend, little endian
//	[32,40)  vector dimensionality, little endian
//	records…
//
// Each record is length-prefixed and CRC32C-framed:
//
//	[0,4)  payload length, little endian
//	[4,8)  CRC32C over the payload, little endian
//	[8,…)  payload: op byte, then the op body
//	       op 1 (insert): dim × float32, little endian
//	       op 2 (delete): uint64 id, little endian
//
// Replay verifies every frame and stops cleanly at the first torn or
// corrupt record: a crash mid-append legitimately leaves a partial final
// frame, and everything before it is still good. The torn tail is
// truncated away before new appends extend the log.
const (
	walMagicLen  = 12
	walHeaderLen = 40

	// maxWALRecord bounds a record payload so a corrupt length prefix
	// cannot trigger a huge allocation (the largest legitimate record is
	// one vector: 1 + 4·dim bytes, and dim is capped below).
	maxWALRecord = 1 + 4*maxWALDim

	// maxWALDim bounds the header's dimensionality field (mirrors the
	// dataset package's sanity cap on fvecs headers).
	maxWALDim = 1 << 20
)

var walMagic = [walMagicLen]byte{'b', 'i', 'l', 's', 'h', '.', 'W', 'A', 'L', '/', '1', 0}

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadWALHeader reports a missing, torn, or corrupt WAL header. A torn
// header can only be left by a crash inside CreateWAL or Reset — before
// any append on the new log could have been acknowledged — so callers
// recreate the log when they see this.
var ErrBadWALHeader = errors.New("durable: bad WAL header")

// WAL op codes.
const (
	OpInsert byte = 1
	OpDelete byte = 2
)

// Record is one decoded WAL entry.
type Record struct {
	Op     byte
	Vector []float32 // OpInsert
	ID     int       // OpDelete
}

// Header identifies the state a WAL extends.
type Header struct {
	// Gen pairs the log with a checkpoint generation; a log whose Gen is
	// older than the newest checkpoint has been fully folded into it.
	Gen uint64
	// BaseN is the base row count the log's insert ids extend.
	BaseN uint64
	// Dim is the vector dimensionality of insert records.
	Dim int
}

// FsyncPolicy selects when appended records become durable.
type FsyncPolicy int

const (
	// FsyncAlways syncs before every commit acknowledgment; concurrent
	// committers share one fsync (group commit). No acked write is ever
	// lost.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background cadence; a crash loses at most
	// the last interval of acked writes.
	FsyncInterval
	// FsyncNever flushes to the OS but never fsyncs; the kernel persists
	// pages at its own pace. A power failure loses whatever it held.
	FsyncNever
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// WALConfig configures durability behavior of an open log.
type WALConfig struct {
	Fsync FsyncPolicy
	// Interval is the background sync cadence for FsyncInterval
	// (default 100ms).
	Interval time.Duration
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Records is the number of intact records decoded.
	Records int
	// ValidBytes is the header plus every intact record.
	ValidBytes int64
	// TruncatedBytes is the torn/corrupt tail beyond the last intact
	// record (zero for a clean log).
	TruncatedBytes int64
}

// WAL is an open write-ahead log. Appends are safe for concurrent use;
// commit acknowledgment batches concurrent fsyncs (group commit).
type WAL struct {
	cfg WALConfig

	// mu serializes file writes (append frames, reset) and guards bw/hdr.
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	hdr      Header
	writeSeq uint64
	enc      []byte // payload scratch

	// Group commit: syncTo(n) returns once record n is durable; the first
	// waiter performs the fsync for everyone queued behind it.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	synced   uint64
	syncing  bool
	syncErr  error // sticky: a failed sync poisons the log

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

func encodeWALHeader(hdr Header) [walHeaderLen]byte {
	var h [walHeaderLen]byte
	copy(h[:], walMagic[:])
	binary.LittleEndian.PutUint64(h[16:], hdr.Gen)
	binary.LittleEndian.PutUint64(h[24:], hdr.BaseN)
	binary.LittleEndian.PutUint64(h[32:], uint64(hdr.Dim))
	binary.LittleEndian.PutUint32(h[12:], crc32.Checksum(h[16:], castagnoli))
	return h
}

func decodeWALHeader(h []byte) (Header, error) {
	if len(h) < walHeaderLen ||
		string(h[:walMagicLen]) != string(walMagic[:]) ||
		binary.LittleEndian.Uint32(h[12:]) != crc32.Checksum(h[16:walHeaderLen], castagnoli) {
		return Header{}, ErrBadWALHeader
	}
	hdr := Header{
		Gen:   binary.LittleEndian.Uint64(h[16:]),
		BaseN: binary.LittleEndian.Uint64(h[24:]),
	}
	dim := binary.LittleEndian.Uint64(h[32:])
	if dim == 0 || dim > maxWALDim {
		return Header{}, ErrBadWALHeader
	}
	hdr.Dim = int(dim)
	return hdr, nil
}

// ReadWALHeader reads and validates the header of the log at path.
// Missing files surface the os.Open error (check os.IsNotExist); torn or
// corrupt headers return ErrBadWALHeader.
func ReadWALHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	var h [walHeaderLen]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return Header{}, ErrBadWALHeader
	}
	return decodeWALHeader(h[:])
}

// decodeRecord validates and decodes one payload.
func decodeRecord(p []byte, dim int) (Record, bool) {
	if len(p) == 0 {
		return Record{}, false
	}
	switch p[0] {
	case OpInsert:
		if len(p) != 1+4*dim {
			return Record{}, false
		}
		v := make([]float32, dim)
		for i := range v {
			v[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[1+4*i:]))
		}
		return Record{Op: OpInsert, Vector: v}, true
	case OpDelete:
		if len(p) != 9 {
			return Record{}, false
		}
		id := binary.LittleEndian.Uint64(p[1:])
		if id > math.MaxInt64 {
			return Record{}, false
		}
		return Record{Op: OpDelete, ID: int(id)}, true
	default:
		return Record{}, false
	}
}

// scanWAL decodes records from r (positioned just past the header),
// calling apply (which may be nil) for each intact one. It stops cleanly
// at the first torn or corrupt frame and returns the byte length of the
// intact prefix (excluding the header) plus the record count. Only an
// apply error is returned as err.
func scanWAL(r io.Reader, dim int, apply func(Record) error) (valid int64, records int, err error) {
	br := bufio.NewReaderSize(r, 1<<18)
	var frame [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return valid, records, nil // clean EOF or torn frame header
		}
		ln := binary.LittleEndian.Uint32(frame[:4])
		if ln == 0 || ln > maxWALRecord {
			return valid, records, nil
		}
		if cap(payload) < int(ln) {
			payload = make([]byte, ln)
		}
		payload = payload[:ln]
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, records, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
			return valid, records, nil // bit-flip anywhere in the frame
		}
		rec, ok := decodeRecord(payload, dim)
		if !ok {
			return valid, records, nil
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				return valid, records, err
			}
		}
		valid += 8 + int64(ln)
		records++
	}
}

// ReplayWAL reads the log at path, calling apply for each intact record
// in append order. Replay stops cleanly at the first torn or corrupt
// record — the tail beyond it is reported in TruncatedBytes, not as an
// error, because a crash mid-append legitimately leaves a partial final
// frame. A nil apply just scans. An apply error aborts the replay and is
// returned as-is.
func ReplayWAL(path string, apply func(Record) error) (Header, ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, ReplayStats{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Header{}, ReplayStats{}, err
	}
	var h [walHeaderLen]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		return Header{}, ReplayStats{}, ErrBadWALHeader
	}
	hdr, err := decodeWALHeader(h[:])
	if err != nil {
		return Header{}, ReplayStats{}, err
	}
	valid, records, err := scanWAL(f, hdr.Dim, apply)
	stats := ReplayStats{
		Records:        records,
		ValidBytes:     walHeaderLen + valid,
		TruncatedBytes: st.Size() - walHeaderLen - valid,
	}
	if err != nil {
		return hdr, stats, err
	}
	metRecoveryReplayed.Add(int64(records))
	metRecoveryTruncated.Add(stats.TruncatedBytes)
	return hdr, stats, nil
}

// CreateWAL creates (or resets) the log at path with hdr and opens it for
// appending. The header is written and fsynced — along with the parent
// directory — before CreateWAL returns, so no append can be acknowledged
// against a header that might vanish.
func CreateWAL(path string, hdr Header, cfg WALConfig) (*WAL, error) {
	if hdr.Dim <= 0 || hdr.Dim > maxWALDim {
		return nil, fmt.Errorf("durable: WAL dim %d out of range", hdr.Dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := newWAL(f, hdr, cfg)
	if err := w.resetLocked(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	w.startSyncer()
	return w, nil
}

// OpenWAL opens an existing log for appending. The torn or corrupt tail,
// if any, is truncated away first so new records extend the intact
// prefix. Use ReplayWAL beforehand to apply the surviving records.
func OpenWAL(path string, cfg WALConfig) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	var h [walHeaderLen]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		f.Close()
		return nil, ErrBadWALHeader
	}
	hdr, err := decodeWALHeader(h[:])
	if err != nil {
		f.Close()
		return nil, err
	}
	valid, _, _ := scanWAL(f, hdr.Dim, nil)
	end := walHeaderLen + valid
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := newWAL(f, hdr, cfg)
	w.startSyncer()
	return w, nil
}

func newWAL(f *os.File, hdr Header, cfg WALConfig) *WAL {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	w := &WAL{cfg: cfg, f: f, bw: bufio.NewWriterSize(f, 1<<16), hdr: hdr}
	w.syncCond = sync.NewCond(&w.syncMu)
	return w
}

func (w *WAL) startSyncer() {
	if w.cfg.Fsync != FsyncInterval {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Sync() //nolint:errcheck // sticky error resurfaces on commits
			}
		}
	}()
}

// Header returns the header the log was opened or created with.
func (w *WAL) Header() Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hdr
}

// AppendInsert appends an insert record and returns its sequence number
// for Commit. The record is buffered; it is durable only after a Commit
// (FsyncAlways) or the next sync.
func (w *WAL) AppendInsert(v []float32) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(v) != w.hdr.Dim {
		return 0, fmt.Errorf("durable: insert dim %d, WAL dim %d", len(v), w.hdr.Dim)
	}
	w.enc = w.enc[:0]
	w.enc = append(w.enc, OpInsert)
	for _, x := range v {
		w.enc = binary.LittleEndian.AppendUint32(w.enc, math.Float32bits(x))
	}
	return w.appendLocked(w.enc)
}

// AppendDelete appends a delete record; see AppendInsert.
func (w *WAL) AppendDelete(id int) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id < 0 {
		return 0, fmt.Errorf("durable: delete id %d negative", id)
	}
	w.enc = w.enc[:0]
	w.enc = append(w.enc, OpDelete)
	w.enc = binary.LittleEndian.AppendUint64(w.enc, uint64(id))
	return w.appendLocked(w.enc)
}

func (w *WAL) appendLocked(payload []byte) (uint64, error) {
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(frame[:]); err != nil {
		return 0, err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return 0, err
	}
	w.writeSeq++
	metWALAppends.Inc()
	metWALBytes.Add(int64(8 + len(payload)))
	return w.writeSeq, nil
}

// Commit makes record seq durable per the configured policy: FsyncAlways
// blocks until an fsync covers it (sharing the fsync with concurrent
// committers), FsyncInterval and FsyncNever flush to the OS and return.
func (w *WAL) Commit(seq uint64) error {
	switch w.cfg.Fsync {
	case FsyncAlways:
		return w.syncTo(seq)
	default:
		w.mu.Lock()
		err := w.bw.Flush()
		w.mu.Unlock()
		return err
	}
}

// Sync forces an fsync covering everything appended so far.
func (w *WAL) Sync() error {
	w.mu.Lock()
	seq := w.writeSeq
	w.mu.Unlock()
	return w.syncTo(seq)
}

// syncTo blocks until record seq is durable. The first waiter becomes
// the syncer: it flushes and fsyncs once for every record written so
// far, covering everyone queued behind it (group commit).
func (w *WAL) syncTo(seq uint64) error {
	w.syncMu.Lock()
	for w.synced < seq && w.syncErr == nil {
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()

		w.mu.Lock()
		target := w.writeSeq
		err := w.bw.Flush()
		f := w.f
		w.mu.Unlock()
		if err == nil {
			err = f.Sync()
			metWALSyncs.Inc()
		}

		w.syncMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
		} else if target > w.synced {
			w.synced = target
		}
		w.syncCond.Broadcast()
	}
	err := w.syncErr
	w.syncMu.Unlock()
	return err
}

// Reset truncates the log to an empty one with a fresh header — the WAL
// half of a checkpoint. Buffered-but-unsynced records are discarded (the
// caller has just captured the full state they describe). The new header
// is fsynced before Reset returns.
func (w *WAL) Reset(hdr Header) error {
	if hdr.Dim <= 0 || hdr.Dim > maxWALDim {
		return fmt.Errorf("durable: WAL dim %d out of range", hdr.Dim)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.resetLocked(hdr); err != nil {
		return err
	}
	// Everything in the (now empty) log is durable; release any waiters.
	w.syncMu.Lock()
	if w.writeSeq > w.synced {
		w.synced = w.writeSeq
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	return nil
}

func (w *WAL) resetLocked(hdr Header) error {
	w.bw.Reset(io.Discard) // drop buffered frames
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	h := encodeWALHeader(hdr)
	if _, err := w.f.Write(h[:]); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.hdr = hdr
	w.bw.Reset(w.f)
	return nil
}

// Close flushes, fsyncs, and closes the log.
func (w *WAL) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
