// Package durable_test holds the out-of-process crash-recovery harness.
// It lives in an external test package because it exercises the full
// stack — internal/core (which imports internal/durable) driven over HTTP
// through a real `bilsh serve -data-dir` child process — and an in-package
// test would create an import cycle.
package durable_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// harness state shared by the writer goroutines.
type crashLedger struct {
	mu sync.Mutex
	// ackedInserts maps acked id -> the exact vector it stored.
	ackedInserts map[int][]float32
	// uncertain holds vectors whose insert got no response: the crash may
	// or may not have persisted them (at-least-once ambiguity is allowed;
	// silent loss of an ACK is not).
	uncertain []([]float32)
	// ackedDeletes holds base ids whose delete was acknowledged.
	ackedDeletes []int
	// uncertainDeletes holds base ids whose delete got no response.
	uncertainDeletes []int
}

func (l *crashLedger) ackedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ackedInserts) + len(l.ackedDeletes)
}

var addrRe = regexp.MustCompile(`on http://([^ ]+) `)
var recoveryRe = regexp.MustCompile(`gen (\d+) from (\S+), replayed (\d+) WAL records`)

// startServe launches `bilsh serve` and returns the process, its base
// URL, and the recovery line (empty on first boot without a data dir
// read... always printed with -data-dir).
func startServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"serve"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	var recovery string
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("serve exited before announcing its address (recovery=%q)", recovery)
			}
			if recoveryRe.MatchString(line) {
				recovery = line
			}
			if m := addrRe.FindStringSubmatch(line); m != nil {
				// Keep draining stdout so the child never blocks on a full pipe.
				go func() {
					for range lines {
					}
				}()
				return cmd, "http://" + m[1], recovery
			}
		case <-deadline:
			t.Fatal("timed out waiting for serve to announce its address")
		}
	}
}

func post(url string, body, out interface{}) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// TestCrashRecoveryUnderConcurrentWrites is the end-to-end durability
// guarantee: a `bilsh serve -data-dir -fsync=always` child is SIGKILLed
// mid-write-storm, restarted on the same directory, and every
// acknowledged write must be there — acked inserts queryable at distance
// zero, acked deletes gone. Writes that never got a response may have
// landed or not (both are correct); nothing else may change.
func TestCrashRecoveryUnderConcurrentWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness builds and kills a real server; skipped in -short")
	}
	work := t.TempDir()
	bin := filepath.Join(work, "bilsh")
	build := exec.Command("go", "build", "-o", bin, "bilsh/cmd/bilsh")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building bilsh: %v", err)
	}

	// Seed index.
	spec := dataset.ClusteredSpec{N: 300, D: 8, Clusters: 4, IntrinsicDim: 3,
		Aspect: 3, NoiseSigma: 0.05, Spread: 8, PowerLaw: 0.3}
	data, _, err := dataset.Clustered(spec, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Quantize=sq8 so the crash/recovery cycle also exercises the v2
	// checkpoint format's quantized row-store section end to end.
	ix, err := core.Build(data, core.Options{Partitioner: core.PartitionNone,
		Quantize: core.QuantizeSQ8,
		Params:   lshfunc.Params{M: 4, L: 4, W: 8}}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	seedPath := filepath.Join(work, "seed.bilsh")
	f, err := os.Create(seedPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(work, "data")
	cmd, url, _ := startServe(t, bin,
		"-index", seedPath, "-data-dir", dataDir, "-fsync", "always", "-addr", "127.0.0.1:0")

	// Writer storm: two insert writers with disjoint unique vectors, one
	// delete writer retiring distinct base ids. Each op is pending until
	// its response arrives; a response-less op at kill time is uncertain.
	led := &crashLedger{ackedInserts: map[int][]float32{}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := vec.Clone(data.Row((w*131 + i) % data.N))
				v[0] += float32(w+1) + float32(i)*1e-3 // unique per (writer, seq)
				var resp struct {
					ID int `json:"id"`
				}
				err := post(url+"/insert", map[string]interface{}{"vector": v}, &resp)
				led.mu.Lock()
				if err == nil {
					led.ackedInserts[resp.ID] = v
				} else {
					led.uncertain = append(led.uncertain, v)
				}
				led.mu.Unlock()
				if err != nil {
					return // connection died: the kill landed
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := 0; id < data.N; id++ {
			select {
			case <-stop:
				return
			default:
			}
			var resp struct {
				Deleted bool `json:"deleted"`
			}
			err := post(url+"/delete", map[string]interface{}{"id": id}, &resp)
			led.mu.Lock()
			if err == nil && resp.Deleted {
				led.ackedDeletes = append(led.ackedDeletes, id)
			} else if err != nil {
				led.uncertainDeletes = append(led.uncertainDeletes, id)
			}
			led.mu.Unlock()
			if err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond) // keep some base rows alive
		}
	}()

	// Let the storm build up real WAL volume, then kill without warning.
	for deadline := time.Now().Add(15 * time.Second); led.ackedCount() < 150; {
		if time.Now().After(deadline) {
			t.Fatal("writers too slow: fewer than 150 acked ops in 15s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no flush, no defer
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck
	close(stop)
	wg.Wait()

	led.mu.Lock()
	nAcked := len(led.ackedInserts)
	nDeleted := len(led.ackedDeletes)
	led.mu.Unlock()
	t.Logf("killed server with %d acked inserts, %d acked deletes, %d+%d uncertain",
		nAcked, nDeleted, len(led.uncertain), len(led.uncertainDeletes))

	// Restart on the same directory.
	_, url2, recovery := startServe(t, bin,
		"-index", seedPath, "-data-dir", dataDir, "-fsync", "always", "-addr", "127.0.0.1:0")
	m := recoveryRe.FindStringSubmatch(recovery)
	if m == nil {
		t.Fatalf("restart printed no recovery line")
	}
	var replayed int
	fmt.Sscanf(m[3], "%d", &replayed) //nolint:errcheck
	minOps := nAcked + nDeleted
	maxOps := minOps + len(led.uncertain) + len(led.uncertainDeletes)
	if replayed < minOps || replayed > maxOps {
		t.Fatalf("replayed %d records, want within [%d, %d] (acked .. acked+uncertain)",
			replayed, minOps, maxOps)
	}

	// Every acked insert must be queryable at distance zero under its own
	// exact vector (FsyncAlways: the ACK promised durability).
	uncertainDel := map[int]bool{}
	for _, id := range led.uncertainDeletes {
		uncertainDel[id] = true
	}
	for id, v := range led.ackedInserts {
		var resp struct {
			Neighbors []struct {
				ID   int     `json:"id"`
				Dist float64 `json:"dist"`
			} `json:"neighbors"`
		}
		if err := post(url2+"/query", map[string]interface{}{"vector": v, "k": 3}, &resp); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, nb := range resp.Neighbors {
			if nb.ID == id && nb.Dist == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("acked insert id %d lost after crash (neighbors: %+v)", id, resp.Neighbors)
		}
	}
	// Every acked delete must stay deleted: a fresh delete of the same id
	// reports false (the id is no longer live).
	for _, id := range led.ackedDeletes {
		var resp struct {
			Deleted bool `json:"deleted"`
		}
		if err := post(url2+"/delete", map[string]interface{}{"id": id}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Deleted {
			t.Fatalf("acked delete of id %d was lost: the id was live again after recovery", id)
		}
	}

	// Live count bookkeeping: base - deletes + inserts, with the
	// uncertain window as the only allowed slack.
	var info struct {
		Live int `json:"Live"`
	}
	resp, err := http.Get(url2 + "/info")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The re-deletes above removed the uncertainly-deleted-but-live ids'
	// ambiguity? No — they deleted acked ids that were already dead
	// (no-ops). Live = N + inserts(acked+some uncertain) - deletes.
	minLive := data.N + nAcked - nDeleted - len(led.uncertainDeletes)
	maxLive := data.N + nAcked + len(led.uncertain) - nDeleted
	if info.Live < minLive || info.Live > maxLive {
		t.Fatalf("live count %d outside [%d, %d]", info.Live, minLive, maxLive)
	}
}

// TestServeRestartWithoutCrash is the harness's control run: a clean
// SIGTERM shutdown followed by a restart must also preserve everything
// (and exercises the drain path rather than recovery-from-kill).
func TestServeRestartWithoutCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server; skipped in -short")
	}
	work := t.TempDir()
	bin := filepath.Join(work, "bilsh")
	build := exec.Command("go", "build", "-o", bin, "bilsh/cmd/bilsh")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building bilsh: %v", err)
	}
	spec := dataset.ClusteredSpec{N: 120, D: 6, Clusters: 3, IntrinsicDim: 3,
		Aspect: 2, NoiseSigma: 0.05, Spread: 6, PowerLaw: 0.3}
	data, _, err := dataset.Clustered(spec, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(data, core.Options{Partitioner: core.PartitionNone,
		Params: lshfunc.Params{M: 4, L: 2, W: 8}}, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	seedPath := filepath.Join(work, "seed.bilsh")
	f, err := os.Create(seedPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dataDir := filepath.Join(work, "data")
	cmd, url, _ := startServe(t, bin,
		"-index", seedPath, "-data-dir", dataDir, "-addr", "127.0.0.1:0")
	v := vec.Clone(data.Row(0))
	v[0] += 0.125
	var ins struct {
		ID int `json:"id"`
	}
	if err := post(url+"/insert", map[string]interface{}{"vector": v}, &ins); err != nil {
		t.Fatal(err)
	}
	// Checkpoint over HTTP, then clean shutdown.
	if err := post(url+"/save", map[string]interface{}{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck

	_, url2, recovery := startServe(t, bin, "-data-dir", dataDir, "-addr", "127.0.0.1:0")
	if m := recoveryRe.FindStringSubmatch(recovery); m == nil || m[2] != "checkpoint" {
		t.Fatalf("restart did not recover from the checkpoint: %q", recovery)
	}
	var resp struct {
		Neighbors []struct {
			ID   int     `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
	}
	if err := post(url2+"/query", map[string]interface{}{"vector": v, "k": 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) == 0 || resp.Neighbors[0].Dist != 0 {
		t.Fatalf("insert lost across clean restart: %+v", resp.Neighbors)
	}
}
