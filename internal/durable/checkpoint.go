package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Checkpoint files wrap an opaque payload (the serialized index) with a
// generation number so recovery can tell whether the WAL next to the
// checkpoint extends it or predates it (a crash between the checkpoint
// rename and the WAL reset leaves a stale, already-folded log behind).
//
// Layout:
//
//	[ 0,16)  magic "bilsh.CKPT/1" zero-padded
//	[16,24)  generation, little endian
//	[24,28)  CRC32C over bytes [0,24), little endian
//	[28, …)  payload
const ckptHeaderLen = 28

// CheckpointHeaderLen is the byte offset where the payload starts —
// exported so payload formats that embed absolute offsets (the paged
// index layout) know their base within the checkpoint file.
const CheckpointHeaderLen = ckptHeaderLen

var ckptMagic = [16]byte{'b', 'i', 'l', 's', 'h', '.', 'C', 'K', 'P', 'T', '/', '1'}

// ErrBadCheckpoint reports a checkpoint whose header is torn or corrupt.
var ErrBadCheckpoint = errors.New("durable: bad checkpoint header")

// WriteCheckpoint atomically replaces the checkpoint at path: the header
// and payload stream to path+".tmp", which is fsynced and renamed over
// path, and the directory is synced (see AtomicWrite). Until the rename
// lands, the previous checkpoint remains intact.
func WriteCheckpoint(path string, gen uint64, write func(io.Writer) error) error {
	err := AtomicWrite(path, func(f *os.File) error {
		var h [ckptHeaderLen]byte
		copy(h[:], ckptMagic[:])
		binary.LittleEndian.PutUint64(h[16:], gen)
		binary.LittleEndian.PutUint32(h[24:], crc32.Checksum(h[:24], castagnoli))
		if _, err := f.Write(h[:]); err != nil {
			return err
		}
		return write(f)
	})
	if err != nil {
		return err
	}
	metCheckpoints.Inc()
	return nil
}

// CheckpointFileName is the checkpoint's name inside a data directory —
// shared by the durable index (which writes it) and the shard server's
// GET /checkpoint export (which ships it to replicas).
const CheckpointFileName = "index.ckpt"

// ExportCheckpoint opens the checkpoint inside data directory dir for
// shipping to a replica: it validates the header, then returns the
// generation plus a reader positioned at byte 0 — the caller streams the
// complete file (header included), so the fetched copy drops into the
// replica's data directory unchanged and OpenDurable recovers from it.
// Missing files surface the os.Open error (check os.IsNotExist).
func ExportCheckpoint(dir string) (gen uint64, rc io.ReadCloser, size int64, err error) {
	path := filepath.Join(dir, CheckpointFileName)
	gen, rc, err = OpenCheckpoint(path)
	if err != nil {
		return 0, nil, 0, err
	}
	f := rc.(*os.File)
	st, err := f.Stat()
	if err == nil {
		_, err = f.Seek(0, io.SeekStart)
	}
	if err != nil {
		f.Close()
		return 0, nil, 0, err
	}
	return gen, f, st.Size(), nil
}

// OpenCheckpoint validates the checkpoint at path and returns its
// generation plus a reader positioned at the payload. Missing files
// surface the os.Open error (check os.IsNotExist).
func OpenCheckpoint(path string) (uint64, io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	var h [ckptHeaderLen]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		f.Close()
		return 0, nil, fmt.Errorf("%w: %s", ErrBadCheckpoint, path)
	}
	if string(h[:16]) != string(ckptMagic[:]) ||
		binary.LittleEndian.Uint32(h[24:]) != crc32.Checksum(h[:24], castagnoli) {
		f.Close()
		return 0, nil, fmt.Errorf("%w: %s", ErrBadCheckpoint, path)
	}
	return binary.LittleEndian.Uint64(h[16:]), f, nil
}
