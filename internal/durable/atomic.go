// Package durable provides the crash-safety primitives of the serving
// stack: atomic file replacement (tmp + fsync + rename + directory sync),
// a length-prefixed, CRC32C-framed write-ahead log with group-commit
// fsync batching, and generation-stamped checkpoint files.
//
// internal/core builds its durable dynamic index (core.OpenDurable) on
// top of these; the atomic-write helper is also what every other writer
// of user-visible files (fvecs datasets, disk-index layouts, oracle
// caches) routes through, so that a crash mid-write can never corrupt an
// existing file in place. docs/durability.md describes the formats and
// the recovery guarantees.
package durable

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
)

// AtomicWrite replaces path atomically: the payload is streamed by write
// into path+".tmp", fsynced, closed, renamed over path, and the parent
// directory synced. A crash at any point leaves either the old file or
// the complete new one — never a torn mix. The temp file is removed on
// every failure path.
//
// The callback receives the open *os.File so writers that need seeking
// (e.g. back-patched headers) work unchanged. Concurrent AtomicWrite
// calls on the same path clobber each other's temp file; callers that
// need mutual exclusion must provide their own.
func AtomicWrite(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// WriteFileAtomic is AtomicWrite for an in-memory payload.
func WriteFileAtomic(path string, data []byte) error {
	return AtomicWrite(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// SyncDir fsyncs a directory so a preceding rename in it is durable.
// Filesystems that do not support directory fsync (EINVAL/ENOTSUP) are
// treated as success: on those the rename is as durable as it gets.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}
