package durable

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func testHeader() Header { return Header{Gen: 3, BaseN: 100, Dim: 4} }

// buildWAL writes a log with the given records and returns its path.
func buildWAL(t *testing.T, hdr Header, recs []Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, hdr, WALConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		var seq uint64
		switch r.Op {
		case OpInsert:
			seq, err = w.AppendInsert(r.Vector)
		case OpDelete:
			seq, err = w.AppendDelete(r.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleRecords() []Record {
	return []Record{
		{Op: OpInsert, Vector: []float32{1, 2, 3, 4}},
		{Op: OpInsert, Vector: []float32{-1, 0.5, math.MaxFloat32, -0}},
		{Op: OpDelete, ID: 17},
		{Op: OpInsert, Vector: []float32{9, 9, 9, 9}},
		{Op: OpDelete, ID: 0},
	}
}

func replayAll(t *testing.T, path string) (Header, ReplayStats, []Record) {
	t.Helper()
	var got []Record
	hdr, stats, err := ReplayWAL(path, func(r Record) error {
		cp := r
		cp.Vector = append([]float32(nil), r.Vector...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	return hdr, stats, got
}

func TestWALRoundTrip(t *testing.T) {
	recs := sampleRecords()
	path := buildWAL(t, testHeader(), recs)
	hdr, stats, got := replayAll(t, path)
	if hdr != testHeader() {
		t.Fatalf("header %+v, want %+v", hdr, testHeader())
	}
	if stats.Records != len(recs) || stats.TruncatedBytes != 0 {
		t.Fatalf("stats %+v, want %d records and no truncation", stats, len(recs))
	}
	fi, _ := os.Stat(path)
	if stats.ValidBytes != fi.Size() {
		t.Fatalf("ValidBytes %d != file size %d", stats.ValidBytes, fi.Size())
	}
	for i, r := range recs {
		if got[i].Op != r.Op || got[i].ID != r.ID {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], r)
		}
		for j := range r.Vector {
			if got[i].Vector[j] != r.Vector[j] {
				t.Fatalf("record %d vector[%d]: got %v want %v", i, j, got[i].Vector[j], r.Vector[j])
			}
		}
	}
}

// TestWALTornAndCorruptTails is the table-driven heart of the recovery
// contract: any damage confined to the tail loses only the damaged
// records, and replay stops cleanly (no error) at the first bad frame.
func TestWALTornAndCorruptTails(t *testing.T) {
	recs := sampleRecords()
	cleanPath := buildWAL(t, testHeader(), recs)
	clean, err := os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	// Frame offsets: header, then per-record 8-byte frame + payload.
	frameStart := make([]int, len(recs)+1)
	off := walHeaderLen
	for i := range recs {
		frameStart[i] = off
		ln := int(binary.LittleEndian.Uint32(clean[off:]))
		off += 8 + ln
	}
	frameStart[len(recs)] = off

	cases := []struct {
		name        string
		mutate      func(b []byte) []byte
		wantRecords int
		wantTrunc   bool // some tail bytes dropped
	}{
		{"clean", func(b []byte) []byte { return b }, len(recs), false},
		{"empty log", func(b []byte) []byte { return b[:walHeaderLen] }, 0, false},
		{"torn frame header", func(b []byte) []byte { return b[:frameStart[4]+3] }, 4, true},
		{"torn payload", func(b []byte) []byte { return b[:frameStart[2]+8+2] }, 2, true},
		{"payload bit flip", func(b []byte) []byte {
			b[frameStart[1]+8+5] ^= 0x40
			return b
		}, 1, true},
		{"crc bit flip", func(b []byte) []byte {
			b[frameStart[3]+4] ^= 0x01
			return b
		}, 3, true},
		{"length zeroed", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[frameStart[0]:], 0)
			return b
		}, 0, true},
		{"length huge", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[frameStart[2]:], 1<<30)
			return b
		}, 2, true},
		{"garbage appended", func(b []byte) []byte {
			return append(b, 0xde, 0xad, 0xbe)
		}, len(recs), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), clean...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, stats, got := replayAll(t, path)
			if stats.Records != tc.wantRecords || len(got) != tc.wantRecords {
				t.Fatalf("replayed %d records (stats %+v), want %d", len(got), stats, tc.wantRecords)
			}
			if (stats.TruncatedBytes > 0) != tc.wantTrunc {
				t.Fatalf("TruncatedBytes = %d, want truncation=%v", stats.TruncatedBytes, tc.wantTrunc)
			}
			// The surviving prefix must replay verbatim.
			for i := 0; i < tc.wantRecords; i++ {
				if got[i].Op != recs[i].Op || got[i].ID != recs[i].ID {
					t.Fatalf("record %d diverged after damage: %+v want %+v", i, got[i], recs[i])
				}
			}

			// Reopening truncates the tail and new appends must land after
			// the intact prefix.
			w, err := OpenWAL(path, WALConfig{Fsync: FsyncAlways})
			if err != nil {
				t.Fatalf("OpenWAL: %v", err)
			}
			seq, err := w.AppendDelete(42)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(seq); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			_, stats2, got2 := replayAll(t, path)
			if stats2.Records != tc.wantRecords+1 || stats2.TruncatedBytes != 0 {
				t.Fatalf("after reopen+append: stats %+v, want %d records clean", stats2, tc.wantRecords+1)
			}
			last := got2[len(got2)-1]
			if last.Op != OpDelete || last.ID != 42 {
				t.Fatalf("appended record read back as %+v", last)
			}
		})
	}
}

func TestWALHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")

	// Missing file: os error, not ErrBadWALHeader.
	if _, err := ReadWALHeader(path); !os.IsNotExist(err) {
		t.Fatalf("missing file: got %v, want IsNotExist", err)
	}

	// Short / torn header.
	if err := os.WriteFile(path, []byte("bilsh.WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWALHeader(path); !errors.Is(err, ErrBadWALHeader) {
		t.Fatalf("torn header: got %v, want ErrBadWALHeader", err)
	}

	// Corrupt header CRC.
	good := buildWAL(t, testHeader(), nil)
	b, _ := os.ReadFile(good)
	b[20] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWALHeader(path); !errors.Is(err, ErrBadWALHeader) {
		t.Fatalf("corrupt header: got %v, want ErrBadWALHeader", err)
	}
	if _, err := OpenWAL(path, WALConfig{}); !errors.Is(err, ErrBadWALHeader) {
		t.Fatalf("OpenWAL corrupt header: got %v, want ErrBadWALHeader", err)
	}
	if _, _, err := ReplayWAL(path, nil); !errors.Is(err, ErrBadWALHeader) {
		t.Fatalf("ReplayWAL corrupt header: got %v, want ErrBadWALHeader", err)
	}

	// Dim guards.
	if _, err := CreateWAL(path, Header{Gen: 1, Dim: 0}, WALConfig{}); err == nil {
		t.Fatal("CreateWAL accepted dim 0")
	}
	if _, err := CreateWAL(path, Header{Gen: 1, Dim: maxWALDim + 1}, WALConfig{}); err == nil {
		t.Fatal("CreateWAL accepted oversized dim")
	}
}

func TestWALReset(t *testing.T) {
	path := buildWAL(t, testHeader(), sampleRecords())
	w, err := OpenWAL(path, WALConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	next := Header{Gen: 4, BaseN: 103, Dim: 4}
	if err := w.Reset(next); err != nil {
		t.Fatal(err)
	}
	// Appends after the reset belong to the new generation.
	seq, err := w.AppendDelete(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, stats, got := replayAll(t, path)
	if hdr != next {
		t.Fatalf("header after reset %+v, want %+v", hdr, next)
	}
	if stats.Records != 1 || got[0].ID != 5 {
		t.Fatalf("after reset replay %+v / %+v, want exactly the post-reset delete", stats, got)
	}
}

func TestWALRejectsDimMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, testHeader(), WALConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.AppendInsert([]float32{1, 2}); err == nil {
		t.Fatal("AppendInsert accepted wrong dimensionality")
	}
	if _, err := w.AppendDelete(-1); err == nil {
		t.Fatal("AppendDelete accepted a negative id")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got.String())
		}
	}
}
