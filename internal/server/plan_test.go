package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bilsh/internal/core"
)

// TestQueryStatsOptIn pins the ?stats=1 contract: stats appear only when
// asked for, and report the resolved budgets.
func TestQueryStatsOptIn(t *testing.T) {
	srv, data := testServer(t, false)

	var plain queryResponse
	if status := postJSON(t, srv.URL+"/query", queryRequest{Vector: data.Row(7), K: 3}, &plain); status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	if plain.Stats != nil {
		t.Fatalf("stats attached without ?stats=1: %+v", plain.Stats)
	}

	var out queryResponse
	if status := postJSON(t, srv.URL+"/query?stats=1", queryRequest{Vector: data.Row(7), K: 3}, &out); status != http.StatusOK {
		t.Fatalf("query?stats=1 status = %d", status)
	}
	if out.Stats == nil {
		t.Fatal("?stats=1 returned no stats")
	}
	// The test index has L=4; the default plan probes everything.
	if out.Stats.ResolvedTables != 4 || out.Stats.TablesProbed != 4 {
		t.Fatalf("stats = %+v, want resolved_tables=4, tables_probed=4", out.Stats)
	}
	if out.Stats.TerminatedEarly {
		t.Fatal("default plan terminated early")
	}

	var batch batchResponse
	req := batchRequest{Vectors: [][]float32{data.Row(1), data.Row(2)}, K: 3}
	if status := postJSON(t, srv.URL+"/batch?stats=1", req, &batch); status != http.StatusOK {
		t.Fatalf("batch?stats=1 status = %d", status)
	}
	for i, r := range batch.Results {
		if r.Stats == nil {
			t.Fatalf("batch result %d missing stats", i)
		}
	}
}

// TestQueryPlanParams pins plan overrides riding the body and the URL,
// with the URL winning.
func TestQueryPlanParams(t *testing.T) {
	srv, data := testServer(t, false)

	// Body override: probe a single table.
	body := map[string]interface{}{"vector": data.Row(7), "k": 3, "tables": 1}
	var out queryResponse
	if status := postJSON(t, srv.URL+"/query?stats=1", body, &out); status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	if out.Stats.ResolvedTables != 1 {
		t.Fatalf("body tables=1: resolved %d tables", out.Stats.ResolvedTables)
	}

	// URL beats body.
	if status := postJSON(t, srv.URL+"/query?stats=1&tables=2", body, &out); status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	if out.Stats.ResolvedTables != 2 {
		t.Fatalf("url tables=2 over body tables=1: resolved %d tables", out.Stats.ResolvedTables)
	}
}

// TestQueryPlanValidation pins the centralized 400s: garbage or
// out-of-range k and plan parameters draw structured errors.
func TestQueryPlanValidation(t *testing.T) {
	srv, data := testServer(t, false)
	cases := []struct {
		name string
		url  string
		body interface{}
		want string
	}{
		{"negative k", "/query", queryRequest{Vector: data.Row(0), K: -2}, "k -2"},
		{"huge k", "/query", queryRequest{Vector: data.Row(0), K: 5000}, "exceeds maximum"},
		{"recall out of range", "/query?recall=2", queryRequest{Vector: data.Row(0), K: 3}, "recall 2 outside"},
		{"garbage probes", "/query?probes=abc", queryRequest{Vector: data.Row(0), K: 3}, "probes"},
		{"negative tables body", "/query", map[string]interface{}{"vector": data.Row(0), "k": 3, "tables": -1}, "tables -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := json.Marshal(tc.body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(srv.URL+tc.url, "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("400 body not JSON: %v", err)
			}
			if !bytes.Contains([]byte(body.Error), []byte(tc.want)) {
				t.Fatalf("error = %q, want mention of %q", body.Error, tc.want)
			}
		})
	}
}

// TestDefaultPlanApplied pins the adaptive default: a plan published with
// SetDefaultPlan governs requests without overrides, request fields beat
// it, and the per-request k is never overridden by the plan.
func TestDefaultPlanApplied(t *testing.T) {
	ix, data := testIndexData(t)
	api := New(ix, false)
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)

	api.SetDefaultPlan(core.Plan{K: 999, Tables: 1})
	var out queryResponse
	if status := postJSON(t, srv.URL+"/query?stats=1", queryRequest{Vector: data.Row(7), K: 3}, &out); status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	if out.Stats.ResolvedTables != 1 {
		t.Fatalf("default plan Tables=1: resolved %d tables", out.Stats.ResolvedTables)
	}
	if len(out.Neighbors) > 3 {
		t.Fatalf("default plan K leaked into the request: %d neighbors", len(out.Neighbors))
	}

	// Request override wins over the default plan.
	if status := postJSON(t, srv.URL+"/query?stats=1&tables=4", queryRequest{Vector: data.Row(7), K: 3}, &out); status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	if out.Stats.ResolvedTables != 4 {
		t.Fatalf("request tables=4 over default Tables=1: resolved %d", out.Stats.ResolvedTables)
	}
}

// TestAdaptiveRetuneRace stress-tests online re-tuning racing live
// queries: StartAdaptive republishes the default plan at a pathological
// cadence while many goroutines query through it. Run under -race this
// pins the atomic-plan publication; it also asserts the loop actually
// converged on a recommendation.
func TestAdaptiveRetuneRace(t *testing.T) {
	ix, data := testIndexData(t)
	api := New(ix, false)
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	api.StartAdaptive(ctx, AdaptiveConfig{
		TargetRecall: 0.9,
		Interval:     time.Millisecond,
		MinSamples:   1,
	})

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var out queryResponse
				status := postJSON(t, srv.URL+"/query?stats=1", queryRequest{Vector: data.Row((w*perWorker + i) % data.N), K: 3}, &out)
				if status != http.StatusOK {
					errs <- fmt.Errorf("worker %d query %d: status %d", w, i, status)
					return
				}
				if out.Stats == nil {
					errs <- fmt.Errorf("worker %d query %d: no stats", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// With MinSamples=1 and 400 queries over many 1ms windows, the loop
	// must have published a recommendation by now; poll briefly for the
	// last tick.
	deadline := time.Now().Add(5 * time.Second)
	for api.DefaultPlan().MaxCandidates == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	dp := api.DefaultPlan()
	if dp.MaxCandidates == 0 {
		t.Fatal("online tuner never published a recommendation")
	}
	if dp.TargetRecall != 0.9 {
		t.Fatalf("published plan = %+v, want TargetRecall 0.9", dp)
	}

	// Queries keep answering under the re-tuned plan.
	var out queryResponse
	if status := postJSON(t, srv.URL+"/query?stats=1", queryRequest{Vector: data.Row(7), K: 3}, &out); status != http.StatusOK {
		t.Fatalf("post-retune query status = %d", status)
	}
}
