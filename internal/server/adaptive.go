package server

import (
	"context"
	"log"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/httpx"
	"bilsh/internal/metrics"
	"bilsh/internal/tuner"
)

// The adaptive side of the server: the default execution plan applied to
// requests that carry no overrides, and the online re-tuning loop that
// republishes it from observed traffic. See docs/adaptive.md.

// DefaultPlan returns the server's current default plan (zero value when
// none was ever set: the index's built budgets).
func (s *Server) DefaultPlan() core.Plan {
	if dp := s.defaultPlan.Load(); dp != nil {
		return *dp
	}
	return core.Plan{}
}

// SetDefaultPlan atomically replaces the default plan applied to requests
// without their own overrides. The plan's K is ignored — per-request k
// always wins. Safe to call while queries are in flight.
func (s *Server) SetDefaultPlan(p core.Plan) {
	p.K = 0
	s.defaultPlan.Store(&p)
}

// planFor merges one request's wire plan over the server default: any
// field the request sets wins, anything it leaves zero falls through to
// the default plan, and what is still zero after that resolves to the
// index's built budgets inside core.
func (s *Server) planFor(wp httpx.QueryPlan, k int) core.Plan {
	p := s.DefaultPlan()
	p.K = k
	if wp.TargetRecall > 0 {
		p.TargetRecall = wp.TargetRecall
	}
	if wp.Probes > 0 {
		p.Probes = wp.Probes
	}
	if wp.Tables > 0 {
		p.Tables = wp.Tables
	}
	if wp.HierMinCandidates > 0 {
		p.HierMinCandidates = wp.HierMinCandidates
	}
	if wp.RerankFactor > 0 {
		p.RerankFactor = wp.RerankFactor
	}
	if wp.StableProbes > 0 {
		p.StableProbes = wp.StableProbes
	}
	if wp.MaxCandidates > 0 {
		p.MaxCandidates = wp.MaxCandidates
	}
	return p
}

// AdaptiveConfig configures the server's online re-tuning loop.
type AdaptiveConfig struct {
	// TargetRecall is the recall SLO the re-tuned default plan aims for
	// (default 0.9).
	TargetRecall float64
	// Interval is the re-tune period (default 10s).
	Interval time.Duration
	// MinSamples gates each re-tune on a minimum number of observed
	// queries (default 64).
	MinSamples int64
	// Headroom multiplies the observed mean shortlist size into the
	// MaxCandidates early-termination cap (default 3).
	Headroom float64
	// Log, when set, logs each applied budget.
	Log *log.Logger
}

// StartAdaptive launches the online tuning loop: a tuner.Online watching
// the live per-query candidates histogram re-tunes the default plan every
// Interval until ctx is done. The resolved budgets are published with
// SetDefaultPlan, so in-flight queries are never disturbed and per-request
// overrides always win. Returns immediately; the loop runs on its own
// goroutine.
func (s *Server) StartAdaptive(ctx context.Context, cfg AdaptiveConfig) {
	if cfg.TargetRecall <= 0 || cfg.TargetRecall >= 1 {
		cfg.TargetRecall = 0.9
	}
	opts := s.ix.Options()
	on := tuner.NewOnline(tuner.OnlineConfig{
		// Get-or-create semantics hand back the very histogram core's hot
		// path records into (same name, same bounds).
		Candidates: metrics.Default().Histogram(
			"bilsh_core_query_candidates",
			"Distinct short-list candidates per query (|A(v)|).",
			metrics.DefCountBuckets),
		TargetRecall: cfg.TargetRecall,
		BuiltRecall:  opts.TuneTargetRecall,
		Tables:       opts.Params.L,
		MinSamples:   cfg.MinSamples,
		Headroom:     cfg.Headroom,
		Interval:     cfg.Interval,
	})
	go on.Run(ctx, func(b tuner.Budget) {
		s.SetDefaultPlan(budgetPlan(b))
		if cfg.Log != nil {
			cfg.Log.Printf("adaptive: re-tuned default plan: target_recall=%.3f tables=%d max_candidates=%d (mean candidates %.1f over %d queries)",
				b.TargetRecall, b.Tables, b.MaxCandidates, b.MeanCandidates, b.Samples)
		}
	})
}

// budgetPlan maps a tuner recommendation onto a core plan. TargetRecall
// is carried too: if the index is rebuilt with different parameters, the
// plan re-resolves against the new snapshot instead of pinning a stale
// table count.
func budgetPlan(b tuner.Budget) core.Plan {
	return core.Plan{
		TargetRecall:  b.TargetRecall,
		Tables:        b.Tables,
		MaxCandidates: b.MaxCandidates,
	}
}
