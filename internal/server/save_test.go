package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"bilsh/internal/core"
	"bilsh/internal/durable"
	"bilsh/internal/vec"
)

func TestSaveNotConfigured(t *testing.T) {
	srv, _ := testServer(t, true)
	if code := postJSON(t, srv.URL+"/save", map[string]any{}, nil); code != 403 {
		t.Fatalf("POST /save without EnableSave = %d, want 403", code)
	}
}

func TestSaveDirtyIndexIs409(t *testing.T) {
	ix, data := testIndexData(t)
	out := filepath.Join(t.TempDir(), "index.bilsh")
	api := New(ix, true)
	api.EnableSave(func() error {
		return durable.AtomicWrite(out, func(f *os.File) error {
			_, err := ix.WriteTo(f)
			return err
		})
	})
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)

	// Clean index: saves fine.
	if code := postJSON(t, srv.URL+"/save", map[string]any{}, nil); code != 200 {
		t.Fatalf("clean save = %d, want 200", code)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("save produced no file: %v", err)
	}

	// Dirty index: the ErrDirtyIndex sentinel must surface as 409 (it used
	// to be a 500 because requireClean returned an untyped error).
	if code := postJSON(t, srv.URL+"/insert",
		map[string]any{"vector": vec.Clone(data.Row(0))}, nil); code != 200 {
		t.Fatalf("insert = %d", code)
	}
	var errBody map[string]string
	if code := postJSON(t, srv.URL+"/save", map[string]any{}, &errBody); code != 409 {
		t.Fatalf("dirty save = %d (%v), want 409", code, errBody)
	}

	// Compact, then save succeeds again.
	if code := postJSON(t, srv.URL+"/compact", map[string]any{}, nil); code != 200 {
		t.Fatalf("compact = %d", code)
	}
	if code := postJSON(t, srv.URL+"/save", map[string]any{}, nil); code != 200 {
		t.Fatalf("post-compact save = %d, want 200", code)
	}
}

func TestDurableServerSaveAndMutate(t *testing.T) {
	ix, data := testIndexData(t)
	dir := t.TempDir()
	d, err := core.OpenDurable(dir, core.DurableOptions{Base: ix, Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	api := New(d.Index, true)
	api.SetMutator(d)
	api.EnableSave(func() error { _, err := d.Checkpoint(); return err })
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)

	var ins struct {
		ID int `json:"id"`
	}
	if code := postJSON(t, srv.URL+"/insert",
		map[string]any{"vector": vec.Clone(data.Row(3))}, &ins); code != 200 {
		t.Fatalf("insert = %d", code)
	}
	if ins.ID != data.N {
		t.Fatalf("insert id = %d, want %d", ins.ID, data.N)
	}
	// A durable save is a checkpoint: it folds the overlay itself, so a
	// dirty index is fine here.
	if code := postJSON(t, srv.URL+"/save", map[string]any{}, nil); code != 200 {
		t.Fatalf("durable save = %d, want 200", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.ckpt")); err != nil {
		t.Fatalf("checkpoint missing after /save: %v", err)
	}
	var del struct {
		Deleted bool `json:"deleted"`
	}
	if code := postJSON(t, srv.URL+"/delete", map[string]any{"id": 1}, &del); code != 200 || !del.Deleted {
		t.Fatalf("delete = %d %+v", code, del)
	}
	var cmp struct {
		Live int `json:"live"`
	}
	if code := postJSON(t, srv.URL+"/compact", map[string]any{}, &cmp); code != 200 {
		t.Fatalf("compact = %d", code)
	}
	if cmp.Live != data.N { // +1 insert, -1 delete
		t.Fatalf("live after compact = %d, want %d", cmp.Live, data.N)
	}

	// Everything acked over HTTP must come back after a reopen.
	d.Close()
	d2, err := core.OpenDurable(dir, core.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != data.N {
		t.Fatalf("reopened Len = %d, want %d", d2.Len(), data.N)
	}
}

func TestInsertErrorStatuses(t *testing.T) {
	srv, _ := testServer(t, true)
	// Boundary validation stays 400.
	if code := postJSON(t, srv.URL+"/insert",
		map[string]any{"vector": []float32{1, 2}}, nil); code != 400 {
		t.Fatalf("wrong-dim insert = %d, want 400", code)
	}
}
