package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// IDMap translates between a shard's local row ids and cluster-global
// ids. A shard index numbers its rows 0..n-1 in its own order, but the
// cluster speaks one global id space (the monolithic index's row ids, or
// the router's allocation for overlay inserts); with an IDMap installed
// (SetIDMap) the server translates result ids on the way out and delete
// targets on the way in, so clients never see shard-local ids.
//
// `bilsh shard-split` seeds the map (one "local global" pair per line);
// the server appends a line per insert when the map was opened with
// OpenIDMap, so a restart recovers the assignments recorded before the
// crash. The append happens after the insert is acknowledged by the
// index, which means a crash between the two can leave the newest
// insert's global id unrecorded — docs/sharding.md's failure matrix
// covers the operational consequences.
type IDMap struct {
	mu  sync.RWMutex
	fwd map[int]int // local -> global
	rev map[int]int // global -> local
	max int         // largest global id seen; -1 when empty

	persist *os.File // append log, nil for in-memory maps
}

// ErrDuplicateGlobalID reports an insert that supplied a global id the
// shard already holds; the HTTP layer maps it to 409.
var ErrDuplicateGlobalID = errors.New("server: global id already mapped")

// NewIDMap builds an in-memory map from parallel local/global slices
// (tests and in-process clusters).
func NewIDMap(locals, globals []int) (*IDMap, error) {
	if len(locals) != len(globals) {
		return nil, fmt.Errorf("server: idmap got %d locals, %d globals", len(locals), len(globals))
	}
	m := emptyIDMap()
	for i := range locals {
		if err := m.record(locals[i], globals[i]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func emptyIDMap() *IDMap {
	return &IDMap{fwd: make(map[int]int), rev: make(map[int]int), max: -1}
}

// LoadIDMap reads a map file: text lines "local global", in any order.
func LoadIDMap(path string) (*IDMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m := emptyIDMap()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var local, global int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &local, &global); err != nil {
			return nil, fmt.Errorf("server: %s:%d: %v", path, line, err)
		}
		if err := m.record(local, global); err != nil {
			return nil, fmt.Errorf("server: %s:%d: %v", path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// OpenIDMap loads path (creating an empty file when missing) and keeps it
// open for appends: every Assign writes and syncs its "local global" line
// before returning, so acknowledged assignments survive restarts.
func OpenIDMap(path string) (*IDMap, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	m := emptyIDMap()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var local, global int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &local, &global); err != nil {
			f.Close()
			return nil, fmt.Errorf("server: %s:%d: %v", path, line, err)
		}
		if err := m.record(local, global); err != nil {
			f.Close()
			return nil, fmt.Errorf("server: %s:%d: %v", path, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, err
	}
	m.persist = f
	return m, nil
}

// Close releases the append log, if any.
func (m *IDMap) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.persist == nil {
		return nil
	}
	err := m.persist.Close()
	m.persist = nil
	return err
}

// record adds one pair; caller holds mu (or owns the map exclusively).
func (m *IDMap) record(local, global int) error {
	if _, dup := m.rev[global]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateGlobalID, global)
	}
	if old, dup := m.fwd[local]; dup {
		return fmt.Errorf("server: local id %d already mapped to %d", local, old)
	}
	m.fwd[local] = global
	m.rev[global] = local
	if global > m.max {
		m.max = global
	}
	return nil
}

// Global translates a local id, falling back to identity for unmapped
// ids so a partially seeded map fails loudly in equivalence checks
// rather than dropping results.
func (m *IDMap) Global(local int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if g, ok := m.fwd[local]; ok {
		return g
	}
	return local
}

// Local translates a global id; ok is false when this shard does not
// hold it.
func (m *IDMap) Local(global int) (int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	l, ok := m.rev[global]
	return l, ok
}

// MaxGlobal returns the largest global id this shard has seen (-1 when
// empty); the router initializes its id allocator from the cluster-wide
// maximum.
func (m *IDMap) MaxGlobal() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.max
}

// Len returns the number of mapped rows.
func (m *IDMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.fwd)
}

// Remap rewrites every local id through mapping (core.Index.Compact's
// old→new table; -1 = the row was deleted), keeping global ids stable
// across the compaction's local renumbering. Mappings whose global id
// was deleted are dropped. The persisted log, if any, is rewritten in
// place so a restart recovers the post-compaction state.
func (m *IDMap) Remap(mapping []int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	fwd := make(map[int]int, len(m.fwd))
	rev := make(map[int]int, len(m.fwd))
	for old, global := range m.fwd {
		if old >= len(mapping) {
			return fmt.Errorf("server: idmap remap: local id %d outside remap table (len %d)", old, len(mapping))
		}
		nu := mapping[old]
		if nu < 0 {
			continue // deleted row; its global id is gone
		}
		if prev, dup := fwd[nu]; dup {
			return fmt.Errorf("server: idmap remap: new local id %d claimed by globals %d and %d", nu, prev, global)
		}
		fwd[nu] = global
		rev[global] = nu
	}
	m.fwd, m.rev = fwd, rev
	// max is monotone: deleted global ids stay burned so the router's
	// allocator can never re-issue one.
	if m.persist != nil {
		if err := m.persist.Truncate(0); err != nil {
			return fmt.Errorf("server: idmap rewrite: %w", err)
		}
		locals := make([]int, 0, len(fwd))
		for l := range fwd {
			locals = append(locals, l)
		}
		sort.Ints(locals)
		for _, l := range locals {
			if _, err := fmt.Fprintf(m.persist, "%d %d\n", l, fwd[l]); err != nil {
				return fmt.Errorf("server: idmap rewrite: %w", err)
			}
		}
		if err := m.persist.Sync(); err != nil {
			return fmt.Errorf("server: idmap rewrite: %w", err)
		}
	}
	return nil
}

// WriteTo dumps the map in its file format (text lines "local global",
// ascending local id) — GET /idmap streams this to replicas.
func (m *IDMap) WriteTo(w io.Writer) (int64, error) {
	m.mu.RLock()
	locals := make([]int, 0, len(m.fwd))
	for l := range m.fwd {
		locals = append(locals, l)
	}
	pairs := make([][2]int, 0, len(locals))
	sort.Ints(locals)
	for _, l := range locals {
		pairs = append(pairs, [2]int{l, m.fwd[l]})
	}
	m.mu.RUnlock()
	var n int64
	for _, p := range pairs {
		c, err := fmt.Fprintf(w, "%d %d\n", p[0], p[1])
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// InsertWith runs insert and records its returned local id under global
// (or under max+1 when global is negative — the direct, router-less
// insert path), holding the map lock across both so two racing inserts
// cannot claim the same global id or interleave their append-log lines.
// A duplicate global id fails before the index is touched
// (ErrDuplicateGlobalID). It returns the global id actually assigned.
func (m *IDMap) InsertWith(global int, insert func() (int, error)) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if global < 0 {
		global = m.max + 1
	}
	if _, dup := m.rev[global]; dup {
		return 0, fmt.Errorf("%w: %d", ErrDuplicateGlobalID, global)
	}
	local, err := insert()
	if err != nil {
		return 0, err
	}
	if err := m.record(local, global); err != nil {
		// The vector is in the index but unaddressable by global id —
		// surface loudly; only a local-id collision can land here and
		// that means the map was seeded against a different index.
		return 0, err
	}
	if m.persist != nil {
		if _, err := fmt.Fprintf(m.persist, "%d %d\n", local, global); err != nil {
			return 0, fmt.Errorf("server: idmap append: %w", err)
		}
		if err := m.persist.Sync(); err != nil {
			return 0, fmt.Errorf("server: idmap sync: %w", err)
		}
	}
	return global, nil
}
