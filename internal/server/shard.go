package server

import (
	"io"
	"net/http"
	"os"
	"strconv"

	"bilsh/internal/durable"
)

// Shard-side additions for the sharded serving tier (docs/sharding.md):
// an identity endpoint the router health-checks and verifies its
// configuration against, and a checkpoint export that ships the durable
// snapshot to replicas. `bilsh shard-serve` wires both; a plain `bilsh
// serve` leaves them unconfigured (shard -1, checkpoint 403).

// SetShardID labels this server as one shard of a cluster. The id is
// reported by GET /shard/info; the router refuses to use an address
// whose reported id does not match its configuration, which turns a
// swapped-address deployment mistake into a visible health error instead
// of silently wrong results. Call before Handler.
func (s *Server) SetShardID(id int) { s.shardID = id }

// SetIDMap installs the local↔global id translation (see IDMap): query
// and batch results report global ids, and delete targets are global
// ids. Call before Handler.
func (s *Server) SetIDMap(m *IDMap) { s.idmap = m }

// EnableCheckpointFetch mounts GET /checkpoint over the durable data
// directory dir, the snapshot-shipping half of replica bring-up: the
// replica POSTs /save here and then fetches /checkpoint into its own
// data directory. Empty dir leaves the endpoint answering 403. Call
// before Handler.
func (s *Server) EnableCheckpointFetch(dir string) { s.ckptDir = dir }

// SetGeneration supplies the durable checkpoint generation for
// /shard/info (wire DurableIndex.Gen here); nil reports 0. Call before
// Handler.
func (s *Server) SetGeneration(fn func() uint64) { s.gen = fn }

// shardInfo is the GET /shard/info reply.
type shardInfo struct {
	// Shard is the configured shard id, -1 when the server is not part
	// of a cluster.
	Shard int `json:"shard"`
	// Epoch is the index snapshot epoch (monotone across publications).
	Epoch uint64 `json:"epoch"`
	// Live is the number of live (non-tombstoned) rows.
	Live int `json:"live"`
	// Dim is the vector dimensionality.
	Dim int `json:"dim"`
	// Groups is the number of level-1 partitions in this shard's own
	// index (unrelated to the cluster shard map).
	Groups int `json:"groups"`
	// MaxGlobalID is the largest global id this shard holds (-1 when
	// empty); the router seeds its id allocator from the cluster-wide
	// maximum.
	MaxGlobalID int `json:"max_global_id"`
	// Generation is the durable checkpoint generation (0 when the shard
	// is not running durably).
	Generation uint64 `json:"generation"`
	// Mutable reports whether the mutation endpoints are enabled —
	// false distinguishes a read replica from a primary.
	Mutable bool `json:"mutable"`
	// PendingInserts counts overlay rows not yet folded by a compaction.
	PendingInserts int `json:"pending_inserts"`
}

func (s *Server) handleShardInfo(w http.ResponseWriter, _ *http.Request) {
	d := s.ix.Describe()
	info := shardInfo{
		Shard:          s.shardID,
		Epoch:          d.Epoch,
		Live:           d.Live,
		Dim:            d.Dim,
		Groups:         d.Groups,
		Mutable:        s.mutable,
		PendingInserts: d.PendingInserts,
	}
	if s.idmap != nil {
		info.MaxGlobalID = s.idmap.MaxGlobal()
	} else {
		// Without a map, local ids are the global ids (dense 0..total-1).
		info.MaxGlobalID = d.N + d.PendingInserts - 1
	}
	if s.gen != nil {
		info.Generation = s.gen()
	}
	writeJSON(w, http.StatusOK, info)
}

// handleCheckpoint streams the shard's current checkpoint file — header
// included, so the bytes drop into a replica's data directory unchanged.
// 403 when the server has no durable data directory, 404 when the
// directory has no checkpoint yet (POST /save writes one).
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.ckptDir == "" {
		httpError(w, http.StatusForbidden,
			"checkpoint export is not configured (start the server with -data-dir)")
		return
	}
	gen, rc, size, err := durable.ExportCheckpoint(s.ckptDir)
	if err != nil {
		if os.IsNotExist(err) {
			httpError(w, http.StatusNotFound, "no checkpoint yet (POST /save writes one)")
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("X-Bilsh-Generation", strconv.FormatUint(gen, 10))
	io.Copy(w, rc)
}

// handleIDMap streams the shard's id map in its file format ("local
// global" lines), the second half of replica bring-up: a replica that
// fetched /checkpoint fetches /idmap into its own map file so it reports
// the same global ids as its primary. 403 when no id map is installed.
func (s *Server) handleIDMap(w http.ResponseWriter, _ *http.Request) {
	if s.idmap == nil {
		httpError(w, http.StatusForbidden, "no id map is configured on this server")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.idmap.WriteTo(w)
}
