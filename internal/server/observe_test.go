package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/lshfunc"
	"bilsh/internal/metrics"
	"bilsh/internal/xrand"
)

// testIndex builds a small index for observability tests.
func testIndex(t *testing.T) *core.Index {
	t.Helper()
	spec := dataset.ClusteredSpec{N: 300, D: 8, Clusters: 4, IntrinsicDim: 3,
		Aspect: 3, NoiseSigma: 0.05, Spread: 8, PowerLaw: 0.3, ScaleSpread: 2}
	data, _, err := dataset.Clustered(spec, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(data, core.Options{
		Partitioner: core.PartitionRPTree, Groups: 4, AutoTuneW: true,
		Params: lshfunc.Params{M: 4, L: 4, W: 2},
	}, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestMethodNotAllowed audits every endpoint: a known path with the wrong
// method must answer 405 with an Allow header naming the right method and
// a JSON error body — not fall through to 404.
func TestMethodNotAllowed(t *testing.T) {
	s := New(testIndex(t), true)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cases := []struct {
		path      string
		wrong     string
		wantAllow string
	}{
		{"/healthz", http.MethodPost, "GET"},
		{"/info", http.MethodDelete, "GET"},
		{"/metrics", http.MethodPost, "GET"},
		{"/query", http.MethodGet, "POST"},
		{"/batch", http.MethodGet, "POST"},
		{"/insert", http.MethodPut, "POST"},
		{"/delete", http.MethodGet, "POST"},
		{"/compact", http.MethodGet, "POST"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.wrong, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.wrong, tc.path, resp.StatusCode)
			continue
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, tc.wantAllow) {
			t.Errorf("%s %s Allow = %q, want it to contain %q", tc.wrong, tc.path, allow, tc.wantAllow)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s %s body = %q, want a JSON error object", tc.wrong, tc.path, body)
		}
	}
}

// TestMetricsRoundTrip drives a query through the HTTP API and asserts
// GET /metrics reflects it in both exposition formats: the JSON document
// must unmarshal, the Prometheus text must parse line by line, and both
// must show non-zero query counts and stage latency histograms.
func TestMetricsRoundTrip(t *testing.T) {
	ix := testIndex(t)
	s := New(ix, false)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/query", queryRequest{Vector: vectorFrom(ix), K: 5}, nil); code != 200 {
		t.Fatalf("/query = %d", code)
	}

	// Prometheus text form (the default).
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	values := parsePromText(t, string(promBody))
	if v := values["bilsh_core_queries_total"]; v < 1 {
		t.Errorf("bilsh_core_queries_total = %v, want >= 1", v)
	}
	if v := values[`bilsh_core_stage_seconds_count{stage="probe"}`]; v < 1 {
		t.Errorf("probe stage histogram count = %v, want >= 1", v)
	}
	if v := values[`bilsh_http_requests_total{code="200",path="/query"}`]; v < 1 {
		t.Errorf("http request counter = %v, want >= 1", v)
	}

	// JSON form via ?format=json.
	resp, err = http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var doc struct {
		Metrics []struct {
			Name  string   `json:"name"`
			Type  string   `json:"type"`
			Value *float64 `json:"value"`
			Count *int64   `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(jsonBody, &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	found := map[string]bool{}
	for _, m := range doc.Metrics {
		switch m.Name {
		case "bilsh_core_queries_total":
			if m.Type == "counter" && m.Value != nil && *m.Value >= 1 {
				found[m.Name] = true
			}
		case "bilsh_core_stage_seconds":
			if m.Type == "histogram" && m.Count != nil && *m.Count >= 1 {
				found[m.Name] = true
			}
		}
	}
	for _, name := range []string{"bilsh_core_queries_total", "bilsh_core_stage_seconds"} {
		if !found[name] {
			t.Errorf("JSON form missing live %s", name)
		}
	}

	// The Accept header selects JSON too.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept negotiation Content-Type = %q", ct)
	}
}

// TestMiddlewareCounts uses an isolated registry to assert exact
// middleware behavior: request counts by code, error counts, in-flight
// returning to zero.
func TestMiddlewareCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(testIndex(t), false)
	s.SetRegistry(reg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/query", queryRequest{Vector: vectorFrom(nil), K: 5}, nil); code != http.StatusBadRequest {
		t.Fatalf("dimension mismatch should 400, got %d", code)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := reg.Counter("bilsh_http_requests_total", "",
		metrics.L("path", "/query"), metrics.L("code", "400")).Value(); got != 1 {
		t.Errorf("requests{path=/query,code=400} = %d, want 1", got)
	}
	if got := reg.Counter("bilsh_http_errors_total", "", metrics.L("path", "/query")).Value(); got != 1 {
		t.Errorf("errors{path=/query} = %d, want 1", got)
	}
	if got := reg.Counter("bilsh_http_requests_total", "",
		metrics.L("path", "/healthz"), metrics.L("code", "200")).Value(); got != 1 {
		t.Errorf("requests{path=/healthz,code=200} = %d, want 1", got)
	}
	if got := reg.Gauge("bilsh_http_in_flight_requests", "").Value(); got != 0 {
		t.Errorf("in-flight gauge = %d, want 0 at rest", got)
	}
	if got := reg.Histogram("bilsh_http_request_seconds", "", metrics.DefLatencyBuckets,
		metrics.L("path", "/query")).Count(); got != 1 {
		t.Errorf("latency{path=/query} count = %d, want 1", got)
	}
}

func TestMetricsDisabled(t *testing.T) {
	s := New(testIndex(t), false)
	s.EnableMetrics(false)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with metrics disabled = %d, want 404", resp.StatusCode)
	}
}

func TestPprofToggle(t *testing.T) {
	// Off by default.
	s := New(testIndex(t), false)
	srv := httptest.NewServer(s.Handler())
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	// On when enabled.
	s = New(testIndex(t), false)
	s.EnablePprof(true)
	srv = httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof on: /debug/pprof/ = %d, want 200 with an index page", resp.StatusCode)
	}
}

// vectorFrom returns a zero query vector of the index's dimensionality;
// with a nil index it returns a dim-5 vector, deliberately mismatching
// the dim-8 test index to provoke a 400.
func vectorFrom(ix *core.Index) []float32 {
	if ix == nil {
		return make([]float32, 5) // wrong dimension on purpose
	}
	return make([]float32, ix.Dim())
}

// parsePromText is a strict line parser for the 0.0.4 text format,
// returning series -> value.
func parsePromText(t *testing.T, s string) map[string]float64 {
	t.Helper()
	values := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[line[:idx]] = v
	}
	return values
}
