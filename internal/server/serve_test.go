package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"bilsh/internal/core"
)

// TestNonFiniteVectorsRejected pins the boundary: non-finite components
// must never reach the index. Standard JSON cannot even express NaN/Inf,
// so clients that try send either bare NaN/Infinity tokens (invalid JSON)
// or out-of-range numbers like 1e999 (overflow float32); both must come
// back as 400, on the single and the batch endpoint. (core.CheckVector's
// own NaN/Inf branch — reachable through the Go API — is covered by the
// core package's validation tests.)
func TestNonFiniteVectorsRejected(t *testing.T) {
	srv, _ := testServer(t, false)
	bodies := []string{
		`{"vector":[NaN,0,0,0,0,0,0,0],"k":1}`,
		`{"vector":[0,0,0,Infinity,0,0,0,0],"k":1}`,
		`{"vector":[0,0,0,0,0,0,0,1e999],"k":1}`,
		`{"vector":[0,0,0,0,0,0,0,-1e999],"k":1}`,
	}
	for _, body := range bodies {
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query body %s: status = %d, want 400", body, resp.StatusCode)
		}
		batch := `{"vectors":[` + body[len(`{"vector":`):len(body)-len(`,"k":1}`)] + `],"k":1}`
		resp, err = http.Post(srv.URL+"/batch", "application/json", strings.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch body %s: status = %d, want 400", batch, resp.StatusCode)
		}
	}
}

// TestAsyncCompact exercises the 202 path: the response returns before the
// rebuild finishes, and /info eventually reports the overlay folded in.
func TestAsyncCompact(t *testing.T) {
	srv, data := testServer(t, true)
	v := append([]float32(nil), data.Row(5)...)
	v[0] += 0.001
	if status := postJSON(t, srv.URL+"/insert", map[string]interface{}{"vector": v}, nil); status != http.StatusOK {
		t.Fatalf("insert status = %d", status)
	}
	var started struct {
		Status string `json:"status"`
	}
	status := postJSON(t, srv.URL+"/compact", map[string]bool{"async": true}, &started)
	if status != http.StatusAccepted || started.Status != "started" {
		t.Fatalf("async compact = %d %+v, want 202 started", status, started)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var d core.Description
		resp, err := http.Get(srv.URL + "/info")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d.PendingInserts == 0 && d.PendingDeletes == 0 {
			if d.N != 301 {
				t.Fatalf("post-compact N = %d, want 301", d.N)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async compact never completed: %+v", d)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeGracefulShutdown starts Serve on a real listener, parks a
// request mid-body, cancels the serve context, and verifies that (a) the
// listener stops accepting new connections, (b) the in-flight request
// still completes with a full response, and (c) Serve returns nil after
// the drain.
func TestServeGracefulShutdown(t *testing.T) {
	ix, data := testIndexData(t)
	s := New(ix, false)
	s.SetDrainTimeout(5 * time.Second)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	raw, err := json.Marshal(queryRequest{Vector: data.Row(3), K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Send headers and half the body: the connection is now mid-request
	// and must be drained, not dropped, by shutdown.
	fmt.Fprintf(conn, "POST /query HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(raw))
	if _, err := conn.Write(raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server enter the request
	cancel()

	// The listener must close promptly: new connections get refused.
	refusedBy := time.Now().Add(5 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(refusedBy) {
			t.Fatal("listener still accepting connections after shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Finish the in-flight request; it must be answered in full.
	if _, err := conn.Write(raw[len(raw)/2:]); err != nil {
		t.Fatalf("writing rest of body: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", err)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Neighbors) == 0 || out.Neighbors[0].ID != 3 {
		t.Fatalf("in-flight response wrong: %d %+v", resp.StatusCode, out)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve = %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}
