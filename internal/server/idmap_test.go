package server

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestIDMapPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idmap.txt")
	m, err := OpenIDMap(path)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	insert := func() (int, error) { next++; return next - 1, nil }
	if _, err := m.InsertWith(10, insert); err != nil {
		t.Fatal(err)
	}
	if gid, err := m.InsertWith(-1, insert); err != nil || gid != 11 {
		t.Fatalf("auto assign got (%d, %v), want (11, nil)", gid, err)
	}
	// Duplicate global id fails before the index insert runs.
	before := next
	if _, err := m.InsertWith(10, insert); !errors.Is(err, ErrDuplicateGlobalID) {
		t.Fatalf("duplicate gid error %v", err)
	}
	if next != before {
		t.Fatal("insert callback ran for a duplicate global id")
	}
	m.Close()

	back, err := OpenIDMap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Len() != 2 || back.MaxGlobal() != 11 {
		t.Fatalf("reopened map: len %d max %d, want 2 and 11", back.Len(), back.MaxGlobal())
	}
	if l, ok := back.Local(10); !ok || l != 0 {
		t.Fatalf("Local(10) = (%d, %v), want (0, true)", l, ok)
	}
	if g := back.Global(1); g != 11 {
		t.Fatalf("Global(1) = %d, want 11", g)
	}

	// Remap (local 0 deleted, local 1 becomes 0) and reopen again: the
	// rewritten log must carry the post-compaction state.
	if err := back.Remap([]int{-1, 0}); err != nil {
		t.Fatal(err)
	}
	if g := back.Global(0); g != 11 {
		t.Fatalf("post-remap Global(0) = %d, want 11", g)
	}
	if _, ok := back.Local(10); ok {
		t.Fatal("deleted global id 10 still resolves")
	}
	if back.MaxGlobal() != 11 {
		t.Fatalf("max global %d after remap, want 11", back.MaxGlobal())
	}
	back.Close()

	again, err := OpenIDMap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 1 {
		t.Fatalf("re-reopened map holds %d rows, want 1", again.Len())
	}
	if l, ok := again.Local(11); !ok || l != 0 {
		t.Fatalf("re-reopened Local(11) = (%d, %v), want (0, true)", l, ok)
	}
}
