package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"bilsh/internal/core"
	"bilsh/internal/dataset"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func testIndexData(t *testing.T) (*core.Index, *vec.Matrix) {
	t.Helper()
	spec := dataset.ClusteredSpec{N: 300, D: 8, Clusters: 4, IntrinsicDim: 3,
		Aspect: 3, NoiseSigma: 0.05, Spread: 8, PowerLaw: 0.3, ScaleSpread: 2}
	data, _, err := dataset.Clustered(spec, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(data, core.Options{
		Partitioner: core.PartitionRPTree, Groups: 4, AutoTuneW: true,
		Params: lshfunc.Params{M: 4, L: 4, W: 2},
	}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

func testServer(t *testing.T, mutable bool) (*httptest.Server, *vec.Matrix) {
	t.Helper()
	ix, data := testIndexData(t)
	srv := httptest.NewServer(New(ix, mutable).Handler())
	t.Cleanup(srv.Close)
	return srv, data
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndInfo(t *testing.T) {
	srv, _ := testServer(t, false)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var d core.Description
	resp, err = http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.N != 300 || d.Dim != 8 || d.Groups != 4 {
		t.Fatalf("info = %+v", d)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, data := testServer(t, false)
	var out queryResponse
	status := postJSON(t, srv.URL+"/query", queryRequest{Vector: data.Row(7), K: 3}, &out)
	if status != http.StatusOK {
		t.Fatalf("query status = %d", status)
	}
	if len(out.Neighbors) == 0 || out.Neighbors[0].ID != 7 || out.Neighbors[0].Dist != 0 {
		t.Fatalf("stored row not its own NN over HTTP: %+v", out.Neighbors)
	}
	if out.Candidates <= 0 {
		t.Fatal("candidates not reported")
	}
}

func TestQueryValidation(t *testing.T) {
	srv, _ := testServer(t, false)
	// Wrong dimensionality.
	if status := postJSON(t, srv.URL+"/query", queryRequest{Vector: []float32{1, 2}, K: 3}, nil); status != http.StatusBadRequest {
		t.Fatalf("short vector status = %d", status)
	}
	// Malformed body.
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	// Unknown fields rejected.
	resp, err = http.Post(srv.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"vector":[1,2,3,4,5,6,7,8],"k":3,"bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, data := testServer(t, false)
	req := batchRequest{Vectors: [][]float32{data.Row(1), data.Row(2)}, K: 2}
	var out batchResponse
	if status := postJSON(t, srv.URL+"/batch", req, &out); status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	if len(out.Results) != 2 {
		t.Fatalf("batch returned %d results", len(out.Results))
	}
	if out.Results[0].Neighbors[0].ID != 1 || out.Results[1].Neighbors[0].ID != 2 {
		t.Fatalf("batch results wrong: %+v", out.Results)
	}
	if status := postJSON(t, srv.URL+"/batch", batchRequest{K: 2}, nil); status != http.StatusBadRequest {
		t.Fatal("empty batch must 400")
	}
}

func TestMutationsRequireMutable(t *testing.T) {
	srv, data := testServer(t, false)
	body := map[string]interface{}{"vector": data.Row(0)}
	if status := postJSON(t, srv.URL+"/insert", body, nil); status != http.StatusForbidden {
		t.Fatalf("read-only insert status = %d", status)
	}
	if status := postJSON(t, srv.URL+"/delete", map[string]int{"id": 1}, nil); status != http.StatusForbidden {
		t.Fatalf("read-only delete status = %d", status)
	}
	if status := postJSON(t, srv.URL+"/compact", map[string]int{}, nil); status != http.StatusForbidden {
		t.Fatalf("read-only compact status = %d", status)
	}
}

func TestMutableLifecycle(t *testing.T) {
	srv, data := testServer(t, true)
	v := append([]float32(nil), data.Row(3)...)
	v[0] += 0.001
	var ins struct {
		ID int `json:"id"`
	}
	if status := postJSON(t, srv.URL+"/insert", map[string]interface{}{"vector": v}, &ins); status != http.StatusOK {
		t.Fatalf("insert status = %d", status)
	}
	var q queryResponse
	postJSON(t, srv.URL+"/query", queryRequest{Vector: v, K: 1}, &q)
	if q.Neighbors[0].ID != ins.ID {
		t.Fatalf("inserted vector not served: %+v", q.Neighbors)
	}
	var del struct {
		Deleted bool `json:"deleted"`
	}
	postJSON(t, srv.URL+"/delete", map[string]int{"id": ins.ID}, &del)
	if !del.Deleted {
		t.Fatal("delete reported false")
	}
	var cmp struct {
		Live int `json:"live"`
	}
	if status := postJSON(t, srv.URL+"/compact", map[string]int{}, &cmp); status != http.StatusOK {
		t.Fatalf("compact status = %d", status)
	}
	if cmp.Live != 300 {
		t.Fatalf("live after compact = %d", cmp.Live)
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	// Run with -race: concurrent queries + mutations must be safe.
	srv, data := testServer(t, true)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var out queryResponse
				raw, _ := json.Marshal(queryRequest{Vector: data.Row((g*10 + i) % data.N), K: 3})
				resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(raw))
				if err != nil {
					errCh <- err
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					errCh <- err
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			raw, _ := json.Marshal(map[string]interface{}{"vector": data.Row(i)})
			resp, err := http.Post(srv.URL+"/insert", "application/json", bytes.NewReader(raw))
			if err != nil {
				errCh <- err
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestMethodRouting(t *testing.T) {
	srv, _ := testServer(t, false)
	// GET on a POST route must 405.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}
	// Unknown path 404s.
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}
}

func ExampleServer() {
	fmt.Println("see cmd/bilsh serve")
	// Output: see cmd/bilsh serve
}
