package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"bilsh/internal/httpx"
	"bilsh/internal/metrics"
)

// methodDispatch applies the shared 405+Allow convention (httpx).
func methodDispatch(methods map[string]http.HandlerFunc) http.Handler {
	return httpx.MethodDispatch(methods)
}

// instrument wraps one endpoint with the middleware metrics: request
// count by (path, code), in-flight gauge, latency histogram by path, and
// error count by path. The path label set is bounded because instrument
// is only applied to the fixed route table.
func (s *Server) instrument(path string, next http.Handler) http.Handler {
	inflight := s.reg.Gauge("bilsh_http_in_flight_requests", "Requests currently being served.")
	latency := s.reg.Histogram("bilsh_http_request_seconds",
		"HTTP request latency, by path.", metrics.DefLatencyBuckets, metrics.L("path", path))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Inc()
		defer inflight.Dec()
		rec := &httpx.StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
		next.ServeHTTP(rec, r)
		latency.Observe(time.Since(start).Seconds())
		s.reg.Counter("bilsh_http_requests_total", "HTTP requests served, by path and status code.",
			metrics.L("path", path), metrics.L("code", strconv.Itoa(rec.Status))).Inc()
		if rec.Status >= 400 {
			s.reg.Counter("bilsh_http_errors_total", "HTTP responses with status >= 400, by path.",
				metrics.L("path", path)).Inc()
		}
	})
}

// handleMetrics serves the registry. The default is the Prometheus text
// exposition format; `?format=json` or an Accept header preferring
// application/json selects the JSON document instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Gauge("bilsh_process_uptime_seconds", "Seconds since the server was constructed.").
		Set(int64(time.Since(s.start).Seconds()))
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			return // headers are gone; drop the connection
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		return
	}
}

// mountPprof exposes the runtime profiler under /debug/pprof/. The
// handlers come straight from net/http/pprof; they are mounted on our mux
// (not the DefaultServeMux) and instrumented under one shared path label
// so profile names cannot grow the metric cardinality.
func (s *Server) mountPprof(mux *http.ServeMux) {
	profiled := func(h http.HandlerFunc) http.Handler {
		return s.instrument("/debug/pprof/", h)
	}
	mux.Handle("/debug/pprof/", profiled(pprof.Index))
	mux.Handle("/debug/pprof/cmdline", profiled(pprof.Cmdline))
	mux.Handle("/debug/pprof/profile", profiled(pprof.Profile))
	mux.Handle("/debug/pprof/symbol", profiled(pprof.Symbol))
	mux.Handle("/debug/pprof/trace", profiled(pprof.Trace))
}
