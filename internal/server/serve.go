package server

import (
	"context"
	"errors"
	"net"
	"net/http"
)

// Serve runs the HTTP API on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately (no new connections), while
// in-flight requests get up to the drain timeout (SetDrainTimeout, default
// 30s) to complete. It returns nil after a clean drain, the drain error
// (context.DeadlineExceeded) if requests were still running when the
// timeout expired, or the serve error if the listener failed first.
//
// The caller owns ctx; wiring it to SIGINT/SIGTERM via
// signal.NotifyContext gives the conventional kill-once-drain behavior
// (cmd/bilsh serve does exactly that).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler: s.Handler(),
		// BaseContext ties request contexts to the serve context, so
		// handlers that care can observe the shutdown; Shutdown below still
		// waits for them to return.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Listener failure before any shutdown was requested.
		return err
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	// Serve always returns ErrServerClosed after Shutdown; surface the
	// drain result instead.
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}

// ListenAndServe is Serve on a fresh TCP listener bound to addr.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	return s.Serve(ctx, ln)
}
