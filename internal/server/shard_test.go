package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bilsh/internal/core"
	"bilsh/internal/durable"
	"bilsh/internal/metrics"
)

func TestShardInfoStandalone(t *testing.T) {
	srv, _ := testServer(t, false)
	var info shardInfo
	if code := getJSON(t, srv.URL+"/shard/info", &info); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if info.Shard != -1 {
		t.Fatalf("standalone server reports shard %d, want -1", info.Shard)
	}
	if info.Mutable {
		t.Fatal("immutable server reports mutable")
	}
	if info.MaxGlobalID != info.Live-1 {
		t.Fatalf("max_global_id %d, want %d (identity ids)", info.MaxGlobalID, info.Live-1)
	}
}

func TestShardInfoWithIDMap(t *testing.T) {
	ix, _ := testIndexData(t)
	n := ix.Len()
	locals := make([]int, n)
	globals := make([]int, n)
	for i := 0; i < n; i++ {
		locals[i], globals[i] = i, 1000+i
	}
	m, err := NewIDMap(locals, globals)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix, false)
	s.SetShardID(3)
	s.SetIDMap(m)
	s.SetRegistry(metrics.NewRegistry())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var info shardInfo
	getJSON(t, srv.URL+"/shard/info", &info)
	if info.Shard != 3 {
		t.Fatalf("shard %d, want 3", info.Shard)
	}
	if info.MaxGlobalID != 1000+n-1 {
		t.Fatalf("max_global_id %d, want %d", info.MaxGlobalID, 1000+n-1)
	}

	// Query results must speak global ids.
	var qr struct {
		Neighbors []struct {
			ID int `json:"id"`
		} `json:"neighbors"`
	}
	q := make([]float32, ix.Dim())
	postJSON(t, srv.URL+"/query", map[string]interface{}{"vector": q, "k": 3}, &qr)
	for _, nb := range qr.Neighbors {
		if nb.ID < 1000 {
			t.Fatalf("result id %d is shard-local, want global (>= 1000)", nb.ID)
		}
	}

	// /idmap dumps the mapping in file format.
	resp, err := http.Get(srv.URL + "/idmap")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/idmap status %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != n {
		t.Fatalf("/idmap dumped %d lines, want %d", len(lines), n)
	}
	if lines[0] != "0 1000" {
		t.Fatalf("first idmap line %q, want \"0 1000\"", lines[0])
	}
}

func TestIDMapEndpointsUnconfigured(t *testing.T) {
	srv, _ := testServer(t, false)
	for _, path := range []string{"/idmap", "/checkpoint"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("GET %s on unconfigured server: status %d, want 403", path, resp.StatusCode)
		}
	}
}

func TestInsertWithGlobalID(t *testing.T) {
	ix, data := testIndexData(t)
	m, err := NewIDMap(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix, true)
	s.SetIDMap(m)
	s.SetRegistry(metrics.NewRegistry())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	v := data.Row(0)

	var ins struct {
		ID int `json:"id"`
	}
	if code := postJSON(t, srv.URL+"/insert", map[string]interface{}{"vector": v, "id": 500}, &ins); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if ins.ID != 500 {
		t.Fatalf("assigned id %d, want 500", ins.ID)
	}
	// Duplicate global id: 409.
	if code := postJSON(t, srv.URL+"/insert", map[string]interface{}{"vector": v, "id": 500}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate gid status %d, want 409", code)
	}
	// Auto-assignment continues above the maximum.
	if code := postJSON(t, srv.URL+"/insert", map[string]interface{}{"vector": v}, &ins); code != http.StatusOK {
		t.Fatalf("auto insert status %d", code)
	}
	if ins.ID != 501 {
		t.Fatalf("auto-assigned id %d, want 501", ins.ID)
	}
	// Delete by global id.
	var del struct {
		Deleted bool `json:"deleted"`
	}
	postJSON(t, srv.URL+"/delete", map[string]int{"id": 500}, &del)
	if !del.Deleted {
		t.Fatal("delete by global id failed")
	}
	postJSON(t, srv.URL+"/delete", map[string]int{"id": 500}, &del)
	if del.Deleted {
		t.Fatal("double delete reported success")
	}
}

func TestInsertWithIDRequiresIDMap(t *testing.T) {
	srv, data := testServer(t, true)
	code := postJSON(t, srv.URL+"/insert", map[string]interface{}{"vector": data.Row(0), "id": 7}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("insert with id on map-less server: status %d, want 400", code)
	}
}

// TestCompactRemapsIDMap drives insert → delete → compact and checks
// global ids keep resolving afterwards, across the local renumbering.
func TestCompactRemapsIDMap(t *testing.T) {
	ix, _ := testIndexData(t)
	n := ix.Len()
	locals := make([]int, n)
	globals := make([]int, n)
	for i := 0; i < n; i++ {
		locals[i], globals[i] = i, 2*i // spread ids so local != global
	}
	m, err := NewIDMap(locals, globals)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ix, true)
	s.SetIDMap(m)
	s.SetRegistry(metrics.NewRegistry())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Async compaction must refuse: it cannot apply the remap.
	if code := postJSON(t, srv.URL+"/compact", map[string]bool{"async": true}, nil); code != http.StatusConflict {
		t.Fatalf("async compact with idmap: status %d, want 409", code)
	}

	var del struct {
		Deleted bool `json:"deleted"`
	}
	postJSON(t, srv.URL+"/delete", map[string]int{"id": 0}, &del) // kills local row 0
	if !del.Deleted {
		t.Fatal("seed delete failed")
	}
	if code := postJSON(t, srv.URL+"/compact", map[string]bool{}, nil); code != http.StatusOK {
		t.Fatalf("compact status %d", code)
	}
	// After compaction local ids shifted down by one, but global ids must
	// still resolve: delete the (formerly) last row by its global id.
	postJSON(t, srv.URL+"/delete", map[string]int{"id": 2 * (n - 1)}, &del)
	if !del.Deleted {
		t.Fatalf("global id %d unresolvable after compaction", 2*(n-1))
	}
	if got := m.MaxGlobal(); got != 2*(n-1) {
		t.Fatalf("max global %d changed, want %d (deleted ids stay burned)", got, 2*(n-1))
	}
}

// TestCheckpointFetchBringsUpReplica is the replica bring-up path end to
// end: durable primary → POST /save → GET /checkpoint → bytes dropped
// into a fresh data dir → OpenDurable serves identical results.
func TestCheckpointFetchBringsUpReplica(t *testing.T) {
	ix, data := testIndexData(t)
	primaryDir := t.TempDir()
	d, err := core.OpenDurable(primaryDir, core.DurableOptions{Base: ix})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := New(d.Index, true)
	s.SetMutator(d)
	s.EnableSave(func() error { _, err := d.Checkpoint(); return err })
	s.EnableCheckpointFetch(primaryDir)
	s.SetGeneration(d.Gen)
	s.SetRegistry(metrics.NewRegistry())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Before any checkpoint: 404 with a hint.
	resp, err := http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint before save: status %d, want 404", resp.StatusCode)
	}

	// Mutate, then checkpoint through the API.
	var ins struct {
		ID int `json:"id"`
	}
	if code := postJSON(t, srv.URL+"/insert", map[string]interface{}{"vector": data.Row(0)}, &ins); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if code := postJSON(t, srv.URL+"/save", map[string]string{}, nil); code != http.StatusOK {
		t.Fatalf("save status %d", code)
	}

	// Fetch the checkpoint like bootstrapReplica does.
	resp, err = http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	if gen := resp.Header.Get("X-Bilsh-Generation"); gen != fmt.Sprint(d.Gen()) {
		t.Fatalf("generation header %q, want %d", gen, d.Gen())
	}

	replicaDir := t.TempDir()
	err = durable.AtomicWrite(filepath.Join(replicaDir, durable.CheckpointFileName), func(f *os.File) error {
		_, err := f.Write(blob)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.OpenDurable(replicaDir, core.DurableOptions{})
	if err != nil {
		t.Fatalf("replica open: %v", err)
	}
	defer r.Close()
	if !r.Recovery.FromCheckpoint {
		t.Fatal("replica did not recover from the fetched checkpoint")
	}
	if r.Index.Len() != d.Index.Len() {
		t.Fatalf("replica holds %d rows, primary %d", r.Index.Len(), d.Index.Len())
	}
	q := data.Row(1)
	want, _ := d.Index.Query(q, 5)
	got, _ := r.Index.Query(q, 5)
	if len(want.IDs) != len(got.IDs) {
		t.Fatalf("replica answered %d neighbors, primary %d", len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if want.IDs[i] != got.IDs[i] {
			t.Fatalf("rank %d: replica id %d, primary id %d", i, got.IDs[i], want.IDs[i])
		}
	}
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}
