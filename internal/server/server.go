// Package server exposes a Bi-level LSH index over HTTP with a small JSON
// API — the deployment shape for using the index as a shared similarity
// service. Handlers are safe for concurrent use and lock-free: the core
// index publishes immutable snapshots, so queries are served without any
// server-side locking and mutations serialize inside the index itself
// (see docs/concurrency.md).
//
// Endpoints:
//
//	GET  /healthz          -> 200 "ok"
//	GET  /info             -> index description (JSON)
//	GET  /metrics          -> process metrics (Prometheus text or JSON)
//	POST /query            -> {"vector":[...], "k":10}            -> neighbors
//	POST /batch            -> {"vectors":[[...],...], "k":10}     -> neighbor lists
//	POST /insert           -> {"vector":[...]}                    -> {"id":...}
//	POST /delete           -> {"id":...}                          -> {"deleted":bool}
//	POST /compact          -> {}                                  -> {"live":...}
//	POST /compact          -> {"async":true}                      -> 202 {"status":"started"}
//	POST /save             -> {}                                  -> {"status":"saved"}
//	GET  /shard/info       -> shard identity + index vitals (JSON)
//	GET  /checkpoint       -> durable checkpoint bytes (replica bring-up)
//	GET  /idmap            -> id map dump ("local global" lines)
//
// The shard endpoints back the sharded serving tier (docs/sharding.md):
// /shard/info always answers (shard -1 when the server is standalone),
// while /checkpoint requires EnableCheckpointFetch — `bilsh shard-serve
// -data-dir` wires it — and /idmap requires SetIDMap; both answer 403
// otherwise. With SetIDMap
// installed, result ids, insert assignments and delete targets are
// cluster-global ids rather than shard-local row ids (see IDMap).
//
// /save persists the index through the function installed with EnableSave
// (a durable checkpoint under `bilsh serve -data-dir`, an atomic rewrite
// of the index file otherwise) and answers 403 when no persistence is
// configured, 409 when the index has pending overlay state that the save
// path cannot fold itself (core.ErrDirtyIndex) or a compaction is already
// running (core.ErrCompactBusy).
//
// Vectors are JSON arrays of numbers with the index's dimensionality;
// NaN and infinite components are rejected with 400 at the boundary.
//
// With EnablePprof(true), the net/http/pprof handlers are mounted under
// /debug/pprof/. Requests with a known path but wrong method receive 405
// with an Allow header; every endpoint is wrapped in middleware recording
// request counts, in-flight gauge, latency histograms and error counts
// into the metrics registry (see docs/metrics.md).
package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"bilsh/internal/core"
	"bilsh/internal/httpx"
	"bilsh/internal/metrics"
	"bilsh/internal/vec"
)

// maxBodyBytes bounds request bodies (queries are small; batches bounded).
const maxBodyBytes = 64 << 20

// Mutator is the write-side interface the mutation endpoints call.
// *core.Index satisfies it (the default), and *core.DurableIndex overrides
// the same methods with write-ahead-logged variants; SetMutator installs
// the latter so a durable server never mutates the index behind its log.
type Mutator interface {
	Insert(v []float32) (int, error)
	Delete(id int) bool
	Compact() ([]int, error)
	CompactAsync() error
}

// Server wraps an index with the HTTP API.
type Server struct {
	ix *core.Index
	// mut receives insert/delete/compact calls; defaults to ix.
	mut Mutator
	// save, when set, backs POST /save.
	save func() error

	// mutable reports whether mutating endpoints are enabled.
	mutable bool

	// reg receives the per-endpoint middleware metrics and is what
	// GET /metrics exposes; defaults to the process-wide registry.
	reg *metrics.Registry
	// metricsOn controls whether GET /metrics is mounted.
	metricsOn bool
	// pprofOn controls whether /debug/pprof/ is mounted.
	pprofOn bool
	// start anchors the uptime gauge.
	start time.Time
	// drainTimeout bounds Serve's graceful shutdown (default 30s).
	drainTimeout time.Duration

	// Shard-serving state (see shard.go): the cluster shard id (-1 when
	// standalone), the local↔global id translation, the durable data
	// directory backing GET /checkpoint, and the checkpoint generation
	// source for /shard/info.
	shardID int
	idmap   *IDMap
	ckptDir string
	gen     func() uint64

	// defaultPlan is the base execution plan applied to requests that
	// carry no overrides of their own — nil means core.Plan{} (the index's
	// built budgets). The adaptive loop (StartAdaptive) republishes it
	// from live traffic, racing queries, hence the atomic pointer.
	defaultPlan atomic.Pointer[core.Plan]
}

// New wraps ix. When mutable is false the insert/delete/compact endpoints
// return 403 (the safe default for disk-backed or shared indexes). The
// metrics endpoint is on and pprof is off by default.
func New(ix *core.Index, mutable bool) *Server {
	return &Server{
		ix:           ix,
		mut:          ix,
		mutable:      mutable,
		reg:          metrics.Default(),
		metricsOn:    true,
		start:        time.Now(),
		drainTimeout: 30 * time.Second,
		shardID:      -1,
	}
}

// EnableMetrics mounts or unmounts GET /metrics (on by default). Call
// before Handler.
func (s *Server) EnableMetrics(on bool) { s.metricsOn = on }

// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/
// (off by default: profiling endpoints reveal internals and cost CPU, so
// exposure is the operator's explicit choice). Call before Handler.
func (s *Server) EnablePprof(on bool) { s.pprofOn = on }

// SetRegistry replaces the metrics registry (tests use isolated
// registries; production keeps the process-wide default). Call before
// Handler.
func (s *Server) SetRegistry(r *metrics.Registry) { s.reg = r }

// SetMutator routes the mutation endpoints through m instead of the
// wrapped index — how `bilsh serve -data-dir` interposes the durable
// index, whose Insert/Delete/Compact write-ahead log every change. The
// query endpoints keep reading the wrapped index (the durable index
// embeds it, so both see the same snapshots). Call before Handler.
func (s *Server) SetMutator(m Mutator) { s.mut = m }

// EnableSave mounts POST /save backed by fn (nil leaves the endpoint
// answering 403). fn runs at most once at a time per the underlying
// index's own serialization; errors map to 409 for core.ErrDirtyIndex and
// core.ErrCompactBusy and 500 otherwise. Call before Handler.
func (s *Server) EnableSave(fn func() error) { s.save = fn }

// SetDrainTimeout bounds how long Serve waits for in-flight requests on
// shutdown (default 30s). Call before Serve.
func (s *Server) SetDrainTimeout(d time.Duration) { s.drainTimeout = d }

// Handler returns the routed http.Handler. Routing is an explicit
// path -> method table so that a known path with the wrong method gets a
// JSON 405 carrying an Allow header rather than falling through to a 404,
// and so the middleware sees a bounded set of path labels.
func (s *Server) Handler() http.Handler {
	routes := map[string]map[string]http.HandlerFunc{
		"/healthz":    {http.MethodGet: s.handleHealthz},
		"/info":       {http.MethodGet: s.handleInfo},
		"/query":      {http.MethodPost: s.handleQuery},
		"/batch":      {http.MethodPost: s.handleBatch},
		"/insert":     {http.MethodPost: s.handleInsert},
		"/delete":     {http.MethodPost: s.handleDelete},
		"/compact":    {http.MethodPost: s.handleCompact},
		"/save":       {http.MethodPost: s.handleSave},
		"/shard/info": {http.MethodGet: s.handleShardInfo},
		"/checkpoint": {http.MethodGet: s.handleCheckpoint},
		"/idmap":      {http.MethodGet: s.handleIDMap},
	}
	if s.metricsOn {
		routes["/metrics"] = map[string]http.HandlerFunc{http.MethodGet: s.handleMetrics}
	}
	mux := http.NewServeMux()
	for path, methods := range routes {
		mux.Handle(path, s.instrument(path, methodDispatch(methods)))
	}
	if s.pprofOn {
		s.mountPprof(mux)
	}
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// neighbor is one result entry.
type neighbor struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"` // squared Euclidean distance
}

// queryRequest is the /query body. The embedded plan fields (recall,
// probes, tables, hier_min, rerank, stable_probes, max_candidates) ride
// inline in the same JSON object; URL query parameters of the same names
// override them (see internal/httpx).
type queryRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	httpx.QueryPlan
}

// planStats is the wire form of core.PlanStats, attached to responses
// when the request asks for it with ?stats=1.
type planStats struct {
	Scanned         int  `json:"scanned"`
	Probes          int  `json:"probes"`
	TablesProbed    int  `json:"tables_probed"`
	ResolvedTables  int  `json:"resolved_tables"`
	ResolvedProbes  int  `json:"resolved_probes"`
	TerminatedEarly bool `json:"terminated_early"`
}

func toPlanStats(ps core.PlanStats) *planStats {
	return &planStats{
		Scanned:         ps.Scanned,
		Probes:          ps.Probes,
		TablesProbed:    ps.TablesProbed,
		ResolvedTables:  ps.ResolvedTables,
		ResolvedProbes:  ps.ResolvedProbes,
		TerminatedEarly: ps.TerminatedEarly,
	}
}

// queryResponse is the /query reply.
type queryResponse struct {
	Neighbors  []neighbor `json:"neighbors"`
	Candidates int        `json:"candidates"`
	Group      int        `json:"group"`
	Stats      *planStats `json:"stats,omitempty"`
}

// batchRequest is the /batch body; plan fields ride inline like /query.
type batchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	K       int         `json:"k"`
	Workers int         `json:"workers,omitempty"`
	httpx.QueryPlan
}

// batchResponse is the /batch reply.
type batchResponse struct {
	Results []queryResponse `json:"results"`
}

// compactRequest is the /compact body. The zero value ({}) requests a
// synchronous compaction.
type compactRequest struct {
	Async bool `json:"async,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ix.Describe())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	k, ok := httpx.DecodePlanRequest(w, r, req.K, &req.QueryPlan)
	if !ok {
		return
	}
	if err := core.CheckVector(s.ix.Dim(), req.Vector); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, ps := s.ix.QueryPlan(req.Vector, s.planFor(req.QueryPlan, k))
	resp := s.toResponse(res.IDs, res.Dists, ps.QueryStats)
	if httpx.WantStats(r.URL.Query()) {
		resp.Stats = toPlanStats(ps)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	k, ok := httpx.DecodePlanRequest(w, r, req.K, &req.QueryPlan)
	if !ok {
		return
	}
	if len(req.Vectors) == 0 {
		httpError(w, http.StatusBadRequest, "no vectors")
		return
	}
	d := s.ix.Dim()
	for i, v := range req.Vectors {
		if err := core.CheckVector(d, v); err != nil {
			httpError(w, http.StatusBadRequest, "vector %d: %v", i, err)
			return
		}
	}
	queries := vec.FromRows(req.Vectors)
	results, stats := s.ix.QueryBatchParallelPlan(queries, s.planFor(req.QueryPlan, k), req.Workers)
	wantStats := httpx.WantStats(r.URL.Query())
	resp := batchResponse{Results: make([]queryResponse, len(results))}
	for i := range results {
		resp.Results[i] = s.toResponse(results[i].IDs, results[i].Dists, stats[i].QueryStats)
		if wantStats {
			resp.Results[i].Stats = toPlanStats(stats[i])
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if !s.requireMutable(w) {
		return
	}
	var req struct {
		Vector []float32 `json:"vector"`
		// ID is the caller-assigned global id, only meaningful on a
		// shard with an id map (the router supplies it); omitted, the
		// shard assigns max+1.
		ID *int `json:"id"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	// Validate at the boundary so a bad vector is a 400 and any error out
	// of the mutator itself (e.g. a WAL write failure) is a 500, not
	// misreported as a client mistake.
	if err := core.CheckVector(s.ix.Dim(), req.Vector); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.idmap == nil {
		if req.ID != nil {
			httpError(w, http.StatusBadRequest,
				"id assignment requires a shard id map (serve the index with bilsh shard-serve -idmap)")
			return
		}
		id, err := s.mut.Insert(req.Vector)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"id": id})
		return
	}
	gid := -1
	if req.ID != nil {
		if *req.ID < 0 {
			httpError(w, http.StatusBadRequest, "id must be non-negative, got %d", *req.ID)
			return
		}
		gid = *req.ID
	}
	gid, err := s.idmap.InsertWith(gid, func() (int, error) { return s.mut.Insert(req.Vector) })
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrDuplicateGlobalID) {
			status = http.StatusConflict
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"id": gid})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireMutable(w) {
		return
	}
	var req struct {
		ID int `json:"id"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	id := req.ID
	if s.idmap != nil {
		// Delete targets arrive as global ids; a global id this shard
		// does not hold is simply not deleted here (the router
		// broadcasts deletes, so exactly one shard answers true).
		local, ok := s.idmap.Local(id)
		if !ok {
			writeJSON(w, http.StatusOK, map[string]bool{"deleted": false})
			return
		}
		id = local
	}
	ok := s.mut.Delete(id)
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": ok})
}

// handleCompact folds the overlay into fresh base structures. The default
// is synchronous (the response carries the post-compaction live count);
// {"async":true} starts the rebuild in the background and answers 202
// immediately — poll /info's Epoch/PendingInserts to observe completion.
// A compaction already in progress answers 409 either way.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !s.requireMutable(w) {
		return
	}
	var req compactRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Async {
		if s.idmap != nil {
			// Compaction renumbers local ids and CompactAsync discards the
			// remap, which would silently desynchronize the id map.
			httpError(w, http.StatusConflict,
				"async compaction is unavailable with an id map installed (the id remap must be applied); use synchronous compact")
			return
		}
		if err := s.mut.CompactAsync(); err != nil {
			httpError(w, conflictOr500(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "started"})
		return
	}
	remap, err := s.mut.Compact()
	if err != nil {
		httpError(w, conflictOr500(err), "%v", err)
		return
	}
	if s.idmap != nil {
		// Keep global ids stable across the local renumbering. A failure
		// here is fatal for the mapping, not the index — surface it loudly.
		if err := s.idmap.Remap(remap); err != nil {
			httpError(w, http.StatusInternalServerError, "compacted, but remapping the id map failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"live": s.ix.Len()})
}

// handleSave persists the index through the EnableSave callback. Without
// one the endpoint is 403 (read-only deployments have nowhere to save
// to); a dirty in-memory index or a checkpoint already in progress is the
// caller's race to retry, 409.
func (s *Server) handleSave(w http.ResponseWriter, _ *http.Request) {
	if s.save == nil {
		httpError(w, http.StatusForbidden, "save is not configured (start the server with -data-dir or a writable -index)")
		return
	}
	if err := s.save(); err != nil {
		httpError(w, conflictOr500(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "saved"})
}

// conflictOr500 distinguishes retry-the-race errors from server faults.
// Earlier versions reported every compaction failure as 409, which hid
// real I/O errors behind a retryable status.
func conflictOr500(err error) int {
	if errors.Is(err, core.ErrCompactBusy) || errors.Is(err, core.ErrDirtyIndex) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

func (s *Server) requireMutable(w http.ResponseWriter) bool {
	if !s.mutable {
		httpError(w, http.StatusForbidden, "index is read-only (start the server with -mutable)")
		return false
	}
	return true
}

func (s *Server) toResponse(ids []int, dists []float64, st core.QueryStats) queryResponse {
	resp := queryResponse{
		Neighbors:  make([]neighbor, len(ids)),
		Candidates: st.Candidates,
		Group:      st.Group,
	}
	for i := range ids {
		id := ids[i]
		if s.idmap != nil {
			id = s.idmap.Global(id)
		}
		resp.Neighbors[i] = neighbor{ID: id, Dist: dists[i]}
	}
	return resp
}

// decodeBody, writeJSON and httpError delegate to the shared
// internal/httpx conventions (size-capped strict JSON in, structured
// JSON errors out) that the router speaks as well.
func decodeBody(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	return httpx.DecodeBody(w, r, maxBodyBytes, dst)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	httpx.WriteJSON(w, status, v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	httpx.Error(w, status, format, args...)
}
