// Package mmap provides read-only memory-mapped views of files, plus the
// zero-copy reinterpret casts the paged disk-index layout relies on. On
// Linux the view is a real mmap(2) mapping: pages fault in on demand, the
// kernel evicts them under pressure, and the residency helpers (Resident,
// Evict, Pin) expose mincore/madvise/mlock so callers can implement a
// resident-set policy. Everywhere else (and whenever the syscall fails)
// the package degrades to a heap copy of the file with the same API —
// correctness is identical, only the out-of-core property is lost.
//
// All mappings are read-only (PROT_READ): writing through a returned
// slice faults. Close unmaps deterministically; a finalizer backstops
// mappings that are dropped without Close so renamed-over index
// generations do not pin disk space for the life of the process.
package mmap

import (
	"fmt"
	"os"
	"runtime"
	"sync"
)

// Mapping is one read-only view of a file's contents.
type Mapping struct {
	data   []byte
	mapped bool // real mmap vs heap copy

	mu     sync.Mutex
	closed bool
}

// Open maps the file at path. The file descriptor used for mapping is not
// retained; the mapping (or heap copy) survives independently.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenFile(f)
}

// OpenFile maps f's current contents. The caller keeps ownership of f:
// closing it later does not invalidate the mapping.
func OpenFile(f *os.File) (*Mapping, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: file size %d out of range", size)
	}
	m := &Mapping{}
	if size > 0 {
		data, mapped, err := sysMap(f, size)
		if err != nil {
			return nil, err
		}
		m.data, m.mapped = data, mapped
	}
	if m.mapped {
		// Backstop: a mapping that loses its last reference without Close
		// (e.g. a retired checkpoint generation) is unmapped by the GC, so
		// the renamed-over inode it pins can be reclaimed.
		runtime.SetFinalizer(m, (*Mapping).finalize)
	}
	return m, nil
}

func (m *Mapping) finalize() { m.Close() } //nolint:errcheck

// Bytes returns the mapped contents. The slice is read-only: writing
// through it faults on a real mapping. It remains valid until Close.
func (m *Mapping) Bytes() []byte { return m.data }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Mapped reports whether this is a real kernel mapping (false: heap copy
// fallback, on which the residency calls are no-ops).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping. It is idempotent. The caller must guarantee
// no reader still holds slices into Bytes(); the index layer does so by
// keeping the Mapping referenced from every snapshot that aliases it.
func (m *Mapping) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	var err error
	if m.mapped {
		runtime.SetFinalizer(m, nil)
		err = sysUnmap(m.data)
	}
	m.data, m.mapped = nil, false
	return err
}

// clamp bounds [off, off+n) to the mapping and returns the subslice
// (nil when empty or out of range).
func (m *Mapping) clamp(off, n int64) []byte {
	if off < 0 || n <= 0 || off >= int64(len(m.data)) {
		return nil
	}
	end := off + n
	if end > int64(len(m.data)) {
		end = int64(len(m.data))
	}
	return m.data[off:end]
}

// AdviseRandom declares random access for [off, off+n) (rows re-ranked by
// id out of shortlist order), disabling kernel readahead there.
func (m *Mapping) AdviseRandom(off, n int64) error {
	if b := m.clamp(off, n); b != nil && m.mapped {
		return sysMadvise(alignRange(m.data, b), madvRandom)
	}
	return nil
}

// Evict drops the resident pages of [off, off+n) (MADV_DONTNEED on a
// read-only shared mapping: pages are clean, so this cannot lose data —
// they refault from the file). No-op on the heap fallback.
func (m *Mapping) Evict(off, n int64) error {
	if b := m.clamp(off, n); b != nil && m.mapped {
		return sysMadvise(alignRange(m.data, b), madvDontNeed)
	}
	return nil
}

// Pin best-effort locks [off, off+n) into RAM (mlock). RLIMIT_MEMLOCK
// failures are returned but callers typically treat them as advisory.
func (m *Mapping) Pin(off, n int64) error {
	if b := m.clamp(off, n); b != nil && m.mapped {
		return sysMlock(alignRange(m.data, b))
	}
	return nil
}

// Resident reports how many bytes of [off, off+n) are currently resident
// in RAM (mincore). The heap fallback reports the full range resident.
func (m *Mapping) Resident(off, n int64) (int64, error) {
	b := m.clamp(off, n)
	if b == nil {
		return 0, nil
	}
	if !m.mapped {
		return int64(len(b)), nil
	}
	return sysResident(alignRange(m.data, b))
}

// alignRange widens b to page boundaries within the mapping (madvise and
// mincore require page-aligned starts).
func alignRange(whole, b []byte) []byte {
	page := int64(os.Getpagesize())
	off := int64(sliceOffset(whole, b))
	end := off + int64(len(b))
	aoff := off &^ (page - 1)
	aend := (end + page - 1) &^ (page - 1)
	if aend > int64(len(whole)) {
		aend = int64(len(whole))
	}
	return whole[aoff:aend]
}
