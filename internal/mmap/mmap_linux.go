//go:build linux

package mmap

import (
	"os"
	"syscall"
	"unsafe"
)

const (
	madvRandom   = syscall.MADV_RANDOM
	madvDontNeed = syscall.MADV_DONTNEED
)

// sysMap maps size bytes of f read-only. A failed mmap (e.g. an exotic
// filesystem) degrades to the heap fallback rather than erroring: the
// caller keeps working, just not out-of-core.
func sysMap(f *os.File, size int64) (data []byte, mapped bool, err error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err == nil {
		return b, true, nil
	}
	return readAll(f, size)
}

func sysUnmap(b []byte) error { return syscall.Munmap(b) }

func sysMadvise(b []byte, advice int) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Madvise(b, advice)
}

func sysMlock(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Mlock(b)
}

// sysResident counts resident bytes via mincore.
func sysResident(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	page := os.Getpagesize()
	vec := make([]byte, (len(b)+page-1)/page)
	// No syscall.Mincore wrapper in the stdlib; issue it raw.
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, errno
	}
	var resident int64
	for i, v := range vec {
		if v&1 == 0 {
			continue
		}
		n := page
		if last := len(b) - i*page; n > last {
			n = last
		}
		resident += int64(n)
	}
	return resident, nil
}
