package mmap

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenRoundTrip(t *testing.T) {
	want := bytes.Repeat([]byte("bilsh-mmap"), 1000)
	m, err := Open(writeTemp(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !bytes.Equal(m.Bytes(), want) {
		t.Fatalf("mapped bytes differ: got %d bytes", m.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if m.Bytes() != nil {
		t.Fatal("Bytes() non-nil after Close")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", m.Len())
	}
	if _, err := m.Resident(0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestResidencyCalls(t *testing.T) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	m, err := Open(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Touch everything, then the calls must all succeed; exact residency
	// is kernel policy and not asserted.
	var sum byte
	for _, b := range m.Bytes() {
		sum += b
	}
	_ = sum
	if err := m.AdviseRandom(0, int64(m.Len())); err != nil {
		t.Fatalf("AdviseRandom: %v", err)
	}
	r, err := m.Resident(0, int64(m.Len()))
	if err != nil {
		t.Fatalf("Resident: %v", err)
	}
	if r < 0 || r > int64(m.Len()) {
		t.Fatalf("resident %d out of [0,%d]", r, m.Len())
	}
	if err := m.Evict(0, int64(m.Len())); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	// Pin is best-effort (RLIMIT_MEMLOCK); only crash-freedom is asserted.
	_ = m.Pin(0, 4096)

	// After a full eviction of a real mapping the data still reads back
	// correctly (pages refault from the file).
	if !bytes.Equal(m.Bytes()[:16], data[:16]) {
		t.Fatal("data changed after Evict")
	}
}

func TestCasts(t *testing.T) {
	f32 := []float32{1.5, -2.25, 3.125, 0, 1e-9}
	b := make([]byte, 4*len(f32))
	for i, v := range f32 {
		binary.LittleEndian.PutUint32(b[4*i:], floatBits(v))
	}
	got := ViewFloat32s(b)
	for i := range f32 {
		if got[i] != f32[i] {
			t.Fatalf("f32[%d]: got %v want %v", i, got[i], f32[i])
		}
	}
	if dec := DecodeFloat32s(b); len(dec) != len(f32) || dec[2] != f32[2] {
		t.Fatal("DecodeFloat32s mismatch")
	}

	ints := []int{0, 1, -1, 1 << 40, -(1 << 40)}
	ib := make([]byte, 8*len(ints))
	for i, v := range ints {
		binary.LittleEndian.PutUint64(ib[8*i:], uint64(int64(v)))
	}
	gotI := ViewInts(ib)
	for i := range ints {
		if gotI[i] != ints[i] {
			t.Fatalf("int[%d]: got %d want %d", i, gotI[i], ints[i])
		}
	}
	if dec := DecodeInts(ib); dec[3] != ints[3] {
		t.Fatal("DecodeInts mismatch")
	}

	// Misaligned base must refuse the zero-copy path, not mis-cast.
	if ZeroCopy() {
		if _, ok := Float32s(b[1:5]); ok && alignedBase(b[1:5]) {
			t.Fatal("accepted misaligned cast")
		}
	}
	if s := String([]byte("bucket-key")); s != "bucket-key" {
		t.Fatalf("String: %q", s)
	}
	if s := String(nil); s != "" {
		t.Fatalf("String(nil): %q", s)
	}
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func alignedBase(b []byte) bool { return aligned(b, 4) }
