//go:build !linux

package mmap

import "os"

const (
	madvRandom   = 0
	madvDontNeed = 0
)

// sysMap on non-Linux platforms is the heap fallback: the file is read
// into memory once. Same API, same bytes; no demand paging.
func sysMap(f *os.File, size int64) ([]byte, bool, error) { return readAll(f, size) }

func sysUnmap(b []byte) error { return nil }

func sysMadvise(b []byte, advice int) error { return nil }

func sysMlock(b []byte) error { return nil }

func sysResident(b []byte) (int64, error) { return int64(len(b)), nil }
