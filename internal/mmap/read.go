package mmap

import (
	"io"
	"os"
)

// readAll loads size bytes of f into a heap buffer (the non-mmap
// degradation shared by the fallback build and mmap-failure paths). The
// buffer base is allocator-aligned, so the zero-copy casts usually still
// apply — the view is just heap-resident.
func readAll(f *os.File, size int64) ([]byte, bool, error) {
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, false, err
	}
	return buf, false, nil
}
