package mmap

import (
	"encoding/binary"
	"strconv"
	"unsafe"
)

// Zero-copy reinterpret casts from a mapped (or heap) byte section to the
// typed slices the query hot path consumes. The on-disk layout is fixed
// little-endian with 64-bit integers, so the casts are only legal on a
// little-endian host with 64-bit ints and an aligned base — exactly the
// platforms the serving tier targets. Every helper reports ok=false when
// the reinterpretation would be wrong (endianness, int width, alignment,
// ragged length), and callers fall back to a decoded heap copy, so
// behavior is identical everywhere and only residency differs.

// hostLittleEndian is true on little-endian hardware.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ZeroCopy reports whether reinterpret casts of the little-endian 64-bit
// disk layout are legal on this host.
func ZeroCopy() bool { return hostLittleEndian && strconv.IntSize == 64 }

func aligned(b []byte, align int) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%uintptr(align) == 0
}

// sliceOffset returns b's byte offset inside whole (b must alias whole).
func sliceOffset(whole, b []byte) int {
	if len(b) == 0 {
		return 0
	}
	return int(uintptr(unsafe.Pointer(&b[0])) - uintptr(unsafe.Pointer(&whole[0])))
}

// Float32s reinterprets b as a []float32 without copying.
func Float32s(b []byte) ([]float32, bool) {
	if !ZeroCopy() || len(b)%4 != 0 || !aligned(b, 4) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// DecodeFloat32s is the copying fallback for Float32s (little-endian
// fixed-width f32 records).
func DecodeFloat32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func float32frombits(u uint32) float32 { return *(*float32)(unsafe.Pointer(&u)) }

// Ints reinterprets b (int64 little-endian records) as a []int without
// copying.
func Ints(b []byte) ([]int, bool) {
	if !ZeroCopy() || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), len(b)/8), true
}

// DecodeInts is the copying fallback for Ints.
func DecodeInts(b []byte) []int {
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// ViewInts returns b's int64 records as a []int, zero-copy when legal.
func ViewInts(b []byte) []int {
	if v, ok := Ints(b); ok {
		return v
	}
	return DecodeInts(b)
}

// ViewFloat32s returns b's f32 records as a []float32, zero-copy when
// legal.
func ViewFloat32s(b []byte) []float32 {
	if v, ok := Float32s(b); ok {
		return v
	}
	return DecodeFloat32s(b)
}

// String returns b as a string without copying. The result aliases the
// mapping: it is only valid while the mapping is, and only for read-only
// use — which is what bucket keys are.
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
