package core

import (
	"cmp"
	"fmt"
	"io"
	"slices"

	"bilsh/internal/vec"
)

// Description is a structured snapshot of an index's shape, exposed for
// operational introspection (the CLI's `info` command) and tests.
type Description struct {
	N, Dim      int
	Live        int
	Groups      int
	Lattice     LatticeKind
	Partitioner PartitionerKind
	ProbeMode   ProbeMode
	M, L        int
	// GroupSizes and GroupWidths are indexed by group id.
	GroupSizes  []int
	GroupWidths []float64
	// Buckets/Items/MeanBucket/MaxBucket/CollisionMass aggregate the
	// lshtable statistics across all groups and tables.
	Buckets       int
	Items         int
	MeanBucket    float64
	MaxBucket     int
	CollisionMass float64
	// PendingInserts/PendingDeletes report dynamic-overlay volume.
	PendingInserts, PendingDeletes int
	// FrozenSegments counts sealed (but not yet compacted) overlay
	// segments; the active memtable is not included.
	FrozenSegments int
	// Epoch is the snapshot epoch (monotone across publications).
	Epoch          uint64
	HierarchyStale bool
	DiskBacked     bool
}

// Describe collects a consistent structural snapshot (one atomic load; no
// locks).
func (ix *Index) Describe() Description {
	sn := ix.loadSnap()
	d := Description{
		N: sn.data.N, Dim: sn.data.D, Live: sn.live(),
		Groups:      len(sn.groups),
		Lattice:     ix.opts.Lattice,
		Partitioner: ix.opts.Partitioner,
		ProbeMode:   ix.opts.ProbeMode,
		M:           ix.opts.Params.M, L: ix.opts.Params.L,
		DiskBacked:     sn.fetch != nil,
		FrozenSegments: len(sn.frozen),
		Epoch:          sn.epoch,
	}
	var overlayCounts []int
	if sn.hasOverlay() {
		overlayCounts = sn.overlayGroupCounts()
	}
	for gi, g := range sn.groups {
		size := len(g.members)
		if overlayCounts != nil {
			size += overlayCounts[gi]
		}
		d.GroupSizes = append(d.GroupSizes, size)
		d.GroupWidths = append(d.GroupWidths, g.w)
	}
	s := ix.TableSummary()
	d.Buckets, d.Items = s.Buckets, s.Items
	d.MeanBucket, d.MaxBucket, d.CollisionMass = s.MeanBucket, s.MaxBucket, s.CollisionMass
	d.PendingInserts = sn.frozenN + sn.mem.len()
	d.PendingDeletes = sn.dead.count()
	d.HierarchyStale = ix.opts.ProbeMode == ProbeHierarchy && sn.hasOverlay()
	return d
}

// WriteReport renders the description as an aligned human-readable block.
func (d Description) WriteReport(w io.Writer) error {
	kind := "in-memory"
	if d.DiskBacked {
		kind = "disk-backed"
	}
	if _, err := fmt.Fprintf(w,
		"index: %d vectors (dim %d), %d live, %s\n"+
			"method: partitioner=%v lattice=%v probe=%v M=%d L=%d groups=%d\n"+
			"tables: %d buckets over %d entries (mean %.1f, max %d, collision mass %.1f)\n",
		d.N, d.Dim, d.Live, kind,
		d.Partitioner, d.Lattice, d.ProbeMode, d.M, d.L, d.Groups,
		d.Buckets, d.Items, d.MeanBucket, d.MaxBucket, d.CollisionMass); err != nil {
		return err
	}
	if d.PendingInserts > 0 || d.PendingDeletes > 0 {
		if _, err := fmt.Fprintf(w, "dynamic: %d pending inserts, %d tombstones (hierarchy stale: %v)\n",
			d.PendingInserts, d.PendingDeletes, d.HierarchyStale); err != nil {
			return err
		}
	}
	// Group-size distribution (sorted descending, quartile markers).
	sizes := append([]int(nil), d.GroupSizes...)
	slices.SortFunc(sizes, func(a, b int) int { return cmp.Compare(b, a) })
	if len(sizes) > 0 {
		widths := make([]float64, len(d.GroupWidths))
		copy(widths, d.GroupWidths)
		slices.Sort(widths)
		stats := vec.Summarize(widths)
		if _, err := fmt.Fprintf(w,
			"groups: largest=%d smallest=%d; widths W in [%.3g, %.3g] (mean %.3g)\n",
			sizes[0], sizes[len(sizes)-1], stats.Min, stats.Max, stats.Mean); err != nil {
			return err
		}
	}
	return nil
}
