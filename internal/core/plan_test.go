package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestPlanValidate is the table-driven contract of Plan.Validate: every
// field range, with the message naming the offending field.
func TestPlanValidate(t *testing.T) {
	big := planLimit + 1
	cases := []struct {
		name string
		p    Plan
		want string // "" = valid
	}{
		{"zero", Plan{}, ""},
		{"k only", Plan{K: 10}, ""},
		{"all fields sane", Plan{K: 5, TargetRecall: 0.9, Probes: 8, Tables: 4, HierMinCandidates: 20, RerankFactor: 6, StableProbes: 16, MaxCandidates: 1000}, ""},
		{"negative k", Plan{K: -1}, "K"},
		{"huge k", Plan{K: big}, "K"},
		{"recall one", Plan{TargetRecall: 1}, "TargetRecall"},
		{"recall above one", Plan{TargetRecall: 1.5}, "TargetRecall"},
		{"recall negative", Plan{TargetRecall: -0.1}, "TargetRecall"},
		{"negative probes", Plan{Probes: -2}, "Probes"},
		{"huge probes", Plan{Probes: big}, "Probes"},
		{"negative tables", Plan{Tables: -1}, "Tables"},
		{"huge tables", Plan{Tables: big}, "Tables"},
		{"negative hier min", Plan{HierMinCandidates: -1}, "HierMinCandidates"},
		{"huge hier min", Plan{HierMinCandidates: big}, "HierMinCandidates"},
		{"negative rerank", Plan{RerankFactor: -1}, "RerankFactor"},
		{"huge rerank", Plan{RerankFactor: big}, "RerankFactor"},
		{"negative stable probes", Plan{StableProbes: -1}, "StableProbes"},
		{"huge stable probes", Plan{StableProbes: big}, "StableProbes"},
		{"negative max candidates", Plan{MaxCandidates: -1}, "MaxCandidates"},
		{"huge max candidates", Plan{MaxCandidates: big}, "MaxCandidates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate(%+v) = %v, want nil", tc.p, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error mentioning %q", tc.p, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%+v) = %q, want mention of %q", tc.p, err, tc.want)
			}
		})
	}
}

func TestPlanIsDefault(t *testing.T) {
	cases := []struct {
		p    Plan
		want bool
	}{
		{Plan{}, true},
		{Plan{K: 10}, true},
		{Plan{K: 10, TargetRecall: 0.9}, false},
		{Plan{Probes: 4}, false},
		{Plan{Tables: 2}, false},
		{Plan{HierMinCandidates: 5}, false},
		{Plan{RerankFactor: 8}, false},
		{Plan{StableProbes: 3}, false},
		{Plan{MaxCandidates: 100}, false},
	}
	for _, tc := range cases {
		if got := tc.p.IsDefault(); got != tc.want {
			t.Fatalf("IsDefault(%+v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// TestQueryPlanDefaultMatchesQuery pins the tentpole equivalence: a Plan
// carrying only K must route every query byte-identically to the legacy
// Query across lattices × probe modes × static/overlay/compacted, with
// PlanStats reporting the full budget and no early termination.
func TestQueryPlanDefaultMatchesQuery(t *testing.T) {
	lattices := []LatticeKind{LatticeZM, LatticeE8, LatticeDn}
	modes := []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy}
	stages := []string{"static", "overlay", "compacted"}
	for _, lat := range lattices {
		for _, mode := range modes {
			for _, stage := range stages {
				t.Run(fmt.Sprintf("%v/%v/%s", lat, mode, stage), func(t *testing.T) {
					ix, qs := equivIndex(t, lat, mode, stage != "static")
					if stage == "compacted" {
						if _, err := ix.Compact(); err != nil {
							t.Fatal(err)
						}
					}
					const k = 7
					for qi := 0; qi < qs.N; qi++ {
						q := qs.Row(qi)
						want, wantSt := ix.Query(q, k)
						got, ps := ix.QueryPlan(q, Plan{K: k})
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("query %d: result mismatch\n got %+v\nwant %+v", qi, got, want)
						}
						if !sameStats(ps.QueryStats, wantSt) {
							t.Fatalf("query %d: stats mismatch\n got %+v\nwant %+v", qi, ps.QueryStats, wantSt)
						}
						if ps.TerminatedEarly {
							t.Fatalf("query %d: default plan terminated early", qi)
						}
						if ps.ResolvedTables != ix.opts.Params.L {
							t.Fatalf("query %d: ResolvedTables = %d, want L = %d", qi, ps.ResolvedTables, ix.opts.Params.L)
						}
						if mode != ProbeHierarchy && ps.TablesProbed != ix.opts.Params.L {
							t.Fatalf("query %d: TablesProbed = %d, want %d", qi, ps.TablesProbed, ix.opts.Params.L)
						}
					}
				})
			}
		}
	}
}

// TestQueryBatchPlanDefaultMatchesQueryBatch pins the batch entry points
// (including the hierarchy median sizing rule and the parallel path) to
// the legacy batch API under a default plan.
func TestQueryBatchPlanDefaultMatchesQueryBatch(t *testing.T) {
	for _, mode := range []ProbeMode{ProbeSingle, ProbeHierarchy} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, qs := equivIndex(t, LatticeZM, mode, true)
			const k = 5
			wantRes, wantSt := ix.QueryBatch(qs, k)
			gotRes, ps := ix.QueryBatchPlan(qs, Plan{K: k})
			for qi := range wantRes {
				if !reflect.DeepEqual(gotRes[qi], wantRes[qi]) {
					t.Fatalf("batch query %d: result mismatch\n got %+v\nwant %+v", qi, gotRes[qi], wantRes[qi])
				}
				if !sameStats(ps[qi].QueryStats, wantSt[qi]) {
					t.Fatalf("batch query %d: stats mismatch\n got %+v\nwant %+v", qi, ps[qi].QueryStats, wantSt[qi])
				}
			}
			parRes, parPs := ix.QueryBatchParallelPlan(qs, Plan{K: k}, 4)
			for qi := range wantRes {
				if !reflect.DeepEqual(parRes[qi], wantRes[qi]) {
					t.Fatalf("parallel query %d: result mismatch\n got %+v\nwant %+v", qi, parRes[qi], wantRes[qi])
				}
				if !sameStats(parPs[qi].QueryStats, wantSt[qi]) {
					t.Fatalf("parallel query %d: stats mismatch\n got %+v\nwant %+v", qi, parPs[qi].QueryStats, wantSt[qi])
				}
			}
		})
	}
}

// TestPlanTablesOverride pins the Tables override: the probe loop visits
// exactly the requested number of tables, and fewer tables never scan
// more rows.
func TestPlanTablesOverride(t *testing.T) {
	ix, qs := allocIndex(t, ProbeSingle)
	L := ix.opts.Params.L
	q := qs.Row(0)
	prev := -1
	for tables := 1; tables <= L; tables++ {
		_, ps := ix.QueryPlan(q, Plan{K: 5, Tables: tables})
		if ps.ResolvedTables != tables || ps.TablesProbed != tables {
			t.Fatalf("tables=%d: resolved %d, probed %d", tables, ps.ResolvedTables, ps.TablesProbed)
		}
		if ps.Scanned < prev {
			t.Fatalf("tables=%d scanned %d < tables=%d scanned %d", tables, ps.Scanned, tables-1, prev)
		}
		prev = ps.Scanned
	}
	// Overflowing budgets clamp to L rather than failing.
	_, ps := ix.QueryPlan(q, Plan{K: 5, Tables: L + 100})
	if ps.ResolvedTables != L {
		t.Fatalf("Tables=%d resolved to %d, want clamp to L=%d", L+100, ps.ResolvedTables, L)
	}
}

// TestPlanTargetRecall pins the SLO resolution: the recall target maps
// through the collision model to a monotone table budget, and the full
// budget is restored as the target approaches the built recall.
func TestPlanTargetRecall(t *testing.T) {
	ix, qs := allocIndex(t, ProbeSingle)
	L := ix.opts.Params.L
	q := qs.Row(0)
	prev := 0
	for _, target := range []float64{0.05, 0.3, 0.6, 0.9, 0.99} {
		_, ps := ix.QueryPlan(q, Plan{K: 5, TargetRecall: target})
		if ps.ResolvedTables < 1 || ps.ResolvedTables > L {
			t.Fatalf("target %g resolved %d tables, want within [1, %d]", target, ps.ResolvedTables, L)
		}
		if ps.ResolvedTables < prev {
			t.Fatalf("target %g resolved %d tables, less than lower target's %d", target, ps.ResolvedTables, prev)
		}
		prev = ps.ResolvedTables
	}
	if prev != L {
		t.Fatalf("target 0.99 resolved %d tables, want the full L=%d", prev, L)
	}
	// An explicit Tables override beats the SLO.
	_, ps := ix.QueryPlan(q, Plan{K: 5, TargetRecall: 0.99, Tables: 1})
	if ps.ResolvedTables != 1 {
		t.Fatalf("Tables=1 with TargetRecall: resolved %d, want 1", ps.ResolvedTables)
	}
}

// TestPlanEarlyTermination exercises both termination policies: a
// one-candidate collision cap must fire on every non-trivial query, and a
// plateau window wider than the whole probe sequence must change nothing.
func TestPlanEarlyTermination(t *testing.T) {
	for _, mode := range []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, qs := allocIndex(t, mode)
			const k = 5
			capped, full := 0, 0
			for qi := 0; qi < qs.N; qi++ {
				q := qs.Row(qi)
				res, ps := ix.QueryPlan(q, Plan{K: k, MaxCandidates: 1})
				if ps.TerminatedEarly {
					capped++
					if ps.Candidates < 1 {
						t.Fatalf("query %d: terminated with %d candidates", qi, ps.Candidates)
					}
				}
				if len(res.IDs) != len(res.Dists) {
					t.Fatalf("query %d: ragged result", qi)
				}

				// A plateau window longer than every probe sequence is a no-op.
				want, _ := ix.Query(q, k)
				got, ps2 := ix.QueryPlan(q, Plan{K: k, StableProbes: planLimit})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: huge plateau window changed results\n got %+v\nwant %+v", qi, got, want)
				}
				if !ps2.TerminatedEarly {
					full++
				}
			}
			if capped == 0 {
				t.Fatalf("MaxCandidates=1 never terminated early over %d queries", qs.N)
			}
			if full == 0 {
				t.Fatalf("StableProbes=%d terminated every query early", planLimit)
			}
		})
	}
}

// TestQueryPlanAllocs pins the plan path to the legacy allocation
// budget: the result slices only, even with termination checks enabled.
func TestQueryPlanAllocs(t *testing.T) {
	for _, mode := range []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, qs := allocIndex(t, mode)
			p := Plan{K: 5, StableProbes: 64, MaxCandidates: 4000}
			// Pin one scratch and measure resolve + execution, like
			// TestQueryAllocs: a GC clearing the pool between runs (or the
			// race detector's pool instrumentation) must not be charged to
			// the plan path.
			s := ix.getScratch()
			sn := ix.loadSnap()
			for i := 0; i < qs.N; i++ {
				rp := sn.resolve(p)
				sn.queryPlan(qs.Row(i), &rp, s)
			}
			qi := 0
			got := testing.AllocsPerRun(200, func() {
				rp := sn.resolve(p)
				sn.queryPlan(qs.Row(qi%qs.N), &rp, s)
				qi++
			})
			if got > 2 {
				t.Fatalf("QueryPlan allocates %.1f/op in steady state, want <= 2 (result slices only)", got)
			}
		})
	}
}
