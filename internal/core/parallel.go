package core

import (
	"runtime"
	"sync"
	"time"

	"bilsh/internal/knn"
	"bilsh/internal/vec"
)

// QueryBatchParallel is QueryBatch fanned out over workers goroutines
// (GOMAXPROCS when workers <= 0). Results are identical to QueryBatch: one
// snapshot is pinned for the whole batch and the hierarchy median rule is
// applied batch-wide before the parallel phase. Each worker goroutine
// holds one pooled scratch for its whole share of the batch, so the
// parallel path is as allocation-free as the serial one.
func (ix *Index) QueryBatchParallel(queries *vec.Matrix, k, workers int) ([]knn.Result, []QueryStats) {
	metBatches.Inc()
	sn := ix.loadSnap()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]knn.Result, queries.N)
	stats := make([]QueryStats, queries.N)

	minCounts := make([]int, queries.N)
	switch sn.opts.ProbeMode {
	case ProbeHierarchy:
		sizes := make([]int, queries.N)
		ix.parallelFor(queries.N, workers, func(qi int, s *scratch) {
			sizes[qi] = sn.plainShortListSize(queries.Row(qi), s)
		})
		median := medianInt(sizes)
		if median < 1 {
			median = 1
		}
		for qi := range minCounts {
			if sizes[qi] < median {
				minCounts[qi] = median
			} else {
				minCounts[qi] = 1
			}
		}
	default:
		floor := sn.opts.HierMinCandidates
		if floor <= 0 {
			floor = 2 * k
		}
		for qi := range minCounts {
			minCounts[qi] = floor
		}
	}

	ix.parallelFor(queries.N, workers, func(qi int, s *scratch) {
		start := time.Now()
		q := queries.Row(qi)
		st := sn.gather(q, minCounts[qi], s)
		rankStart := time.Now()
		results[qi] = sn.rank(q, k, s)
		st.Timings.Rank = time.Since(rankStart)
		recordQuery(&st, time.Since(start)) // registry updates are atomic
		stats[qi] = st
	})
	return results, stats
}

// QueryBatchParallelPlan is QueryBatchPlan fanned out over workers
// goroutines (GOMAXPROCS when workers <= 0), with the same semantics:
// default plan matches QueryBatchParallel byte-for-byte, an explicit
// HierMinCandidates replaces the median rule, and the sizing pass never
// terminates early.
func (ix *Index) QueryBatchParallelPlan(queries *vec.Matrix, p Plan, workers int) ([]knn.Result, []PlanStats) {
	metBatches.Inc()
	sn := ix.loadSnap()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]knn.Result, queries.N)
	stats := make([]PlanStats, queries.N)
	if p.K < 1 {
		return results, stats
	}
	rp := sn.resolve(p)

	if sn.opts.ProbeMode != ProbeHierarchy || p.HierMinCandidates > 0 {
		ix.parallelFor(queries.N, workers, func(qi int, s *scratch) {
			results[qi], stats[qi] = sn.queryPlan(queries.Row(qi), &rp, s)
		})
		return results, stats
	}

	sizeRP := rp
	sizeRP.stableProbes, sizeRP.maxCandidates = 0, 0
	sizes := make([]int, queries.N)
	ix.parallelFor(queries.N, workers, func(qi int, s *scratch) {
		sizes[qi] = sn.gatherPlan(queries.Row(qi), &sizeRP, ProbeSingle, 0, s).Candidates
	})
	median := medianInt(sizes)
	if median < 1 {
		median = 1
	}
	ix.parallelFor(queries.N, workers, func(qi int, s *scratch) {
		start := time.Now()
		q := queries.Row(qi)
		minCount := 1
		if sizes[qi] < median {
			minCount = median
		}
		ps := sn.gatherPlan(q, &rp, ProbeHierarchy, minCount, s)
		rankStart := time.Now()
		results[qi] = sn.rankWith(q, rp.k, rp.rerank, s)
		ps.Timings.Rank = time.Since(rankStart)
		recordQuery(&ps.QueryStats, time.Since(start)) // registry updates are atomic
		recordPlan(&ps)
		stats[qi] = ps
	})
	return results, stats
}

// parallelFor runs body(i, s) for i in [0,n) on up to workers goroutines,
// handing each goroutine its own pooled scratch for the duration.
func (ix *Index) parallelFor(n, workers int, body func(i int, s *scratch)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := ix.getScratch()
		defer ix.putScratch(s)
		for i := 0; i < n; i++ {
			body(i, s)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := ix.getScratch()
			defer ix.putScratch(s)
			for i := range next {
				body(i, s)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
