package core

import (
	"errors"
	"reflect"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/lshtable"
	"bilsh/internal/vec"
)

// TestCompactBuildFailureLeavesIndexIntact injects a table-build failure
// partway through the compaction rebuild (via the buildTable hook) and
// verifies the published index is untouched: same live count, identical
// query results, and a subsequent Compact succeeds. This is the regression
// test for the partial-mutation bug class: a failed rebuild must never
// publish half-swapped state or leave the compaction latch held.
func TestCompactBuildFailureLeavesIndexIntact(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 3, W: 4}})
	for i := 0; i < 15; i++ {
		v := vec.Clone(data.Row(i))
		v[0] += 0.01
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 50; i < 55; i++ {
		if !ix.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	wantLen := ix.Len()

	queries := make([][]float32, 10)
	type answer struct {
		ids   []int
		dists []float64
	}
	before := make([]answer, len(queries))
	for qi := range queries {
		queries[qi] = vec.Clone(data.Row(qi * 11))
		res, _ := ix.Query(queries[qi], 5)
		before[qi] = answer{res.IDs, res.Dists}
	}

	boom := errors.New("injected table build failure")
	orig := buildTable
	defer func() { buildTable = orig }()
	calls := 0
	buildTable = func(codes []string, ids []int) (*lshtable.Table, error) {
		calls++
		if calls == 5 { // fail mid-rebuild: some groups already built
			return nil, boom
		}
		return orig(codes, ids)
	}
	if _, err := ix.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact error = %v, want injected failure", err)
	}
	if calls != 5 {
		t.Fatalf("rebuild continued after failure: %d build calls", calls)
	}
	buildTable = orig

	// The failed attempt must not have changed anything observable.
	if got := ix.Len(); got != wantLen {
		t.Fatalf("Len after failed Compact = %d, want %d", got, wantLen)
	}
	for qi := range queries {
		res, _ := ix.Query(queries[qi], 5)
		if !reflect.DeepEqual(res.IDs, before[qi].ids) || !reflect.DeepEqual(res.Dists, before[qi].dists) {
			t.Fatalf("query %d changed after failed Compact:\n got %v %v\nwant %v %v",
				qi, res.IDs, res.Dists, before[qi].ids, before[qi].dists)
		}
	}

	// The compaction latch must be free and a retry must fully succeed.
	mapping, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != wantLen || ix.N() != wantLen {
		t.Fatalf("after retry Compact Len=%d N=%d want %d", ix.Len(), ix.N(), wantLen)
	}
	deleted := 0
	for _, m := range mapping {
		if m == -1 {
			deleted++
		}
	}
	if deleted != 5 {
		t.Fatalf("retry mapping reports %d deletions, want 5", deleted)
	}
}
