package core

import (
	"bytes"
	"strings"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func TestDescribe(t *testing.T) {
	data := testData(t, 200, 12, 101)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 4,
		AutoTuneW: true, Params: lshfunc.Params{M: 4, L: 3, W: 1}}, xrand.New(102))
	if err != nil {
		t.Fatal(err)
	}
	d := ix.Describe()
	if d.N != 200 || d.Dim != 12 || d.Live != 200 || d.Groups != 4 {
		t.Fatalf("shape: %+v", d)
	}
	if d.M != 4 || d.L != 3 || d.DiskBacked {
		t.Fatalf("method: %+v", d)
	}
	var total int
	for _, s := range d.GroupSizes {
		total += s
	}
	if total != 200 {
		t.Fatalf("group sizes sum to %d", total)
	}
	if d.Items != 200*3 {
		t.Fatalf("items = %d", d.Items)
	}
	// Dynamic state shows up.
	if _, err := ix.Insert(vec.Clone(data.Row(0))); err != nil {
		t.Fatal(err)
	}
	ix.Delete(5)
	d = ix.Describe()
	if d.PendingInserts != 1 || d.PendingDeletes != 1 || d.Live != 200 {
		t.Fatalf("dynamic: %+v", d)
	}
	var buf bytes.Buffer
	if err := d.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"200 vectors", "groups=4", "pending inserts", "widths W"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
