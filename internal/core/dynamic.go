package core

import (
	"fmt"
	"time"

	"bilsh/internal/hierarchy"
	"bilsh/internal/lattice"
	"bilsh/internal/lshtable"
	"bilsh/internal/vec"
)

// Dynamic updates. The paper's evaluation is static, but a usable library
// needs inserts and deletes, so the index supports both as an overlay:
//
//   - Insert routes the new vector through level 1, appends it to an
//     overlay row store, and adds its id to per-table overlay buckets that
//     every probe consults alongside the immutable base tables.
//   - Delete tombstones an id; gathering and ranking skip tombstoned ids.
//
// The bucket hierarchies (ProbeHierarchy) are built over the base tables
// only; inserted points are still found through their exact bucket code,
// but they do not participate in coarser hierarchy levels until
// RebuildHierarchies is called. Compact folds the overlay and tombstones
// into fresh base tables.
//
// Dynamic state is intentionally not serialized: call Compact before
// WriteTo to persist a dynamic index (WriteTo refuses otherwise).

// overlayTable is one table's inserted-id buckets.
type overlayTable map[string][]int

// dynamicState holds all mutable overlay structures.
type dynamicState struct {
	extra    []vecRow               // inserted vectors, id = baseN + position
	deleted  map[int]struct{}       // tombstoned ids (base or inserted)
	overlays map[int][]overlayTable // group -> per-table overlay buckets
	stale    bool                   // hierarchies out of date
}

type vecRow []float32

// dyn lazily allocates the dynamic state.
func (ix *Index) dyn() *dynamicState {
	if ix.dynamic == nil {
		ix.dynamic = &dynamicState{
			deleted:  make(map[int]struct{}),
			overlays: make(map[int][]overlayTable),
		}
	}
	return ix.dynamic
}

// row returns the vector for any live id (base or inserted).
func (ix *Index) row(id int) []float32 {
	if id < ix.data.N {
		if ix.fetch != nil {
			return ix.fetch(id)
		}
		return ix.data.Row(id)
	}
	return ix.dynamic.extra[id-ix.data.N]
}

// Len returns the number of live (non-deleted) items.
func (ix *Index) Len() int {
	n := ix.data.N
	if ix.dynamic != nil {
		n += len(ix.dynamic.extra)
		n -= len(ix.dynamic.deleted)
	}
	return n
}

// isDeleted reports whether id is tombstoned.
func (ix *Index) isDeleted(id int) bool {
	if ix.dynamic == nil {
		return false
	}
	_, ok := ix.dynamic.deleted[id]
	return ok
}

// Insert adds v to the index and returns its id. The id is stable until
// the next Compact.
func (ix *Index) Insert(v []float32) (int, error) {
	if len(v) != ix.data.D {
		return 0, fmt.Errorf("core: Insert got dim %d, want %d", len(v), ix.data.D)
	}
	start := time.Now()
	defer func() {
		metInserts.Inc()
		metInsertSeconds.Observe(time.Since(start).Seconds())
	}()
	d := ix.dyn()
	id := ix.data.N + len(d.extra)
	d.extra = append(d.extra, vecRow(vec.Clone(v)))

	gi := ix.GroupOf(v)
	g := ix.groups[gi]
	g.members = append(g.members, id)

	tables, ok := d.overlays[gi]
	if !ok {
		tables = make([]overlayTable, ix.opts.Params.L)
		for t := range tables {
			tables[t] = make(overlayTable)
		}
		d.overlays[gi] = tables
	}
	proj := make([]float64, ix.opts.Params.M)
	for t := 0; t < ix.opts.Params.L; t++ {
		g.fam.Project(t, v, proj)
		key := lattice.Key(g.lat.Decode(proj))
		tables[t][key] = append(tables[t][key], id)
	}
	if ix.opts.ProbeMode == ProbeHierarchy {
		d.stale = true
	}
	return id, nil
}

// Delete tombstones an id. It reports whether the id was live.
func (ix *Index) Delete(id int) bool {
	total := ix.data.N
	if ix.dynamic != nil {
		total += len(ix.dynamic.extra)
	}
	if id < 0 || id >= total || ix.isDeleted(id) {
		metDeleteMisses.Inc()
		return false
	}
	ix.dyn().deleted[id] = struct{}{}
	metDeletes.Inc()
	return true
}

// HierarchyStale reports whether inserted points are missing from the
// bucket hierarchies (only meaningful for ProbeHierarchy).
func (ix *Index) HierarchyStale() bool {
	return ix.dynamic != nil && ix.dynamic.stale
}

// overlayBucket returns the inserted ids sharing a bucket key, or nil.
func (ix *Index) overlayBucket(gi, table int, key string) []int {
	if ix.dynamic == nil {
		return nil
	}
	tables, ok := ix.dynamic.overlays[gi]
	if !ok {
		return nil
	}
	return tables[table][key]
}

// overlayBucketBytes is overlayBucket keyed by the scratch key buffer; the
// map lookup via string(key) compiles without a conversion allocation.
func (ix *Index) overlayBucketBytes(gi, table int, key []byte) []int {
	if ix.dynamic == nil {
		return nil
	}
	tables, ok := ix.dynamic.overlays[gi]
	if !ok {
		return nil
	}
	return tables[table][string(key)]
}

// Compact folds inserts and deletes into fresh base structures: a new data
// matrix, re-grouped members, rebuilt tables and hierarchies. Ids are
// remapped densely in the order (surviving base rows, surviving inserts);
// the returned slice maps old ids to new ids (-1 for deleted).
func (ix *Index) Compact() ([]int, error) {
	start := time.Now()
	mapping, err := ix.compact()
	if err != nil {
		metCompactErrors.Inc()
		return nil, err
	}
	metCompacts.Inc()
	metCompactSeconds.Observe(time.Since(start).Seconds())
	return mapping, nil
}

func (ix *Index) compact() ([]int, error) {
	if ix.dynamic == nil {
		// Nothing to fold; identity mapping.
		m := make([]int, ix.data.N)
		for i := range m {
			m[i] = i
		}
		return m, nil
	}
	d := ix.dynamic
	total := ix.data.N + len(d.extra)
	mapping := make([]int, total)
	live := 0
	for id := 0; id < total; id++ {
		if _, dead := d.deleted[id]; dead {
			mapping[id] = -1
			continue
		}
		mapping[id] = live
		live++
	}
	if live == 0 {
		return nil, fmt.Errorf("core: Compact would empty the index")
	}

	fresh := vec.NewMatrix(live, ix.data.D)
	for id := 0; id < total; id++ {
		if mapping[id] < 0 {
			continue
		}
		copy(fresh.Row(mapping[id]), ix.row(id))
	}

	// Re-group: membership is recomputed by routing, which also covers
	// inserted points, and per-group tables are rebuilt from scratch with
	// the existing hash families (projections are preserved, so queries
	// keep behaving identically for surviving points).
	members := make([][]int, len(ix.groups))
	for id := 0; id < live; id++ {
		gi := ix.GroupOf(fresh.Row(id))
		members[gi] = append(members[gi], id)
	}
	proj := make([]float64, ix.opts.Params.M)
	for gi, g := range ix.groups {
		g.members = members[gi]
		for t := range g.tables {
			codes := make([]string, len(g.members))
			ids := make([]int, len(g.members))
			for i, id := range g.members {
				g.fam.Project(t, fresh.Row(id), proj)
				codes[i] = lattice.Key(g.lat.Decode(proj))
				ids[i] = id
			}
			tab, err := lshtable.Build(codes, ids)
			if err != nil {
				return nil, fmt.Errorf("core: Compact group %d table %d: %w", gi, t, err)
			}
			g.tables[t] = tab
		}
	}
	ix.data = fresh
	ix.fetch = nil // a compacted index is fully in memory
	ix.dynamic = nil
	if ix.opts.ProbeMode == ProbeHierarchy {
		if err := ix.RebuildHierarchies(); err != nil {
			return nil, err
		}
	}
	return mapping, nil
}

// RebuildHierarchies reconstructs the bucket hierarchies over the current
// base tables. It is called by Compact; calling it directly is only useful
// after external table surgery, and it cannot fold overlay inserts (those
// require Compact), so the stale flag persists while inserts are pending.
func (ix *Index) RebuildHierarchies() error {
	if ix.opts.ProbeMode != ProbeHierarchy {
		return nil
	}
	for gi, g := range ix.groups {
		switch lat := g.lat.(type) {
		case *lattice.ZM:
			for t, tab := range g.tables {
				h, err := hierarchy.NewMorton(tab, ix.opts.Params.M, ix.opts.MortonBits)
				if err != nil {
					return fmt.Errorf("core: group %d morton hierarchy: %w", gi, err)
				}
				g.mortonH[t] = h
			}
		default:
			for t, tab := range g.tables {
				h, err := hierarchy.NewE8Tree(tab, lat)
				if err != nil {
					return fmt.Errorf("core: group %d lattice hierarchy: %w", gi, err)
				}
				g.e8H[t] = h
			}
		}
	}
	if ix.dynamic != nil {
		ix.dynamic.stale = len(ix.dynamic.extra) > 0
	}
	return nil
}
