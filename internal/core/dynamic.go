package core

import (
	"errors"
	"fmt"
	"time"

	"bilsh/internal/lattice"
	"bilsh/internal/lshtable"
	"bilsh/internal/vec"
)

// Dynamic updates. The paper's evaluation is static, but a usable service
// needs inserts and deletes, so the index supports both as an overlay on
// top of the immutable base structures (see memtable.go and snapshot.go):
//
//   - Insert routes the new vector through level 1, writes it into the
//     active memtable and adds its id to per-(group, table) overlay buckets
//     that every probe consults alongside the immutable base tables. When
//     the memtable reaches Options.MemtableThreshold rows it is sealed into
//     a frozen segment and a fresh memtable is started.
//   - Delete tombstones an id (base or overlay); gathering and ranking skip
//     tombstoned ids.
//   - Compact folds every overlay row and tombstone into fresh base
//     structures built off to the side, then swaps them in with one
//     snapshot publication. Readers and writers keep running throughout.
//
// The bucket hierarchies (ProbeHierarchy) are built over the base tables
// only; inserted points are still found through their exact bucket code,
// but they do not participate in coarser hierarchy levels until Compact
// folds them in.
//
// Overlay state is intentionally not serialized: call Compact before
// WriteTo to persist a dynamic index (WriteTo refuses otherwise).

// ErrCompactBusy is returned when a Compact is requested while another one
// is still running; the in-flight compaction is unaffected.
var ErrCompactBusy = errors.New("core: compaction already in progress")

// ErrHammingStatic is returned by Insert and Compact on a MetricHamming
// index: the overlay and rebuild paths project through the per-group
// Euclidean hash family, which Hamming groups do not carry. Delete (a pure
// tombstone) still works; rebuild the index to fold deletes or add rows.
var ErrHammingStatic = errors.New("core: Hamming indexes are static; rebuild to add rows or fold deletes")

// buildTable is lshtable.Build, indirected so tests can inject a build
// failure into the compaction rebuild and verify the old index state
// survives intact.
var buildTable = lshtable.Build

// memtableCap returns the configured memtable capacity, defaulting when the
// option is unset (e.g. on an index loaded from disk, where dynamic knobs
// are not part of the wire format).
func (ix *Index) memtableCap() int {
	if ix.opts.MemtableThreshold > 0 {
		return ix.opts.MemtableThreshold
	}
	return defaultMemtableThreshold
}

// sealLocked freezes the active memtable (if any) into a new frozen
// segment and publishes a snapshot with a fresh memtable ready for the
// next insert. Caller holds ix.mu. The returned snapshot is the published
// one. autoCompact suppresses the compaction trigger when sealing on
// behalf of Compact itself.
func (ix *Index) sealLocked(sn *snapshot, autoCompact bool) *snapshot {
	next := sn.clone()
	if sn.mem != nil && sn.mem.len() > 0 {
		frozen := make([]*segment, len(sn.frozen), len(sn.frozen)+1)
		copy(frozen, sn.frozen)
		next.frozen = append(frozen, sn.mem.freeze())
		next.frozenN = sn.frozenN + sn.mem.len()
		metSeals.Inc()
	}
	idBase := next.data.N + next.frozenN
	capacity := ix.memtableCap()
	next.mem = newMemtable(idBase, capacity, ix.opts.Params.L)
	next.dead = next.dead.grown(idBase + capacity)
	ix.publish(next)
	if autoCompact && ix.opts.AutoCompactSegments > 0 &&
		len(next.frozen) >= ix.opts.AutoCompactSegments {
		ix.CompactAsync() // ErrCompactBusy just means one is already running
	}
	return next
}

// Insert adds v to the index and returns its id. The id is stable until
// the next Compact, which returns the id remapping. Insert is safe to call
// concurrently with queries and other mutators.
func (ix *Index) Insert(v []float32) (int, error) {
	if ix.opts.Metric == MetricHamming {
		return 0, ErrHammingStatic
	}
	if err := CheckVector(ix.Dim(), v); err != nil {
		return 0, err
	}
	start := time.Now()

	ix.mu.Lock()
	sn := ix.loadSnap()
	if sn.mem == nil || sn.mem.full() {
		sn = ix.sealLocked(sn, true)
	}
	m := sn.mem
	n := m.len()
	id := m.idBase + n

	gi := sn.groupOf(v)
	m.rows[n] = vecRow(vec.Clone(v))
	m.groupOf[n] = int32(gi)

	g := sn.groups[gi]
	if len(ix.insProj) < ix.opts.Params.M {
		ix.insProj = make([]float64, ix.opts.Params.M)
	}
	proj := ix.insProj
	code, key := ix.insCode, ix.insKey
	for t := 0; t < ix.opts.Params.L; t++ {
		g.fam.Project(t, v, proj)
		code = g.lat.DecodeInto(code[:0], proj)
		key = appendOverlayKey(key[:0], gi, t)
		key = lattice.AppendKey(key, code)
		m.addToBucket(key, int32(id))
	}
	ix.insCode, ix.insKey = code, key
	// Publish the row last: a reader that observes the new count also
	// observes the fully written row and buckets (atomic store/load pair).
	m.n.Store(int32(n + 1))
	ix.mu.Unlock()

	metInserts.Inc()
	metInsertSeconds.Observe(time.Since(start).Seconds())
	return id, nil
}

// Delete tombstones an id. It reports whether the id was live. Safe to
// call concurrently with queries and other mutators.
func (ix *Index) Delete(id int) bool {
	ix.mu.Lock()
	sn := ix.loadSnap()
	if id < 0 || id >= sn.total() || sn.isDeleted(id) {
		ix.mu.Unlock()
		metDeleteMisses.Inc()
		return false
	}
	if sn.dead == nil {
		// First delete on a fully static snapshot: attach a tombstone set.
		next := sn.clone()
		next.dead = newTombstones(sn.idCapacity())
		ix.publish(next)
		sn = next
	}
	sn.dead.set(id)
	ix.mu.Unlock()
	metDeletes.Inc()
	return true
}

// Len returns the number of live (non-deleted) items.
func (ix *Index) Len() int { return ix.loadSnap().live() }

// row returns the vector for any id in the dense id space (test hook; the
// query path uses the snapshot directly).
func (ix *Index) row(id int) []float32 { return ix.loadSnap().row(id) }

// isDeleted reports whether id is tombstoned (test hook).
func (ix *Index) isDeleted(id int) bool { return ix.loadSnap().isDeleted(id) }

// HierarchyStale reports whether inserted points are missing from the
// bucket hierarchies (only meaningful for ProbeHierarchy). Hierarchies
// cover the base plane only, so this is equivalent to "overlay rows
// exist"; Compact folds them in and clears the condition.
func (ix *Index) HierarchyStale() bool {
	return ix.opts.ProbeMode == ProbeHierarchy && ix.loadSnap().hasOverlay()
}

// overlayBucket returns the overlay ids sharing a bucket key, oldest
// first (equivalence-test oracle; the query path uses the snapshot's
// addOverlayCandidates).
func (ix *Index) overlayBucket(gi, table int, key string) []int {
	sn := ix.loadSnap()
	composed := string(appendOverlayKey(nil, gi, table)) + key
	var out []int
	for _, seg := range sn.frozen {
		for _, id := range seg.buckets[composed] {
			out = append(out, int(id))
		}
	}
	if sn.mem != nil {
		for _, id := range sn.mem.bucket([]byte(composed)) {
			out = append(out, int(id))
		}
	}
	return out
}

// Compact folds inserts and deletes into fresh base structures: a new data
// matrix, re-grouped members, rebuilt tables and hierarchies. Ids are
// remapped densely in insertion order over the surviving rows; the
// returned slice maps old ids to new ids (-1 for deleted).
//
// Compact never blocks readers and barely blocks writers: it seals the
// overlay under the index mutex, rebuilds off to the side with no locks
// held, then swaps the fresh base in under the mutex again, re-basing any
// rows inserted meanwhile. On error the index is untouched. At most one
// compaction runs at a time; concurrent calls fail fast with
// ErrCompactBusy.
func (ix *Index) Compact() ([]int, error) {
	if ix.opts.Metric == MetricHamming {
		return nil, ErrHammingStatic
	}
	if !ix.compactMu.TryLock() {
		return nil, ErrCompactBusy
	}
	defer ix.compactMu.Unlock()
	return ix.compactLocked()
}

// CompactAsync starts a Compact in the background and returns immediately.
// It fails fast with ErrCompactBusy if a compaction is already running;
// the background result is observable through metrics and the snapshot
// epoch. The id remapping is discarded, so it is only appropriate for
// callers that treat ids as unstable across compactions (see
// docs/concurrency.md).
func (ix *Index) CompactAsync() error {
	if ix.opts.Metric == MetricHamming {
		return ErrHammingStatic
	}
	if !ix.compactMu.TryLock() {
		return ErrCompactBusy
	}
	go func() {
		defer ix.compactMu.Unlock()
		ix.compactLocked() //nolint:errcheck // reported via metrics
	}()
	return nil
}

// compactLocked runs one compaction; caller holds compactMu.
func (ix *Index) compactLocked() ([]int, error) {
	start := time.Now()
	mapping, err := ix.compact()
	if err != nil {
		metCompactErrors.Inc()
		return nil, err
	}
	metCompacts.Inc()
	metCompactSeconds.Observe(time.Since(start).Seconds())
	return mapping, nil
}

func (ix *Index) compact() ([]int, error) {
	// Phase 1 (under mu, bounded work): seal the overlay so the source view
	// is fully immutable, and plan the id remap from the tombstones.
	ix.mu.Lock()
	src := ix.loadSnap()
	if !src.hasOverlay() && src.dead.count() == 0 {
		// Nothing to fold; identity mapping (disk-backed rows stay on disk).
		ix.mu.Unlock()
		m := make([]int, src.data.N)
		for i := range m {
			m[i] = i
		}
		return m, nil
	}
	if src.mem != nil && src.mem.len() > 0 {
		src = ix.sealLocked(src, false)
	}
	srcTotal := src.data.N + src.frozenN
	srcFrozen := len(src.frozen)
	mapping := make([]int, srcTotal)
	live := 0
	for id := 0; id < srcTotal; id++ {
		if src.isDeleted(id) {
			mapping[id] = -1
			continue
		}
		mapping[id] = live
		live++
	}
	ix.mu.Unlock()
	if live == 0 {
		return nil, fmt.Errorf("core: Compact would empty the index")
	}

	// Phase 2 (no locks): build the replacement base plane off to the side.
	// Concurrent queries keep hitting the old snapshot; concurrent inserts
	// land in the post-seal memtable and are re-based in phase 3.
	fresh := vec.NewMatrix(live, src.data.D)
	for id := 0; id < srcTotal; id++ {
		if mapping[id] < 0 {
			continue
		}
		copy(fresh.Row(mapping[id]), src.row(id))
	}

	// Re-group: membership is recomputed by routing, which also covers
	// inserted points, and per-group tables are rebuilt from scratch with
	// the existing hash families (projections are preserved, so queries
	// keep behaving identically for surviving points).
	members := make([][]int, len(src.groups))
	for id := 0; id < live; id++ {
		gi := src.groupOf(fresh.Row(id))
		members[gi] = append(members[gi], id)
	}
	groups := make([]*group, len(src.groups))
	proj := make([]float64, ix.opts.Params.M)
	for gi, old := range src.groups {
		g := &group{members: members[gi], fam: old.fam, lat: old.lat, w: old.w}
		g.tables = make([]*lshtable.Table, len(old.tables))
		for t := range g.tables {
			codes := make([]string, len(g.members))
			ids := make([]int, len(g.members))
			for i, id := range g.members {
				g.fam.Project(t, fresh.Row(id), proj)
				codes[i] = lattice.Key(g.lat.Decode(proj))
				ids[i] = id
			}
			tab, err := buildTable(codes, ids)
			if err != nil {
				return nil, fmt.Errorf("core: Compact group %d table %d: %w", gi, t, err)
			}
			g.tables[t] = tab
		}
		groups[gi] = g
	}
	if ix.opts.ProbeMode == ProbeHierarchy {
		if err := buildHierarchies(groups, ix.opts); err != nil {
			return nil, err
		}
	}
	// Requantize the surviving rows (still off-lock: one streaming pass
	// over the fresh matrix). Overlay inserts that only ranked exactly
	// before now join the quantized scan.
	quant := buildQuant(ix.opts, fresh, nil)

	// Phase 3 (under mu, bounded work): swap the fresh base in. Rows
	// inserted or segments sealed during phase 2 carry ids >= srcTotal;
	// shift them down by delta so the id space stays dense, and carry every
	// tombstone over (including deletes that raced the rebuild).
	ix.mu.Lock()
	defer ix.mu.Unlock()
	cur := ix.loadSnap()
	delta := live - srcTotal

	next := &snapshot{
		data: fresh, quant: quant, tree: src.tree, km: src.km, groups: groups,
	}
	for _, seg := range cur.frozen[srcFrozen:] {
		next.frozen = append(next.frozen, seg.shifted(delta))
		next.frozenN += len(seg.rows)
	}
	if cur.mem != nil {
		next.mem = cur.mem.shifted(delta)
	}
	next.dead = newTombstones(next.idCapacity())
	for id := 0; id < srcTotal; id++ {
		if mapping[id] >= 0 && cur.isDeleted(id) {
			// Deleted while the rebuild ran: the row made it into the new
			// base, so tombstone it there and report it gone.
			next.dead.set(mapping[id])
			mapping[id] = -1
		}
	}
	for id := srcTotal; id < cur.total(); id++ {
		if cur.isDeleted(id) {
			next.dead.set(id + delta)
		}
	}
	ix.publish(next)
	return mapping, nil
}

// RebuildHierarchies reconstructs the bucket hierarchies over the current
// base tables. Compact builds hierarchies as part of its rebuild; calling
// this directly is only useful after external table surgery, and it cannot
// fold overlay inserts (those require Compact), so HierarchyStale persists
// while overlay rows are pending.
func (ix *Index) RebuildHierarchies() error {
	if ix.opts.ProbeMode != ProbeHierarchy {
		return nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	sn := ix.loadSnap()
	groups := make([]*group, len(sn.groups))
	for i, g := range sn.groups {
		cp := *g
		groups[i] = &cp
	}
	if err := buildHierarchies(groups, ix.opts); err != nil {
		return err
	}
	next := sn.clone()
	next.groups = groups
	ix.publish(next)
	return nil
}
