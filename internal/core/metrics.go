package core

import (
	"time"

	"bilsh/internal/metrics"
)

// Process-wide observability for the hot path. Every Query/QueryBatch/
// QueryBatchParallel call aggregates its QueryStats into the default
// metrics registry so a running server (GET /metrics) or an experiment
// run (bilsh exp -metrics) can see where time goes without any per-call
// plumbing. All instruments are resolved once at package init; the
// per-query cost is a handful of atomic adds.
//
// The four stages mirror the pipeline the paper times in Section V:
//
//	route  — level-1 RP-tree (or k-means) descent to a group
//	probe  — p-stable projections, lattice decoding, probe generation
//	scan   — bucket lookups and candidate-set union (short-list gather)
//	rank   — exact distances over the short list and the top-k merge
//
// docs/metrics.md is the catalogue of every name exported here.
var (
	metQueries = metrics.Default().Counter(
		"bilsh_core_queries_total", "Queries answered (single, batch, and parallel-batch paths).")
	metBatches = metrics.Default().Counter(
		"bilsh_core_batches_total", "QueryBatch/QueryBatchParallel calls.")
	metCandLists = metrics.Default().Counter(
		"bilsh_core_candidate_lists_total", "CandidateList calls (external short-list engines).")
	metInserts = metrics.Default().Counter(
		"bilsh_core_inserts_total", "Successful Insert calls.")
	metDeletes = metrics.Default().Counter(
		"bilsh_core_deletes_total", "Delete calls that tombstoned a live id.")
	metDeleteMisses = metrics.Default().Counter(
		"bilsh_core_delete_misses_total", "Delete calls for ids that were absent or already dead.")
	metCompacts = metrics.Default().Counter(
		"bilsh_core_compactions_total", "Successful Compact calls.")
	metCompactErrors = metrics.Default().Counter(
		"bilsh_core_compaction_errors_total", "Compact calls that returned an error.")
	metSeals = metrics.Default().Counter(
		"bilsh_core_memtable_seals_total", "Memtable seals into frozen overlay segments.")
	metEpoch = metrics.Default().Gauge(
		"bilsh_core_snapshot_epoch", "Current snapshot epoch (monotone across publications).")
	metHierarchyClimbs = metrics.Default().Counter(
		"bilsh_core_hierarchy_climbs_total", "Queries that climbed above hierarchy level 0.")

	metQuerySeconds = metrics.Default().Histogram(
		"bilsh_core_query_seconds", "End-to-end per-query latency.", metrics.DefLatencyBuckets)
	metStageRoute = stageHist("route")
	metStageProbe = stageHist("probe")
	metStageScan  = stageHist("scan")
	metStageRank  = stageHist("rank")

	metCandidates = metrics.Default().Histogram(
		"bilsh_core_query_candidates", "Distinct short-list candidates per query (|A(v)|).",
		metrics.DefCountBuckets)
	metScanned = metrics.Default().Histogram(
		"bilsh_core_query_scanned", "Bucket entries scanned per query before deduplication.",
		metrics.DefCountBuckets)
	metProbes = metrics.Default().Histogram(
		"bilsh_core_query_probes", "Bucket lookups per query.", metrics.DefCountBuckets)

	metInsertSeconds = metrics.Default().Histogram(
		"bilsh_core_insert_seconds", "Insert latency.", metrics.DefLatencyBuckets)
	metCompactSeconds = metrics.Default().Histogram(
		"bilsh_core_compact_seconds", "Compact latency.", metrics.DefLatencyBuckets)

	// Adaptive-plan instruments (see docs/adaptive.md). Every query runs
	// under a plan — the default plan resolves to the built budgets — so
	// the resolved-tables histogram shows the live budget mix, and the
	// early-termination counter how often the plateau policy saved work.
	metAdaptiveEarlyTerm = metrics.Default().Counter(
		"bilsh_adaptive_early_terminations_total",
		"Queries whose probe loop stopped before the resolved budget (StableProbes or MaxCandidates trigger).")
	metAdaptiveResolvedTables = metrics.Default().Histogram(
		"bilsh_adaptive_resolved_tables",
		"Table budget each query's plan resolved to (defaults, overrides and TargetRecall SLOs combined).",
		metrics.DefCountBuckets)
)

func stageHist(stage string) *metrics.Histogram {
	return metrics.Default().Histogram(
		"bilsh_core_stage_seconds",
		"Per-query time spent in each pipeline stage (route, probe, scan, rank).",
		metrics.DefLatencyBuckets, metrics.L("stage", stage))
}

// recordQuery aggregates one answered query.
func recordQuery(st *QueryStats, total time.Duration) {
	metQueries.Inc()
	metQuerySeconds.Observe(total.Seconds())
	recordStages(st)
}

// recordPlan aggregates the plan-level record of one answered query.
func recordPlan(ps *PlanStats) {
	metAdaptiveResolvedTables.Observe(float64(ps.ResolvedTables))
	if ps.TerminatedEarly {
		metAdaptiveEarlyTerm.Inc()
	}
}

// recordStages aggregates the stage timings and work counts of one
// gathered (and possibly ranked) query.
func recordStages(st *QueryStats) {
	metStageRoute.Observe(st.Timings.Route.Seconds())
	metStageProbe.Observe(st.Timings.Probe.Seconds())
	metStageScan.Observe(st.Timings.Scan.Seconds())
	if st.Timings.Rank > 0 {
		metStageRank.Observe(st.Timings.Rank.Seconds())
	}
	metCandidates.Observe(float64(st.Candidates))
	metScanned.Observe(float64(st.Scanned))
	metProbes.Observe(float64(st.Probes))
	if st.HierarchyLevel > 0 {
		metHierarchyClimbs.Inc()
	}
}
