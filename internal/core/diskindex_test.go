package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func diskRoundTrip(t *testing.T, ix *Index) *DiskIndex {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ix.disk")
	if err := ix.SaveDisk(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { di.Close() })
	return di
}

func TestDiskIndexMatchesInMemory(t *testing.T) {
	data := testData(t, 400, 16, 71)
	queries := testData(t, 20, 16, 72)
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 4, AutoTuneW: true,
			Params: lshfunc.Params{M: 4, L: 3, W: 1}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionNone, ProbeMode: ProbeMulti, Probes: 15,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
	} {
		ix, err := Build(data, opts, xrand.New(73))
		if err != nil {
			t.Fatal(err)
		}
		di := diskRoundTrip(t, ix)
		if di.N() != ix.N() || di.Dim() != ix.Dim() || di.NumGroups() != ix.NumGroups() {
			t.Fatal("disk index shape differs")
		}
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			r1, s1 := ix.Query(q, 6)
			r2, s2 := di.Query(q, 6)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("probe=%v query %d: disk results differ", opts.ProbeMode, qi)
			}
			if s1.Candidates != s2.Candidates {
				t.Fatalf("probe=%v query %d: disk stats differ", opts.ProbeMode, qi)
			}
		}
		// Parallel reads against the same file handle must be safe.
		pr, _ := di.QueryBatchParallel(queries, 6, 4)
		sr, _ := ix.QueryBatch(queries, 6)
		if !reflect.DeepEqual(pr, sr) {
			t.Fatal("parallel disk results differ")
		}
	}
}

func TestDiskIndexExactKNN(t *testing.T) {
	data := testData(t, 200, 8, 74)
	ix, err := Build(data, Options{Partitioner: PartitionNone,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(75))
	if err != nil {
		t.Fatal(err)
	}
	di := diskRoundTrip(t, ix)
	q := data.Row(9)
	if got := di.ExactKNN(q, 3); got.IDs[0] != 9 {
		t.Fatalf("disk ExactKNN = %v", got.IDs)
	}
}

func TestDiskIndexInsertAndCompact(t *testing.T) {
	data := testData(t, 150, 8, 76)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 3,
		Params: lshfunc.Params{M: 4, L: 3, W: 5}}, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	di := diskRoundTrip(t, ix)
	v := vec.Clone(data.Row(4))
	v[0] += 0.001
	id, err := di.Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := di.Query(v, 1)
	if len(res.IDs) == 0 || res.IDs[0] != id {
		t.Fatalf("inserted point not found on disk index: %v", res.IDs)
	}
	// Re-serializing with pending inserts must fail; Compact materializes.
	if err := di.SaveDisk(filepath.Join(t.TempDir(), "dirty.disk")); err == nil {
		t.Fatal("dirty disk index must refuse re-serialization")
	}
	if _, err := di.Compact(); err != nil {
		t.Fatal(err)
	}
	// After Compact the index is in-memory and serializable again.
	if err := di.SaveDisk(filepath.Join(t.TempDir(), "clean.disk")); err != nil {
		t.Fatal(err)
	}
}

func TestDiskIndexResaveSemantics(t *testing.T) {
	data := testData(t, 100, 8, 78)
	ix, err := Build(data, Options{Partitioner: PartitionNone,
		Params: lshfunc.Params{M: 4, L: 1, W: 2}}, xrand.New(79))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// A legacy (v2) disk index fetches rows one at a time via ReadAt; it
	// cannot be re-serialized directly — WriteDiskTo must refuse rather
	// than write an empty payload.
	v2Path := filepath.Join(dir, "ix.v2")
	f, err := os.Create(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.writeDiskV2To(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	legacy, err := OpenDisk(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if err := legacy.SaveDisk(filepath.Join(dir, "copy.disk")); err == nil {
		t.Fatal("legacy disk-backed index must refuse direct re-serialization")
	}

	// A paged (v3) index addresses its rows through the mapping, so a
	// clean one CAN re-save; the copy must open and query identically.
	di := diskRoundTrip(t, ix)
	copyPath := filepath.Join(dir, "copy.v3")
	if err := di.SaveDisk(copyPath); err != nil {
		t.Fatalf("paged disk index re-save: %v", err)
	}
	di2, err := OpenDisk(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	defer di2.Close()
	q := data.Row(3)
	r1, _ := di.Query(q, 5)
	r2, _ := di2.Query(q, 5)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("re-saved paged index queries differently")
	}
}

func TestOpenDiskRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("definitely not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(bad); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := OpenDisk(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must be rejected")
	}
}

func TestOpenDiskRejectsTruncatedPayload(t *testing.T) {
	data := testData(t, 120, 8, 80)
	ix, err := Build(data, Options{Partitioner: PartitionNone,
		Params: lshfunc.Params{M: 4, L: 1, W: 2}}, xrand.New(81))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trunc.disk")
	if err := ix.SaveDisk(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("truncated payload must be rejected at open")
	}
}
