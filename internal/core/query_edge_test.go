package core

import (
	"math"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// TestQueryDegenerateK: the public query surface must treat k < 1 as "ask
// for nothing, get nothing" — empty results, never a panic — on every
// entry point, for every probe mode.
func TestQueryDegenerateK(t *testing.T) {
	data := testData(t, 200, 16, 4)
	for _, mode := range []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy} {
		opts := Options{ProbeMode: mode, Probes: 8,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}}
		ix, err := Build(data, opts, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, -1} {
			res, _ := ix.Query(data.Row(0), k)
			if len(res.IDs) != 0 || len(res.Dists) != 0 {
				t.Errorf("mode %v: Query(k=%d) returned %d results", mode, k, len(res.IDs))
			}
			if r := ix.ExactKNN(data.Row(0), k); len(r.IDs) != 0 {
				t.Errorf("mode %v: ExactKNN(k=%d) returned %d results", mode, k, len(r.IDs))
			}
			batch, stats := ix.QueryBatch(data, k)
			if len(batch) != data.N || len(stats) != data.N {
				t.Fatalf("mode %v: QueryBatch(k=%d) shape %d/%d, want %d", mode, k, len(batch), len(stats), data.N)
			}
			for qi, r := range batch {
				if len(r.IDs) != 0 {
					t.Fatalf("mode %v: QueryBatch(k=%d) query %d returned %d results", mode, k, qi, len(r.IDs))
				}
			}
		}
	}
}

// TestQueryKExceedsN: asking for more neighbors than the index holds must
// return at most n results, sorted, NaN-free and without duplicate ids.
func TestQueryKExceedsN(t *testing.T) {
	data := testData(t, 60, 12, 9)
	opts := Options{Params: lshfunc.Params{M: 4, L: 3, W: 1e9}} // giant W: all rows collide
	ix, err := Build(data, opts, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	res, _ := ix.Query(data.Row(0), data.N+50)
	if len(res.IDs) != data.N {
		t.Fatalf("got %d results, want all %d rows", len(res.IDs), data.N)
	}
	seen := make(map[int]bool, len(res.IDs))
	for i, id := range res.IDs {
		if seen[id] {
			t.Errorf("duplicate id %d in result", id)
		}
		seen[id] = true
		if math.IsNaN(res.Dists[i]) {
			t.Errorf("NaN distance at rank %d", i)
		}
		if i > 0 && res.Dists[i] < res.Dists[i-1] {
			t.Errorf("distances not sorted at rank %d: %v < %v", i, res.Dists[i], res.Dists[i-1])
		}
	}
}
