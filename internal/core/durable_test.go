package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"bilsh/internal/durable"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func durableOpts() Options {
	return Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 3, W: 4}}
}

// durableBase builds the deterministic base index the durable tests seed
// their data dirs with (Build is deterministic for a fixed seed, so every
// call returns an identical index — including hash families).
func durableBase(t *testing.T) (*Index, *vec.Matrix) {
	t.Helper()
	data := testData(t, 200, 8, 61)
	ix, err := Build(data, durableOpts(), xrand.New(62))
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

// applyOps drives the same mutation sequence against any mutable index.
func applyOps(t *testing.T, ins func([]float32) (int, error), del func(int) bool, data *vec.Matrix) []int {
	t.Helper()
	var ids []int
	for i := 0; i < 30; i++ {
		v := vec.Clone(data.Row(i % data.N))
		v[0] += float32(i) * 0.01
		id, err := ins(v)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range []int{3, 7, ids[0], ids[5]} {
		if !del(id) {
			t.Fatalf("delete of live id %d reported false", id)
		}
	}
	return ids
}

func TestDurableSurvivesCrash(t *testing.T) {
	base, data := durableBase(t)
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if d.Recovery.FromCheckpoint || d.Recovery.Gen != 1 {
		t.Fatalf("fresh dir recovery %+v", d.Recovery)
	}
	applyOps(t, d.Insert, d.Delete, data)
	wantLen := d.Len()
	wantRes, _ := d.Query(data.Row(0), 5)

	// Crash: no Close, no checkpoint. Reopen against a fresh copy of the
	// base (the one above was mutated through the durable wrapper).
	base2, _ := durableBase(t)
	d2, err := OpenDurable(dir, DurableOptions{Base: base2, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Recovery.Replayed != 34 { // 30 inserts + 4 deletes
		t.Fatalf("replayed %d records, want 34 (%+v)", d2.Recovery.Replayed, d2.Recovery)
	}
	if d2.Len() != wantLen {
		t.Fatalf("recovered Len %d, want %d", d2.Len(), wantLen)
	}
	gotRes, _ := d2.Query(data.Row(0), 5)
	if len(gotRes.IDs) != len(wantRes.IDs) {
		t.Fatalf("recovered query returned %v, want %v", gotRes.IDs, wantRes.IDs)
	}
	for i := range wantRes.IDs {
		if gotRes.IDs[i] != wantRes.IDs[i] {
			t.Fatalf("recovered query diverged: %v vs %v", gotRes.IDs, wantRes.IDs)
		}
	}
}

// TestDurableRecoveryByteIdentical is the strongest equivalence check:
// compacting the crash-recovered index must produce byte-identical
// serialization to building fresh, applying the same ops directly, and
// compacting. Both paths see the same rows in the same order with the
// same hash families, and Compact is deterministic.
func TestDurableRecoveryByteIdentical(t *testing.T) {
	base, data := durableBase(t)
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d.Insert, d.Delete, data)
	// Crash; recover; fold.
	base2, _ := durableBase(t)
	d2, err := OpenDurable(dir, DurableOptions{Base: base2, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var recovered bytes.Buffer
	if _, err := d2.WriteTo(&recovered); err != nil {
		t.Fatal(err)
	}

	// The same ops applied directly to a fresh build, then compacted.
	ref, _ := durableBase(t)
	applyOps(t, ref.Insert, ref.Delete, data)
	if _, err := ref.Compact(); err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := ref.WriteTo(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered.Bytes(), direct.Bytes()) {
		t.Fatalf("recovered+compacted index (%d bytes) differs from direct+compacted (%d bytes)",
			recovered.Len(), direct.Len())
	}
}

func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	base, data := durableBase(t)
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d.Insert, d.Delete, data)
	walPath := filepath.Join(dir, walFileName)
	before, _ := os.Stat(walPath)
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("checkpoint did not truncate the WAL (%d -> %d bytes)", before.Size(), after.Size())
	}
	if d.Gen() != 2 {
		t.Fatalf("generation after checkpoint = %d, want 2", d.Gen())
	}
	wantLen := d.Len()

	// Post-checkpoint mutations land in the new-generation log.
	probe := vec.Clone(data.Row(0))
	probe[0] += 0.001
	id, err := d.Insert(probe)
	if err != nil {
		t.Fatal(err)
	}
	// Crash and recover purely from the checkpoint + short WAL; the base
	// index is no longer needed.
	d2, err := OpenDurable(dir, DurableOptions{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.Recovery.FromCheckpoint || d2.Recovery.Gen != 2 || d2.Recovery.Replayed != 1 {
		t.Fatalf("recovery %+v, want checkpoint gen 2 with 1 replayed record", d2.Recovery)
	}
	if d2.Len() != wantLen+1 {
		t.Fatalf("recovered Len %d, want %d", d2.Len(), wantLen+1)
	}
	res, _ := d2.Query(probe, 1)
	if len(res.IDs) == 0 || res.IDs[0] != id {
		t.Fatalf("post-checkpoint insert lost: query returned %v, want id %d first", res.IDs, id)
	}
}

// TestDurableStaleWALDiscarded simulates the crash window between the
// checkpoint rename and the WAL truncation: the old-generation log is
// still on disk, but all its records are folded into the checkpoint.
// Replaying it would double-apply; recovery must discard it instead.
func TestDurableStaleWALDiscarded(t *testing.T) {
	base, data := durableBase(t)
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, d.Insert, d.Delete, data)
	walPath := filepath.Join(dir, walFileName)
	staleWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantLen := d.Len()
	// Put the pre-checkpoint (gen 1) log back, as if the truncation never
	// reached disk, and crash.
	if err := os.WriteFile(walPath, staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(dir, DurableOptions{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.Recovery.DiscardedWAL || d2.Recovery.Replayed != 0 {
		t.Fatalf("recovery %+v, want the stale WAL discarded with nothing replayed", d2.Recovery)
	}
	if d2.Len() != wantLen {
		t.Fatalf("Len %d after discarding stale WAL, want %d", d2.Len(), wantLen)
	}
}

func TestDurableTornTailDropped(t *testing.T) {
	base, data := durableBase(t)
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ids := applyOps(t, d.Insert, d.Delete, data)
	wantLen := d.Len()
	// A crash mid-append leaves a partial frame at the tail.
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	base2, _ := durableBase(t)
	d2, err := OpenDurable(dir, DurableOptions{Base: base2, Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Recovery.TruncatedBytes != 6 || d2.Recovery.Replayed != 34 {
		t.Fatalf("recovery %+v, want 34 replayed and 6 torn bytes", d2.Recovery)
	}
	if d2.Len() != wantLen {
		t.Fatalf("Len %d, want %d", d2.Len(), wantLen)
	}
	// And the log keeps working after the torn tail was cut away.
	if _, err := d2.Insert(vec.Clone(data.Row(1))); err != nil {
		t.Fatal(err)
	}
	_ = ids
}

func TestDurableDeleteSemantics(t *testing.T) {
	base, data := durableBase(t)
	d, err := OpenDurable(t.TempDir(), DurableOptions{Base: base, Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !d.Delete(5) {
		t.Fatal("delete of live id must report true")
	}
	if d.Delete(5) {
		t.Fatal("second delete of the same id must report false")
	}
	if d.Delete(-1) || d.Delete(data.N+1000) {
		t.Fatal("out-of-range deletes must report false")
	}
	if _, err := d.Insert(make([]float32, 3)); err == nil {
		t.Fatal("wrong-dimension insert must fail")
	}
}

func TestOpenDurableGuards(t *testing.T) {
	// Empty dir and no base.
	if _, err := OpenDurable(t.TempDir(), DurableOptions{}); err == nil {
		t.Fatal("OpenDurable must fail with no checkpoint and no base")
	}
	// Dirty base.
	base, data := durableBase(t)
	if _, err := base.Insert(vec.Clone(data.Row(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(t.TempDir(), DurableOptions{Base: base}); err == nil {
		t.Fatal("OpenDurable must refuse a base with pending overlay state")
	}
	// WAL generation ahead of the checkpoint: corrupt pairing.
	base2, _ := durableBase(t)
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base2, Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	w, err := durable.CreateWAL(filepath.Join(dir, walFileName),
		durable.Header{Gen: 99, BaseN: uint64(base2.N()), Dim: base2.Dim()}, durable.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	base3, _ := durableBase(t)
	if _, err := OpenDurable(dir, DurableOptions{Base: base3}); err == nil {
		t.Fatal("OpenDurable must reject a WAL generation ahead of the checkpoint")
	}
}

// TestDurableConcurrentMutationsAndCheckpoints hammers the durable index
// from several goroutines (run under -race by make race / CI): group
// commit, the log-order-equals-apply-order mutex, and checkpoints racing
// mutations. Afterwards a crash-reopen must reproduce the exact final
// live count.
func TestDurableConcurrentMutationsAndCheckpoints(t *testing.T) {
	base, data := durableBase(t)
	seedN := base.Len() // base is d's inner index; checkpoints mutate it
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base, Fsync: durable.FsyncAlways,
		MemtableThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var inserted, deleted atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				v := vec.Clone(data.Row((w*53 + i) % data.N))
				v[0] += float32(w) + float32(i)*1e-3
				if _, err := d.Insert(v); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				inserted.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := 10; id < 40; id++ {
			if d.Delete(id) {
				deleted.Add(1)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := d.Checkpoint(); err != nil && !errors.Is(err, ErrCompactBusy) {
				t.Errorf("checkpoint: %v", err)
			}
		}
	}()
	wg.Wait()
	want := seedN + int(inserted.Load()) - int(deleted.Load())
	if d.Len() != want {
		t.Fatalf("Len = %d, want %d", d.Len(), want)
	}
	// Crash (no Close) and recover: the count must reproduce exactly.
	d2, err := OpenDurable(dir, DurableOptions{Fsync: durable.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != want {
		t.Fatalf("recovered Len = %d, want %d (recovery %+v)", d2.Len(), want, d2.Recovery)
	}
}

func TestDurableMutationsFailAfterClose(t *testing.T) {
	base, data := durableBase(t)
	d, err := OpenDurable(t.TempDir(), DurableOptions{Base: base, Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(vec.Clone(data.Row(0))); err == nil {
		t.Fatal("insert after Close must fail")
	}
	if d.Delete(1) {
		t.Fatal("delete after Close must report false")
	}
	// Reads stay alive: snapshots don't touch the log.
	if res, _ := d.Query(data.Row(0), 3); len(res.IDs) == 0 {
		t.Fatal("queries must keep working after Close")
	}
}
