package core

import (
	"bilsh/internal/kmeans"
	"bilsh/internal/lshfunc"
	"bilsh/internal/mmap"
	"bilsh/internal/rptree"
	"bilsh/internal/vec"
)

// snapshot is the read plane of the index: one immutable, consistent view
// published through Index.snap (an atomic pointer). Queries load the
// pointer once and then run entirely against the loaded view, so they
// never take a lock and never observe a half-applied mutation. Writers
// build the next view off to the side and publish it with a single atomic
// store (RCU-style); readers that loaded the previous snapshot finish on
// it unaffected.
//
// Everything reachable from a snapshot is immutable after publication,
// with two deliberate exceptions that carry their own synchronization:
// the active memtable (append-only, see memtable.go) and the tombstone
// bitset (atomic bit tests). docs/concurrency.md walks through the
// lifecycle.
type snapshot struct {
	// epoch increases by one on every publication (seal, compact,
	// hierarchy rebuild). Exposed via Index.Epoch for observability and
	// the stress tests' monotonicity assertion.
	epoch uint64
	opts  Options

	// Base plane: the built structures of index.go / serialize.go. The row
	// store has three shapes: in-memory float32 (data populated), disk
	// resident (data carries only the shape, fetch non-nil), and — under
	// Options.Quantize — an SQ8 code matrix (quant non-nil) scanned in
	// place of the float32 rows, with data/fetch retained for the exact
	// re-rank of the final shortlist.
	data   *vec.Matrix
	fetch  func(id int) []float32 // non-nil for disk-backed rows
	quant  *vec.QuantizedMatrix   // non-nil when the scan is quantized
	tree   *rptree.Tree
	km     *kmeans.Model
	groups []*group

	// Hamming plane (Options.Metric == MetricHamming, nil otherwise): the
	// global hyperplane sketcher and the packed sketch of every base row.
	// Level-1 routing still runs on the float rows; level 2 and ranking run
	// entirely on the sketches. sketches non-nil is the query path's
	// metric discriminator.
	sketcher *lshfunc.Sketcher
	sketches *vec.BinaryMatrix

	// mapped roots the mmap backing data/quant/groups when the snapshot
	// was opened from a paged disk file (v3). The base-plane slices alias
	// mapped pages rather than heap memory, so the mapping must outlive
	// every reader of this snapshot: queries run entirely against one
	// loaded snapshot and end with runtime.KeepAlive(sn), which keeps this
	// field — and therefore the mapping's finalizer — at bay until the
	// last dereference. Swaps (Compact, durable remap) publish a
	// replacement snapshot and leave the old mapping to the GC or the
	// owning handle's Close; they never munmap in place.
	mapped *mmap.Mapping

	// Overlay plane: sealed segments (immutable), the active memtable
	// (concurrently readable), and the shared tombstone set.
	frozen  []*segment
	frozenN int // total rows across frozen segments
	mem     *memtable
	dead    *tombstones
}

// clone returns a shallow copy for copy-on-write publication. Callers
// replace the fields they change; shared fields stay shared.
func (sn *snapshot) clone() *snapshot {
	cp := *sn
	return &cp
}

// total is the number of ids in the dense id space (live or tombstoned).
func (sn *snapshot) total() int { return sn.data.N + sn.frozenN + sn.mem.len() }

// idCapacity bounds every id this snapshot can ever surface (the active
// memtable counts at full capacity); sizes the scratch visited array.
func (sn *snapshot) idCapacity() int {
	c := sn.data.N + sn.frozenN
	if sn.mem != nil {
		c += sn.mem.cap()
	}
	return c
}

// live is the number of non-tombstoned items.
func (sn *snapshot) live() int { return sn.total() - sn.dead.count() }

// hasOverlay reports whether any overlay rows exist (frozen or active).
func (sn *snapshot) hasOverlay() bool { return sn.frozenN > 0 || sn.mem.len() > 0 }

// isDeleted reports whether id is tombstoned.
func (sn *snapshot) isDeleted(id int) bool { return sn.dead.get(id) }

// groupOf routes a vector through level 1.
func (sn *snapshot) groupOf(v []float32) int {
	switch {
	case sn.tree != nil:
		return sn.tree.Leaf(v)
	case sn.km != nil:
		return sn.km.Assign(v)
	default:
		return 0
	}
}

// row returns the vector for any id in the snapshot's dense id space.
func (sn *snapshot) row(id int) []float32 {
	if id < sn.data.N {
		if sn.fetch != nil {
			return sn.fetch(id)
		}
		return sn.data.Row(id)
	}
	off := id - sn.data.N
	for _, seg := range sn.frozen {
		if off < len(seg.rows) {
			return seg.rows[off]
		}
		off -= len(seg.rows)
	}
	return sn.mem.rows[off]
}

// rowGroup returns the level-1 group of any id (overlay groups are
// recorded at insert time).
func (sn *snapshot) rowGroup(id int) int {
	off := id - sn.data.N
	for _, seg := range sn.frozen {
		if off < len(seg.rows) {
			return int(seg.groupOf[off])
		}
		off -= len(seg.rows)
	}
	return int(sn.mem.groupOf[off])
}

// overlayGroupCounts tallies overlay rows per level-1 group (Describe and
// GroupSize; O(overlay) and never on the query path).
func (sn *snapshot) overlayGroupCounts() []int {
	counts := make([]int, len(sn.groups))
	for _, seg := range sn.frozen {
		for _, gi := range seg.groupOf {
			counts[gi]++
		}
	}
	if sn.mem != nil {
		for _, gi := range sn.mem.groupOf[:sn.mem.len()] {
			counts[gi]++
		}
	}
	return counts
}

// addOverlayCandidates collects overlay ids whose bucket matches the
// lattice key currently in s.key, walking frozen segments in seal order
// and then the active memtable, which preserves global insertion order —
// the same order the single pre-snapshot overlay map produced.
func (sn *snapshot) addOverlayCandidates(s *scratch, st *QueryStats, gi, t int) {
	memN := sn.mem.len()
	if sn.frozenN == 0 && memN == 0 {
		return
	}
	s.okey = appendOverlayKey(s.okey[:0], gi, t)
	s.okey = append(s.okey, s.key...)
	for _, seg := range sn.frozen {
		if ids := seg.buckets[string(s.okey)]; len(ids) > 0 {
			sn.addCandidates32(s, st, ids)
		}
	}
	if memN > 0 {
		if ids := sn.mem.bucket(s.okey); len(ids) > 0 {
			sn.addCandidates32(s, st, ids)
		}
	}
}
