package core

import (
	"bytes"
	"testing"

	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func dynamicIndex(t *testing.T, opts Options) (*Index, *vec.Matrix) {
	t.Helper()
	data := testData(t, 400, 12, 51)
	ix, err := Build(data, opts, xrand.New(52))
	if err != nil {
		t.Fatal(err)
	}
	return ix, data
}

func TestInsertFindable(t *testing.T) {
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 4, Params: lshfunc.Params{M: 4, L: 4, W: 4}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8, Params: lshfunc.Params{M: 8, L: 4, W: 4}},
		{Partitioner: PartitionNone, ProbeMode: ProbeMulti, Probes: 10, Params: lshfunc.Params{M: 4, L: 3, W: 4}},
		{Partitioner: PartitionRPTree, Groups: 4, ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 4, L: 3, W: 4}},
	} {
		ix, data := dynamicIndex(t, opts)
		// Insert a copy of an existing row shifted slightly: it must become
		// its own nearest neighbor.
		v := vec.Clone(data.Row(7))
		v[0] += 0.001
		id, err := ix.Insert(v)
		if err != nil {
			t.Fatal(err)
		}
		if id != data.N {
			t.Fatalf("first insert id = %d, want %d", id, data.N)
		}
		res, _ := ix.Query(v, 1)
		if len(res.IDs) == 0 || res.IDs[0] != id {
			t.Fatalf("opts %+v: inserted point not found: %v", opts.ProbeMode, res.IDs)
		}
		if ix.Len() != data.N+1 {
			t.Fatalf("Len = %d", ix.Len())
		}
	}
}

func TestInsertDimensionChecked(t *testing.T) {
	ix, _ := dynamicIndex(t, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 2, W: 2}})
	if _, err := ix.Insert(make([]float32, 5)); err == nil {
		t.Fatal("wrong-dimension insert must fail")
	}
}

func TestDeleteHidesPoint(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 4, W: 8}})
	q := data.Row(3)
	res, _ := ix.Query(q, 1)
	if res.IDs[0] != 3 {
		t.Fatalf("precondition: row 3 should be its own NN, got %d", res.IDs[0])
	}
	if !ix.Delete(3) {
		t.Fatal("Delete reported failure")
	}
	if ix.Delete(3) {
		t.Fatal("double Delete must report false")
	}
	res, st := ix.Query(q, 5)
	for _, id := range res.IDs {
		if id == 3 {
			t.Fatal("deleted id still returned")
		}
	}
	if st.Candidates >= data.N {
		t.Fatal("deleted id still counted as candidate")
	}
	if ix.Len() != data.N-1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestDeleteBoundsChecked(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 2, W: 2}})
	if ix.Delete(-1) || ix.Delete(data.N+100) {
		t.Fatal("out-of-range Delete must report false")
	}
}

func TestInsertThenDeleteInsertedPoint(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionRPTree, Groups: 4, Params: lshfunc.Params{M: 4, L: 3, W: 6}})
	v := vec.Clone(data.Row(0))
	v[1] += 0.001
	id, err := ix.Insert(v)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Delete(id) {
		t.Fatal("deleting inserted id failed")
	}
	res, _ := ix.Query(v, 3)
	for _, got := range res.IDs {
		if got == id {
			t.Fatal("deleted insert still returned")
		}
	}
}

func TestWriteToRefusesDirtyIndex(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 2, W: 2}})
	if _, err := ix.Insert(vec.Clone(data.Row(0))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo must refuse an index with pending updates")
	}
}

func TestCompactFoldsUpdates(t *testing.T) {
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 4, Params: lshfunc.Params{M: 4, L: 3, W: 4}},
		{Partitioner: PartitionRPTree, Groups: 4, ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 4, L: 3, W: 4}},
	} {
		ix, data := dynamicIndex(t, opts)
		// Insert 20 near-copies, delete 10 originals.
		inserted := make([]int, 0, 20)
		for i := 0; i < 20; i++ {
			v := vec.Clone(data.Row(i))
			v[0] += 0.01
			id, err := ix.Insert(v)
			if err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, id)
		}
		for i := 100; i < 110; i++ {
			if !ix.Delete(i) {
				t.Fatalf("delete %d failed", i)
			}
		}
		wantLive := data.N + 20 - 10
		mapping, err := ix.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != wantLive || ix.N() != wantLive {
			t.Fatalf("after Compact Len=%d N=%d want %d", ix.Len(), ix.N(), wantLive)
		}
		for i := 100; i < 110; i++ {
			if mapping[i] != -1 {
				t.Fatalf("deleted row %d not mapped to -1", i)
			}
		}
		// Inserted points keep being findable under their new ids.
		for _, oldID := range inserted {
			newID := mapping[oldID]
			if newID < 0 {
				t.Fatal("live insert mapped to -1")
			}
			res, _ := ix.Query(ix.row(newID), 1)
			if len(res.IDs) == 0 || res.IDs[0] != newID {
				t.Fatalf("compacted insert %d->%d not its own NN: %v", oldID, newID, res.IDs)
			}
		}
		if ix.HierarchyStale() {
			t.Fatal("Compact must clear staleness")
		}
		// A compacted index serializes cleanly.
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadIndex(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactNoOpIsIdentity(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 2, W: 4}})
	mapping, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != data.N {
		t.Fatalf("identity mapping len %d", len(mapping))
	}
	for i, m := range mapping {
		if m != i {
			t.Fatal("no-op Compact must be identity")
		}
	}
}

func TestCompactRefusesEmptying(t *testing.T) {
	data := testData(t, 20, 8, 53)
	ix, err := Build(data, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(54))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.N; i++ {
		ix.Delete(i)
	}
	if _, err := ix.Compact(); err == nil {
		t.Fatal("emptying Compact must fail")
	}
}

func TestHierarchyStaleFlag(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionNone, ProbeMode: ProbeHierarchy,
		Params: lshfunc.Params{M: 4, L: 2, W: 4}})
	if ix.HierarchyStale() {
		t.Fatal("fresh index must not be stale")
	}
	if _, err := ix.Insert(vec.Clone(data.Row(1))); err != nil {
		t.Fatal(err)
	}
	if !ix.HierarchyStale() {
		t.Fatal("insert under hierarchy must mark staleness")
	}
}

func TestQualityAfterHeavyChurn(t *testing.T) {
	// After many inserts and deletes, recall vs fresh ground truth must
	// stay reasonable (the overlay must not silently lose points).
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 6, W: 6}})
	rng := xrand.New(55)
	for i := 0; i < 100; i++ {
		v := rng.GaussianVec(12)
		vec.Scale(v, 6)
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		ix.Delete(rng.Intn(data.N))
	}
	// Fresh ground truth over the live set via linear scan through the
	// index's own row accessor.
	live := make([]int, 0, ix.N()+100)
	for id := 0; id < ix.N()+100; id++ {
		if !ix.isDeleted(id) {
			live = append(live, id)
		}
	}
	var recall float64
	const k = 10
	queries := 30
	for qi := 0; qi < queries; qi++ {
		q := ix.row(live[qi*7%len(live)])
		res, _ := ix.Query(q, k)
		// Exact among live ids.
		exact := exactAmong(ix, live, q, k)
		recall += knn.Recall(exact, res.IDs)
	}
	recall /= float64(queries)
	if recall < 0.5 {
		t.Fatalf("post-churn recall = %.2f; overlay lost points", recall)
	}
}

func exactAmong(ix *Index, ids []int, q []float32, k int) []int {
	type pair struct {
		id int
		d  float64
	}
	best := make([]pair, 0, k+1)
	for _, id := range ids {
		d := vec.SqDist(ix.row(id), q)
		inserted := false
		for i, p := range best {
			if d < p.d || (d == p.d && id < p.id) {
				best = append(best[:i], append([]pair{{id, d}}, best[i:]...)...)
				inserted = true
				break
			}
		}
		if !inserted && len(best) < k {
			best = append(best, pair{id, d})
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	out := make([]int, len(best))
	for i, p := range best {
		out[i] = p.id
	}
	return out
}
