package core

import (
	"bytes"
	"reflect"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/xrand"
)

// roundTripIndex serializes and reloads an index, asserting byte counts.
func roundTripIndex(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSerializeRoundTripVariants(t *testing.T) {
	data := testData(t, 300, 16, 31)
	variants := []Options{
		{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 3, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, AutoTuneW: true,
			Params: lshfunc.Params{M: 4, L: 2, W: 1}},
		{Partitioner: PartitionKMeans, Groups: 3,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8,
			Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, ProbeMode: ProbeHierarchy,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionNone, ProbeMode: ProbeMulti, Probes: 20,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeDn,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
	}
	queries := testData(t, 10, 16, 32)
	for vi, opts := range variants {
		orig, err := Build(data, opts, xrand.New(int64(100+vi)))
		if err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		loaded := roundTripIndex(t, orig)

		if loaded.N() != orig.N() || loaded.Dim() != orig.Dim() ||
			loaded.NumGroups() != orig.NumGroups() {
			t.Fatalf("variant %d: shape changed across round trip", vi)
		}
		// Every query must produce identical results and stats.
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			r1, s1 := orig.Query(q, 7)
			r2, s2 := loaded.Query(q, 7)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("variant %d query %d: results differ after reload", vi, qi)
			}
			if s1.Candidates != s2.Candidates || s1.Group != s2.Group {
				t.Fatalf("variant %d query %d: stats differ after reload (%+v vs %+v)", vi, qi, s1, s2)
			}
		}
	}
}

func TestSerializeGroupWidthsPreserved(t *testing.T) {
	data := testData(t, 400, 12, 33)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 6,
		AutoTuneW: true, Params: lshfunc.Params{M: 4, L: 2, W: 1.3}}, xrand.New(34))
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTripIndex(t, ix)
	for g := 0; g < ix.NumGroups(); g++ {
		if loaded.GroupW(g) != ix.GroupW(g) {
			t.Fatalf("group %d width changed: %v -> %v", g, ix.GroupW(g), loaded.GroupW(g))
		}
		if loaded.GroupSize(g) != ix.GroupSize(g) {
			t.Fatalf("group %d size changed", g)
		}
	}
	s1, s2 := ix.TableSummary(), loaded.TableSummary()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("table summaries differ: %+v vs %+v", s1, s2)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestReadIndexRejectsTruncation(t *testing.T) {
	data := testData(t, 100, 8, 35)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 3,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(36))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Probe a spread of truncation points; all must fail, none may panic.
	for _, frac := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999} {
		cut := int(float64(len(full)) * frac)
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(full))
		}
	}
}

func TestReadIndexRejectsCorruptMiddle(t *testing.T) {
	data := testData(t, 80, 8, 37)
	ix, err := Build(data, Options{Partitioner: PartitionNone,
		Params: lshfunc.Params{M: 4, L: 1, W: 2}}, xrand.New(38))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip the partitioner section tag region; decode must error (not
	// panic) — exact failure mode depends on where the flip lands.
	corrupt := append([]byte(nil), full...)
	for i := 20; i < 40 && i < len(corrupt); i++ {
		corrupt[i] ^= 0xff
	}
	if _, err := ReadIndex(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt header not detected")
	}
}
