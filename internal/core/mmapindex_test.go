package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// saveV3 writes ix in the paged layout and returns the path.
func saveV3(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ix.v3")
	if err := ix.SaveDisk(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedHeapEquivalence pins that the mapped read path is
// byte-identical to both the heap-loaded copy of the same file and the
// original in-memory index, across lattices × probe modes × quantization.
// Any divergence here means the in-place decoders (cuckoo, lshtable,
// member arrays, row/code sections) do not reproduce the heap structures.
func TestMappedHeapEquivalence(t *testing.T) {
	data := testData(t, 500, 16, 910)
	queries := testData(t, 25, 16, 911)
	cases := []Options{
		{Partitioner: PartitionRPTree, Groups: 4,
			Params: lshfunc.Params{M: 4, L: 3, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionNone, Lattice: LatticeDn, ProbeMode: ProbeMulti,
			Probes: 12, Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionKMeans, Groups: 3, Quantize: QuantizeSQ8,
			Params: lshfunc.Params{M: 4, L: 3, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8, Quantize: QuantizeSQ8,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
	}
	for ci, opts := range cases {
		ix, err := Build(data, opts, xrand.New(912))
		if err != nil {
			t.Fatal(err)
		}
		path := saveV3(t, ix)
		mapped, err := OpenDisk(path)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		defer mapped.Close()
		heap, err := OpenDiskWith(path, DiskOpenOptions{ForceHeap: true})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		defer heap.Close()
		if heap.Mapped() {
			t.Fatalf("case %d: ForceHeap still mapped", ci)
		}

		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			r0, s0 := ix.Query(q, 7)
			rm, sm := mapped.Query(q, 7)
			rh, sh := heap.Query(q, 7)
			if !reflect.DeepEqual(r0, rm) || !reflect.DeepEqual(rm, rh) {
				t.Fatalf("case %d query %d: results diverge\nmem=%v\nmap=%v\nheap=%v",
					ci, qi, r0.IDs, rm.IDs, rh.IDs)
			}
			if s0.Candidates != sm.Candidates || sm.Candidates != sh.Candidates {
				t.Fatalf("case %d query %d: candidate counts diverge (%d/%d/%d)",
					ci, qi, s0.Candidates, sm.Candidates, sh.Candidates)
			}
		}
		em := mapped.ExactKNN(queries.Row(0), 5)
		eh := heap.ExactKNN(queries.Row(0), 5)
		if !reflect.DeepEqual(em, eh) {
			t.Fatalf("case %d: ExactKNN diverges", ci)
		}
	}
}

// TestMappedQueryAllocs pins that serving off the mapping preserves the
// ≤2-alloc steady-state query path (the result's IDs and Dists slices):
// the SIMD kernels and probe loop must run directly on mapped pages with
// no per-query decode or copy.
func TestMappedQueryAllocs(t *testing.T) {
	for _, quantize := range []QuantizeKind{QuantizeNone, QuantizeSQ8} {
		rng := xrand.New(33)
		const n, d = 600, 16
		data := vec.NewMatrix(n, d)
		for i := 0; i < n; i++ {
			copy(data.Row(i), rng.GaussianVec(d))
		}
		ix, err := Build(data, Options{
			Partitioner: PartitionRPTree, Groups: 4, Quantize: quantize,
			Params: lshfunc.Params{M: 4, L: 3, W: 2},
		}, xrand.New(34))
		if err != nil {
			t.Fatal(err)
		}
		di, err := OpenDisk(saveV3(t, ix))
		if err != nil {
			t.Fatal(err)
		}
		defer di.Close()

		qs := vec.NewMatrix(32, d)
		for i := 0; i < qs.N; i++ {
			copy(qs.Row(i), data.Row(rng.Intn(n)))
		}
		s := di.getScratch()
		for i := 0; i < qs.N; i++ {
			di.query(qs.Row(i), 5, s)
		}
		qi := 0
		got := testing.AllocsPerRun(200, func() {
			di.query(qs.Row(qi%qs.N), 5, s)
			qi++
		})
		if got > 2 {
			t.Fatalf("quantize=%v: mapped Query allocates %.1f/op, want <= 2 (result slices only)", quantize, got)
		}
	}
}

// TestDiskLayoutCorruptionDetectedAtOpen pins the SIGBUS-avoidance
// contract: damage to a paged file is caught by the per-section CRC pass
// at open — with a structured error — never discovered as a fault (or
// silent garbage) at query time.
func TestDiskLayoutCorruptionDetectedAtOpen(t *testing.T) {
	data := testData(t, 300, 8, 920)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 3,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(921))
	if err != nil {
		t.Fatal(err)
	}
	path := saveV3(t, ix)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reject := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		bad := mutate(append([]byte{}, orig...))
		badPath := filepath.Join(t.TempDir(), "bad.v3")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		di, err := OpenDisk(badPath)
		if err == nil {
			di.Close()
			t.Fatalf("%s: corrupt file accepted", name)
		}
		if !errors.Is(err, ErrBadDiskLayout) {
			t.Fatalf("%s: error not tagged ErrBadDiskLayout: %v", name, err)
		}
	}
	reject("truncated-tail", func(b []byte) []byte { return b[:len(b)-512] })
	reject("truncated-half", func(b []byte) []byte { return b[:len(b)/2] })
	reject("bitflip-rows", func(b []byte) []byte { b[len(b)-9] ^= 0x40; return b })
	reject("bitflip-middle", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })
	reject("bitflip-header", func(b []byte) []byte { b[24] ^= 0x01; return b })

	// The pristine file still opens.
	di, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	di.Close()
}

// TestMappedSwapUnderLoad hammers a mapped index with concurrent queries
// while inserts and Compacts swap the snapshot out from under them (run
// with -race in CI). Queries must stay correct throughout: in-flight
// readers hold the old mapped snapshot (KeepAlive roots the mapping)
// while the swap publishes a heap base.
func TestMappedSwapUnderLoad(t *testing.T) {
	data := testData(t, 400, 8, 930)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 3,
		Params: lshfunc.Params{M: 4, L: 2, W: 3}}, xrand.New(931))
	if err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(saveV3(t, ix))
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	if !di.Mapped() {
		t.Skip("mmap unavailable on this host")
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := xrand.New(seed)
			q := make([]float32, 8)
			for {
				select {
				case <-done:
					return
				default:
				}
				copy(q, data.Row(rng.Intn(data.N)))
				r, _ := di.Query(q, 5)
				if len(r.IDs) == 0 {
					t.Error("query returned nothing during swap")
					return
				}
			}
		}(int64(w))
	}
	rng := xrand.New(932)
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			if _, err := di.Insert(rng.GaussianVec(8)); err != nil {
				t.Error(err)
			}
		}
		if _, err := di.Compact(); err != nil {
			t.Error(err)
		}
		// Press the GC: a mapping kept alive only by accident would be
		// finalized here and turn in-flight reads into faults.
		runtime.GC()
	}
	close(done)
	wg.Wait()
}

// TestDiskV2Backcompat pins that legacy v2 fixed-stride files — minted by
// the previous on-disk format's writer — keep opening and querying
// byte-identically to the in-memory index that wrote them.
func TestDiskV2Backcompat(t *testing.T) {
	data := testData(t, 350, 12, 940)
	queries := testData(t, 20, 12, 941)
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 3, Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 3, Quantize: QuantizeSQ8,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
	} {
		ix, err := Build(data, opts, xrand.New(942))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "legacy.v2")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.writeDiskV2To(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		di, err := OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		defer di.Close()
		if di.Mapped() {
			t.Fatal("legacy v2 file must not claim to be mapped")
		}
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			r1, _ := ix.Query(q, 6)
			r2, _ := di.Query(q, 6)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("query %d: v2 results differ", qi)
			}
		}
	}
}

// TestResidencyControls exercises the policy surface end to end on a real
// mapped index: sampling, budget enforcement, and that eviction cannot
// change results (clean pages refault with identical bytes).
func TestResidencyControls(t *testing.T) {
	data := testData(t, 800, 32, 950)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 3,
		Quantize: QuantizeSQ8, Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(951))
	if err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskWith(saveV3(t, ix), DiskOpenOptions{
		Residency: ResidencyPolicy{PinCodes: true, RowsBudget: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	if !di.Mapped() {
		t.Skip("mmap unavailable on this host")
	}

	q := data.Row(11)
	before, _ := di.Query(q, 5)
	st := di.Residency()
	if st.MappedBytes <= 0 || st.RowsBytes <= 0 {
		t.Fatalf("implausible residency stats: %+v", st)
	}
	st = di.EnforceResidency()
	if st.RowsBudget != 4096 {
		t.Fatalf("budget not carried: %+v", st)
	}
	after, _ := di.Query(q, 5)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("eviction changed query results")
	}
	di.SetRowsBudget(1 << 30)
	if st := di.EnforceResidency(); st.RowsBudget != 1<<30 {
		t.Fatalf("SetRowsBudget not applied: %+v", st)
	}
}

// TestDurableMmap covers the durable pairing: a data directory opened
// with Mmap serves off the checkpoint mapping, checkpoints write paged
// payloads and remap onto the new generation, and the directory remains
// interchangeable with heap mode.
func TestDurableMmap(t *testing.T) {
	data := testData(t, 300, 8, 960)
	base, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 3,
		Params: lshfunc.Params{M: 4, L: 2, W: 3}}, xrand.New(961))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{Base: base, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	// Seeded from Base: nothing on disk yet, so nothing is mapped. The
	// first checkpoint writes a paged payload and remaps onto it.
	rng := xrand.New(962)
	var inserted [][]float32
	for i := 0; i < 10; i++ {
		v := rng.GaussianVec(8)
		inserted = append(inserted, v)
		if _, err := d.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !d.Mapped() {
		t.Fatal("durable index not mapped after checkpoint")
	}
	if st := d.Residency(); st.MappedBytes <= 0 {
		t.Fatalf("implausible durable residency: %+v", st)
	}
	for _, v := range inserted {
		r, _ := d.Query(v, 1)
		if len(r.IDs) == 0 || r.Dists[0] != 0 {
			t.Fatal("inserted vector lost across mapped checkpoint")
		}
	}
	// A second checkpoint cycle must swap generations cleanly.
	if _, err := d.Insert(rng.GaussianVec(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !d.Mapped() {
		t.Fatal("durable index lost its mapping on the second checkpoint")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen mapped: recovery must map the paged checkpoint directly.
	d2, err := OpenDurable(dir, DurableOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Recovery.FromCheckpoint {
		t.Fatal("reopen did not recover from checkpoint")
	}
	if !d2.Mapped() {
		t.Fatal("reopened durable index not mapped")
	}
	r2, _ := d2.Query(inserted[0], 1)
	if len(r2.IDs) == 0 || r2.Dists[0] != 0 {
		t.Fatal("vector lost across mapped reopen")
	}
	d2.Close()

	// Heap mode opens the same (paged) directory.
	d3, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Mapped() {
		t.Fatal("heap-mode open claims to be mapped")
	}
	r3, _ := d3.Query(inserted[0], 1)
	if !reflect.DeepEqual(r2, r3) {
		t.Fatal("heap-mode open queries differently from mapped open")
	}
	d3.Close()
}
