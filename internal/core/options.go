// Package core implements Bi-level LSH (Pan & Manocha, ICDE 2012): a
// two-level approximate k-nearest-neighbor index.
//
// Level 1 partitions the dataset into groups with bounded aspect ratio
// using a random projection tree (or, for the paper's Fig. 13c baseline,
// K-means; or no partitioning at all, which makes the index a standard
// p-stable LSH — the paper's main baseline). Level 2 builds, per group, L
// locality-sensitive hash tables over a Z^M, D_n or E8 lattice quantizer,
// with optional multi-probe querying and an optional bucket hierarchy
// (Morton curve for Z^M, explicit tree for D_n/E8) that adapts bucket
// size per query.
//
// The bi-level hash code of an item v is H~(v) = (RP-tree(v), H(v)): the
// group index plus the in-group lattice code.
//
// Beyond Build/Query the package provides: persistence (WriteTo /
// ReadIndex), a disk-backed layout whose vector rows stay on disk
// (WriteDiskTo / OpenDisk), streaming out-of-core construction from fvecs
// files (BuildDisk), dynamic updates (Insert / Delete / Compact), parallel
// batch queries (QueryBatchParallel) and introspection (Describe). An
// Index is safe for unrestricted concurrent use: readers run lock-free
// against immutable published snapshots, mutators serialize internally,
// and Compact rebuilds in the background without blocking either (see
// docs/concurrency.md for the full contract).
package core

import (
	"fmt"

	"bilsh/internal/lshfunc"
	"bilsh/internal/rptree"
)

// PartitionerKind selects the level-1 algorithm.
type PartitionerKind int

const (
	// PartitionNone disables level 1 — the index degenerates to standard
	// LSH (the paper's baseline).
	PartitionNone PartitionerKind = iota
	// PartitionRPTree uses a random projection tree (the paper's method).
	PartitionRPTree
	// PartitionKMeans uses K-means (the Fig. 13c baseline).
	PartitionKMeans
)

// String implements fmt.Stringer.
func (p PartitionerKind) String() string {
	switch p {
	case PartitionNone:
		return "none"
	case PartitionRPTree:
		return "rptree"
	case PartitionKMeans:
		return "kmeans"
	default:
		return fmt.Sprintf("PartitionerKind(%d)", int(p))
	}
}

// LatticeKind selects the level-2 space quantizer.
type LatticeKind int

const (
	// LatticeZM is the integer lattice of Eq. 2.
	LatticeZM LatticeKind = iota
	// LatticeE8 is the E8 lattice of Section IV-B2b.
	LatticeE8
	// LatticeDn is the checkerboard lattice D_n — an extension ablation
	// between Z^M and E8 on the density axis (see internal/lattice).
	LatticeDn
)

// String implements fmt.Stringer.
func (l LatticeKind) String() string {
	switch l {
	case LatticeZM:
		return "ZM"
	case LatticeE8:
		return "E8"
	case LatticeDn:
		return "Dn"
	default:
		return fmt.Sprintf("LatticeKind(%d)", int(l))
	}
}

// ProbeMode selects how buckets are gathered at query time.
type ProbeMode int

const (
	// ProbeSingle looks up only the bucket containing the query.
	ProbeSingle ProbeMode = iota
	// ProbeMulti probes Options.Probes buckets per table (Lv et al. for
	// Z^M; the 240-neighbor sequence for E8).
	ProbeMulti
	// ProbeHierarchy enlarges sparse queries' buckets via the hierarchical
	// LSH table (Morton curve / E8 tree).
	ProbeHierarchy
)

// String implements fmt.Stringer.
func (p ProbeMode) String() string {
	switch p {
	case ProbeSingle:
		return "single"
	case ProbeMulti:
		return "multiprobe"
	case ProbeHierarchy:
		return "hierarchy"
	default:
		return fmt.Sprintf("ProbeMode(%d)", int(p))
	}
}

// QuantizeKind selects the resident row-store representation the
// short-list scan reads.
type QuantizeKind int

const (
	// QuantizeNone scans full-precision float32 rows (the default).
	QuantizeNone QuantizeKind = iota
	// QuantizeSQ8 scans per-dimension min/max scalar-quantized int8 rows
	// (~4× less bandwidth and resident bytes) and re-ranks the top
	// k×RerankFactor survivors against the exact float32 rows, so the
	// returned distances are always exact.
	QuantizeSQ8
)

// String implements fmt.Stringer.
func (q QuantizeKind) String() string {
	switch q {
	case QuantizeNone:
		return "none"
	case QuantizeSQ8:
		return "sq8"
	default:
		return fmt.Sprintf("QuantizeKind(%d)", int(q))
	}
}

// ParseQuantizeKind parses the CLI spelling of a QuantizeKind.
func ParseQuantizeKind(s string) (QuantizeKind, error) {
	switch s {
	case "", "none":
		return QuantizeNone, nil
	case "sq8":
		return QuantizeSQ8, nil
	default:
		return 0, fmt.Errorf("core: unknown quantize kind %q (want none|sq8)", s)
	}
}

// MetricKind selects the distance family the index is built over.
type MetricKind int

const (
	// MetricEuclidean is the paper's l2 setting: p-stable projections,
	// lattice quantizers, squared-Euclidean ranking (the default).
	MetricEuclidean MetricKind = iota
	// MetricHamming sketches every vector into Options.Bits hyperplane-sign
	// bits and runs bit-sampling LSH over the packed sketches; candidates
	// rank by exact Hamming distance between sketches. Hamming indexes are
	// static: Insert and Compact are unsupported (Delete still works), and
	// level 2 requires ProbeSingle or ProbeMulti. See docs/datasets.md and
	// the DESIGN.md metric-family row.
	MetricHamming
)

// String implements fmt.Stringer.
func (m MetricKind) String() string {
	switch m {
	case MetricEuclidean:
		return "euclidean"
	case MetricHamming:
		return "hamming"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(m))
	}
}

// ParseMetricKind parses the CLI spelling of a MetricKind.
func ParseMetricKind(s string) (MetricKind, error) {
	switch s {
	case "", "euclidean", "l2":
		return MetricEuclidean, nil
	case "hamming":
		return MetricHamming, nil
	default:
		return 0, fmt.Errorf("core: unknown metric kind %q (want euclidean|hamming)", s)
	}
}

// Options configures an Index.
type Options struct {
	// Metric selects the distance family (default MetricEuclidean). With
	// MetricHamming, Lattice and the W/AutoTuneW knobs are ignored: level 2
	// runs bit-sampling tables over packed hyperplane sketches, Params.M is
	// the sampled key width in bits (must not exceed Bits) and candidates
	// rank by Hamming distance.
	Metric MetricKind
	// Bits is the binary sketch width for MetricHamming (default 256).
	// Ignored for MetricEuclidean.
	Bits int
	// Lattice selects the level-2 quantizer (default LatticeZM).
	Lattice LatticeKind
	// Partitioner selects level 1 (default PartitionNone = standard LSH).
	Partitioner PartitionerKind
	// Groups is the number of level-1 partitions g (default 16, the
	// paper's standard setting; ignored for PartitionNone).
	Groups int
	// RPRule is the RP-tree split rule (default rptree.RuleMean).
	RPRule rptree.Rule
	// Params are the LSH hyperparameters M, L, W. W acts as the baseline
	// width; per-group tuning rescales around it when AutoTuneW is set.
	Params lshfunc.Params
	// ProbeMode selects the query strategy (default ProbeSingle).
	ProbeMode ProbeMode
	// Probes is the number of buckets probed per table in ProbeMulti
	// (default 240+1, the paper's setting: the home bucket plus 240).
	Probes int
	// AutoTuneW computes a per-group W from a data sample (Section IV-B:
	// "we use an automatic parameter tuning approach ... for each cell"),
	// then multiplies it by Params.W as the sweep knob.
	AutoTuneW bool
	// TuneK is the neighborhood size the tuner targets (default 50).
	TuneK int
	// TuneTargetRecall is the tuner's per-table collision target for a
	// k-th neighbor (default 0.9).
	TuneTargetRecall float64
	// MortonBits is the per-dimension Morton key width for the Z^M
	// hierarchy (default 16).
	MortonBits int
	// HierMinCandidates is the bucket-size floor used by single-query
	// hierarchical search; QueryBatch replaces it with the paper's
	// median-of-short-list-sizes rule. Default 2k at query time.
	HierMinCandidates int
	// MinGroupSize keeps level-1 partitions from becoming too small to
	// tune (default 8).
	MinGroupSize int
	// Quantize selects the resident row store scanned by the short list
	// (default QuantizeNone). With QuantizeSQ8 the scan reads int8 codes
	// and the final shortlist is re-ranked against exact float32 rows.
	Quantize QuantizeKind
	// RerankFactor sizes the exact re-rank shortlist under quantization:
	// the top k×RerankFactor approximate candidates get exact distances
	// (default 4). Ignored when Quantize is QuantizeNone.
	RerankFactor int
	// MemtableThreshold is the number of inserts the active memtable
	// accepts before it is sealed into a frozen overlay segment (default
	// 1024). Runtime knob only: not part of the serialized index format.
	MemtableThreshold int
	// AutoCompactSegments, when positive, triggers a background Compact
	// whenever a seal leaves at least this many frozen segments pending.
	// Zero (the default) disables automatic compaction. Runtime knob only:
	// not serialized.
	AutoCompactSegments int
}

// defaultMemtableThreshold is the memtable capacity when the option is
// unset (including on indexes loaded from disk, where the knob is not part
// of the wire format).
const defaultMemtableThreshold = 1024

// defaultRerankFactor is the exact-re-rank multiplier when the option is
// unset (including on v1 index files, which predate the knob).
const defaultRerankFactor = 4

// rerankFactor is RerankFactor with the default applied, so a zero value
// (e.g. an Options struct that bypassed fill) still re-ranks sensibly.
func (o Options) rerankFactor() int {
	if o.RerankFactor > 0 {
		return o.RerankFactor
	}
	return defaultRerankFactor
}

func (o *Options) fill() error {
	if o.Metric == MetricHamming {
		if o.Bits <= 0 {
			o.Bits = 256
		}
		if o.Params.M == 0 {
			// Bit-sampling keys want more bits than the lattice default
			// (8 lattice coordinates spread candidates far better than 8
			// sampled bits would).
			o.Params.M = 16
		}
		// The width tuner models Euclidean collision probabilities; bucket
		// width has no meaning for bit-sampled keys.
		o.AutoTuneW = false
	}
	if o.Groups <= 0 {
		o.Groups = 16
	}
	if o.Partitioner == PartitionNone {
		o.Groups = 1
	}
	if o.Params.M == 0 {
		o.Params.M = 8
	}
	if o.Params.L == 0 {
		o.Params.L = 10
	}
	if o.Params.W == 0 {
		o.Params.W = 1
	}
	if err := o.Params.Validate(); err != nil {
		return err
	}
	if o.Probes <= 0 {
		o.Probes = 241
	}
	if o.TuneK <= 0 {
		o.TuneK = 50
	}
	if o.TuneTargetRecall <= 0 || o.TuneTargetRecall >= 1 {
		o.TuneTargetRecall = 0.9
	}
	if o.MortonBits <= 0 || o.MortonBits > 31 {
		o.MortonBits = 16
	}
	if o.MinGroupSize <= 0 {
		o.MinGroupSize = 8
	}
	if o.RerankFactor <= 0 {
		o.RerankFactor = defaultRerankFactor
	}
	if o.MemtableThreshold <= 0 {
		o.MemtableThreshold = defaultMemtableThreshold
	}
	if o.Params.L > 255 {
		// Overlay bucket keys encode the table index in one byte.
		return fmt.Errorf("core: L = %d exceeds the 255-table limit", o.Params.L)
	}
	return o.Validate()
}

// Validate checks every field of a fully specified Options against the
// ranges fill produces. Build runs it after filling defaults, and
// ReadIndex/OpenDisk run it on the decoded option block, so a corrupt or
// hostile index file cannot carry an unknown lattice/partitioner/probe
// mode or a negative count into a live index.
func (o Options) Validate() error {
	if err := o.Params.Validate(); err != nil {
		return err
	}
	switch o.Metric {
	case MetricEuclidean:
	case MetricHamming:
		switch {
		case o.Bits < 1 || o.Bits > 1<<20:
			return fmt.Errorf("core: Bits %d out of range [1, 2^20]", o.Bits)
		case o.Params.M > o.Bits:
			return fmt.Errorf("core: M = %d exceeds the %d-bit sketch", o.Params.M, o.Bits)
		case o.ProbeMode == ProbeHierarchy:
			return fmt.Errorf("core: ProbeHierarchy is lattice-specific; Hamming supports single/multiprobe")
		case o.Quantize != QuantizeNone:
			return fmt.Errorf("core: quantization applies to float rows; Hamming sketches are already 1 bit/plane")
		}
	default:
		return fmt.Errorf("core: unknown metric kind %d", int(o.Metric))
	}
	switch o.Lattice {
	case LatticeZM, LatticeE8, LatticeDn:
	default:
		return fmt.Errorf("core: unknown lattice kind %d", int(o.Lattice))
	}
	switch o.Partitioner {
	case PartitionNone, PartitionRPTree, PartitionKMeans:
	default:
		return fmt.Errorf("core: unknown partitioner kind %d", int(o.Partitioner))
	}
	switch o.ProbeMode {
	case ProbeSingle, ProbeMulti, ProbeHierarchy:
	default:
		return fmt.Errorf("core: unknown probe mode %d", int(o.ProbeMode))
	}
	switch o.RPRule {
	case rptree.RuleMean, rptree.RuleMax:
	default:
		return fmt.Errorf("core: unknown rp-tree rule %d", int(o.RPRule))
	}
	switch o.Quantize {
	case QuantizeNone, QuantizeSQ8:
	default:
		return fmt.Errorf("core: unknown quantize kind %d", int(o.Quantize))
	}
	if o.RerankFactor < 0 {
		return fmt.Errorf("core: RerankFactor %d negative", o.RerankFactor)
	}
	switch {
	case o.Groups < 1 || o.Groups > 1<<20:
		return fmt.Errorf("core: group count %d out of range [1, 2^20]", o.Groups)
	case o.Params.L > 255:
		return fmt.Errorf("core: L = %d exceeds the 255-table limit", o.Params.L)
	case o.Probes < 1 || o.Probes > 1<<20:
		return fmt.Errorf("core: probe count %d out of range [1, 2^20]", o.Probes)
	case o.TuneK < 0:
		return fmt.Errorf("core: TuneK %d negative", o.TuneK)
	case o.TuneTargetRecall <= 0 || o.TuneTargetRecall >= 1:
		return fmt.Errorf("core: TuneTargetRecall %g outside (0, 1)", o.TuneTargetRecall)
	case o.MortonBits < 1 || o.MortonBits > 31:
		return fmt.Errorf("core: MortonBits %d out of range [1, 31]", o.MortonBits)
	case o.HierMinCandidates < 0:
		return fmt.Errorf("core: HierMinCandidates %d negative", o.HierMinCandidates)
	case o.MinGroupSize < 0:
		return fmt.Errorf("core: MinGroupSize %d negative", o.MinGroupSize)
	}
	return nil
}
