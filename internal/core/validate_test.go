package core

import (
	"math"
	"strings"
	"testing"

	"bilsh/internal/lshfunc"
)

func TestCheckVector(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		name    string
		dim     int
		v       []float32
		wantErr string // substring; empty means valid
	}{
		{"valid", 3, []float32{1, -2, 0.5}, ""},
		{"nil", 3, nil, "dim 0, want 3"},
		{"short", 3, []float32{1, 2}, "dim 2, want 3"},
		{"long", 3, []float32{1, 2, 3, 4}, "dim 4, want 3"},
		{"nan", 3, []float32{1, nan, 3}, "component 1 is NaN"},
		{"pos-inf", 3, []float32{inf, 2, 3}, "component 0 is infinite"},
		{"neg-inf", 3, []float32{1, 2, -inf}, "component 2 is infinite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckVector(tc.dim, tc.v)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckVector = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckVector = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestInsertRejectsNonFinite pins the boundary: a NaN or Inf component must
// be refused before it can poison bucket routing or distance ranking, and
// a rejected insert must not consume an id or change the live count.
func TestInsertRejectsNonFinite(t *testing.T) {
	ix, data := dynamicIndex(t, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 2, W: 2}})
	n0 := ix.Len()
	bad := [][]float32{
		{1, 2, 3}, // wrong dim (index is 12-dimensional)
		append(make([]float32, 11), float32(math.NaN())),
		append(make([]float32, 11), float32(math.Inf(-1))),
	}
	for _, v := range bad {
		if _, err := ix.Insert(v); err == nil {
			t.Fatalf("Insert(%v) must fail", v)
		}
	}
	if ix.Len() != n0 {
		t.Fatalf("rejected inserts changed Len: %d -> %d", n0, ix.Len())
	}
	// A valid insert afterwards gets the first overlay id.
	id, err := ix.Insert(data.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if id != data.N {
		t.Fatalf("id after rejected inserts = %d, want %d", id, data.N)
	}
}

// TestQueryWrongDimReturnsEmpty pins Query's inline guard: the signature
// has no error slot, so a wrong-dimension query yields an empty result
// rather than a panic inside projection arithmetic.
func TestQueryWrongDimReturnsEmpty(t *testing.T) {
	ix, _ := dynamicIndex(t, Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 2, W: 2}})
	res, st := ix.Query([]float32{1, 2, 3}, 5)
	if len(res.IDs) != 0 || len(res.Dists) != 0 {
		t.Fatalf("wrong-dim query returned results: %+v", res)
	}
	if st.Candidates != 0 {
		t.Fatalf("wrong-dim query reported candidates: %+v", st)
	}
}
