package core

import (
	"math"
	"testing"

	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

func testData(t *testing.T, n, d int, seed int64) *vec.Matrix {
	t.Helper()
	spec := dataset.ClusteredSpec{N: n, D: d, Clusters: 6, IntrinsicDim: 4,
		Aspect: 4, NoiseSigma: 0.05, Spread: 6, PowerLaw: 0.8}
	m, _, err := dataset.Clustered(spec, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildVariants(t *testing.T) {
	data := testData(t, 400, 24, 1)
	variants := []Options{
		{Partitioner: PartitionNone, Params: lshfunc.Params{M: 4, L: 3, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Params: lshfunc.Params{M: 4, L: 3, W: 2}},
		{Partitioner: PartitionKMeans, Groups: 4, Params: lshfunc.Params{M: 4, L: 3, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8,
			Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, ProbeMode: ProbeMulti, Probes: 20,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, ProbeMode: ProbeHierarchy,
			Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, AutoTuneW: true,
			Params: lshfunc.Params{M: 4, L: 2, W: 1}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeDn,
			Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeDn,
			ProbeMode: ProbeMulti, Probes: 20, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeDn,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 2, W: 2}},
	}
	for i, opts := range variants {
		ix, err := Build(data, opts, xrand.New(int64(i)))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		q := data.Row(0)
		res, st := ix.Query(q, 5)
		if len(res.IDs) == 0 {
			t.Fatalf("variant %d: no results", i)
		}
		if st.Candidates <= 0 || st.Candidates > data.N {
			t.Fatalf("variant %d: candidates = %d", i, st.Candidates)
		}
		if st.Group < 0 || st.Group >= ix.NumGroups() {
			t.Fatalf("variant %d: group = %d", i, st.Group)
		}
		// Distances must be sorted ascending.
		for j := 1; j < len(res.Dists); j++ {
			if res.Dists[j] < res.Dists[j-1] {
				t.Fatalf("variant %d: unsorted distances", i)
			}
		}
	}
}

func TestHugeWGivesPerfectRecall(t *testing.T) {
	// With W far larger than the data spread every in-group point shares
	// one bucket, so a point's group-mates are all candidates and a stored
	// point must find itself as its own nearest neighbor.
	data := testData(t, 300, 16, 2)
	ix, err := Build(data, Options{
		Partitioner: PartitionNone,
		Params:      lshfunc.Params{M: 4, L: 2, W: 1e9},
	}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	truth := knn.ExactAll(data, data.Subset([]int{0, 5, 10}), 10)
	for i, row := range []int{0, 5, 10} {
		res, st := ix.Query(data.Row(row), 10)
		if got := knn.Recall(truth[i].IDs, res.IDs); got != 1 {
			t.Fatalf("row %d: recall = %v with infinite W", row, got)
		}
		if st.Candidates != data.N {
			t.Fatalf("row %d: candidates = %d, want all %d", row, st.Candidates, data.N)
		}
	}
}

func TestStoredPointFindsItself(t *testing.T) {
	data := testData(t, 500, 16, 4)
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 8, Params: lshfunc.Params{M: 4, L: 4, W: 4}},
		{Partitioner: PartitionRPTree, Groups: 8, Lattice: LatticeE8,
			Params: lshfunc.Params{M: 8, L: 4, W: 4}},
		{Partitioner: PartitionRPTree, Groups: 8, Lattice: LatticeDn,
			Params: lshfunc.Params{M: 8, L: 4, W: 4}},
	} {
		ix, err := Build(data, opts, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range []int{1, 100, 499} {
			res, _ := ix.Query(data.Row(row), 1)
			if len(res.IDs) == 0 || res.IDs[0] != row || res.Dists[0] != 0 {
				t.Fatalf("lattice %v: stored row %d not its own NN: %+v", opts.Lattice, row, res)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	data := testData(t, 300, 12, 6)
	opts := Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 3, W: 3}}
	a, err := Build(data, opts, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(data, opts, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	q := xrand.New(8).GaussianVec(12)
	ra, sa := a.Query(q, 5)
	rb, sb := b.Query(q, 5)
	if sa.Candidates != sb.Candidates || len(ra.IDs) != len(rb.IDs) {
		t.Fatal("identical seeds produced different indexes")
	}
	for i := range ra.IDs {
		if ra.IDs[i] != rb.IDs[i] {
			t.Fatal("identical seeds produced different results")
		}
	}
}

func TestMultiprobeWidensCandidates(t *testing.T) {
	data := testData(t, 500, 16, 9)
	base := Options{Partitioner: PartitionNone, Params: lshfunc.Params{M: 8, L: 2, W: 1.5}}
	single, err := Build(data, base, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	multi := base
	multi.ProbeMode = ProbeMulti
	multi.Probes = 50
	probed, err := Build(data, multi, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	var sSum, mSum int
	for i := 0; i < 20; i++ {
		q := data.Row(i * 7)
		_, st1 := single.Query(q, 5)
		_, st2 := probed.Query(q, 5)
		sSum += st1.Candidates
		mSum += st2.Candidates
		if st2.Candidates < st1.Candidates {
			t.Fatalf("query %d: multiprobe produced fewer candidates (%d < %d)",
				i, st2.Candidates, st1.Candidates)
		}
	}
	if mSum <= sSum {
		t.Fatal("multiprobe did not widen the candidate pool")
	}
}

func TestHierarchyHelpsSparseQueries(t *testing.T) {
	data := testData(t, 400, 16, 11)
	opts := Options{Partitioner: PartitionNone, ProbeMode: ProbeHierarchy,
		Params: lshfunc.Params{M: 8, L: 2, W: 0.8}, HierMinCandidates: 40}
	ix, err := Build(data, opts, xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	// A far-away query lands in an empty bucket; the hierarchy must still
	// produce at least the requested floor.
	far := make([]float32, 16)
	for i := range far {
		far[i] = 1000
	}
	res, st := ix.Query(far, 5)
	if st.Candidates < 40 && st.Candidates != data.N {
		t.Fatalf("sparse query got %d candidates, want >= 40", st.Candidates)
	}
	if len(res.IDs) != 5 {
		t.Fatalf("sparse query returned %d results", len(res.IDs))
	}
	if st.HierarchyLevel == 0 {
		t.Fatal("sparse query should have climbed the hierarchy")
	}
}

func TestQueryBatchMedianRule(t *testing.T) {
	data := testData(t, 600, 16, 13)
	opts := Options{Partitioner: PartitionNone, ProbeMode: ProbeHierarchy,
		Params: lshfunc.Params{M: 8, L: 2, W: 1.2}}
	ix, err := Build(data, opts, xrand.New(14))
	if err != nil {
		t.Fatal(err)
	}
	queries := data.Subset([]int{0, 10, 20, 30, 40, 50, 60, 70})
	results, stats := ix.QueryBatch(queries, 5)
	if len(results) != 8 || len(stats) != 8 {
		t.Fatal("batch sizes wrong")
	}
	for i, r := range results {
		if len(r.IDs) == 0 {
			t.Fatalf("query %d: empty result", i)
		}
	}
	// The batch's candidate floor is the median: every query must have at
	// least min(median, everything-reachable) candidates.
	sizes := make([]int, queries.N)
	sc := ix.getScratch()
	for qi := 0; qi < queries.N; qi++ {
		sizes[qi] = ix.plainShortListSize(queries.Row(qi), sc)
	}
	ix.putScratch(sc)
	median := medianInt(sizes)
	for i, st := range stats {
		if st.Candidates < median && st.Candidates < data.N {
			t.Fatalf("query %d: %d candidates below median %d", i, st.Candidates, median)
		}
	}
}

func TestBiLevelBeatsStandardAtEqualSelectivity(t *testing.T) {
	// The headline claim (Figs. 5-6), smoke-scale: on clustered data and a
	// mid-range W, bi-level recall should not be materially below standard
	// LSH recall while selectivity is not materially above. We compare the
	// quality-per-selectivity ratio to allow for noise at this scale.
	spec := dataset.ClusteredSpec{N: 1200, D: 32, Clusters: 8, IntrinsicDim: 4,
		Aspect: 6, NoiseSigma: 0.05, Spread: 10, PowerLaw: 0.8}
	data, _, err := dataset.Clustered(spec, xrand.New(15))
	if err != nil {
		t.Fatal(err)
	}
	train := data.Subset(rangeInts(0, 1000))
	queries := data.Subset(rangeInts(1000, 1200))
	truth := knn.ExactAll(train, queries, 10)

	run := func(part PartitionerKind) (recall, sel float64) {
		var rSum, sSum float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			ix, err := Build(train, Options{
				Partitioner: part, Groups: 8, AutoTuneW: part != PartitionNone,
				Params: lshfunc.Params{M: 8, L: 5, W: 3},
			}, xrand.New(int64(20+rep)))
			if err != nil {
				t.Fatal(err)
			}
			if part == PartitionNone {
				// Give standard LSH its own tuned global W for fairness.
				ixT, err := Build(train, Options{
					Partitioner: part, AutoTuneW: true,
					Params: lshfunc.Params{M: 8, L: 5, W: 3},
				}, xrand.New(int64(20+rep)))
				if err != nil {
					t.Fatal(err)
				}
				ix = ixT
			}
			for qi := 0; qi < queries.N; qi++ {
				res, st := ix.Query(queries.Row(qi), 10)
				rSum += knn.Recall(truth[qi].IDs, res.IDs)
				sSum += float64(st.Candidates) / float64(train.N)
			}
		}
		n := float64(reps * queries.N)
		return rSum / n, sSum / n
	}
	stdRecall, stdSel := run(PartitionNone)
	biRecall, biSel := run(PartitionRPTree)
	t.Logf("standard: recall=%.3f sel=%.3f; bi-level: recall=%.3f sel=%.3f",
		stdRecall, stdSel, biRecall, biSel)
	// Quality per unit selectivity must favor (or at least not collapse
	// under) the bi-level scheme.
	if biSel > 0 && stdSel > 0 {
		stdEff := stdRecall / math.Max(stdSel, 1e-9)
		biEff := biRecall / math.Max(biSel, 1e-9)
		if biEff < 0.8*stdEff {
			t.Fatalf("bi-level efficiency %.2f collapsed vs standard %.2f", biEff, stdEff)
		}
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestAccessorsAndSummary(t *testing.T) {
	data := testData(t, 200, 12, 16)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if ix.N() != 200 || ix.Dim() != 12 {
		t.Fatal("N/Dim wrong")
	}
	if ix.NumGroups() != 4 {
		t.Fatalf("groups = %d", ix.NumGroups())
	}
	total := 0
	for g := 0; g < ix.NumGroups(); g++ {
		total += ix.GroupSize(g)
		if ix.GroupW(g) <= 0 {
			t.Fatal("group W must be positive")
		}
	}
	if total != 200 {
		t.Fatalf("group sizes sum to %d", total)
	}
	s := ix.TableSummary()
	if s.Items != 200*2 { // L=2 tables store every member once each
		t.Fatalf("summary items = %d", s.Items)
	}
	if s.Buckets == 0 || s.CollisionMass <= 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestEmptyDataRejected(t *testing.T) {
	empty := vec.NewMatrix(0, 4)
	if _, err := Build(empty, Options{}, xrand.New(1)); err == nil {
		t.Fatal("empty dataset must be rejected")
	}
}

func TestStringers(t *testing.T) {
	if PartitionRPTree.String() != "rptree" || LatticeE8.String() != "E8" ||
		ProbeMulti.String() != "multiprobe" {
		t.Fatal("stringers wrong")
	}
	if PartitionerKind(9).String() == "" || LatticeKind(9).String() == "" ||
		ProbeMode(9).String() == "" {
		t.Fatal("unknown values must still format")
	}
}
