package core

import (
	"container/heap"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"bilsh/internal/knn"
	"bilsh/internal/lattice"
	"bilsh/internal/lshfunc"
	"bilsh/internal/topk"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// This file pins the scratch-based, allocation-free query path to the
// implementation it replaced. The ref* functions below are verbatim copies
// of the pre-refactor gather / rank / plainShortListSize / probe
// generation (map-based dedup, string bucket keys, container/heap probe
// expansion), kept only as a test oracle. Under a fixed seed, every probe
// mode and lattice must produce identical results (ids AND distances) and
// identical deterministic stats fields.

// refGather is the old map-based candidate collection.
func refGather(ix *Index, q []float32, hierMinCount int) (map[int]struct{}, QueryStats) {
	gi := ix.GroupOf(q)
	g := ix.loadSnap().groups[gi]
	stats := QueryStats{Group: gi}
	set := make(map[int]struct{})
	proj := make([]float64, ix.opts.Params.M)

	add := func(ids []int) {
		for _, id := range ids {
			if ix.isDeleted(id) {
				continue
			}
			stats.Scanned++
			set[id] = struct{}{}
		}
	}

	for t := 0; t < ix.opts.Params.L; t++ {
		g.fam.Project(t, q, proj)
		switch ix.opts.ProbeMode {
		case ProbeSingle:
			code := g.lat.Decode(proj)
			stats.Probes++
			key := lattice.Key(code)
			add(g.tables[t].Bucket(key))
			add(ix.overlayBucket(gi, t, key))

		case ProbeMulti:
			var probes [][]int32
			switch lat := g.lat.(type) {
			case *lattice.ZM:
				probes = refZMProbes(lat, proj, ix.opts.Probes)
			case *lattice.E8:
				probes = refRingProbes(lat.Decode(proj), proj, 8, refE8Mins(), ix.opts.Probes)
			case *lattice.Dn:
				probes = refRingProbes(lat.Decode(proj), proj, lat.BlockDim(), lattice.DnMinVectors(lat.BlockDim()), ix.opts.Probes)
			}
			for _, code := range probes {
				stats.Probes++
				key := lattice.Key(code)
				add(g.tables[t].Bucket(key))
				add(ix.overlayBucket(gi, t, key))
			}

		case ProbeHierarchy:
			code := g.lat.Decode(proj)
			stats.Probes++
			var ids []int
			var level int
			if g.mortonH != nil {
				ids, level = g.mortonH[t].Candidates(code, hierMinCount)
			} else {
				ids, level = g.e8H[t].Candidates(code, hierMinCount)
			}
			if level > stats.HierarchyLevel {
				stats.HierarchyLevel = level
			}
			add(ids)
			add(ix.overlayBucket(gi, t, lattice.Key(code)))
		}
	}
	stats.Candidates = len(set)
	return set, stats
}

// refRank is the old per-candidate ranking over the dedup map.
func refRank(ix *Index, q []float32, cands map[int]struct{}, k int) knn.Result {
	h := topk.New(k)
	for id := range cands {
		d := vec.SqDist(ix.row(id), q)
		if h.Accepts(d) {
			h.Push(id, d)
		}
	}
	items := h.Sorted()
	r := knn.Result{IDs: make([]int, len(items)), Dists: make([]float64, len(items))}
	for i, it := range items {
		r.IDs[i] = it.ID
		r.Dists[i] = it.Dist
	}
	return r
}

func refQuery(ix *Index, q []float32, k int) (knn.Result, QueryStats) {
	minCount := ix.opts.HierMinCandidates
	if minCount <= 0 {
		minCount = 2 * k
	}
	cands, stats := refGather(ix, q, minCount)
	return refRank(ix, q, cands, k), stats
}

// refPlainShortListSize is the old standalone single-probe sizing pass.
func refPlainShortListSize(ix *Index, q []float32) int {
	gi := ix.GroupOf(q)
	g := ix.loadSnap().groups[gi]
	proj := make([]float64, ix.opts.Params.M)
	set := make(map[int]struct{})
	for t := 0; t < ix.opts.Params.L; t++ {
		g.fam.Project(t, q, proj)
		key := lattice.Key(g.lat.Decode(proj))
		for _, id := range g.tables[t].Bucket(key) {
			if !ix.isDeleted(id) {
				set[id] = struct{}{}
			}
		}
		for _, id := range ix.overlayBucket(gi, t, key) {
			if !ix.isDeleted(id) {
				set[id] = struct{}{}
			}
		}
	}
	return len(set)
}

// refQueryBatch is the old hierarchy batch protocol (median rule).
func refQueryBatch(ix *Index, queries *vec.Matrix, k int) ([]knn.Result, []QueryStats) {
	results := make([]knn.Result, queries.N)
	stats := make([]QueryStats, queries.N)
	if ix.opts.ProbeMode != ProbeHierarchy {
		for qi := 0; qi < queries.N; qi++ {
			results[qi], stats[qi] = refQuery(ix, queries.Row(qi), k)
		}
		return results, stats
	}
	sizes := make([]int, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		sizes[qi] = refPlainShortListSize(ix, queries.Row(qi))
	}
	cp := append([]int(nil), sizes...)
	sort.Ints(cp)
	median := cp[len(cp)/2]
	if median < 1 {
		median = 1
	}
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		minCount := 1
		if sizes[qi] < median {
			minCount = median
		}
		cands, st := refGather(ix, q, minCount)
		results[qi] = refRank(ix, q, cands, k)
		stats[qi] = st
	}
	return results, stats
}

// refZMProbes is the old container/heap query-directed probing.
func refZMProbes(z *lattice.ZM, y []float64, count int) (probes [][]int32) {
	if count <= 0 {
		return nil
	}
	home := z.Decode(y)
	probes = make([][]int32, 0, count)
	probes = append(probes, home)
	if count == 1 {
		return probes
	}
	m := z.M()
	type pert struct {
		dim   int
		delta int32
		score float64
	}
	perts := make([]pert, 0, 2*m)
	for i := 0; i < m; i++ {
		frac := y[i] - float64(home[i])
		perts = append(perts,
			pert{dim: i, delta: -1, score: frac * frac},
			pert{dim: i, delta: +1, score: (1 - frac) * (1 - frac)},
		)
	}
	sort.Slice(perts, func(a, b int) bool { return perts[a].score < perts[b].score })
	total := 2 * m
	score := func(set []int) float64 {
		var s float64
		for _, j := range set {
			s += perts[j].score
		}
		return s
	}
	valid := func(set []int) bool {
		seen := make(map[int]bool, len(set))
		for _, j := range set {
			d := perts[j].dim
			if seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	pq := &refSetHeap{}
	heap.Init(pq)
	heap.Push(pq, refProbeSet{set: []int{0}, score: perts[0].score})
	for len(probes) < count && pq.Len() > 0 {
		cur := heap.Pop(pq).(refProbeSet)
		if valid(cur.set) {
			code := make([]int32, m)
			copy(code, home)
			for _, j := range cur.set {
				code[perts[j].dim] += perts[j].delta
			}
			probes = append(probes, code)
		}
		last := cur.set[len(cur.set)-1]
		if last+1 < total {
			shifted := append(append([]int(nil), cur.set[:len(cur.set)-1]...), last+1)
			heap.Push(pq, refProbeSet{set: shifted, score: score(shifted)})
			expanded := append(append([]int(nil), cur.set...), last+1)
			heap.Push(pq, refProbeSet{set: expanded, score: score(expanded)})
		}
	}
	return probes
}

type refProbeSet struct {
	set   []int
	score float64
}

type refSetHeap []refProbeSet

func (h refSetHeap) Len() int            { return len(h) }
func (h refSetHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h refSetHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refSetHeap) Push(x interface{}) { *h = append(*h, x.(refProbeSet)) }
func (h *refSetHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func refE8Mins() [][]int32 {
	mins := lattice.MinVectors()
	out := make([][]int32, len(mins))
	for i := range mins {
		out[i] = mins[i][:]
	}
	return out
}

// refRingProbes is the old string-keyed ring expansion for E8/Dn.
func refRingProbes(home []int32, y []float64, blockDim int, mins [][]int32, count int) [][]int32 {
	if count <= 0 {
		return nil
	}
	probes := make([][]int32, 0, count)
	probes = append(probes, home)
	if count == 1 {
		return probes
	}
	codeLen := len(home)
	yy := make([]float64, codeLen)
	copy(yy, y)
	type cand struct {
		code []int32
		d2   float64
	}
	seen := map[string]bool{lattice.Key(home): true}
	frontier := [][]int32{home}
	for len(probes) < count && len(frontier) > 0 {
		var ring []cand
		for _, base := range frontier {
			for b := 0; b+blockDim <= codeLen; b += blockDim {
				for _, mv := range mins {
					nb := make([]int32, codeLen)
					copy(nb, base)
					for j := 0; j < blockDim; j++ {
						nb[b+j] += mv[j]
					}
					key := lattice.Key(nb)
					if seen[key] {
						continue
					}
					seen[key] = true
					var d2 float64
					for j := 0; j < codeLen; j++ {
						diff := yy[j] - float64(nb[j])/2
						d2 += diff * diff
					}
					ring = append(ring, cand{code: nb, d2: d2})
				}
			}
		}
		sort.Slice(ring, func(a, b int) bool {
			if ring[a].d2 != ring[b].d2 {
				return ring[a].d2 < ring[b].d2
			}
			return lattice.Key(ring[a].code) < lattice.Key(ring[b].code)
		})
		frontier = frontier[:0]
		for _, c := range ring {
			if len(probes) < count {
				probes = append(probes, c.code)
			}
			frontier = append(frontier, c.code)
		}
	}
	return probes
}

// equivIndex builds a fixed-seed index plus queries, optionally with a
// dynamic overlay (inserts and deletes of both base and inserted rows).
func equivIndex(t *testing.T, lat LatticeKind, mode ProbeMode, dynamic bool) (*Index, *vec.Matrix) {
	t.Helper()
	const (
		n       = 900
		d       = 24
		queries = 60
	)
	rng := xrand.New(42)
	data := vec.NewMatrix(n, d)
	centers := vec.NewMatrix(12, d)
	for i := 0; i < centers.N; i++ {
		copy(centers.Row(i), rng.GaussianVec(d))
		vec.Scale(centers.Row(i), 3)
	}
	for i := 0; i < n; i++ {
		row := data.Row(i)
		copy(row, rng.GaussianVec(d))
		vec.Add(row, row, centers.Row(i%centers.N))
	}
	qs := vec.NewMatrix(queries, d)
	for i := 0; i < queries; i++ {
		copy(qs.Row(i), data.Row(rng.Intn(n)))
		noise := rng.GaussianVec(d)
		vec.Scale(noise, 0.15)
		vec.Add(qs.Row(i), qs.Row(i), noise)
	}
	opts := Options{
		Partitioner: PartitionRPTree,
		Groups:      6,
		Lattice:     lat,
		ProbeMode:   mode,
		Probes:      12,
		// Tiny memtable so the dynamic variants cover frozen segments as
		// well as the active memtable (40 inserts -> several seals).
		MemtableThreshold: 16,
	}
	ix, err := Build(data, opts, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if dynamic {
		for i := 0; i < 40; i++ {
			row := rng.GaussianVec(d)
			vec.Add(row, row, centers.Row(i%centers.N))
			if _, err := ix.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30; i++ {
			ix.Delete(rng.Intn(n)) // base rows
		}
		for i := 0; i < 8; i++ {
			ix.Delete(n + rng.Intn(40)) // inserted rows
		}
	}
	return ix, qs
}

func sameStats(a, b QueryStats) bool {
	// Timings are wall-clock and intentionally excluded.
	return a.Group == b.Group && a.Candidates == b.Candidates &&
		a.Scanned == b.Scanned && a.Probes == b.Probes &&
		a.HierarchyLevel == b.HierarchyLevel
}

// TestQueryMatchesReference compares the scratch-based hot path against
// the pre-refactor implementation: same ids, same distances, same
// deterministic stats, for every lattice × probe mode, static and with a
// dynamic overlay.
func TestQueryMatchesReference(t *testing.T) {
	lattices := []LatticeKind{LatticeZM, LatticeE8, LatticeDn}
	modes := []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy}
	for _, lat := range lattices {
		for _, mode := range modes {
			for _, dyn := range []bool{false, true} {
				name := fmt.Sprintf("%v/%v/dynamic=%v", lat, mode, dyn)
				t.Run(name, func(t *testing.T) {
					ix, qs := equivIndex(t, lat, mode, dyn)
					const k = 7
					for qi := 0; qi < qs.N; qi++ {
						q := qs.Row(qi)
						got, gotSt := ix.Query(q, k)
						want, wantSt := refQuery(ix, q, k)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("query %d: result mismatch\n got %+v\nwant %+v", qi, got, want)
						}
						if !sameStats(gotSt, wantSt) {
							t.Fatalf("query %d: stats mismatch\n got %+v\nwant %+v", qi, gotSt, wantSt)
						}
					}
				})
			}
		}
	}
}

// TestCandidateListMatchesReference pins the external short-list entry
// point to the old sorted-map semantics.
func TestCandidateListMatchesReference(t *testing.T) {
	for _, mode := range []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy} {
		t.Run(mode.String(), func(t *testing.T) {
			ix, qs := equivIndex(t, LatticeZM, mode, true)
			minCount := ix.opts.HierMinCandidates
			if minCount <= 0 {
				minCount = 2 * ix.opts.TuneK
			}
			for qi := 0; qi < qs.N; qi++ {
				q := qs.Row(qi)
				got, gotSt := ix.CandidateList(q)
				set, wantSt := refGather(ix, q, minCount)
				want := make([]int, 0, len(set))
				for id := range set {
					want = append(want, id)
				}
				sort.Ints(want)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: candidate list mismatch\n got %v\nwant %v", qi, got, want)
				}
				if !sameStats(gotSt, wantSt) {
					t.Fatalf("query %d: stats mismatch\n got %+v\nwant %+v", qi, gotSt, wantSt)
				}
			}
		})
	}
}

// TestQueryBatchMatchesReference pins the batch median rule (including the
// plain short-list sizing pass) and the parallel path to the reference.
func TestQueryBatchMatchesReference(t *testing.T) {
	for _, lat := range []LatticeKind{LatticeZM, LatticeE8} {
		t.Run(fmt.Sprintf("%v", lat), func(t *testing.T) {
			ix, qs := equivIndex(t, lat, ProbeHierarchy, true)
			const k = 5
			gotRes, gotSt := ix.QueryBatch(qs, k)
			wantRes, wantSt := refQueryBatch(ix, qs, k)
			for qi := range wantRes {
				if !reflect.DeepEqual(gotRes[qi], wantRes[qi]) {
					t.Fatalf("batch query %d: result mismatch\n got %+v\nwant %+v", qi, gotRes[qi], wantRes[qi])
				}
				if !sameStats(gotSt[qi], wantSt[qi]) {
					t.Fatalf("batch query %d: stats mismatch\n got %+v\nwant %+v", qi, gotSt[qi], wantSt[qi])
				}
			}
			parRes, parSt := ix.QueryBatchParallel(qs, k, 4)
			for qi := range wantRes {
				if !reflect.DeepEqual(parRes[qi], wantRes[qi]) {
					t.Fatalf("parallel query %d: result mismatch\n got %+v\nwant %+v", qi, parRes[qi], wantRes[qi])
				}
				if !sameStats(parSt[qi], wantSt[qi]) {
					t.Fatalf("parallel query %d: stats mismatch\n got %+v\nwant %+v", qi, parSt[qi], wantSt[qi])
				}
			}
		})
	}
}

// TestCompactEquivalentToFreshBuild pins Compact's strongest contract: an
// index that absorbed inserts and deletes and then compacted must be
// indistinguishable — identical ids, distances and deterministic stats —
// from an index freshly built over the surviving vectors.
//
// The setup uses PartitionNone with a fixed W: with no data-dependent
// level-1 partition and no tuner, the hash family drawn from a seed is
// independent of the data it indexes, so the compacted index and the
// fresh build share their hash functions exactly and equivalence is
// byte-identical, not statistical. (Compact renumbers survivors densely
// in original id order, which is exactly row order in the fresh build's
// matrix.)
func TestCompactEquivalentToFreshBuild(t *testing.T) {
	lattices := []LatticeKind{LatticeZM, LatticeE8, LatticeDn}
	modes := []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy}
	for _, lat := range lattices {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%v/%v", lat, mode), func(t *testing.T) {
				const (
					n       = 600
					d       = 24
					inserts = 50
					k       = 7
				)
				rng := xrand.New(27)
				data := vec.NewMatrix(n, d)
				for i := 0; i < n; i++ {
					copy(data.Row(i), rng.GaussianVec(d))
					vec.Scale(data.Row(i), 2)
				}
				ins := vec.NewMatrix(inserts, d)
				for i := 0; i < inserts; i++ {
					copy(ins.Row(i), rng.GaussianVec(d))
					vec.Scale(ins.Row(i), 2)
				}
				qs := vec.NewMatrix(40, d)
				for i := 0; i < qs.N; i++ {
					copy(qs.Row(i), data.Row(rng.Intn(n)))
					noise := rng.GaussianVec(d)
					vec.Scale(noise, 0.2)
					vec.Add(qs.Row(i), qs.Row(i), noise)
				}

				opts := Options{
					Partitioner: PartitionNone,
					Lattice:     lat,
					ProbeMode:   mode,
					Probes:      10,
					Params:      lshfunc.Params{M: 8, L: 4, W: 2.5},
					// Small memtable: the workload seals frozen segments, so
					// Compact folds in every overlay representation.
					MemtableThreshold: 16,
				}
				ix, err := Build(data, opts, xrand.New(5))
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < inserts; i++ {
					if _, err := ix.Insert(ins.Row(i)); err != nil {
						t.Fatal(err)
					}
				}
				deleted := make([]bool, n+inserts)
				for i := 0; i < 45; i++ {
					id := rng.Intn(n)
					ix.Delete(id)
					deleted[id] = true
				}
				for i := 0; i < 12; i++ {
					id := n + rng.Intn(inserts)
					ix.Delete(id)
					deleted[id] = true
				}
				if _, err := ix.Compact(); err != nil {
					t.Fatal(err)
				}

				// Survivors in original id order = Compact's dense renumbering.
				var rows [][]float32
				for id := 0; id < n+inserts; id++ {
					if deleted[id] {
						continue
					}
					if id < n {
						rows = append(rows, data.Row(id))
					} else {
						rows = append(rows, ins.Row(id-n))
					}
				}
				fresh, err := Build(vec.FromRows(rows), opts, xrand.New(5))
				if err != nil {
					t.Fatal(err)
				}

				for qi := 0; qi < qs.N; qi++ {
					q := qs.Row(qi)
					got, gotSt := ix.Query(q, k)
					want, wantSt := fresh.Query(q, k)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: compacted differs from fresh build\n got %+v\nwant %+v", qi, got, want)
					}
					if !sameStats(gotSt, wantSt) {
						t.Fatalf("query %d: stats mismatch\n got %+v\nwant %+v", qi, gotSt, wantSt)
					}
				}
				gotRes, gotSt := ix.QueryBatch(qs, k)
				wantRes, wantSt := fresh.QueryBatch(qs, k)
				for qi := range wantRes {
					if !reflect.DeepEqual(gotRes[qi], wantRes[qi]) {
						t.Fatalf("batch query %d: compacted differs from fresh build\n got %+v\nwant %+v", qi, gotRes[qi], wantRes[qi])
					}
					if !sameStats(gotSt[qi], wantSt[qi]) {
						t.Fatalf("batch query %d: stats mismatch\n got %+v\nwant %+v", qi, gotSt[qi], wantSt[qi])
					}
				}
			})
		}
	}
}
