package core

import (
	"bytes"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// FuzzReadIndex asserts the index deserializer is panic-free on arbitrary
// bytes and accepts only inputs it can re-serialize consistently.
func FuzzReadIndex(f *testing.F) {
	data := fuzzTestData()
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 2,
		Params: lshfunc.Params{M: 4, L: 1, W: 2}}, xrand.New(1))
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if _, err := ix.WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("bilsh.Index/1 but not really"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := ReadIndex(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent enough to
		// describe and re-serialize.
		_ = got.Describe()
		var buf bytes.Buffer
		if _, err := got.WriteTo(&buf); err != nil {
			t.Fatalf("accepted index failed to re-serialize: %v", err)
		}
	})
}

func fuzzTestData() *vec.Matrix {
	rng := xrand.New(3)
	rows := make([][]float32, 40)
	for i := range rows {
		rows[i] = rng.GaussianVec(6)
	}
	return vec.FromRows(rows)
}
