package core

import (
	"fmt"
	"math"
)

// CheckVector validates a vector at the API boundary: the dimensionality
// must match and every component must be a finite number. NaN poisons
// every distance comparison it touches and ±Inf breaks projection
// arithmetic, so both are rejected up front — by Insert and Query in this
// package and by the server's JSON handlers — rather than silently
// corrupting the index or the result order.
func CheckVector(dim int, v []float32) error {
	if len(v) != dim {
		return fmt.Errorf("core: vector has dim %d, want %d", len(v), dim)
	}
	for i, x := range v {
		if math.IsNaN(float64(x)) {
			return fmt.Errorf("core: vector component %d is NaN", i)
		}
		if math.IsInf(float64(x), 0) {
			return fmt.Errorf("core: vector component %d is infinite", i)
		}
	}
	return nil
}
