package core

import (
	"fmt"

	"bilsh/internal/tuner"
)

// Plan is a per-query execution plan: the transport-agnostic description of
// how much work one query may spend, threaded unchanged from the HTTP
// tiers (internal/server, internal/router) down to the probe loop. The
// zero value (plus a K) reproduces the index's build-time budgets exactly —
// Query(q, k) is a thin wrapper over QueryPlan(q, Plan{K: k}) — so a plan
// only ever *modifies* behavior when a field is set.
//
// Fields fall into three groups:
//
//   - budget overrides: Probes, Tables, HierMinCandidates, RerankFactor
//     replace the corresponding Options values for this query only;
//   - early termination: StableProbes and MaxCandidates stop the probe
//     loop once the shortlist's recall has plateaued (see below);
//   - SLO: TargetRecall asks the tuner's analytic collision model to
//     resolve a concrete table budget for this query.
//
// Early termination. The shortlist only ever grows, and the final top-k is
// a subset of it, so "no shortlist growth for P consecutive bucket probes"
// implies "no top-k change for P consecutive probes" — the plateau signal
// of Claydon et al.'s dynamic query modification, checkable without
// ranking mid-probe. StableProbes is that P. MaxCandidates caps the
// shortlist outright: once the gathered candidate set reaches it, the
// expected collision mass still uncollected is small and probing stops.
// Both default to 0 (off), and a query that stops early reports
// PlanStats.TerminatedEarly.
//
// SLO resolution. At build time, AutoTuneW chooses bucket widths so a true
// k-th neighbor collides with its query in one table with probability
// q = 1 − (1 − TuneTargetRecall)^(1/L) (Section IV-B of the paper; see
// internal/tuner). Under that model the recall after probing T tables is
// 1 − (1 − q)^T, so a per-query TargetRecall R resolves to the smallest
// T with 1 − (1 − q)^T ≥ R, clamped to [1, L]. An explicit Tables
// override wins over the resolved value.
type Plan struct {
	// K is the number of neighbors to return. Zero or negative returns an
	// empty result, exactly like Query.
	K int

	// TargetRecall, in (0, 1), is the per-query recall SLO resolved into a
	// table budget by the tuner's collision model. Zero disables SLO
	// resolution (the full built budget is used).
	TargetRecall float64

	// Probes overrides Options.Probes (ProbeMulti bucket probes per
	// table) for this query. Zero keeps the index default.
	Probes int

	// Tables caps how many of the L built tables this query probes.
	// Zero (or anything >= L) probes all of them.
	Tables int

	// HierMinCandidates overrides Options.HierMinCandidates, the
	// ProbeHierarchy bucket-size floor. In batch queries a positive value
	// replaces the paper's median rule for every query in the batch. Zero
	// keeps the index default (2k at query time; batch median rule).
	HierMinCandidates int

	// RerankFactor overrides Options.RerankFactor, the exact re-rank
	// shortlist multiplier under SQ8 quantization. Zero keeps the index
	// default.
	RerankFactor int

	// StableProbes stops probing after this many consecutive bucket
	// probes added no new shortlist candidate (recall plateau). Zero
	// disables.
	StableProbes int

	// MaxCandidates stops probing once the shortlist holds this many
	// candidates. Zero disables.
	MaxCandidates int
}

// planLimit bounds every count field of a Plan, mirroring the ranges
// Options.Validate enforces on build options.
const planLimit = 1 << 20

// Validate reports whether the plan's fields are in range. QueryPlan
// itself clamps silently (garbage in, bounded work out — the hot path
// never errors), so Validate is for boundaries that owe the caller a
// structured error: the HTTP tiers run it (internal/httpx mirrors the
// same ranges) and return 400.
func (p Plan) Validate() error {
	switch {
	case p.K < 0:
		return fmt.Errorf("core: plan K %d negative", p.K)
	case p.K > planLimit:
		return fmt.Errorf("core: plan K %d out of range [0, %d]", p.K, planLimit)
	case p.TargetRecall < 0 || p.TargetRecall >= 1:
		return fmt.Errorf("core: plan TargetRecall %g outside [0, 1)", p.TargetRecall)
	case p.Probes < 0 || p.Probes > planLimit:
		return fmt.Errorf("core: plan Probes %d out of range [0, %d]", p.Probes, planLimit)
	case p.Tables < 0 || p.Tables > planLimit:
		return fmt.Errorf("core: plan Tables %d out of range [0, %d]", p.Tables, planLimit)
	case p.HierMinCandidates < 0 || p.HierMinCandidates > planLimit:
		return fmt.Errorf("core: plan HierMinCandidates %d out of range [0, %d]", p.HierMinCandidates, planLimit)
	case p.RerankFactor < 0 || p.RerankFactor > planLimit:
		return fmt.Errorf("core: plan RerankFactor %d out of range [0, %d]", p.RerankFactor, planLimit)
	case p.StableProbes < 0 || p.StableProbes > planLimit:
		return fmt.Errorf("core: plan StableProbes %d out of range [0, %d]", p.StableProbes, planLimit)
	case p.MaxCandidates < 0 || p.MaxCandidates > planLimit:
		return fmt.Errorf("core: plan MaxCandidates %d out of range [0, %d]", p.MaxCandidates, planLimit)
	}
	return nil
}

// IsDefault reports whether the plan carries no overrides beyond K — such
// a plan reproduces Query(q, K) byte-identically.
func (p Plan) IsDefault() bool {
	return p == Plan{K: p.K}
}

// PlanStats is QueryStats plus the plan-level execution record: what the
// plan resolved to and whether the probe loop stopped before exhausting
// it. QueryStats.Probes is the bucket-probe count and QueryStats.Scanned
// the rows scanned (pre-dedup), so the embedded struct already carries
// the per-query work accounting.
type PlanStats struct {
	QueryStats

	// TablesProbed is the number of hash tables the probe loop entered
	// before finishing or terminating early.
	TablesProbed int

	// ResolvedTables and ResolvedProbes are the concrete budgets the plan
	// resolved to (defaults applied, SLO translated, overrides clamped).
	ResolvedTables int
	ResolvedProbes int

	// TerminatedEarly reports that an early-termination trigger
	// (StableProbes or MaxCandidates) stopped the probe loop before the
	// resolved budget was exhausted.
	TerminatedEarly bool
}

// resolvedPlan is a Plan with every default applied against a concrete
// snapshot: the form the probe loop executes. It lives on the stack —
// resolution must not allocate (Query's ≤2-allocs pin covers it).
type resolvedPlan struct {
	k             int
	probes        int     // ProbeMulti probes per table
	tables        int     // tables probed, in [1, L]
	hierMin       int     // ProbeHierarchy floor (0 = 2k at query time)
	rerank        int     // 0 = index default
	stableProbes  int     // 0 = off
	maxCandidates int     // 0 = off
	target        float64 // resolved SLO (0 = none)
}

// term reports whether any early-termination trigger is armed; the probe
// loop checks this once and skips all plateau bookkeeping when false, so
// default plans pay nothing.
func (rp *resolvedPlan) term() bool {
	return rp.stableProbes > 0 || rp.maxCandidates > 0
}

// defaultResolved is the resolved form of Plan{K: k}: the index's built
// budgets, verbatim.
func (sn *snapshot) defaultResolved(k int) resolvedPlan {
	return resolvedPlan{
		k:       k,
		probes:  sn.opts.Probes,
		tables:  sn.opts.Params.L,
		hierMin: sn.opts.HierMinCandidates,
	}
}

// resolve applies the snapshot's defaults and the tuner model to p.
// Out-of-range fields are clamped, never rejected (Validate is the
// erroring boundary).
func (sn *snapshot) resolve(p Plan) resolvedPlan {
	rp := sn.defaultResolved(p.K)
	L := sn.opts.Params.L
	if p.TargetRecall > 0 && p.TargetRecall < 1 {
		rp.target = p.TargetRecall
		rp.tables = tablesForRecall(p.TargetRecall, sn.opts.TuneTargetRecall, L)
	}
	if p.Tables > 0 {
		rp.tables = p.Tables
	}
	if rp.tables > L {
		rp.tables = L
	}
	if rp.tables < 1 {
		rp.tables = 1
	}
	if p.Probes > 0 {
		rp.probes = p.Probes
	}
	if p.HierMinCandidates > 0 {
		rp.hierMin = p.HierMinCandidates
	}
	if p.RerankFactor > 0 {
		rp.rerank = p.RerankFactor
	}
	if p.StableProbes > 0 {
		rp.stableProbes = p.StableProbes
	}
	if p.MaxCandidates > 0 {
		rp.maxCandidates = p.MaxCandidates
	}
	return rp
}

// tablesForRecall delegates to the tuner's analytic collision model
// (tuner.TablesForRecall), the same model AutoTuneW inverted at build
// time — one formula, one source of truth.
func tablesForRecall(target, built float64, L int) int {
	return tuner.TablesForRecall(target, built, L)
}

// EstimatedRecall reports the recall the build-time collision model
// predicts for probing tables of the L built tables (the inverse of the
// SLO resolution). Exposed for operators and the adaptive bench.
func (ix *Index) EstimatedRecall(tables int) float64 {
	opts := ix.loadSnap().opts
	return tuner.EstimatedRecall(tables, opts.TuneTargetRecall, opts.Params.L)
}

// termState is the per-query plateau bookkeeping of the early-termination
// policy. It lives on the stack of the gather loop.
type termState struct {
	prev   int // shortlist size after the previous probe
	stable int // consecutive probes without shortlist growth
}

// stop reports whether the probe loop should terminate after a bucket
// probe that left the shortlist at ncands candidates. Callers only invoke
// it when rp.term() is true.
func (rp *resolvedPlan) stop(ts *termState, ncands int) bool {
	if rp.maxCandidates > 0 && ncands >= rp.maxCandidates {
		return true
	}
	if rp.stableProbes > 0 {
		if ncands == ts.prev {
			ts.stable++
			if ts.stable >= rp.stableProbes {
				return true
			}
		} else {
			ts.stable = 0
		}
		ts.prev = ncands
	}
	return false
}
