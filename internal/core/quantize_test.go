package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/wire"
	"bilsh/internal/xrand"
)

// The quantized scan's contract: SQ8 changes which candidates reach the
// final heap (selection), never the distances that come out of it (the
// shortlist is re-ranked against exact float32 rows). These tests pin that
// contract, the v1/v2 wire compatibility, and the alloc budget.

func quantOptions(extra func(*Options)) Options {
	o := Options{
		Partitioner: PartitionRPTree,
		Groups:      4,
		Quantize:    QuantizeSQ8,
		Params:      lshfunc.Params{M: 4, L: 3, W: 2},
	}
	if extra != nil {
		extra(&o)
	}
	return o
}

// TestQuantizedMatchesFloatWithFullRerank: with a re-rank budget covering
// every candidate, the quantized path exact-ranks the whole short list, so
// results must be byte-identical to the float32 index built with the same
// seed (the structures are identical; only the scan differs).
func TestQuantizedMatchesFloatWithFullRerank(t *testing.T) {
	data := testData(t, 500, 20, 51)
	queries := testData(t, 20, 20, 52)
	base, err := Build(data, quantOptions(func(o *Options) { o.Quantize = QuantizeNone }), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	quant, err := Build(data, quantOptions(func(o *Options) { o.RerankFactor = 1 << 20 }), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if quant.loadSnap().quant == nil {
		t.Fatal("SQ8 build produced no quantized matrix")
	}
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		r1, _ := base.Query(q, 9)
		r2, _ := quant.Query(q, 9)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("query %d: full-rerank quantized results differ from float: %v vs %v", qi, r2, r1)
		}
	}
}

// TestQuantizedDistancesAlwaysExact: at the default re-rank factor every
// returned distance must still equal the exact float32 squared distance —
// quantization error may only move the selection edge.
func TestQuantizedDistancesAlwaysExact(t *testing.T) {
	data := testData(t, 500, 20, 53)
	queries := testData(t, 20, 20, 54)
	ix, err := Build(data, quantOptions(nil), xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		r, _ := ix.Query(q, 9)
		for i, id := range r.IDs {
			if want := vec.SqDist(data.Row(id), q); r.Dists[i] != want {
				t.Fatalf("query %d id %d: dist %v, exact %v (re-rank must be exact)", qi, id, r.Dists[i], want)
			}
		}
	}
}

// TestSetQuantize: toggling quantization on a live index publishes new
// snapshots, keeps distances exact, and toggling back restores results
// identical to the original float index.
func TestSetQuantize(t *testing.T) {
	data := testData(t, 400, 16, 55)
	queries := testData(t, 10, 16, 56)
	ix, err := Build(data, quantOptions(func(o *Options) { o.Quantize = QuantizeNone }), xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	before := make([]interface{}, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		r, _ := ix.Query(queries.Row(qi), 5)
		before[qi] = r
	}
	epoch := ix.Epoch()
	if err := ix.SetQuantize(QuantizeSQ8, 6); err != nil {
		t.Fatal(err)
	}
	if ix.Epoch() != epoch+1 {
		t.Fatalf("SetQuantize did not publish (epoch %d -> %d)", epoch, ix.Epoch())
	}
	if ix.loadSnap().quant == nil {
		t.Fatal("SetQuantize(sq8) left quant nil")
	}
	if ix.Options().Quantize != QuantizeSQ8 || ix.Options().RerankFactor != 6 {
		t.Fatalf("options not updated: %+v", ix.Options())
	}
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		r, _ := ix.Query(q, 5)
		for i, id := range r.IDs {
			if want := vec.SqDist(data.Row(id), q); r.Dists[i] != want {
				t.Fatalf("quantized query %d id %d: dist %v, exact %v", qi, id, r.Dists[i], want)
			}
		}
	}
	if err := ix.SetQuantize(QuantizeNone, 0); err != nil {
		t.Fatal(err)
	}
	if ix.loadSnap().quant != nil {
		t.Fatal("SetQuantize(none) kept a quantized matrix")
	}
	for qi := 0; qi < queries.N; qi++ {
		r, _ := ix.Query(queries.Row(qi), 5)
		if !reflect.DeepEqual(interface{}(r), before[qi]) {
			t.Fatalf("query %d: results after sq8 round trip differ from original", qi)
		}
	}
	if err := ix.SetQuantize(QuantizeKind(9), 0); err == nil {
		t.Fatal("SetQuantize accepted an unknown kind")
	}
}

// TestQuantizedSerializeRoundTrip: a quantized index survives WriteTo /
// ReadIndex and SaveDisk / OpenDisk with identical query results, and the
// reloaded index carries the quantized matrix (not a rebuild).
func TestQuantizedSerializeRoundTrip(t *testing.T) {
	data := testData(t, 400, 16, 57)
	queries := testData(t, 10, 16, 58)
	ix, err := Build(data, quantOptions(nil), xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTripIndex(t, ix)
	if loaded.loadSnap().quant == nil {
		t.Fatal("reloaded index lost its quantized matrix")
	}
	if !bytes.Equal(loaded.loadSnap().quant.Codes, ix.loadSnap().quant.Codes) {
		t.Fatal("quantized codes changed across round trip")
	}

	path := filepath.Join(t.TempDir(), "quant.bilsh")
	if err := ix.SaveDisk(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	if di.loadSnap().quant == nil {
		t.Fatal("disk index lost its quantized matrix")
	}
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		r1, _ := ix.Query(q, 7)
		r2, _ := loaded.Query(q, 7)
		r3, _ := di.Query(q, 7)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("query %d: in-memory round trip differs", qi)
		}
		if !reflect.DeepEqual(r1, r3) {
			t.Fatalf("query %d: disk round trip differs", qi)
		}
	}
}

// writeIndexV1 emits the pre-quantization v1 wire image of an unquantized
// index: v1 magic, the 15-field option block, data, structure.
func writeIndexV1(t *testing.T, ix *Index) []byte {
	t.Helper()
	sn := ix.loadSnap()
	if err := sn.requireClean(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	ww.Magic(indexMagicV1)
	o := ix.opts
	ww.Int(int(o.Lattice))
	ww.Int(int(o.Partitioner))
	ww.Int(o.Groups)
	ww.Int(int(o.RPRule))
	ww.Int(o.Params.M)
	ww.Int(o.Params.L)
	ww.F64(o.Params.W)
	ww.Int(int(o.ProbeMode))
	ww.Int(o.Probes)
	ww.Bool(o.AutoTuneW)
	ww.Int(o.TuneK)
	ww.F64(o.TuneTargetRecall)
	ww.Int(o.MortonBits)
	ww.Int(o.HierMinCandidates)
	ww.Int(o.MinGroupSize)
	sn.data.Encode(ww)
	writeStructure(ww, sn.tree, sn.km, sn.groups)
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadIndexV1BackCompat: a version-1 file (no quantization fields or
// section) still loads, defaults to the unquantized scan, and queries
// byte-identically to the index it was written from.
func TestReadIndexV1BackCompat(t *testing.T) {
	data := testData(t, 300, 12, 59)
	queries := testData(t, 10, 12, 60)
	ix, err := Build(data, Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(bytes.NewReader(writeIndexV1(t, ix)))
	if err != nil {
		t.Fatalf("v1 index rejected: %v", err)
	}
	if o := loaded.Options(); o.Quantize != QuantizeNone || o.RerankFactor != defaultRerankFactor {
		t.Fatalf("v1 defaults wrong: Quantize=%v RerankFactor=%d", o.Quantize, o.RerankFactor)
	}
	if loaded.loadSnap().quant != nil {
		t.Fatal("v1 index grew a quantized matrix")
	}
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		r1, s1 := ix.Query(q, 7)
		r2, s2 := loaded.Query(q, 7)
		if !reflect.DeepEqual(r1, r2) || s1.Candidates != s2.Candidates {
			t.Fatalf("query %d: v1 reload changed results", qi)
		}
	}
}

// TestQuantizedInsertDeleteCompact: overlay rows rank exactly alongside
// the quantized base, and Compact folds them into a rebuilt code matrix.
func TestQuantizedInsertDeleteCompact(t *testing.T) {
	data := testData(t, 300, 12, 61)
	queries := testData(t, 8, 12, 62)
	extra := testData(t, 40, 12, 63)
	ix, err := Build(data, quantOptions(nil), xrand.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < extra.N; i++ {
		if _, err := ix.Insert(extra.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.Delete(3)
	ix.Delete(data.N + 5) // one base row, one overlay row
	checkExact := func(stage string) {
		t.Helper()
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			r, _ := ix.Query(q, 6)
			for i, id := range r.IDs {
				if want := vec.SqDist(ix.row(id), q); r.Dists[i] != want {
					t.Fatalf("%s query %d id %d: dist %v, exact %v", stage, qi, id, r.Dists[i], want)
				}
			}
		}
	}
	checkExact("pre-compact")
	mapping, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if mapping[3] != -1 {
		t.Fatal("deleted base row survived compact")
	}
	qm := ix.loadSnap().quant
	if qm == nil {
		t.Fatal("Compact dropped the quantized matrix")
	}
	if qm.N != ix.N() {
		t.Fatalf("compacted quant covers %d rows, base has %d", qm.N, ix.N())
	}
	checkExact("post-compact")
}

// TestQueryAllocsQuantized pins the steady-state allocation count of the
// quantized query path: the SQ8 scan, shortlist selection and exact
// re-rank must all run out of the per-query scratch.
func TestQueryAllocsQuantized(t *testing.T) {
	rng := xrand.New(3)
	const n, d = 600, 16
	data := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		copy(data.Row(i), rng.GaussianVec(d))
	}
	qs := vec.NewMatrix(32, d)
	for i := 0; i < qs.N; i++ {
		copy(qs.Row(i), data.Row(rng.Intn(n)))
	}
	ix, err := Build(data, Options{
		Partitioner: PartitionRPTree,
		Groups:      4,
		Quantize:    QuantizeSQ8,
		Probes:      8,
	}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	s := ix.getScratch()
	for i := 0; i < qs.N; i++ {
		ix.query(qs.Row(i), 5, s)
	}
	qi := 0
	got := testing.AllocsPerRun(200, func() {
		ix.query(qs.Row(qi%qs.N), 5, s)
		qi++
	})
	if got > 2 {
		t.Fatalf("quantized Query allocates %.1f/op in steady state, want <= 2 (result slices only)", got)
	}
}

// TestOpenDiskRejectsShapeMismatchQuant guards the decode-time consistency
// check between the quantized matrix and the data shape.
func TestReadIndexRejectsQuantShapeMismatch(t *testing.T) {
	data := testData(t, 100, 8, 64)
	ix, err := Build(data, quantOptions(nil), xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the quant section's row count: re-encode with a wrong shape.
	sn := ix.loadSnap()
	bad := *sn.quant
	bad.N = 99
	bad.Codes = bad.Codes[:99*bad.D]
	var buf2 bytes.Buffer
	ww := wire.NewWriter(&buf2)
	ww.Magic(indexMagic)
	writeOptions(ww, ix.opts)
	sn.data.Encode(ww)
	writeQuant(ww, &bad)
	writeStructure(ww, sn.tree, sn.km, sn.groups)
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("ReadIndex accepted a quant/data shape mismatch")
	}
}
