package core

import (
	"fmt"
	"testing"

	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// benchIndex builds a small but non-trivial index for hot-path
// microbenchmarks: clustered data so buckets are populated and the
// short list is non-empty.
func benchIndex(b *testing.B, mode ProbeMode) (*Index, *vec.Matrix) {
	b.Helper()
	const (
		n       = 4000
		queries = 256
		d       = 64
	)
	rng := xrand.New(7)
	data := vec.NewMatrix(n, d)
	centers := vec.NewMatrix(32, d)
	for i := 0; i < centers.N; i++ {
		copy(centers.Row(i), rng.GaussianVec(d))
		vec.Scale(centers.Row(i), 4)
	}
	for i := 0; i < n; i++ {
		c := centers.Row(i % centers.N)
		row := data.Row(i)
		copy(row, rng.GaussianVec(d))
		vec.Add(row, row, c)
	}
	qs := vec.NewMatrix(queries, d)
	for i := 0; i < queries; i++ {
		copy(qs.Row(i), data.Row(rng.Intn(n)))
		noise := rng.GaussianVec(d)
		vec.Scale(noise, 0.1)
		vec.Add(qs.Row(i), qs.Row(i), noise)
	}
	opts := Options{
		Partitioner: PartitionRPTree,
		Groups:      16,
		ProbeMode:   mode,
		Probes:      16,
	}
	ix, err := Build(data, opts, xrand.New(11))
	if err != nil {
		b.Fatal(err)
	}
	return ix, qs
}

func benchModes() []ProbeMode {
	return []ProbeMode{ProbeSingle, ProbeMulti, ProbeHierarchy}
}

// BenchmarkQueryModes measures end-to-end Query latency per probe mode.
func BenchmarkQueryModes(b *testing.B) {
	for _, mode := range benchModes() {
		b.Run(mode.String(), func(b *testing.B) {
			ix, qs := benchIndex(b, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Query(qs.Row(i%qs.N), 10)
			}
		})
	}
}

// BenchmarkGather isolates the candidate-collection stage (route + probe +
// scan, no ranking) per probe mode.
func BenchmarkGather(b *testing.B) {
	for _, mode := range benchModes() {
		b.Run(mode.String(), func(b *testing.B) {
			ix, qs := benchIndex(b, mode)
			s := ix.getScratch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchGather(ix, qs.Row(i%qs.N), s)
			}
		})
	}
}

// BenchmarkRank isolates the short-list ranking stage over a fixed
// candidate set.
func BenchmarkRank(b *testing.B) {
	ix, qs := benchIndex(b, ProbeSingle)
	s := ix.getScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRank(ix, qs.Row(i%qs.N), 10, s)
	}
}

// BenchmarkCandidateList measures the external short-list entry point.
func BenchmarkCandidateList(b *testing.B) {
	ix, qs := benchIndex(b, ProbeSingle)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.CandidateList(qs.Row(i % qs.N))
	}
}

// benchGather and benchRank adapt the unexported hot-path internals for
// the stage benchmarks above.
func benchGather(ix *Index, q []float32, s *scratch) int {
	st := ix.gather(q, 20, s)
	return st.Candidates
}

func benchRank(ix *Index, q []float32, k int, s *scratch) int {
	ix.gather(q, 2*k, s)
	res := ix.rank(q, k, s)
	return len(res.IDs)
}

// BenchmarkQueryBatchParallel measures batch throughput (hierarchy mode
// exercises the median rule plus per-worker scratch reuse).
func BenchmarkQueryBatchParallel(b *testing.B) {
	for _, mode := range []ProbeMode{ProbeSingle, ProbeHierarchy} {
		b.Run(fmt.Sprintf("%s", mode), func(b *testing.B) {
			ix, qs := benchIndex(b, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.QueryBatchParallel(qs, 10, 4)
			}
		})
	}
}
