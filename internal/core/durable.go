package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bilsh/internal/durable"
	"bilsh/internal/mmap"
)

// Durable dynamic index: the snapshot+overlay index of dynamic.go plus a
// write-ahead log and atomic checkpoints in a data directory, so that
// every acknowledged insert/delete survives a crash or restart.
//
// A data directory holds two files:
//
//	index.ckpt  generation-stamped checkpoint (the serialized base index)
//	wal.log     CRC32C-framed log of overlay mutations since the checkpoint
//
// Every mutation is appended to the log and applied to the in-memory
// index under one mutex, so log order always equals apply order — the
// invariant replay relies on to regenerate the exact same ids. With
// durable.FsyncAlways (the default) the record is fsynced before the call
// returns, so an acked write is durable; concurrent committers share one
// fsync (group commit).
//
// Checkpoint (and Compact, which on a durable index is a checkpoint)
// folds the overlay into a fresh base, streams it to index.ckpt.tmp,
// fsyncs, renames over index.ckpt, fsyncs the directory, and truncates
// the log. The checkpoint generation pairs the two files: after a crash
// between the rename and the truncation, recovery sees a log generation
// older than the checkpoint's and discards it — its records are already
// folded in. See docs/durability.md for the full lifecycle.

// Data directory file names. The checkpoint name is owned by
// internal/durable so the server's replica-shipping export and this
// package cannot drift.
const (
	ckptFileName = durable.CheckpointFileName
	walFileName  = "wal.log"
)

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Base seeds the directory on first open, before any checkpoint
	// exists; it must be clean (no pending overlay state). It is ignored
	// (and may be nil) once <dir>/index.ckpt exists.
	Base *Index
	// Fsync selects the WAL durability point (zero value FsyncAlways:
	// acked writes are never lost).
	Fsync durable.FsyncPolicy
	// FsyncInterval is the background sync cadence for FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// MemtableThreshold forwards the overlay seal threshold
	// (Options.MemtableThreshold); zero keeps the default.
	MemtableThreshold int
	// AutoCheckpointSegments, when positive, starts a background
	// Checkpoint whenever at least this many frozen overlay segments are
	// pending. It replaces Options.AutoCompactSegments, which OpenDurable
	// forces off: a bare compaction would remap ids out from under the
	// log.
	AutoCheckpointSegments int
	// Mmap switches the checkpoint payload to the paged disk layout
	// (bilsh.Disk/3) and serves the base plane straight off a read-only
	// mapping of index.ckpt instead of heap copies: memory stays
	// proportional to what queries touch, not to the N×D payload. Every
	// Checkpoint writes a paged payload and atomically remaps onto the
	// new generation; the previous mapping is retired to the GC once the
	// last in-flight query drops its snapshot. Checkpoint payloads are
	// self-describing, so either mode opens directories written by the
	// other (a legacy wire payload loads to heap; the next checkpoint
	// converts it).
	Mmap bool
	// Residency is the paging policy for mapped checkpoints (Mmap only).
	Residency ResidencyPolicy
}

// RecoveryInfo reports what OpenDurable found in the data directory.
type RecoveryInfo struct {
	// FromCheckpoint is true when state was loaded from index.ckpt
	// (false: the Base index seeded a fresh directory).
	FromCheckpoint bool
	// Gen is the recovered checkpoint generation.
	Gen uint64
	// Replayed is the number of WAL records re-applied.
	Replayed int
	// TruncatedBytes is the torn/corrupt WAL tail dropped (a crash
	// mid-append leaves one partial record; its write was never acked).
	TruncatedBytes int64
	// DiscardedWAL is true when the whole log was discarded: either its
	// generation predates the checkpoint (crash between checkpoint rename
	// and log truncation — every record was already folded in) or its
	// header was torn (crash inside log creation, before any append on it
	// could have been acked).
	DiscardedWAL bool
}

// DurableIndex is an Index whose mutations are write-ahead logged to a
// data directory. All reader methods are promoted from the embedded
// Index unchanged (reads never touch the log); Insert, Delete, Compact
// and CompactAsync are overridden with durable variants. Do not mutate
// the embedded Index directly — writes that bypass the log are lost on
// restart, and a direct Compact would corrupt the id space the log
// references.
type DurableIndex struct {
	*Index

	dir string
	wal *durable.WAL

	// Recovery describes what OpenDurable found; informational.
	Recovery RecoveryInfo

	// walMu orders WAL appends identically to index application (the
	// replay invariant) and serializes mutations with checkpoints.
	walMu sync.Mutex
	// gen is the current checkpoint generation, guarded by walMu.
	gen uint64
	// failed poisons the index after a half-applied checkpoint (new
	// checkpoint on disk, old log not truncated): appending to the old
	// log would write post-compact ids into a file recovery will discard.
	failed error

	autoCkpt int
	// ckptMu admits one checkpoint at a time (TryLock → ErrCompactBusy).
	ckptMu sync.Mutex

	// Mmap-mode state (nil/zero when DurableOptions.Mmap is off). mapping
	// and res track the generation currently mapped; both are replaced
	// under walMu by the post-checkpoint remap.
	useMmap bool
	resPol  ResidencyPolicy
	mapping *mmap.Mapping
	res     *residency
}

// OpenDurable opens (or seeds) the durable index in dir: it loads the
// newest checkpoint if one exists (falling back to o.Base for a fresh
// directory), replays the WAL tail — stopping cleanly at the first torn
// or corrupt record and truncating it away — and leaves the log open for
// appending. See DurableIndex.Recovery for what happened.
func OpenDurable(dir string, o DurableOptions) (*DurableIndex, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ckptPath := filepath.Join(dir, ckptFileName)
	walPath := filepath.Join(dir, walFileName)
	cfg := durable.WALConfig{Fsync: o.Fsync, Interval: o.FsyncInterval}

	var (
		ix      *Index
		info    RecoveryInfo
		mapping *mmap.Mapping
		res     *residency
	)
	gen, r, err := durable.OpenCheckpoint(ckptPath)
	switch {
	case err == nil:
		// The payload is self-describing: a paged (v3) image opens in
		// place — mapped under o.Mmap, heap-loaded otherwise — while a
		// legacy wire payload decodes through ReadIndex.
		f := r.(*os.File)
		var magic [diskMagicLen]byte
		if _, err := f.ReadAt(magic[:], durable.CheckpointHeaderLen); err == nil &&
			bytes.Equal(magic[:], diskMagicV3[:]) {
			ix, mapping, res, err = openDiskV3(f, durable.CheckpointHeaderLen,
				DiskOpenOptions{ForceHeap: !o.Mmap, Residency: o.Residency})
		} else {
			ix, err = ReadIndex(r)
		}
		r.Close()
		if err != nil {
			return nil, fmt.Errorf("core: loading checkpoint %s: %w", ckptPath, err)
		}
		info.FromCheckpoint = true
	case os.IsNotExist(err):
		if o.Base == nil {
			return nil, fmt.Errorf("core: %s has no checkpoint and no base index was supplied", dir)
		}
		if err := o.Base.loadSnap().requireClean(); err != nil {
			return nil, fmt.Errorf("core: base index: %w", err)
		}
		ix, gen = o.Base, 1
	default:
		return nil, err
	}
	if ix.opts.Metric == MetricHamming {
		// Checkpoints write the paged layout and the WAL replays Inserts,
		// neither of which the static Hamming plane supports.
		return nil, fmt.Errorf("core: Hamming indexes do not support the durable tier; serve them read-only")
	}
	info.Gen = gen
	// A leftover .tmp is a checkpoint that never made it to the rename;
	// it is garbage by construction.
	os.Remove(ckptPath + ".tmp")

	// The durable layer owns compaction: force the inner auto-compact
	// trigger off before any replayed insert could fire it.
	ix.ConfigureDynamic(o.MemtableThreshold, 0)
	ix.mu.Lock()
	ix.opts.AutoCompactSegments = 0
	ix.mu.Unlock()

	d := &DurableIndex{Index: ix, dir: dir, gen: gen, autoCkpt: o.AutoCheckpointSegments,
		useMmap: o.Mmap, resPol: o.Residency, mapping: mapping, res: res}
	hdr := durable.Header{Gen: gen, BaseN: uint64(ix.N()), Dim: ix.Dim()}

	h, err := durable.ReadWALHeader(walPath)
	switch {
	case err == nil && h.Gen == gen:
		if h.Dim != ix.Dim() || h.BaseN != uint64(ix.N()) {
			return nil, fmt.Errorf("core: WAL %s (baseN=%d dim=%d) does not match the recovered index (n=%d dim=%d); wrong base index or data dir?",
				walPath, h.BaseN, h.Dim, ix.N(), ix.Dim())
		}
		_, stats, err := durable.ReplayWAL(walPath, d.applyRecord)
		if err != nil {
			return nil, fmt.Errorf("core: replaying %s: %w", walPath, err)
		}
		info.Replayed = stats.Records
		info.TruncatedBytes = stats.TruncatedBytes
		if d.wal, err = durable.OpenWAL(walPath, cfg); err != nil {
			return nil, err
		}
	case err == nil && h.Gen < gen:
		// Crash between checkpoint publication and WAL truncation: every
		// record in this log is already folded into the checkpoint.
		info.DiscardedWAL = true
		if d.wal, err = durable.CreateWAL(walPath, hdr, cfg); err != nil {
			return nil, err
		}
	case err == nil:
		return nil, fmt.Errorf("core: WAL generation %d is ahead of checkpoint generation %d in %s; data dir corrupt",
			h.Gen, gen, dir)
	case errors.Is(err, durable.ErrBadWALHeader):
		// A torn header can only be left by a crash inside log
		// creation/reset, before any append on the new log was acked.
		info.DiscardedWAL = true
		if d.wal, err = durable.CreateWAL(walPath, hdr, cfg); err != nil {
			return nil, err
		}
	case os.IsNotExist(err):
		if d.wal, err = durable.CreateWAL(walPath, hdr, cfg); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	d.Recovery = info
	return d, nil
}

// applyRecord re-applies one replayed mutation. Replay happens before the
// index is shared, in log order, so ids regenerate exactly.
func (d *DurableIndex) applyRecord(rec durable.Record) error {
	switch rec.Op {
	case durable.OpInsert:
		_, err := d.Index.Insert(rec.Vector)
		return err
	case durable.OpDelete:
		d.Index.Delete(rec.ID) // a no-op delete replays as a no-op
		return nil
	default:
		return fmt.Errorf("core: unknown WAL op %d", rec.Op)
	}
}

// Insert logs v and applies it; the returned id is durable per the fsync
// policy (with FsyncAlways, before Insert returns). Safe for concurrent
// use with queries and other mutators.
func (d *DurableIndex) Insert(v []float32) (int, error) {
	// Validate before logging so the log never holds a record the index
	// would refuse (Insert cannot fail after CheckVector passes).
	if err := CheckVector(d.Dim(), v); err != nil {
		return 0, err
	}
	d.walMu.Lock()
	if d.failed != nil {
		d.walMu.Unlock()
		return 0, d.failed
	}
	seq, err := d.wal.AppendInsert(v)
	if err != nil {
		d.walMu.Unlock()
		return 0, err
	}
	id, err := d.Index.Insert(v)
	frozen := len(d.Index.loadSnap().frozen)
	d.walMu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := d.wal.Commit(seq); err != nil {
		return 0, err
	}
	if d.autoCkpt > 0 && frozen >= d.autoCkpt {
		d.CheckpointAsync() //nolint:errcheck // busy just means one is running
	}
	return id, nil
}

// Delete tombstones id, logging the delete first. It reports whether the
// id was live; no-op deletes are not logged.
func (d *DurableIndex) Delete(id int) bool {
	d.walMu.Lock()
	if d.failed != nil {
		d.walMu.Unlock()
		return false
	}
	// Mutations serialize on walMu, so this pre-check cannot race another
	// writer; it keeps dead/absent ids out of the log.
	sn := d.Index.loadSnap()
	if id < 0 || id >= sn.total() || sn.isDeleted(id) {
		d.walMu.Unlock()
		return false
	}
	seq, err := d.wal.AppendDelete(id)
	if err != nil {
		// Not logged, so not applied: the caller's delete did not happen.
		d.walMu.Unlock()
		return false
	}
	ok := d.Index.Delete(id)
	d.walMu.Unlock()
	d.wal.Commit(seq) //nolint:errcheck // applied; sticky sync errors resurface on the next insert
	return ok
}

// Checkpoint folds the overlay into a fresh base (Compact), streams the
// clean snapshot atomically to <dir>/index.ckpt, and truncates the WAL.
// It returns the id remapping like Compact. Writers are blocked for the
// duration; readers keep running on published snapshots. At most one
// checkpoint runs at a time; concurrent calls fail fast with
// ErrCompactBusy.
func (d *DurableIndex) Checkpoint() ([]int, error) {
	if !d.ckptMu.TryLock() {
		return nil, ErrCompactBusy
	}
	defer d.ckptMu.Unlock()
	return d.checkpoint()
}

// CheckpointAsync starts a Checkpoint in the background, failing fast
// with ErrCompactBusy if one is already running. The id remapping is
// discarded (ids are unstable across compactions; see docs/concurrency.md).
func (d *DurableIndex) CheckpointAsync() error {
	if !d.ckptMu.TryLock() {
		return ErrCompactBusy
	}
	go func() {
		defer d.ckptMu.Unlock()
		d.checkpoint() //nolint:errcheck // reported via metrics
	}()
	return nil
}

// Compact on a durable index is a checkpoint: the fold must reach disk
// and truncate the log in the same critical section, or the log would
// keep referencing the pre-compact id space.
func (d *DurableIndex) Compact() ([]int, error) { return d.Checkpoint() }

// CompactAsync is CheckpointAsync (see Compact).
func (d *DurableIndex) CompactAsync() error { return d.CheckpointAsync() }

// checkpoint runs one checkpoint; caller holds ckptMu.
func (d *DurableIndex) checkpoint() ([]int, error) {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	if d.failed != nil {
		return nil, d.failed
	}
	// Make everything acked so far durable before folding it: if the
	// checkpoint below lands, the log is truncated and can no longer
	// deliver these records.
	if err := d.wal.Sync(); err != nil {
		return nil, err
	}
	mapping, err := d.Index.Compact()
	if err != nil {
		return nil, err
	}
	newGen := d.gen + 1
	ckptPath := filepath.Join(d.dir, ckptFileName)
	err = durable.WriteCheckpoint(ckptPath, newGen, func(w io.Writer) error {
		if d.useMmap {
			// Paged payload: the AtomicWrite callback hands us the real
			// temp *os.File, which seeks — required for the section
			// header back-patch.
			ws, ok := w.(io.WriteSeeker)
			if !ok {
				return fmt.Errorf("core: paged checkpoint requires a seekable writer, got %T", w)
			}
			_, werr := writeDiskV3(ws, d.Index.loadSnap().diskSource(d.Index.opts))
			return werr
		}
		_, werr := d.Index.WriteTo(w)
		return werr
	})
	if err != nil {
		// Nothing was renamed (AtomicWrite cleans up its temp file), so
		// the old checkpoint+log pair is still consistent; keep going.
		return nil, err
	}
	hdr := durable.Header{Gen: newGen, BaseN: uint64(d.Index.N()), Dim: d.Dim()}
	if err := d.wal.Reset(hdr); err != nil {
		// The new checkpoint is on disk but the old log survived.
		// Recovery handles that (stale generation → discard), but this
		// process must not keep appending post-compact ids to a log that
		// recovery will throw away: poison all further mutations.
		d.failed = fmt.Errorf("core: checkpoint written but WAL truncation failed (restart to recover): %w", err)
		return nil, d.failed
	}
	d.gen = newGen
	if d.useMmap {
		// Swap the base plane onto a mapping of the generation just
		// written. Failure is not fatal: the heap base produced by Compact
		// is correct, only not mapped; the next checkpoint retries.
		if err := d.adoptMappedBase(ckptPath); err != nil {
			metRemapErrors.Inc()
		}
	}
	return mapping, nil
}

// adoptMappedBase maps the paged checkpoint at path and publishes a
// snapshot whose base plane aliases the mapping, releasing the heap (or
// previous-generation mapped) base. Caller holds walMu, so no mutation
// can interleave between the Compact that produced this checkpoint and
// the swap — the current snapshot's base plane and the file are
// byte-equivalent, and the overlay is empty. In-flight queries keep
// running on the old snapshot; its backing (heap or old mapping) is
// retired by the GC once they drain — the old mapping is never unmapped
// in place.
func (d *DurableIndex) adoptMappedBase(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	mapIx, m, res, err := openDiskV3(f, durable.CheckpointHeaderLen,
		DiskOpenOptions{Residency: d.resPol})
	if err != nil {
		return err
	}
	msn := mapIx.loadSnap()
	ix := d.Index
	ix.mu.Lock()
	cur := ix.loadSnap()
	next := cur.clone()
	next.data = msn.data
	next.fetch = nil
	next.quant = msn.quant
	next.tree = msn.tree
	next.km = msn.km
	next.groups = msn.groups
	next.mapped = m
	ix.publish(next)
	ix.mu.Unlock()
	d.mapping = m
	d.res = res
	return nil
}

// Mapped reports whether the index is currently serving off an mmap'd
// checkpoint.
func (d *DurableIndex) Mapped() bool {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	return d.mapping != nil && d.mapping.Mapped()
}

// Residency samples resident-set stats for the mapped checkpoint (zero
// value when not mapped).
func (d *DurableIndex) Residency() ResidencyStats {
	d.walMu.Lock()
	res := d.res
	d.walMu.Unlock()
	if res == nil {
		return ResidencyStats{}
	}
	return res.sample()
}

// EnforceResidency applies the residency policy now (see
// DiskIndex.EnforceResidency).
func (d *DurableIndex) EnforceResidency() ResidencyStats {
	d.walMu.Lock()
	res := d.res
	d.walMu.Unlock()
	if res == nil {
		return ResidencyStats{}
	}
	return res.enforce()
}

// Gen returns the current checkpoint generation.
func (d *DurableIndex) Gen() uint64 {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	return d.gen
}

// Close syncs and closes the WAL. The index stays queryable (reads never
// touch the log) but further mutations fail.
func (d *DurableIndex) Close() error {
	d.walMu.Lock()
	if d.failed == nil {
		d.failed = errors.New("core: durable index closed")
	}
	d.walMu.Unlock()
	return d.wal.Close()
}
