package core

import (
	"bilsh/internal/hierarchy"
	"bilsh/internal/multiprobe"
	"bilsh/internal/topk"
)

// scratch is the per-query reusable state that makes the read path
// allocation-free in steady state (the Section V design goal: the short
// list should be gathered and ranked at memory bandwidth, not at the
// allocator's pace). One scratch serves one query at a time:
//
//   - Query draws one from the index's sync.Pool and returns it;
//   - QueryBatch reuses a single scratch across the whole batch;
//   - QueryBatchParallel gives each worker goroutine its own.
//
// Candidate dedup uses an epoch-stamped visited array instead of a map:
// visited[id] == epoch means id was already collected this query, and
// bumping epoch invalidates all stamps at once, so there is nothing to
// clear between queries.
type scratch struct {
	proj    []float64 // projection buffer (len M)
	key     []byte    // bucket key byte buffer
	okey    []byte    // composed overlay key buffer (group+table prefix)
	cands   []int32   // deduplicated candidate ids, in collection order
	visited []uint32  // per-id stamp; visited[id] == epoch <=> collected
	epoch   uint32
	hierIDs []int32 // raw hierarchy group ids before dedup

	hier hierarchy.Scratch
	mp   multiprobe.Scratch

	heap  *topk.Heap
	items []topk.Item // reusable sorted-heap output
	dists []float64   // rank distance buffer

	// Hamming query state (see gatherHamming): the packed query sketch,
	// per-plane margins, the per-table key-bit flip order (sorted by
	// ascending |margin|) and the probe key currently being flipped.
	qbits    []uint64
	qmarg    []float64
	bitOrder []int
	flipKey  []byte

	// Quantized-scan re-rank state (see rankBaseQuantized): a second
	// bounded heap selects the top k×RerankFactor approximate candidates,
	// whose ids and exact distances reuse these buffers.
	rheap  *topk.Heap
	ritems []topk.Item
	rids   []int32
	rdists []float64
}

// getScratch draws a scratch from the pool (the pool's zero value works:
// a nil entry becomes a fresh zero scratch whose buffers grow on first
// use).
func (ix *Index) getScratch() *scratch {
	s, _ := ix.scratchPool.Get().(*scratch)
	if s == nil {
		s = &scratch{}
	}
	return s
}

func (ix *Index) putScratch(s *scratch) { ix.scratchPool.Put(s) }

// begin readies the scratch for one query against the snapshot sn: sizes
// the projection and visited buffers and opens a fresh dedup epoch. The
// visited array covers every id sn can ever surface — the active memtable
// counts at full capacity, so rows published after begin still stamp in
// bounds.
func (s *scratch) begin(sn *snapshot) {
	if m := sn.opts.Params.M; cap(s.proj) < m {
		s.proj = make([]float64, m)
	} else {
		s.proj = s.proj[:m]
	}
	if sn.sketcher != nil {
		if w := sn.sketcher.Words(); cap(s.qbits) < w {
			s.qbits = make([]uint64, w)
		} else {
			s.qbits = s.qbits[:w]
		}
		if b := sn.sketcher.Bits(); cap(s.qmarg) < b {
			s.qmarg = make([]float64, b)
		} else {
			s.qmarg = s.qmarg[:b]
		}
	}
	if total := sn.idCapacity(); len(s.visited) < total {
		s.visited = make([]uint32, total)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // stamp wraparound: all stamps stale, reset
		clear(s.visited)
		s.epoch = 1
	}
	s.cands = s.cands[:0]
}

// topK returns the reusable bounded heap, re-created only when k changes.
func (s *scratch) topK(k int) *topk.Heap {
	if s.heap == nil || s.heap.K() != k {
		s.heap = topk.New(k)
	} else {
		s.heap.Reset()
	}
	return s.heap
}

// rerankTopK returns the reusable re-rank shortlist heap, re-created only
// when the shortlist size changes.
func (s *scratch) rerankTopK(r int) *topk.Heap {
	if s.rheap == nil || s.rheap.K() != r {
		s.rheap = topk.New(r)
	} else {
		s.rheap.Reset()
	}
	return s.rheap
}

// addCandidates stamps and appends every live, not-yet-seen id, counting
// scanned (pre-dedup, post-tombstone) entries like the original map-based
// gather did. This is the single candidate-collection core shared by all
// probe modes and by the median rule's plain short-list sizing, so
// deleted-row filtering and overlay handling cannot diverge between them.
func (sn *snapshot) addCandidates(s *scratch, st *QueryStats, ids []int) {
	for _, id := range ids {
		if sn.isDeleted(id) {
			continue
		}
		st.Scanned++
		if s.visited[id] == s.epoch {
			continue
		}
		s.visited[id] = s.epoch
		s.cands = append(s.cands, int32(id))
	}
}

// addCandidates32 is addCandidates for int32 id buffers (hierarchy output
// and overlay buckets).
func (sn *snapshot) addCandidates32(s *scratch, st *QueryStats, ids []int32) {
	for _, id := range ids {
		if sn.isDeleted(int(id)) {
			continue
		}
		st.Scanned++
		if s.visited[id] == s.epoch {
			continue
		}
		s.visited[id] = s.epoch
		s.cands = append(s.cands, id)
	}
}
