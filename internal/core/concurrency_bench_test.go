package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bilsh/internal/xrand"
)

// readLatencies records per-read wall-clock samples so the benchmark can
// report percentiles rather than only the blended mean (ns/op mixes cheap
// reads with expensive write pairs, and on small machines a background
// compaction can skew the mean without touching the typical read).
type readLatencies struct {
	next    atomic.Int64
	samples []int64
}

func newReadLatencies() *readLatencies {
	return &readLatencies{samples: make([]int64, 1<<20)}
}

func (r *readLatencies) add(d time.Duration) {
	if i := r.next.Add(1) - 1; int(i) < len(r.samples) {
		r.samples[i] = int64(d)
	}
}

// report emits read-p50-ns and read-mean-ns.
func (r *readLatencies) report(b *testing.B) {
	n := int(r.next.Load())
	if n > len(r.samples) {
		n = len(r.samples)
	}
	if n == 0 {
		return
	}
	s := r.samples[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum int64
	for _, v := range s {
		sum += v
	}
	b.ReportMetric(float64(s[n/2]), "read-p50-ns")
	b.ReportMetric(float64(sum)/float64(n), "read-mean-ns")
}

var readWriteMixes = []struct {
	name        string
	writePerMil int // writes per 1000 ops
}{
	{"readonly", 0},
	{"mix95-5", 50},
	{"mix50-50", 500},
}

// BenchmarkMixedReadWrite measures query latency under concurrent mixed
// workloads (make bench-concurrency; see docs/performance.md). A write op
// is an insert immediately followed by a delete of the inserted id, so the
// index size stays steady for any b.N. The read-only case is the baseline
// the mixed cases are judged against: with snapshot reads, a small write
// fraction should barely move the typical read (read-p50-ns).
func BenchmarkMixedReadWrite(b *testing.B) {
	for _, mix := range readWriteMixes {
		b.Run(mix.name, func(b *testing.B) {
			ix, qs := benchIndex(b, ProbeSingle)
			ix.ConfigureDynamic(1024, 4)
			lat := newReadLatencies()
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := xrand.New(7919 * seq.Add(1))
				for pb.Next() {
					if mix.writePerMil > 0 && rng.Intn(1000) < mix.writePerMil {
						id, err := ix.Insert(qs.Row(rng.Intn(qs.N)))
						if err != nil {
							b.Error(err)
							return
						}
						ix.Delete(id)
					} else {
						t0 := time.Now()
						ix.Query(qs.Row(rng.Intn(qs.N)), 10)
						lat.add(time.Since(t0))
					}
				}
			})
			b.StopTimer()
			lat.report(b)
		})
	}
}

// BenchmarkRWMutexMixedReadWrite is the comparison baseline: the same
// workloads against the same index but serialized through one global
// RWMutex, the pre-snapshot concurrency model. The gap against
// BenchmarkMixedReadWrite is what the snapshot refactor buys; it widens
// with core count, since RLock/RUnlock bounce a cache line that snapshot
// loads never touch.
func BenchmarkRWMutexMixedReadWrite(b *testing.B) {
	for _, mix := range readWriteMixes {
		if mix.writePerMil == 0 {
			continue // identical to MixedReadWrite/readonly plus lock noise
		}
		b.Run(mix.name, func(b *testing.B) {
			ix, qs := benchIndex(b, ProbeSingle)
			ix.ConfigureDynamic(1024, 4)
			lat := newReadLatencies()
			var mu sync.RWMutex
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := xrand.New(6271 * seq.Add(1))
				for pb.Next() {
					if rng.Intn(1000) < mix.writePerMil {
						mu.Lock()
						id, err := ix.Insert(qs.Row(rng.Intn(qs.N)))
						if err == nil {
							ix.Delete(id)
						}
						mu.Unlock()
						if err != nil {
							b.Error(err)
							return
						}
					} else {
						t0 := time.Now()
						mu.RLock()
						ix.Query(qs.Row(rng.Intn(qs.N)), 10)
						mu.RUnlock()
						lat.add(time.Since(t0))
					}
				}
			})
			b.StopTimer()
			lat.report(b)
		})
	}
}
