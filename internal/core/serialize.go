package core

import (
	"fmt"
	"io"

	"bilsh/internal/hierarchy"
	"bilsh/internal/kmeans"
	"bilsh/internal/lattice"
	"bilsh/internal/lshfunc"
	"bilsh/internal/lshtable"
	"bilsh/internal/rptree"
	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

// Index file layout (all sections tagged, see internal/wire):
//
//	bilsh.Index/1
//	  options
//	  data matrix (the index is self-contained)
//	  partitioner (none | rptree | kmeans)
//	  groups: members, width, family, L tables
//
// Hierarchies are derived state and are rebuilt on load, which keeps the
// file format independent of their in-memory representation. The
// disk-backed variant (see diskindex.go) stores the same metadata but
// keeps the vector rows in a separate fixed-stride section accessed with
// ReadAt.
const indexMagic = "bilsh.Index/1"

// WriteTo serializes the index (including its data) to w. It returns the
// number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	if err := ix.requireClean(); err != nil {
		return 0, err
	}
	ww := wire.NewWriter(w)
	ww.Magic(indexMagic)
	ix.writeOptions(ww)
	ix.data.Encode(ww)
	ix.writeStructure(ww)
	if err := ww.Flush(); err != nil {
		return ww.BytesWritten(), fmt.Errorf("core: writing index: %w", err)
	}
	return ww.BytesWritten(), nil
}

// requireClean refuses serialization with pending dynamic state.
func (ix *Index) requireClean() error {
	if ix.dynamic != nil && (len(ix.dynamic.extra) > 0 || len(ix.dynamic.deleted) > 0) {
		return fmt.Errorf("core: index has pending inserts/deletes; call Compact before writing")
	}
	return nil
}

// writeOptions emits the option block.
func (ix *Index) writeOptions(ww *wire.Writer) {
	o := ix.opts
	ww.Int(int(o.Lattice))
	ww.Int(int(o.Partitioner))
	ww.Int(o.Groups)
	ww.Int(int(o.RPRule))
	ww.Int(o.Params.M)
	ww.Int(o.Params.L)
	ww.F64(o.Params.W)
	ww.Int(int(o.ProbeMode))
	ww.Int(o.Probes)
	ww.Bool(o.AutoTuneW)
	ww.Int(o.TuneK)
	ww.F64(o.TuneTargetRecall)
	ww.Int(o.MortonBits)
	ww.Int(o.HierMinCandidates)
	ww.Int(o.MinGroupSize)
}

// writeStructure emits the partitioner and the per-group machinery.
func (ix *Index) writeStructure(ww *wire.Writer) {
	switch {
	case ix.tree != nil:
		ww.String("rptree")
		ix.tree.Encode(ww)
	case ix.km != nil:
		ww.String("kmeans")
		ix.km.Encode(ww)
	default:
		ww.String("none")
	}
	ww.Int(len(ix.groups))
	for _, g := range ix.groups {
		ww.Ints(g.members)
		ww.F64(g.w)
		g.fam.Encode(ww)
		ww.Int(len(g.tables))
		for _, tab := range g.tables {
			tab.Encode(ww)
		}
	}
}

// readOptions parses the option block.
func readOptions(rr *wire.Reader) (Options, error) {
	var o Options
	o.Lattice = LatticeKind(rr.Int())
	o.Partitioner = PartitionerKind(rr.Int())
	o.Groups = rr.Int()
	o.RPRule = rptree.Rule(rr.Int())
	o.Params.M = rr.Int()
	o.Params.L = rr.Int()
	o.Params.W = rr.F64()
	o.ProbeMode = ProbeMode(rr.Int())
	o.Probes = rr.Int()
	o.AutoTuneW = rr.Bool()
	o.TuneK = rr.Int()
	o.TuneTargetRecall = rr.F64()
	o.MortonBits = rr.Int()
	o.HierMinCandidates = rr.Int()
	o.MinGroupSize = rr.Int()
	if err := rr.Err(); err != nil {
		return o, fmt.Errorf("core: reading options: %w", err)
	}
	if err := o.Params.Validate(); err != nil {
		return o, fmt.Errorf("core: decoded options invalid: %w", err)
	}
	return o, nil
}

// readStructure parses the partitioner and groups into ix and rebuilds
// derived state (cuckoo indexes, hierarchies). n is the row count used for
// member validation.
func readStructure(rr *wire.Reader, ix *Index, n int) error {
	o := ix.opts
	switch kind := rr.String(); kind {
	case "rptree":
		tree, err := rptree.DecodeTree(rr)
		if err != nil {
			return fmt.Errorf("core: reading rptree: %w", err)
		}
		ix.tree = tree
	case "kmeans":
		km, err := kmeans.DecodeModel(rr)
		if err != nil {
			return fmt.Errorf("core: reading kmeans: %w", err)
		}
		ix.km = km
	case "none":
	default:
		if err := rr.Err(); err != nil {
			return err
		}
		return fmt.Errorf("core: unknown partitioner section %q", kind)
	}

	nGroups := rr.Int()
	if err := rr.Err(); err != nil {
		return err
	}
	if nGroups < 1 || nGroups > 1<<20 {
		return fmt.Errorf("core: decoded group count %d implausible", nGroups)
	}
	ix.groups = make([]*group, nGroups)
	for gi := range ix.groups {
		g := &group{
			members: rr.Ints(),
			w:       rr.F64(),
		}
		fam, err := lshfunc.DecodeFamily(rr)
		if err != nil {
			return fmt.Errorf("core: group %d family: %w", gi, err)
		}
		g.fam = fam
		switch o.Lattice {
		case LatticeZM:
			g.lat = lattice.NewZM(o.Params.M)
		case LatticeE8:
			g.lat = lattice.NewE8(o.Params.M)
		case LatticeDn:
			g.lat = lattice.NewDn(o.Params.M)
		default:
			return fmt.Errorf("core: decoded lattice kind %d unknown", int(o.Lattice))
		}
		nTables := rr.Int()
		if err := rr.Err(); err != nil {
			return err
		}
		if nTables != o.Params.L {
			return fmt.Errorf("core: group %d has %d tables, options say %d", gi, nTables, o.Params.L)
		}
		g.tables = make([]*lshtable.Table, nTables)
		for t := range g.tables {
			tab, err := lshtable.DecodeTable(rr)
			if err != nil {
				return fmt.Errorf("core: group %d table %d: %w", gi, t, err)
			}
			g.tables[t] = tab
		}
		for _, id := range g.members {
			if id < 0 || id >= n {
				return fmt.Errorf("core: group %d references row %d of %d", gi, id, n)
			}
		}
		ix.groups[gi] = g
	}
	if err := rr.Err(); err != nil {
		return err
	}

	if o.ProbeMode == ProbeHierarchy {
		for gi, g := range ix.groups {
			switch lat := g.lat.(type) {
			case *lattice.ZM:
				g.mortonH = make([]*hierarchy.Morton, len(g.tables))
				for t, tab := range g.tables {
					h, err := hierarchy.NewMorton(tab, o.Params.M, o.MortonBits)
					if err != nil {
						return fmt.Errorf("core: group %d morton hierarchy: %w", gi, err)
					}
					g.mortonH[t] = h
				}
			default:
				g.e8H = make([]*hierarchy.E8Tree, len(g.tables))
				for t, tab := range g.tables {
					h, err := hierarchy.NewE8Tree(tab, lat)
					if err != nil {
						return fmt.Errorf("core: group %d lattice hierarchy: %w", gi, err)
					}
					g.e8H[t] = h
				}
			}
		}
	}
	return nil
}

// ReadIndex deserializes an index written by WriteTo, rebuilding all
// derived structures (cuckoo bucket indexes, hierarchies).
func ReadIndex(r io.Reader) (*Index, error) {
	rr := wire.NewReader(r)
	rr.ExpectMagic(indexMagic)
	o, err := readOptions(rr)
	if err != nil {
		return nil, err
	}
	data, err := vec.DecodeMatrix(rr)
	if err != nil {
		return nil, fmt.Errorf("core: reading data: %w", err)
	}
	ix := &Index{data: data, opts: o}
	if err := readStructure(rr, ix, data.N); err != nil {
		return nil, err
	}
	return ix, nil
}
