package core

import (
	"errors"
	"fmt"
	"io"

	"bilsh/internal/hierarchy"
	"bilsh/internal/kmeans"
	"bilsh/internal/lattice"
	"bilsh/internal/lshfunc"
	"bilsh/internal/lshtable"
	"bilsh/internal/rptree"
	"bilsh/internal/vec"
	"bilsh/internal/wire"
)

// Index file layout (all sections tagged, see internal/wire):
//
//	bilsh.Index/2
//	  options (v2 appends Quantize and RerankFactor to the v1 block)
//	  data matrix (the index is self-contained)
//	  quantized row store (v2 only: presence flag + SQ8 code matrix)
//	  partitioner (none | rptree | kmeans)
//	  groups: members, width, family, L tables
//
// Hierarchies are derived state and are rebuilt on load, which keeps the
// file format independent of their in-memory representation. The
// disk-backed variant (see diskindex.go) stores the same metadata but
// keeps the vector rows in a separate fixed-stride section accessed with
// ReadAt. Dynamic runtime knobs (memtable threshold, auto-compact) are
// deliberately not part of the format; they are re-supplied at load time.
//
// Version 1 files (no quantization fields or section) still load: the
// reader branches on the magic and defaults Quantize to none, so a v1
// index queries byte-identically to how it did when written.
//
// Version 4 ("bilsh.Index/4"; /3 belongs to the paged disk layout, see
// disklayout.go) carries the Hamming metric family: the option block gains
// Metric and Bits, a Hamming section (hyperplane sketcher + packed sketch
// matrix) follows the quantized-rows section, and each group stores a bit
// sampler in place of the p-stable family. WriteTo only emits v4 when the
// metric is non-Euclidean, so every Euclidean index keeps writing v2
// byte-identically and old readers keep working.
const (
	indexMagicV1 = "bilsh.Index/1"
	indexMagic   = "bilsh.Index/2"
	indexMagicV4 = "bilsh.Index/4"
)

// WriteTo serializes the index (including its data) to w. It returns the
// number of bytes written. The snapshot current at the time of the call is
// written; concurrent mutations do not corrupt the output, but WriteTo
// refuses snapshots with pending overlay state (Compact first).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	sn := ix.loadSnap()
	if err := sn.requireClean(); err != nil {
		return 0, err
	}
	ww := wire.NewWriter(w)
	if ix.opts.Metric == MetricEuclidean {
		ww.Magic(indexMagic)
	} else {
		ww.Magic(indexMagicV4)
	}
	writeOptions(ww, ix.opts)
	if ix.opts.Metric != MetricEuclidean {
		// v4 extends the v2 option block in place.
		ww.Int(int(ix.opts.Metric))
		ww.Int(ix.opts.Bits)
	}
	sn.data.Encode(ww)
	writeQuant(ww, sn.quant)
	if ix.opts.Metric == MetricHamming {
		sn.sketcher.Encode(ww)
		sn.sketches.Encode(ww)
	}
	writeStructure(ww, sn.tree, sn.km, sn.groups)
	if err := ww.Flush(); err != nil {
		return ww.BytesWritten(), fmt.Errorf("core: writing index: %w", err)
	}
	return ww.BytesWritten(), nil
}

// ErrDirtyIndex is returned by WriteTo and WriteDiskTo when the index has
// pending overlay inserts or deletes: the wire format holds only the base
// plane, so serializing now would silently drop acked mutations. Call
// Compact first (or serve the index through a durable data directory,
// whose checkpoints do exactly that). The server maps this error to HTTP
// 409 on POST /save.
var ErrDirtyIndex = errors.New("core: index has pending inserts/deletes; call Compact before writing")

// requireClean refuses serialization with pending dynamic state.
func (sn *snapshot) requireClean() error {
	if sn.hasOverlay() || sn.dead.count() > 0 {
		return ErrDirtyIndex
	}
	return nil
}

// writeOptions emits the v2 option block: the v1 flat fields followed by
// the quantization knobs.
func writeOptions(ww *wire.Writer, o Options) {
	ww.Int(int(o.Lattice))
	ww.Int(int(o.Partitioner))
	ww.Int(o.Groups)
	ww.Int(int(o.RPRule))
	ww.Int(o.Params.M)
	ww.Int(o.Params.L)
	ww.F64(o.Params.W)
	ww.Int(int(o.ProbeMode))
	ww.Int(o.Probes)
	ww.Bool(o.AutoTuneW)
	ww.Int(o.TuneK)
	ww.F64(o.TuneTargetRecall)
	ww.Int(o.MortonBits)
	ww.Int(o.HierMinCandidates)
	ww.Int(o.MinGroupSize)
	ww.Int(int(o.Quantize))
	ww.Int(o.RerankFactor)
}

// writeQuant emits the optional quantized row store section (a presence
// flag, so an SQ8 index whose code matrix is empty round-trips cleanly).
func writeQuant(ww *wire.Writer, qm *vec.QuantizedMatrix) {
	ww.Bool(qm != nil)
	if qm != nil {
		qm.Encode(ww)
	}
}

// readQuant parses the quantized row store section written by writeQuant
// and checks its shape against the data matrix.
func readQuant(rr *wire.Reader, n, d int) (*vec.QuantizedMatrix, error) {
	has := rr.Bool()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("core: reading quant flag: %w", err)
	}
	if !has {
		return nil, nil
	}
	qm, err := vec.DecodeQuantizedMatrix(rr)
	if err != nil {
		return nil, fmt.Errorf("core: reading quantized rows: %w", err)
	}
	if qm.N != n || qm.D != d {
		return nil, fmt.Errorf("core: quantized rows %dx%d do not match data %dx%d", qm.N, qm.D, n, d)
	}
	return qm, nil
}

// writeStructure emits the partitioner and the per-group machinery.
func writeStructure(ww *wire.Writer, tree *rptree.Tree, km *kmeans.Model, groups []*group) {
	switch {
	case tree != nil:
		ww.String("rptree")
		tree.Encode(ww)
	case km != nil:
		ww.String("kmeans")
		km.Encode(ww)
	default:
		ww.String("none")
	}
	ww.Int(len(groups))
	for _, g := range groups {
		ww.Ints(g.members)
		ww.F64(g.w)
		// The hash-function section is self-tagged (family vs bit sampler),
		// so readers recover the right decoder from the group itself.
		if g.bsamp != nil {
			g.bsamp.Encode(ww)
		} else {
			g.fam.Encode(ww)
		}
		ww.Int(len(g.tables))
		for _, tab := range g.tables {
			tab.Encode(ww)
		}
	}
}

// readOptions parses the option block. version is the container format
// version (from the magic): v1 files predate the quantization knobs, which
// default to none / defaultRerankFactor so old indexes query exactly as
// they did when written.
func readOptions(rr *wire.Reader, version int) (Options, error) {
	var o Options
	o.Lattice = LatticeKind(rr.Int())
	o.Partitioner = PartitionerKind(rr.Int())
	o.Groups = rr.Int()
	o.RPRule = rptree.Rule(rr.Int())
	o.Params.M = rr.Int()
	o.Params.L = rr.Int()
	o.Params.W = rr.F64()
	o.ProbeMode = ProbeMode(rr.Int())
	o.Probes = rr.Int()
	o.AutoTuneW = rr.Bool()
	o.TuneK = rr.Int()
	o.TuneTargetRecall = rr.F64()
	o.MortonBits = rr.Int()
	o.HierMinCandidates = rr.Int()
	o.MinGroupSize = rr.Int()
	if version >= 2 {
		o.Quantize = QuantizeKind(rr.Int())
		o.RerankFactor = rr.Int()
	} else {
		o.Quantize = QuantizeNone
		o.RerankFactor = defaultRerankFactor
	}
	if version >= 4 {
		o.Metric = MetricKind(rr.Int())
		o.Bits = rr.Int()
	}
	if err := rr.Err(); err != nil {
		return o, fmt.Errorf("core: reading options: %w", err)
	}
	// Validate every decoded field, not just Params: a corrupt or hostile
	// file must not smuggle an out-of-range ProbeMode or a negative
	// Probes/Groups/MortonBits/HierMinCandidates into a live index.
	if err := o.Validate(); err != nil {
		return o, fmt.Errorf("core: decoded options invalid: %w", err)
	}
	return o, nil
}

// readStructure parses the partitioner and groups and rebuilds derived
// state (cuckoo indexes, hierarchies). n is the row count used for member
// validation.
func readStructure(rr *wire.Reader, o Options, n int) (*rptree.Tree, *kmeans.Model, []*group, error) {
	var (
		tree *rptree.Tree
		km   *kmeans.Model
	)
	switch kind := rr.String(); kind {
	case "rptree":
		t, err := rptree.DecodeTree(rr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: reading rptree: %w", err)
		}
		tree = t
	case "kmeans":
		m, err := kmeans.DecodeModel(rr)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: reading kmeans: %w", err)
		}
		km = m
	case "none":
	default:
		if err := rr.Err(); err != nil {
			return nil, nil, nil, err
		}
		return nil, nil, nil, fmt.Errorf("core: unknown partitioner section %q", kind)
	}

	nGroups := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, nil, nil, err
	}
	if nGroups < 1 || nGroups > 1<<20 {
		return nil, nil, nil, fmt.Errorf("core: decoded group count %d implausible", nGroups)
	}
	groups := make([]*group, nGroups)
	for gi := range groups {
		g := &group{
			members: rr.Ints(),
			w:       rr.F64(),
		}
		if o.Metric == MetricHamming {
			bs, err := lshfunc.DecodeBitSampler(rr)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: group %d bit sampler: %w", gi, err)
			}
			if bs.Bits() != o.Bits || bs.M() != o.Params.M || bs.L() != o.Params.L {
				return nil, nil, nil, fmt.Errorf("core: group %d sampler shape (bits=%d M=%d L=%d) does not match options (bits=%d M=%d L=%d)",
					gi, bs.Bits(), bs.M(), bs.L(), o.Bits, o.Params.M, o.Params.L)
			}
			g.bsamp = bs
		} else {
			fam, err := lshfunc.DecodeFamily(rr)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: group %d family: %w", gi, err)
			}
			g.fam = fam
			switch o.Lattice {
			case LatticeZM:
				g.lat = lattice.NewZM(o.Params.M)
			case LatticeE8:
				g.lat = lattice.NewE8(o.Params.M)
			case LatticeDn:
				g.lat = lattice.NewDn(o.Params.M)
			default:
				return nil, nil, nil, fmt.Errorf("core: decoded lattice kind %d unknown", int(o.Lattice))
			}
		}
		nTables := rr.Int()
		if err := rr.Err(); err != nil {
			return nil, nil, nil, err
		}
		if nTables != o.Params.L {
			return nil, nil, nil, fmt.Errorf("core: group %d has %d tables, options say %d", gi, nTables, o.Params.L)
		}
		g.tables = make([]*lshtable.Table, nTables)
		for t := range g.tables {
			tab, err := lshtable.DecodeTable(rr)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: group %d table %d: %w", gi, t, err)
			}
			g.tables[t] = tab
		}
		for _, id := range g.members {
			if id < 0 || id >= n {
				return nil, nil, nil, fmt.Errorf("core: group %d references row %d of %d", gi, id, n)
			}
		}
		groups[gi] = g
	}
	if err := rr.Err(); err != nil {
		return nil, nil, nil, err
	}

	if o.ProbeMode == ProbeHierarchy {
		for gi, g := range groups {
			switch lat := g.lat.(type) {
			case *lattice.ZM:
				g.mortonH = make([]*hierarchy.Morton, len(g.tables))
				for t, tab := range g.tables {
					h, err := hierarchy.NewMorton(tab, o.Params.M, o.MortonBits)
					if err != nil {
						return nil, nil, nil, fmt.Errorf("core: group %d morton hierarchy: %w", gi, err)
					}
					g.mortonH[t] = h
				}
			default:
				g.e8H = make([]*hierarchy.E8Tree, len(g.tables))
				for t, tab := range g.tables {
					h, err := hierarchy.NewE8Tree(tab, lat)
					if err != nil {
						return nil, nil, nil, fmt.Errorf("core: group %d lattice hierarchy: %w", gi, err)
					}
					g.e8H[t] = h
				}
			}
		}
	}
	return tree, km, groups, nil
}

// ReadIndex deserializes an index written by WriteTo (current or v1
// format), rebuilding all derived structures (cuckoo bucket indexes,
// hierarchies).
func ReadIndex(r io.Reader) (*Index, error) {
	rr := wire.NewReader(r)
	var version int
	switch got := rr.String(); got {
	case indexMagicV1:
		version = 1
	case indexMagic:
		version = 2
	case indexMagicV4:
		version = 4
	default:
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("core: reading index magic: %w", err)
		}
		return nil, fmt.Errorf("core: expected section %q, found %q", indexMagic, got)
	}
	o, err := readOptions(rr, version)
	if err != nil {
		return nil, err
	}
	data, err := vec.DecodeMatrix(rr)
	if err != nil {
		return nil, fmt.Errorf("core: reading data: %w", err)
	}
	var quant *vec.QuantizedMatrix
	if version >= 2 {
		if quant, err = readQuant(rr, data.N, data.D); err != nil {
			return nil, err
		}
	}
	var (
		sk       *lshfunc.Sketcher
		sketches *vec.BinaryMatrix
	)
	if o.Metric == MetricHamming {
		if sk, err = lshfunc.DecodeSketcher(rr); err != nil {
			return nil, fmt.Errorf("core: reading sketcher: %w", err)
		}
		if sketches, err = vec.DecodeBinaryMatrix(rr); err != nil {
			return nil, fmt.Errorf("core: reading sketches: %w", err)
		}
		if sk.D() != data.D || sk.Bits() != o.Bits {
			return nil, fmt.Errorf("core: sketcher (d=%d bits=%d) does not match data d=%d / options bits=%d",
				sk.D(), sk.Bits(), data.D, o.Bits)
		}
		if sketches.N != data.N || sketches.Bits != o.Bits {
			return nil, fmt.Errorf("core: sketches %dx%d do not match data rows %d / options bits %d",
				sketches.N, sketches.Bits, data.N, o.Bits)
		}
	}
	tree, km, groups, err := readStructure(rr, o, data.N)
	if err != nil {
		return nil, err
	}
	ix := newIndex(o, data, nil, quant, tree, km, groups)
	ix.attachHamming(sk, sketches)
	return ix, nil
}
