package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"bilsh/internal/dataset"
	"bilsh/internal/durable"
	"bilsh/internal/kmeans"
	"bilsh/internal/lattice"
	"bilsh/internal/lshfunc"
	"bilsh/internal/lshtable"
	"bilsh/internal/rptree"
	"bilsh/internal/tuner"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Out-of-core construction — the build-side half of the paper's future
// work on very large datasets. BuildDisk streams an fvecs file in three
// passes with memory bounded by max(sample, largest group, id arrays),
// never materializing the full N×D matrix:
//
//	pass 1  reservoir-sample S rows; build the level-1 partitioner and
//	        tune per-group widths on the sample;
//	pass 2  stream rows: route each to its group, appending the vector to
//	        a per-group spill file, and append the raw row to the payload
//	        spill (already in final id order);
//	pass 3  per group, load the spill (one group in memory at a time),
//	        hash into L tables, and emit the disk-backed index file with
//	        the payload section copied from the spill.
//
// The produced file is a standard disk index: OpenDisk serves it with
// vectors on disk.

// OutOfCoreConfig bounds the streaming build.
type OutOfCoreConfig struct {
	// SampleSize is the reservoir size used for the partitioner and the
	// tuner (default 4096).
	SampleSize int
	// TempDir holds the spill files (default os.TempDir()).
	TempDir string
}

func (c *OutOfCoreConfig) fill() {
	if c.SampleSize <= 0 {
		c.SampleSize = 4096
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
}

// BuildDisk streams dataPath (fvecs) into a disk-backed index at outPath.
// It returns the number of indexed rows.
func BuildDisk(dataPath, outPath string, opts Options, cfg OutOfCoreConfig, rng *xrand.RNG) (int, error) {
	if err := opts.fill(); err != nil {
		return 0, err
	}
	if opts.Metric == MetricHamming {
		return 0, fmt.Errorf("core: Hamming indexes do not support out-of-core construction; use Build + WriteTo")
	}
	cfg.fill()

	// ---- Pass 1: reservoir sample.
	srng := rng.Split(1)
	var sampleRows [][]float32
	n, dim, err := dataset.ScanFvecs(dataPath, func(i int, row []float32) error {
		if len(sampleRows) < cfg.SampleSize {
			sampleRows = append(sampleRows, vec.Clone(row))
			return nil
		}
		if j := srng.Intn(i + 1); j < cfg.SampleSize {
			copy(sampleRows[j], row)
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("core: out-of-core pass 1: %w", err)
	}
	if n == 0 {
		return 0, fmt.Errorf("core: out-of-core: %s is empty", dataPath)
	}
	sample := vec.FromRows(sampleRows)

	// Partitioner on the sample. The index file is built from these local
	// structures; no in-memory Index is ever materialized.
	var (
		tree *rptree.Tree
		km   *kmeans.Model
	)
	var sampleMembers [][]int
	switch opts.Partitioner {
	case PartitionNone:
		all := make([]int, sample.N)
		for i := range all {
			all[i] = i
		}
		sampleMembers = [][]int{all}
	case PartitionRPTree:
		var asg *rptree.Assignment
		tree, asg = rptree.Build(sample, rptree.Options{
			Rule: opts.RPRule, Leaves: opts.Groups, MinLeafSize: opts.MinGroupSize,
		}, rng.Split(2))
		sampleMembers = asg.Members
	case PartitionKMeans:
		var asg *kmeans.Assignment
		km, asg = kmeans.Build(sample, kmeans.Options{K: opts.Groups}, rng.Split(2))
		sampleMembers = asg.Members
	default:
		return 0, fmt.Errorf("core: unknown partitioner %v", opts.Partitioner)
	}
	routeOf := func(v []float32) int {
		switch {
		case tree != nil:
			return tree.Leaf(v)
		case km != nil:
			return km.Assign(v)
		default:
			return 0
		}
	}
	nGroups := len(sampleMembers)

	// Per-group widths and hash families from the sample.
	grng := rng.Split(3)
	groups := make([]*group, nGroups)
	for gi, members := range sampleMembers {
		g := &group{}
		gr := grng.Split(int64(gi))
		w := opts.Params.W
		if opts.AutoTuneW && len(members) >= 2 {
			perTable := 1 - math.Pow(1-opts.TuneTargetRecall, 1/float64(opts.Params.L))
			if perTable <= 0 {
				perTable = 1e-6
			}
			if perTable >= 1 {
				perTable = 1 - 1e-6
			}
			est, err := tuner.EstimateW(sample, members, opts.TuneK, opts.Params.M,
				perTable, tuner.Config{}, gr.Split(100))
			if err != nil {
				return 0, err
			}
			if est.W > 0 && est.Samples > 0 {
				w = est.W * opts.Params.W
			}
		}
		g.w = w
		params := opts.Params
		params.W = w
		fam, err := lshfunc.NewFamily(dim, params, gr.Split(101))
		if err != nil {
			return 0, err
		}
		g.fam = fam
		switch opts.Lattice {
		case LatticeZM:
			g.lat = lattice.NewZM(params.M)
		case LatticeE8:
			g.lat = lattice.NewE8(params.M)
		case LatticeDn:
			g.lat = lattice.NewDn(params.M)
		default:
			return 0, fmt.Errorf("core: unknown lattice %v", opts.Lattice)
		}
		groups[gi] = g
	}

	// ---- Pass 2: route rows to group spills and stream the payload.
	tmp, err := os.MkdirTemp(cfg.TempDir, "bilsh-ooc-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(tmp)

	payloadPath := filepath.Join(tmp, "payload")
	payloadF, err := os.Create(payloadPath)
	if err != nil {
		return 0, err
	}
	payload := bufio.NewWriterSize(payloadF, 1<<20)

	spillF := make([]*os.File, nGroups)
	spillW := make([]*bufio.Writer, nGroups)
	for gi := range spillF {
		f, err := os.Create(filepath.Join(tmp, fmt.Sprintf("group-%d", gi)))
		if err != nil {
			payloadF.Close()
			return 0, err
		}
		spillF[gi] = f
		spillW[gi] = bufio.NewWriterSize(f, 1<<18)
	}
	closeSpills := func() {
		for _, f := range spillF {
			if f != nil {
				f.Close()
			}
		}
		payloadF.Close()
	}

	rowBuf := make([]byte, 4*dim)
	var idBuf [8]byte
	_, _, err = dataset.ScanFvecs(dataPath, func(i int, row []float32) error {
		for j, v := range row {
			binary.LittleEndian.PutUint32(rowBuf[4*j:], math.Float32bits(v))
		}
		if _, err := payload.Write(rowBuf); err != nil {
			return err
		}
		gi := routeOf(row)
		groups[gi].members = append(groups[gi].members, i)
		binary.LittleEndian.PutUint64(idBuf[:], uint64(i))
		if _, err := spillW[gi].Write(idBuf[:]); err != nil {
			return err
		}
		_, err := spillW[gi].Write(rowBuf)
		return err
	})
	if err != nil {
		closeSpills()
		return 0, fmt.Errorf("core: out-of-core pass 2: %w", err)
	}
	if err := payload.Flush(); err != nil {
		closeSpills()
		return 0, err
	}
	for gi := range spillW {
		if err := spillW[gi].Flush(); err != nil {
			closeSpills()
			return 0, err
		}
	}

	// ---- Pass 3: per-group hashing and table construction.
	for gi, g := range groups {
		if err := buildGroupFromSpill(g, spillF[gi], dim, opts); err != nil {
			closeSpills()
			return 0, fmt.Errorf("core: out-of-core group %d: %w", gi, err)
		}
	}
	closeSpills()

	// Hierarchies.
	if opts.ProbeMode == ProbeHierarchy {
		if err := buildHierarchies(groups, opts); err != nil {
			return 0, fmt.Errorf("core: out-of-core: %w", err)
		}
	}

	// Quantized row store: two more streaming passes over the payload spill
	// (min/max then encode), so the full float32 matrix is still never
	// resident — only the codes are.
	var quant *vec.QuantizedMatrix
	if opts.Quantize == QuantizeSQ8 && n > 0 {
		pf, err := os.Open(payloadPath)
		if err != nil {
			return 0, err
		}
		var (
			qerr error
			br   *bufio.Reader
			next int
		)
		rowBytes := make([]byte, 4*dim)
		row := make([]float32, dim)
		quant = vec.QuantizeSQ8Rows(n, dim, func(i int) []float32 {
			if qerr != nil {
				return row
			}
			if br == nil || i != next {
				if _, err := pf.Seek(int64(i)*int64(len(rowBytes)), io.SeekStart); err != nil {
					qerr = err
					return row
				}
				br = bufio.NewReaderSize(pf, 1<<20)
			}
			next = i + 1
			if _, err := io.ReadFull(br, rowBytes); err != nil {
				qerr = err
				return row
			}
			for j := range row {
				row[j] = math.Float32frombits(binary.LittleEndian.Uint32(rowBytes[4*j:]))
			}
			return row
		})
		pf.Close()
		if qerr != nil {
			return 0, fmt.Errorf("core: out-of-core quantize: %w", qerr)
		}
	}

	// ---- Emit the paged disk index (v3): sections stream through the
	// layout writer, with the row payload copied straight from the spill.
	// The output is built in outPath+".tmp" and renamed into place once
	// fsynced (durable.AtomicWrite), so an interrupted build never leaves
	// a truncated index at outPath.
	err = durable.AtomicWrite(outPath, func(out *os.File) error {
		src := &diskV3Source{
			opts: opts, n: n, d: dim,
			quant: quant, tree: tree, km: km, groups: groups,
			rows: func(w io.Writer) error {
				pf, err := os.Open(payloadPath)
				if err != nil {
					return err
				}
				defer pf.Close()
				_, err = io.Copy(w, pf)
				return err
			},
		}
		_, err := writeDiskV3(out, src)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// buildGroupFromSpill loads one group's spilled (id, vector) records and
// builds its L tables. Only this group's vectors are resident.
func buildGroupFromSpill(g *group, spill *os.File, dim int, opts Options) error {
	if _, err := spill.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(spill, 1<<18)
	rec := make([]byte, 8+4*dim)
	ids := make([]int, 0, len(g.members))
	rows := make([]float32, 0, len(g.members)*dim)
	for {
		if _, err := io.ReadFull(br, rec); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		ids = append(ids, int(binary.LittleEndian.Uint64(rec[:8])))
		for j := 0; j < dim; j++ {
			rows = append(rows, math.Float32frombits(binary.LittleEndian.Uint32(rec[8+4*j:])))
		}
	}
	proj := make([]float64, opts.Params.M)
	g.tables = make([]*lshtable.Table, opts.Params.L)
	for t := 0; t < opts.Params.L; t++ {
		codes := make([]string, len(ids))
		tids := make([]int, len(ids))
		for i := range ids {
			g.fam.Project(t, rows[i*dim:(i+1)*dim], proj)
			codes[i] = lattice.Key(g.lat.Decode(proj))
			tids[i] = ids[i]
		}
		tab, err := lshtable.Build(codes, tids)
		if err != nil {
			return err
		}
		g.tables[t] = tab
	}
	return nil
}
