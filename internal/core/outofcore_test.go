package core

import (
	"path/filepath"
	"testing"

	"bilsh/internal/dataset"
	"bilsh/internal/knn"
	"bilsh/internal/lshfunc"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// writeTestFvecs generates a clustered dataset, writes it to disk, and
// returns the path plus the in-memory copy for verification.
func writeTestFvecs(t *testing.T, n, d int, seed int64) (string, *vec.Matrix) {
	t.Helper()
	spec := dataset.ClusteredSpec{N: n, D: d, Clusters: 6, IntrinsicDim: 4,
		Aspect: 3, NoiseSigma: 0.05, Spread: 8, PowerLaw: 0.3, ScaleSpread: 2}
	m, _, err := dataset.Clustered(spec, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.fvecs")
	if err := dataset.SaveFvecsFile(path, m); err != nil {
		t.Fatal(err)
	}
	return path, m
}

func TestBuildDiskStreaming(t *testing.T) {
	for _, opts := range []Options{
		{Partitioner: PartitionRPTree, Groups: 4, AutoTuneW: true,
			Params: lshfunc.Params{M: 4, L: 4, W: 1}},
		{Partitioner: PartitionNone, AutoTuneW: true,
			Params: lshfunc.Params{M: 4, L: 4, W: 1}},
		{Partitioner: PartitionKMeans, Groups: 4, AutoTuneW: true,
			Params: lshfunc.Params{M: 4, L: 3, W: 1}},
		{Partitioner: PartitionRPTree, Groups: 4, Lattice: LatticeE8,
			ProbeMode: ProbeHierarchy, Params: lshfunc.Params{M: 8, L: 3, W: 2}},
	} {
		dataPath, m := writeTestFvecs(t, 500, 16, 91)
		outPath := filepath.Join(t.TempDir(), "ooc.disk")
		n, err := BuildDisk(dataPath, outPath, opts, OutOfCoreConfig{SampleSize: 200, TempDir: t.TempDir()}, xrand.New(92))
		if err != nil {
			t.Fatalf("opts %v/%v: %v", opts.Partitioner, opts.Lattice, err)
		}
		if n != 500 {
			t.Fatalf("indexed %d rows, want 500", n)
		}
		di, err := OpenDisk(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if di.N() != 500 || di.Dim() != 16 {
			t.Fatalf("disk index shape %dx%d", di.N(), di.Dim())
		}
		// Every group member set must cover all rows exactly once.
		seen := make([]bool, 500)
		for g := 0; g < di.NumGroups(); g++ {
			for _, id := range di.Index.loadSnap().groups[g].members {
				if seen[id] {
					t.Fatalf("row %d in two groups", id)
				}
				seen[id] = true
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("row %d unassigned", id)
			}
		}
		// Stored rows must be their own nearest neighbors (the plumbing
		// check; quality is asserted separately with generous widths).
		for _, row := range []int{0, 123, 499} {
			q := m.Row(row)
			res, _ := di.Query(q, 5)
			if len(res.IDs) == 0 || res.IDs[0] != row {
				t.Fatalf("row %d not its own NN on streamed index: %v", row, res.IDs)
			}
		}
		di.Close()
	}
}

func TestBuildDiskMatchesPayload(t *testing.T) {
	// The payload section must contain the rows bit-exactly in id order.
	dataPath, m := writeTestFvecs(t, 200, 8, 93)
	outPath := filepath.Join(t.TempDir(), "ooc.disk")
	if _, err := BuildDisk(dataPath, outPath, Options{
		Partitioner: PartitionRPTree, Groups: 3,
		Params: lshfunc.Params{M: 4, L: 2, W: 3},
	}, OutOfCoreConfig{SampleSize: 64}, xrand.New(94)); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	for id := 0; id < m.N; id += 17 {
		got := di.row(id)
		want := m.Row(id)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d differs at dim %d", id, j)
			}
		}
	}
}

func TestBuildDiskEmptyInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.fvecs")
	if err := writeEmptyFile(path); err != nil {
		t.Fatal(err)
	}
	_, err := BuildDisk(path, filepath.Join(t.TempDir(), "out"), Options{
		Params: lshfunc.Params{M: 4, L: 2, W: 1},
	}, OutOfCoreConfig{}, xrand.New(1))
	if err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func writeEmptyFile(path string) error {
	return dataset.SaveFvecsFile(path, vec.NewMatrix(0, 1))
}

func TestBuildDiskDeterministic(t *testing.T) {
	dataPath, _ := writeTestFvecs(t, 300, 8, 95)
	opts := Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 3, W: 3}}
	out1 := filepath.Join(t.TempDir(), "a.disk")
	out2 := filepath.Join(t.TempDir(), "b.disk")
	if _, err := BuildDisk(dataPath, out1, opts, OutOfCoreConfig{SampleSize: 128}, xrand.New(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDisk(dataPath, out2, opts, OutOfCoreConfig{SampleSize: 128}, xrand.New(7)); err != nil {
		t.Fatal(err)
	}
	a, err := OpenDisk(out1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenDisk(out2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	q := xrand.New(8).GaussianVec(8)
	ra, _ := a.Query(q, 5)
	rb, _ := b.Query(q, 5)
	for i := range ra.IDs {
		if ra.IDs[i] != rb.IDs[i] {
			t.Fatal("same seed must build identical streamed indexes")
		}
	}
}

func TestBuildDiskRecallWithWideBuckets(t *testing.T) {
	dataPath, m := writeTestFvecs(t, 400, 12, 96)
	outPath := filepath.Join(t.TempDir(), "wide.disk")
	if _, err := BuildDisk(dataPath, outPath, Options{
		Partitioner: PartitionRPTree, Groups: 4, AutoTuneW: true,
		Params: lshfunc.Params{M: 4, L: 6, W: 3},
	}, OutOfCoreConfig{SampleSize: 200}, xrand.New(97)); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDisk(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	var recall float64
	const k, probes = 5, 20
	for qi := 0; qi < probes; qi++ {
		q := m.Row(qi * 19)
		res, _ := di.Query(q, k)
		exact := knn.Exact(m, q, k)
		recall += knn.Recall(exact.IDs, res.IDs)
	}
	if recall/probes < 0.6 {
		t.Fatalf("streamed index recall %.2f with wide buckets", recall/probes)
	}
}
