package core

import (
	"fmt"
	"math"
	"sync"

	"bilsh/internal/hierarchy"
	"bilsh/internal/kmeans"
	"bilsh/internal/lattice"
	"bilsh/internal/lshfunc"
	"bilsh/internal/lshtable"
	"bilsh/internal/rptree"
	"bilsh/internal/tuner"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Index is a built Bi-level LSH index (or a standard LSH index when
// Options.Partitioner is PartitionNone).
type Index struct {
	data *vec.Matrix
	opts Options

	tree *rptree.Tree
	km   *kmeans.Model

	groups []*group

	// dynamic holds the insert/delete overlay; nil for static indexes.
	dynamic *dynamicState

	// fetch, when non-nil, retrieves base rows instead of data.Row —
	// the disk-backed mode (diskindex.go). data still carries N and D.
	fetch func(id int) []float32

	// scratchPool recycles per-query scratch state (see scratch.go). The
	// zero value is usable, so no constructor threading is needed.
	scratchPool sync.Pool
}

// group is one level-1 partition with its level-2 machinery.
type group struct {
	members []int // global row ids
	fam     *lshfunc.Family
	lat     lattice.Lattice
	w       float64 // the group's effective bucket width
	tables  []*lshtable.Table
	// Hierarchies (one per table), present when ProbeMode==ProbeHierarchy.
	mortonH []*hierarchy.Morton
	e8H     []*hierarchy.E8Tree
}

// Build constructs the index over data. The rng drives every random choice
// (partition directions, hash draws), so the same seed reproduces the same
// index — the mechanism the experiments use to sample the projection
// variance r1.
func Build(data *vec.Matrix, opts Options, rng *xrand.RNG) (*Index, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if data.N == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	ix := &Index{data: data, opts: opts}

	// Level 1: partition.
	var members [][]int
	switch opts.Partitioner {
	case PartitionNone:
		all := make([]int, data.N)
		for i := range all {
			all[i] = i
		}
		members = [][]int{all}
	case PartitionRPTree:
		tree, asg := rptree.Build(data, rptree.Options{
			Rule:        opts.RPRule,
			Leaves:      opts.Groups,
			MinLeafSize: opts.MinGroupSize,
		}, rng.Split(1))
		ix.tree = tree
		members = asg.Members
	case PartitionKMeans:
		km, asg := kmeans.Build(data, kmeans.Options{K: opts.Groups}, rng.Split(1))
		ix.km = km
		members = asg.Members
	default:
		return nil, fmt.Errorf("core: unknown partitioner %v", opts.Partitioner)
	}

	// Level 2: per-group LSH tables.
	grng := rng.Split(2)
	ix.groups = make([]*group, len(members))
	for gi, m := range members {
		g, err := buildGroup(data, m, opts, grng.Split(int64(gi)))
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", gi, err)
		}
		ix.groups[gi] = g
	}
	return ix, nil
}

func buildGroup(data *vec.Matrix, members []int, opts Options, rng *xrand.RNG) (*group, error) {
	g := &group{members: members}

	// Per-group bucket width: either the global W, or tuned from the
	// group's own distance distribution and scaled by W (Section IV-A3:
	// "we may choose different LSH parameters ... that are optimal for
	// each cell").
	w := opts.Params.W
	if opts.AutoTuneW && len(members) >= 2 {
		// TuneTargetRecall is the combined recall over all L tables; a
		// k-th neighbor must collide in at least one table, so the
		// per-table collision target is q = 1 − (1−R)^(1/L).
		perTable := 1 - math.Pow(1-opts.TuneTargetRecall, 1/float64(opts.Params.L))
		if perTable <= 0 {
			perTable = 1e-6
		}
		if perTable >= 1 {
			perTable = 1 - 1e-6
		}
		est, err := tuner.EstimateW(data, members, opts.TuneK, opts.Params.M,
			perTable, tuner.Config{}, rng.Split(100))
		if err != nil {
			return nil, err
		}
		if est.W > 0 && est.Samples > 0 {
			w = est.W * opts.Params.W
		}
	}
	g.w = w

	params := opts.Params
	params.W = w
	fam, err := lshfunc.NewFamily(data.D, params, rng.Split(101))
	if err != nil {
		return nil, err
	}
	g.fam = fam

	switch opts.Lattice {
	case LatticeZM:
		g.lat = lattice.NewZM(params.M)
	case LatticeE8:
		g.lat = lattice.NewE8(params.M)
	case LatticeDn:
		g.lat = lattice.NewDn(params.M)
	default:
		return nil, fmt.Errorf("unknown lattice %v", opts.Lattice)
	}

	proj := make([]float64, params.M)
	g.tables = make([]*lshtable.Table, params.L)
	for t := 0; t < params.L; t++ {
		codes := make([]string, len(members))
		ids := make([]int, len(members))
		for i, id := range members {
			fam.Project(t, data.Row(id), proj)
			codes[i] = lattice.Key(g.lat.Decode(proj))
			ids[i] = id
		}
		tab, err := lshtable.Build(codes, ids)
		if err != nil {
			return nil, err
		}
		g.tables[t] = tab
	}

	if opts.ProbeMode == ProbeHierarchy {
		switch lat := g.lat.(type) {
		case *lattice.ZM:
			g.mortonH = make([]*hierarchy.Morton, params.L)
			for t, tab := range g.tables {
				h, err := hierarchy.NewMorton(tab, params.M, opts.MortonBits)
				if err != nil {
					return nil, err
				}
				g.mortonH[t] = h
			}
		default:
			// E8 and D_n share the explicit lattice hierarchy.
			g.e8H = make([]*hierarchy.E8Tree, params.L)
			for t, tab := range g.tables {
				h, err := hierarchy.NewE8Tree(tab, lat)
				if err != nil {
					return nil, err
				}
				g.e8H[t] = h
			}
		}
	}
	return g, nil
}

// N returns the number of indexed items.
func (ix *Index) N() int { return ix.data.N }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.data.D }

// Options returns the (filled) build options.
func (ix *Index) Options() Options { return ix.opts }

// NumGroups returns the number of level-1 partitions.
func (ix *Index) NumGroups() int { return len(ix.groups) }

// GroupOf routes a vector through level 1.
func (ix *Index) GroupOf(v []float32) int {
	switch {
	case ix.tree != nil:
		return ix.tree.Leaf(v)
	case ix.km != nil:
		return ix.km.Assign(v)
	default:
		return 0
	}
}

// GroupW returns group g's effective bucket width (for reports).
func (ix *Index) GroupW(g int) float64 { return ix.groups[g].w }

// GroupSize returns the number of items in group g.
func (ix *Index) GroupSize(g int) int { return len(ix.groups[g].members) }

// TableSummary aggregates bucket statistics across all groups and tables.
func (ix *Index) TableSummary() lshtable.Stats {
	var out lshtable.Stats
	var mass, items float64
	for _, g := range ix.groups {
		for _, tab := range g.tables {
			s := tab.Summary()
			out.Buckets += s.Buckets
			out.Items += s.Items
			if s.MaxBucket > out.MaxBucket {
				out.MaxBucket = s.MaxBucket
			}
			mass += s.CollisionMass * float64(s.Items)
			items += float64(s.Items)
		}
	}
	if out.Buckets > 0 {
		out.MeanBucket = float64(out.Items) / float64(out.Buckets)
	}
	if items > 0 {
		out.CollisionMass = mass / items
	}
	return out
}
