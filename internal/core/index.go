package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"bilsh/internal/hierarchy"
	"bilsh/internal/kmeans"
	"bilsh/internal/lattice"
	"bilsh/internal/lshfunc"
	"bilsh/internal/lshtable"
	"bilsh/internal/rptree"
	"bilsh/internal/tuner"
	"bilsh/internal/vec"
	"bilsh/internal/xrand"
)

// Index is a built Bi-level LSH index (or a standard LSH index when
// Options.Partitioner is PartitionNone).
//
// Concurrency: the index is safe for unrestricted concurrent use. Readers
// (Query, QueryBatch, QueryBatchParallel, CandidateList, ExactKNN,
// Describe, Len, Epoch, ...) load the current snapshot once and never take
// a lock. Writers (Insert, Delete, Compact, RebuildHierarchies) serialize
// on a short-held mutex; Compact additionally runs its rebuild outside the
// mutex, so reads and writes keep flowing while it works. See
// docs/concurrency.md.
type Index struct {
	// opts are the (filled) build options. The struct is immutable after
	// construction except for the dynamic knobs guarded by mu (memtable
	// threshold, auto-compact), which the query path never reads.
	opts Options

	// snap is the published read view; see snapshot.go.
	snap atomic.Pointer[snapshot]

	// mu serializes all mutators (insert, delete, seal, snapshot swap).
	// It is held only for short, bounded sections — never across a
	// compaction rebuild or a query.
	mu sync.Mutex

	// compactMu admits at most one Compact at a time (TryLock, so callers
	// get ErrCompactBusy instead of queuing).
	compactMu sync.Mutex

	// Insert scratch, guarded by mu (inserts serialize on it): projection,
	// code and key buffers reused across inserts so the write path does not
	// feed the garbage collector on every call.
	insProj []float64
	insCode []int32
	insKey  []byte

	// scratchPool recycles per-query scratch state (see scratch.go). The
	// zero value is usable, so no constructor threading is needed.
	scratchPool sync.Pool
}

// group is one level-1 partition with its level-2 machinery. Groups
// reachable from a published snapshot are immutable; mutators that change
// derived state (Compact, RebuildHierarchies) build replacement groups and
// publish a new snapshot.
type group struct {
	members []int // global row ids
	fam     *lshfunc.Family
	lat     lattice.Lattice
	w       float64 // the group's effective bucket width
	tables  []*lshtable.Table
	// Hierarchies (one per table), present when ProbeMode==ProbeHierarchy.
	mortonH []*hierarchy.Morton
	e8H     []*hierarchy.E8Tree
	// bsamp replaces fam/lat under MetricHamming: per-table bit positions
	// sampled from the snapshot's global sketch. fam, lat and the
	// hierarchies are nil in that mode.
	bsamp *lshfunc.BitSampler
}

// newIndex wraps built structures into an Index with its first snapshot.
func newIndex(opts Options, data *vec.Matrix, fetch func(id int) []float32,
	quant *vec.QuantizedMatrix, tree *rptree.Tree, km *kmeans.Model, groups []*group) *Index {
	ix := &Index{opts: opts}
	ix.snap.Store(&snapshot{
		epoch: 1, opts: opts,
		data: data, fetch: fetch, quant: quant, tree: tree, km: km, groups: groups,
	})
	return ix
}

// attachHamming sets the Hamming plane on a freshly constructed index's
// first snapshot. Call before the index is shared (Build/ReadIndex only);
// snapshot clones carry the fields forward from then on.
func (ix *Index) attachHamming(sk *lshfunc.Sketcher, sketches *vec.BinaryMatrix) {
	sn := ix.snap.Load()
	sn.sketcher = sk
	sn.sketches = sketches
}

// buildQuant materializes the quantized row store opts asks for (nil for
// QuantizeNone). fetch supplies rows when the float32 matrix is
// shape-only (disk-backed); otherwise rows come straight from data.
func buildQuant(opts Options, data *vec.Matrix, fetch func(id int) []float32) *vec.QuantizedMatrix {
	if opts.Quantize != QuantizeSQ8 || data.N == 0 {
		return nil
	}
	row := data.Row
	if fetch != nil {
		row = fetch
	}
	return vec.QuantizeSQ8Rows(data.N, data.D, row)
}

// loadSnap returns the current read view.
func (ix *Index) loadSnap() *snapshot { return ix.snap.Load() }

// publish installs sn as the next snapshot. Caller holds ix.mu.
func (ix *Index) publish(sn *snapshot) {
	sn.epoch = ix.snap.Load().epoch + 1
	sn.opts = ix.opts
	ix.snap.Store(sn)
	metEpoch.Set(int64(sn.epoch))
}

// Build constructs the index over data. The rng drives every random choice
// (partition directions, hash draws), so the same seed reproduces the same
// index — the mechanism the experiments use to sample the projection
// variance r1.
func Build(data *vec.Matrix, opts Options, rng *xrand.RNG) (*Index, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if data.N == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}

	// Level 1: partition.
	var (
		tree    *rptree.Tree
		km      *kmeans.Model
		members [][]int
	)
	switch opts.Partitioner {
	case PartitionNone:
		all := make([]int, data.N)
		for i := range all {
			all[i] = i
		}
		members = [][]int{all}
	case PartitionRPTree:
		var asg *rptree.Assignment
		tree, asg = rptree.Build(data, rptree.Options{
			Rule:        opts.RPRule,
			Leaves:      opts.Groups,
			MinLeafSize: opts.MinGroupSize,
		}, rng.Split(1))
		members = asg.Members
	case PartitionKMeans:
		var asg *kmeans.Assignment
		km, asg = kmeans.Build(data, kmeans.Options{K: opts.Groups}, rng.Split(1))
		members = asg.Members
	default:
		return nil, fmt.Errorf("core: unknown partitioner %v", opts.Partitioner)
	}

	// Hamming plane: one global sketcher, every row sketched once. The
	// split label 3 is fresh, so Euclidean builds draw exactly the streams
	// they always did.
	var (
		sk       *lshfunc.Sketcher
		sketches *vec.BinaryMatrix
	)
	if opts.Metric == MetricHamming {
		var err error
		sk, err = lshfunc.NewSketcher(data.D, opts.Bits, rng.Split(3))
		if err != nil {
			return nil, err
		}
		sketches = sk.SketchAll(data)
	}

	// Level 2: per-group LSH tables.
	grng := rng.Split(2)
	groups := make([]*group, len(members))
	for gi, m := range members {
		g, err := buildGroup(data, sketches, m, opts, grng.Split(int64(gi)))
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", gi, err)
		}
		groups[gi] = g
	}
	ix := newIndex(opts, data, nil, buildQuant(opts, data, nil), tree, km, groups)
	ix.attachHamming(sk, sketches)
	return ix, nil
}

func buildGroup(data *vec.Matrix, sketches *vec.BinaryMatrix, members []int, opts Options, rng *xrand.RNG) (*group, error) {
	g := &group{members: members}

	if opts.Metric == MetricHamming {
		return buildHammingGroup(g, sketches, opts, rng)
	}

	// Per-group bucket width: either the global W, or tuned from the
	// group's own distance distribution and scaled by W (Section IV-A3:
	// "we may choose different LSH parameters ... that are optimal for
	// each cell").
	w := opts.Params.W
	if opts.AutoTuneW && len(members) >= 2 {
		// TuneTargetRecall is the combined recall over all L tables; a
		// k-th neighbor must collide in at least one table, so the
		// per-table collision target is q = 1 − (1−R)^(1/L).
		perTable := 1 - math.Pow(1-opts.TuneTargetRecall, 1/float64(opts.Params.L))
		if perTable <= 0 {
			perTable = 1e-6
		}
		if perTable >= 1 {
			perTable = 1 - 1e-6
		}
		est, err := tuner.EstimateW(data, members, opts.TuneK, opts.Params.M,
			perTable, tuner.Config{}, rng.Split(100))
		if err != nil {
			return nil, err
		}
		if est.W > 0 && est.Samples > 0 {
			w = est.W * opts.Params.W
		}
	}
	g.w = w

	params := opts.Params
	params.W = w
	fam, err := lshfunc.NewFamily(data.D, params, rng.Split(101))
	if err != nil {
		return nil, err
	}
	g.fam = fam

	g.lat, err = newLattice(opts.Lattice, params.M)
	if err != nil {
		return nil, err
	}

	proj := make([]float64, params.M)
	g.tables = make([]*lshtable.Table, params.L)
	for t := 0; t < params.L; t++ {
		codes := make([]string, len(members))
		ids := make([]int, len(members))
		for i, id := range members {
			fam.Project(t, data.Row(id), proj)
			codes[i] = lattice.Key(g.lat.Decode(proj))
			ids[i] = id
		}
		tab, err := lshtable.Build(codes, ids)
		if err != nil {
			return nil, err
		}
		g.tables[t] = tab
	}

	if opts.ProbeMode == ProbeHierarchy {
		if err := buildGroupHierarchies(g, opts); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// buildHammingGroup builds one group's bit-sampling tables over the global
// sketch matrix. The split label 102 matches the Euclidean path's spacing
// (100 tuner, 101 family), so group streams stay disjoint.
func buildHammingGroup(g *group, sketches *vec.BinaryMatrix, opts Options, rng *xrand.RNG) (*group, error) {
	g.w = opts.Params.W // no bucket width in Hamming space; kept for reports
	bs, err := lshfunc.NewBitSampler(opts.Bits, opts.Params.M, opts.Params.L, rng.Split(102))
	if err != nil {
		return nil, err
	}
	g.bsamp = bs

	key := make([]byte, 0, bs.KeyLen())
	g.tables = make([]*lshtable.Table, opts.Params.L)
	for t := 0; t < opts.Params.L; t++ {
		codes := make([]string, len(g.members))
		ids := make([]int, len(g.members))
		for i, id := range g.members {
			key = bs.AppendKey(key[:0], t, sketches.Row(id))
			codes[i] = string(key)
			ids[i] = id
		}
		tab, err := lshtable.Build(codes, ids)
		if err != nil {
			return nil, err
		}
		g.tables[t] = tab
	}
	return g, nil
}

// newLattice constructs the level-2 quantizer for a group.
func newLattice(kind LatticeKind, m int) (lattice.Lattice, error) {
	switch kind {
	case LatticeZM:
		return lattice.NewZM(m), nil
	case LatticeE8:
		return lattice.NewE8(m), nil
	case LatticeDn:
		return lattice.NewDn(m), nil
	default:
		return nil, fmt.Errorf("unknown lattice %v", kind)
	}
}

// buildGroupHierarchies (re)constructs one group's bucket hierarchies over
// its current tables.
func buildGroupHierarchies(g *group, opts Options) error {
	switch lat := g.lat.(type) {
	case *lattice.ZM:
		g.mortonH = make([]*hierarchy.Morton, len(g.tables))
		g.e8H = nil
		for t, tab := range g.tables {
			h, err := hierarchy.NewMorton(tab, opts.Params.M, opts.MortonBits)
			if err != nil {
				return err
			}
			g.mortonH[t] = h
		}
	default:
		// E8 and D_n share the explicit lattice hierarchy.
		g.e8H = make([]*hierarchy.E8Tree, len(g.tables))
		g.mortonH = nil
		for t, tab := range g.tables {
			h, err := hierarchy.NewE8Tree(tab, lat)
			if err != nil {
				return err
			}
			g.e8H[t] = h
		}
	}
	return nil
}

// buildHierarchies runs buildGroupHierarchies over a group set.
func buildHierarchies(groups []*group, opts Options) error {
	for gi, g := range groups {
		if err := buildGroupHierarchies(g, opts); err != nil {
			return fmt.Errorf("core: group %d hierarchy: %w", gi, err)
		}
	}
	return nil
}

// N returns the number of base (compacted) items; overlay inserts join the
// base on the next Compact.
func (ix *Index) N() int { return ix.loadSnap().data.N }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.loadSnap().data.D }

// Options returns the (filled) build options.
func (ix *Index) Options() Options { return ix.opts }

// ConfigureDynamic sets the runtime overlay knobs — the memtable seal
// threshold and the auto-compact segment trigger — which are not part of
// the serialized index format and so need re-supplying after ReadIndex /
// OpenDisk. Non-positive arguments keep the current values. Call during
// setup, before the index is shared with other goroutines.
func (ix *Index) ConfigureDynamic(memtableThreshold, autoCompactSegments int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if memtableThreshold > 0 {
		ix.opts.MemtableThreshold = memtableThreshold
	}
	if autoCompactSegments > 0 {
		ix.opts.AutoCompactSegments = autoCompactSegments
	}
}

// SetQuantize switches the resident row-store representation the
// short-list scan reads, rebuilding (or dropping) the quantized code
// matrix and publishing a new snapshot. factor sizes the exact re-rank
// shortlist (k×factor; non-positive keeps the current value). The
// quantization pass reads every base row — on a disk-backed index that is
// one streaming sweep over the row file — so call it at setup time, not on
// the query path. Overlay rows are unaffected (they always rank exactly)
// and the next Compact folds them into the rebuilt code matrix.
func (ix *Index) SetQuantize(kind QuantizeKind, factor int) error {
	switch kind {
	case QuantizeNone, QuantizeSQ8:
	default:
		return fmt.Errorf("core: unknown quantize kind %d", int(kind))
	}
	if ix.opts.Metric == MetricHamming && kind != QuantizeNone {
		return fmt.Errorf("core: quantization applies to float rows; Hamming sketches are already 1 bit/plane")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.opts.Quantize = kind
	if factor > 0 {
		ix.opts.RerankFactor = factor
	}
	src := ix.loadSnap()
	next := src.clone()
	next.quant = buildQuant(ix.opts, src.data, src.fetch)
	ix.publish(next)
	return nil
}

// Epoch returns the current snapshot epoch. It increases by one each time
// a new read view is published (memtable seal, Compact, hierarchy
// rebuild) and is monotone over the index's lifetime.
func (ix *Index) Epoch() uint64 { return ix.loadSnap().epoch }

// NumGroups returns the number of level-1 partitions.
func (ix *Index) NumGroups() int { return len(ix.loadSnap().groups) }

// GroupOf routes a vector through level 1.
func (ix *Index) GroupOf(v []float32) int { return ix.loadSnap().groupOf(v) }

// Tree returns the level-1 random projection tree, or nil when the index
// was not built with PartitionRPTree. The cluster router reuses it as the
// shard map: the tree partitions the data, so the leaves a query probes
// name the shards that can hold its neighbors (see internal/router and
// docs/sharding.md). The returned tree is part of the published snapshot
// and must not be mutated.
func (ix *Index) Tree() *rptree.Tree { return ix.loadSnap().tree }

// GroupMembers returns a copy of group g's base member ids (overlay
// inserts are not included; Compact folds them in). Shard splitting uses
// this to extract each leaf's rows.
func (ix *Index) GroupMembers(g int) []int {
	sn := ix.loadSnap()
	return append([]int(nil), sn.groups[g].members...)
}

// Vector returns a copy of row id's vector, or nil when id is out of the
// dense id space. Tombstoned rows still return their vector; pair with
// Describe/Len for liveness if it matters.
func (ix *Index) Vector(id int) []float32 {
	sn := ix.loadSnap()
	if id < 0 || id >= sn.total() {
		return nil
	}
	return append([]float32(nil), sn.row(id)...)
}

// GroupW returns group g's effective bucket width (for reports).
func (ix *Index) GroupW(g int) float64 { return ix.loadSnap().groups[g].w }

// GroupSize returns the number of items in group g, including overlay
// inserts routed to it.
func (ix *Index) GroupSize(g int) int {
	sn := ix.loadSnap()
	n := len(sn.groups[g].members)
	if sn.hasOverlay() {
		n += sn.overlayGroupCounts()[g]
	}
	return n
}

// TableSummary aggregates bucket statistics across all groups and tables.
func (ix *Index) TableSummary() lshtable.Stats {
	sn := ix.loadSnap()
	var out lshtable.Stats
	var mass, items float64
	for _, g := range sn.groups {
		for _, tab := range g.tables {
			s := tab.Summary()
			out.Buckets += s.Buckets
			out.Items += s.Items
			if s.MaxBucket > out.MaxBucket {
				out.MaxBucket = s.MaxBucket
			}
			mass += s.CollisionMass * float64(s.Items)
			items += float64(s.Items)
		}
	}
	if out.Buckets > 0 {
		out.MeanBucket = float64(out.Items) / float64(out.Buckets)
	}
	if items > 0 {
		out.CollisionMass = mass / items
	}
	return out
}
