package core

import (
	"bytes"
	"errors"
	"testing"

	"bilsh/internal/lshfunc"
	"bilsh/internal/rptree"
	"bilsh/internal/vec"
	"bilsh/internal/wire"
	"bilsh/internal/xrand"
)

func validOptions() Options {
	o := Options{Partitioner: PartitionRPTree, Groups: 4,
		Params: lshfunc.Params{M: 4, L: 3, W: 2}}
	if err := o.fill(); err != nil {
		panic(err)
	}
	return o
}

// TestReadOptionsRejectsInvalid drives the decode path with option blocks
// that are structurally well-formed wire data but semantically invalid.
// Before Options.Validate ran on the full decoded struct, most of these
// were accepted and detonated later (unknown probe mode panics at query
// time; a huge Probes allocates per query; MortonBits 40 overflows the
// Morton key).
func TestReadOptionsRejectsInvalid(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"unknown lattice", func(o *Options) { o.Lattice = 99 }},
		{"unknown partitioner", func(o *Options) { o.Partitioner = -1 }},
		{"unknown probe mode", func(o *Options) { o.ProbeMode = 7 }},
		{"unknown rp rule", func(o *Options) { o.RPRule = rptree.Rule(9) }},
		{"zero groups", func(o *Options) { o.Groups = 0 }},
		{"huge groups", func(o *Options) { o.Groups = 1<<20 + 1 }},
		{"zero probes", func(o *Options) { o.Probes = 0 }},
		{"huge probes", func(o *Options) { o.Probes = 1<<20 + 1 }},
		{"L over byte", func(o *Options) { o.Params.L = 300 }},
		{"zero M", func(o *Options) { o.Params.M = 0 }},
		{"negative W", func(o *Options) { o.Params.W = -1 }},
		{"negative TuneK", func(o *Options) { o.TuneK = -2 }},
		{"recall over 1", func(o *Options) { o.TuneTargetRecall = 1.5 }},
		{"morton bits over 31", func(o *Options) { o.MortonBits = 40 }},
		{"negative hier floor", func(o *Options) { o.HierMinCandidates = -1 }},
		{"negative min group", func(o *Options) { o.MinGroupSize = -3 }},
		{"unknown quantize", func(o *Options) { o.Quantize = QuantizeKind(5) }},
		{"negative rerank factor", func(o *Options) { o.RerankFactor = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			if err := o.Validate(); err == nil {
				t.Fatal("Validate accepted the mutation")
			}
			var buf bytes.Buffer
			ww := wire.NewWriter(&buf)
			writeOptions(ww, o)
			if err := ww.Flush(); err != nil {
				t.Fatal(err)
			}
			if _, err := readOptions(wire.NewReader(&buf), 2); err == nil {
				t.Fatal("readOptions accepted an invalid decoded option block")
			}
		})
	}

	// The unmutated block must round-trip.
	o := validOptions()
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	writeOptions(ww, o)
	if err := ww.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readOptions(wire.NewReader(&buf), 2)
	if err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if got.Lattice != o.Lattice || got.Groups != o.Groups || got.Params != o.Params ||
		got.Quantize != o.Quantize || got.RerankFactor != o.RerankFactor {
		t.Fatalf("options changed across encode/decode: %+v vs %+v", got, o)
	}
}

// TestBuildRejectsInvalidOptions checks fill() now funnels through the
// same validation, so a bad literal Options fails at Build rather than
// corrupting the index.
func TestBuildRejectsInvalidOptions(t *testing.T) {
	data := testData(t, 50, 8, 41)
	for _, o := range []Options{
		{Partitioner: PartitionerKind(12), Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{RPRule: rptree.Rule(5), Partitioner: PartitionRPTree, Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{ProbeMode: ProbeMode(6), Params: lshfunc.Params{M: 4, L: 2, W: 2}},
		{HierMinCandidates: -4, Params: lshfunc.Params{M: 4, L: 2, W: 2}},
	} {
		if _, err := Build(data, o, xrand.New(1)); err == nil {
			t.Fatalf("Build accepted invalid options %+v", o)
		}
	}
}

func TestWriteToDirtyIndexReturnsSentinel(t *testing.T) {
	data := testData(t, 60, 8, 42)
	ix, err := Build(data, Options{Partitioner: PartitionNone,
		Params: lshfunc.Params{M: 4, L: 2, W: 2}}, xrand.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(vec.Clone(data.Row(0))); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); !errors.Is(err, ErrDirtyIndex) {
		t.Fatalf("WriteTo on a dirty index returned %v, want ErrDirtyIndex", err)
	}
	if _, err := ix.WriteDiskTo(&writeSeekBuffer{}); !errors.Is(err, ErrDirtyIndex) {
		t.Fatalf("WriteDiskTo on a dirty index returned %v, want ErrDirtyIndex", err)
	}
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo after Compact: %v", err)
	}
}

// writeSeekBuffer is a minimal in-memory io.WriteSeeker for the disk
// layout's dirty check (which fires before any byte is written).
type writeSeekBuffer struct{ buf []byte }

func (w *writeSeekBuffer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *writeSeekBuffer) Seek(offset int64, whence int) (int64, error) {
	return offset, nil
}
